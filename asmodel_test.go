package asmodel

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumTier2 = 8
	cfg.NumTier3 = 15
	cfg.NumStub = 25
	cfg.NumVantageASes = 10
	in, err := GenerateInternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := in.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	train, valid := ds.SplitByObsPoint(0.5, 1)

	m, res, err := BuildAndRefine(ds, train, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("refinement did not converge: %+v", res)
	}
	evT, err := m.Evaluate(train)
	if err != nil {
		t.Fatal(err)
	}
	if evT.Summary.RIBOut != evT.Summary.Total {
		t.Fatalf("training not exact: %v", evT.Summary)
	}
	evV, err := m.Evaluate(valid)
	if err != nil {
		t.Fatal(err)
	}
	if evV.Summary.Total == 0 {
		t.Fatal("empty validation")
	}
	if frac := evV.Summary.Frac(evV.Summary.DownToTieBreak()); frac < 0.5 {
		t.Errorf("validation down-to-tie-break %.2f too low", frac)
	}
}

func TestFacadeDatasetIO(t *testing.T) {
	text := "op1 10 0 P40 10 20 40\nop2 11 0 P40 11 20 40\n"
	ds, err := ReadDataset(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("records=%d", ds.Len())
	}
	g := NewGraph(ds)
	if !g.HasEdge(10, 20) || !g.HasEdge(20, 40) {
		t.Error("graph edges missing")
	}
	p, err := ParsePath("701 1239")
	if err != nil || len(p) != 2 {
		t.Errorf("ParsePath: %v %v", p, err)
	}
}

func TestFacadeMRT(t *testing.T) {
	// An empty MRT stream yields an empty dataset.
	ds, err := MRTToDataset(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 0 {
		t.Error("expected empty dataset")
	}
}

func TestFacadeTier1AndRelationships(t *testing.T) {
	text := strings.Join([]string{
		"op10 10 0 P20 10 20",
		"op20 20 0 P10 20 10",
		"op10 10 0 P100 10 100",
		"op20 20 0 P100 20 10 100",
	}, "\n")
	ds, err := ReadDataset(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(ds)
	tier1, err := InferTier1(g, []ASN{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tier1) < 2 {
		t.Errorf("tier1=%v", tier1)
	}
	inf := InferRelationships(ds, tier1)
	if inf.Len() == 0 {
		t.Error("no relationships inferred")
	}
}

func TestFacadeSaveLoadAndLG(t *testing.T) {
	text := "op1 10 0 P40 10 20 40\nop2 11 0 P40 11 20 40\n"
	ds, err := ReadDataset(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// Augment with a looking-glass table observed at AS 12.
	lgTable := `   Network          Next Hop            Metric LocPrf Weight Path
*> P40              10.0.0.1                 0             0 20 40 i
`
	if err := ParseLookingGlass(strings.NewReader(lgTable), "lg12", 12, ds); err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	if len(ds.ObsASes()) != 3 {
		t.Fatalf("obs ASes=%v", ds.ObsASes())
	}
	m, res, err := BuildAndRefine(ds, ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	var buf bytes.Buffer
	if err := SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m2.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("loaded model mismatch: %v", ev.Summary)
	}
}
