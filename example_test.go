package asmodel_test

import (
	"fmt"
	"log"
	"strings"

	"asmodel"
)

// Example demonstrates the full §4 pipeline on a hand-written dataset:
// two observation points in AS1 disagree about the route toward AS4's
// prefix, so the refined model needs a second quasi-router in AS1 to
// reproduce both paths.
func Example() {
	const feeds = `
op1a 1 0 P4 1 2 4
op1b 1 0 P4 1 3 4
op5  5 0 P4 5 2 4
`
	ds, err := asmodel.ReadDataset(strings.NewReader(feeds))
	if err != nil {
		log.Fatal(err)
	}
	ds.Normalize()

	m, res, err := asmodel.BuildAndRefine(ds, ds, asmodel.RefineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v quasi-routers-added=%d\n", res.Converged, res.QuasiRoutersAdded)

	paths, err := m.PredictPaths("P4", 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	// Output:
	// converged=true quasi-routers-added=1
	// 1 2 4
	// 1 3 4
}

// Example_whatIf predicts the impact of removing a link (§1's motivating
// question).
func Example_whatIf() {
	const feeds = `
op1 1 0 P4 1 2 4
op1 1 0 P3 1 3
op3 3 0 P4 3 4
`
	ds, err := asmodel.ReadDataset(strings.NewReader(feeds))
	if err != nil {
		log.Fatal(err)
	}
	ds.Normalize()
	m, _, err := asmodel.BuildAndRefine(ds, ds, asmodel.RefineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	changes, err := m.WhatIfDepeer("P4", 2, 4, []asmodel.ASN{1})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range changes {
		fmt.Printf("AS%d: %v -> %v\n", c.AS, c.Before, c.After)
	}
	// Output:
	// AS1: [1 2 4] -> [1 3 4]
}
