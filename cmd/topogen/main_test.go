package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"asmodel/internal/dataset"
	"asmodel/internal/gen"
	"asmodel/internal/mrt"
)

func smallCfg() gen.Config {
	cfg := gen.DefaultConfig()
	cfg.NumTier2, cfg.NumTier3, cfg.NumStub = 8, 15, 25
	cfg.NumVantageASes = 10
	return cfg
}

func TestRunWritesDatasetAndMRT(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "paths.txt")
	mrtOut := filepath.Join(dir, "rib.mrt")
	if err := run(context.Background(), smallCfg(), out, mrtOut, true, 2, "", nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("empty dataset written")
	}
	mf, err := os.Open(mrtOut)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	mds, _, err := mrt.ToDataset(mf)
	if err != nil {
		t.Fatal(err)
	}
	if mds.Len() != ds.Len() {
		t.Errorf("MRT round trip: %d != %d records", mds.Len(), ds.Len())
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := smallCfg()
	cfg.NumTier1 = 0
	if err := run(context.Background(), cfg, filepath.Join(t.TempDir(), "x"), "", true, 1, "", nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run(context.Background(), smallCfg(), "/nonexistent-dir/paths.txt", "", true, 1, "", nil); err == nil {
		t.Error("bad output path accepted")
	}
	if err := run(context.Background(), smallCfg(), filepath.Join(t.TempDir(), "ok.txt"), "/nonexistent-dir/rib.mrt", true, 1, "", nil); err == nil {
		t.Error("bad MRT path accepted")
	}
}

func TestRunWorkerCountsProduceIdenticalOutput(t *testing.T) {
	dir := t.TempDir()
	seq := filepath.Join(dir, "seq.txt")
	par := filepath.Join(dir, "par.txt")
	if err := run(context.Background(), smallCfg(), seq, "", true, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), smallCfg(), par, "", true, 4, "", nil); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("-workers 4 output differs from sequential")
	}
}
