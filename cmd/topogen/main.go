// Command topogen generates a synthetic router-level Internet with
// ground-truth routing and writes the vantage-point observations as a
// dataset (and optionally as an MRT TABLE_DUMP_V2 file) — the substitute
// for collecting Routeviews/RIPE feeds.
//
// Usage:
//
//	topogen [flags] > paths.txt
//	topogen -mrt rib.mrt -o paths.txt
//	topogen -workers 8 -stubs 2000      # parallel ground-truth simulation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"asmodel/internal/gen"
	"asmodel/internal/mrt"
	"asmodel/internal/obs"
)

// Exit codes match cmd/asmodel's contract: 0 success, 1 runtime
// failure, 2 usage error, 3 interrupted by SIGINT/SIGTERM.
const (
	exitRuntime     = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	cfg := gen.DefaultConfig()
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.IntVar(&cfg.NumTier1, "tier1", cfg.NumTier1, "number of tier-1 ASes (fully meshed clique)")
	flag.IntVar(&cfg.NumTier2, "tier2", cfg.NumTier2, "number of tier-2 transit ASes")
	flag.IntVar(&cfg.NumTier3, "tier3", cfg.NumTier3, "number of tier-3 regional ASes")
	flag.IntVar(&cfg.NumStub, "stubs", cfg.NumStub, "number of stub ASes")
	flag.Float64Var(&cfg.MultiHomeProb, "multihome", cfg.MultiHomeProb, "stub multi-homing probability")
	flag.Float64Var(&cfg.ParallelLinkProb, "parallel", cfg.ParallelLinkProb, "parallel inter-AS link probability")
	flag.Float64Var(&cfg.WeirdPolicyFrac, "weird", cfg.WeirdPolicyFrac, "fraction of prefixes with schema-violating policies")
	flag.IntVar(&cfg.NumVantageASes, "vantage", cfg.NumVantageASes, "number of ASes hosting observation points")
	out := flag.String("o", "-", "dataset output file ('-' for stdout)")
	mrtOut := flag.String("mrt", "", "also write the dataset as an MRT TABLE_DUMP_V2 file")
	quiet := flag.Bool("q", false, "suppress the summary on stderr")
	workers := flag.Int("workers", gen.DefaultWorkers(), "worker-pool size for the ground-truth simulation (1 = sequential; identical output at any count)")
	report := flag.String("report", "", "write a schema-versioned JSON run report to this file")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "topogen: -workers must be >= 1")
		os.Exit(exitUsage)
	}
	// SIGINT/SIGTERM cancel the context so a long parallel generation
	// dies cleanly between prefixes instead of mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(exitRuntime)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/metrics (also /metrics.json, /debug/vars, /debug/pprof)\n", srv.Addr)
	}
	if err := run(ctx, cfg, *out, *mrtOut, *quiet, *workers, *report, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(exitInterrupted)
		}
		os.Exit(exitRuntime)
	}
}

func run(ctx context.Context, cfg gen.Config, out, mrtOut string, quiet bool, workers int, reportPath string, args []string) error {
	var rep *obs.RunReport
	var rec *obs.SpanRecorder
	if reportPath != "" {
		rep = obs.NewRunReport("topogen", args)
		rep.Seed = cfg.Seed
		rec = obs.NewSpanRecorder(nil, "topogen", obs.SpanOptions{})
		ctx = obs.ContextWithSpan(ctx, rec.Root())
	}

	_, gspan := obs.StartSpan(ctx, "generate", obs.A("seed", cfg.Seed))
	in, err := gen.Generate(cfg)
	gspan.End()
	if err != nil {
		return err
	}
	gspan.Set(obs.A("ases", len(in.ASNs())), obs.A("routers", in.RS.Net.NumRouters()))

	ds, err := in.RunAllParallel(ctx, workers)
	if err != nil {
		return err
	}

	_, wspan := obs.StartSpan(ctx, "write", obs.A("out", out), obs.A("mrt", mrtOut))
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			wspan.End()
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.Write(w); err != nil {
		wspan.End()
		return err
	}
	if mrtOut != "" {
		f, err := os.Create(mrtOut)
		if err != nil {
			wspan.End()
			return err
		}
		defer f.Close()
		if err := mrt.FromDataset(f, ds, uint32(gen.CollectionTime)); err != nil {
			wspan.End()
			return err
		}
	}
	wspan.Set(obs.A("records", ds.Len()))
	wspan.End()

	if !quiet {
		fmt.Fprintf(os.Stderr, "generated %d ASes (%d tier-1), %d routers, %d sessions, %d vantage points\n",
			len(in.ASNs()), len(in.Tier1), in.RS.Net.NumRouters(), in.RS.Net.NumSessions(), len(in.VantagePoints()))
		fmt.Fprintf(os.Stderr, "dataset: %d records, %d prefixes; weird policies: %d applied, %d reverted\n",
			ds.Len(), len(ds.Prefixes()), len(in.Weird), in.QuirksReverted)
	}
	if rep != nil {
		if err := rec.Finish(); err != nil {
			return err
		}
		rep.AddSection("generate", map[string]interface{}{
			"ases": len(in.ASNs()), "tier1": len(in.Tier1),
			"routers": in.RS.Net.NumRouters(), "sessions": in.RS.Net.NumSessions(),
			"vantage_points": len(in.VantagePoints()),
			"records":        ds.Len(), "prefixes": len(ds.Prefixes()),
			"weird_applied": len(in.Weird), "weird_reverted": in.QuirksReverted,
		})
		rep.Finish(rec, obs.Default())
		if err := rep.WriteFile(reportPath); err != nil {
			return fmt.Errorf("writing run report %s: %w", reportPath, err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "run report written to %s\n", reportPath)
		}
	}
	return nil
}
