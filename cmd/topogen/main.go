// Command topogen generates a synthetic router-level Internet with
// ground-truth routing and writes the vantage-point observations as a
// dataset (and optionally as an MRT TABLE_DUMP_V2 file) — the substitute
// for collecting Routeviews/RIPE feeds.
//
// Usage:
//
//	topogen [flags] > paths.txt
//	topogen -mrt rib.mrt -o paths.txt
//	topogen -workers 8 -stubs 2000      # parallel ground-truth simulation
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"asmodel/internal/gen"
	"asmodel/internal/mrt"
)

func main() {
	cfg := gen.DefaultConfig()
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.IntVar(&cfg.NumTier1, "tier1", cfg.NumTier1, "number of tier-1 ASes (fully meshed clique)")
	flag.IntVar(&cfg.NumTier2, "tier2", cfg.NumTier2, "number of tier-2 transit ASes")
	flag.IntVar(&cfg.NumTier3, "tier3", cfg.NumTier3, "number of tier-3 regional ASes")
	flag.IntVar(&cfg.NumStub, "stubs", cfg.NumStub, "number of stub ASes")
	flag.Float64Var(&cfg.MultiHomeProb, "multihome", cfg.MultiHomeProb, "stub multi-homing probability")
	flag.Float64Var(&cfg.ParallelLinkProb, "parallel", cfg.ParallelLinkProb, "parallel inter-AS link probability")
	flag.Float64Var(&cfg.WeirdPolicyFrac, "weird", cfg.WeirdPolicyFrac, "fraction of prefixes with schema-violating policies")
	flag.IntVar(&cfg.NumVantageASes, "vantage", cfg.NumVantageASes, "number of ASes hosting observation points")
	out := flag.String("o", "-", "dataset output file ('-' for stdout)")
	mrtOut := flag.String("mrt", "", "also write the dataset as an MRT TABLE_DUMP_V2 file")
	quiet := flag.Bool("q", false, "suppress the summary on stderr")
	workers := flag.Int("workers", gen.DefaultWorkers(), "worker-pool size for the ground-truth simulation (1 = sequential; identical output at any count)")
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "topogen: -workers must be >= 1")
		os.Exit(2)
	}
	if err := run(cfg, *out, *mrtOut, *quiet, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(cfg gen.Config, out, mrtOut string, quiet bool, workers int) error {
	in, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	ds, err := in.RunAllParallel(context.Background(), workers)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.Write(w); err != nil {
		return err
	}
	if mrtOut != "" {
		f, err := os.Create(mrtOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mrt.FromDataset(f, ds, uint32(gen.CollectionTime)); err != nil {
			return err
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "generated %d ASes (%d tier-1), %d routers, %d sessions, %d vantage points\n",
			len(in.ASNs()), len(in.Tier1), in.RS.Net.NumRouters(), in.RS.Net.NumSessions(), len(in.VantagePoints()))
		fmt.Fprintf(os.Stderr, "dataset: %d records, %d prefixes; weird policies: %d applied, %d reverted\n",
			ds.Len(), len(ds.Prefixes()), len(in.Weird), in.QuirksReverted)
	}
	return nil
}
