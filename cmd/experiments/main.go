// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers).
//
// Usage:
//
//	experiments             # all experiments at the default scale
//	experiments -seed 7 -scale 2
//	experiments -only table2,pipeline
//	experiments -json report.json          # machine-readable headline numbers
//	experiments -debug-addr :8080          # /metrics + /debug/pprof while running
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"asmodel/internal/experiments"
	"asmodel/internal/metrics"
	"asmodel/internal/model"
	"asmodel/internal/obs"
	"asmodel/internal/topology"
)

// Exit codes match cmd/asmodel's contract: 0 success, 1 runtime
// failure, 2 usage error, 3 interrupted by SIGINT/SIGTERM.
const (
	exitRuntime     = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.Int("scale", 1, "topology scale multiplier")
	only := flag.String("only", "", "comma-separated subset: stats,figure2,table1,table2,pipeline,unseen,combined,figure3,multiprefix,iterations,whatif,ablations")
	jsonPath := flag.String("json", "", "write headline numbers as JSON to this file")
	reportPath := flag.String("report", "", "write a schema-versioned JSON run report (per-section timing + metric snapshot) to this file")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	workers := flag.Int("workers", model.DefaultWorkers(), "worker-pool size for ground-truth generation, evaluations and refinement verify sweeps (1 = sequential; same results at any count)")
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "experiments: -workers must be >= 1")
		os.Exit(exitUsage)
	}

	// SIGINT/SIGTERM cancel the context so a long evaluation run dies
	// cleanly at the next section boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(exitRuntime)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/metrics (also /metrics.json, /debug/vars, /debug/pprof)\n", srv.Addr)
	}
	if err := run(ctx, *seed, *scale, *workers, *only, *jsonPath, *reportPath); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(exitInterrupted)
		}
		os.Exit(exitRuntime)
	}
}

// report collects every experiment's headline numbers for -json. Sections
// not selected via -only stay nil and are omitted from the output.
type report struct {
	Seed        int64                             `json:"seed"`
	Scale       int                               `json:"scale"`
	ASes        int                               `json:"ases"`
	Records     int                               `json:"records"`
	Prefixes    int                               `json:"prefixes"`
	ObsPoints   int                               `json:"obs_points"`
	Stats       *topology.Stats                   `json:"stats,omitempty"`
	Figure2     *figure2Report                    `json:"figure2,omitempty"`
	Table1      map[string]int                    `json:"table1,omitempty"`
	Table2      *table2Report                     `json:"table2,omitempty"`
	Pipeline    *experiments.RefineHeadline       `json:"pipeline,omitempty"`
	Unseen      *experiments.RefineHeadline       `json:"unseen,omitempty"`
	Combined    *experiments.RefineHeadline       `json:"combined,omitempty"`
	Figure3     *experiments.Figure3Result        `json:"figure3,omitempty"`
	MultiPrefix *experiments.MultiPrefixResult    `json:"multiprefix,omitempty"`
	Iterations  []experiments.IterationsRow       `json:"iterations,omitempty"`
	WhatIf      *experiments.WhatIfFidelityResult `json:"whatif,omitempty"`
	Ablations   []experiments.AblationRow         `json:"ablations,omitempty"`
}

type figure2Report struct {
	Pairs            int     `json:"pairs"`
	DiversePairsFrac float64 `json:"diverse_pairs_frac"`
	MaxDistinctPaths int     `json:"max_distinct_paths"`
}

type table2Report struct {
	ShortestPath *metrics.Summary `json:"shortest_path"`
	Policies     *metrics.Summary `json:"policies"`
}

func run(ctx context.Context, seed int64, scale, workers int, only, jsonPath, reportPath string) error {
	want := func(name string) bool {
		if only == "" {
			return true
		}
		for _, part := range strings.Split(only, ",") {
			if strings.TrimSpace(part) == name {
				return true
			}
		}
		return false
	}

	var runRep *obs.RunReport
	var rec *obs.SpanRecorder
	root := (*obs.Span)(nil)
	if reportPath != "" {
		runRep = obs.NewRunReport("experiments", os.Args[1:])
		runRep.Seed = seed
		rec = obs.NewSpanRecorder(nil, "experiments", obs.SpanOptions{})
		root = rec.Root()
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = seed
	if scale > 1 {
		cfg.NumTier2 *= scale
		cfg.NumTier3 *= scale
		cfg.NumStub *= scale
		cfg.NumVantageASes *= scale
	}
	fmt.Printf("== generating synthetic Internet (seed=%d, %d ASes) ==\n\n",
		seed, cfg.NumTier1+cfg.NumTier2+cfg.NumTier3+cfg.NumStub)
	gspan := root.StartChild("generate", obs.A("seed", seed), obs.A("scale", scale))
	s, err := experiments.NewSuiteWorkers(cfg, workers)
	gspan.End()
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d records, %d prefixes, %d observation points; %d weird policies (%d reverted)\n\n",
		s.Data.Len(), len(s.Data.Prefixes()), len(s.Data.ObsPoints()), len(s.Internet.Weird), s.Internet.QuirksReverted)

	rep := &report{
		Seed: seed, Scale: scale,
		ASes:      cfg.NumTier1 + cfg.NumTier2 + cfg.NumTier3 + cfg.NumStub,
		Records:   s.Data.Len(),
		Prefixes:  len(s.Data.Prefixes()),
		ObsPoints: len(s.Data.ObsPoints()),
	}

	section := func(name string, f func() (string, error)) error {
		if !want(name) {
			return nil
		}
		// Interrupts land between sections: each experiment is all-or-
		// nothing, so a canceled run never prints a half-computed table.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		sp := root.StartChild(name)
		out, err := f()
		sp.End()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
		fmt.Println(strings.Repeat("-", 72))
		return nil
	}

	if err := section("stats", func() (string, error) {
		st, out, err := s.TopologyStats()
		rep.Stats = &st
		return out, err
	}); err != nil {
		return err
	}
	if err := section("figure2", func() (string, error) {
		h, out := s.Figure2()
		rep.Figure2 = &figure2Report{
			Pairs:            h.Total(),
			DiversePairsFrac: h.FracAbove(1),
			MaxDistinctPaths: h.Max(),
		}
		return out, nil
	}); err != nil {
		return err
	}
	if err := section("table1", func() (string, error) {
		qs, out := s.Table1()
		rep.Table1 = make(map[string]int, len(qs))
		for q, v := range qs {
			rep.Table1[fmt.Sprintf("p%g", 100*q)] = v
		}
		return out, nil
	}); err != nil {
		return err
	}
	if err := section("table2", func() (string, error) {
		res, out, err := s.Table2()
		if err == nil {
			rep.Table2 = &table2Report{
				ShortestPath: res.ShortestPath.Summary,
				Policies:     res.Policies.Summary,
			}
		}
		return out, err
	}); err != nil {
		return err
	}
	if err := section("pipeline", func() (string, error) {
		o, err := s.RunPipeline(0.5, seed, experiments.RefineConfigDefault())
		if err != nil {
			return "", err
		}
		rep.Pipeline = o.Headline()
		out := o.Describe("E5+E6 / §5: refinement on training observation points, prediction for held-out ones")
		complexity, err := s.ComplexityByLevel(o)
		if err != nil {
			return "", err
		}
		return out + "\n" + complexity, nil
	}); err != nil {
		return err
	}
	if err := section("unseen", func() (string, error) {
		o, err := s.UnseenPrefixes(0.5, seed)
		if err != nil {
			return "", err
		}
		rep.Unseen = o.Headline()
		return o.Describe("E7 / §4.7: origin split — predicting prefixes of unseen origins"), nil
	}); err != nil {
		return err
	}
	if err := section("combined", func() (string, error) {
		o, err := s.CombinedSplit(0.5, seed)
		if err != nil {
			return "", err
		}
		rep.Combined = o.Headline()
		return o.Describe("E7b / §4.2 combined split — held-out feeds observing held-out origins"), nil
	}); err != nil {
		return err
	}
	if err := section("figure3", func() (string, error) {
		res, out := s.Figure3()
		rep.Figure3 = res
		return out, nil
	}); err != nil {
		return err
	}
	if err := section("multiprefix", func() (string, error) {
		mpCfg := cfg
		mpCfg.NumTier3 /= 2
		mpCfg.NumStub /= 2
		res, out, err := experiments.MultiPrefixStudy(mpCfg, 3)
		rep.MultiPrefix = res
		return out, err
	}); err != nil {
		return err
	}
	if err := section("iterations", func() (string, error) {
		rows, out, err := s.IterationsVsPathLength([]int64{seed, seed + 1, seed + 2})
		rep.Iterations = rows
		return out, err
	}); err != nil {
		return err
	}
	if err := section("whatif", func() (string, error) {
		res, out, err := s.WhatIfFidelity(8, 3)
		rep.WhatIf = res
		return out, err
	}); err != nil {
		return err
	}
	if err := section("ablations", func() (string, error) {
		rows, out, err := s.Ablations(seed)
		rep.Ablations = rows
		return out, err
	}); err != nil {
		return err
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		fmt.Printf("headline numbers written to %s\n", jsonPath)
	}
	if runRep != nil {
		if err := rec.Finish(); err != nil {
			return err
		}
		runRep.AddSection("headline", rep)
		runRep.Finish(rec, obs.Default())
		if err := runRep.WriteFile(reportPath); err != nil {
			return fmt.Errorf("writing run report %s: %w", reportPath, err)
		}
		fmt.Printf("run report written to %s\n", reportPath)
	}
	return nil
}
