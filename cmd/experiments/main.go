// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers).
//
// Usage:
//
//	experiments             # all experiments at the default scale
//	experiments -seed 7 -scale 2
//	experiments -only table2,pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asmodel/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.Int("scale", 1, "topology scale multiplier")
	only := flag.String("only", "", "comma-separated subset: stats,figure2,table1,table2,pipeline,unseen,combined,figure3,multiprefix,iterations,whatif,ablations")
	flag.Parse()

	if err := run(*seed, *scale, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(seed int64, scale int, only string) error {
	want := func(name string) bool {
		if only == "" {
			return true
		}
		for _, part := range strings.Split(only, ",") {
			if strings.TrimSpace(part) == name {
				return true
			}
		}
		return false
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = seed
	if scale > 1 {
		cfg.NumTier2 *= scale
		cfg.NumTier3 *= scale
		cfg.NumStub *= scale
		cfg.NumVantageASes *= scale
	}
	fmt.Printf("== generating synthetic Internet (seed=%d, %d ASes) ==\n\n",
		seed, cfg.NumTier1+cfg.NumTier2+cfg.NumTier3+cfg.NumStub)
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d records, %d prefixes, %d observation points; %d weird policies (%d reverted)\n\n",
		s.Data.Len(), len(s.Data.Prefixes()), len(s.Data.ObsPoints()), len(s.Internet.Weird), s.Internet.QuirksReverted)

	section := func(name string, f func() (string, error)) error {
		if !want(name) {
			return nil
		}
		out, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
		fmt.Println(strings.Repeat("-", 72))
		return nil
	}

	if err := section("stats", func() (string, error) {
		_, out, err := s.TopologyStats()
		return out, err
	}); err != nil {
		return err
	}
	if err := section("figure2", func() (string, error) {
		_, out := s.Figure2()
		return out, nil
	}); err != nil {
		return err
	}
	if err := section("table1", func() (string, error) {
		_, out := s.Table1()
		return out, nil
	}); err != nil {
		return err
	}
	if err := section("table2", func() (string, error) {
		_, out, err := s.Table2()
		return out, err
	}); err != nil {
		return err
	}
	if err := section("pipeline", func() (string, error) {
		o, err := s.RunPipeline(0.5, seed, experiments.RefineConfigDefault())
		if err != nil {
			return "", err
		}
		out := o.Describe("E5+E6 / §5: refinement on training observation points, prediction for held-out ones")
		complexity, err := s.ComplexityByLevel(o)
		if err != nil {
			return "", err
		}
		return out + "\n" + complexity, nil
	}); err != nil {
		return err
	}
	if err := section("unseen", func() (string, error) {
		o, err := s.UnseenPrefixes(0.5, seed)
		if err != nil {
			return "", err
		}
		return o.Describe("E7 / §4.7: origin split — predicting prefixes of unseen origins"), nil
	}); err != nil {
		return err
	}
	if err := section("combined", func() (string, error) {
		o, err := s.CombinedSplit(0.5, seed)
		if err != nil {
			return "", err
		}
		return o.Describe("E7b / §4.2 combined split — held-out feeds observing held-out origins"), nil
	}); err != nil {
		return err
	}
	if err := section("figure3", func() (string, error) {
		return s.Figure3(), nil
	}); err != nil {
		return err
	}
	if err := section("multiprefix", func() (string, error) {
		mpCfg := cfg
		mpCfg.NumTier3 /= 2
		mpCfg.NumStub /= 2
		return experiments.MultiPrefixStudy(mpCfg, 3)
	}); err != nil {
		return err
	}
	if err := section("iterations", func() (string, error) {
		return s.IterationsVsPathLength([]int64{seed, seed + 1, seed + 2})
	}); err != nil {
		return err
	}
	if err := section("whatif", func() (string, error) {
		_, out, err := s.WhatIfFidelity(8, 3)
		return out, err
	}); err != nil {
		return err
	}
	if err := section("ablations", func() (string, error) {
		_, out, err := s.Ablations(seed)
		return out, err
	}); err != nil {
		return err
	}
	return nil
}
