package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunJSONReport runs a fast subset of the suite and checks the -json
// report is machine-readable and carries the selected sections' headline
// numbers (others omitted).
func TestRunJSONReport(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	if err := run(context.Background(), 1, 1, 2, "figure2,figure3", jsonPath, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Seed != 1 || rep.Records == 0 || rep.Prefixes == 0 {
		t.Errorf("dataset header: %+v", rep)
	}
	if rep.Figure2 == nil || rep.Figure2.Pairs == 0 {
		t.Errorf("figure2 section: %+v", rep.Figure2)
	}
	if rep.Figure3 == nil || rep.Figure3.DistinctPaths < 1 {
		t.Errorf("figure3 section: %+v", rep.Figure3)
	}
	if rep.Pipeline != nil || rep.Ablations != nil {
		t.Error("unselected sections present in report")
	}
}
