// Command asmodeld serves route predictions from a refined AS-topology
// model: a long-lived daemon that loads a refinement checkpoint (or a
// saved model) into an immutable snapshot and answers
// (vantage, prefix) → predicted AS-path queries over HTTP/JSON, with
// validated hot-swap, load shedding and a graceful drain.
//
//	asmodeld -checkpoint ckpt.txt -addr :8480            # serve
//	asmodeld -model model.txt -addr :8480 -watch 5s      # auto-reload
//	asmodeld -checkpoint stream.state -watch 2s          # follow asmodel stream
//	asmodeld -loadgen -gen-seed 1 -out BENCH_serve.json  # benchmark
//
// -checkpoint also accepts an `asmodel stream` state file
// (asmodel-stream-cursor-v1): the embedded checkpoint is served, and
// with -watch the daemon hot-swaps after each committed batch,
// debounced by -watch-debounce so rapid batches coalesce.
//
// Exit codes: 0 clean shutdown (SIGINT/SIGTERM drained), 1 runtime
// failure, 2 usage error, 3 drain deadline exceeded (accepted requests
// were cut off).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asmodel/internal/dataset"
	"asmodel/internal/gen"
	"asmodel/internal/model"
	"asmodel/internal/obs"
	"asmodel/internal/serve"
	"asmodel/internal/topology"
)

const (
	exitOK          = 0
	exitRuntime     = 1
	exitUsage       = 2
	exitInterrupted = 3
)

// usageError marks an error as the caller's fault (bad flags) so run
// maps it to exitUsage; quiet suppresses re-printing when the flag
// package already reported it.
type usageError struct {
	err   error
	quiet bool
}

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:]))
}

// debugServer holds the optional -debug-addr endpoint, as a package
// variable so tests can reach its resolved address.
var debugServer *obs.Server

func run(ctx context.Context, args []string) int {
	err := realMain(ctx, args)
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, flag.ErrHelp):
		return exitOK
	default:
		var uerr usageError
		if errors.As(err, &uerr) {
			if !uerr.quiet {
				fmt.Fprintln(os.Stderr, "asmodeld:", err)
			}
			return exitUsage
		}
		var derr *serve.DrainError
		if errors.As(err, &derr) {
			fmt.Fprintln(os.Stderr, "asmodeld:", err)
			return exitInterrupted
		}
		fmt.Fprintln(os.Stderr, "asmodeld:", err)
		return exitRuntime
	}
}

func realMain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("asmodeld", flag.ContinueOnError)
	var (
		checkpoint   = fs.String("checkpoint", "", "refinement checkpoint to serve (asmodel-checkpoint-v1; .bak fallback applies)")
		modelPath    = fs.String("model", "", "saved model to serve instead of a checkpoint (asmodel save format)")
		addr         = fs.String("addr", ":8480", "HTTP listen address (\":0\" picks a free port)")
		watch        = fs.Duration("watch", 0, "poll the source file and hot-swap on change (0 disables)")
		watchDeb     = fs.Duration("watch-debounce", time.Second, "hold a detected change until the file is quiet this long, coalescing rapid commits into one swap (0 swaps immediately)")
		probes       = fs.Int("probes", serve.DefaultProbes, "validation probes per candidate snapshot (-1 disables)")
		maxInflight  = fs.Int("max-inflight", serve.DefaultMaxInflight, "in-flight request bound before shedding with 429")
		timeout      = fs.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline (504 on overrun)")
		drainTimeout = fs.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful drain deadline on SIGINT/SIGTERM")
		k            = fs.Int("k", serve.DefaultAlternates, "default top-k alternates per prediction (?k= overrides)")
		debugAddr    = fs.String("debug-addr", "", "separate obs debug endpoint (the main listener already serves /metrics)")
		reportPath   = fs.String("report", "", "write a schema-versioned JSON run report on exit")

		loadgen  = fs.Bool("loadgen", false, "run the load generator against an in-process daemon instead of serving")
		requests = fs.Int("requests", 2000, "loadgen: total request count")
		clients  = fs.Int("clients", 8, "loadgen: concurrent clients")
		seed     = fs.Int64("seed", 1, "loadgen: query-stream seed")
		reloads  = fs.Int("reloads", 4, "loadgen: hot-swaps fired during the run (needs -checkpoint/-model/-gen-seed)")
		genSeed  = fs.Int64("gen-seed", 0, "loadgen: serve a synthetic-Internet initial model with this seed instead of a file")
		outPath  = fs.String("out", "BENCH_serve.json", "loadgen: report output file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return usageError{err: err, quiet: true}
	}
	if fs.NArg() > 0 {
		return usageError{err: fmt.Errorf("unexpected arguments: %v", fs.Args())}
	}
	if !*loadgen && *checkpoint == "" && *modelPath == "" {
		return usageError{err: errors.New("one of -checkpoint or -model is required")}
	}
	if *loadgen && *checkpoint == "" && *modelPath == "" && *genSeed == 0 {
		*genSeed = 1
	}
	if *loadgen && *addr == ":8480" {
		// Benchmarks shouldn't squat the default serving port.
		*addr = "127.0.0.1:0"
	}
	if *debugAddr != "" && debugServer == nil {
		srv, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			return err
		}
		debugServer = srv
		fmt.Fprintf(os.Stderr, "asmodeld: debug endpoints on http://%s/metrics\n", srv.Addr)
	}

	var report *obs.RunReport
	if *reportPath != "" {
		report = obs.NewRunReport("asmodeld", args)
	}

	cfg := serve.Config{
		CheckpointPath: *checkpoint,
		ModelPath:      *modelPath,
		Addr:           *addr,
		Probes:         *probes,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		DrainTimeout:   *drainTimeout,
		WatchInterval:  *watch,
		WatchDebounce:  *watchDeb,
		MaxAlternates:  *k,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "asmodeld: "+format+"\n", a...)
		},
	}
	srv := serve.New(cfg)

	var runErr error
	if *loadgen {
		runErr = runLoadGen(ctx, srv, loadGenParams{
			genSeed: *genSeed, requests: *requests, clients: *clients,
			seed: *seed, reloads: *reloads, k: *k, out: *outPath,
		})
	} else {
		runErr = srv.Run(ctx)
	}

	if report != nil {
		if snap := srv.Snapshot(); snap != nil {
			report.AddSection("serve", map[string]any{
				"snapshot_seq":    snap.Seq,
				"source":          snap.Source,
				"origin":          snap.Origin,
				"iteration":       snap.Iteration,
				"prefixes":        snap.Model().Universe.Len(),
				"quasi_routers":   snap.Model().NumQuasiRouters(),
				"cached_prefixes": snap.CachedPrefixes(),
			})
		}
		report.Finish(nil, obs.Default())
		if err := report.WriteFile(*reportPath); err != nil {
			if runErr == nil {
				runErr = fmt.Errorf("writing run report %s: %w", *reportPath, err)
			}
		} else {
			fmt.Fprintf(os.Stderr, "asmodeld: run report written to %s\n", *reportPath)
		}
	}
	return runErr
}

type loadGenParams struct {
	genSeed  int64
	requests int
	clients  int
	seed     int64
	reloads  int
	k        int
	out      string
}

// runLoadGen benchmarks the serving stack: an in-process daemon on a
// loopback port under a seeded query fleet, writing the
// asmodel-bench-serve-v1 report gated by make bench-check.
func runLoadGen(ctx context.Context, srv *serve.Server, p loadGenParams) error {
	var m *model.Model
	if p.genSeed != 0 {
		fmt.Fprintf(os.Stderr, "asmodeld: generating synthetic Internet (seed=%d)...\n", p.genSeed)
		cfg := gen.DefaultConfig()
		cfg.Seed = p.genSeed
		in, err := gen.Generate(cfg)
		if err != nil {
			return err
		}
		ds, err := in.RunAllParallel(ctx, gen.DefaultWorkers())
		if err != nil {
			return err
		}
		ds.Normalize()
		m, err = model.NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
		if err != nil {
			return err
		}
	}
	start := time.Now()
	rep, err := serve.RunLoadGen(ctx, srv, m, serve.LoadGenConfig{
		Requests: p.requests, Clients: p.clients, Seed: p.seed, Reloads: reloadsFor(srv, p), K: p.k,
	})
	if err != nil {
		return err
	}
	if err := serve.WriteBenchReport(p.out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"asmodeld: loadgen done in %v: %d ok, %d shed, %d errors, p50=%.2fms p99=%.2fms (%.0f req/s), report %s\n",
		time.Since(start).Round(time.Millisecond), rep.OK, rep.Shed, rep.Errors,
		float64(rep.LatencyP50NS)/1e6, float64(rep.LatencyP99NS)/1e6, rep.RequestsPerS, p.out)
	if rep.Errors > 0 {
		return fmt.Errorf("loadgen saw %d errored requests", rep.Errors)
	}
	return nil
}

// reloadsFor disables mid-run reloads when serving an in-memory model:
// there is no source file to re-POST.
func reloadsFor(srv *serve.Server, p loadGenParams) int {
	if p.genSeed != 0 {
		return 0
	}
	return p.reloads
}
