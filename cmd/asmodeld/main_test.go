package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/model"
	"asmodel/internal/serve"
	"asmodel/internal/topology"
)

// writeTinyCheckpoint builds a minimal refined-model checkpoint the
// daemon can serve.
func writeTinyCheckpoint(t *testing.T, path string) {
	t.Helper()
	rec := func(obs string, prefix string, path ...bgp.ASN) dataset.Record {
		return dataset.Record{Obs: dataset.ObsPointID(obs), ObsAS: path[0], Prefix: prefix, Path: bgp.Path(path)}
	}
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("o1", "P1", 1, 2, 4),
		rec("o2", "P1", 3, 1, 2, 4),
		rec("o3", "P2", 1, 3),
		rec("o4", "P3", 2, 5),
	}}
	m, err := model.NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	cp := &model.Checkpoint{
		Iteration: 4,
		Works:     []model.CheckpointWork{{Prefix: "P1", State: "settled"}},
		Model:     m,
	}
	var buf bytes.Buffer
	if err := model.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestExitCodes(t *testing.T) {
	ctx := context.Background()
	if got := run(ctx, nil); got != exitUsage {
		t.Fatalf("no args: exit %d, want %d", got, exitUsage)
	}
	if got := run(ctx, []string{"-h"}); got != exitOK {
		t.Fatalf("-h: exit %d, want %d", got, exitOK)
	}
	if got := run(ctx, []string{"-no-such-flag"}); got != exitUsage {
		t.Fatalf("bad flag: exit %d, want %d", got, exitUsage)
	}
	if got := run(ctx, []string{"-checkpoint", "x", "stray"}); got != exitUsage {
		t.Fatalf("stray arg: exit %d, want %d", got, exitUsage)
	}
	if got := run(ctx, []string{"-checkpoint", "/nonexistent/ckpt"}); got != exitRuntime {
		t.Fatalf("missing checkpoint: exit %d, want %d", got, exitRuntime)
	}
}

// TestServeSmoke boots the daemon on a loopback port, lets it serve,
// then sends the drain signal (context cancel, as SIGTERM does) and
// expects a clean exit with a run report.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.txt")
	writeTinyCheckpoint(t, ckpt)
	report := filepath.Join(dir, "report.json")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-checkpoint", ckpt, "-addr", "127.0.0.1:0", "-report", report})
	}()
	time.Sleep(400 * time.Millisecond)
	cancel()
	select {
	case got := <-done:
		if got != exitOK {
			t.Fatalf("drained daemon exited %d, want %d", got, exitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("run report missing: %v", err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	sections, ok := rep["sections"].(map[string]any)
	if !ok || sections["serve"] == nil {
		t.Fatalf("run report has no serve section: %s", data)
	}
}

// TestLoadGenSmoke runs the full loadgen path — real daemon, real HTTP,
// mid-run reloads from the checkpoint file — and checks the bench
// report it writes.
func TestLoadGenSmoke(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.txt")
	writeTinyCheckpoint(t, ckpt)
	out := filepath.Join(dir, "bench.json")

	got := run(context.Background(), []string{
		"-loadgen", "-checkpoint", ckpt,
		"-requests", "120", "-clients", "6", "-reloads", "3", "-seed", "2",
		"-out", out,
	})
	if got != exitOK {
		t.Fatalf("loadgen exited %d, want %d", got, exitOK)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "asmodel-bench-serve-v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.OK+rep.Shed+rep.Errors != 120 {
		t.Fatalf("requests unaccounted for: ok=%d shed=%d errors=%d", rep.OK, rep.Shed, rep.Errors)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", rep.Errors)
	}
	if rep.SwapsApplied < 1 {
		t.Fatalf("no swaps applied during loadgen: %+v", rep)
	}
}
