// Command streambench measures the streaming incremental-refinement
// loop and proves its crash-recovery contract, writing the
// schema-versioned BENCH_stream.json gated by make bench-check.
//
// The benchmark emits a deterministic synthetic MRT update stream,
// bootstraps a model from it, and times a clean oneshot run
// (per-batch commit latency percentiles, records/s). It then re-runs
// the same stream but stops half way — as a crash after a commit
// would — resumes from the committed cursor, times the recovery
// replay, and checks the resumed run's final state file is
// byte-identical to the clean run's: the "identical" field is the
// report's hard determinism gate.
//
// Usage:
//
//	streambench -out BENCH_stream.json            # benchmark (make bench-stream)
//	streambench -emit updates.mrt -seed 7         # just emit the update stream (CI crash smoke)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"asmodel/internal/dataset"
	"asmodel/internal/durable"
	"asmodel/internal/gen"
	"asmodel/internal/mrt"
	"asmodel/internal/stream"
)

const benchSchema = "asmodel-bench-stream-v1"

// report is the BENCH_stream.json payload; obsreport check keys its
// baseline rules (baselines/BENCH_stream.baseline.json) on the schema.
type report struct {
	Schema     string `json:"schema"`
	Seed       int64  `json:"seed"`
	Batch      int    `json:"batch"`
	Workers    int    `json:"workers"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Hostname   string `json:"hostname,omitempty"`
	Note       string `json:"note"`

	// Clean-run accounting (from the committed cursor).
	Records            int64 `json:"records"`
	Batches            int64 `json:"batches"`
	ChangedPrefixes    int   `json:"changed_prefixes"`
	RefinedPrefixes    int   `json:"refined_prefixes"`
	Iterations         int   `json:"iterations"`
	SkippedRecords     int   `json:"skipped_records"`
	QuarantinedBatches int   `json:"quarantined_batches"`

	// Per-batch commit-to-commit latency over the clean run, nanoseconds.
	BatchP50NS int64 `json:"batch_p50_ns"`
	BatchP90NS int64 `json:"batch_p90_ns"`
	BatchP99NS int64 `json:"batch_p99_ns"`
	BatchMaxNS int64 `json:"batch_max_ns"`

	ElapsedNS   int64   `json:"elapsed_ns"`
	RecordsPerS float64 `json:"records_per_s"`

	// Crash/resume: the second run is cut after half the batches, then
	// resumed. RecoveryNS times the cursor-replay alone (run start to the
	// recovery event); Identical is the byte-compare of the resumed run's
	// final state file against the clean run's.
	ResumedAtBatch int64 `json:"resumed_at_batch"`
	RecoveryNS     int64 `json:"recovery_ns"`
	Identical      bool  `json:"identical"`
}

// genUpdates generates the synthetic internet and returns it as a
// normalized dataset — the ground truth both the update stream and the
// bootstrap model derive from.
func genUpdates(ctx context.Context, seed int64) (*dataset.Dataset, error) {
	in, err := gen.Generate(gen.Config{
		Seed:             seed,
		NumTier1:         3,
		NumTier2:         6,
		NumTier3:         10,
		NumStub:          14,
		RoutersTier1:     2,
		RoutersTier2:     2,
		RoutersTier3:     1,
		MultiHomeProb:    0.5,
		Tier2PeerProb:    0.2,
		Tier3PeerProb:    0.1,
		ParallelLinkProb: 0.3,
		WeirdPolicyFrac:  0.1,
		NumVantageASes:   8,
		MaxVantagePerAS:  1,
	})
	if err != nil {
		return nil, err
	}
	ds, err := in.RunAllParallel(ctx, gen.DefaultWorkers())
	if err != nil {
		return nil, err
	}
	return ds.Normalize(), nil
}

func emitUpdates(ctx context.Context, path string, seed int64) (int, error) {
	ds, err := genUpdates(ctx, seed)
	if err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := mrt.WriteUpdates(f, ds, 1000, 1)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// bootstrapFrom replays the emitted stream back into a dataset so the
// bootstrap universe uses the stream's own (CIDR) prefix naming.
func bootstrapFrom(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, _, err := mrt.UpdatesToDataset(f, 0, 0)
	if err != nil {
		return nil, err
	}
	return ds, nil
}

func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	out := flag.String("out", "BENCH_stream.json", "report output file")
	seed := flag.Int64("seed", 7, "synthetic-internet generator seed")
	batch := flag.Int("batch", 32, "records per stream batch")
	workers := flag.Int("workers", 1, "speculative-refinement pool per batch")
	emit := flag.String("emit", "", "just emit the deterministic MRT update stream to this path and exit")
	flag.Parse()
	ctx := context.Background()
	if *emit != "" {
		n, err := emitUpdates(ctx, *emit, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streambench:", err)
			os.Exit(1)
		}
		fmt.Printf("streambench: %d records written to %s (seed=%d)\n", n, *emit, *seed)
		return
	}
	if err := run(ctx, *out, *seed, *batch, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "streambench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out string, seed int64, batch, workers int) error {
	dir, err := os.MkdirTemp("", "streambench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	updates := filepath.Join(dir, "updates.mrt")
	nrec, err := emitUpdates(ctx, updates, seed)
	if err != nil {
		return err
	}
	boot, err := bootstrapFrom(updates)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streambench: %d records, batch=%d, workers=%d\n", nrec, batch, workers)

	cfg := func(statePath string) stream.Config {
		return stream.Config{
			Source:       stream.NewFileSource(updates, false, 0),
			StatePath:    statePath,
			BatchRecords: batch,
			Workers:      workers,
			Bootstrap:    boot,
		}
	}

	// Clean run, timing commit-to-commit batch latency.
	cleanState := filepath.Join(dir, "clean.state")
	var lats []int64
	last := time.Now()
	c := cfg(cleanState)
	c.OnCommit = func(*stream.State) {
		now := time.Now()
		lats = append(lats, now.Sub(last).Nanoseconds())
		last = now
	}
	start := time.Now()
	res, err := stream.New(c).Run(ctx)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if res.Batches < 2 {
		return fmt.Errorf("stream too short to benchmark: %d batches", res.Batches)
	}

	// Crash/resume run: stop half way (the state file then looks exactly
	// like a kill after that commit), resume, compare final bytes.
	crashState := filepath.Join(dir, "crash.state")
	half := res.Batches / 2
	c2 := cfg(crashState)
	c2.MaxBatches = half
	if _, err := stream.New(c2).Run(ctx); err != nil {
		return err
	}
	var recovery time.Duration
	c3 := cfg(crashState)
	c3.Observer = func(ev stream.Event) {
		if ev.Type == "recovery" {
			recovery = time.Since(start)
		}
	}
	start = time.Now()
	res2, err := stream.New(c3).Run(ctx)
	if err != nil {
		return err
	}
	if !res2.Recovered {
		return fmt.Errorf("second run did not resume from the committed cursor")
	}
	cleanBytes, err := os.ReadFile(cleanState)
	if err != nil {
		return err
	}
	crashBytes, err := os.ReadFile(crashState)
	if err != nil {
		return err
	}
	identical := bytes.Equal(cleanBytes, crashBytes)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	host, _ := os.Hostname()
	rep := &report{
		Schema: benchSchema, Seed: seed, Batch: batch, Workers: workers,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Hostname: host,
		Note: "oneshot streaming refinement over a seeded synthetic update stream; " +
			"identical = resumed-after-cut state file byte-equals the clean run's",
		Records: res.Records, Batches: res.Batches,
		ChangedPrefixes:    res.Totals.ChangedPrefixes,
		RefinedPrefixes:    res.Totals.RefinedPrefixes,
		Iterations:         res.Totals.Iterations,
		SkippedRecords:     res.Totals.SkippedRecords,
		QuarantinedBatches: res.Totals.QuarantinedBatch,
		BatchP50NS:         percentile(lats, 0.50),
		BatchP90NS:         percentile(lats, 0.90),
		BatchP99NS:         percentile(lats, 0.99),
		BatchMaxNS:         percentile(lats, 1.0),
		ElapsedNS:          elapsed.Nanoseconds(),
		RecordsPerS:        float64(res.Records) / elapsed.Seconds(),
		ResumedAtBatch:     half,
		RecoveryNS:         recovery.Nanoseconds(),
		Identical:          identical,
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Printf("streambench: %d batches (%d records) in %v, p50=%.2fms p99=%.2fms, %.0f records/s, recovery=%.2fms, identical=%v, report %s\n",
		res.Batches, res.Records, elapsed.Round(time.Millisecond),
		float64(rep.BatchP50NS)/1e6, float64(rep.BatchP99NS)/1e6, rep.RecordsPerS,
		float64(rep.RecoveryNS)/1e6, identical, out)
	if !identical {
		return fmt.Errorf("resumed run diverged from the clean run (state files differ)")
	}
	return nil
}

func writeJSON(path string, v interface{}) error {
	return durable.WriteFileAtomic(path, durable.Policy{}, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}
