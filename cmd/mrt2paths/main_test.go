package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
	"asmodel/internal/mrt"
)

func writeMRTFile(t *testing.T, gzipped bool) string {
	t.Helper()
	ds := &dataset.Dataset{Records: []dataset.Record{
		{Obs: "op1", ObsAS: 10, Prefix: "192.0.2.0/24", Path: bgp.Path{10, 20, 40}, Learned: 100},
		{Obs: "op2", ObsAS: 11, Prefix: "192.0.2.0/24", Path: bgp.Path{11, 11, 40}, Learned: 5000},
	}}
	var buf bytes.Buffer
	if err := mrt.FromDataset(&buf, ds, 1234); err != nil {
		t.Fatal(err)
	}
	name := "rib.mrt"
	data := buf.Bytes()
	if gzipped {
		var gzBuf bytes.Buffer
		gw := gzip.NewWriter(&gzBuf)
		gw.Write(data)
		gw.Close()
		data = gzBuf.Bytes()
		name = "rib.mrt.gz"
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readOut(t *testing.T, path string) *dataset.Dataset {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunRIBPlain(t *testing.T) {
	in := writeMRTFile(t, false)
	out := filepath.Join(t.TempDir(), "paths.txt")
	if err := run(context.Background(), in, out, 0, 3600, true, false, ingest.Options{}, "", nil); err != nil {
		t.Fatal(err)
	}
	ds := readOut(t, out)
	if ds.Len() != 2 {
		t.Fatalf("records=%d", ds.Len())
	}
	// Normalization stripped the prepending of peer 11's path.
	for _, r := range ds.Records {
		if !r.Path.StripPrepend().Equal(r.Path) {
			t.Errorf("prepending survived: %v", r.Path)
		}
	}
}

func TestRunRIBGzip(t *testing.T) {
	in := writeMRTFile(t, true)
	out := filepath.Join(t.TempDir(), "paths.txt")
	if err := run(context.Background(), in, out, 0, 3600, false, false, ingest.Options{}, "", nil); err != nil {
		t.Fatal(err)
	}
	if readOut(t, out).Len() != 2 {
		t.Fatal("gzip path broken")
	}
}

func TestRunStableFilter(t *testing.T) {
	in := writeMRTFile(t, false)
	out := filepath.Join(t.TempDir(), "paths.txt")
	// Cutoff 4000 with one hour min-age drops the route learned at 5000
	// AND keeps the one from 100.
	if err := run(context.Background(), in, out, 4000, 3600, true, false, ingest.Options{}, "", nil); err != nil {
		t.Fatal(err)
	}
	ds := readOut(t, out)
	if ds.Len() != 1 {
		t.Fatalf("records=%d, want 1 after stability filter", ds.Len())
	}
}

func TestRunUpdatesMode(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	u := &mrt.Update{
		Attrs: &mrt.PathAttrs{
			Origin:   bgp.OriginIGP,
			Segments: mrt.SequencePath(bgp.Path{10, 40}),
			NextHop:  netip.AddrFrom4([4]byte{10, 0, 0, 9}),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
	}
	if err := w.WriteBGP4MPUpdate(100, 10, 65000,
		netip.AddrFrom4([4]byte{10, 0, 0, 1}), netip.AddrFrom4([4]byte{10, 0, 0, 2}), u); err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "updates.mrt")
	if err := os.WriteFile(in, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "paths.txt")
	if err := run(context.Background(), in, out, 0, 0, true, true, ingest.Options{}, "", nil); err != nil {
		t.Fatal(err)
	}
	ds := readOut(t, out)
	if ds.Len() != 1 {
		t.Fatalf("records=%d", ds.Len())
	}
	if !ds.Records[0].Path.Equal(bgp.Path{10, 40}) {
		t.Errorf("path=%v", ds.Records[0].Path)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "/nonexistent", "-", 0, 0, true, false, ingest.Options{}, "", nil); err == nil {
		t.Error("missing input accepted")
	}
	in := writeMRTFile(t, false)
	if err := run(context.Background(), in, "/nonexistent-dir/out.txt", 0, 0, true, false, ingest.Options{}, "", nil); err == nil {
		t.Error("bad output accepted")
	}
}
