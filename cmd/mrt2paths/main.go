// Command mrt2paths converts MRT TABLE_DUMP_V2 RIB dumps (the format of
// the Routeviews and RIPE RIS archives, RFC 6396) into the dataset text
// format the modeling tools consume. Gzipped dumps are handled
// transparently by extension.
//
// Usage:
//
//	mrt2paths rib.20051113.0730.mrt[.gz] > paths.txt
//	mrt2paths -stable-at 1131867000 -min-age 3600 rib.mrt -o paths.txt
//	mrt2paths -updates updates.mrt -o paths.txt   # replay a BGP4MP stream
package main

import (
	"compress/gzip"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
	"asmodel/internal/mrt"
	"asmodel/internal/obs"
)

// Exit codes match cmd/asmodel's contract: 0 success, 1 runtime
// failure, 2 usage error, 3 interrupted by SIGINT/SIGTERM.
const (
	exitRuntime     = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	out := flag.String("o", "-", "output file ('-' for stdout)")
	stableAt := flag.Int64("stable-at", 0, "keep only routes learned before this Unix time (0 = keep all)")
	minAge := flag.Int64("min-age", 3600, "with -stable-at: minimum route age in seconds (paper: one hour)")
	normalize := flag.Bool("normalize", true, "strip AS-path prepending, drop loops, de-duplicate (§3.1)")
	updates := flag.Bool("updates", false, "input is a BGP4MP update stream; replay it to a table snapshot")
	strict := flag.Bool("strict", false, "abort on the first malformed MRT record instead of skipping it")
	maxErrs := flag.Int("max-record-errors", ingest.DefaultMaxRecordErrors,
		"malformed records tolerated before giving up (-1 = unlimited; ignored with -strict)")
	report := flag.String("report", "", "write a schema-versioned JSON run report to this file")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrt2paths [flags] <rib.mrt[.gz]>")
		os.Exit(exitUsage)
	}
	// SIGINT/SIGTERM cancel the context so a long ingest dies cleanly
	// between records instead of mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrt2paths:", err)
			os.Exit(exitRuntime)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/metrics (also /metrics.json, /debug/vars, /debug/pprof)\n", srv.Addr)
	}
	opts := ingest.Options{Strict: *strict, MaxRecordErrors: *maxErrs}
	if err := run(ctx, flag.Arg(0), *out, *stableAt, *minAge, *normalize, *updates, opts, *report, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mrt2paths:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(exitInterrupted)
		}
		os.Exit(exitRuntime)
	}
}

// ctxReader aborts a streaming ingest when the context is canceled: the
// MRT readers have no context parameter, so cancellation is threaded
// through the io.Reader they consume.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

func run(ctx context.Context, in, out string, stableAt, minAge int64, normalize, updates bool, opts ingest.Options, reportPath string, args []string) error {
	var runRep *obs.RunReport
	var rec *obs.SpanRecorder
	root := (*obs.Span)(nil)
	if reportPath != "" {
		runRep = obs.NewRunReport("mrt2paths", args)
		rec = obs.NewSpanRecorder(nil, "mrt2paths", obs.SpanOptions{})
		root = rec.Root()
	}

	ispan := root.StartChild("ingest", obs.A("source", in))
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(in, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return err
		}
		defer gz.Close()
		r = gz
	}
	r = ctxReader{ctx: ctx, r: r}
	var ds *dataset.Dataset
	var rep *ingest.Report
	if updates {
		var st *mrt.ReplayStats
		ds, st, rep, err = mrt.UpdatesToDatasetOpts(r, stableAt, minAge, opts)
		if err != nil {
			printReport(rep, in)
			return err
		}
		defer fmt.Fprintf(os.Stderr, "mrt2paths: replayed %d updates (%d announces, %d withdraws, %d unstable)\n",
			st.Updates, st.Announces, st.Withdraws, st.Unstable)
		if runRep != nil {
			runRep.AddSection("replay", st)
		}
	} else {
		var st *mrt.ConvertStats
		ds, st, rep, err = mrt.ToDatasetOpts(r, opts)
		if err != nil {
			printReport(rep, in)
			return err
		}
		defer fmt.Fprintf(os.Stderr, "mrt2paths: %d MRT records, %d RIB records (skipped: %d AS_SET, %d no-path, %d bad-peer)\n",
			st.Records, st.RIBRecords, st.SkippedASSet, st.SkippedNoPath, st.SkippedPeer)
		if stableAt != 0 {
			ds.StableAt(stableAt, minAge)
		}
		if runRep != nil {
			runRep.AddSection("convert", st)
		}
	}
	printReport(rep, in)
	if rep != nil {
		ispan.Set(obs.A("records", rep.Records), obs.A("skipped", rep.Skipped))
		if runRep != nil {
			runRep.AddSection("ingest", rep)
		}
	}
	ispan.End()
	if err := ctx.Err(); err != nil {
		return err
	}
	if normalize {
		ds.Normalize()
	}
	wspan := root.StartChild("write", obs.A("out", out))
	var w io.Writer = os.Stdout
	if out != "-" {
		of, err := os.Create(out)
		if err != nil {
			wspan.End()
			return err
		}
		defer of.Close()
		w = of
	}
	if err := ds.Write(w); err != nil {
		wspan.End()
		return err
	}
	wspan.Set(obs.A("records", ds.Len()))
	wspan.End()
	fmt.Fprintf(os.Stderr, "mrt2paths: wrote %d records\n", ds.Len())
	if runRep != nil {
		if err := rec.Finish(); err != nil {
			return err
		}
		runRep.Finish(rec, obs.Default())
		if err := runRep.WriteFile(reportPath); err != nil {
			return fmt.Errorf("writing run report %s: %w", reportPath, err)
		}
		fmt.Fprintf(os.Stderr, "mrt2paths: run report written to %s\n", reportPath)
	}
	return nil
}

// printReport surfaces the ingest report on stderr when anything was
// skipped, naming the input file as the source.
func printReport(rep *ingest.Report, in string) {
	if rep == nil || rep.Skipped == 0 {
		return
	}
	rep.Source = in
	fmt.Fprintf(os.Stderr, "mrt2paths: %s\n", rep)
}
