// Command asmodel builds, refines, evaluates and queries AS-routing
// models from BGP path datasets.
//
// Subcommands:
//
//	asmodel stats   -in paths.txt -tier1 10,11          # §3.1 statistics
//	asmodel refine  -in paths.txt [-train-frac 0.5] [-save model.txt]
//	asmodel predict -in paths.txt -prefix P40 -as 10    # or -model model.txt
//	asmodel whatif  -in paths.txt -prefix P40 -a 10 -b 20 -watch 30,40
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/durable"
	"asmodel/internal/ingest"
	"asmodel/internal/model"
	"asmodel/internal/obs"
	"asmodel/internal/stats"
	"asmodel/internal/topology"
)

// Exit codes, documented in the README: usage errors are distinguishable
// from runtime failures, and an interrupted (but cleanly checkpointed)
// refinement from both.
const (
	exitOK          = 0
	exitRuntime     = 1
	exitUsage       = 2
	exitInterrupted = 3
)

// usageError marks an error as the caller's fault (bad flags/arguments)
// so run maps it to exitUsage. quiet suppresses re-printing when the
// flag package already reported the problem.
type usageError struct {
	err   error
	quiet bool
}

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, a ...interface{}) error {
	return usageError{err: fmt.Errorf(format, a...)}
}

// parseFlags parses with ContinueOnError semantics: -h/-help exits
// cleanly, malformed flags become (already-reported) usage errors.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return usageError{err: err, quiet: true}
	}
	return nil
}

// debugServer holds the process-lifetime debug endpoint started by
// -debug-addr, exposed as a variable so tests can reach its resolved
// address after running a command with ":0".
var debugServer *obs.Server

// startDebugServer brings up /metrics, /metrics.json, /debug/vars and
// /debug/pprof on addr. Idempotent: a second -debug-addr in the same
// process reuses the first server.
func startDebugServer(addr string) error {
	if debugServer != nil {
		return nil
	}
	srv, err := obs.Serve(addr, obs.Default())
	if err != nil {
		return err
	}
	debugServer = srv
	fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/metrics (also /metrics.json, /debug/vars, /debug/pprof)\n", srv.Addr)
	return nil
}

func main() {
	// SIGINT/SIGTERM cancel the context; long-running refinements write a
	// final checkpoint and exit cleanly with exitInterrupted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:]))
}

// run dispatches the subcommand and maps its error to an exit code:
// 0 success, 1 runtime failure, 2 usage error, 3 interrupted.
func run(ctx context.Context, args []string) int {
	if len(args) < 1 {
		usage()
		return exitUsage
	}
	var err error
	switch args[0] {
	case "stats":
		err = cmdStats(ctx, args[1:])
	case "refine":
		err = cmdRefine(ctx, args[1:])
	case "predict":
		err = cmdPredict(ctx, args[1:])
	case "whatif":
		err = cmdWhatif(ctx, args[1:])
	case "explain":
		err = cmdExplain(ctx, args[1:])
	case "evaluate":
		err = cmdEvaluate(ctx, args[1:])
	case "stream":
		err = cmdStream(ctx, args[1:])
	default:
		usage()
		return exitUsage
	}
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return exitOK
	default:
	}
	var ierr *model.InterruptedError
	if errors.As(err, &ierr) {
		fmt.Fprintln(os.Stderr, "asmodel:", err)
		if ierr.Checkpoint != "" {
			if ierr.Op == "stream" {
				fmt.Fprintf(os.Stderr, "asmodel: resume by re-running the same asmodel stream command; the committed cursor in %s picks up where this run stopped\n", ierr.Checkpoint)
			} else {
				fmt.Fprintf(os.Stderr, "asmodel: resume with: asmodel refine -resume -checkpoint %s <original flags>\n", ierr.Checkpoint)
			}
		}
		return exitInterrupted
	}
	var uerr usageError
	if errors.As(err, &uerr) {
		if !uerr.quiet {
			fmt.Fprintln(os.Stderr, "asmodel:", err)
		}
		return exitUsage
	}
	fmt.Fprintln(os.Stderr, "asmodel:", err)
	return exitRuntime
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: asmodel <stats|refine|predict|whatif> [flags]
  stats   -in paths.txt -tier1 10,11            topology statistics (§3.1)
  refine  -in paths.txt -train-frac 0.5 -seed 1 build, refine, evaluate (§4-5)
  predict -in paths.txt -prefix P40 -as 10      predict an AS's paths
  whatif  -in paths.txt -prefix P40 -a 10 -b 20 -watch 30,40  de-peering impact
  explain -in paths.txt -prefix P40 -as 10      decision process breakdown
  evaluate -model model.txt -in paths.txt       score a saved model on a dataset
  stream  -in updates.mrt -state s.state        incremental refinement over a BGP update stream`)
}

// ingestFlags registers the shared -strict / -max-record-errors flags
// on a subcommand's flag set and returns a getter for the resulting
// ingest options.
func ingestFlags(fs *flag.FlagSet) func() ingest.Options {
	strict := fs.Bool("strict", false, "abort on the first malformed dataset line instead of skipping it")
	maxErrs := fs.Int("max-record-errors", ingest.DefaultMaxRecordErrors,
		"malformed lines tolerated before giving up (-1 = unlimited; ignored with -strict)")
	return func() ingest.Options {
		return ingest.Options{Strict: *strict, MaxRecordErrors: *maxErrs}
	}
}

// cmdObs is one invocation's observability bundle: the span recorder
// feeding stage accounting (and, for refine's -trace, the trace sink)
// plus the -report run report. The zero state (no -report, no sink) is
// inert: rec is nil, so every span started under the context is the
// nil no-op span.
type cmdObs struct {
	report *obs.RunReport
	rec    *obs.SpanRecorder
	path   string
}

// newCmdObs builds the bundle and returns a context carrying the root
// span. sink may be nil (spans are still collected for the report);
// reportPath may be "" (spans are only emitted to the sink).
func newCmdObs(ctx context.Context, command string, args []string, reportPath string, sink *obs.TraceSink, opts obs.SpanOptions) (context.Context, *cmdObs) {
	co := &cmdObs{path: reportPath}
	if reportPath == "" && sink == nil {
		return ctx, co
	}
	co.rec = obs.NewSpanRecorder(sink, command, opts)
	ctx = obs.ContextWithSpan(ctx, co.rec.Root())
	if reportPath != "" {
		co.report = obs.NewRunReport(command, args)
	}
	return ctx, co
}

// section attaches a command-specific payload to the report, if any.
func (co *cmdObs) section(name string, v interface{}) {
	if co.report != nil {
		co.report.AddSection(name, v)
	}
}

// finish emits the span tree to the sink and writes the run report.
func (co *cmdObs) finish() error {
	if co.rec == nil {
		return nil
	}
	err := co.rec.Finish()
	if co.report != nil {
		co.report.Finish(co.rec, obs.Default())
		if werr := co.report.WriteFile(co.path); werr != nil {
			if err == nil {
				err = fmt.Errorf("writing run report %s: %w", co.path, werr)
			}
		} else {
			fmt.Printf("run report written to %s\n", co.path)
		}
	}
	return err
}

// loadDataset reads and normalizes a dataset under an "ingest" span,
// returning the ingest report for the -report sections.
func loadDataset(ctx context.Context, path string, opts ingest.Options) (*dataset.Dataset, *ingest.Report, error) {
	_, span := obs.StartSpan(ctx, "ingest", obs.A("source", path))
	defer span.End()
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	ds, rep, err := dataset.ReadReport(f, opts)
	if rep != nil {
		rep.Source = path
		if rep.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "asmodel: %s\n", rep)
		}
		span.Set(obs.A("records", rep.Records), obs.A("skipped", rep.Skipped))
	}
	if err != nil {
		return nil, rep, err
	}
	return ds.Normalize(), rep, nil
}

func parseASList(s string) ([]bgp.ASN, error) {
	if s == "" {
		return nil, nil
	}
	var out []bgp.ASN
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad AS number %q: %w", part, err)
		}
		out = append(out, bgp.ASN(v))
	}
	return out, nil
}

func cmdStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "dataset file")
	tier1 := fs.String("tier1", "", "comma-separated tier-1 seed ASes")
	report := fs.String("report", "", "write a schema-versioned JSON run report to this file")
	iopts := ingestFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("stats: -in is required")
	}
	seeds, err := parseASList(*tier1)
	if err != nil {
		return usagef("stats: %v", err)
	}
	if len(seeds) == 0 {
		return usagef("stats: -tier1 seeds are required (e.g. -tier1 10,11)")
	}
	ctx, co := newCmdObs(ctx, "asmodel stats", args, *report, nil, obs.SpanOptions{})
	ds, rep, err := loadDataset(ctx, *in, iopts())
	if err != nil {
		return err
	}
	co.section("ingest", rep)
	_, tspan := obs.StartSpan(ctx, "stats")
	st, err := topology.ComputeStats(ds, seeds)
	tspan.End()
	if err != nil {
		return err
	}
	co.section("stats", st)
	tb := stats.NewTable("quantity", "value")
	tb.AddRow("records", fmt.Sprintf("%d", ds.Len()))
	tb.AddRow("observation points", fmt.Sprintf("%d", len(ds.ObsPoints())))
	tb.AddRow("observation ASes", fmt.Sprintf("%d", len(ds.ObsASes())))
	tb.AddRow("ASes", fmt.Sprintf("%d", st.ASes))
	tb.AddRow("AS edges", fmt.Sprintf("%d", st.Edges))
	tb.AddRow("tier-1 clique", fmt.Sprintf("%v", st.Tier1))
	tb.AddRow("level-2 ASes", fmt.Sprintf("%d", st.Level2))
	tb.AddRow("other ASes", fmt.Sprintf("%d", st.Other))
	tb.AddRow("transit ASes", fmt.Sprintf("%d", st.Transit))
	tb.AddRow("single-homed stubs", fmt.Sprintf("%d", st.SingleHomedStub))
	tb.AddRow("multi-homed stubs", fmt.Sprintf("%d", st.MultiHomedStub))
	tb.AddRow("ASes after stub pruning", fmt.Sprintf("%d", st.PrunedASes))
	tb.AddRow("edges after stub pruning", fmt.Sprintf("%d", st.PrunedEdges))
	fmt.Print(tb.String())
	return co.finish()
}

func cmdRefine(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("refine", flag.ContinueOnError)
	in := fs.String("in", "", "dataset file")
	trainFrac := fs.Float64("train-frac", 0.5, "fraction of observation points used for training")
	seed := fs.Int64("seed", 1, "split seed")
	byOrigin := fs.Bool("by-origin", false, "split by originating AS instead of observation point")
	verbose := fs.Bool("v", false, "log refinement progress")
	save := fs.String("save", "", "write the refined model to this file")
	tracePath := fs.String("trace", "", "write per-iteration refinement trace events and pipeline spans (JSONL) to this file")
	redactTiming := fs.Bool("trace-redact-timing", false, "omit wall-clock fields and scheduling-dependent attributes from emitted spans, so identical runs yield byte-identical traces")
	spanSample := fs.Int("span-sample", 0, "emit a span for every Nth prefix of generate/evaluate sweeps (0 = no per-prefix spans)")
	report := fs.String("report", "", "write a schema-versioned JSON run report to this file")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	checkpoint := fs.String("checkpoint", "", "write a crash-safe refinement checkpoint to this file (atomic rename; also on SIGINT/SIGTERM)")
	ckptEvery := fs.Int("checkpoint-every", model.DefaultCheckpointEvery, "iterations between checkpoints (with -checkpoint)")
	resume := fs.Bool("resume", false, "resume refinement from the -checkpoint file instead of starting fresh")
	workers := fs.Int("workers", model.DefaultWorkers(), "worker-pool size for speculative refinement, the verify sweep and evaluations (1 = sequential; byte-identical results at any count)")
	iopts := ingestFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("refine: -in is required")
	}
	if *workers < 1 {
		return usagef("refine: -workers must be >= 1")
	}
	if *resume && *checkpoint == "" {
		return usagef("refine: -resume requires -checkpoint")
	}
	if *ckptEvery < 1 {
		return usagef("refine: -checkpoint-every must be >= 1")
	}
	if *debugAddr != "" {
		if err := startDebugServer(*debugAddr); err != nil {
			return err
		}
	}
	var sink *obs.TraceSink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		// Transient write errors on the trace file are retried with
		// bounded backoff instead of poisoning the sink; Close flushes
		// and closes the file through the RetryWriter.
		sink = obs.NewTraceSink(durable.NewRetryWriter(f, durable.Policy{}))
		defer sink.Close()
	}
	ctx, co := newCmdObs(ctx, "asmodel refine", args, *report, sink,
		obs.SpanOptions{RedactTiming: *redactTiming, PrefixSample: *spanSample})
	if co.report != nil {
		co.report.Seed = *seed
	}
	ds, rep, err := loadDataset(ctx, *in, iopts())
	if err != nil {
		return err
	}
	co.section("ingest", rep)
	var train, valid *dataset.Dataset
	if *byOrigin {
		train, valid = ds.SplitByOrigin(*trainFrac, *seed)
	} else {
		train, valid = ds.SplitByObsPoint(*trainFrac, *seed)
	}
	cfg := model.RefineConfig{
		Checkpoint: model.CheckpointConfig{Path: *checkpoint, Every: *ckptEvery},
		Workers:    *workers,
	}
	if *verbose {
		cfg.Logf = func(format string, a ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	if sink != nil {
		cfg.Observer = func(ev model.RefineEvent) {
			sink.Emit(ev)
			if ev.Type == "checkpoint" {
				// Keep the on-disk trace consistent with the checkpoint
				// that just referenced this point in the run.
				sink.Sync()
			}
		}
	}
	var m *model.Model
	var res *model.RefineResult
	if *resume {
		cp, cerr := model.LoadCheckpointFile(*checkpoint)
		if cerr != nil {
			return cerr
		}
		m = cp.Model
		if cp.Source != "" && cp.Source != *checkpoint {
			fmt.Fprintf(os.Stderr, "asmodel: checkpoint %s unreadable; recovered from %s\n", *checkpoint, cp.Source)
		}
		fmt.Printf("resuming from %s at iteration %d\n", cp.Source, cp.Iteration)
		res, err = model.ResumeRefine(ctx, cp, train, cfg)
	} else {
		if m, err = model.NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds)); err != nil {
			return err
		}
		res, err = m.RefineContext(ctx, train, cfg)
	}
	if sink != nil && err == nil {
		if ferr := sink.Err(); ferr != nil {
			err = fmt.Errorf("refine: writing trace %s: %w", *tracePath, ferr)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("refinement: iterations=%d converged=%v quasi-routers=+%d filters=%d(-%d) med-rules=%d\n",
		res.Iterations, res.Converged, res.QuasiRoutersAdded, res.FiltersAdded, res.FiltersRemoved, res.MEDRules)
	co.section("refine", res)
	if n := len(res.Quarantined); n > 0 {
		recovered := 0
		for _, q := range res.Quarantined {
			if q.Recovered {
				recovered++
			}
		}
		fmt.Printf("quarantine: %d prefixes diverged, %d recovered under escalated budget\n", n, recovered)
	}
	if res.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d written to %s\n", res.Checkpoints, res.LastCheckpoint)
	}
	for _, part := range []struct {
		name string
		set  *dataset.Dataset
	}{{"training", train}, {"validation", valid}} {
		ev, err := m.EvaluateParallel(ctx, part.set, *workers)
		if err != nil {
			return err
		}
		s := ev.Summary
		fmt.Printf("%-10s %s  down-to-tie-break=%s\n", part.name, s, stats.Pct(s.DownToTieBreak(), s.Total))
		co.section("evaluation_"+part.name, map[string]interface{}{
			"summary":          s,
			"coverage":         ev.Coverage,
			"skipped_prefixes": ev.SkippedPrefixes,
			"diverged":         ev.Diverged,
			"divergences":      ev.Divergences,
		})
	}
	if *save != "" {
		_, sspan := obs.StartSpan(ctx, "save", obs.A("path", *save))
		f, err := os.Create(*save)
		if err != nil {
			sspan.End()
			return err
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			sspan.End()
			return err
		}
		sspan.End()
		fmt.Printf("model saved to %s\n", *save)
	}
	if err := co.finish(); err != nil {
		return err
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("refine: writing trace %s: %w", *tracePath, err)
		}
		fmt.Printf("trace: %d events written to %s\n", sink.Count(), *tracePath)
	}
	return nil
}

// loadOrRefine loads a saved model, or builds and refines one from the
// dataset when no model file is given.
func loadOrRefine(ctx context.Context, modelPath string, ds *dataset.Dataset) (*model.Model, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return model.Load(f)
	}
	m, err := model.NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		return nil, err
	}
	if _, err := m.RefineContext(ctx, ds, model.RefineConfig{}); err != nil {
		return nil, err
	}
	return m, nil
}

func cmdPredict(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	in := fs.String("in", "", "dataset file")
	prefix := fs.String("prefix", "", "prefix name")
	asn := fs.Uint64("as", 0, "observation AS")
	modelPath := fs.String("model", "", "load a saved model instead of refining")
	report := fs.String("report", "", "write a schema-versioned JSON run report to this file")
	iopts := ingestFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" && *modelPath == "" || *prefix == "" || *asn == 0 {
		return usagef("predict: -prefix, -as and one of -in/-model are required")
	}
	ctx, co := newCmdObs(ctx, "asmodel predict", args, *report, nil, obs.SpanOptions{})
	var ds *dataset.Dataset
	var err error
	if *in != "" {
		var rep *ingest.Report
		if ds, rep, err = loadDataset(ctx, *in, iopts()); err != nil {
			return err
		}
		co.section("ingest", rep)
	}
	m, err := loadOrRefine(ctx, *modelPath, ds)
	if err != nil {
		return err
	}
	_, pspan := obs.StartSpan(ctx, "predict", obs.A("prefix", *prefix), obs.A("as", *asn))
	paths, err := m.PredictPaths(*prefix, bgp.ASN(*asn))
	pspan.End()
	if err != nil {
		return err
	}
	co.section("predict", map[string]interface{}{"prefix": *prefix, "as": *asn, "paths": len(paths)})
	if len(paths) == 0 {
		fmt.Printf("AS %d selects no route for %s\n", *asn, *prefix)
		return co.finish()
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	return co.finish()
}

func cmdWhatif(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	in := fs.String("in", "", "dataset file")
	prefix := fs.String("prefix", "", "prefix name")
	a := fs.Uint64("a", 0, "first AS of the removed link")
	b := fs.Uint64("b", 0, "second AS of the removed link")
	watch := fs.String("watch", "", "comma-separated ASes whose routes to compare")
	modelPath := fs.String("model", "", "load a saved model instead of refining")
	report := fs.String("report", "", "write a schema-versioned JSON run report to this file")
	iopts := ingestFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" && *modelPath == "" || *prefix == "" || *a == 0 || *b == 0 {
		return usagef("whatif: -prefix, -a, -b and one of -in/-model are required")
	}
	ctx, co := newCmdObs(ctx, "asmodel whatif", args, *report, nil, obs.SpanOptions{})
	var ds *dataset.Dataset
	var err error
	if *in != "" {
		var rep *ingest.Report
		if ds, rep, err = loadDataset(ctx, *in, iopts()); err != nil {
			return err
		}
		co.section("ingest", rep)
	}
	watchASes, err := parseASList(*watch)
	if err != nil {
		return usagef("whatif: %v", err)
	}
	if len(watchASes) == 0 {
		if ds == nil {
			return usagef("whatif: -watch is required with -model")
		}
		watchASes = ds.ObsASes()
	}
	m, err := loadOrRefine(ctx, *modelPath, ds)
	if err != nil {
		return err
	}
	_, wspan := obs.StartSpan(ctx, "whatif", obs.A("prefix", *prefix), obs.A("a", *a), obs.A("b", *b))
	changes, err := m.WhatIfDepeer(*prefix, bgp.ASN(*a), bgp.ASN(*b), watchASes)
	wspan.End()
	if err != nil {
		return err
	}
	fmt.Printf("de-peering AS%d -- AS%d, prefix %s:\n", *a, *b, *prefix)
	anyChange := false
	changed := 0
	for _, c := range changes {
		if !c.Changed() {
			continue
		}
		anyChange = true
		changed++
		fmt.Printf("  AS %d: {%s} -> {%s}\n", c.AS, joinPaths(c.Before), joinPaths(c.After))
	}
	if !anyChange {
		fmt.Println("  no watched AS changes its routes")
	}
	co.section("whatif", map[string]interface{}{
		"prefix": *prefix, "a": *a, "b": *b, "watched": len(watchASes), "changed": changed,
	})
	return co.finish()
}

// joinPaths renders a path set as "a b c; d e f".
func joinPaths(paths []bgp.Path) string {
	parts := make([]string, len(paths))
	for i, p := range paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, "; ")
}

func cmdExplain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	in := fs.String("in", "", "dataset file")
	prefix := fs.String("prefix", "", "prefix name")
	asn := fs.Uint64("as", 0, "AS whose decision to explain")
	modelPath := fs.String("model", "", "load a saved model instead of refining")
	report := fs.String("report", "", "write a schema-versioned JSON run report to this file")
	iopts := ingestFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" && *modelPath == "" || *prefix == "" || *asn == 0 {
		return usagef("explain: -prefix, -as and one of -in/-model are required")
	}
	ctx, co := newCmdObs(ctx, "asmodel explain", args, *report, nil, obs.SpanOptions{})
	var ds *dataset.Dataset
	var err error
	if *in != "" {
		var rep *ingest.Report
		if ds, rep, err = loadDataset(ctx, *in, iopts()); err != nil {
			return err
		}
		co.section("ingest", rep)
	}
	m, err := loadOrRefine(ctx, *modelPath, ds)
	if err != nil {
		return err
	}
	_, espan := obs.StartSpan(ctx, "explain", obs.A("prefix", *prefix), obs.A("as", *asn))
	ex, err := m.ExplainPath(*prefix, bgp.ASN(*asn))
	espan.End()
	if err != nil {
		return err
	}
	fmt.Print(ex.String())
	return co.finish()
}

func cmdEvaluate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	in := fs.String("in", "", "dataset file to score against")
	modelPath := fs.String("model", "", "saved model file")
	workers := fs.Int("workers", model.DefaultWorkers(), "worker-pool size for the evaluation (1 = sequential; same results at any count)")
	report := fs.String("report", "", "write a schema-versioned JSON run report to this file")
	iopts := ingestFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" || *modelPath == "" {
		return usagef("evaluate: -in and -model are required")
	}
	if *workers < 1 {
		return usagef("evaluate: -workers must be >= 1")
	}
	ctx, co := newCmdObs(ctx, "asmodel evaluate", args, *report, nil, obs.SpanOptions{})
	ds, rep, err := loadDataset(ctx, *in, iopts())
	if err != nil {
		return err
	}
	co.section("ingest", rep)
	m, err := loadOrRefine(ctx, *modelPath, nil)
	if err != nil {
		return err
	}
	ev, err := m.EvaluateParallel(ctx, ds, *workers)
	if err != nil {
		return err
	}
	s := ev.Summary
	fmt.Printf("%s\n", s)
	fmt.Printf("down-to-tie-break=%s  skipped-prefixes=%d\n", stats.Pct(s.DownToTieBreak(), s.Total), ev.SkippedPrefixes)
	fmt.Printf("per-prefix RIB-Out coverage: >=50%%: %d/%d  >=90%%: %d/%d  100%%: %d/%d\n",
		ev.Coverage.At50, ev.Coverage.Prefixes, ev.Coverage.At90, ev.Coverage.Prefixes, ev.Coverage.At100, ev.Coverage.Prefixes)
	for _, d := range ev.Divergences {
		fmt.Printf("diverged: %s (%d messages, budget %d)\n", d.Prefix, d.Messages, d.Budget)
	}
	co.section("evaluation", map[string]interface{}{
		"summary":          s,
		"coverage":         ev.Coverage,
		"skipped_prefixes": ev.SkippedPrefixes,
		"diverged":         ev.Diverged,
		"divergences":      ev.Divergences,
	})
	return co.finish()
}
