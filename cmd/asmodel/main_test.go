package main

import (
	"asmodel/internal/bgp"

	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// writeDataset writes a small dataset file for CLI tests.
func writeDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "paths.txt")
	data := strings.Join([]string{
		"op10 10 0 P20 10 20",
		"op20 20 0 P10 20 10",
		"op10a 10 0 P40 10 20 40",
		"op10b 10 0 P40 10 30 40",
		"op20 20 0 P40 20 40",
		"op10 10 0 P30 10 30",
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseASList(t *testing.T) {
	got, err := parseASList(" 10, 20 ,30")
	if err != nil || len(got) != 3 || got[1] != 20 {
		t.Fatalf("got=%v err=%v", got, err)
	}
	if _, err := parseASList("1,x"); err == nil {
		t.Error("bad list accepted")
	}
	if got, err := parseASList(""); err != nil || got != nil {
		t.Error("empty list should be nil, nil")
	}
}

func TestCmdStats(t *testing.T) {
	path := writeDataset(t)
	if err := cmdStats([]string{"-in", path, "-tier1", "10,20"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-in", path}); err == nil {
		t.Error("missing tier1 accepted")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := cmdStats([]string{"-in", "/nonexistent", "-tier1", "10"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdRefineAndSaveLoad(t *testing.T) {
	path := writeDataset(t)
	modelPath := filepath.Join(t.TempDir(), "model.txt")
	if err := cmdRefine([]string{"-in", path, "-train-frac", "1.0", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not saved: %v", err)
	}
	// Predict from the saved model.
	if err := cmdPredict([]string{"-model", modelPath, "-prefix", "P40", "-as", "10"}); err != nil {
		t.Fatal(err)
	}
	// Predict by refining in-process.
	if err := cmdPredict([]string{"-in", path, "-prefix", "P40", "-as", "10"}); err != nil {
		t.Fatal(err)
	}
	// Origin split path.
	if err := cmdRefine([]string{"-in", path, "-by-origin"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRefine([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
}

func TestCmdPredictErrors(t *testing.T) {
	if err := cmdPredict([]string{"-prefix", "P40", "-as", "10"}); err == nil {
		t.Error("missing -in/-model accepted")
	}
	path := writeDataset(t)
	if err := cmdPredict([]string{"-in", path, "-as", "10"}); err == nil {
		t.Error("missing prefix accepted")
	}
	if err := cmdPredict([]string{"-in", path, "-prefix", "Pnope", "-as", "10"}); err == nil {
		t.Error("unknown prefix accepted")
	}
}

func TestCmdWhatif(t *testing.T) {
	path := writeDataset(t)
	if err := cmdWhatif([]string{"-in", path, "-prefix", "P40", "-a", "20", "-b", "40"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif([]string{"-in", path, "-prefix", "P40", "-a", "20", "-b", "40", "-watch", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif([]string{"-prefix", "P40", "-a", "20", "-b", "40"}); err == nil {
		t.Error("missing -in/-model accepted")
	}
	// With -model but no -in, -watch becomes mandatory.
	modelPath := filepath.Join(t.TempDir(), "m.txt")
	if err := cmdRefine([]string{"-in", path, "-train-frac", "1.0", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif([]string{"-model", modelPath, "-prefix", "P40", "-a", "20", "-b", "40"}); err == nil {
		t.Error("missing -watch with -model accepted")
	}
	if err := cmdWhatif([]string{"-model", modelPath, "-prefix", "P40", "-a", "20", "-b", "40", "-watch", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinPaths(t *testing.T) {
	p1 := bgp.Path{1, 2}
	p2 := bgp.Path{3, 4}
	if got := joinPaths([]bgp.Path{p1}); got != "1 2" {
		t.Errorf("joinPaths single = %q", got)
	}
	if got := joinPaths([]bgp.Path{p1, p2}); got != "1 2; 3 4" {
		t.Errorf("joinPaths multi = %q", got)
	}
}

func TestCmdExplain(t *testing.T) {
	path := writeDataset(t)
	if err := cmdExplain([]string{"-in", path, "-prefix", "P40", "-as", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExplain([]string{"-prefix", "P40", "-as", "10"}); err == nil {
		t.Error("missing -in/-model accepted")
	}
	if err := cmdExplain([]string{"-in", path, "-prefix", "Pnope", "-as", "10"}); err == nil {
		t.Error("unknown prefix accepted")
	}
}

func TestCmdEvaluate(t *testing.T) {
	path := writeDataset(t)
	modelPath := filepath.Join(t.TempDir(), "m.txt")
	if err := cmdRefine([]string{"-in", path, "-train-frac", "1.0", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate([]string{"-in", path, "-model", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate([]string{"-in", path}); err == nil {
		t.Error("missing -model accepted")
	}
	if err := cmdEvaluate([]string{"-model", modelPath}); err == nil {
		t.Error("missing -in accepted")
	}
}

// TestCmdRefineDebugAndTrace is the ISSUE's acceptance check: refine with
// -debug-addr :0 -trace serves /metrics with nonzero sim and refine
// counters and writes one well-formed JSON trace event per refinement
// iteration (plus verify/done events) carrying match fractions and
// per-action counts.
func TestCmdRefineDebugAndTrace(t *testing.T) {
	path := writeDataset(t)
	tracePath := filepath.Join(t.TempDir(), "refine-trace.jsonl")
	err := cmdRefine([]string{"-in", path, "-train-frac", "1.0",
		"-debug-addr", "127.0.0.1:0", "-trace", tracePath})
	if err != nil {
		t.Fatal(err)
	}
	if debugServer == nil {
		t.Fatal("-debug-addr did not start the debug server")
	}
	defer func() {
		debugServer.Close()
		debugServer = nil
	}()

	resp, err := http.Get("http://" + debugServer.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, name := range []string{"sim_messages_delivered_total", "refine_iterations_total"} {
		re := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`)
		m := re.FindStringSubmatch(metrics)
		if m == nil {
			t.Fatalf("/metrics missing %s:\n%s", name, metrics)
		}
		if v, _ := strconv.Atoi(m[1]); v <= 0 {
			t.Errorf("%s = %s, want > 0", name, m[1])
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines, want at least iteration + done", len(lines))
	}
	iterations := 0
	for i, line := range lines {
		var ev map[string]interface{}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d not JSON: %v\n%s", i, err, line)
		}
		if ev["type"] == "iteration" {
			iterations++
			for _, key := range []string{"rib_out_frac", "potential_frac", "rib_in_frac", "actions"} {
				if _, ok := ev[key]; !ok {
					t.Errorf("trace line %d missing %q: %s", i, key, line)
				}
			}
		}
	}
	if iterations == 0 {
		t.Error("trace has no iteration events")
	}
	if last := lines[len(lines)-1]; !strings.Contains(last, `"type":"done"`) {
		t.Errorf("last trace event is not done: %s", last)
	}
}
