package main

import (
	"asmodel/internal/bgp"
	"bytes"

	"context"

	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// writeDataset writes a small dataset file for CLI tests.
func writeDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "paths.txt")
	data := strings.Join([]string{
		"op10 10 0 P20 10 20",
		"op20 20 0 P10 20 10",
		"op10a 10 0 P40 10 20 40",
		"op10b 10 0 P40 10 30 40",
		"op20 20 0 P40 20 40",
		"op10 10 0 P30 10 30",
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseASList(t *testing.T) {
	got, err := parseASList(" 10, 20 ,30")
	if err != nil || len(got) != 3 || got[1] != 20 {
		t.Fatalf("got=%v err=%v", got, err)
	}
	if _, err := parseASList("1,x"); err == nil {
		t.Error("bad list accepted")
	}
	if got, err := parseASList(""); err != nil || got != nil {
		t.Error("empty list should be nil, nil")
	}
}

func TestCmdStats(t *testing.T) {
	path := writeDataset(t)
	if err := cmdStats(context.Background(), []string{"-in", path, "-tier1", "10,20"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats(context.Background(), []string{"-in", path}); err == nil {
		t.Error("missing tier1 accepted")
	}
	if err := cmdStats(context.Background(), []string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := cmdStats(context.Background(), []string{"-in", "/nonexistent", "-tier1", "10"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdRefineAndSaveLoad(t *testing.T) {
	path := writeDataset(t)
	modelPath := filepath.Join(t.TempDir(), "model.txt")
	if err := cmdRefine(context.Background(), []string{"-in", path, "-train-frac", "1.0", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not saved: %v", err)
	}
	// Predict from the saved model.
	if err := cmdPredict(context.Background(), []string{"-model", modelPath, "-prefix", "P40", "-as", "10"}); err != nil {
		t.Fatal(err)
	}
	// Predict by refining in-process.
	if err := cmdPredict(context.Background(), []string{"-in", path, "-prefix", "P40", "-as", "10"}); err != nil {
		t.Fatal(err)
	}
	// Origin split path.
	if err := cmdRefine(context.Background(), []string{"-in", path, "-by-origin"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRefine(context.Background(), []string{}); err == nil {
		t.Error("missing -in accepted")
	}
}

func TestCmdPredictErrors(t *testing.T) {
	if err := cmdPredict(context.Background(), []string{"-prefix", "P40", "-as", "10"}); err == nil {
		t.Error("missing -in/-model accepted")
	}
	path := writeDataset(t)
	if err := cmdPredict(context.Background(), []string{"-in", path, "-as", "10"}); err == nil {
		t.Error("missing prefix accepted")
	}
	if err := cmdPredict(context.Background(), []string{"-in", path, "-prefix", "Pnope", "-as", "10"}); err == nil {
		t.Error("unknown prefix accepted")
	}
}

func TestCmdWhatif(t *testing.T) {
	path := writeDataset(t)
	if err := cmdWhatif(context.Background(), []string{"-in", path, "-prefix", "P40", "-a", "20", "-b", "40"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif(context.Background(), []string{"-in", path, "-prefix", "P40", "-a", "20", "-b", "40", "-watch", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif(context.Background(), []string{"-prefix", "P40", "-a", "20", "-b", "40"}); err == nil {
		t.Error("missing -in/-model accepted")
	}
	// With -model but no -in, -watch becomes mandatory.
	modelPath := filepath.Join(t.TempDir(), "m.txt")
	if err := cmdRefine(context.Background(), []string{"-in", path, "-train-frac", "1.0", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif(context.Background(), []string{"-model", modelPath, "-prefix", "P40", "-a", "20", "-b", "40"}); err == nil {
		t.Error("missing -watch with -model accepted")
	}
	if err := cmdWhatif(context.Background(), []string{"-model", modelPath, "-prefix", "P40", "-a", "20", "-b", "40", "-watch", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinPaths(t *testing.T) {
	p1 := bgp.Path{1, 2}
	p2 := bgp.Path{3, 4}
	if got := joinPaths([]bgp.Path{p1}); got != "1 2" {
		t.Errorf("joinPaths single = %q", got)
	}
	if got := joinPaths([]bgp.Path{p1, p2}); got != "1 2; 3 4" {
		t.Errorf("joinPaths multi = %q", got)
	}
}

func TestCmdExplain(t *testing.T) {
	path := writeDataset(t)
	if err := cmdExplain(context.Background(), []string{"-in", path, "-prefix", "P40", "-as", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExplain(context.Background(), []string{"-prefix", "P40", "-as", "10"}); err == nil {
		t.Error("missing -in/-model accepted")
	}
	if err := cmdExplain(context.Background(), []string{"-in", path, "-prefix", "Pnope", "-as", "10"}); err == nil {
		t.Error("unknown prefix accepted")
	}
}

func TestCmdEvaluate(t *testing.T) {
	path := writeDataset(t)
	modelPath := filepath.Join(t.TempDir(), "m.txt")
	if err := cmdRefine(context.Background(), []string{"-in", path, "-train-frac", "1.0", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate(context.Background(), []string{"-in", path, "-model", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate(context.Background(), []string{"-in", path}); err == nil {
		t.Error("missing -model accepted")
	}
	if err := cmdEvaluate(context.Background(), []string{"-model", modelPath}); err == nil {
		t.Error("missing -in accepted")
	}
}

// TestRunExitCodes pins the CLI exit-code contract: 0 success, 1 runtime
// failure, 2 usage error, 3 interrupted.
func TestRunExitCodes(t *testing.T) {
	ctx := context.Background()
	path := writeDataset(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"bogus"}, 2},
		{"missing required flag", []string{"stats", "-tier1", "10"}, 2},
		{"undefined flag", []string{"stats", "-no-such-flag"}, 2},
		{"resume without checkpoint", []string{"refine", "-in", path, "-resume"}, 2},
		{"runtime failure", []string{"stats", "-in", "/nonexistent", "-tier1", "10"}, 1},
		{"help", []string{"refine", "-h"}, 0},
		{"success", []string{"refine", "-in", path, "-train-frac", "1.0"}, 0},
	}
	for _, c := range cases {
		if got := run(ctx, c.args); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}

	// A canceled context maps to the interrupted exit code.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if got := run(canceled, []string{"refine", "-in", path, "-train-frac", "1.0"}); got != 3 {
		t.Errorf("interrupted refine: exit %d, want 3", got)
	}
}

// TestCmdRefineCheckpointResume drives the full CLI flow: an interrupted
// refinement leaves a checkpoint on disk, and -resume continues from it
// to the same saved model as an uninterrupted run.
func TestCmdRefineCheckpointResume(t *testing.T) {
	path := writeDataset(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "refine.ckpt")
	ref := filepath.Join(dir, "ref.txt")
	resumed := filepath.Join(dir, "resumed.txt")
	ctx := context.Background()

	// Uninterrupted reference.
	if err := cmdRefine(ctx, []string{"-in", path, "-train-frac", "1.0", "-save", ref}); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: canceled before the first iteration; the final
	// checkpoint still lands on disk.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	err := cmdRefine(canceled, []string{"-in", path, "-train-frac", "1.0",
		"-checkpoint", ckpt, "-checkpoint-every", "1"})
	if err == nil {
		t.Fatal("canceled refine succeeded")
	}
	if _, serr := os.Stat(ckpt); serr != nil {
		t.Fatalf("no checkpoint written on interrupt: %v", serr)
	}

	// Resume to completion and compare the models byte for byte.
	if err := cmdRefine(ctx, []string{"-in", path, "-train-frac", "1.0",
		"-checkpoint", ckpt, "-resume", "-save", resumed}); err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	resumedBytes, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(refBytes) != string(resumedBytes) {
		t.Error("resumed model differs from uninterrupted model")
	}
}

// TestCmdRefineDebugAndTrace is the ISSUE's acceptance check: refine with
// -debug-addr :0 -trace serves /metrics with nonzero sim and refine
// counters and writes one well-formed JSON trace event per refinement
// iteration (plus verify/done events) carrying match fractions and
// per-action counts.
func TestCmdRefineDebugAndTrace(t *testing.T) {
	path := writeDataset(t)
	tracePath := filepath.Join(t.TempDir(), "refine-trace.jsonl")
	err := cmdRefine(context.Background(), []string{"-in", path, "-train-frac", "1.0",
		"-debug-addr", "127.0.0.1:0", "-trace", tracePath})
	if err != nil {
		t.Fatal(err)
	}
	if debugServer == nil {
		t.Fatal("-debug-addr did not start the debug server")
	}
	defer func() {
		debugServer.Close()
		debugServer = nil
	}()

	resp, err := http.Get("http://" + debugServer.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, name := range []string{"sim_messages_delivered_total", "refine_iterations_total"} {
		re := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`)
		m := re.FindStringSubmatch(metrics)
		if m == nil {
			t.Fatalf("/metrics missing %s:\n%s", name, metrics)
		}
		if v, _ := strconv.Atoi(m[1]); v <= 0 {
			t.Errorf("%s = %s, want > 0", name, m[1])
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines, want at least iteration + done", len(lines))
	}
	iterations, spans := 0, 0
	lastRefine := ""
	for i, line := range lines {
		var ev map[string]interface{}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d not JSON: %v\n%s", i, err, line)
		}
		switch ev["type"] {
		case "iteration":
			iterations++
			for _, key := range []string{"rib_out_frac", "potential_frac", "rib_in_frac", "actions"} {
				if _, ok := ev[key]; !ok {
					t.Errorf("trace line %d missing %q: %s", i, key, line)
				}
			}
		case "span":
			spans++
			for _, key := range []string{"name", "path"} {
				if _, ok := ev[key]; !ok {
					t.Errorf("span line %d missing %q: %s", i, key, line)
				}
			}
			continue // spans are appended after the refine events
		}
		lastRefine = line
	}
	if iterations == 0 {
		t.Error("trace has no iteration events")
	}
	if !strings.Contains(lastRefine, `"type":"done"`) {
		t.Errorf("last refine trace event is not done: %s", lastRefine)
	}
	// The span tree covers the pipeline stages: the root command span plus
	// ingest, refine (with per-iteration children) and the evaluations.
	if spans < 4 {
		t.Errorf("trace has %d span events, want >= 4 (root, ingest, refine, evaluate)", spans)
	}
	for _, path := range []string{`"path":"asmodel refine"`, `"path":"asmodel refine/ingest"`,
		`"path":"asmodel refine/model.refine"`, `"path":"asmodel refine/model.refine/iteration"`,
		`"path":"asmodel refine/model.evaluate"`} {
		if !strings.Contains(string(raw), path) {
			t.Errorf("trace missing span %s", path)
		}
	}
}

// TestCmdRefineTraceRedactedDeterminism runs the same refinement twice
// with a parallel worker pool and -trace-redact-timing and requires the
// two trace files — refine events and the full span tree, per-prefix
// spans included — to be byte-identical.
func TestCmdRefineTraceRedactedDeterminism(t *testing.T) {
	path := writeDataset(t)
	runOnce := func(name string) []byte {
		t.Helper()
		tracePath := filepath.Join(t.TempDir(), name)
		err := cmdRefine(context.Background(), []string{"-in", path, "-train-frac", "1.0",
			"-workers", "4", "-span-sample", "1", "-trace-redact-timing", "-trace", tracePath})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := runOnce("a.jsonl")
	b := runOnce("b.jsonl")
	if !strings.Contains(string(a), `"type":"span"`) {
		t.Fatal("trace has no span events")
	}
	if strings.Contains(string(a), "start_ns") || strings.Contains(string(a), "dur_ns") {
		t.Fatal("redacted trace contains timing fields")
	}
	if strings.Contains(string(a), "busy_seconds") {
		t.Fatal("redacted trace contains volatile worker attributes")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("redacted traces differ across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
