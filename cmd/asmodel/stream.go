package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"syscall"
	"time"

	"asmodel/internal/dataset"
	"asmodel/internal/durable"
	"asmodel/internal/ingest"
	"asmodel/internal/mrt"
	"asmodel/internal/obs"
	"asmodel/internal/stream"
)

// cmdStream runs the long-lived streaming refinement loop: tail an MRT
// update source, cut deterministic record-count batches, delta-refine
// only the prefixes each batch changed, and commit cursor+checkpoint
// atomically so a crash at any point resumes exactly-once from the
// last committed batch.
func cmdStream(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	in := fs.String("in", "", "MRT update file to stream (grows in -follow mode)")
	dir := fs.String("dir", "", "directory of MRT update files to stream in lexical order (mutually exclusive with -in)")
	glob := fs.String("glob", "*.mrt", "filename pattern for -dir")
	state := fs.String("state", "", "stream state file: cursor + embedded checkpoint, committed atomically per batch; resumes if it exists")
	bootstrap := fs.String("bootstrap", "", "dataset file to build the initial model from (prefix names must match the stream's)")
	bootstrapMRT := fs.String("bootstrap-mrt", "", "MRT update file to replay into the bootstrap dataset instead of -bootstrap")
	batch := fs.Int("batch", stream.DefaultBatchRecords, "records per batch (cursor-validated: a resume with a different value is refused)")
	minAge := fs.Int64("min-age", 0, "stable-route filter for batch snapshots, seconds (cursor-validated; 0 disables)")
	follow := fs.Bool("follow", false, "keep tailing the source for new records instead of stopping at EOF")
	poll := fs.Duration("poll", stream.DefaultPoll, "poll interval for -follow")
	maxBatches := fs.Int64("max-batches", 0, "stop after this many committed batches (0 = unlimited)")
	workers := fs.Int("workers", 1, "speculative-refinement pool per batch (1 = sequential; byte-identical results at any count)")
	refineIters := fs.Int("refine-iters", 0, "per-batch refinement iteration budget (0 = automatic)")
	stall := fs.Duration("stall-timeout", 0, "warn and count a stall when no record arrives for this long (0 disables)")
	killAfter := fs.Int64("kill-after-batch", 0, "crash smoke: SIGKILL this process right after committing batch N (0 disables)")
	verbose := fs.Bool("v", false, "log per-batch progress")
	tracePath := fs.String("trace", "", "write stream events (JSONL) to this file")
	redactTiming := fs.Bool("trace-redact-timing", false, "emit only deterministic post-commit batch events, so any crash/restart schedule yields a byte-identical trace")
	report := fs.String("report", "", "write a schema-versioned JSON run report to this file")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	iopts := ingestFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	switch {
	case *in == "" && *dir == "":
		return usagef("stream: one of -in or -dir is required")
	case *in != "" && *dir != "":
		return usagef("stream: -in and -dir are mutually exclusive")
	case *state == "":
		return usagef("stream: -state is required")
	case *bootstrap != "" && *bootstrapMRT != "":
		return usagef("stream: -bootstrap and -bootstrap-mrt are mutually exclusive")
	case *batch < 1:
		return usagef("stream: -batch must be >= 1")
	case *workers < 1:
		return usagef("stream: -workers must be >= 1")
	}
	if *debugAddr != "" {
		if err := startDebugServer(*debugAddr); err != nil {
			return err
		}
	}

	var sink *obs.TraceSink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		sink = obs.NewTraceSink(durable.NewRetryWriter(f, durable.Policy{}))
		defer sink.Close()
	}
	ctx, co := newCmdObs(ctx, "asmodel stream", args, *report, sink,
		obs.SpanOptions{RedactTiming: *redactTiming})

	cfg := stream.Config{
		StatePath:     *state,
		BatchRecords:  *batch,
		MinAge:        *minAge,
		Workers:       *workers,
		MaxIterations: *refineIters,
		MaxBatches:    *maxBatches,
		Ingest:        iopts(),
		StallTimeout:  *stall,
	}
	if *in != "" {
		cfg.Source = stream.NewFileSource(*in, *follow, *poll)
	} else {
		cfg.Source = stream.NewDirSource(*dir, *glob, *follow, *poll)
	}
	defer cfg.Source.Close()

	switch {
	case *bootstrap != "":
		ds, rep, err := loadDataset(ctx, *bootstrap, iopts())
		if err != nil {
			return err
		}
		co.section("bootstrap_ingest", rep)
		cfg.Bootstrap = ds
	case *bootstrapMRT != "":
		ds, st, rep, err := replayBootstrap(ctx, *bootstrapMRT, *minAge, iopts())
		if err != nil {
			return err
		}
		co.section("bootstrap_replay", st)
		if rep != nil && rep.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "asmodel: %s\n", rep)
		}
		cfg.Bootstrap = ds
	}

	if *verbose {
		cfg.Logf = func(format string, a ...interface{}) {
			fmt.Fprintf(os.Stderr, "asmodel: "+format+"\n", a...)
		}
	}
	if sink != nil {
		cfg.Observer = func(ev stream.Event) {
			// Recovery and stall events describe this process's lifecycle,
			// not stream content; a redacted trace keeps only the
			// deterministic post-commit batch events (see stream.Event).
			if *redactTiming && ev.Type != "batch" {
				return
			}
			sink.Emit(ev)
			if ev.Type == "batch" {
				// Keep the on-disk trace consistent with the state commit
				// the event describes.
				sink.Sync()
			}
		}
	}
	if *killAfter > 0 {
		inner := cfg.OnCommit
		cfg.OnCommit = func(st *stream.State) {
			if inner != nil {
				inner(st)
			}
			if st.Cursor.Batches == *killAfter {
				// Crash smoke: die mid-run with no cleanup, exactly as a
				// power cut would, right after a commit. The restarted run
				// must resume byte-identically.
				if sink != nil {
					sink.Sync()
				}
				fmt.Fprintf(os.Stderr, "asmodel: -kill-after-batch %d: killing self\n", *killAfter)
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}

	start := time.Now()
	res, err := stream.New(cfg).Run(ctx)
	if sink != nil && err == nil {
		if ferr := sink.Err(); ferr != nil {
			err = fmt.Errorf("stream: writing trace %s: %w", *tracePath, ferr)
		}
	}
	if err != nil {
		return err
	}
	resumed := ""
	if res.Recovered {
		resumed = " (resumed)"
	}
	fmt.Printf("stream%s: batches=%d records=%d last-ts=%d changed=%d refined=%d iterations=%d quarantined=%d retried=%d in %v\n",
		resumed, res.Batches, res.Records, res.LastTS,
		res.Totals.ChangedPrefixes, res.Totals.RefinedPrefixes, res.Totals.Iterations,
		res.Totals.QuarantinedBatch, res.Totals.RetriedBatches,
		time.Since(start).Round(time.Millisecond))
	if res.SkipReport != nil && res.SkipReport.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "asmodel: %s\n", res.SkipReport)
	}
	co.section("stream", res)
	return co.finish()
}

// replayBootstrap replays an MRT update file into the bootstrap
// dataset, so the initial model's universe uses the same prefix naming
// the streamed batches will.
func replayBootstrap(ctx context.Context, path string, minAge int64, opts ingest.Options) (*dataset.Dataset, *mrt.ReplayStats, *ingest.Report, error) {
	_, span := obs.StartSpan(ctx, "ingest", obs.A("source", path))
	defer span.End()
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	ds, st, rep, err := mrt.UpdatesToDatasetOpts(f, 0, minAge, opts)
	if rep != nil {
		rep.Source = path
	}
	if err != nil {
		return nil, st, rep, err
	}
	span.Set(obs.A("records", st.Records), obs.A("skipped", rep.Skipped))
	return ds.Normalize(), st, rep, nil
}
