// Command parbench measures the parallel per-prefix machinery against its
// sequential baselines and writes machine-readable reports
// (BENCH_parallel.json and BENCH_gen.json via `make bench-json`).
//
// The eval section times Model.EvaluateParallel over a refined model for
// every worker count and checks the result is identical
// (reflect.DeepEqual) to the sequential evaluation; the refine section
// times a full speculative refinement per worker count and checks the
// serialized model bytes, the RefineResult and the redacted trace stream
// (events + spans) are byte-identical to the sequential refinement,
// recording each count's speculation conflict rate. The gen section
// times gen.Internet.RunAllParallel — the ground-truth generation that
// dominates suite setup — on a freshly generated Internet per repetition
// and checks the dataset bytes and the Weird/QuirksReverted bookkeeping
// match the sequential RunAll. All reports record GOMAXPROCS and NumCPU
// alongside every timing: per-prefix simulation shares nothing, so the
// speedup tracks the CPU count — on a single-CPU host it stays near 1x
// and the run only demonstrates determinism plus pool overhead.
//
// Usage:
//
//	parbench -out BENCH_parallel.json -gen-out BENCH_gen.json -seed 1 -reps 3 -workers 1,2,4,8
//	parbench -mode gen -reps 1            # generation smoke only (make bench-gen)
//	parbench -mode refine -reps 1         # refinement smoke only (make bench-refine)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"asmodel/internal/dataset"
	"asmodel/internal/experiments"
	"asmodel/internal/gen"
	"asmodel/internal/model"
	"asmodel/internal/obs"
	"asmodel/internal/topology"
)

// Schema identifiers for the two report files; obsreport check keys its
// baseline rules on these.
const (
	evalSchema = "asmodel-bench-parallel-v1"
	genSchema  = "asmodel-bench-gen-v1"
)

type workerRow struct {
	Workers   int     `json:"workers"`
	NsOp      int64   `json:"ns_op"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
	// BusySeconds is the per-worker busy time summed over every worker
	// and every timed repetition (from the obs worker histograms);
	// Utilization divides it by reps × wall × workers, so 1.0 means no
	// worker ever waited on the clone build or the shared cursor.
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
	// ConflictRate (refine rows only) is the fraction of speculations the
	// merger discarded and re-ran on the canonical model: 0 means every
	// prefix merged clean, 1 means speculation bought nothing.
	ConflictRate float64 `json:"conflict_rate"`
}

type report struct {
	Schema       string      `json:"schema"`
	Seed         int64       `json:"seed"`
	Reps         int         `json:"reps"`
	GoMaxProcs   int         `json:"gomaxprocs"`
	NumCPU       int         `json:"num_cpu"`
	GoVersion    string      `json:"go_version"`
	GOOS         string      `json:"goos"`
	GOARCH       string      `json:"goarch"`
	Hostname     string      `json:"hostname,omitempty"`
	Prefixes     int         `json:"prefixes"`
	Paths        int         `json:"paths"`
	QuasiRouters int         `json:"quasi_routers"`
	Note         string      `json:"note"`
	EvalSeqNsOp  int64       `json:"evaluate_sequential_ns_op"`
	Evaluate     []workerRow `json:"evaluate_parallel"`
	RefSeqNsOp   int64       `json:"refine_sequential_ns_op"`
	Refine       []workerRow `json:"refine_parallel"`
}

func hostname() string {
	h, _ := os.Hostname()
	return h
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "evaluate/refine report file")
	genOut := flag.String("gen-out", "BENCH_gen.json", "ground-truth generation report file")
	seed := flag.Int64("seed", 1, "generator and split seed")
	reps := flag.Int("reps", 3, "timed repetitions per configuration (minimum is reported)")
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts to measure")
	mode := flag.String("mode", "all", "which sections to run: all, eval (evaluate+refine), refine (refinement only), or gen (ground-truth generation)")
	reportPath := flag.String("report", "", "write a schema-versioned JSON run report to this file")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	flag.Parse()
	if *mode != "all" && *mode != "eval" && *mode != "refine" && *mode != "gen" {
		fmt.Fprintln(os.Stderr, "parbench: -mode must be all, eval, refine or gen")
		os.Exit(2)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "parbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/metrics (also /metrics.json, /debug/vars, /debug/pprof)\n", srv.Addr)
	}
	if err := run(*out, *genOut, *mode, *seed, *reps, *workersList, *reportPath); err != nil {
		fmt.Fprintln(os.Stderr, "parbench:", err)
		os.Exit(1)
	}
}

// minNs reports the minimum and the summed wall time of reps runs of f.
func minNs(reps int, f func() error) (best, total int64, err error) {
	best = -1
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, 0, err
		}
		ns := time.Since(start).Nanoseconds()
		total += ns
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best, total, nil
}

// utilization turns a busy-seconds histogram delta into a 0..1 pool
// utilization: busy / (wall × workers).
func utilization(busy float64, totalNs int64, workers int) float64 {
	if totalNs <= 0 || workers <= 0 {
		return 0
	}
	return busy / (float64(totalNs) / 1e9 * float64(workers))
}

func run(out, genOut, mode string, seed int64, reps int, workersList, reportPath string) error {
	var counts []int
	for _, part := range strings.Split(workersList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -workers entry %q", part)
		}
		counts = append(counts, n)
	}
	var runRep *obs.RunReport
	var rec *obs.SpanRecorder
	root := (*obs.Span)(nil)
	if reportPath != "" {
		runRep = obs.NewRunReport("parbench", os.Args[1:])
		runRep.Seed = seed
		rec = obs.NewSpanRecorder(nil, "parbench", obs.SpanOptions{})
		root = rec.Root()
	}
	if mode == "all" || mode == "gen" {
		sp := root.StartChild("gen")
		grep, err := runGen(genOut, seed, reps, counts)
		sp.End()
		if err != nil {
			return err
		}
		if runRep != nil {
			runRep.AddSection("gen", grep)
		}
	}
	if mode == "all" || mode == "eval" || mode == "refine" {
		sp := root.StartChild("eval")
		erep, err := runEval(out, seed, reps, counts, mode)
		sp.End()
		if err != nil {
			return err
		}
		if runRep != nil {
			runRep.AddSection("eval", erep)
		}
	}
	if runRep != nil {
		if err := rec.Finish(); err != nil {
			return err
		}
		runRep.Finish(rec, obs.Default())
		if err := runRep.WriteFile(reportPath); err != nil {
			return fmt.Errorf("writing run report %s: %w", reportPath, err)
		}
		fmt.Fprintf(os.Stderr, "parbench: run report written to %s\n", reportPath)
	}
	return nil
}

// genReport is the BENCH_gen.json shape: sequential RunAll vs
// RunAllParallel on a freshly generated Internet per repetition.
type genReport struct {
	Schema         string      `json:"schema"`
	Seed           int64       `json:"seed"`
	Reps           int         `json:"reps"`
	GoMaxProcs     int         `json:"gomaxprocs"`
	NumCPU         int         `json:"num_cpu"`
	GoVersion      string      `json:"go_version"`
	GOOS           string      `json:"goos"`
	GOARCH         string      `json:"goarch"`
	Hostname       string      `json:"hostname,omitempty"`
	Prefixes       int         `json:"prefixes"`
	Records        int         `json:"records"`
	QuirksReverted int         `json:"quirks_reverted"`
	Note           string      `json:"note"`
	SeqNsOp        int64       `json:"run_all_sequential_ns_op"`
	Parallel       []workerRow `json:"run_all_parallel"`
}

// runGen benches ground-truth generation. Every repetition regenerates
// the Internet from the seed: RunAll mutates the generator's quirk
// bookkeeping (diverging weird policies are reverted on first contact),
// so re-running on a used Internet would not time the same work.
func runGen(out string, seed int64, reps int, counts []int) (*genReport, error) {
	cfg := experiments.DefaultConfig()
	cfg.Seed = seed
	busyHist := obs.GetHistogram("gen_worker_busy_seconds", "", nil)

	timeRunAll := func(workers int) (int64, int64, *dataset.Dataset, *gen.Internet, error) {
		best, total := int64(-1), int64(0)
		var ds *dataset.Dataset
		var in *gen.Internet
		for i := 0; i < reps; i++ {
			fresh, err := gen.Generate(cfg)
			if err != nil {
				return 0, 0, nil, nil, err
			}
			start := time.Now()
			d, err := fresh.RunAllParallel(context.Background(), workers)
			if err != nil {
				return 0, 0, nil, nil, err
			}
			ns := time.Since(start).Nanoseconds()
			total += ns
			if best < 0 || ns < best {
				best = ns
			}
			ds, in = d, fresh
		}
		return best, total, ds, in, nil
	}

	fmt.Fprintf(os.Stderr, "parbench: ground-truth generation (seed=%d)...\n", seed)
	seqNs, _, seqDS, seqIn, err := timeRunAll(1)
	if err != nil {
		return nil, err
	}
	var want bytes.Buffer
	if err := seqDS.Write(&want); err != nil {
		return nil, err
	}
	rep := &genReport{
		Schema: genSchema,
		Seed:   seed, Reps: reps,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS, GOARCH: runtime.GOARCH,
		Hostname:       hostname(),
		Prefixes:       seqIn.NumPrefixes(),
		Records:        seqDS.Len(),
		QuirksReverted: seqIn.QuirksReverted,
		Note: "speedup is bounded by num_cpu: per-prefix ground-truth simulation shares " +
			"nothing, so on a single-CPU host parallel timings measure clone + pool " +
			"overhead while the identical flags still verify the deterministic merge",
		SeqNsOp: seqNs,
	}
	fmt.Fprintf(os.Stderr, "parbench: gen sequential %.2fms (%d records)\n", float64(seqNs)/1e6, seqDS.Len())
	for _, w := range counts {
		if w == 1 {
			continue // workers=1 is the sequential path already timed
		}
		busy0 := busyHist.Sum()
		ns, totalNs, ds, in, err := timeRunAll(w)
		if err != nil {
			return nil, err
		}
		busy := busyHist.Sum() - busy0
		var got bytes.Buffer
		if err := ds.Write(&got); err != nil {
			return nil, err
		}
		identical := bytes.Equal(got.Bytes(), want.Bytes()) &&
			in.QuirksReverted == seqIn.QuirksReverted &&
			len(in.Weird) == len(seqIn.Weird)
		rep.Parallel = append(rep.Parallel, workerRow{
			Workers: w, NsOp: ns,
			Speedup:     float64(seqNs) / float64(ns),
			Identical:   identical,
			BusySeconds: busy,
			Utilization: utilization(busy, totalNs, w),
		})
		fmt.Fprintf(os.Stderr, "parbench: gen workers=%d %.2fms (%.2fx, util %.2f)\n",
			w, float64(ns)/1e6, float64(seqNs)/float64(ns), utilization(busy, totalNs, w))
	}
	for _, r := range rep.Parallel {
		if !r.Identical {
			return nil, fmt.Errorf("gen workers=%d produced a dataset that differs from sequential", r.Workers)
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "parbench: report written to %s\n", out)
	return rep, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// refinedRun is one fully observed refinement: the model, the result and
// the redacted trace stream (events then spans) — the three outputs the
// speculative-refinement determinism contract covers.
type refinedRun struct {
	m     *model.Model
	res   *model.RefineResult
	trace []byte
}

func runEval(out string, seed int64, reps int, counts []int, mode string) (*report, error) {
	cfg := experiments.DefaultConfig()
	cfg.Seed = seed
	busyHist := obs.GetHistogram("eval_worker_busy_seconds", "", nil)
	refBusyHist := obs.GetHistogram("refine_worker_busy_seconds", "", nil)
	specCtr := obs.GetCounter("refine_speculations_total", "")
	conflictCtr := obs.GetCounter("refine_conflicts_total", "")
	fmt.Fprintf(os.Stderr, "parbench: generating suite (seed=%d)...\n", seed)
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		return nil, err
	}
	train, valid := s.Data.SplitByObsPoint(0.5, seed)
	g := topology.FromDataset(s.Data)
	u := dataset.NewUniverse(s.Data)

	// Every refinement — the sequential reference included — runs with a
	// redacted span recorder and a trace-event observer attached, so the
	// timings are uniform and the identity check can cover the trace
	// stream, not just the model bytes.
	buildRefined := func(workers int) (*refinedRun, error) {
		m, err := model.NewInitial(g, u)
		if err != nil {
			return nil, err
		}
		var trace bytes.Buffer
		sink := obs.NewTraceSink(&trace)
		rec := obs.NewSpanRecorder(sink, "parbench refine", obs.SpanOptions{RedactTiming: true})
		rcfg := model.RefineConfig{Workers: workers, Observer: func(ev model.RefineEvent) {
			_ = sink.Emit(ev)
		}}
		res, err := m.RefineContext(obs.ContextWithSpan(context.Background(), rec.Root()), train, rcfg)
		if err != nil {
			return nil, err
		}
		if err := rec.Finish(); err != nil {
			return nil, err
		}
		if err := sink.Flush(); err != nil {
			return nil, err
		}
		return &refinedRun{m: m, res: res, trace: trace.Bytes()}, nil
	}

	fmt.Fprintf(os.Stderr, "parbench: refining baseline model...\n")
	ref, err := buildRefined(0)
	if err != nil {
		return nil, err
	}
	m := ref.m
	rep := &report{
		Schema: evalSchema,
		Seed:   seed, Reps: reps,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS, GOARCH: runtime.GOARCH,
		Hostname: hostname(),
		Prefixes: len(s.Data.Prefixes()),
		Note: "speedup is bounded by num_cpu: per-prefix simulation shares nothing, " +
			"so on a single-CPU host parallel timings measure pool overhead while " +
			"the identical flags still verify the deterministic merge",
		QuasiRouters: m.NumQuasiRouters(),
	}

	// Evaluation: sequential baseline, then each worker count (skipped in
	// refine-only mode).
	if mode != "refine" {
		want, err := m.Evaluate(valid)
		if err != nil {
			return nil, err
		}
		rep.Paths = want.Summary.Total
		rep.EvalSeqNsOp, _, err = minNs(reps, func() error {
			_, err := m.Evaluate(valid)
			return err
		})
		if err != nil {
			return nil, err
		}
		for _, w := range counts {
			var got *model.Evaluation
			busy0 := busyHist.Sum()
			ns, totalNs, err := minNs(reps, func() error {
				var err error
				got, err = m.EvaluateParallel(context.Background(), valid, w)
				return err
			})
			if err != nil {
				return nil, err
			}
			busy := busyHist.Sum() - busy0
			rep.Evaluate = append(rep.Evaluate, workerRow{
				Workers: w, NsOp: ns,
				Speedup:     float64(rep.EvalSeqNsOp) / float64(ns),
				Identical:   reflect.DeepEqual(got, want),
				BusySeconds: busy,
				Utilization: utilization(busy, totalNs, w),
			})
			fmt.Fprintf(os.Stderr, "parbench: evaluate workers=%d %.2fms (%.2fx, util %.2f)\n",
				w, float64(ns)/1e6, float64(rep.EvalSeqNsOp)/float64(ns), utilization(busy, totalNs, w))
		}
	}

	// Refinement: the sequential run vs speculative worker pools,
	// compared by model bytes, RefineResult and the redacted trace
	// stream. Busy time sums the speculation workers
	// (refine_worker_busy_seconds) and the verify-sweep workers
	// (eval_worker_busy_seconds), so utilization covers both parallel
	// sections of the refinement — iteration barriers and the sequential
	// merger are the idle remainder.
	var wantBytes bytes.Buffer
	if err := m.Save(&wantBytes); err != nil {
		return nil, err
	}
	rep.RefSeqNsOp, _, err = minNs(reps, func() error {
		_, err := buildRefined(0)
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, w := range counts {
		var got *refinedRun
		busy0 := busyHist.Sum() + refBusyHist.Sum()
		specs0, conflicts0 := specCtr.Value(), conflictCtr.Value()
		ns, totalNs, err := minNs(reps, func() error {
			var err error
			got, err = buildRefined(w)
			return err
		})
		if err != nil {
			return nil, err
		}
		busy := busyHist.Sum() + refBusyHist.Sum() - busy0
		conflictRate := 0.0
		if specs := specCtr.Value() - specs0; specs > 0 {
			conflictRate = float64(conflictCtr.Value()-conflicts0) / float64(specs)
		}
		var gotBytes bytes.Buffer
		if err := got.m.Save(&gotBytes); err != nil {
			return nil, err
		}
		identical := bytes.Equal(gotBytes.Bytes(), wantBytes.Bytes()) &&
			reflect.DeepEqual(got.res, ref.res) &&
			bytes.Equal(got.trace, ref.trace)
		rep.Refine = append(rep.Refine, workerRow{
			Workers: w, NsOp: ns,
			Speedup:      float64(rep.RefSeqNsOp) / float64(ns),
			Identical:    identical,
			BusySeconds:  busy,
			Utilization:  utilization(busy, totalNs, w),
			ConflictRate: conflictRate,
		})
		fmt.Fprintf(os.Stderr, "parbench: refine workers=%d %.2fms (%.2fx, util %.2f, conflicts %.2f)\n",
			w, float64(ns)/1e6, float64(rep.RefSeqNsOp)/float64(ns), utilization(busy, totalNs, w), conflictRate)
	}

	for _, r := range append(append([]workerRow{}, rep.Evaluate...), rep.Refine...) {
		if !r.Identical {
			return nil, fmt.Errorf("workers=%d produced a result that differs from sequential", r.Workers)
		}
	}

	if err := writeJSON(out, rep); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "parbench: report written to %s\n", out)
	return rep, nil
}
