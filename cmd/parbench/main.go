// Command parbench measures the parallel per-prefix machinery against its
// sequential baselines and writes machine-readable reports
// (BENCH_parallel.json and BENCH_gen.json via `make bench-json`).
//
// The eval section times Model.EvaluateParallel over a refined model for
// every worker count and checks the result is identical
// (reflect.DeepEqual) to the sequential evaluation; it then times a full
// refinement with the parallel verify sweep and checks the serialized
// model is byte-identical to the sequentially refined one. The gen
// section times gen.Internet.RunAllParallel — the ground-truth
// generation that dominates suite setup — on a freshly generated
// Internet per repetition and checks the dataset bytes and the
// Weird/QuirksReverted bookkeeping match the sequential RunAll. Both
// reports record GOMAXPROCS and NumCPU alongside every timing:
// per-prefix simulation shares nothing, so the speedup tracks the CPU
// count — on a single-CPU host it stays near 1x and the run only
// demonstrates determinism plus pool overhead.
//
// Usage:
//
//	parbench -out BENCH_parallel.json -gen-out BENCH_gen.json -seed 1 -reps 3 -workers 1,2,4,8
//	parbench -mode gen -reps 1            # generation smoke only (make bench-gen)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"asmodel/internal/dataset"
	"asmodel/internal/experiments"
	"asmodel/internal/gen"
	"asmodel/internal/model"
	"asmodel/internal/topology"
)

type workerRow struct {
	Workers   int     `json:"workers"`
	NsOp      int64   `json:"ns_op"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

type report struct {
	Seed         int64       `json:"seed"`
	Reps         int         `json:"reps"`
	GoMaxProcs   int         `json:"gomaxprocs"`
	NumCPU       int         `json:"num_cpu"`
	GoVersion    string      `json:"go_version"`
	Prefixes     int         `json:"prefixes"`
	Paths        int         `json:"paths"`
	QuasiRouters int         `json:"quasi_routers"`
	Note         string      `json:"note"`
	EvalSeqNsOp  int64       `json:"evaluate_sequential_ns_op"`
	Evaluate     []workerRow `json:"evaluate_parallel"`
	RefSeqNsOp   int64       `json:"refine_sequential_ns_op"`
	Refine       []workerRow `json:"refine_parallel"`
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "evaluate/refine report file")
	genOut := flag.String("gen-out", "BENCH_gen.json", "ground-truth generation report file")
	seed := flag.Int64("seed", 1, "generator and split seed")
	reps := flag.Int("reps", 3, "timed repetitions per configuration (minimum is reported)")
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts to measure")
	mode := flag.String("mode", "all", "which sections to run: all, eval (evaluate+refine), or gen (ground-truth generation)")
	flag.Parse()
	if *mode != "all" && *mode != "eval" && *mode != "gen" {
		fmt.Fprintln(os.Stderr, "parbench: -mode must be all, eval or gen")
		os.Exit(2)
	}
	if err := run(*out, *genOut, *mode, *seed, *reps, *workersList); err != nil {
		fmt.Fprintln(os.Stderr, "parbench:", err)
		os.Exit(1)
	}
}

// minNs reports the minimum wall time of reps runs of f.
func minNs(reps int, f func() error) (int64, error) {
	best := int64(-1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

func run(out, genOut, mode string, seed int64, reps int, workersList string) error {
	var counts []int
	for _, part := range strings.Split(workersList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -workers entry %q", part)
		}
		counts = append(counts, n)
	}
	if mode == "all" || mode == "gen" {
		if err := runGen(genOut, seed, reps, counts); err != nil {
			return err
		}
	}
	if mode == "all" || mode == "eval" {
		if err := runEval(out, seed, reps, counts); err != nil {
			return err
		}
	}
	return nil
}

// genReport is the BENCH_gen.json shape: sequential RunAll vs
// RunAllParallel on a freshly generated Internet per repetition.
type genReport struct {
	Seed           int64       `json:"seed"`
	Reps           int         `json:"reps"`
	GoMaxProcs     int         `json:"gomaxprocs"`
	NumCPU         int         `json:"num_cpu"`
	GoVersion      string      `json:"go_version"`
	Prefixes       int         `json:"prefixes"`
	Records        int         `json:"records"`
	QuirksReverted int         `json:"quirks_reverted"`
	Note           string      `json:"note"`
	SeqNsOp        int64       `json:"run_all_sequential_ns_op"`
	Parallel       []workerRow `json:"run_all_parallel"`
}

// runGen benches ground-truth generation. Every repetition regenerates
// the Internet from the seed: RunAll mutates the generator's quirk
// bookkeeping (diverging weird policies are reverted on first contact),
// so re-running on a used Internet would not time the same work.
func runGen(out string, seed int64, reps int, counts []int) error {
	cfg := experiments.DefaultConfig()
	cfg.Seed = seed

	timeRunAll := func(workers int) (int64, *dataset.Dataset, *gen.Internet, error) {
		best := int64(-1)
		var ds *dataset.Dataset
		var in *gen.Internet
		for i := 0; i < reps; i++ {
			fresh, err := gen.Generate(cfg)
			if err != nil {
				return 0, nil, nil, err
			}
			start := time.Now()
			d, err := fresh.RunAllParallel(context.Background(), workers)
			if err != nil {
				return 0, nil, nil, err
			}
			if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
				best = ns
			}
			ds, in = d, fresh
		}
		return best, ds, in, nil
	}

	fmt.Fprintf(os.Stderr, "parbench: ground-truth generation (seed=%d)...\n", seed)
	seqNs, seqDS, seqIn, err := timeRunAll(1)
	if err != nil {
		return err
	}
	var want bytes.Buffer
	if err := seqDS.Write(&want); err != nil {
		return err
	}
	rep := &genReport{
		Seed: seed, Reps: reps,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GoVersion:      runtime.Version(),
		Prefixes:       seqIn.NumPrefixes(),
		Records:        seqDS.Len(),
		QuirksReverted: seqIn.QuirksReverted,
		Note: "speedup is bounded by num_cpu: per-prefix ground-truth simulation shares " +
			"nothing, so on a single-CPU host parallel timings measure clone + pool " +
			"overhead while the identical flags still verify the deterministic merge",
		SeqNsOp: seqNs,
	}
	fmt.Fprintf(os.Stderr, "parbench: gen sequential %.2fms (%d records)\n", float64(seqNs)/1e6, seqDS.Len())
	for _, w := range counts {
		if w == 1 {
			continue // workers=1 is the sequential path already timed
		}
		ns, ds, in, err := timeRunAll(w)
		if err != nil {
			return err
		}
		var got bytes.Buffer
		if err := ds.Write(&got); err != nil {
			return err
		}
		identical := bytes.Equal(got.Bytes(), want.Bytes()) &&
			in.QuirksReverted == seqIn.QuirksReverted &&
			len(in.Weird) == len(seqIn.Weird)
		rep.Parallel = append(rep.Parallel, workerRow{
			Workers: w, NsOp: ns,
			Speedup:   float64(seqNs) / float64(ns),
			Identical: identical,
		})
		fmt.Fprintf(os.Stderr, "parbench: gen workers=%d %.2fms (%.2fx)\n",
			w, float64(ns)/1e6, float64(seqNs)/float64(ns))
	}
	for _, r := range rep.Parallel {
		if !r.Identical {
			return fmt.Errorf("gen workers=%d produced a dataset that differs from sequential", r.Workers)
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parbench: report written to %s\n", out)
	return nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runEval(out string, seed int64, reps int, counts []int) error {
	cfg := experiments.DefaultConfig()
	cfg.Seed = seed
	fmt.Fprintf(os.Stderr, "parbench: generating suite (seed=%d)...\n", seed)
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	train, valid := s.Data.SplitByObsPoint(0.5, seed)
	g := topology.FromDataset(s.Data)
	u := dataset.NewUniverse(s.Data)

	buildRefined := func(workers int) (*model.Model, error) {
		m, err := model.NewInitial(g, u)
		if err != nil {
			return nil, err
		}
		if _, err := m.Refine(train, model.RefineConfig{Workers: workers}); err != nil {
			return nil, err
		}
		return m, nil
	}

	fmt.Fprintf(os.Stderr, "parbench: refining baseline model...\n")
	m, err := buildRefined(0)
	if err != nil {
		return err
	}
	rep := &report{
		Seed: seed, Reps: reps,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Prefixes:  len(s.Data.Prefixes()),
		Note: "speedup is bounded by num_cpu: per-prefix simulation shares nothing, " +
			"so on a single-CPU host parallel timings measure pool overhead while " +
			"the identical flags still verify the deterministic merge",
		QuasiRouters: m.NumQuasiRouters(),
	}

	// Evaluation: sequential baseline, then each worker count.
	want, err := m.Evaluate(valid)
	if err != nil {
		return err
	}
	rep.Paths = want.Summary.Total
	rep.EvalSeqNsOp, err = minNs(reps, func() error {
		_, err := m.Evaluate(valid)
		return err
	})
	if err != nil {
		return err
	}
	for _, w := range counts {
		var got *model.Evaluation
		ns, err := minNs(reps, func() error {
			var err error
			got, err = m.EvaluateParallel(context.Background(), valid, w)
			return err
		})
		if err != nil {
			return err
		}
		rep.Evaluate = append(rep.Evaluate, workerRow{
			Workers: w, NsOp: ns,
			Speedup:   float64(rep.EvalSeqNsOp) / float64(ns),
			Identical: reflect.DeepEqual(got, want),
		})
		fmt.Fprintf(os.Stderr, "parbench: evaluate workers=%d %.2fms (%.2fx)\n",
			w, float64(ns)/1e6, float64(rep.EvalSeqNsOp)/float64(ns))
	}

	// Refinement: sequential verify sweep vs worker pools, compared by
	// serialized model bytes.
	var wantBytes bytes.Buffer
	if err := m.Save(&wantBytes); err != nil {
		return err
	}
	rep.RefSeqNsOp, err = minNs(reps, func() error {
		_, err := buildRefined(0)
		return err
	})
	if err != nil {
		return err
	}
	for _, w := range counts {
		if w == 1 {
			continue // Workers:1 is the sequential path already timed
		}
		var got *model.Model
		ns, err := minNs(reps, func() error {
			var err error
			got, err = buildRefined(w)
			return err
		})
		if err != nil {
			return err
		}
		var gotBytes bytes.Buffer
		if err := got.Save(&gotBytes); err != nil {
			return err
		}
		rep.Refine = append(rep.Refine, workerRow{
			Workers: w, NsOp: ns,
			Speedup:   float64(rep.RefSeqNsOp) / float64(ns),
			Identical: bytes.Equal(gotBytes.Bytes(), wantBytes.Bytes()),
		})
		fmt.Fprintf(os.Stderr, "parbench: refine workers=%d %.2fms (%.2fx)\n",
			w, float64(ns)/1e6, float64(rep.RefSeqNsOp)/float64(ns))
	}

	for _, r := range append(append([]workerRow{}, rep.Evaluate...), rep.Refine...) {
		if !r.Identical {
			return fmt.Errorf("workers=%d produced a result that differs from sequential", r.Workers)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parbench: report written to %s\n", out)
	return nil
}
