// Command obsreport works with the JSON artifacts the pipeline emits:
// run reports (asmodel/topogen/mrt2paths/experiments/parbench -report)
// and the checked-in BENCH_*.json benchmark reports.
//
//	obsreport show report.json              # human-readable stage breakdown
//	obsreport diff old.json new.json        # metric deltas, stage-time ratios
//	obsreport check BENCH_parallel.json baselines/BENCH_parallel.baseline.json
//
// check exits non-zero when any baseline rule is violated — it is the
// perf-regression gate behind `make bench-check`. Rules tolerate the
// slow single-core CI runners via generous one-sided ratios; the point
// is catching order-of-magnitude regressions and broken determinism
// flags, not 10% noise.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"asmodel/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "show":
		if len(os.Args) != 3 {
			usage()
		}
		err = show(os.Args[2])
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		err = diff(os.Args[2], os.Args[3])
	case "check":
		if len(os.Args) != 4 {
			usage()
		}
		err = check(os.Args[2], os.Args[3])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  obsreport show <report.json>
  obsreport diff <old.json> <new.json>
  obsreport check <report.json> <baseline.json>`)
	os.Exit(2)
}

func readJSON(path string) (map[string]interface{}, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v map[string]interface{}
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// flatten turns nested objects and arrays into dotted leaf keys
// ("stages.0.seconds"), the shape both diff and check operate on.
func flatten(prefix string, v interface{}, out map[string]interface{}) {
	switch t := v.(type) {
	case map[string]interface{}:
		for k, sub := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flatten(key, sub, out)
		}
	case []interface{}:
		for i, sub := range t {
			key := strconv.Itoa(i)
			if prefix != "" {
				key = prefix + "." + key
			}
			flatten(key, sub, out)
		}
	default:
		out[prefix] = v
	}
}

func flatMap(v map[string]interface{}) map[string]interface{} {
	out := make(map[string]interface{})
	flatten("", v, out)
	return out
}

func sortedKeys(m map[string]interface{}) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtVal(v interface{}) string {
	switch t := v.(type) {
	case float64:
		return strconv.FormatFloat(t, 'g', 6, 64)
	case string:
		return t
	case nil:
		return "null"
	default:
		return fmt.Sprint(t)
	}
}

// show renders a run report as a stage breakdown when the file carries
// the run-report schema, and as a sorted key dump otherwise (BENCH
// files, unknown schemas).
func show(path string) error {
	raw, err := readJSON(path)
	if err != nil {
		return err
	}
	if raw["schema"] == obs.RunReportSchema {
		rep, err := obs.ReadRunReport(path)
		if err != nil {
			return err
		}
		return showRunReport(rep)
	}
	if s, ok := raw["schema"].(string); ok {
		fmt.Printf("%s (%s)\n", path, s)
	} else {
		fmt.Printf("%s (no schema field)\n", path)
	}
	flat := flatMap(raw)
	for _, k := range sortedKeys(flat) {
		fmt.Printf("  %-50s %s\n", k, fmtVal(flat[k]))
	}
	return nil
}

func showRunReport(rep *obs.RunReport) error {
	fmt.Printf("%s  (%s)\n", rep.Command, rep.Schema)
	if len(rep.Args) > 0 {
		fmt.Printf("  args:        %s\n", strings.Join(rep.Args, " "))
	}
	fmt.Printf("  started:     %s\n", rep.Start)
	fmt.Printf("  wall:        %.3fs\n", rep.WallSeconds)
	fmt.Printf("  seed:        %d\n", rep.Seed)
	fmt.Printf("  host:        %s/%s gomaxprocs=%d numcpu=%d %s\n",
		rep.GOOS, rep.GOARCH, rep.GoMaxProcs, rep.NumCPU, rep.GoVersion)
	if rep.GitDescribe != "" {
		fmt.Printf("  git:         %s\n", rep.GitDescribe)
	}
	if len(rep.Stages) > 0 {
		fmt.Println("  stages:")
		for _, st := range rep.Stages {
			pct := 0.0
			if rep.WallSeconds > 0 {
				pct = 100 * st.Seconds / rep.WallSeconds
			}
			line := fmt.Sprintf("    %-24s %9.3fs %5.1f%%", st.Name, st.Seconds, pct)
			if len(st.Attrs) > 0 {
				parts := make([]string, 0, len(st.Attrs))
				for _, k := range sortedKeys(st.Attrs) {
					parts = append(parts, k+"="+fmtVal(st.Attrs[k]))
				}
				line += "  " + strings.Join(parts, " ")
			}
			fmt.Println(line)
		}
	}
	if len(rep.Sections) > 0 {
		fmt.Printf("  sections:    %s\n", strings.Join(sortedKeys(rep.Sections), " "))
	}
	fmt.Printf("  metrics:     %d recorded\n", len(rep.Metrics))
	return nil
}

// diff prints keys added, removed and changed between two reports; for
// numeric changes it includes the new/old ratio so stage-time drift
// stands out.
func diff(oldPath, newPath string) error {
	oldRaw, err := readJSON(oldPath)
	if err != nil {
		return err
	}
	newRaw, err := readJSON(newPath)
	if err != nil {
		return err
	}
	a, b := flatMap(oldRaw), flatMap(newRaw)
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	changes := 0
	for _, k := range ordered {
		av, aok := a[k]
		bv, bok := b[k]
		switch {
		case !aok:
			fmt.Printf("+ %-50s %s\n", k, fmtVal(bv))
			changes++
		case !bok:
			fmt.Printf("- %-50s %s\n", k, fmtVal(av))
			changes++
		case fmtVal(av) != fmtVal(bv):
			line := fmt.Sprintf("~ %-50s %s -> %s", k, fmtVal(av), fmtVal(bv))
			if af, aIsNum := av.(float64); aIsNum {
				if bf, bIsNum := bv.(float64); bIsNum && af != 0 {
					line += fmt.Sprintf("  (%.2fx)", bf/af)
				}
			}
			fmt.Println(line)
			changes++
		}
	}
	if changes == 0 {
		fmt.Println("no differences")
	}
	return nil
}

// rule is one baseline constraint applied to every flattened key that
// matches its pattern. Exactly the fields set are enforced:
//
//	equals     — deep equality with the baseline value
//	value +    — one-sided perf gate: actual <= value × max_ratio
//	max_ratio    (ratios are generous — 25–50× — so only
//	             order-of-magnitude regressions trip on slow runners)
//	min / max  — numeric bounds (inclusive)
//
// required (default true) fails the check when no key matches the
// pattern at all — so a renamed field cannot silently skip its gate.
type rule struct {
	Equals   interface{} `json:"equals,omitempty"`
	Value    *float64    `json:"value,omitempty"`
	MaxRatio *float64    `json:"max_ratio,omitempty"`
	Min      *float64    `json:"min,omitempty"`
	Max      *float64    `json:"max,omitempty"`
	Required *bool       `json:"required,omitempty"`
}

type baseline struct {
	Schema string          `json:"schema,omitempty"`
	Rules  map[string]rule `json:"rules"`
}

// matchPattern reports whether a dotted key matches a dotted pattern
// where "*" matches exactly one segment (typically an array index).
func matchPattern(pattern, key string) bool {
	ps := strings.Split(pattern, ".")
	ks := strings.Split(key, ".")
	if len(ps) != len(ks) {
		return false
	}
	for i := range ps {
		if ps[i] != "*" && ps[i] != ks[i] {
			return false
		}
	}
	return true
}

func check(reportPath, baselinePath string) error {
	raw, err := readJSON(reportPath)
	if err != nil {
		return err
	}
	bb, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(bb, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	flat := flatMap(raw)
	var violations []string
	if base.Schema != "" {
		if got, _ := raw["schema"].(string); got != base.Schema {
			violations = append(violations,
				fmt.Sprintf("schema: got %q, baseline wants %q", got, base.Schema))
		}
	}
	patterns := make([]string, 0, len(base.Rules))
	for p := range base.Rules {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	checked := 0
	for _, pattern := range patterns {
		r := base.Rules[pattern]
		matched := 0
		for _, key := range sortedKeys(flat) {
			if !matchPattern(pattern, key) {
				continue
			}
			matched++
			checked++
			violations = append(violations, checkRule(pattern, key, flat[key], r)...)
		}
		if matched == 0 && (r.Required == nil || *r.Required) {
			violations = append(violations, fmt.Sprintf("%s: no key matches", pattern))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "obsreport: FAIL", v)
		}
		return fmt.Errorf("%s: %d violation(s) against %s", reportPath, len(violations), baselinePath)
	}
	fmt.Printf("obsreport: %s ok (%d keys checked against %s)\n", reportPath, checked, baselinePath)
	return nil
}

func checkRule(pattern, key string, v interface{}, r rule) []string {
	var out []string
	if r.Equals != nil {
		if fmtVal(v) != fmtVal(r.Equals) {
			out = append(out, fmt.Sprintf("%s: got %s, want %s", key, fmtVal(v), fmtVal(r.Equals)))
		}
	}
	needNum := r.Value != nil || r.Min != nil || r.Max != nil
	if !needNum {
		return out
	}
	f, ok := v.(float64)
	if !ok {
		return append(out, fmt.Sprintf("%s: got non-numeric %s for numeric rule", key, fmtVal(v)))
	}
	if r.Value != nil {
		ratio := 1.0
		if r.MaxRatio != nil {
			ratio = *r.MaxRatio
		}
		limit := *r.Value * ratio
		if f > limit {
			out = append(out, fmt.Sprintf("%s: %s exceeds %s (baseline %s × %g)",
				key, fmtFloat(f), fmtFloat(limit), fmtFloat(*r.Value), ratio))
		}
	}
	if r.Min != nil && f < *r.Min {
		out = append(out, fmt.Sprintf("%s: %s below min %s", key, fmtFloat(f), fmtFloat(*r.Min)))
	}
	if r.Max != nil && f > *r.Max {
		out = append(out, fmt.Sprintf("%s: %s above max %s", key, fmtFloat(f), fmtFloat(*r.Max)))
	}
	return out
}

func fmtFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}
