GO ?= go

.PHONY: all build test vet race check bench bench-json

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Everything runs under the race detector in CI (the sim/model/obs
# packages hold the concurrency-sensitive state, but signal handling and
# trace sinks in cmd/ deserve it too).
race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Sequential-vs-parallel evaluate/refine timings plus determinism check;
# writes BENCH_parallel.json (checked in; regenerate after engine changes).
bench-json:
	$(GO) run ./cmd/parbench -out BENCH_parallel.json
