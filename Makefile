GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Everything runs under the race detector in CI (the sim/model/obs
# packages hold the concurrency-sensitive state, but signal handling and
# trace sinks in cmd/ deserve it too).
race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
