GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sim and model packages hold all the concurrency-sensitive state
# (atomic metrics, shared registries); race-check them explicitly.
race:
	$(GO) test -race ./internal/sim/... ./internal/model/... ./internal/obs/...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
