GO ?= go

.PHONY: all build test vet race check bench bench-json fuzz-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Everything runs under the race detector in CI (the sim/model/obs
# packages hold the concurrency-sensitive state, but signal handling and
# trace sinks in cmd/ deserve it too).
race:
	$(GO) test -race ./...

check: build vet test race

# Short fuzzing pass over every parser-facing fuzz target (go's fuzzer
# accepts one -fuzz pattern per invocation, hence the separate runs).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/mrt -fuzz '^FuzzParsePeerIndexTable$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/mrt -fuzz '^FuzzParseRIB$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/mrt -fuzz '^FuzzParseBGP4MP$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/lg -fuzz '^FuzzLGParse$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/model -fuzz '^FuzzModelLoad$$' -fuzztime $(FUZZTIME) -run '^$$'

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Sequential-vs-parallel evaluate/refine timings plus determinism check;
# writes BENCH_parallel.json (checked in; regenerate after engine changes).
bench-json:
	$(GO) run ./cmd/parbench -out BENCH_parallel.json
