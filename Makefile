GO ?= go

.PHONY: all build test vet race check bench bench-go bench-json bench-gen bench-refine bench-serve bench-stream bench-check fuzz-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Everything runs under the race detector in CI (the sim/model/obs
# packages hold the concurrency-sensitive state, but signal handling and
# trace sinks in cmd/ deserve it too).
race:
	$(GO) test -race ./...

check: build vet test race

# Short fuzzing pass over every parser-facing fuzz target (go's fuzzer
# accepts one -fuzz pattern per invocation, hence the separate runs).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/mrt -fuzz '^FuzzParsePeerIndexTable$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/mrt -fuzz '^FuzzParseRIB$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/mrt -fuzz '^FuzzParseBGP4MP$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/lg -fuzz '^FuzzLGParse$$' -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/model -fuzz '^FuzzModelLoad$$' -fuzztime $(FUZZTIME) -run '^$$'

# Sequential-vs-parallel timings plus determinism checks; writes
# schema-versioned BENCH_parallel.json (evaluate/refine) and
# BENCH_gen.json (ground-truth generation) with host metadata and
# per-worker utilization, both checked in; regenerate after engine
# changes and keep baselines/ in step (see bench-check).
bench:
	$(GO) run ./cmd/parbench -out BENCH_parallel.json -gen-out BENCH_gen.json

bench-json: bench

# Go microbenchmarks (testing.B) at the repo root.
bench-go:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Fast smoke of the generation benchmark: one repetition, exits non-zero
# if any worker count produces a dataset that differs from sequential.
bench-gen:
	$(GO) run ./cmd/parbench -mode gen -reps 1 -gen-out BENCH_gen.json

# Fast smoke of speculative refinement: one repetition per worker count,
# exits non-zero unless every count's model bytes, result counts and
# redacted trace match the sequential refinement. Writes to a scratch
# path so the checked-in BENCH_parallel.json keeps its full-reps numbers.
bench-refine:
	$(GO) run ./cmd/parbench -mode refine -reps 1 -out /tmp/BENCH_refine_smoke.json

# Serving-stack benchmark: an in-process asmodeld on a loopback port
# under a seeded client fleet with mid-run hot-swaps; writes
# schema-versioned BENCH_serve.json (checked in, gated by bench-check).
bench-serve:
	$(GO) run ./cmd/asmodeld -loadgen -gen-seed 1 -requests 2000 -clients 8 -out BENCH_serve.json

# Streaming-refinement benchmark: a seeded synthetic update stream
# through the incremental batch loop, clean run vs crash-at-half +
# resume; writes schema-versioned BENCH_stream.json (checked in, gated
# by bench-check) and fails outright if the resumed run's state file is
# not byte-identical to the clean run's.
bench-stream:
	$(GO) run ./cmd/streambench -out BENCH_stream.json

# Perf-regression gate: validate the BENCH reports against the
# checked-in baselines (generous single-core tolerances — this catches
# order-of-magnitude regressions and broken determinism flags).
bench-check:
	$(GO) run ./cmd/obsreport check BENCH_parallel.json baselines/BENCH_parallel.baseline.json
	$(GO) run ./cmd/obsreport check BENCH_gen.json baselines/BENCH_gen.baseline.json
	$(GO) run ./cmd/obsreport check BENCH_serve.json baselines/BENCH_serve.baseline.json
	$(GO) run ./cmd/obsreport check BENCH_stream.json baselines/BENCH_stream.baseline.json
