package ingest

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestStrictModeReturnsFirstError(t *testing.T) {
	rep := NewReport("feed", Options{Strict: true})
	base := errors.New("bad field")
	err := rep.Skip(3, base)
	if err == nil || !errors.Is(err, base) {
		t.Fatalf("strict Skip = %v, want wrapped base error", err)
	}
	if rep.Skipped != 0 {
		t.Fatalf("strict mode counted a skip: %d", rep.Skipped)
	}
}

func TestLenientCountsAndBudget(t *testing.T) {
	rep := NewReport("feed", Options{MaxRecordErrors: 5})
	for i := 1; i <= 5; i++ {
		if err := rep.Skip(i, fmt.Errorf("err %d", i)); err != nil {
			t.Fatalf("skip %d within budget: %v", i, err)
		}
	}
	err := rep.Skip(6, errors.New("one too many"))
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetExceededError, got %v", err)
	}
	if be.Skipped != 6 || be.Budget != 5 {
		t.Fatalf("budget error: %+v", be)
	}
	if rep.Skipped != 6 {
		t.Fatalf("Skipped = %d, want 6", rep.Skipped)
	}
}

func TestDefaultAndUnlimitedBudget(t *testing.T) {
	rep := NewReport("feed", Options{})
	for i := 0; i < DefaultMaxRecordErrors; i++ {
		if err := rep.Skip(i+1, errors.New("x")); err != nil {
			t.Fatalf("skip %d under default budget: %v", i, err)
		}
	}
	if err := rep.Skip(0, errors.New("x")); err == nil {
		t.Fatal("default budget did not trip")
	}

	unl := NewReport("feed", Options{MaxRecordErrors: -1})
	for i := 0; i < DefaultMaxRecordErrors*3; i++ {
		if err := unl.Skip(i+1, errors.New("x")); err != nil {
			t.Fatalf("unlimited budget tripped at %d: %v", i, err)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := NewReport("rib.mrt", Options{MaxRecordErrors: -1})
	for i := 1; i <= 12; i++ {
		rep.Record()
		if i%2 == 0 {
			rep.Skip(i, fmt.Errorf("boom %d", i))
		}
	}
	s := rep.String()
	if !strings.Contains(s, "rib.mrt: 12 records, 6 skipped") {
		t.Fatalf("summary line missing: %q", s)
	}
	if !strings.Contains(s, "record 2: boom 2") {
		t.Fatalf("first error missing: %q", s)
	}
	if strings.Count(s, "\n") > maxReported+1 {
		t.Fatalf("too many error lines: %q", s)
	}
}
