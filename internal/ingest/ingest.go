// Package ingest holds the shared lenient-loading vocabulary used by
// the mrt, lg, and dataset loaders: per-record skip-and-count
// semantics, an error budget, and a structured report (records read,
// records skipped, first N errors) that the CLIs print to stderr.
package ingest

import (
	"fmt"
	"strings"

	"asmodel/internal/obs"
)

var mSkipped = obs.GetCounter("ingest_records_skipped",
	"Malformed input records skipped by lenient loaders.")

// DefaultMaxRecordErrors is the lenient-mode error budget when the
// caller leaves Options.MaxRecordErrors at zero.
const DefaultMaxRecordErrors = 100

// maxReported caps how many individual record errors a Report retains.
const maxReported = 8

// Options selects between strict and lenient loading.
type Options struct {
	// Strict restores abort-on-first-error behavior: the loader returns
	// the first record error instead of skipping.
	Strict bool
	// MaxRecordErrors is the lenient-mode budget: after this many skipped
	// records the loader aborts with a *BudgetExceededError.
	// 0 means DefaultMaxRecordErrors; negative means unlimited.
	MaxRecordErrors int
}

func (o Options) budget() int {
	switch {
	case o.MaxRecordErrors == 0:
		return DefaultMaxRecordErrors
	case o.MaxRecordErrors < 0:
		return -1
	default:
		return o.MaxRecordErrors
	}
}

// RecordError is one malformed record: its position in the input and
// the parse error.
type RecordError struct {
	Record int // 1-based record or line number
	Err    error
}

func (e RecordError) String() string {
	return fmt.Sprintf("record %d: %v", e.Record, e.Err)
}

// BudgetExceededError reports that a lenient loader skipped more
// records than its budget allows and gave up.
type BudgetExceededError struct {
	Source  string
	Skipped int
	Budget  int
	Last    error // the record error that blew the budget
}

func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("%s: %d malformed records exceeds error budget %d (last: %v)",
		e.Source, e.Skipped, e.Budget, e.Last)
}

func (e *BudgetExceededError) Unwrap() error { return e.Last }

// Report accumulates what a lenient load saw. Loaders call Record for
// every record and Skip for each malformed one; the CLIs print the
// result to stderr when anything was skipped.
type Report struct {
	Source  string // input description, e.g. a file path or "mrt"
	Records int    // records observed (including skipped ones)
	Skipped int    // records dropped as malformed
	Errors  []RecordError
	strict  bool
	budget  int // -1 = unlimited
}

// NewReport builds a report for one input source under opts.
func NewReport(source string, opts Options) *Report {
	return &Report{Source: source, strict: opts.Strict, budget: opts.budget()}
}

// Record counts one input record observed.
func (r *Report) Record() { r.Records++ }

// Skip registers a malformed record. In strict mode it returns the
// error itself (the loader aborts); in lenient mode it counts the skip
// and returns nil until the budget is exhausted, then returns a
// *BudgetExceededError.
func (r *Report) Skip(record int, err error) error {
	if r.strict {
		return fmt.Errorf("%s: record %d: %w", r.Source, record, err)
	}
	r.Skipped++
	mSkipped.Inc()
	if len(r.Errors) < maxReported {
		r.Errors = append(r.Errors, RecordError{Record: record, Err: err})
	}
	if r.budget >= 0 && r.Skipped > r.budget {
		return &BudgetExceededError{Source: r.Source, Skipped: r.Skipped, Budget: r.budget, Last: err}
	}
	return nil
}

// String renders the report for stderr: a summary line plus the first
// few record errors.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d records, %d skipped", r.Source, r.Records, r.Skipped)
	for _, re := range r.Errors {
		fmt.Fprintf(&b, "\n  %s", re)
	}
	if r.Skipped > len(r.Errors) {
		fmt.Fprintf(&b, "\n  ... and %d more", r.Skipped-len(r.Errors))
	}
	return b.String()
}
