package experiments

import (
	"strings"
	"testing"

	"asmodel/internal/gen"
)

func testSuite(t testing.TB) *Suite {
	t.Helper()
	cfg := gen.Config{
		Seed:             42,
		NumTier1:         4,
		NumTier2:         10,
		NumTier3:         20,
		NumStub:          35,
		RoutersTier1:     3,
		RoutersTier2:     2,
		RoutersTier3:     2,
		MultiHomeProb:    0.6,
		Tier2PeerProb:    0.2,
		Tier3PeerProb:    0.05,
		ParallelLinkProb: 0.4,
		WeirdPolicyFrac:  0.08,
		NumVantageASes:   14,
		MaxVantagePerAS:  2,
	}
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFigure2(t *testing.T) {
	s := testSuite(t)
	h, out := s.Figure2()
	if h.Total() == 0 {
		t.Fatal("no AS pairs")
	}
	if h.FracAbove(1) == 0 {
		t.Error("no route diversity found — Figure 2 would be degenerate")
	}
	if !strings.Contains(out, "Figure 2") {
		t.Error("missing title")
	}
}

func TestTable1(t *testing.T) {
	s := testSuite(t)
	q, out := s.Table1()
	if q[0.99] < q[0.50] {
		t.Error("quantiles not monotone")
	}
	if q[0.99] < 2 {
		t.Errorf("p99 diversity %d < 2 — generator too tame", q[0.99])
	}
	if !strings.Contains(out, "percentile") {
		t.Error("missing table header")
	}
}

func TestTable2(t *testing.T) {
	s := testSuite(t)
	res, out, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	sp := res.ShortestPath.Summary
	pol := res.Policies.Summary
	if sp.Total == 0 || pol.Total == 0 {
		t.Fatal("empty table 2 summaries")
	}
	// The paper's qualitative result: single-router baselines agree on
	// far less than all paths, and policies do not beat plain shortest
	// path on agreement.
	if sp.Frac(sp.Agree()) > 0.95 {
		t.Errorf("shortest-path baseline suspiciously good: %v", sp)
	}
	if !strings.Contains(out, "Shortest Path") {
		t.Error("missing column")
	}
}

func TestRunPipelineAndDescribe(t *testing.T) {
	s := testSuite(t)
	o, err := s.RunPipeline(0.5, 7, RefineConfigDefault())
	if err != nil {
		t.Fatal(err)
	}
	if !o.Refine.Converged {
		t.Fatalf("pipeline did not converge: %+v", o.Refine)
	}
	if o.Train.Summary.RIBOut != o.Train.Summary.Total {
		t.Fatalf("training not exact: %v", o.Train.Summary)
	}
	if frac := o.Valid.Summary.Frac(o.Valid.Summary.DownToTieBreak()); frac < 0.6 {
		t.Errorf("validation down-to-tie-break %.2f below floor", frac)
	}
	out := o.Describe("E5+E6")
	for _, want := range []string{"RIB-Out match", "tie-break", "quasi-routers per AS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}

func TestUnseenPrefixes(t *testing.T) {
	s := testSuite(t)
	o, err := s.UnseenPrefixes(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Valid.Summary.Total == 0 {
		t.Fatal("no validation paths")
	}
	if frac := o.Valid.Summary.Frac(o.Valid.Summary.RIBInMatches()); frac < 0.3 {
		t.Errorf("unseen-prefix RIB-In fraction %.2f too low", frac)
	}
}

func TestFigure3(t *testing.T) {
	s := testSuite(t)
	res, out := s.Figure3()
	if !strings.Contains(out, "distinct AS-paths") || !strings.Contains(out, "<-") {
		t.Errorf("figure 3 output:\n%s", out)
	}
	if res == nil || res.DistinctPaths < 1 || res.Prefix == "" || res.AS == 0 {
		t.Errorf("figure 3 result: %+v", res)
	}
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	rows, out, err := s.Ablations(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	if !rows[0].Converged {
		t.Error("full configuration must converge")
	}
	if rows[0].TrainPct != 1.0 {
		t.Errorf("full training pct=%v", rows[0].TrainPct)
	}
	// No-duplication must be strictly worse on training when diversity
	// exists (it cannot represent multiple paths per AS).
	if rows[1].TrainPct > rows[0].TrainPct {
		t.Error("no-duplication beat full configuration")
	}
	if !strings.Contains(out, "ablation") {
		t.Error("missing table")
	}
}

func TestTopologyStats(t *testing.T) {
	s := testSuite(t)
	st, out, err := s.TopologyStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ASes == 0 || st.Edges == 0 {
		t.Fatal("empty stats")
	}
	if len(st.Tier1) < 4 {
		t.Errorf("tier1=%v", st.Tier1)
	}
	if st.PrunedASes > st.ASes {
		t.Error("pruning grew the graph")
	}
	if !strings.Contains(out, "single-homed stubs") {
		t.Error("missing row")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPrefixStudy(t *testing.T) {
	cfg := gen.Config{
		Seed: 8, NumTier1: 4, NumTier2: 8, NumTier3: 15, NumStub: 25,
		RoutersTier1: 3, RoutersTier2: 2, RoutersTier3: 2,
		MultiHomeProb: 0.6, Tier2PeerProb: 0.2, Tier3PeerProb: 0.05,
		ParallelLinkProb: 0.4, WeirdPolicyFrac: 0.15,
		NumVantageASes: 12, MaxVantagePerAS: 2,
	}
	res, out, err := MultiPrefixStudy(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "multi-prefix study") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "carry more than one prefix") {
		t.Error("missing histogram")
	}
	if res.Prefixes == 0 || res.PrefixesPerOrigin != 3 {
		t.Errorf("result: %+v", res)
	}
}

func TestCombinedSplit(t *testing.T) {
	s := testSuite(t)
	o, err := s.CombinedSplit(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Refine.Converged {
		t.Fatalf("training did not converge: %+v", o.Refine)
	}
	if o.Train.Summary.RIBOut != o.Train.Summary.Total {
		t.Fatalf("training not exact: %v", o.Train.Summary)
	}
	if o.Valid.Summary.Total == 0 {
		t.Fatal("empty fully-unseen quadrant")
	}
	// The hardest task: still expect meaningful RIB-In coverage.
	if frac := o.Valid.Summary.Frac(o.Valid.Summary.RIBInMatches()); frac < 0.25 {
		t.Errorf("combined-split RIB-In %.2f too low", frac)
	}
}

func TestComplexityByLevel(t *testing.T) {
	s := testSuite(t)
	o, err := s.RunPipeline(0.5, 7, RefineConfigDefault())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.ComplexityByLevel(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"level-1", "level-2", "other", "extra quasi-routers"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWhatIfFidelity(t *testing.T) {
	s := testSuite(t)
	res, out, err := s.WhatIfFidelity(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases == 0 {
		t.Fatal("no cases compared")
	}
	if res.ExactSet > res.PrimaryCovered {
		t.Error("exact matches cannot exceed covered cases")
	}
	if frac := float64(res.ExactSet) / float64(res.Cases); frac < 0.4 {
		t.Errorf("what-if exact fidelity %.2f suspiciously low", frac)
	}
	if !strings.Contains(out, "what-if fidelity") {
		t.Error("missing title")
	}
}

func TestIterationsVsPathLength(t *testing.T) {
	s := testSuite(t)
	rows, out, err := s.IterationsVsPathLength([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "max path length") || !strings.Contains(out, "ratio") {
		t.Errorf("output:\n%s", out)
	}
	if len(rows) != 2 || rows[0].Seed != 1 || rows[0].Iterations == 0 || rows[0].MaxPathLen == 0 {
		t.Errorf("rows: %+v", rows)
	}
}
