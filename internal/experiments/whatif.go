package experiments

import (
	"fmt"
	"sort"
	"strings"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/model"
	"asmodel/internal/stats"
	"asmodel/internal/topology"
)

// WhatIfFidelity (E13) validates the model's central use case — what-if
// prediction (§1: "what if a certain peering link was removed?") — in a
// way the paper could not: because the substrate is synthetic, the same
// link can be removed from the ground truth and the Internet re-simulated,
// giving the true post-edit routing to compare the model's prediction
// against.
//
// For each of the busiest observed links and each affected prefix, the
// experiment removes the link in both worlds and compares, per vantage
// AS, the model's predicted path set with the ground truth's new observed
// path set.
type WhatIfFidelityResult struct {
	Links          int
	Cases          int // (link, prefix, vantage AS) triples compared
	ExactSet       int // predicted path set == true new path set
	PrimaryCovered int // the true paths are a subset of the predictions
	Unaffected     int // triples where the truth did not change at all
}

// WhatIfFidelity runs the study over the nLinks busiest observed links,
// up to perLink affected prefixes each.
func (s *Suite) WhatIfFidelity(nLinks, perLink int) (*WhatIfFidelityResult, string, error) {
	// Refine a model on all observations.
	g := topology.FromDataset(s.Data)
	u := dataset.NewUniverse(s.Data)
	m, err := model.NewInitial(g, u)
	if err != nil {
		return nil, "", err
	}
	if _, err := m.Refine(s.Data, s.refineCfg(model.RefineConfig{})); err != nil {
		return nil, "", err
	}

	// Busiest observed links between transit ASes.
	crossings := map[topology.Edge]int{}
	prefixesOn := map[topology.Edge]map[string]bool{}
	for _, r := range s.Data.Records {
		for i := 0; i+1 < len(r.Path); i++ {
			e := topology.MakeEdge(r.Path[i], r.Path[i+1])
			crossings[e]++
			set := prefixesOn[e]
			if set == nil {
				set = map[string]bool{}
				prefixesOn[e] = set
			}
			set[r.Prefix] = true
		}
	}
	edges := make([]topology.Edge, 0, len(crossings))
	for e := range crossings {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if crossings[edges[i]] != crossings[edges[j]] {
			return crossings[edges[i]] > crossings[edges[j]]
		}
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	if nLinks > len(edges) {
		nLinks = len(edges)
	}

	res := &WhatIfFidelityResult{Links: nLinks}
	obsASes := s.Data.ObsASes()
	for _, e := range edges[:nLinks] {
		// Affected prefixes, deterministic order, skipping prefixes
		// originated by either endpoint (removing an origin's only link
		// is a reachability question, not a routing one).
		var prefixes []string
		for p := range prefixesOn[e] {
			prefixes = append(prefixes, p)
		}
		sort.Strings(prefixes)
		count := 0
		for _, prefixName := range prefixes {
			if count >= perLink {
				break
			}
			if _, ok := u.ID(prefixName); !ok {
				continue
			}
			gtID, ok := s.Internet.PrefixIDByName(prefixName)
			if !ok {
				continue
			}
			count++

			// Model prediction after removal.
			predicted, err := m.WhatIfDepeer(prefixName, e.A, e.B, obsASes)
			if err != nil {
				return nil, "", err
			}
			predByAS := make(map[bgp.ASN]map[string]bool, len(predicted))
			for _, c := range predicted {
				set := map[string]bool{}
				for _, p := range c.After {
					set[p.String()] = true
				}
				predByAS[c.AS] = set
			}

			// Ground truth after removal.
			s.Internet.DisableASLink(e.A, e.B)
			if err := s.Internet.RunOne(gtID); err != nil {
				s.Internet.EnableASLink(e.A, e.B)
				return nil, "", err
			}
			truthNew := s.Internet.ObservedPathSet()
			s.Internet.EnableASLink(e.A, e.B)
			// Old truth for the unaffected count.
			if err := s.Internet.RunOne(gtID); err != nil {
				return nil, "", err
			}
			truthOld := s.Internet.ObservedPathSet()

			for _, asn := range obsASes {
				truth := truthNew[asn]
				if len(truth) == 0 {
					continue // vantage lost all routes; reachability case
				}
				res.Cases++
				if setsEqual(truthOld[asn], truth) {
					res.Unaffected++
				}
				pred := predByAS[asn]
				if setsEqual(pred, truth) {
					res.ExactSet++
				}
				if subset(truth, pred) {
					res.PrimaryCovered++
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "E13: what-if fidelity — model's de-peering predictions vs re-simulated ground truth\n\n")
	fmt.Fprintf(&b, "links removed: %d (busiest observed), cases (link x prefix x vantage AS): %d\n", res.Links, res.Cases)
	tb := stats.NewTable("metric", "value")
	tb.AddRow("predicted path set exactly right", stats.Pct(res.ExactSet, res.Cases))
	tb.AddRow("true new paths all predicted", stats.Pct(res.PrimaryCovered, res.Cases))
	tb.AddRow("cases where truth was unaffected", stats.Pct(res.Unaffected, res.Cases))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nThe paper motivates the model with exactly this question class (§1) but\n"+
		"could not validate answers against reality; the synthetic ground truth can.\n")
	return res, b.String(), nil
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// subset reports whether every element of a is in b.
func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
