// Package experiments regenerates every table and figure of the paper's
// evaluation on a synthetic ground-truth Internet. Each experiment
// returns both structured results and a formatted text block; cmd/
// experiments prints them and bench_test.go wraps them as benchmarks.
//
// The experiment IDs (E1..E11) and their mapping to the paper's tables
// and figures are indexed in DESIGN.md §4; measured-vs-paper numbers are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/gen"
	"asmodel/internal/metrics"
	"asmodel/internal/model"
	"asmodel/internal/relation"
	"asmodel/internal/stats"
	"asmodel/internal/topology"
)

// Suite holds a generated Internet and its ground-truth dataset, shared
// by all experiments.
type Suite struct {
	Cfg      gen.Config
	Internet *gen.Internet
	Data     *dataset.Dataset
	// Workers sizes the worker pool used for model evaluations and the
	// refinement verify sweep (0 or 1 = sequential; results are identical
	// for any count — see model.EvaluateParallel).
	Workers int
}

// evaluate scores a model against a dataset through the suite's worker
// pool. context.Background is fine here: experiments run to completion.
func (s *Suite) evaluate(m *model.Model, ds *dataset.Dataset) (*model.Evaluation, error) {
	w := s.Workers
	if w <= 0 {
		w = 1
	}
	return m.EvaluateParallel(context.Background(), ds, w)
}

// refineCfg stamps the suite's worker count onto a refinement config.
func (s *Suite) refineCfg(cfg model.RefineConfig) model.RefineConfig {
	if cfg.Workers == 0 {
		cfg.Workers = s.Workers
	}
	return cfg
}

// NewSuite generates the synthetic Internet and collects the ground-truth
// dataset (normalized per §3.1) sequentially. NewSuiteWorkers parallelizes
// the collection.
func NewSuite(cfg gen.Config) (*Suite, error) {
	return NewSuiteWorkers(cfg, 1)
}

// NewSuiteWorkers is NewSuite with the ground-truth simulation fanned out
// over a worker pool (gen.Internet.RunAllParallel): the dominant cost of
// suite setup at -scale > 1. The dataset is identical for any worker
// count; workers also becomes the suite's pool size for model evaluations
// and refinement verify sweeps (workers <= 0 selects one per CPU).
func NewSuiteWorkers(cfg gen.Config, workers int) (*Suite, error) {
	if workers <= 0 {
		workers = gen.DefaultWorkers()
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	ds, err := in.RunAllParallel(context.Background(), workers)
	if err != nil {
		return nil, err
	}
	ds.Normalize()
	return &Suite{Cfg: cfg, Internet: in, Data: ds, Workers: workers}, nil
}

// DefaultConfig is the experiment-harness default: a few hundred ASes
// with every diversity mechanism on.
func DefaultConfig() gen.Config { return gen.DefaultConfig() }

// --- E1: Figure 2 -------------------------------------------------------

// Figure2 builds the histogram of the number of distinct AS-paths per
// (origin AS, observation AS) pair.
func (s *Suite) Figure2() (*stats.Histogram, string) {
	h := stats.NewHistogram()
	for _, n := range s.Data.DistinctPathsPerPair() {
		h.Add(n)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E1 / Figure 2: distinct AS-paths per (origin AS, observation AS) pair\n")
	fmt.Fprintf(&b, "pairs=%d  pairs with >1 path: %s (paper: >30%%)\n\n", h.Total(), stats.Pct(int(float64(h.Total())*h.FracAbove(1)+0.5), h.Total()))
	h.Render(&b, 48, true)
	return h, b.String()
}

// --- E2: Table 1 --------------------------------------------------------

// Table1Quantiles are the percentiles the paper reports.
var Table1Quantiles = []float64{0.50, 0.75, 0.90, 0.95, 0.98, 0.99}

// Table1 computes the quantiles of the per-AS maximum number of distinct
// unique AS-paths received for any prefix.
func (s *Suite) Table1() (map[float64]int, string) {
	div := s.Data.MaxReceivedDiversity()
	samples := make([]int, 0, len(div))
	for _, v := range div {
		samples = append(samples, v)
	}
	out := make(map[float64]int, len(Table1Quantiles))
	tb := stats.NewTable("percentile", "max # unique AS-paths received")
	for _, q := range Table1Quantiles {
		v := stats.Quantile(samples, q)
		out[q] = v
		tb.AddRow(fmt.Sprintf("%.0f%%", q*100), fmt.Sprintf("%d", v))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E2 / Table 1: maximum route diversity received, per AS (n=%d ASes)\n\n%s", len(samples), tb.String())
	return out, b.String()
}

// --- E3/E4: Table 2 -----------------------------------------------------

// Table2Column is one column of Table 2.
type Table2Column struct {
	Summary *metrics.Summary
}

// Table2Result carries both baseline columns.
type Table2Result struct {
	ShortestPath Table2Column
	Policies     Table2Column
}

// Table2 evaluates the two single-router baselines of §3.3: plain
// shortest-AS-path, and inferred customer/peer policies (valley-free
// export + local-pref ranking).
func (s *Suite) Table2() (*Table2Result, string, error) {
	g := topology.FromDataset(s.Data)
	u := dataset.NewUniverse(s.Data)

	// Column 1: shortest path.
	m1, err := model.NewInitial(g, u)
	if err != nil {
		return nil, "", err
	}
	ev1, err := s.evaluate(m1, s.Data)
	if err != nil {
		return nil, "", err
	}

	// Column 2: relationship policies.
	tier1, err := g.Tier1Clique(s.Internet.Tier1[:2])
	if err != nil {
		return nil, "", err
	}
	inf := relation.Infer(s.Data, tier1)
	m2, err := model.NewInitial(g, u)
	if err != nil {
		return nil, "", err
	}
	m2.ApplyRelationshipPolicies(inf)
	ev2, err := s.evaluate(m2, s.Data)
	if err != nil {
		return nil, "", err
	}

	res := &Table2Result{
		ShortestPath: Table2Column{Summary: ev1.Summary},
		Policies:     Table2Column{Summary: ev2.Summary},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E3+E4 / Table 2: agreement between predicted and observed AS-paths (single quasi-router per AS)\n\n")
	tb := stats.NewTable("criteria", "Shortest Path", "Customer/Peering Policies")
	row := func(name string, f func(*metrics.Summary) int) {
		tb.AddRow(name,
			stats.Pct(f(ev1.Summary), ev1.Summary.Total),
			stats.Pct(f(ev2.Summary), ev2.Summary.Total))
	}
	row("AS-paths which agree", func(s *metrics.Summary) int { return s.Agree() })
	row("AS-paths which disagree", func(s *metrics.Summary) int { return s.Disagree() })
	row("  due to AS-path not available", func(s *metrics.Summary) int { return s.NoRIBIn })
	row("  shorter AS-path exists", func(s *metrics.Summary) int { return s.ByStep[bgp.StepASPathLen] })
	row("  lowest neighbor ID (tie-break)", func(s *metrics.Summary) int { return s.ByStep[bgp.StepRouterID] })
	row("  other decision steps", func(s *metrics.Summary) int {
		o := 0
		for st, n := range s.ByStep {
			if st != bgp.StepASPathLen && st != bgp.StepRouterID {
				o += n
			}
		}
		return o
	})
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\npaper: agree 23.5%% / 12.5%%; not available 49.4%% / 54.5%%; shorter 4.7%% / 5.7%%; tie-break 22.2%% / 27.3%%\n")
	return res, b.String(), nil
}

// --- E5/E6: refinement + validation (§5 headline) -----------------------

// RefineOutcome carries the training and validation results of the full
// pipeline.
type RefineOutcome struct {
	Refine        *model.RefineResult
	Train         *model.Evaluation
	Valid         *model.Evaluation
	Model         *model.Model
	TrainPaths    int
	ValidPaths    int
	QRHistogram   *stats.Histogram // quasi-routers per AS after refinement
	TrainFraction float64
}

// RunPipeline executes the §4 pipeline: split by observation point, build
// the initial model from all feeds, refine on the training half, and
// evaluate both halves.
func (s *Suite) RunPipeline(trainFrac float64, seed int64, cfg model.RefineConfig) (*RefineOutcome, error) {
	train, valid := s.Data.SplitByObsPoint(trainFrac, seed)
	g := topology.FromDataset(s.Data)
	u := dataset.NewUniverse(s.Data)
	m, err := model.NewInitial(g, u)
	if err != nil {
		return nil, err
	}
	res, err := m.Refine(train, s.refineCfg(cfg))
	if err != nil {
		return nil, err
	}
	evT, err := s.evaluate(m, train)
	if err != nil {
		return nil, err
	}
	evV, err := s.evaluate(m, valid)
	if err != nil {
		return nil, err
	}
	qh := stats.NewHistogram()
	for _, n := range m.QuasiRouterHistogram() {
		qh.Add(n)
	}
	return &RefineOutcome{
		Refine: res, Train: evT, Valid: evV, Model: m,
		TrainPaths: evT.Summary.Total, ValidPaths: evV.Summary.Total,
		QRHistogram: qh, TrainFraction: trainFrac,
	}, nil
}

// Describe renders the outcome in the §5 style.
func (o *RefineOutcome) Describe(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "refinement: iterations=%d converged=%v quasi-routers-added=%d filters=%d(-%d) med-rules=%d\n",
		o.Refine.Iterations, o.Refine.Converged, o.Refine.QuasiRoutersAdded,
		o.Refine.FiltersAdded, o.Refine.FiltersRemoved, o.Refine.MEDRules)
	st := o.Model.Stats()
	fmt.Fprintf(&b, "model: %d ASes, %d quasi-routers (max %d per AS), %d sessions, %d export denies, %d import actions\n\n",
		st.ASes, st.QuasiRouters, st.MaxQRsPerAS, st.Sessions, st.ExportDenies, st.ImportActions)

	tb := stats.NewTable("metric", "training", "validation")
	add := func(name string, f func(*metrics.Summary) int) {
		tb.AddRow(name,
			stats.Pct(f(o.Train.Summary), o.Train.Summary.Total),
			stats.Pct(f(o.Valid.Summary), o.Valid.Summary.Total))
	}
	add("RIB-Out match", func(s *metrics.Summary) int { return s.RIBOut })
	add("potential RIB-Out match", func(s *metrics.Summary) int { return s.PotentialRIBOut })
	add("matched down to tie-break", func(s *metrics.Summary) int { return s.DownToTieBreak() })
	add("RIB-In match (upper bound)", func(s *metrics.Summary) int { return s.RIBInMatches() })
	add("no RIB-In", func(s *metrics.Summary) int { return s.NoRIBIn })
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paths: training=%d validation=%d\n", o.TrainPaths, o.ValidPaths)
	fmt.Fprintf(&b, "per-prefix RIB-Out coverage (validation): >=50%%: %d/%d  >=90%%: %d/%d  100%%: %d/%d\n",
		o.Valid.Coverage.At50, o.Valid.Coverage.Prefixes,
		o.Valid.Coverage.At90, o.Valid.Coverage.Prefixes,
		o.Valid.Coverage.At100, o.Valid.Coverage.Prefixes)
	fmt.Fprintf(&b, "quasi-routers per AS: p50=%d p90=%d p99=%d max=%d\n",
		o.QRHistogram.Quantile(0.5), o.QRHistogram.Quantile(0.9), o.QRHistogram.Quantile(0.99), o.QRHistogram.Max())
	fmt.Fprintf(&b, "paper headline: training matched exactly; >80%% of test cases matched down to the final tie-break\n")
	return b.String()
}

// EvalHeadline condenses one Evaluation into the match fractions the
// paper quotes, in a JSON-marshalable form.
type EvalHeadline struct {
	Paths              int     `json:"paths"`
	RIBOutFrac         float64 `json:"rib_out_frac"`
	PotentialFrac      float64 `json:"potential_frac"`
	DownToTieBreakFrac float64 `json:"down_to_tie_break_frac"`
	RIBInFrac          float64 `json:"rib_in_frac"`
}

func evalHeadline(ev *model.Evaluation) EvalHeadline {
	s := ev.Summary
	return EvalHeadline{
		Paths:              s.Total,
		RIBOutFrac:         s.Frac(s.RIBOut),
		PotentialFrac:      s.Frac(s.PotentialRIBOut),
		DownToTieBreakFrac: s.Frac(s.DownToTieBreak()),
		RIBInFrac:          s.Frac(s.RIBInMatches()),
	}
}

// RefineHeadline is the machine-readable digest of a RefineOutcome.
// RefineOutcome itself cannot be json.Marshaled (the embedded Model holds
// function-valued simulator state), so reports go through this type.
type RefineHeadline struct {
	Iterations        int          `json:"iterations"`
	Converged         bool         `json:"converged"`
	QuasiRoutersAdded int          `json:"quasi_routers_added"`
	FiltersAdded      int          `json:"filters_added"`
	FiltersRemoved    int          `json:"filters_removed"`
	MEDRules          int          `json:"med_rules"`
	Train             EvalHeadline `json:"train"`
	Valid             EvalHeadline `json:"valid"`
}

// Headline reduces the outcome to its headline numbers.
func (o *RefineOutcome) Headline() *RefineHeadline {
	return &RefineHeadline{
		Iterations:        o.Refine.Iterations,
		Converged:         o.Refine.Converged,
		QuasiRoutersAdded: o.Refine.QuasiRoutersAdded,
		FiltersAdded:      o.Refine.FiltersAdded,
		FiltersRemoved:    o.Refine.FiltersRemoved,
		MEDRules:          o.Refine.MEDRules,
		Train:             evalHeadline(o.Train),
		Valid:             evalHeadline(o.Valid),
	}
}

// --- E7: unseen prefixes (origin split) ---------------------------------

// UnseenPrefixes refines on half the origins' prefixes and evaluates on
// the other half (§4.2 alternative split; §4.7).
func (s *Suite) UnseenPrefixes(trainFrac float64, seed int64) (*RefineOutcome, error) {
	train, valid := s.Data.SplitByOrigin(trainFrac, seed)
	g := topology.FromDataset(s.Data)
	u := dataset.NewUniverse(s.Data)
	m, err := model.NewInitial(g, u)
	if err != nil {
		return nil, err
	}
	res, err := m.Refine(train, s.refineCfg(model.RefineConfig{}))
	if err != nil {
		return nil, err
	}
	evT, err := s.evaluate(m, train)
	if err != nil {
		return nil, err
	}
	evV, err := s.evaluate(m, valid)
	if err != nil {
		return nil, err
	}
	qh := stats.NewHistogram()
	for _, n := range m.QuasiRouterHistogram() {
		qh.Add(n)
	}
	return &RefineOutcome{
		Refine: res, Train: evT, Valid: evV, Model: m,
		TrainPaths: evT.Summary.Total, ValidPaths: evV.Summary.Total,
		QRHistogram: qh, TrainFraction: trainFrac,
	}, nil
}

// --- E8: Figure 3 case study + prefixes-per-path ------------------------

// Figure3Result carries the headline numbers of the diversity case study.
type Figure3Result struct {
	Prefix        string  `json:"prefix"`
	AS            bgp.ASN `json:"as"`
	DistinctPaths int     `json:"distinct_paths"`
}

// Figure3 locates the (prefix, AS) pair with the highest received route
// diversity and renders its distinct paths, paper-Figure-3 style, plus
// the log-binned prefixes-per-path histogram of §3.2.
func (s *Suite) Figure3() (*Figure3Result, string) {
	type key struct {
		as     bgp.ASN
		prefix string
	}
	received := make(map[key]map[bgp.PathKey]bgp.Path)
	for _, r := range s.Data.Records {
		for i := 0; i+1 < len(r.Path); i++ {
			k := key{r.Path[i], r.Prefix}
			m := received[k]
			if m == nil {
				m = make(map[bgp.PathKey]bgp.Path)
				received[k] = m
			}
			suffix := r.Path[i+1:]
			m[suffix.Key()] = suffix
		}
	}
	var best key
	bestN := 0
	keys := make([]key, 0, len(received))
	for k := range received {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].as != keys[j].as {
			return keys[i].as < keys[j].as
		}
		return keys[i].prefix < keys[j].prefix
	})
	for _, k := range keys {
		if len(received[k]) > bestN {
			bestN = len(received[k])
			best = k
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E8 / Figure 3 style case study: prefix %s at AS %d receives %d distinct AS-paths:\n",
		best.prefix, best.as, bestN)
	var paths []string
	for _, p := range received[best] {
		paths = append(paths, p.String())
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(&b, "  %d <- %s\n", best.as, p)
	}
	fmt.Fprintf(&b, "\nprefixes per AS-path (log-binned; §3.2 reports a straight line on log-log):\n")
	counts := make(map[int]int)
	for _, n := range s.Data.PrefixesPerPath() {
		counts[n]++
	}
	for _, bin := range stats.LogBins(counts, 2) {
		fmt.Fprintf(&b, "  %5d..%-5d paths: %d\n", bin.Lo, bin.Hi, bin.Count)
	}
	return &Figure3Result{Prefix: best.prefix, AS: best.as, DistinctPaths: bestN}, b.String()
}

// --- E10: ablations -----------------------------------------------------

// AblationRow is one ablation outcome.
type AblationRow struct {
	Name      string
	Converged bool
	TrainPct  float64 // training RIB-Out fraction
	ValidPct  float64 // validation down-to-tie-break fraction
	QRsAdded  int
	Diverged  int
}

// Ablations re-runs the pipeline with individual refinement mechanisms
// disabled (DESIGN.md E10).
func (s *Suite) Ablations(seed int64) ([]AblationRow, string, error) {
	cases := []struct {
		name string
		cfg  model.RefineConfig
	}{
		{"full (paper)", model.RefineConfig{}},
		{"no duplication", model.RefineConfig{DisableDuplication: true}},
		{"no MED ranking", model.RefineConfig{DisableMED: true}},
		{"local-pref instead", model.RefineConfig{UseLocalPref: true}},
	}
	var rows []AblationRow
	tb := stats.NewTable("ablation", "converged", "train RIB-Out", "valid down-to-tie-break", "QRs added", "diverged")
	for _, c := range cases {
		o, err := s.RunPipeline(0.5, seed, c.cfg)
		if err != nil {
			return nil, "", err
		}
		row := AblationRow{
			Name:      c.name,
			Converged: o.Refine.Converged,
			TrainPct:  o.Train.Summary.Frac(o.Train.Summary.RIBOut),
			ValidPct:  o.Valid.Summary.Frac(o.Valid.Summary.DownToTieBreak()),
			QRsAdded:  o.Refine.QuasiRoutersAdded,
			Diverged:  o.Refine.DivergedPrefixes + o.Train.Diverged,
		}
		rows = append(rows, row)
		tb.AddRow(c.name, fmt.Sprintf("%v", row.Converged),
			fmt.Sprintf("%.1f%%", 100*row.TrainPct),
			fmt.Sprintf("%.1f%%", 100*row.ValidPct),
			fmt.Sprintf("%d", row.QRsAdded), fmt.Sprintf("%d", row.Diverged))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E10: refinement ablations (observation-point split)\n\n%s", tb.String())
	return rows, b.String(), nil
}

// --- E11: topology statistics -------------------------------------------

// TopologyStats renders the §3.1 dataset statistics.
func (s *Suite) TopologyStats() (topology.Stats, string, error) {
	st, err := topology.ComputeStats(s.Data, s.Internet.Tier1[:2])
	if err != nil {
		return st, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E11 / §3.1 dataset statistics\n\n")
	tb := stats.NewTable("quantity", "value", "paper (Nov 2005)")
	tb.AddRow("records", fmt.Sprintf("%d", s.Data.Len()), "4,730,222 paths")
	tb.AddRow("ASes", fmt.Sprintf("%d", st.ASes), "21,178")
	tb.AddRow("AS edges", fmt.Sprintf("%d", st.Edges), "58,903")
	tb.AddRow("tier-1 clique", fmt.Sprintf("%v", st.Tier1), "10 ASes")
	tb.AddRow("level-2 ASes", fmt.Sprintf("%d", st.Level2), "7,994")
	tb.AddRow("other ASes", fmt.Sprintf("%d", st.Other), "13,174")
	tb.AddRow("transit ASes", fmt.Sprintf("%d", st.Transit), "3,486")
	tb.AddRow("single-homed stubs", fmt.Sprintf("%d", st.SingleHomedStub), "6,611")
	tb.AddRow("multi-homed stubs", fmt.Sprintf("%d", st.MultiHomedStub), "11,077")
	tb.AddRow("ASes after pruning", fmt.Sprintf("%d", st.PrunedASes), "14,563")
	tb.AddRow("edges after pruning", fmt.Sprintf("%d", st.PrunedEdges), "52,288")
	b.WriteString(tb.String())
	return st, b.String(), nil
}

// RefineConfigDefault returns the paper's refinement configuration
// (duplication + filters + MED).
func RefineConfigDefault() model.RefineConfig { return model.RefineConfig{} }

// MultiPrefixResult carries the headline numbers of the multi-prefix
// study.
type MultiPrefixResult struct {
	PrefixesPerOrigin int     `json:"prefixes_per_origin"`
	Prefixes          int     `json:"prefixes"`
	MultiPrefixPaths  int     `json:"multi_prefix_paths"`
	DiversePairsFrac  float64 `json:"diverse_pairs_frac"`
}

// MultiPrefixStudy (E8b) re-runs the §3.2 data analysis with origins
// announcing several prefixes (gen.Config.PrefixesPerOrigin), which is
// what gives the paper's prefixes-per-path histogram its heavy tail:
// popular AS-paths carry many prefixes while per-prefix weird policies
// make some prefixes of the same origin take different routes.
func MultiPrefixStudy(cfg gen.Config, prefixesPerOrigin int) (*MultiPrefixResult, string, error) {
	cfg.PrefixesPerOrigin = prefixesPerOrigin
	s, err := NewSuite(cfg)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E8b / §3.2 multi-prefix study (up to %d prefixes per origin; %d prefixes total)\n\n",
		prefixesPerOrigin, len(s.Data.Prefixes()))

	counts := make(map[int]int)
	multi := 0
	for _, n := range s.Data.PrefixesPerPath() {
		counts[n]++
		if n > 1 {
			multi++
		}
	}
	fmt.Fprintf(&b, "prefixes per AS-path (log-binned; %d paths carry more than one prefix):\n", multi)
	for _, bin := range stats.LogBins(counts, 2) {
		fmt.Fprintf(&b, "  %5d..%-5d paths: %d\n", bin.Lo, bin.Hi, bin.Count)
	}

	h := stats.NewHistogram()
	for _, n := range s.Data.DistinctPathsPerPair() {
		h.Add(n)
	}
	fmt.Fprintf(&b, "\nAS pairs with more than one distinct path: %s (cf. E1)\n",
		stats.Pct(int(float64(h.Total())*h.FracAbove(1)+0.5), h.Total()))
	res := &MultiPrefixResult{
		PrefixesPerOrigin: prefixesPerOrigin,
		Prefixes:          len(s.Data.Prefixes()),
		MultiPrefixPaths:  multi,
		DiversePairsFrac:  h.FracAbove(1),
	}
	return res, b.String(), nil
}

// CombinedSplit (§4.2: "one can combine both approaches") partitions both
// observation points and originating ASes. The model trains on training
// feeds' records for training origins only, and is evaluated on the fully
// unseen quadrant: held-out feeds observing held-out origins' prefixes —
// the hardest prediction task the paper defines.
func (s *Suite) CombinedSplit(trainFrac float64, seed int64) (*RefineOutcome, error) {
	obsTrain := s.Data.AssignObsPoints(trainFrac, seed)
	orgTrain := s.Data.AssignOrigins(trainFrac, seed+1)
	train, _ := s.Data.Partition(func(r *dataset.Record) bool {
		o, _ := r.Path.Origin()
		return obsTrain[r.Obs] && orgTrain[o]
	})
	valid, _ := s.Data.Partition(func(r *dataset.Record) bool {
		o, _ := r.Path.Origin()
		return !obsTrain[r.Obs] && !orgTrain[o]
	})
	g := topology.FromDataset(s.Data)
	u := dataset.NewUniverse(s.Data)
	m, err := model.NewInitial(g, u)
	if err != nil {
		return nil, err
	}
	res, err := m.Refine(train, s.refineCfg(model.RefineConfig{}))
	if err != nil {
		return nil, err
	}
	evT, err := s.evaluate(m, train)
	if err != nil {
		return nil, err
	}
	evV, err := s.evaluate(m, valid)
	if err != nil {
		return nil, err
	}
	qh := stats.NewHistogram()
	for _, n := range m.QuasiRouterHistogram() {
		qh.Add(n)
	}
	return &RefineOutcome{
		Refine: res, Train: evT, Valid: evV, Model: m,
		TrainPaths: evT.Summary.Total, ValidPaths: evV.Summary.Total,
		QRHistogram: qh, TrainFraction: trainFrac,
	}, nil
}

// ComplexityByLevel (E12) answers the paper's §1 promise — "determine
// precisely where internal details matter, and how much" — by breaking
// the refined model's complexity (quasi-routers beyond the first, export
// filters, MED rules) down by hierarchy level.
func (s *Suite) ComplexityByLevel(o *RefineOutcome) (string, error) {
	g := topology.FromDataset(s.Data)
	tier1, err := g.Tier1Clique(s.Internet.Tier1[:2])
	if err != nil {
		return "", err
	}
	levels := g.Levels(tier1)

	type row struct {
		ases, extraQRs, filters, medRules int
	}
	byLevel := map[topology.Level]*row{
		topology.Level1:     {},
		topology.Level2:     {},
		topology.LevelOther: {},
	}
	m := o.Model
	for asn, n := range m.QuasiRouterHistogram() {
		r := byLevel[levels[asn]]
		if r == nil {
			continue
		}
		r.ases++
		r.extraQRs += n - 1
	}
	for _, qr := range m.Net.Routers() {
		r := byLevel[levels[qr.AS]]
		if r == nil {
			continue
		}
		for _, p := range qr.Peers() {
			r.filters += p.ExportDenyCount() // filters installed at this AS's egress
			r.medRules += p.ImportActionCount()
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E12 / §1: where internal details matter — model complexity by hierarchy level\n\n")
	tb := stats.NewTable("level", "ASes", "extra quasi-routers", "egress filters", "import rules")
	for _, l := range []topology.Level{topology.Level1, topology.Level2, topology.LevelOther} {
		r := byLevel[l]
		tb.AddRow(l.String(),
			fmt.Sprintf("%d", r.ases),
			fmt.Sprintf("%d (%.2f/AS)", r.extraQRs, safeDiv(r.extraQRs, r.ases)),
			fmt.Sprintf("%d (%.1f/AS)", r.filters, safeDiv(r.filters, r.ases)),
			fmt.Sprintf("%d (%.1f/AS)", r.medRules, safeDiv(r.medRules, r.ases)))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nreading: extra quasi-routers mark ASes whose internal structure is\n"+
		"observable in routing; the paper's expectation is that the well-connected\n"+
		"core needs them most.\n")
	return b.String(), nil
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// IterationsRow is one seed's outcome of the E14 convergence study.
type IterationsRow struct {
	Seed       int64   `json:"seed"`
	MaxPathLen int     `json:"max_path_len"`
	Iterations int     `json:"iterations"`
	Ratio      float64 `json:"ratio"`
	Converged  bool    `json:"converged"`
}

// IterationsVsPathLength (E14) quantifies the §4.6 convergence claim:
// "Perfect RIB-Out matches are achieved after a total number of
// iterations that is a multiple of the maximum AS-path length." It runs
// the training pipeline across several split seeds and reports the
// iterations-to-convergence against the longest observed path.
func (s *Suite) IterationsVsPathLength(seeds []int64) ([]IterationsRow, string, error) {
	var rows []IterationsRow
	tb := stats.NewTable("split seed", "max path length", "iterations", "ratio", "converged")
	for _, seed := range seeds {
		o, err := s.RunPipeline(0.5, seed, model.RefineConfig{})
		if err != nil {
			return nil, "", err
		}
		ratio := float64(o.Refine.Iterations) / float64(o.Refine.MaxPathLen)
		rows = append(rows, IterationsRow{
			Seed: seed, MaxPathLen: o.Refine.MaxPathLen,
			Iterations: o.Refine.Iterations, Ratio: ratio,
			Converged: o.Refine.Converged,
		})
		tb.AddRow(fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d", o.Refine.MaxPathLen),
			fmt.Sprintf("%d", o.Refine.Iterations),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%v", o.Refine.Converged))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E14 / §4.6: iterations to convergence vs maximum AS-path length\n\n%s", tb.String())
	fmt.Fprintf(&b, "\npaper: \"a total number of iterations that is a multiple of the maximum\n"+
		"AS-path length\" — the ratio column stays below ~1-2 in practice.\n")
	return rows, b.String(), nil
}
