package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReaderClean(t *testing.T) {
	src := []byte("the quick brown fox jumps over the lazy dog")
	rd := NewReader(bytes.NewReader(src), ReaderConfig{})
	got, err := io.ReadAll(rd)
	if err != nil {
		t.Fatalf("clean read: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("clean read mutated data: %q", got)
	}
}

func TestReaderTruncate(t *testing.T) {
	src := bytes.Repeat([]byte{0xAB}, 100)
	rd := NewReader(bytes.NewReader(src), ReaderConfig{TruncateAt: 37})
	got, err := io.ReadAll(rd)
	if err != nil {
		t.Fatalf("truncated read should end with clean EOF, got %v", err)
	}
	if len(got) != 37 {
		t.Fatalf("got %d bytes, want 37", len(got))
	}
}

func TestReaderFailAt(t *testing.T) {
	src := bytes.Repeat([]byte{1}, 50)
	rd := NewReader(bytes.NewReader(src), ReaderConfig{FailAt: 20})
	got, err := io.ReadAll(rd)
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want *InjectedError, got %v", err)
	}
	if inj.Op != "read" || inj.Off != 20 {
		t.Fatalf("unexpected fault coords: %+v", inj)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d bytes before failure, want 20", len(got))
	}
}

func TestReaderBitFlip(t *testing.T) {
	src := make([]byte, 64)
	rd := NewReader(bytes.NewReader(src), ReaderConfig{FlipBytes: []int64{5, 63}, FlipMask: 0x01})
	got, err := io.ReadAll(rd)
	if err != nil || len(got) != 64 {
		t.Fatalf("read: %d bytes, err=%v", len(got), err)
	}
	for i, b := range got {
		want := byte(0)
		if i == 5 || i == 63 {
			want = 0x01
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestReaderBitFlipShortReads(t *testing.T) {
	src := make([]byte, 16)
	rd := NewReader(bytes.NewReader(src), ReaderConfig{FlipBytes: []int64{7}, ShortReads: true})
	got, err := io.ReadAll(rd)
	if err != nil || len(got) != 16 {
		t.Fatalf("read: %d bytes, err=%v", len(got), err)
	}
	if got[7] != 0xFF {
		t.Fatalf("byte 7 = %#x, want 0xFF (default mask)", got[7])
	}
}

func TestReaderTransientThenRecover(t *testing.T) {
	src := []byte("0123456789")
	rd := NewReader(bytes.NewReader(src), ReaderConfig{TransientEvery: 2, MaxTransient: 3, ShortReads: true})
	var out []byte
	buf := make([]byte, 4)
	transients := 0
	for {
		n, err := rd.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			var te *TransientError
			if !errors.As(err, &te) {
				t.Fatalf("unexpected error: %v", err)
			}
			if n != 0 {
				t.Fatalf("transient error consumed %d bytes", n)
			}
			transients++
			continue // retry
		}
	}
	if transients != 3 {
		t.Fatalf("saw %d transients, want 3 (MaxTransient)", transients)
	}
	if string(out) != "0123456789" {
		t.Fatalf("retried stream = %q, want full data", out)
	}
}

func TestWriterShortWritesAndTransients(t *testing.T) {
	var sink bytes.Buffer
	wr := NewWriter(&sink, WriterConfig{ShortWrites: true, TransientEvery: 3, MaxTransient: 2})
	payload := []byte(strings.Repeat("abcdefgh", 8))
	// Resume loop: the caller's retry logic under test elsewhere, done by hand here.
	off := 0
	for off < len(payload) {
		n, err := wr.Write(payload[off:])
		off += n
		if err != nil {
			var te *TransientError
			if !errors.As(err, &te) {
				t.Fatalf("unexpected error: %v", err)
			}
		}
	}
	if !bytes.Equal(sink.Bytes(), payload) {
		t.Fatalf("resumed stream mismatch: got %d bytes", sink.Len())
	}
}

func TestWriterFailAt(t *testing.T) {
	var sink bytes.Buffer
	wr := NewWriter(&sink, WriterConfig{FailAt: 10})
	n, err := wr.Write(bytes.Repeat([]byte{9}, 25))
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want *InjectedError, got %v", err)
	}
	if n != 10 || sink.Len() != 10 {
		t.Fatalf("torn write accepted %d bytes (sink %d), want 10", n, sink.Len())
	}
	// Subsequent writes keep failing permanently.
	if _, err := wr.Write([]byte{1}); !errors.As(err, &inj) {
		t.Fatalf("post-failure write: want *InjectedError, got %v", err)
	}
}

func TestPanicInjector(t *testing.T) {
	pi := NewPanicInjector(2)
	pi.Fire("a") // 1: no panic
	fired := func() (p any) {
		defer func() { p = recover() }()
		pi.Fire("b")
		return nil
	}()
	ip, ok := fired.(InjectedPanic)
	if !ok {
		t.Fatalf("want InjectedPanic, got %#v", fired)
	}
	if ip.Key != "b" || ip.N != 2 {
		t.Fatalf("unexpected panic payload: %+v", ip)
	}
	pi.Fire("c") // 3: no panic
	if pi.Calls() != 3 {
		t.Fatalf("calls = %d, want 3", pi.Calls())
	}
}

func TestRandomConfigsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := RandomReaderConfig(seed, 1000)
		b := RandomReaderConfig(seed, 1000)
		if a.TruncateAt != b.TruncateAt || a.FailAt != b.FailAt ||
			a.TransientEvery != b.TransientEvery || len(a.FlipBytes) != len(b.FlipBytes) {
			t.Fatalf("seed %d: reader schedule not deterministic: %+v vs %+v", seed, a, b)
		}
		wa := RandomWriterConfig(seed, 1000)
		wb := RandomWriterConfig(seed, 1000)
		if wa != wb {
			t.Fatalf("seed %d: writer schedule not deterministic: %+v vs %+v", seed, wa, wb)
		}
	}
}
