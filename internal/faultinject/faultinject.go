// Package faultinject is a deterministic, seedable fault-injection layer
// for hardening the ingestion and durability paths: io.Reader/io.Writer
// wrappers that truncate the stream, flip bytes, deliver short
// reads/writes, or fail with transient errors on a fixed schedule, plus
// a panic injector for worker goroutines.
//
// Every fault fires from an explicit schedule (offsets and call counts)
// or from a schedule derived deterministically from a seed, so a failing
// fault-matrix run is always reproducible. The package is stdlib-only
// and is imported by tests only — production code never depends on it.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// InjectedError is a permanent injected failure: the wrapped stream is
// considered damaged from the fault offset on, and retries must give up.
type InjectedError struct {
	Op  string // "read" or "write"
	Off int64  // stream offset at which the fault fired
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected permanent %s failure at offset %d", e.Op, e.Off)
}

// TransientError is a retryable injected failure: no data was consumed
// or accepted beyond the returned count, and the same call succeeds when
// retried. It implements the Transient() bool contract that the retry
// layer (internal/durable) checks.
type TransientError struct {
	Op  string
	Off int64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: injected transient %s error at offset %d", e.Op, e.Off)
}

// Transient marks the error as retryable for durable.IsTransient.
func (e *TransientError) Transient() bool { return true }

// --- Reader -------------------------------------------------------------

// ReaderConfig schedules faults on a wrapped reader. The zero value
// injects nothing.
type ReaderConfig struct {
	// TruncateAt > 0 ends the stream (clean io.EOF) after this many bytes,
	// simulating a short upload or a partially written file.
	TruncateAt int64
	// FailAt > 0 makes reads fail permanently with *InjectedError once
	// this many bytes have been delivered.
	FailAt int64
	// FlipBytes lists stream offsets whose byte is XOR-ed with FlipMask as
	// it passes through (bit-flip corruption).
	FlipBytes []int64
	// FlipMask is the corruption mask; 0 selects 0xFF (invert the byte).
	FlipMask byte
	// TransientEvery > 0 makes every Nth Read call fail once with a
	// *TransientError before consuming any input; the retried call
	// proceeds normally.
	TransientEvery int
	// MaxTransient caps the number of injected transient errors
	// (0 = unlimited).
	MaxTransient int
	// ShortReads delivers at most one byte per Read call, exercising
	// io.ReadFull/bufio resilience to fragmented input.
	ShortReads bool
}

// Reader applies a ReaderConfig to an underlying reader.
type Reader struct {
	r          io.Reader
	cfg        ReaderConfig
	off        int64
	calls      int
	transients int
}

// NewReader wraps r with the scheduled faults.
func NewReader(r io.Reader, cfg ReaderConfig) *Reader {
	return &Reader{r: r, cfg: cfg}
}

// Offset returns how many bytes have been delivered so far.
func (rd *Reader) Offset() int64 { return rd.off }

func (rd *Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return rd.r.Read(p)
	}
	rd.calls++
	cfg := &rd.cfg
	if cfg.TransientEvery > 0 &&
		(cfg.MaxTransient == 0 || rd.transients < cfg.MaxTransient) &&
		rd.calls%cfg.TransientEvery == 0 {
		rd.transients++
		return 0, &TransientError{Op: "read", Off: rd.off}
	}
	if cfg.FailAt > 0 && rd.off >= cfg.FailAt {
		return 0, &InjectedError{Op: "read", Off: rd.off}
	}
	if cfg.TruncateAt > 0 {
		if rd.off >= cfg.TruncateAt {
			return 0, io.EOF
		}
		if rest := cfg.TruncateAt - rd.off; int64(len(p)) > rest {
			p = p[:rest]
		}
	}
	if cfg.FailAt > 0 {
		if rest := cfg.FailAt - rd.off; int64(len(p)) > rest {
			p = p[:rest]
		}
	}
	if cfg.ShortReads && len(p) > 1 {
		p = p[:1]
	}
	n, err := rd.r.Read(p)
	for _, fo := range cfg.FlipBytes {
		if fo >= rd.off && fo < rd.off+int64(n) {
			mask := cfg.FlipMask
			if mask == 0 {
				mask = 0xFF
			}
			p[fo-rd.off] ^= mask
		}
	}
	rd.off += int64(n)
	return n, err
}

// --- Writer -------------------------------------------------------------

// WriterConfig schedules faults on a wrapped writer. The zero value
// injects nothing.
type WriterConfig struct {
	// FailAt > 0 makes writes fail permanently with *InjectedError once
	// this many bytes have been accepted (bytes before the offset are
	// still written — a torn write).
	FailAt int64
	// TransientEvery > 0 makes every Nth Write call fail once with a
	// *TransientError before accepting any bytes.
	TransientEvery int
	// MaxTransient caps injected transient errors (0 = unlimited).
	MaxTransient int
	// ShortWrites accepts at most half of every multi-byte write and
	// reports the remainder with a *TransientError, exercising
	// resume-from-short-write logic.
	ShortWrites bool
}

// Writer applies a WriterConfig to an underlying writer.
type Writer struct {
	w          io.Writer
	cfg        WriterConfig
	off        int64
	calls      int
	transients int
}

// NewWriter wraps w with the scheduled faults.
func NewWriter(w io.Writer, cfg WriterConfig) *Writer {
	return &Writer{w: w, cfg: cfg}
}

// Offset returns how many bytes have been accepted so far.
func (wr *Writer) Offset() int64 { return wr.off }

func (wr *Writer) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return wr.w.Write(p)
	}
	wr.calls++
	cfg := &wr.cfg
	if cfg.TransientEvery > 0 &&
		(cfg.MaxTransient == 0 || wr.transients < cfg.MaxTransient) &&
		wr.calls%cfg.TransientEvery == 0 {
		wr.transients++
		return 0, &TransientError{Op: "write", Off: wr.off}
	}
	if cfg.FailAt > 0 && wr.off >= cfg.FailAt {
		return 0, &InjectedError{Op: "write", Off: wr.off}
	}
	q := p
	torn := false
	if cfg.FailAt > 0 {
		if rest := cfg.FailAt - wr.off; int64(len(q)) > rest {
			q = q[:rest]
			torn = true
		}
	}
	short := false
	if cfg.ShortWrites && len(q) > 1 {
		q = q[:(len(q)+1)/2]
		short = true
	}
	n, err := wr.w.Write(q)
	wr.off += int64(n)
	if err != nil {
		return n, err
	}
	switch {
	case torn && n == len(q):
		return n, &InjectedError{Op: "write", Off: wr.off}
	case short || n < len(p):
		return n, &TransientError{Op: "write", Off: wr.off}
	}
	return n, nil
}

// Sync forwards to the underlying writer when it supports it, so the
// wrapper can stand in for an *os.File in durability paths.
func (wr *Writer) Sync() error {
	if s, ok := wr.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// --- Panic injector -----------------------------------------------------

// InjectedPanic is the value a PanicInjector panics with, so recovery
// layers can assert the panic came from the injector.
type InjectedPanic struct {
	Key string // caller-supplied context (e.g. the prefix being processed)
	N   int64  // 1-based invocation count that fired
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic #%d (%s)", p.N, p.Key)
}

// PanicInjector panics on scheduled invocation counts of Fire. It is
// safe for concurrent use, so it can be shared across a worker pool:
// the Nth call that any worker makes fires the Nth schedule slot.
type PanicInjector struct {
	mu     sync.Mutex
	fireAt map[int64]bool
	n      int64
}

// NewPanicInjector schedules panics on the given 1-based invocation
// counts of Fire.
func NewPanicInjector(at ...int64) *PanicInjector {
	fireAt := make(map[int64]bool, len(at))
	for _, n := range at {
		fireAt[n] = true
	}
	return &PanicInjector{fireAt: fireAt}
}

// Fire increments the invocation counter and panics with an
// InjectedPanic when the counter is scheduled.
func (pi *PanicInjector) Fire(key string) {
	pi.mu.Lock()
	pi.n++
	n := pi.n
	fire := pi.fireAt[n]
	pi.mu.Unlock()
	if fire {
		panic(InjectedPanic{Key: key, N: n})
	}
}

// Calls returns how many times Fire has been invoked.
func (pi *PanicInjector) Calls() int64 {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.n
}

// --- Seeded schedules ---------------------------------------------------

// RandomReaderConfig derives a deterministic pseudo-random read-fault
// schedule for a stream of roughly size bytes: truncation, a byte flip,
// a transient-error schedule, or a permanent failure, chosen and placed
// by the seed. Used by fault-matrix tests to sweep many fault positions
// without hand-writing each case.
func RandomReaderConfig(seed, size int64) ReaderConfig {
	if size < 2 {
		size = 2
	}
	rng := rand.New(rand.NewSource(seed))
	switch rng.Intn(4) {
	case 0:
		return ReaderConfig{TruncateAt: 1 + rng.Int63n(size-1)}
	case 1:
		return ReaderConfig{FlipBytes: []int64{rng.Int63n(size)}, FlipMask: 1 << uint(rng.Intn(8))}
	case 2:
		return ReaderConfig{TransientEvery: 1 + rng.Intn(4), MaxTransient: 1 + rng.Intn(3), ShortReads: rng.Intn(2) == 0}
	default:
		return ReaderConfig{FailAt: 1 + rng.Int63n(size-1)}
	}
}

// RandomWriterConfig is RandomReaderConfig's write-side counterpart:
// short writes, transient errors, or a permanent mid-stream failure.
func RandomWriterConfig(seed, size int64) WriterConfig {
	if size < 2 {
		size = 2
	}
	rng := rand.New(rand.NewSource(seed))
	switch rng.Intn(3) {
	case 0:
		return WriterConfig{ShortWrites: true, TransientEvery: 2 + rng.Intn(3), MaxTransient: 1 + rng.Intn(3)}
	case 1:
		return WriterConfig{TransientEvery: 1 + rng.Intn(4), MaxTransient: 1 + rng.Intn(3)}
	default:
		return WriterConfig{FailAt: 1 + rng.Int63n(size-1)}
	}
}
