package model

import (
	"testing"

	"asmodel/internal/dataset"
	"asmodel/internal/gen"
	"asmodel/internal/topology"
)

// genDataset produces a synthetic-Internet dataset for integration tests.
func genDataset(t testing.TB, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := gen.Config{
		Seed:             seed,
		NumTier1:         4,
		NumTier2:         12,
		NumTier3:         25,
		NumStub:          40,
		RoutersTier1:     3,
		RoutersTier2:     2,
		RoutersTier3:     2,
		MultiHomeProb:    0.6,
		Tier2PeerProb:    0.2,
		Tier3PeerProb:    0.05,
		ParallelLinkProb: 0.4,
		WeirdPolicyFrac:  0.08,
		NumVantageASes:   16,
		MaxVantagePerAS:  2,
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := in.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return ds.Normalize()
}

// TestEndToEndTrainingExact verifies the paper's central claim: "we can
// build an AS-routing model that matches the training set exactly".
func TestEndToEndTrainingExact(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds := genDataset(t, 11)
	g := topology.FromDataset(ds)
	u := dataset.NewUniverse(ds)
	m, err := NewInitial(g, u)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("refinement did not converge: %+v", res)
	}
	ev, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("training set not exactly matched: %v", ev.Summary)
	}
	if ev.Coverage.At100 != ev.Coverage.Prefixes {
		t.Fatalf("coverage: %+v", ev.Coverage)
	}
	t.Logf("training: %d paths exactly matched; %d quasi-routers (+%d), %d filters, %d MED rules, %d iterations",
		ev.Summary.Total, m.NumQuasiRouters(), res.QuasiRoutersAdded, res.FiltersAdded-res.FiltersRemoved, res.MEDRules, res.Iterations)
}

// TestEndToEndValidation reproduces the paper's §5 headline: on a held-out
// observation-point split, a large majority of paths should be matched at
// least down to the final tie-break (paper: >80%).
func TestEndToEndValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	full := genDataset(t, 12)
	train, valid := full.SplitByObsPoint(0.5, 99)
	if train.Len() == 0 || valid.Len() == 0 {
		t.Fatal("degenerate split")
	}
	// The paper derives the AS graph from ALL feeds (§4.5) but trains
	// policies only on the training half.
	g := topology.FromDataset(full)
	u := dataset.NewUniverse(full)
	m, err := NewInitial(g, u)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Refine(train, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("training refinement did not converge: %+v", res)
	}
	ev, err := m.Evaluate(valid)
	if err != nil {
		t.Fatal(err)
	}
	down := ev.Summary.Frac(ev.Summary.DownToTieBreak())
	ribIn := ev.Summary.Frac(ev.Summary.RIBInMatches())
	t.Logf("validation: %v; down-to-tie-break=%.1f%% rib-in=%.1f%%", ev.Summary, 100*down, 100*ribIn)
	if down < 0.60 {
		t.Errorf("down-to-tie-break fraction %.2f below sanity floor 0.60", down)
	}
	if ribIn < down {
		t.Error("metric ordering violated: RIB-In must bound down-to-tie-break")
	}
}

// TestEndToEndUnseenPrefixes evaluates the origin split (§4.2/§4.7): the
// model refined on half the origins predicts paths for the other half's
// prefixes purely from the diversified topology.
func TestEndToEndUnseenPrefixes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	full := genDataset(t, 13)
	train, valid := full.SplitByOrigin(0.5, 7)
	g := topology.FromDataset(full)
	u := dataset.NewUniverse(full)
	m, err := NewInitial(g, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refine(train, RefineConfig{}); err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(valid)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unseen prefixes: %v", ev.Summary)
	// Without per-prefix policies the match rate is necessarily lower,
	// but the topology alone must still beat total failure.
	if frac := ev.Summary.Frac(ev.Summary.RIBInMatches()); frac < 0.3 {
		t.Errorf("RIB-In fraction %.2f suspiciously low for unseen prefixes", frac)
	}
}
