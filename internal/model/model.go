// Package model implements the paper's primary contribution: the
// AS-routing model built from observed BGP paths. An AS is represented by
// one or more quasi-routers — logical partitions of its route-selection
// behaviour, not physical routers (§4.1) — connected by BGP sessions along
// the edges of the AS-level graph, with per-prefix policies (export
// filters and MED ranking) synthesised by an iterative refinement
// heuristic (§4.6) until the simulated route propagation reproduces every
// observed AS-path of a training set.
//
// The refined model predicts routes for held-out observation points and
// unseen prefixes (§4.7) and supports what-if edits such as de-peering a
// link.
package model

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/metrics"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
	"asmodel/internal/topology"
)

// Model is an AS-routing model: a quasi-router topology plus per-prefix
// policies, executable by the sim engine one prefix at a time.
type Model struct {
	// Net is the underlying propagation network. Callers may inspect it
	// but should mutate topology and policies only through Model methods.
	Net *sim.Network
	// Universe maps prefix names to dense IDs and records origins.
	Universe *dataset.Universe
	// Graph is the AS-level topology the model was built from.
	Graph *topology.Graph

	qrs     map[bgp.ASN][]*sim.Router
	nextIdx map[bgp.ASN]uint16
}

// NewInitial builds the paper's initial model (§4.5): one quasi-router per
// AS of the graph and one BGP session per AS-level edge. Quasi-router IDs
// follow the ASN<<16|index convention so the final tie-break behaves like
// the paper's IP-address assignment.
func NewInitial(g *topology.Graph, u *dataset.Universe) (*Model, error) {
	m := &Model{
		Net:      sim.NewNetwork(bgp.QuasiRouterConfig),
		Universe: u,
		Graph:    g,
		qrs:      make(map[bgp.ASN][]*sim.Router),
		nextIdx:  make(map[bgp.ASN]uint16),
	}
	for _, asn := range g.Nodes() {
		if _, err := m.addQR(asn); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		if _, _, err := m.Net.Connect(m.qrs[e.A][0], m.qrs[e.B][0]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Model) addQR(asn bgp.ASN) (*sim.Router, error) {
	idx := m.nextIdx[asn]
	r, err := m.Net.AddRouter(asn, idx)
	if err != nil {
		return nil, err
	}
	m.nextIdx[asn] = idx + 1
	m.qrs[asn] = append(m.qrs[asn], r)
	return r, nil
}

// QuasiRouters returns the quasi-routers of an AS in creation order.
func (m *Model) QuasiRouters(asn bgp.ASN) []*sim.Router { return m.qrs[asn] }

// NumQuasiRouters returns the total quasi-router count.
func (m *Model) NumQuasiRouters() int { return m.Net.NumRouters() }

// QuasiRouterHistogram returns, for every AS, its quasi-router count —
// the paper's measure of how much internal structure was needed.
func (m *Model) QuasiRouterHistogram() map[bgp.ASN]int {
	out := make(map[bgp.ASN]int, len(m.qrs))
	for asn, rs := range m.qrs {
		out[asn] = len(rs)
	}
	return out
}

// DuplicateQR clones a quasi-router (§4.6): the new quasi-router gets a
// session to every remote the source has, with the source's own per-prefix
// policies copied, while export filters installed on remote sessions
// toward the source are not copied (they are keyed by receiving router).
func (m *Model) DuplicateQR(src *sim.Router) (*sim.Router, error) {
	q, err := m.addQR(src.AS)
	if err != nil {
		return nil, err
	}
	for _, p := range src.Peers() {
		np, _, err := m.Net.Connect(q, p.Remote)
		if err != nil {
			return nil, err
		}
		np.CopyPoliciesFrom(p)
	}
	return q, nil
}

// origins returns the quasi-routers that originate the prefix: every
// quasi-router of every origin AS (§4.1: one prefix per AS; all of an
// AS's quasi-routers announce it).
func (m *Model) origins(prefix bgp.PrefixID) []bgp.RouterID {
	if int(prefix) < 0 || int(prefix) >= m.Universe.Len() {
		return nil
	}
	var ids []bgp.RouterID
	for _, asn := range m.Universe.Origins(prefix) {
		for _, r := range m.qrs[asn] {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// RunPrefix propagates the prefix through the model until convergence.
// It returns an error if the prefix has no origin present in the model.
func (m *Model) RunPrefix(prefix bgp.PrefixID) error {
	return m.runPrefixBudget(context.Background(), prefix, 0)
}

// RunPrefixContext is RunPrefix with cancellation: a canceled context
// stops the propagation mid-delivery with an error wrapping ctx.Err().
func (m *Model) RunPrefixContext(ctx context.Context, prefix bgp.PrefixID) error {
	return m.runPrefixBudget(ctx, prefix, 0)
}

// runPrefixBudget propagates the prefix under an optional per-run message
// budget override (0 keeps the network default) — the quarantine retry
// path escalates budgets per prefix without touching Net.MaxMessages.
func (m *Model) runPrefixBudget(ctx context.Context, prefix bgp.PrefixID, budget int) error {
	ids := m.origins(prefix)
	if len(ids) == 0 {
		return fmt.Errorf("model: prefix %d has no origin AS in the model", prefix)
	}
	return m.Net.RunBudget(ctx, prefix, ids, budget)
}

// Evaluation is the outcome of evaluating a model against a dataset.
type Evaluation struct {
	// Summary aggregates per-path match kinds (§4.2 metrics).
	Summary *metrics.Summary
	// Coverage counts prefixes with ≥50/90/100% of their unique paths
	// RIB-Out matched.
	Coverage metrics.Coverage
	// SkippedPrefixes counts dataset prefixes that could not be simulated
	// (unknown to the universe or origin missing from the model).
	SkippedPrefixes int
	// Diverged counts prefixes whose propagation exhausted the message
	// budget (possible only with local-pref-based policies); Divergences
	// carries each one's context (prefix name, messages, budget).
	Diverged    int
	Divergences []DivergenceRecord
}

// DivergenceRecord pins down one diverged prefix: which one, how many
// messages it consumed, and the budget it blew through.
type DivergenceRecord struct {
	Prefix   string `json:"prefix"`
	Messages int    `json:"messages"`
	Budget   int    `json:"budget"`
}

// Evaluate simulates every prefix of the dataset through the model and
// classifies every distinct observed path. Prefixes are processed in
// universe order for determinism.
func (m *Model) Evaluate(ds *dataset.Dataset) (*Evaluation, error) {
	return m.EvaluateContext(context.Background(), ds)
}

// evalWork is the per-prefix unit of an evaluation: a simulatable prefix
// and its observed paths, pre-flattened into deterministic order.
type evalWork struct {
	id       bgp.PrefixID
	observed []metrics.ObservedAS
}

// evalWorklist derives the evaluation worklist from a dataset: one entry
// per simulatable prefix in ascending universe order, plus the count of
// prefixes that had to be skipped (unknown to the universe or without an
// origin AS in the model). Dataset prefixes arrive name-sorted, so the
// worklist is sorted once by dense ID without round-tripping through
// []int.
func (m *Model) evalWorklist(ds *dataset.Dataset) (works []evalWork, skipped int) {
	names := ds.Prefixes()
	works = make([]evalWork, 0, len(names))
	for _, name := range names {
		id, ok := m.Universe.ID(name)
		if !ok || len(m.origins(id)) == 0 {
			skipped++
			continue
		}
		works = append(works, evalWork{id: id, observed: metrics.SortObserved(ds.ObservedPaths(name))})
	}
	sort.Slice(works, func(i, j int) bool { return works[i].id < works[j].id })
	return works, skipped
}

// EvaluateContext is Evaluate with cancellation: between prefixes (and
// mid-propagation inside the engine) a canceled context aborts with a
// *InterruptedError carrying the number of prefixes already evaluated.
func (m *Model) EvaluateContext(ctx context.Context, ds *dataset.Dataset) (*Evaluation, error) {
	ev := &Evaluation{Summary: metrics.NewSummary()}
	cls := metrics.NewClassifier(m.Net)

	works, skipped := m.evalWorklist(ds)
	ev.SkippedPrefixes = skipped

	ctx, span := obs.StartSpan(ctx, "model.evaluate",
		obs.A("prefixes", len(works)), obs.A("skipped", skipped), obs.A("workers", 1))
	defer span.End()

	done := 0
	for _, w := range works {
		if err := ctx.Err(); err != nil {
			return nil, &InterruptedError{Op: "evaluate", Prefixes: done, Err: err}
		}
		var ps *obs.Span
		if span.SampledPrefix(int(w.id)) {
			ps = span.StartChild("prefix", obs.A("prefix", m.Universe.Name(w.id)))
		}
		if err := m.RunPrefixContext(ctx, w.id); err != nil {
			var derr *sim.DivergenceError
			if errors.As(err, &derr) {
				ev.Diverged++
				ev.Divergences = append(ev.Divergences, DivergenceRecord{
					Prefix:   m.Universe.Name(w.id),
					Messages: derr.Messages,
					Budget:   derr.Budget,
				})
				ps.Set(obs.A("diverged", true))
				ps.End()
				continue
			}
			ps.End()
			if ctx.Err() != nil {
				return nil, &InterruptedError{Op: "evaluate", Prefixes: done, Err: ctx.Err()}
			}
			return nil, err
		}
		matched, total := metrics.EvaluatePrefixSorted(cls, w.observed, ev.Summary)
		ev.Coverage.RecordPrefix(matched, total)
		ps.Set(obs.A("matched", matched), obs.A("total", total))
		ps.End()
		done++
	}
	span.Set(obs.A("diverged", ev.Diverged))
	return ev, nil
}

// PolicyStats summarizes the policy volume installed in the model.
type PolicyStats struct {
	ExportDenies  int
	ImportActions int
	Sessions      int
	QuasiRouters  int
	ASes          int
	MaxQRsPerAS   int
}

// Stats computes the model's current size.
func (m *Model) Stats() PolicyStats {
	var s PolicyStats
	s.QuasiRouters = m.Net.NumRouters()
	s.ASes = len(m.qrs)
	s.Sessions = m.Net.NumSessions()
	for _, r := range m.Net.Routers() {
		for _, p := range r.Peers() {
			s.ExportDenies += p.ExportDenyCount()
			s.ImportActions += p.ImportActionCount()
		}
	}
	for _, rs := range m.qrs {
		if len(rs) > s.MaxQRsPerAS {
			s.MaxQRsPerAS = len(rs)
		}
	}
	return s
}
