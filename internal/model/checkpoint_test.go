package model

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/topology"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m, _ := refineSample(t)
	cp := &Checkpoint{
		Iteration:    7,
		VerifyRounds: 2,
		Cumulative:   RefineActionCounts{Reservations: 3, FiltersAdded: 5, FiltersRemoved: 1, MEDRules: 4, LocalPrefRules: 0, Duplications: 2},
		Result:       RefineResult{QuasiRoutersAdded: 2, FiltersAdded: 5, FiltersRemoved: 1, MEDRules: 4, DivergedPrefixes: 1},
		Works: []CheckpointWork{
			{Prefix: "P3", State: "settled"},
			{Prefix: "P4", State: "quarantined", Retried: false, DivMessages: 1001, DivBudget: 1000},
			{Prefix: "P9", State: "open", Retried: true, Budget: 4000, DivMessages: 4001, DivBudget: 4000},
		},
		Model: m,
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != cp.Iteration || got.VerifyRounds != cp.VerifyRounds {
		t.Fatalf("counters differ: %d/%d vs %d/%d", got.Iteration, got.VerifyRounds, cp.Iteration, cp.VerifyRounds)
	}
	if got.Cumulative != cp.Cumulative {
		t.Fatalf("cumulative differs: %+v vs %+v", got.Cumulative, cp.Cumulative)
	}
	if got.Result.QuasiRoutersAdded != 2 || got.Result.FiltersAdded != 5 || got.Result.FiltersRemoved != 1 ||
		got.Result.MEDRules != 4 || got.Result.DivergedPrefixes != 1 {
		t.Fatalf("result counters differ: %+v", got.Result)
	}
	if len(got.Works) != len(cp.Works) {
		t.Fatalf("work count differs: %d vs %d", len(got.Works), len(cp.Works))
	}
	for i := range cp.Works {
		if got.Works[i] != cp.Works[i] {
			t.Fatalf("work %d differs: %+v vs %+v", i, got.Works[i], cp.Works[i])
		}
	}
	if got.Model == nil || got.Model.Stats() != m.Stats() {
		t.Fatalf("embedded model differs")
	}
}

// TestCheckpointTruncated: every proper byte-prefix of a checkpoint must
// fail to load (the embedded model's "end" trailer is the integrity
// marker) and must never panic.
func TestCheckpointTruncated(t *testing.T) {
	m, _ := refineSample(t)
	cp := &Checkpoint{Iteration: 3, Works: []CheckpointWork{{Prefix: "P4", State: "open"}}, Model: m}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data)-1; i++ {
		if _, err := LoadCheckpoint(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("truncation at byte %d of %d loaded without error", i, len(data))
		}
	}
}

// doneEvent captures the final trace event of a refinement run.
func captureDone(events *[]RefineEvent) func(RefineEvent) {
	return func(ev RefineEvent) { *events = append(*events, ev) }
}

func lastDone(t *testing.T, events []RefineEvent) RefineEvent {
	t.Helper()
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Type == "done" {
			return events[i]
		}
	}
	t.Fatal("no done event in trace")
	return RefineEvent{}
}

// TestCheckpointResumeDeterministic is the kill-and-resume acceptance
// test: a refinement interrupted mid-run (checkpoint written, in-memory
// state discarded) resumes from the checkpoint file and converges to the
// same final match fractions, action counts and byte-identical saved
// model as an uninterrupted run on the same input.
func TestCheckpointResumeDeterministic(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	resumedAny := false
	for seed := 0; seed < seeds; seed++ {
		ds := randomObservations(rand.New(rand.NewSource(int64(seed))))
		if ds.Len() == 0 {
			continue
		}

		build := func() *Model {
			m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return m
		}
		save := func(m *Model) []byte {
			var b bytes.Buffer
			if err := m.Save(&b); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return b.Bytes()
		}

		// Uninterrupted reference run.
		var refEvents []RefineEvent
		refModel := build()
		refRes, err := refModel.Refine(ds, RefineConfig{Observer: captureDone(&refEvents)})
		if err != nil {
			t.Fatalf("seed %d: reference refine: %v", seed, err)
		}
		refDone := lastDone(t, refEvents)
		refBytes := save(refModel)

		// Interrupted run: cancel from inside the first iteration event,
		// checkpoint every iteration, then throw the run away.
		ckpt := filepath.Join(t.TempDir(), "refine.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		killed := build()
		_, err = killed.RefineContext(ctx, ds, RefineConfig{
			Checkpoint: CheckpointConfig{Path: ckpt, Every: 1},
			Observer: func(ev RefineEvent) {
				if ev.Type == "iteration" {
					cancel()
				}
			},
		})
		cancel()
		var ierr *InterruptedError
		if err == nil {
			// Converged within the very first iteration — nothing to
			// resume for this seed.
			continue
		}
		if !errors.As(err, &ierr) {
			t.Fatalf("seed %d: want *InterruptedError, got %v", seed, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: interrupt should unwrap to context.Canceled: %v", seed, err)
		}
		if ierr.Op != "refine" || ierr.Checkpoint != ckpt {
			t.Fatalf("seed %d: bad interrupt context: %+v", seed, ierr)
		}

		// Resume from the checkpoint file only.
		cp, err := LoadCheckpointFile(ckpt)
		if err != nil {
			t.Fatalf("seed %d: load checkpoint: %v", seed, err)
		}
		if cp.Iteration < 1 {
			t.Fatalf("seed %d: checkpoint at iteration %d", seed, cp.Iteration)
		}
		var resEvents []RefineEvent
		resRes, err := ResumeRefine(context.Background(), cp, ds, RefineConfig{Observer: captureDone(&resEvents)})
		if err != nil {
			t.Fatalf("seed %d: resume: %v", seed, err)
		}
		resumedAny = true
		resDone := lastDone(t, resEvents)

		if resRes.ResumedFrom != cp.Iteration {
			t.Errorf("seed %d: ResumedFrom = %d, checkpoint iteration %d", seed, resRes.ResumedFrom, cp.Iteration)
		}
		if resRes.Converged != refRes.Converged {
			t.Errorf("seed %d: converged %v vs %v", seed, resRes.Converged, refRes.Converged)
		}
		if resRes.QuasiRoutersAdded != refRes.QuasiRoutersAdded ||
			resRes.FiltersAdded != refRes.FiltersAdded ||
			resRes.FiltersRemoved != refRes.FiltersRemoved ||
			resRes.MEDRules != refRes.MEDRules ||
			resRes.LocalPrefRules != refRes.LocalPrefRules ||
			resRes.UnsatisfiedRequirements != refRes.UnsatisfiedRequirements {
			t.Errorf("seed %d: action counts differ:\nresumed:   %+v\nreference: %+v", seed, resRes, refRes)
		}
		if resDone.RIBOutFrac != refDone.RIBOutFrac ||
			resDone.PotentialFrac != refDone.PotentialFrac ||
			resDone.RIBInFrac != refDone.RIBInFrac {
			t.Errorf("seed %d: final match fractions differ:\nresumed:   %.4f/%.4f/%.4f\nreference: %.4f/%.4f/%.4f",
				seed, resDone.RIBOutFrac, resDone.PotentialFrac, resDone.RIBInFrac,
				refDone.RIBOutFrac, refDone.PotentialFrac, refDone.RIBInFrac)
		}
		if !bytes.Equal(save(cp.Model), refBytes) {
			t.Errorf("seed %d: resumed model differs from uninterrupted model", seed)
		}
	}
	if !resumedAny {
		t.Fatal("no seed exercised the resume path")
	}
}

// TestRefineQuarantineRecovers: an injected one-shot divergence is
// quarantined, retried once with a 4x escalated budget, recovers, and
// the run still converges.
func TestRefineQuarantineRecovers(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
		rec("op1", "P3", 1, 3),
		rec("op5", "P4", 5, 1, 2, 4),
	}}
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	id, ok := m.Universe.ID("P4")
	if !ok {
		t.Fatal("P4 not in universe")
	}
	var events []RefineEvent
	res, err := m.Refine(ds, RefineConfig{
		Observer:     captureDone(&events),
		forceDiverge: map[bgp.PrefixID]int{id: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("quarantine retry should recover: %+v", res)
	}
	if res.DivergedPrefixes != 0 {
		t.Fatalf("recovered prefix counted as diverged: %+v", res)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("want 1 quarantine record, got %+v", res.Quarantined)
	}
	q := res.Quarantined[0]
	if q.Prefix != "P4" || !q.Recovered || q.RetryBudget != q.Budget*quarantineRetryFactor {
		t.Fatalf("bad quarantine record: %+v", q)
	}
	var sawQuarantine, sawRetry bool
	for _, ev := range events {
		switch ev.Type {
		case "quarantine":
			sawQuarantine = true
			if ev.Prefix != "P4" || ev.Budget == 0 || ev.Messages <= ev.Budget {
				t.Fatalf("quarantine event missing divergence context: %+v", ev)
			}
		case "retry":
			sawRetry = true
			if ev.Prefix != "P4" || ev.RetryBudget != q.RetryBudget {
				t.Fatalf("retry event missing escalated budget: %+v", ev)
			}
		}
	}
	if !sawQuarantine || !sawRetry {
		t.Fatalf("trace missing quarantine/retry events (quarantine=%v retry=%v)", sawQuarantine, sawRetry)
	}
}

// TestRefineQuarantineGivesUp: a prefix that diverges again under the
// escalated budget is abandoned — without aborting the other prefixes.
func TestRefineQuarantineGivesUp(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
		rec("op1", "P3", 1, 3),
		rec("op5", "P4", 5, 1, 2, 4),
	}}
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := m.Universe.ID("P4")
	var events []RefineEvent
	res, err := m.Refine(ds, RefineConfig{
		Observer:     captureDone(&events),
		forceDiverge: map[bgp.PrefixID]int{id: 2}, // first run + escalated retry
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("abandoned prefix should fail convergence: %+v", res)
	}
	if res.DivergedPrefixes != 1 {
		t.Fatalf("want 1 diverged prefix, got %+v", res)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Recovered {
		t.Fatalf("want 1 unrecovered quarantine record, got %+v", res.Quarantined)
	}
	done := lastDone(t, events)
	if done.PrefixesDiverged != 1 {
		t.Fatalf("done event should report 1 diverged prefix: %+v", done)
	}
	// The other prefix must still be refined to a full match.
	if done.PrefixesSettled != 1 {
		t.Fatalf("divergence aborted the other prefix: %+v", done)
	}
	var sawDiverged bool
	for _, ev := range events {
		if ev.Type == "diverged" {
			sawDiverged = true
			if ev.Prefix != "P4" || ev.Budget == 0 {
				t.Fatalf("diverged event missing context: %+v", ev)
			}
		}
	}
	if !sawDiverged {
		t.Fatal("trace missing diverged event")
	}
}

// TestEvaluateDivergenceRecords: DivergenceError context (prefix name,
// messages, budget) propagates into Evaluation.Divergences.
func TestEvaluateDivergenceRecords(t *testing.T) {
	m, ds := refineSample(t)
	m.Net.MaxMessages = 1 // starve every propagation
	ev, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Diverged == 0 || len(ev.Divergences) != ev.Diverged {
		t.Fatalf("divergence records missing: %+v", ev)
	}
	for _, d := range ev.Divergences {
		if d.Prefix == "" || d.Budget != 1 || d.Messages < 1 {
			t.Fatalf("bad divergence record: %+v", d)
		}
	}
}

// TestRefineContextPreCanceled / TestEvaluateContextCanceled: canceled
// contexts surface as *InterruptedError carrying progress.
func TestRefineContextPreCanceled(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{rec("op1", "P2", 1, 2)}}
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.RefineContext(ctx, ds, RefineConfig{})
	var ierr *InterruptedError
	if !errors.As(err, &ierr) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want *InterruptedError wrapping context.Canceled, got %v", err)
	}
	if ierr.Op != "refine" || ierr.Iterations != 0 {
		t.Fatalf("bad interrupt context: %+v", ierr)
	}
}

func TestEvaluateContextCanceled(t *testing.T) {
	m, ds := refineSample(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.EvaluateContext(ctx, ds)
	var ierr *InterruptedError
	if !errors.As(err, &ierr) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want *InterruptedError wrapping context.Canceled, got %v", err)
	}
	if ierr.Op != "evaluate" {
		t.Fatalf("bad interrupt context: %+v", ierr)
	}
}

// TestResumeRefineDatasetMismatch: resuming against a different training
// set is refused instead of silently mis-restoring.
func TestResumeRefineDatasetMismatch(t *testing.T) {
	m, ds := refineSample(t)
	rr := newRefineRun(m, ds, RefineConfig{})
	cp := rr.snapshot()
	other := &dataset.Dataset{Records: []dataset.Record{rec("op9", "P2", 1, 2)}}
	if _, err := ResumeRefine(context.Background(), cp, other, RefineConfig{}); err == nil {
		t.Fatal("dataset mismatch accepted")
	}
}
