package model

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/metrics"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

// Parallel-evaluation metrics, registered on the obs default registry.
// Per-run sim counters are batched inside each worker's own network
// clone (sim.RunStats), so the only coordination here is the pool-level
// bookkeeping below.
var (
	mParEvals   = obs.GetCounter("eval_parallel_runs_total", "EvaluateParallel invocations")
	mParClones  = obs.GetCounter("eval_parallel_clones_total", "model clones built for worker pools")
	mParWorkers = obs.GetGauge("eval_parallel_workers", "worker count of the most recent parallel sweep")
	mParPerWkr  = obs.GetHistogram("eval_worker_prefixes", "prefixes processed per worker per parallel sweep",
		obs.ExpBuckets(1, 4, 10))
	mWorkerPanics = obs.GetCounter("worker_panics_recovered", "panics recovered in parallel worker goroutines")
	mEvalBusy     = obs.GetHistogram("eval_worker_busy_seconds", "per-worker time spent simulating prefixes per parallel sweep",
		obs.ExpBuckets(1e-3, 4, 12))
	mEvalIdle = obs.GetHistogram("eval_worker_idle_seconds", "per-worker time spent waiting (clone build, cursor contention, tail straggling) per parallel sweep",
		obs.ExpBuckets(1e-3, 4, 12))
)

// workerFaultHook, when non-nil, runs at the top of every worker's
// per-prefix body. Fault-injection tests point it at a panic injector;
// it must only be set while no sweep is in flight.
var workerFaultHook func(prefix bgp.PrefixID)

// DefaultWorkers is the worker-pool size the parallel paths use when the
// caller passes 0: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Clone returns a deep copy of the model sharing the immutable prefix
// Universe and AS Graph: the underlying network (topology + policies) is
// cloned via sim.Network.Clone, and the quasi-router index is rebuilt
// against the cloned routers. Clone only reads the source model, so
// several goroutines may clone the same quiescent model concurrently;
// the source must not be mid-Run or mid-Refine while clones are taken.
func (m *Model) Clone() *Model {
	c := &Model{
		Net:      m.Net.Clone(),
		Universe: m.Universe,
		Graph:    m.Graph,
		qrs:      make(map[bgp.ASN][]*sim.Router, len(m.qrs)),
		nextIdx:  make(map[bgp.ASN]uint16, len(m.nextIdx)),
	}
	for asn, rs := range m.qrs {
		crs := make([]*sim.Router, len(rs))
		for i, r := range rs {
			crs[i] = c.Net.Router(r.ID)
		}
		c.qrs[asn] = crs
	}
	for asn, idx := range m.nextIdx {
		c.nextIdx[asn] = idx
	}
	return c
}

// prefixEval is one prefix's contribution to a parallel evaluation,
// produced by a worker and merged in universe order by the coordinator.
type prefixEval struct {
	sum            *metrics.Summary // nil until evaluated
	matched, total int
	div            *DivergenceRecord
	err            error // non-divergence simulation failure
}

// EvaluateParallel is Evaluate fanned out over a worker pool: each
// worker gets its own model clone (Clone), pulls prefixes from the
// shared universe-ordered worklist, and emits a per-prefix summary;
// the coordinator merges summaries, coverage and divergence records in
// universe order, so the result is identical to the sequential
// EvaluateContext for any worker count. workers <= 0 selects
// DefaultWorkers(); workers == 1 (or a worklist smaller than two
// prefixes) falls back to the sequential path over the model's own
// network.
//
// Cancellation matches EvaluateContext: a canceled context aborts with
// a *InterruptedError carrying the number of prefixes fully evaluated.
// The source model's network is never run by the pool, so m is safe to
// read (but not mutate) concurrently with an in-flight
// EvaluateParallel.
func (m *Model) EvaluateParallel(ctx context.Context, ds *dataset.Dataset, workers int) (*Evaluation, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	works, skipped := m.evalWorklist(ds)
	if workers > len(works) {
		workers = len(works)
	}
	if workers <= 1 {
		return m.EvaluateContext(ctx, ds)
	}
	mParEvals.Inc()
	mParWorkers.Set(int64(workers))
	ctx, span := obs.StartSpan(ctx, "model.evaluate",
		obs.A("prefixes", len(works)), obs.A("skipped", skipped), obs.A("workers", workers))
	defer span.End()

	results := make([]prefixEval, len(works))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Per-worker utilization: busy is time inside the per-prefix
			// body; idle is everything else (clone build, cursor
			// contention, straggling at the tail). Both are
			// scheduling-dependent, so the span attrs are Volatile — and
			// the span itself is volatile, because its count follows the
			// worker count.
			wspan := span.StartVolatileChild("worker", obs.VolatileAttr("worker", wi))
			wstart := time.Now()
			var busy time.Duration
			clone := m.Clone()
			mParClones.Inc()
			cls := metrics.NewClassifier(clone.Net)
			processed := 0
			defer func() {
				mParPerWkr.ObserveInt(processed)
				total := time.Since(wstart)
				mEvalBusy.ObserveDuration(busy)
				mEvalIdle.ObserveDuration(total - busy)
				wspan.Set(
					obs.VolatileAttr("prefixes", processed),
					obs.VolatileAttr("busy_seconds", busy.Seconds()),
					obs.VolatileAttr("idle_seconds", (total-busy).Seconds()))
				wspan.End()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(works) || wctx.Err() != nil {
					return
				}
				w, r := works[i], &results[i]
				// One prefix per closure invocation, so a recovered panic
				// is attributed to the prefix that raised it and stops
				// only this worker — wg.Wait never deadlocks.
				t0 := time.Now()
				stop := func() (stop bool) {
					defer func() {
						if p := recover(); p != nil {
							mWorkerPanics.Inc()
							r.err = &WorkerPanicError{
								Op:     "evaluate",
								Prefix: m.Universe.Name(w.id),
								Value:  p,
								Stack:  debug.Stack(),
							}
							cancel()
							stop = true
						}
					}()
					// Sampled per-prefix spans attach to the stage span, not
					// the worker span: the prefix→worker assignment is
					// nondeterministic, so only a Volatile attr records it.
					var ps *obs.Span
					if span.SampledPrefix(int(w.id)) {
						ps = span.StartChild("prefix",
							obs.A("prefix", m.Universe.Name(w.id)), obs.VolatileAttr("worker", wi))
					}
					defer ps.End()
					if hook := workerFaultHook; hook != nil {
						hook(w.id)
					}
					if err := clone.runPrefixBudget(wctx, w.id, 0); err != nil {
						var derr *sim.DivergenceError
						switch {
						case errors.As(err, &derr):
							r.div = &DivergenceRecord{
								Prefix:   m.Universe.Name(w.id),
								Messages: derr.Messages,
								Budget:   derr.Budget,
							}
							ps.Set(obs.A("diverged", true))
						case wctx.Err() != nil:
							return true
						default:
							r.err = err
							cancel() // no point finishing the sweep
							return true
						}
						processed++
						return false
					}
					r.sum = metrics.NewSummary()
					r.matched, r.total = metrics.EvaluatePrefixSorted(cls, w.observed, r.sum)
					ps.Set(obs.A("matched", r.matched), obs.A("total", r.total))
					processed++
					return false
				}()
				busy += time.Since(t0)
				if stop {
					return
				}
			}
		}(wi)
	}
	wg.Wait()

	// Merge in universe order. Worker errors win over the interrupt so a
	// genuine failure is never masked by the cancel() it triggered.
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		done := 0
		for i := range results {
			if results[i].sum != nil {
				done++
			}
		}
		return nil, &InterruptedError{Op: "evaluate", Prefixes: done, Err: err}
	}
	ev := &Evaluation{Summary: metrics.NewSummary(), SkippedPrefixes: skipped}
	for i := range results {
		r := &results[i]
		if r.div != nil {
			ev.Diverged++
			ev.Divergences = append(ev.Divergences, *r.div)
			continue
		}
		ev.Summary.Merge(r.sum)
		ev.Coverage.RecordPrefix(r.matched, r.total)
	}
	span.Set(obs.A("diverged", ev.Diverged))
	return ev, nil
}

// verifyOutcome is one settled prefix's re-simulation result from the
// parallel verify sweep.
type verifyOutcome struct {
	diverged                 bool
	unsat                    int
	ribOut, potential, ribIn int
	err                      error
}

// verifyParallel re-simulates the given settled prefixes on per-worker
// model clones and reports each one's unsatisfied-requirement count (and
// match counts when observing). It performs no model mutation and no
// worklist state changes — the caller applies outcomes in deterministic
// worklist order — so any worker count yields the same refinement.
// Clones come from the run's shared pool (rr.clonePool), already synced
// to the canonical model, so the sweep never re-clones mid-run. Worker
// spans attach under span (the verify-sweep span; nil is fine).
func (rr *refineRun) verifyParallel(span *obs.Span, towork []*prefixWork, clones []*specClone) []verifyOutcome {
	workers := len(clones)
	mParWorkers.Set(int64(workers))
	results := make([]verifyOutcome, len(towork))
	var next atomic.Int64
	var abort atomic.Bool // one worker failed: stop claiming new prefixes
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			wspan := span.StartVolatileChild("worker", obs.VolatileAttr("worker", wi))
			wstart := time.Now()
			var busy time.Duration
			clone := clones[wi].m
			processed := 0
			defer func() {
				mParPerWkr.ObserveInt(processed)
				total := time.Since(wstart)
				mEvalBusy.ObserveDuration(busy)
				mEvalIdle.ObserveDuration(total - busy)
				wspan.Set(
					obs.VolatileAttr("prefixes", processed),
					obs.VolatileAttr("busy_seconds", busy.Seconds()),
					obs.VolatileAttr("idle_seconds", (total-busy).Seconds()))
				wspan.End()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(towork) || abort.Load() {
					return
				}
				w, r := towork[i], &results[i]
				t0 := time.Now()
				stop := func() (stop bool) {
					defer func() {
						if p := recover(); p != nil {
							mWorkerPanics.Inc()
							r.err = &WorkerPanicError{
								Op:     "verify",
								Prefix: rr.name(w),
								Value:  p,
								Stack:  debug.Stack(),
							}
							abort.Store(true)
							stop = true
						}
					}()
					if hook := workerFaultHook; hook != nil {
						hook(w.id)
					}
					if err := clone.runPrefixBudget(context.Background(), w.id, w.budget); err != nil {
						if errors.Is(err, sim.ErrDiverged) {
							r.diverged = true
							processed++
							return false
						}
						r.err = err
						abort.Store(true)
						return true
					}
					if rr.observing {
						r.ribOut, r.potential, r.ribIn = clone.matchCounts(w)
					}
					r.unsat = clone.countUnsatisfied(w)
					processed++
					return false
				}()
				busy += time.Since(t0)
				if stop {
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	return results
}
