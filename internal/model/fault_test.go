package model

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/faultinject"
	"asmodel/internal/topology"
)

// installPanicHook points the worker fault hook at a panic injector and
// arranges its removal when the test ends.
func installPanicHook(t *testing.T, inj *faultinject.PanicInjector) {
	t.Helper()
	workerFaultHook = func(id bgp.PrefixID) { inj.Fire(string(rune('A' + int(id)%26))) }
	t.Cleanup(func() { workerFaultHook = nil })
}

// TestEvaluateParallelRecoversPanic: a worker panic mid-sweep must
// surface as a typed *WorkerPanicError naming the prefix, never crash
// the process or deadlock the merge.
func TestEvaluateParallelRecoversPanic(t *testing.T) {
	m, ds := refineSample(t)
	installPanicHook(t, faultinject.NewPanicInjector(1))
	before := mWorkerPanics.Value()

	_, err := m.EvaluateParallel(context.Background(), ds, 2)
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanicError, got %T: %v", err, err)
	}
	if wp.Op != "evaluate" {
		t.Fatalf("Op = %q, want evaluate", wp.Op)
	}
	if wp.Prefix == "" {
		t.Fatal("panic error does not name the prefix")
	}
	if len(wp.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if _, ok := wp.Value.(faultinject.InjectedPanic); !ok {
		t.Fatalf("recovered value = %#v, want the injected panic", wp.Value)
	}
	if got := mWorkerPanics.Value(); got != before+1 {
		t.Fatalf("worker_panics_recovered advanced by %d, want 1", got-before)
	}

	// The model is untouched (workers run on clones): a clean sweep
	// afterwards must succeed.
	if _, err := m.EvaluateParallel(context.Background(), ds, 2); err != nil {
		t.Fatalf("sweep after recovered panic: %v", err)
	}
}

// TestRefineVerifyRecoversPanic: a panic inside the parallel verify
// sweep must abort the refinement with a typed error instead of
// crashing or hanging the worker-pool merge. Speculation is disabled so
// the hook fires in the verify sweep rather than a speculation worker
// (that path has its own test below).
func TestRefineVerifyRecoversPanic(t *testing.T) {
	_, ds := refineSample(t)
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	installPanicHook(t, faultinject.NewPanicInjector(1))

	_, err = m.Refine(ds, RefineConfig{Workers: 2, disableSpeculation: true})
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanicError, got %T: %v", err, err)
	}
	if wp.Op != "verify" {
		t.Fatalf("Op = %q, want verify", wp.Op)
	}
	if wp.Prefix == "" || len(wp.Stack) == 0 {
		t.Fatalf("incomplete panic context: %+v", wp)
	}
}

// TestRefineSpeculateRecoversPanic: a panic inside a speculative
// refinement worker surfaces as a typed *WorkerPanicError with Op
// "refine", and the canonical model is untouched — the same refinement
// succeeds afterwards.
func TestRefineSpeculateRecoversPanic(t *testing.T) {
	_, ds := refineSample(t)
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	installPanicHook(t, faultinject.NewPanicInjector(1))

	_, err = m.Refine(ds, RefineConfig{Workers: 2})
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanicError, got %T: %v", err, err)
	}
	if wp.Op != "refine" {
		t.Fatalf("Op = %q, want refine", wp.Op)
	}
	if wp.Prefix == "" || len(wp.Stack) == 0 {
		t.Fatalf("incomplete panic context: %+v", wp)
	}

	// Speculation runs on clones; the canonical model must still refine
	// cleanly once the hook is gone.
	workerFaultHook = nil
	m2, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Refine(ds, RefineConfig{Workers: 2}); err != nil {
		t.Fatalf("refine after recovered panic: %v", err)
	}
}

// sampleCheckpoint builds a small but complete checkpoint for the write
// fault tests.
func sampleCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	m, _ := refineSample(t)
	return &Checkpoint{
		Iteration: 2,
		Works:     []CheckpointWork{{Prefix: "P3", State: "settled"}, {Prefix: "P4", State: "open"}},
		Model:     m,
	}
}

// TestCheckpointWriteRetriesTransients: transient write faults under the
// checkpoint sink are retried (counted on checkpoint_write_retries) and
// the file that lands is byte-identical to a fault-free write.
func TestCheckpointWriteRetriesTransients(t *testing.T) {
	cp := sampleCheckpoint(t)
	dir := t.TempDir()

	clean := filepath.Join(dir, "clean.ckpt")
	if err := WriteCheckpointFile(clean, cp); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	checkpointWriteWrap = func(w io.Writer) io.Writer {
		// The checkpoint writer is buffered, so only a handful of large
		// writes reach this layer: fail every attempt transiently, twice.
		return faultinject.NewWriter(w, faultinject.WriterConfig{TransientEvery: 1, MaxTransient: 2})
	}
	t.Cleanup(func() { checkpointWriteWrap = nil })
	before := mCkptRetries.Value()

	faulty := filepath.Join(dir, "faulty.ckpt")
	if err := WriteCheckpointFile(faulty, cp); err != nil {
		t.Fatalf("write through transient faults: %v", err)
	}
	got, err := os.ReadFile(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("checkpoint written through faults differs: %d vs %d bytes", len(got), len(want))
	}
	if mCkptRetries.Value() == before {
		t.Fatal("checkpoint_write_retries did not advance")
	}
	if _, err := LoadCheckpointFile(faulty); err != nil {
		t.Fatalf("reload: %v", err)
	}
}

// TestCheckpointPermanentWriteKeepsOld: a permanent write fault must
// surface as the injected error and leave the previous good checkpoint
// (and the absence of a .bak) untouched.
func TestCheckpointPermanentWriteKeepsOld(t *testing.T) {
	cp := sampleCheckpoint(t)
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	checkpointWriteWrap = func(w io.Writer) io.Writer {
		return faultinject.NewWriter(w, faultinject.WriterConfig{FailAt: 40})
	}
	t.Cleanup(func() { checkpointWriteWrap = nil })

	err = WriteCheckpointFile(path, cp)
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want injected write error, got %T: %v", err, err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || !bytes.Equal(got, want) {
		t.Fatalf("failed write damaged the previous checkpoint (%v)", rerr)
	}
	if _, err := os.Stat(path + ".bak"); !os.IsNotExist(err) {
		t.Fatalf("failed write rotated a .bak: %v", err)
	}
}

// TestCheckpointBakFallbackResume is the corrupt-checkpoint acceptance
// test: when the primary checkpoint is damaged, LoadCheckpointFile falls
// back to the .bak generation and resuming from it converges to a
// byte-identical final model.
func TestCheckpointBakFallbackResume(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		ds := randomObservations(rand.New(rand.NewSource(seed)))
		if ds.Len() == 0 {
			continue
		}
		m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ckpt := filepath.Join(t.TempDir(), "refine.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		_, err = m.RefineContext(ctx, ds, RefineConfig{
			Checkpoint: CheckpointConfig{Path: ckpt, Every: 1},
			Observer: func(ev RefineEvent) {
				if ev.Type == "iteration" {
					cancel()
				}
			},
		})
		cancel()
		if err == nil {
			continue // converged before the first checkpoint; try another seed
		}
		var ierr *InterruptedError
		if !errors.As(err, &ierr) {
			t.Fatalf("seed %d: want *InterruptedError, got %v", seed, err)
		}

		// Reference: resume from the intact primary.
		cpRef, err := LoadCheckpointFile(ckpt)
		if err != nil {
			t.Fatalf("seed %d: load primary: %v", seed, err)
		}
		if cpRef.Source != ckpt {
			t.Fatalf("seed %d: intact load reports source %q", seed, cpRef.Source)
		}
		refRes, err := ResumeRefine(context.Background(), cpRef, ds, RefineConfig{})
		if err != nil {
			t.Fatalf("seed %d: reference resume: %v", seed, err)
		}
		var refBytes bytes.Buffer
		if err := cpRef.Model.Save(&refBytes); err != nil {
			t.Fatal(err)
		}

		// Rotate a second generation (creating refine.ckpt.bak), then
		// corrupt the primary.
		cpGen, err := LoadCheckpointFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteCheckpointFile(ckpt, cpGen); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(ckpt + ".bak"); err != nil {
			t.Fatalf("seed %d: no .bak after second write: %v", seed, err)
		}
		if err := os.WriteFile(ckpt, []byte("not a checkpoint\n"), 0o644); err != nil {
			t.Fatal(err)
		}

		cpBak, err := LoadCheckpointFile(ckpt)
		if err != nil {
			t.Fatalf("seed %d: fallback load failed: %v", seed, err)
		}
		if cpBak.Source != ckpt+".bak" {
			t.Fatalf("seed %d: recovered from %q, want the .bak", seed, cpBak.Source)
		}
		if cpBak.Iteration != cpRef.Iteration {
			t.Fatalf("seed %d: .bak at iteration %d, primary was %d", seed, cpBak.Iteration, cpRef.Iteration)
		}
		bakRes, err := ResumeRefine(context.Background(), cpBak, ds, RefineConfig{})
		if err != nil {
			t.Fatalf("seed %d: resume from .bak: %v", seed, err)
		}
		var bakBytes bytes.Buffer
		if err := cpBak.Model.Save(&bakBytes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bakBytes.Bytes(), refBytes.Bytes()) {
			t.Fatalf("seed %d: model resumed from .bak differs from primary resume", seed)
		}
		if bakRes.Converged != refRes.Converged || bakRes.FiltersAdded != refRes.FiltersAdded ||
			bakRes.QuasiRoutersAdded != refRes.QuasiRoutersAdded {
			t.Fatalf("seed %d: resume results differ:\nbak: %+v\nref: %+v", seed, bakRes, refRes)
		}

		// With the .bak gone too, the load must fail loudly.
		if err := os.Remove(ckpt + ".bak"); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpointFile(ckpt); err == nil {
			t.Fatalf("seed %d: corrupt checkpoint loaded with no .bak present", seed)
		}
		return // one interrupted seed fully exercises the path
	}
	t.Skip("no seed produced an interruptible refinement")
}
