package model

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

// Speculative refinement (DESIGN.md §5 "Speculative refinement"): the
// mutating refine iterations fan the open prefixes out across per-worker
// model clones. Each worker speculatively propagates + refines its
// prefix against the iteration-start state and records the resulting
// mutations as replayable data records; a sequential merger then walks
// the worklist in order and either replays a speculation verbatim (when
// nothing it depended on changed) or re-runs the prefix on the canonical
// model. Output is defined purely by worklist order, so the refined
// model, result counts, trace events and redacted spans are
// byte-identical to the sequential path at any worker count.
//
// The conflict rule works at AS granularity and exploits that policies
// are keyed (session, prefix) — one prefix's policy edits can never
// change another prefix's propagation. Cross-prefix interference flows
// only through topology (a duplicated quasi-router advertises every
// prefix) and through duplication's policy *copying*:
//
//   - a speculation reads the ASes its propagation touched plus its
//     requirement ASes; an earlier merge that duplicated into any of
//     those ASes (or added sessions to them — a duplication writes its
//     source AS and every remote AS) conflicts;
//   - a speculation that itself duplicated a quasi-router additionally
//     reads the source's own-side policies, so an earlier merge that
//     edited policies in that AS conflicts too.

// Speculative-refinement metrics, registered on the obs default
// registry. Busy/idle are observed once per worker per speculative
// iteration; speculations/conflicts are batched per iteration.
var (
	mSpecs = obs.GetCounter("refine_speculations_total",
		"prefixes speculatively refined on worker clones")
	mConflicts = obs.GetCounter("refine_conflicts_total",
		"speculations discarded and re-run on the canonical model")
	mRefBusy = obs.GetHistogram("refine_worker_busy_seconds",
		"per-worker time spent speculating per refine iteration",
		obs.ExpBuckets(1e-3, 4, 12))
	mRefIdle = obs.GetHistogram("refine_worker_idle_seconds",
		"per-worker time spent waiting (cursor contention, tail straggling) per refine iteration",
		obs.ExpBuckets(1e-3, 4, 12))
)

// actionKind enumerates the replayable refinement mutations. The set
// mirrors the heuristic's vocabulary (§4.6): clearing import actions,
// installing/removing export filters, MED / local-pref import rules, and
// quasi-router duplication.
type actionKind uint8

const (
	actClearImports actionKind = iota // drop import actions for prefix on every session of router
	actDenyExport                     // install an export deny on session router->other
	actAllowExport                    // remove an export deny on session router->other
	actSetMED                         // install an import-MED rule on session router->other
	actSetLP                          // install an import local-pref rule on session router->other
	actDuplicate                      // duplicate quasi-router router; the copy must get ID newID
)

// refineAction is one recorded mutation — pure data, resolvable against
// any model in the same state (the same restructuring PR 5 applied to
// quirk undos): routers are named by ID, sessions by (local, remote) ID
// pair, so a record taken on a clone replays identically on the
// canonical model.
type refineAction struct {
	kind   actionKind
	prefix bgp.PrefixID
	router bgp.RouterID // acting router (session local side, clear target, or duplication source)
	other  bgp.RouterID // session remote side, where applicable
	value  uint32       // MED / local-pref value
	newID  bgp.RouterID // expected ID of the duplicate, for actDuplicate
}

// undoRec reverses one mutation on the model it was recorded against
// (worker clones only — pointers are clone-local and transient).
type undoRec struct {
	peer    *sim.Peer
	prefix  bgp.PrefixID
	restore sim.ImportActionView // prior import action for undoImport
	present bool
	router  *sim.Router // duplicate to remove for undoRouter
	kind    undoKind
}

type undoKind uint8

const (
	undoImport undoKind = iota // restore the prior per-prefix import action on peer
	undoDeny                   // remove the export deny installed on peer
	undoAllow                  // reinstall the export deny removed from peer
	undoRouter                 // remove the duplicated router (LIFO)
)

// actionLog is the single mutation path of the refinement heuristic:
// refinePrefix and its helpers route every model edit through it. It
// always applies the edit and bumps the result counters; with record it
// additionally captures a replayable refineAction, and with trackUndo an
// inverse operation, so a speculation can be replayed on the canonical
// model and rolled back on its clone.
type actionLog struct {
	m         *Model
	res       *RefineResult
	record    bool
	trackUndo bool
	recs      []refineAction
	undo      []undoRec
}

func (al *actionLog) clearImports(q *sim.Router, prefix bgp.PrefixID) {
	for _, p := range q.Peers() {
		if al.trackUndo {
			if v, ok := p.ImportActionFor(prefix); ok {
				al.undo = append(al.undo, undoRec{kind: undoImport, peer: p, restore: v, present: true})
			}
		}
		p.ClearImport(prefix)
	}
	if al.record {
		al.recs = append(al.recs, refineAction{kind: actClearImports, prefix: prefix, router: q.ID})
	}
}

func (al *actionLog) denyExport(p *sim.Peer, prefix bgp.PrefixID) {
	p.DenyExport(prefix)
	al.res.FiltersAdded++
	if al.trackUndo {
		al.undo = append(al.undo, undoRec{kind: undoDeny, peer: p, prefix: prefix})
	}
	if al.record {
		al.recs = append(al.recs, refineAction{kind: actDenyExport, prefix: prefix, router: p.Local.ID, other: p.Remote.ID})
	}
}

func (al *actionLog) allowExport(p *sim.Peer, prefix bgp.PrefixID) {
	p.AllowExport(prefix)
	al.res.FiltersRemoved++
	if al.trackUndo {
		al.undo = append(al.undo, undoRec{kind: undoAllow, peer: p, prefix: prefix})
	}
	if al.record {
		al.recs = append(al.recs, refineAction{kind: actAllowExport, prefix: prefix, router: p.Local.ID, other: p.Remote.ID})
	}
}

func (al *actionLog) setImportMED(p *sim.Peer, prefix bgp.PrefixID, med uint32) {
	al.saveImport(p, prefix)
	p.SetImportMED(prefix, med)
	al.res.MEDRules++
	if al.record {
		al.recs = append(al.recs, refineAction{kind: actSetMED, prefix: prefix, router: p.Local.ID, other: p.Remote.ID, value: med})
	}
}

func (al *actionLog) setImportLocalPref(p *sim.Peer, prefix bgp.PrefixID, lp uint32) {
	al.saveImport(p, prefix)
	p.SetImportLocalPref(prefix, lp)
	al.res.LocalPrefRules++
	if al.record {
		al.recs = append(al.recs, refineAction{kind: actSetLP, prefix: prefix, router: p.Local.ID, other: p.Remote.ID, value: lp})
	}
}

func (al *actionLog) saveImport(p *sim.Peer, prefix bgp.PrefixID) {
	if !al.trackUndo {
		return
	}
	v, ok := p.ImportActionFor(prefix)
	al.undo = append(al.undo, undoRec{kind: undoImport, peer: p, restore: v, present: ok})
}

func (al *actionLog) duplicateQR(src *sim.Router) (*sim.Router, error) {
	nq, err := al.m.DuplicateQR(src)
	if err != nil {
		return nil, err
	}
	al.res.QuasiRoutersAdded++
	if al.trackUndo {
		al.undo = append(al.undo, undoRec{kind: undoRouter, router: nq})
	}
	if al.record {
		al.recs = append(al.recs, refineAction{kind: actDuplicate, router: src.ID, newID: nq.ID})
	}
	return nq, nil
}

// undoAll reverses every tracked mutation in reverse order, restoring
// the model to its pre-refinePrefix topology and policies. Policy undos
// on a duplicated router's sessions precede the router's removal (they
// were applied after the duplication), so the LIFO RemoveRouter
// invariant always holds.
func (al *actionLog) undoAll() error {
	for i := len(al.undo) - 1; i >= 0; i-- {
		u := al.undo[i]
		switch u.kind {
		case undoImport:
			u.peer.RestoreImportAction(u.restore, u.present)
		case undoDeny:
			u.peer.AllowExport(u.prefix)
		case undoAllow:
			u.peer.DenyExport(u.prefix)
		case undoRouter:
			if err := al.m.removeLastQR(u.router); err != nil {
				return err
			}
		}
	}
	al.undo = al.undo[:0]
	return nil
}

// removeLastQR undoes the most recent addQR/DuplicateQR: it removes r
// from the network (LIFO — see sim.Network.RemoveRouter), the
// quasi-router index, and rewinds the per-AS ID counter so the next
// duplication in the AS reuses the ID.
func (m *Model) removeLastQR(r *sim.Router) error {
	rs := m.qrs[r.AS]
	if len(rs) == 0 || rs[len(rs)-1] != r {
		return fmt.Errorf("model: removeLastQR: %s is not AS %s's newest quasi-router", r.ID, r.AS)
	}
	if err := m.Net.RemoveRouter(r); err != nil {
		return err
	}
	m.qrs[r.AS] = rs[:len(rs)-1]
	m.nextIdx[r.AS]--
	return nil
}

// applyAction replays one recorded mutation against m, bumping the
// counters of res. It reports false when the record does not resolve —
// a state mismatch the conflict rule is supposed to make impossible for
// clean speculations, surfaced as a hard error by the merger rather
// than silently diverging.
func applyAction(m *Model, a refineAction, res *RefineResult) bool {
	switch a.kind {
	case actClearImports:
		q := m.Net.Router(a.router)
		if q == nil {
			return false
		}
		for _, p := range q.Peers() {
			p.ClearImport(a.prefix)
		}
	case actDenyExport:
		p := sessionOf(m, a.router, a.other)
		if p == nil {
			return false
		}
		p.DenyExport(a.prefix)
		res.FiltersAdded++
	case actAllowExport:
		p := sessionOf(m, a.router, a.other)
		if p == nil {
			return false
		}
		p.AllowExport(a.prefix)
		res.FiltersRemoved++
	case actSetMED:
		p := sessionOf(m, a.router, a.other)
		if p == nil {
			return false
		}
		p.SetImportMED(a.prefix, a.value)
		res.MEDRules++
	case actSetLP:
		p := sessionOf(m, a.router, a.other)
		if p == nil {
			return false
		}
		p.SetImportLocalPref(a.prefix, a.value)
		res.LocalPrefRules++
	case actDuplicate:
		src := m.Net.Router(a.router)
		if src == nil {
			return false
		}
		if bgp.MakeRouterID(src.AS, m.nextIdx[src.AS]) != a.newID {
			return false // the AS grew since the record was taken
		}
		nq, err := m.DuplicateQR(src)
		if err != nil || nq.ID != a.newID {
			return false
		}
		res.QuasiRoutersAdded++
	default:
		return false
	}
	return true
}

func sessionOf(m *Model, local, remote bgp.RouterID) *sim.Peer {
	r := m.Net.Router(local)
	if r == nil {
		return nil
	}
	return r.PeerTo(remote)
}

// speculation is one worker's tentative outcome for one open prefix:
// the refinePrefix results, the recorded action set, and the read-set
// the merger checks it against.
type speculation struct {
	err       error                // worker panic or non-divergence simulation failure
	div       *sim.DivergenceError // propagation diverged on the clone
	changed   bool
	satisfied bool
	resv      int
	// Match counts (observer runs only).
	ribOut, potential, ribIn int
	// recs is the replayable action set; reads the ASes the speculation
	// depends on (propagation-touched ∪ requirement ASes).
	recs  []refineAction
	reads []bgp.ASN
}

// specReads derives the speculation's read-set after the clone ran the
// prefix: the AS of every touched router plus the requirement ASes
// (which the heuristic inspects even when untouched).
func specReads(c *Model, w *prefixWork) []bgp.ASN {
	seen := make(map[bgp.ASN]struct{}, len(w.reqASes))
	reads := make([]bgp.ASN, 0, len(w.reqASes))
	for _, as := range w.reqASes {
		if _, dup := seen[as]; !dup {
			seen[as] = struct{}{}
			reads = append(reads, as)
		}
	}
	for _, r := range c.Net.TouchedRouters() {
		if _, dup := seen[r.AS]; !dup {
			seen[r.AS] = struct{}{}
			reads = append(reads, r.AS)
		}
	}
	return reads
}

// conflictsWith reports whether the speculation depended on canonical
// state that earlier merges changed: its read-set intersects the
// accumulated topology writes, or it duplicated a quasi-router in an AS
// whose policies were edited (duplication copies the source's own-side
// policies).
func (sp *speculation) conflictsWith(m *Model, topoWrites, policyWrites map[bgp.ASN]struct{}) bool {
	if len(topoWrites) > 0 {
		for _, as := range sp.reads {
			if _, hit := topoWrites[as]; hit {
				return true
			}
		}
	}
	if len(policyWrites) > 0 {
		for _, a := range sp.recs {
			if a.kind != actDuplicate {
				continue
			}
			if src := m.Net.Router(a.router); src != nil {
				if _, hit := policyWrites[src.AS]; hit {
					return true
				}
			}
		}
	}
	return false
}

// addWrites folds one merged action set into the iteration's write
// tracking. Policy edits write the acting router's AS; a duplication
// writes the source AS (new router, new own-side sessions/policies) and
// every remote AS (each gained a session toward the copy). Resolution
// happens against the canonical model right after the set was applied,
// before any later merge, so the session fan-out seen here is exactly
// the one the action produced.
func addWrites(m *Model, recs []refineAction, topoWrites, policyWrites map[bgp.ASN]struct{}) {
	for _, a := range recs {
		switch a.kind {
		case actDuplicate:
			src := m.Net.Router(a.router)
			if src == nil {
				continue
			}
			topoWrites[src.AS] = struct{}{}
			for _, p := range src.Peers() {
				topoWrites[p.Remote.AS] = struct{}{}
			}
		default:
			if r := m.Net.Router(a.router); r != nil {
				policyWrites[r.AS] = struct{}{}
			}
		}
	}
}

// specClone is one pooled worker clone plus the canonical-log position
// it is synced to.
type specClone struct {
	m   *Model
	pos int // rr.log index the clone's topology/policies reflect
}

// workerCount resolves cfg.Workers: negative selects DefaultWorkers(),
// 0 and 1 stay sequential.
func (rr *refineRun) workerCount() int {
	w := rr.cfg.Workers
	if w < 0 {
		w = DefaultWorkers()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// clonePool returns n clones synced to the canonical model's current
// topology and policies. Clones are built once per refine run and kept
// in step by replaying the canonical action log suffix — cheap relative
// to a fresh deep copy, and the reason the speculative iterations and
// the verify sweep share one pool.
func (rr *refineRun) clonePool(n int) []*specClone {
	for len(rr.pool) < n {
		rr.pool = append(rr.pool, &specClone{m: rr.m.Clone(), pos: len(rr.log)})
		mParClones.Inc()
	}
	scratch := &RefineResult{}
	for _, c := range rr.pool[:n] {
		resync := false
		for _, a := range rr.log[c.pos:] {
			if !applyAction(c.m, a, scratch) {
				resync = true
				break
			}
		}
		if resync {
			// Replay failed (should be impossible for a clone in step);
			// fall back to a fresh deep copy.
			c.m = rr.m.Clone()
			mParClones.Inc()
		}
		c.pos = len(rr.log)
	}
	return rr.pool[:n]
}

// speculate runs one open prefix on the worker's clone: propagate,
// compute match counts, refine with recording + undo tracking, derive
// the read-set, then roll the clone back to the iteration-start state.
func (rr *refineRun) speculate(c *Model, w *prefixWork, sp *speculation) {
	if err := c.runPrefixBudget(context.Background(), w.id, w.budget); err != nil {
		var derr *sim.DivergenceError
		if errors.As(err, &derr) {
			// Divergence is deterministic too: the canonical run at the
			// merge point replays the same message sequence unless a
			// conflict intervenes, so the clone's error stands in for it.
			sp.div = derr
			sp.reads = specReads(c, w)
			return
		}
		sp.err = err
		return
	}
	if rr.observing {
		sp.ribOut, sp.potential, sp.ribIn = c.matchCounts(w)
	}
	al := &actionLog{m: c, res: &RefineResult{}, record: true, trackUndo: true}
	sp.changed, sp.satisfied, sp.resv = c.refinePrefix(w, rr.cfg, al)
	sp.recs = al.recs
	sp.reads = specReads(c, w)
	if err := al.undoAll(); err != nil {
		sp.err = fmt.Errorf("model: rolling back speculation for prefix %s: %w", rr.name(w), err)
	}
}

// iterateSpeculative is the parallel form of one inner refinement
// iteration over the open prefixes. Workers claim prefixes from the
// worklist via an atomic cursor and speculate on pooled clones; the
// caller's goroutine merges outcomes in worklist order as they become
// ready — replaying clean speculations, re-running conflicted (or
// forceDiverge-seamed) ones on the canonical model — so every
// observable output matches the sequential iteration exactly.
func (rr *refineRun) iterateSpeculative(open []*prefixWork, iterSpan *obs.Span) (changedAny bool, pending, reservations, conflicts int, err error) {
	workers := rr.workerCount()
	if workers > len(open) {
		workers = len(open)
	}
	clones := rr.clonePool(workers)
	specs := make([]speculation, len(open))
	ready := make([]chan struct{}, len(open))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var next atomic.Int64
	var abort atomic.Bool
	var wg sync.WaitGroup
	mSpecs.Add(int64(len(open)))
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// The worker span is volatile twice over: its attrs are
			// wall-clock and its count follows the worker count, so
			// redacted traces drop the span entirely.
			wspan := iterSpan.StartVolatileChild("worker", obs.VolatileAttr("worker", wi))
			wstart := time.Now()
			var busy time.Duration
			clone := clones[wi].m
			processed := 0
			defer func() {
				mParPerWkr.ObserveInt(processed)
				total := time.Since(wstart)
				mRefBusy.ObserveDuration(busy)
				mRefIdle.ObserveDuration(total - busy)
				wspan.Set(
					obs.VolatileAttr("prefixes", processed),
					obs.VolatileAttr("busy_seconds", busy.Seconds()),
					obs.VolatileAttr("idle_seconds", (total-busy).Seconds()))
				wspan.End()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(open) || abort.Load() {
					return
				}
				w, sp := open[i], &specs[i]
				t0 := time.Now()
				stop := func() (stop bool) {
					defer func() {
						if p := recover(); p != nil {
							mWorkerPanics.Inc()
							sp.err = &WorkerPanicError{
								Op:     "refine",
								Prefix: rr.name(w),
								Value:  p,
								Stack:  debug.Stack(),
							}
							abort.Store(true)
							stop = true
						}
					}()
					if hook := workerFaultHook; hook != nil {
						hook(w.id)
					}
					rr.speculate(clone, w, sp)
					if sp.err != nil {
						abort.Store(true)
						return true
					}
					processed++
					return false
				}()
				busy += time.Since(t0)
				close(ready[i])
				if stop {
					return
				}
			}
		}(wi)
	}

	// Sequential merger, overlapping the still-running workers. The
	// cursor claims indices in order, so by the time ready[i] closes,
	// every ready[j], j<i has closed or will close — the merger never
	// waits on an unclaimed slot before hitting a claimed one.
	topoWrites := make(map[bgp.ASN]struct{})
	policyWrites := make(map[bgp.ASN]struct{})
	var merr error
	for i, w := range open {
		<-ready[i]
		sp := &specs[i]
		if sp.err != nil {
			merr = sp.err
			break
		}
		// The forceDiverge seam decrements shared per-prefix counters, so
		// it is honoured only here, on the canonical pass, in worklist
		// order — exactly as the sequential loop would.
		forced := rr.cfg.forceDiverge != nil && rr.cfg.forceDiverge[w.id] > 0
		if forced || sp.conflictsWith(rr.m, topoWrites, policyWrites) {
			conflicts++
			changed, satisfied, resv, quarantined, rerr := rr.refineCanonical(w, topoWrites, policyWrites)
			if rerr != nil {
				merr = rerr
				break
			}
			reservations += resv
			if quarantined {
				continue
			}
			if changed {
				changedAny = true
				pending++
				continue
			}
			w.done = true
			w.ok = satisfied
			continue
		}
		if sp.div != nil {
			rr.quarantine(w, sp.div)
			continue
		}
		if rr.observing {
			w.ribOut, w.potential, w.ribIn = sp.ribOut, sp.potential, sp.ribIn
		}
		applied := true
		for _, a := range sp.recs {
			if !applyAction(rr.m, a, rr.res) {
				applied = false
				break
			}
		}
		if !applied {
			// A clean speculation must replay — a failure here means the
			// conflict rule missed a dependency. Surface it loudly rather
			// than continuing from a half-applied action set.
			merr = fmt.Errorf("model: speculative replay failed for prefix %s (conflict rule violation)", rr.name(w))
			break
		}
		rr.log = append(rr.log, sp.recs...)
		addWrites(rr.m, sp.recs, topoWrites, policyWrites)
		reservations += sp.resv
		if sp.changed {
			changedAny = true
			pending++
			continue
		}
		w.done = true
		w.ok = sp.satisfied
	}
	if merr != nil {
		abort.Store(true)
	}
	wg.Wait()
	if merr != nil {
		return false, 0, 0, 0, merr
	}
	mConflicts.Add(int64(conflicts))
	return changedAny, pending, reservations, conflicts, nil
}

// refineCanonical runs one prefix through the exact sequential
// iteration body on the canonical model (conflicted or seam-forced
// prefixes), recording its actions into the canonical log and write
// tracking.
func (rr *refineRun) refineCanonical(w *prefixWork, topoWrites, policyWrites map[bgp.ASN]struct{}) (changed, satisfied bool, resv int, quarantined bool, err error) {
	if rerr := rr.runPrefix(w); rerr != nil {
		var derr *sim.DivergenceError
		if errors.As(rerr, &derr) {
			rr.quarantine(w, derr)
			return false, false, 0, true, nil
		}
		return false, false, 0, false, rerr
	}
	if rr.observing {
		w.ribOut, w.potential, w.ribIn = rr.m.matchCounts(w)
	}
	al := &actionLog{m: rr.m, res: rr.res, record: true}
	changed, satisfied, resv = rr.m.refinePrefix(w, rr.cfg, al)
	rr.log = append(rr.log, al.recs...)
	addWrites(rr.m, al.recs, topoWrites, policyWrites)
	return changed, satisfied, resv, false, nil
}
