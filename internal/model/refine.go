package model

import (
	"errors"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

// Refinement metrics, registered on the obs default registry and batched
// per Refine call (per-iteration work is visible through the trace
// observer, which stays deterministic — see RefineEvent).
var (
	mRefines    = obs.GetCounter("refine_runs_total", "Refine invocations")
	mIterations = obs.GetCounter("refine_iterations_total", "refinement iterations executed")
	mFiltersAdd = obs.GetCounter("refine_filters_added_total", "export filters installed")
	mFiltersDel = obs.GetCounter("refine_filters_removed_total", "export filters deleted (Figure 7)")
	mMEDRules   = obs.GetCounter("refine_med_rules_total", "import-MED preferences installed")
	mLPRules    = obs.GetCounter("refine_local_pref_rules_total", "import local-pref rules installed (E10c ablation)")
	mQRsAdded   = obs.GetCounter("refine_quasi_routers_added_total", "quasi-router duplications")
	mVerifies   = obs.GetCounter("refine_verify_rounds_total", "verify-and-reopen sweeps")
	mDivergedPx = obs.GetCounter("refine_diverged_prefixes_total", "training prefixes abandoned due to divergence")
	mIterPerRun = obs.GetHistogram("refine_iterations_per_run", "iterations needed per Refine call",
		obs.ExpBuckets(1, 2, 10))
)

// RefineConfig controls the iterative refinement heuristic. The zero value
// is the paper's configuration: quasi-router duplication enabled, policies
// realised as export filters plus MED ranking.
type RefineConfig struct {
	// MaxIterations bounds the outer refinement loop; 0 selects an
	// automatic budget (a small multiple of the longest observed AS-path,
	// matching the paper's convergence observation in §4.6).
	MaxIterations int
	// DisableDuplication turns off quasi-router duplication (ablation
	// E10a): only policies on the single-router topology remain.
	DisableDuplication bool
	// DisableMED turns off MED ranking (ablation E10b): only export
	// filters are installed, so equal-length contenders are resolved by
	// the router-ID tie-break alone.
	DisableMED bool
	// UseLocalPref replaces filters+MED by local-pref raising (ablation
	// E10c). The paper reports this approach caused divergence; the
	// engine's message budget detects it.
	UseLocalPref bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...interface{})
	// Observer, when set, receives one RefineEvent per refinement
	// iteration (plus verify-sweep and final events). The event stream is
	// deterministic for a given (dataset, seed): it carries no wall-clock
	// time, and all counts derive from the deterministic refinement walk,
	// so identical runs produce identical streams (feed it to an
	// obs.TraceSink for a replayable refine-trace.jsonl).
	Observer func(RefineEvent)
}

// RefineActionCounts tallies refinement actions by type (§4.6 / Figure
// 6-7 vocabulary) — either for one iteration or cumulatively.
type RefineActionCounts struct {
	// Reservations counts quasi-routers reserved because they already
	// RIB-Out matched a requirement (heuristic action (i)).
	Reservations int `json:"reservations"`
	// FiltersAdded counts export denies installed at announcing neighbors.
	FiltersAdded int `json:"filters_added"`
	// FiltersRemoved counts export-deny deletions (Figure 7).
	FiltersRemoved int `json:"filters_removed"`
	// MEDRules counts import-MED preferences installed.
	MEDRules int `json:"med_rules"`
	// LocalPrefRules counts import local-pref rules (E10c ablation only).
	LocalPrefRules int `json:"local_pref_rules"`
	// Duplications counts quasi-router duplications.
	Duplications int `json:"duplications"`
}

func (a *RefineActionCounts) add(b RefineActionCounts) {
	a.Reservations += b.Reservations
	a.FiltersAdded += b.FiltersAdded
	a.FiltersRemoved += b.FiltersRemoved
	a.MEDRules += b.MEDRules
	a.LocalPrefRules += b.LocalPrefRules
	a.Duplications += b.Duplications
}

// actionSnapshot captures the res-side action counters so per-iteration
// deltas can be diffed out.
func actionSnapshot(res *RefineResult) RefineActionCounts {
	return RefineActionCounts{
		FiltersAdded:   res.FiltersAdded,
		FiltersRemoved: res.FiltersRemoved,
		MEDRules:       res.MEDRules,
		LocalPrefRules: res.LocalPrefRules,
		Duplications:   res.QuasiRoutersAdded,
	}
}

func (a RefineActionCounts) diff(before RefineActionCounts) RefineActionCounts {
	return RefineActionCounts{
		Reservations:   a.Reservations - before.Reservations,
		FiltersAdded:   a.FiltersAdded - before.FiltersAdded,
		FiltersRemoved: a.FiltersRemoved - before.FiltersRemoved,
		MEDRules:       a.MEDRules - before.MEDRules,
		LocalPrefRules: a.LocalPrefRules - before.LocalPrefRules,
		Duplications:   a.Duplications - before.Duplications,
	}
}

// RefineEvent is one structured trace event of the refinement loop. The
// match counts classify every training requirement against the converged
// simulation state at the start of the iteration, mirroring §4.2's path
// metrics at requirement granularity; they are cumulative thresholds:
// RIBIn >= Potential >= RIBOut.
type RefineEvent struct {
	// Type is "iteration" (one per inner refinement iteration), "verify"
	// (one per verify-and-reopen sweep) or "done" (final summary).
	Type string `json:"type"`
	// Iteration is the 1-based refinement iteration count so far.
	Iteration int `json:"iteration"`
	// Prefix bookkeeping: open (still being refined), settled (done and
	// RIB-Out matched), stuck (done but unmatched), diverged (abandoned).
	PrefixesOpen     int `json:"prefixes_open"`
	PrefixesSettled  int `json:"prefixes_settled"`
	PrefixesStuck    int `json:"prefixes_stuck"`
	PrefixesDiverged int `json:"prefixes_diverged"`
	// PrefixesReopened is only set on "verify" events: how many settled
	// prefixes the topology growth broke.
	PrefixesReopened int `json:"prefixes_reopened,omitempty"`
	// Requirements is the total number of (AS, suffix) requirements.
	Requirements int `json:"requirements"`
	// RIBOutMatched counts requirements some quasi-router RIB-Out
	// matches; PotentialMatched additionally admits requirements that
	// lost only the final router-ID tie-break; RIBInMatched additionally
	// admits any RIB-In presence (the upper bound on what policies could
	// achieve).
	RIBOutMatched    int     `json:"rib_out_matched"`
	PotentialMatched int     `json:"potential_matched"`
	RIBInMatched     int     `json:"rib_in_matched"`
	RIBOutFrac       float64 `json:"rib_out_frac"`
	PotentialFrac    float64 `json:"potential_frac"`
	RIBInFrac        float64 `json:"rib_in_frac"`
	// Actions tallies this event's refinement actions by type;
	// CumulativeActions tallies everything since Refine started.
	Actions           RefineActionCounts `json:"actions"`
	CumulativeActions RefineActionCounts `json:"cumulative_actions"`
	// QuasiRouters is the current model topology size.
	QuasiRouters int `json:"quasi_routers"`
	// VerifyRound is set on "verify" events (1-based).
	VerifyRound int `json:"verify_round,omitempty"`
	// Converged is set on the "done" event.
	Converged bool `json:"converged,omitempty"`
}

// RefineResult reports what the refinement did.
type RefineResult struct {
	// Iterations is the number of outer iterations executed.
	Iterations int
	// Converged is true when every training requirement ended RIB-Out
	// matched.
	Converged bool
	// QuasiRoutersAdded counts duplications performed.
	QuasiRoutersAdded int
	// FiltersAdded / FiltersRemoved count export-deny installs and
	// deletions (§4.6 filter deletion, Figure 7).
	FiltersAdded   int
	FiltersRemoved int
	// MEDRules counts import-MED preferences installed.
	MEDRules int
	// LocalPrefRules counts import local-pref rules (UseLocalPref only).
	LocalPrefRules int
	// UnsatisfiedRequirements counts (AS, suffix) requirements that could
	// not be RIB-Out matched within the budget.
	UnsatisfiedRequirements int
	// SkippedPrefixes counts training prefixes outside the model universe
	// or without an origin AS in the model.
	SkippedPrefixes int
	// DivergedPrefixes counts prefixes abandoned because propagation
	// diverged (possible only with UseLocalPref).
	DivergedPrefixes int
	// MaxPathLen is the longest observed AS-path in the training set; the
	// paper expects Iterations to be a small multiple of it (§4.6).
	MaxPathLen int
	// VerifyRounds counts verify-and-reopen rounds (see Refine).
	VerifyRounds int
}

// requirement: the AS must have a quasi-router whose best route for the
// prefix carries exactly this AS-path suffix.
type requirement struct {
	as     bgp.ASN
	suffix bgp.Path
	key    bgp.PathKey
}

type prefixWork struct {
	id     bgp.PrefixID
	reqs   []requirement
	done   bool // no further processing (satisfied, stuck, or diverged)
	ok     bool // fully RIB-Out matched
	gaveUp bool // propagation diverged; never retried

	// Last observed requirement match counts (observer only); cumulative
	// thresholds: ribIn >= potential >= ribOut.
	ribOut    int
	potential int
	ribIn     int
}

// Refine runs the iterative refinement heuristic (§4.6) until every
// observed AS-path of the training set is RIB-Out matched, the model
// stops changing, or the iteration budget is exhausted.
//
// Policies are per-prefix and cannot interfere across prefixes, but
// quasi-router duplications change the shared topology: a new quasi-router
// advertises routes for every prefix and can invalidate previously
// satisfied ones. Refine therefore runs to a fixpoint: the inner loop
// settles every prefix, then a verification sweep re-simulates all
// settled prefixes and re-opens any the topology growth broke, until a
// sweep finds nothing broken (or the iteration budget runs out).
func (m *Model) Refine(train *dataset.Dataset, cfg RefineConfig) (*RefineResult, error) {
	res := &RefineResult{}
	works, maxLen := m.buildWork(train, res)
	res.MaxPathLen = maxLen

	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 4*maxLen + 8
	}

	observing := cfg.Observer != nil
	var cumActions RefineActionCounts

	// emit fills the shared bookkeeping of a RefineEvent from the works
	// and the cumulative action tally, then hands it to the observer.
	emit := func(ev RefineEvent) {
		ev.Iteration = res.Iterations
		ev.CumulativeActions = cumActions
		ev.QuasiRouters = m.Net.NumRouters()
		for _, w := range works {
			ev.Requirements += len(w.reqs)
			ev.RIBOutMatched += w.ribOut
			ev.PotentialMatched += w.potential
			ev.RIBInMatched += w.ribIn
			switch {
			case w.gaveUp:
				ev.PrefixesDiverged++
			case !w.done:
				ev.PrefixesOpen++
			case w.ok:
				ev.PrefixesSettled++
			default:
				ev.PrefixesStuck++
			}
		}
		if ev.Requirements > 0 {
			n := float64(ev.Requirements)
			ev.RIBOutFrac = float64(ev.RIBOutMatched) / n
			ev.PotentialFrac = float64(ev.PotentialMatched) / n
			ev.RIBInFrac = float64(ev.RIBInMatched) / n
		}
		cfg.Observer(ev)
	}

	iter := 0
	for iter < maxIter {
		// Inner loop: settle every open prefix.
		for iter < maxIter {
			iter++
			res.Iterations = iter
			mIterations.Inc() // live, so /metrics shows mid-run progress
			before := actionSnapshot(res)
			reservations := 0
			changedAny := false
			pending := 0
			for _, w := range works {
				if w.done {
					continue
				}
				if err := m.RunPrefix(w.id); err != nil {
					if errors.Is(err, sim.ErrDiverged) {
						res.DivergedPrefixes++
						w.done = true
						w.gaveUp = true
						w.ribOut, w.potential, w.ribIn = 0, 0, 0
						continue
					}
					return nil, err
				}
				if observing {
					w.ribOut, w.potential, w.ribIn = m.matchCounts(w)
				}
				changed, satisfied, resv := m.refinePrefix(w, cfg, res)
				reservations += resv
				if changed {
					changedAny = true
					pending++
					continue
				}
				w.done = true
				w.ok = satisfied
			}
			if cfg.Logf != nil {
				cfg.Logf("refine: iteration %d: %d prefixes changed, %d quasi-routers, %d filters",
					iter, pending, m.Net.NumRouters(), res.FiltersAdded-res.FiltersRemoved)
			}
			if observing {
				actions := actionSnapshot(res).diff(before)
				actions.Reservations = reservations
				cumActions.add(actions)
				emit(RefineEvent{Type: "iteration", Actions: actions})
			}
			if !changedAny {
				break
			}
		}
		// Verification sweep: re-open settled prefixes that later
		// topology growth invalidated.
		res.VerifyRounds++
		reopened := 0
		for _, w := range works {
			if !w.done || w.gaveUp || !w.ok {
				continue
			}
			if err := m.RunPrefix(w.id); err != nil {
				if errors.Is(err, sim.ErrDiverged) {
					w.ok = false
					continue
				}
				return nil, err
			}
			if observing {
				w.ribOut, w.potential, w.ribIn = m.matchCounts(w)
			}
			if m.countUnsatisfied(w) > 0 {
				w.done = false
				w.ok = false
				reopened++
			}
		}
		if cfg.Logf != nil && reopened > 0 {
			cfg.Logf("refine: verification reopened %d prefixes", reopened)
		}
		if observing {
			emit(RefineEvent{Type: "verify", PrefixesReopened: reopened, VerifyRound: res.VerifyRounds})
		}
		if reopened == 0 {
			break
		}
	}

	// Final accounting.
	res.Converged = true
	for _, w := range works {
		if w.done && w.ok {
			continue
		}
		if w.gaveUp {
			res.Converged = false
			res.UnsatisfiedRequirements += len(w.reqs)
			continue
		}
		if err := m.RunPrefix(w.id); err != nil {
			if errors.Is(err, sim.ErrDiverged) {
				res.Converged = false
				res.UnsatisfiedRequirements += len(w.reqs)
				continue
			}
			return nil, err
		}
		if observing {
			w.ribOut, w.potential, w.ribIn = m.matchCounts(w)
		}
		unsat := m.countUnsatisfied(w)
		if unsat > 0 {
			res.Converged = false
			res.UnsatisfiedRequirements += unsat
		}
	}
	if observing {
		emit(RefineEvent{Type: "done", Converged: res.Converged})
	}

	// Publish the run's work to the obs registry in one batch
	// (iterations were already counted live above).
	mRefines.Inc()
	mFiltersAdd.Add(int64(res.FiltersAdded))
	mFiltersDel.Add(int64(res.FiltersRemoved))
	mMEDRules.Add(int64(res.MEDRules))
	mLPRules.Add(int64(res.LocalPrefRules))
	mQRsAdded.Add(int64(res.QuasiRoutersAdded))
	mVerifies.Add(int64(res.VerifyRounds))
	mDivergedPx.Add(int64(res.DivergedPrefixes))
	mIterPerRun.ObserveInt(res.Iterations)
	return res, nil
}

// matchCounts classifies every requirement of w against the network's
// converged state for w.id (call after RunPrefix). The counts are
// cumulative thresholds mirroring §4.2 at requirement granularity:
// ribOut <= potential (lost at worst the router-ID tie-break) <= ribIn
// (present in some RIB-In at all).
func (m *Model) matchCounts(w *prefixWork) (ribOut, potential, ribIn int) {
	for _, rq := range w.reqs {
		matched := false
		for _, q := range m.qrs[rq.as] {
			if qrSatisfies(q, rq.suffix) {
				matched = true
				break
			}
		}
		if matched {
			ribOut++
			potential++
			ribIn++
			continue
		}
		// Look for the wanted route among the candidates and keep the
		// elimination step closest to winning (as metrics.Classify does).
		bestStep := bgp.StepNone
		found := false
		for _, q := range m.qrs[rq.as] {
			cands, elim := q.DecideRIB()
			for i, cand := range cands {
				if cand.Path.Equal(rq.suffix) {
					found = true
					if elim[i] > bestStep {
						bestStep = elim[i]
					}
				}
			}
		}
		if !found {
			continue
		}
		ribIn++
		if bestStep == bgp.StepRouterID {
			potential++
		}
	}
	return ribOut, potential, ribIn
}

// buildWork derives the deduplicated (AS, suffix) requirements per prefix.
// Requirements are ordered by suffix length (origin side first), matching
// the paper's walk from the origin toward the observation points.
func (m *Model) buildWork(train *dataset.Dataset, res *RefineResult) ([]*prefixWork, int) {
	var works []*prefixWork
	maxLen := 1
	for _, name := range train.Prefixes() {
		id, ok := m.Universe.ID(name)
		if !ok || len(m.origins(id)) == 0 {
			res.SkippedPrefixes++
			continue
		}
		w := &prefixWork{id: id}
		seen := make(map[bgp.ASN]map[bgp.PathKey]struct{})
		for _, paths := range train.ObservedPaths(name) {
			for _, p := range paths {
				if len(p) > maxLen {
					maxLen = len(p)
				}
				for i := range p {
					a := p[i]
					if len(m.qrs[a]) == 0 {
						continue // AS unknown to the model topology
					}
					suffix := p[i+1:]
					k := suffix.Key()
					set := seen[a]
					if set == nil {
						set = make(map[bgp.PathKey]struct{})
						seen[a] = set
					}
					if _, dup := set[k]; dup {
						continue
					}
					set[k] = struct{}{}
					w.reqs = append(w.reqs, requirement{as: a, suffix: suffix, key: k})
				}
			}
		}
		sort.Slice(w.reqs, func(i, j int) bool {
			ri, rj := w.reqs[i], w.reqs[j]
			if len(ri.suffix) != len(rj.suffix) {
				return len(ri.suffix) < len(rj.suffix)
			}
			if ri.as != rj.as {
				return ri.as < rj.as
			}
			return ri.key < rj.key
		})
		works = append(works, w)
	}
	return works, maxLen
}

// qrSatisfies reports whether the quasi-router's current best route
// realizes the requirement suffix (locally originated for the empty
// suffix).
func qrSatisfies(q *sim.Router, suffix bgp.Path) bool {
	if len(suffix) == 0 {
		return q.Local() != nil && q.Best() == q.Local()
	}
	b := q.Best()
	return b != nil && b.Path.Equal(suffix)
}

func (m *Model) countUnsatisfied(w *prefixWork) int {
	unsat := 0
	for _, rq := range w.reqs {
		found := false
		for _, q := range m.qrs[rq.as] {
			if qrSatisfies(q, rq.suffix) {
				found = true
				break
			}
		}
		if !found {
			unsat++
		}
	}
	return unsat
}

// refinePrefix performs one heuristic iteration (Figure 6) for one prefix
// against the network's converged state. It returns whether the model was
// changed, whether every requirement was already RIB-Out matched, and how
// many quasi-router reservations pass 1 made (trace bookkeeping).
func (m *Model) refinePrefix(w *prefixWork, cfg RefineConfig, res *RefineResult) (changed, satisfied bool, reservations int) {
	prefix := w.id
	type reqKey struct {
		as  bgp.ASN
		key bgp.PathKey
	}
	resvByQR := make(map[bgp.RouterID]bgp.PathKey)
	resvReq := make(map[reqKey]bool)

	// Pass 1: reserve quasi-routers that already RIB-Out match a
	// requirement (lowest ID first; one quasi-router per distinct suffix).
	for _, rq := range w.reqs {
		for _, q := range m.qrs[rq.as] {
			if _, taken := resvByQR[q.ID]; taken {
				continue
			}
			if qrSatisfies(q, rq.suffix) {
				resvByQR[q.ID] = rq.key
				resvReq[reqKey{rq.as, rq.key}] = true
				reservations++
				break
			}
		}
	}

	satisfied = true
	for _, rq := range w.reqs {
		if resvReq[reqKey{rq.as, rq.key}] {
			continue
		}
		satisfied = false
		if len(rq.suffix) == 0 {
			continue // origination is structural; nothing to adjust
		}

		// RIB-In matches: quasi-routers that learned the wanted route,
		// with the session that delivered it.
		type inMatch struct {
			q    *sim.Router
			from *sim.Peer
		}
		var all []inMatch
		var free []inMatch
		for _, q := range m.qrs[rq.as] {
			routes, from := q.RIBIn()
			for i, rt := range routes {
				if rt.Path.Equal(rq.suffix) {
					im := inMatch{q, from[i]}
					all = append(all, im)
					if _, taken := resvByQR[q.ID]; !taken {
						free = append(free, im)
					}
					break
				}
			}
		}

		switch {
		case len(free) > 0:
			// RIB-In match at an unreserved quasi-router: adjust its
			// policies so the wanted route wins (§4.6).
			im := free[0]
			m.steerSelection(im.q, im.from, rq, prefix, cfg, res)
			resvByQR[im.q.ID] = rq.key
			resvReq[reqKey{rq.as, rq.key}] = true
			changed = true

		case len(all) > 0:
			// All RIB-In matches live on reserved quasi-routers:
			// duplicate one and adjust the copy.
			if cfg.DisableDuplication {
				continue
			}
			src := all[0]
			nq, err := m.DuplicateQR(src.q)
			if err != nil {
				continue
			}
			res.QuasiRoutersAdded++
			// The copy's RIB-In materializes next run; use the source's
			// RIB-In as the proxy for policy synthesis.
			from := nq.PeerTo(src.from.Remote.ID)
			m.steerSelectionProxy(nq, src.q, from, rq, prefix, cfg, res)
			resvByQR[nq.ID] = rq.key
			resvReq[reqKey{rq.as, rq.key}] = true
			changed = true

		default:
			// No RIB-In anywhere: either the upstream AS is not ready yet
			// (fixed in a later iteration) or one of our own filters
			// blocks the observed path (Figure 7 — delete it).
			if m.unblockPath(rq, prefix, cfg, res, resvByQR) {
				changed = true
			}
		}
	}
	return changed, satisfied, reservations
}

// steerSelection installs policies at quasi-router q so that the route
// delivered by `from` (carrying rq.suffix) becomes q's best: export
// filters at the announcing neighbors of strictly shorter contenders,
// plus a MED preference for the desired session (§4.6). With UseLocalPref
// the mechanism is a local-pref raise instead.
func (m *Model) steerSelection(q *sim.Router, from *sim.Peer, rq requirement, prefix bgp.PrefixID, cfg RefineConfig, res *RefineResult) {
	for _, p := range q.Peers() {
		p.ClearImport(prefix)
	}
	if cfg.UseLocalPref {
		from.SetImportLocalPref(prefix, 200)
		res.LocalPrefRules++
		return
	}
	routes, fromPeers := q.RIBIn()
	for i, rt := range routes {
		if len(rt.Path) >= len(rq.suffix) {
			continue
		}
		// Filter at the announcing neighbor: deny its export toward q.
		ann := fromPeers[i].Remote.PeerTo(q.ID)
		if ann != nil && !ann.ExportDenied(prefix) {
			ann.DenyExport(prefix)
			res.FiltersAdded++
		}
	}
	if !cfg.DisableMED {
		from.SetImportMED(prefix, 0)
		res.MEDRules++
	}
}

// steerSelectionProxy is steerSelection for a freshly duplicated
// quasi-router nq whose RIB-In is still empty: the source's RIB-In stands
// in for the contenders nq will receive after the next run.
func (m *Model) steerSelectionProxy(nq, src *sim.Router, from *sim.Peer, rq requirement, prefix bgp.PrefixID, cfg RefineConfig, res *RefineResult) {
	for _, p := range nq.Peers() {
		p.ClearImport(prefix)
	}
	if cfg.UseLocalPref {
		if from != nil {
			from.SetImportLocalPref(prefix, 200)
			res.LocalPrefRules++
		}
		return
	}
	routes, fromPeers := src.RIBIn()
	for i, rt := range routes {
		if len(rt.Path) >= len(rq.suffix) {
			continue
		}
		ann := fromPeers[i].Remote.PeerTo(nq.ID)
		if ann != nil && !ann.ExportDenied(prefix) {
			ann.DenyExport(prefix)
			res.FiltersAdded++
		}
	}
	if !cfg.DisableMED && from != nil {
		from.SetImportMED(prefix, 0)
		res.MEDRules++
	}
}

// unblockPath handles the no-RIB-In case of the heuristic: when the
// announcing neighbor AS already RIB-Out matches its suffix, a previously
// installed export filter must be blocking the observed path (Figure 7).
// The filter is removed if re-admitting the route cannot evict a reserved
// route (admitted path not shorter than the receiver's desired path);
// otherwise a quasi-router of the receiving AS is duplicated so an
// unfiltered session exists next iteration.
func (m *Model) unblockPath(rq requirement, prefix bgp.PrefixID, cfg RefineConfig, res *RefineResult, resvByQR map[bgp.RouterID]bgp.PathKey) bool {
	neighbor := rq.suffix[0]
	nSuffix := rq.suffix[1:]
	var nq *sim.Router
	for _, q := range m.qrs[neighbor] {
		if qrSatisfies(q, nSuffix) {
			nq = q
			break
		}
	}
	if nq == nil {
		return false // upstream not ready; a later iteration will fix it
	}
	var blocked []*sim.Peer
	for _, p := range nq.Peers() {
		if p.Remote.AS == rq.as && p.ExportDenied(prefix) {
			blocked = append(blocked, p)
		}
	}
	for _, p := range blocked {
		if key, taken := resvByQR[p.Remote.ID]; taken && len(rq.suffix) < key.Len() {
			continue // unsafe: the admitted route would evict the reserved one
		}
		p.AllowExport(prefix)
		res.FiltersRemoved++
		return true
	}
	if len(blocked) == 0 || cfg.DisableDuplication {
		return false
	}
	// Every filtered session points at a reserved quasi-router that the
	// admitted route would evict: grow the AS instead.
	nqr, err := m.DuplicateQR(blocked[0].Remote)
	if err != nil {
		return false
	}
	for _, p := range nqr.Peers() {
		p.ClearImport(prefix)
	}
	res.QuasiRoutersAdded++
	return true
}
