package model

import (
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/sim"
)

// RefineConfig controls the iterative refinement heuristic. The zero value
// is the paper's configuration: quasi-router duplication enabled, policies
// realised as export filters plus MED ranking.
type RefineConfig struct {
	// MaxIterations bounds the outer refinement loop; 0 selects an
	// automatic budget (a small multiple of the longest observed AS-path,
	// matching the paper's convergence observation in §4.6).
	MaxIterations int
	// DisableDuplication turns off quasi-router duplication (ablation
	// E10a): only policies on the single-router topology remain.
	DisableDuplication bool
	// DisableMED turns off MED ranking (ablation E10b): only export
	// filters are installed, so equal-length contenders are resolved by
	// the router-ID tie-break alone.
	DisableMED bool
	// UseLocalPref replaces filters+MED by local-pref raising (ablation
	// E10c). The paper reports this approach caused divergence; the
	// engine's message budget detects it.
	UseLocalPref bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...interface{})
}

// RefineResult reports what the refinement did.
type RefineResult struct {
	// Iterations is the number of outer iterations executed.
	Iterations int
	// Converged is true when every training requirement ended RIB-Out
	// matched.
	Converged bool
	// QuasiRoutersAdded counts duplications performed.
	QuasiRoutersAdded int
	// FiltersAdded / FiltersRemoved count export-deny installs and
	// deletions (§4.6 filter deletion, Figure 7).
	FiltersAdded   int
	FiltersRemoved int
	// MEDRules counts import-MED preferences installed.
	MEDRules int
	// LocalPrefRules counts import local-pref rules (UseLocalPref only).
	LocalPrefRules int
	// UnsatisfiedRequirements counts (AS, suffix) requirements that could
	// not be RIB-Out matched within the budget.
	UnsatisfiedRequirements int
	// SkippedPrefixes counts training prefixes outside the model universe
	// or without an origin AS in the model.
	SkippedPrefixes int
	// DivergedPrefixes counts prefixes abandoned because propagation
	// diverged (possible only with UseLocalPref).
	DivergedPrefixes int
	// MaxPathLen is the longest observed AS-path in the training set; the
	// paper expects Iterations to be a small multiple of it (§4.6).
	MaxPathLen int
	// VerifyRounds counts verify-and-reopen rounds (see Refine).
	VerifyRounds int
}

// requirement: the AS must have a quasi-router whose best route for the
// prefix carries exactly this AS-path suffix.
type requirement struct {
	as     bgp.ASN
	suffix bgp.Path
	key    bgp.PathKey
}

type prefixWork struct {
	id     bgp.PrefixID
	reqs   []requirement
	done   bool // no further processing (satisfied, stuck, or diverged)
	ok     bool // fully RIB-Out matched
	gaveUp bool // propagation diverged; never retried
}

// Refine runs the iterative refinement heuristic (§4.6) until every
// observed AS-path of the training set is RIB-Out matched, the model
// stops changing, or the iteration budget is exhausted.
//
// Policies are per-prefix and cannot interfere across prefixes, but
// quasi-router duplications change the shared topology: a new quasi-router
// advertises routes for every prefix and can invalidate previously
// satisfied ones. Refine therefore runs to a fixpoint: the inner loop
// settles every prefix, then a verification sweep re-simulates all
// settled prefixes and re-opens any the topology growth broke, until a
// sweep finds nothing broken (or the iteration budget runs out).
func (m *Model) Refine(train *dataset.Dataset, cfg RefineConfig) (*RefineResult, error) {
	res := &RefineResult{}
	works, maxLen := m.buildWork(train, res)
	res.MaxPathLen = maxLen

	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 4*maxLen + 8
	}

	iter := 0
	for iter < maxIter {
		// Inner loop: settle every open prefix.
		for iter < maxIter {
			iter++
			res.Iterations = iter
			changedAny := false
			pending := 0
			for _, w := range works {
				if w.done {
					continue
				}
				if err := m.RunPrefix(w.id); err != nil {
					if err == sim.ErrDiverged {
						res.DivergedPrefixes++
						w.done = true
						w.gaveUp = true
						continue
					}
					return nil, err
				}
				changed, satisfied := m.refinePrefix(w, cfg, res)
				if changed {
					changedAny = true
					pending++
					continue
				}
				w.done = true
				w.ok = satisfied
			}
			if cfg.Logf != nil {
				cfg.Logf("refine: iteration %d: %d prefixes changed, %d quasi-routers, %d filters",
					iter, pending, m.Net.NumRouters(), res.FiltersAdded-res.FiltersRemoved)
			}
			if !changedAny {
				break
			}
		}
		// Verification sweep: re-open settled prefixes that later
		// topology growth invalidated.
		res.VerifyRounds++
		reopened := 0
		for _, w := range works {
			if !w.done || w.gaveUp || !w.ok {
				continue
			}
			if err := m.RunPrefix(w.id); err != nil {
				if err == sim.ErrDiverged {
					w.ok = false
					continue
				}
				return nil, err
			}
			if m.countUnsatisfied(w) > 0 {
				w.done = false
				w.ok = false
				reopened++
			}
		}
		if cfg.Logf != nil && reopened > 0 {
			cfg.Logf("refine: verification reopened %d prefixes", reopened)
		}
		if reopened == 0 {
			break
		}
	}

	// Final accounting.
	res.Converged = true
	for _, w := range works {
		if w.done && w.ok {
			continue
		}
		if w.gaveUp {
			res.Converged = false
			res.UnsatisfiedRequirements += len(w.reqs)
			continue
		}
		if err := m.RunPrefix(w.id); err != nil {
			if err == sim.ErrDiverged {
				res.Converged = false
				res.UnsatisfiedRequirements += len(w.reqs)
				continue
			}
			return nil, err
		}
		unsat := m.countUnsatisfied(w)
		if unsat > 0 {
			res.Converged = false
			res.UnsatisfiedRequirements += unsat
		}
	}
	return res, nil
}

// buildWork derives the deduplicated (AS, suffix) requirements per prefix.
// Requirements are ordered by suffix length (origin side first), matching
// the paper's walk from the origin toward the observation points.
func (m *Model) buildWork(train *dataset.Dataset, res *RefineResult) ([]*prefixWork, int) {
	var works []*prefixWork
	maxLen := 1
	for _, name := range train.Prefixes() {
		id, ok := m.Universe.ID(name)
		if !ok || len(m.origins(id)) == 0 {
			res.SkippedPrefixes++
			continue
		}
		w := &prefixWork{id: id}
		seen := make(map[bgp.ASN]map[bgp.PathKey]struct{})
		for _, paths := range train.ObservedPaths(name) {
			for _, p := range paths {
				if len(p) > maxLen {
					maxLen = len(p)
				}
				for i := range p {
					a := p[i]
					if len(m.qrs[a]) == 0 {
						continue // AS unknown to the model topology
					}
					suffix := p[i+1:]
					k := suffix.Key()
					set := seen[a]
					if set == nil {
						set = make(map[bgp.PathKey]struct{})
						seen[a] = set
					}
					if _, dup := set[k]; dup {
						continue
					}
					set[k] = struct{}{}
					w.reqs = append(w.reqs, requirement{as: a, suffix: suffix, key: k})
				}
			}
		}
		sort.Slice(w.reqs, func(i, j int) bool {
			ri, rj := w.reqs[i], w.reqs[j]
			if len(ri.suffix) != len(rj.suffix) {
				return len(ri.suffix) < len(rj.suffix)
			}
			if ri.as != rj.as {
				return ri.as < rj.as
			}
			return ri.key < rj.key
		})
		works = append(works, w)
	}
	return works, maxLen
}

// qrSatisfies reports whether the quasi-router's current best route
// realizes the requirement suffix (locally originated for the empty
// suffix).
func qrSatisfies(q *sim.Router, suffix bgp.Path) bool {
	if len(suffix) == 0 {
		return q.Local() != nil && q.Best() == q.Local()
	}
	b := q.Best()
	return b != nil && b.Path.Equal(suffix)
}

func (m *Model) countUnsatisfied(w *prefixWork) int {
	unsat := 0
	for _, rq := range w.reqs {
		found := false
		for _, q := range m.qrs[rq.as] {
			if qrSatisfies(q, rq.suffix) {
				found = true
				break
			}
		}
		if !found {
			unsat++
		}
	}
	return unsat
}

// refinePrefix performs one heuristic iteration (Figure 6) for one prefix
// against the network's converged state. It returns whether the model was
// changed and whether every requirement was already RIB-Out matched.
func (m *Model) refinePrefix(w *prefixWork, cfg RefineConfig, res *RefineResult) (changed, satisfied bool) {
	prefix := w.id
	type reqKey struct {
		as  bgp.ASN
		key bgp.PathKey
	}
	resvByQR := make(map[bgp.RouterID]bgp.PathKey)
	resvReq := make(map[reqKey]bool)

	// Pass 1: reserve quasi-routers that already RIB-Out match a
	// requirement (lowest ID first; one quasi-router per distinct suffix).
	for _, rq := range w.reqs {
		for _, q := range m.qrs[rq.as] {
			if _, taken := resvByQR[q.ID]; taken {
				continue
			}
			if qrSatisfies(q, rq.suffix) {
				resvByQR[q.ID] = rq.key
				resvReq[reqKey{rq.as, rq.key}] = true
				break
			}
		}
	}

	satisfied = true
	for _, rq := range w.reqs {
		if resvReq[reqKey{rq.as, rq.key}] {
			continue
		}
		satisfied = false
		if len(rq.suffix) == 0 {
			continue // origination is structural; nothing to adjust
		}

		// RIB-In matches: quasi-routers that learned the wanted route,
		// with the session that delivered it.
		type inMatch struct {
			q    *sim.Router
			from *sim.Peer
		}
		var all []inMatch
		var free []inMatch
		for _, q := range m.qrs[rq.as] {
			routes, from := q.RIBIn()
			for i, rt := range routes {
				if rt.Path.Equal(rq.suffix) {
					im := inMatch{q, from[i]}
					all = append(all, im)
					if _, taken := resvByQR[q.ID]; !taken {
						free = append(free, im)
					}
					break
				}
			}
		}

		switch {
		case len(free) > 0:
			// RIB-In match at an unreserved quasi-router: adjust its
			// policies so the wanted route wins (§4.6).
			im := free[0]
			m.steerSelection(im.q, im.from, rq, prefix, cfg, res)
			resvByQR[im.q.ID] = rq.key
			resvReq[reqKey{rq.as, rq.key}] = true
			changed = true

		case len(all) > 0:
			// All RIB-In matches live on reserved quasi-routers:
			// duplicate one and adjust the copy.
			if cfg.DisableDuplication {
				continue
			}
			src := all[0]
			nq, err := m.DuplicateQR(src.q)
			if err != nil {
				continue
			}
			res.QuasiRoutersAdded++
			// The copy's RIB-In materializes next run; use the source's
			// RIB-In as the proxy for policy synthesis.
			from := nq.PeerTo(src.from.Remote.ID)
			m.steerSelectionProxy(nq, src.q, from, rq, prefix, cfg, res)
			resvByQR[nq.ID] = rq.key
			resvReq[reqKey{rq.as, rq.key}] = true
			changed = true

		default:
			// No RIB-In anywhere: either the upstream AS is not ready yet
			// (fixed in a later iteration) or one of our own filters
			// blocks the observed path (Figure 7 — delete it).
			if m.unblockPath(rq, prefix, cfg, res, resvByQR) {
				changed = true
			}
		}
	}
	return changed, satisfied
}

// steerSelection installs policies at quasi-router q so that the route
// delivered by `from` (carrying rq.suffix) becomes q's best: export
// filters at the announcing neighbors of strictly shorter contenders,
// plus a MED preference for the desired session (§4.6). With UseLocalPref
// the mechanism is a local-pref raise instead.
func (m *Model) steerSelection(q *sim.Router, from *sim.Peer, rq requirement, prefix bgp.PrefixID, cfg RefineConfig, res *RefineResult) {
	for _, p := range q.Peers() {
		p.ClearImport(prefix)
	}
	if cfg.UseLocalPref {
		from.SetImportLocalPref(prefix, 200)
		res.LocalPrefRules++
		return
	}
	routes, fromPeers := q.RIBIn()
	for i, rt := range routes {
		if len(rt.Path) >= len(rq.suffix) {
			continue
		}
		// Filter at the announcing neighbor: deny its export toward q.
		ann := fromPeers[i].Remote.PeerTo(q.ID)
		if ann != nil && !ann.ExportDenied(prefix) {
			ann.DenyExport(prefix)
			res.FiltersAdded++
		}
	}
	if !cfg.DisableMED {
		from.SetImportMED(prefix, 0)
		res.MEDRules++
	}
}

// steerSelectionProxy is steerSelection for a freshly duplicated
// quasi-router nq whose RIB-In is still empty: the source's RIB-In stands
// in for the contenders nq will receive after the next run.
func (m *Model) steerSelectionProxy(nq, src *sim.Router, from *sim.Peer, rq requirement, prefix bgp.PrefixID, cfg RefineConfig, res *RefineResult) {
	for _, p := range nq.Peers() {
		p.ClearImport(prefix)
	}
	if cfg.UseLocalPref {
		if from != nil {
			from.SetImportLocalPref(prefix, 200)
			res.LocalPrefRules++
		}
		return
	}
	routes, fromPeers := src.RIBIn()
	for i, rt := range routes {
		if len(rt.Path) >= len(rq.suffix) {
			continue
		}
		ann := fromPeers[i].Remote.PeerTo(nq.ID)
		if ann != nil && !ann.ExportDenied(prefix) {
			ann.DenyExport(prefix)
			res.FiltersAdded++
		}
	}
	if !cfg.DisableMED && from != nil {
		from.SetImportMED(prefix, 0)
		res.MEDRules++
	}
}

// unblockPath handles the no-RIB-In case of the heuristic: when the
// announcing neighbor AS already RIB-Out matches its suffix, a previously
// installed export filter must be blocking the observed path (Figure 7).
// The filter is removed if re-admitting the route cannot evict a reserved
// route (admitted path not shorter than the receiver's desired path);
// otherwise a quasi-router of the receiving AS is duplicated so an
// unfiltered session exists next iteration.
func (m *Model) unblockPath(rq requirement, prefix bgp.PrefixID, cfg RefineConfig, res *RefineResult, resvByQR map[bgp.RouterID]bgp.PathKey) bool {
	neighbor := rq.suffix[0]
	nSuffix := rq.suffix[1:]
	var nq *sim.Router
	for _, q := range m.qrs[neighbor] {
		if qrSatisfies(q, nSuffix) {
			nq = q
			break
		}
	}
	if nq == nil {
		return false // upstream not ready; a later iteration will fix it
	}
	var blocked []*sim.Peer
	for _, p := range nq.Peers() {
		if p.Remote.AS == rq.as && p.ExportDenied(prefix) {
			blocked = append(blocked, p)
		}
	}
	for _, p := range blocked {
		if key, taken := resvByQR[p.Remote.ID]; taken && len(rq.suffix) < key.Len() {
			continue // unsafe: the admitted route would evict the reserved one
		}
		p.AllowExport(prefix)
		res.FiltersRemoved++
		return true
	}
	if len(blocked) == 0 || cfg.DisableDuplication {
		return false
	}
	// Every filtered session points at a reserved quasi-router that the
	// admitted route would evict: grow the AS instead.
	nqr, err := m.DuplicateQR(blocked[0].Remote)
	if err != nil {
		return false
	}
	for _, p := range nqr.Peers() {
		p.ClearImport(prefix)
	}
	res.QuasiRoutersAdded++
	return true
}
