package model

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

// Refinement metrics, registered on the obs default registry and batched
// per Refine call (per-iteration work is visible through the trace
// observer, which stays deterministic — see RefineEvent).
var (
	mRefines    = obs.GetCounter("refine_runs_total", "Refine invocations")
	mIterations = obs.GetCounter("refine_iterations_total", "refinement iterations executed")
	mFiltersAdd = obs.GetCounter("refine_filters_added_total", "export filters installed")
	mFiltersDel = obs.GetCounter("refine_filters_removed_total", "export filters deleted (Figure 7)")
	mMEDRules   = obs.GetCounter("refine_med_rules_total", "import-MED preferences installed")
	mLPRules    = obs.GetCounter("refine_local_pref_rules_total", "import local-pref rules installed (E10c ablation)")
	mQRsAdded   = obs.GetCounter("refine_quasi_routers_added_total", "quasi-router duplications")
	mVerifies   = obs.GetCounter("refine_verify_rounds_total", "verify-and-reopen sweeps")
	mDivergedPx = obs.GetCounter("refine_diverged_prefixes_total", "training prefixes abandoned due to divergence")
	mIterPerRun = obs.GetHistogram("refine_iterations_per_run", "iterations needed per Refine call",
		obs.ExpBuckets(1, 2, 10))
	mQuarantined = obs.GetCounter("refine_quarantined_prefixes_total", "prefixes quarantined on first divergence (pending escalated retry)")
	mQRetries    = obs.GetCounter("refine_quarantine_retries_total", "escalated-budget retries of quarantined prefixes")
	mQRecovered  = obs.GetCounter("refine_quarantine_recovered_total", "quarantined prefixes that converged under the escalated budget")
	mCheckpoints = obs.GetCounter("refine_checkpoints_written_total", "refinement checkpoints written")
	mCkptIter    = obs.GetGauge("refine_checkpoint_iteration", "iteration of the most recent checkpoint")
	mInterrupts  = obs.GetCounter("refine_interrupted_total", "refinements stopped by context cancellation")
)

// quarantineRetryFactor scales the message budget for the single
// escalated retry of a quarantined prefix: generous enough to absorb a
// budget set marginally too low, cheap enough that a genuine policy
// oscillation (which never converges) wastes bounded work.
const quarantineRetryFactor = 4

// RefineConfig controls the iterative refinement heuristic. The zero value
// is the paper's configuration: quasi-router duplication enabled, policies
// realised as export filters plus MED ranking.
type RefineConfig struct {
	// MaxIterations bounds the outer refinement loop; 0 selects an
	// automatic budget (a small multiple of the longest observed AS-path,
	// matching the paper's convergence observation in §4.6).
	MaxIterations int
	// DisableDuplication turns off quasi-router duplication (ablation
	// E10a): only policies on the single-router topology remain.
	DisableDuplication bool
	// DisableMED turns off MED ranking (ablation E10b): only export
	// filters are installed, so equal-length contenders are resolved by
	// the router-ID tie-break alone.
	DisableMED bool
	// UseLocalPref replaces filters+MED by local-pref raising (ablation
	// E10c). The paper reports this approach caused divergence; the
	// engine's message budget detects it.
	UseLocalPref bool
	// Workers sets the worker-pool size for the whole refinement: the
	// mutating refine iterations run speculatively — each worker
	// propagates and refines open prefixes on a pooled model clone,
	// recording its edits as replayable action records, and a sequential
	// merger applies clean speculations (and re-runs conflicted ones on
	// the canonical model) in worklist order — and the read-only
	// verify-and-reopen sweep fans settled prefixes out across the same
	// clone pool. Outcomes are defined purely by worklist order, so any
	// worker count produces byte-identical results: model serialization,
	// result counts, checkpoints, trace events and redacted spans
	// (DESIGN.md §5 "Speculative refinement"). 0 or 1 keeps refinement
	// sequential; a negative value selects DefaultWorkers().
	Workers int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...interface{})
	// Observer, when set, receives one RefineEvent per refinement
	// iteration (plus verify-sweep and final events). The event stream is
	// deterministic for a given (dataset, seed): it carries no wall-clock
	// time, and all counts derive from the deterministic refinement walk,
	// so identical runs produce identical streams (feed it to an
	// obs.TraceSink for a replayable refine-trace.jsonl).
	Observer func(RefineEvent)
	// Checkpoint enables periodic crash-safe checkpointing of the
	// refinement state; the zero value disables it. See CheckpointConfig.
	Checkpoint CheckpointConfig

	// forceDiverge, when non-nil, makes the next n simulation runs of
	// each listed prefix report a synthetic divergence (test seam for the
	// quarantine path; counts are decremented per run). Speculative
	// workers bypass the seam — it is consumed only on the canonical
	// pass, in worklist order, so it stays deterministic at any worker
	// count.
	forceDiverge map[bgp.PrefixID]int

	// disableSpeculation keeps the mutating iterations sequential even
	// with Workers > 1 (test seam: lets fault tests target the parallel
	// verify sweep in isolation). The verify sweep still parallelizes.
	disableSpeculation bool
}

// RefineActionCounts tallies refinement actions by type (§4.6 / Figure
// 6-7 vocabulary) — either for one iteration or cumulatively.
type RefineActionCounts struct {
	// Reservations counts quasi-routers reserved because they already
	// RIB-Out matched a requirement (heuristic action (i)).
	Reservations int `json:"reservations"`
	// FiltersAdded counts export denies installed at announcing neighbors.
	FiltersAdded int `json:"filters_added"`
	// FiltersRemoved counts export-deny deletions (Figure 7).
	FiltersRemoved int `json:"filters_removed"`
	// MEDRules counts import-MED preferences installed.
	MEDRules int `json:"med_rules"`
	// LocalPrefRules counts import local-pref rules (E10c ablation only).
	LocalPrefRules int `json:"local_pref_rules"`
	// Duplications counts quasi-router duplications.
	Duplications int `json:"duplications"`
}

func (a *RefineActionCounts) add(b RefineActionCounts) {
	a.Reservations += b.Reservations
	a.FiltersAdded += b.FiltersAdded
	a.FiltersRemoved += b.FiltersRemoved
	a.MEDRules += b.MEDRules
	a.LocalPrefRules += b.LocalPrefRules
	a.Duplications += b.Duplications
}

// actionSnapshot captures the res-side action counters so per-iteration
// deltas can be diffed out.
func actionSnapshot(res *RefineResult) RefineActionCounts {
	return RefineActionCounts{
		FiltersAdded:   res.FiltersAdded,
		FiltersRemoved: res.FiltersRemoved,
		MEDRules:       res.MEDRules,
		LocalPrefRules: res.LocalPrefRules,
		Duplications:   res.QuasiRoutersAdded,
	}
}

func (a RefineActionCounts) diff(before RefineActionCounts) RefineActionCounts {
	return RefineActionCounts{
		Reservations:   a.Reservations - before.Reservations,
		FiltersAdded:   a.FiltersAdded - before.FiltersAdded,
		FiltersRemoved: a.FiltersRemoved - before.FiltersRemoved,
		MEDRules:       a.MEDRules - before.MEDRules,
		LocalPrefRules: a.LocalPrefRules - before.LocalPrefRules,
		Duplications:   a.Duplications - before.Duplications,
	}
}

// RefineEvent is one structured trace event of the refinement loop. The
// match counts classify every training requirement against the converged
// simulation state at the start of the iteration, mirroring §4.2's path
// metrics at requirement granularity; they are cumulative thresholds:
// RIBIn >= Potential >= RIBOut.
type RefineEvent struct {
	// Type is "iteration" (one per inner refinement iteration), "verify"
	// (one per verify-and-reopen sweep), "quarantine" (a prefix's
	// propagation diverged and was parked), "retry" (a quarantined prefix
	// re-opened under an escalated budget), "diverged" (the retry also
	// diverged; abandoned for good), "checkpoint" (state written to disk)
	// or "done" (final summary).
	Type string `json:"type"`
	// Iteration is the 1-based refinement iteration count so far.
	Iteration int `json:"iteration"`
	// Prefix bookkeeping: open (still being refined), settled (done and
	// RIB-Out matched), stuck (done but unmatched), diverged (abandoned).
	PrefixesOpen     int `json:"prefixes_open"`
	PrefixesSettled  int `json:"prefixes_settled"`
	PrefixesStuck    int `json:"prefixes_stuck"`
	PrefixesDiverged int `json:"prefixes_diverged"`
	// PrefixesQuarantined counts prefixes parked awaiting their escalated
	// retry.
	PrefixesQuarantined int `json:"prefixes_quarantined,omitempty"`
	// PrefixesReopened is only set on "verify" events: how many settled
	// prefixes the topology growth broke.
	PrefixesReopened int `json:"prefixes_reopened,omitempty"`
	// Requirements is the total number of (AS, suffix) requirements.
	Requirements int `json:"requirements"`
	// RIBOutMatched counts requirements some quasi-router RIB-Out
	// matches; PotentialMatched additionally admits requirements that
	// lost only the final router-ID tie-break; RIBInMatched additionally
	// admits any RIB-In presence (the upper bound on what policies could
	// achieve).
	RIBOutMatched    int     `json:"rib_out_matched"`
	PotentialMatched int     `json:"potential_matched"`
	RIBInMatched     int     `json:"rib_in_matched"`
	RIBOutFrac       float64 `json:"rib_out_frac"`
	PotentialFrac    float64 `json:"potential_frac"`
	RIBInFrac        float64 `json:"rib_in_frac"`
	// Actions tallies this event's refinement actions by type;
	// CumulativeActions tallies everything since Refine started.
	Actions           RefineActionCounts `json:"actions"`
	CumulativeActions RefineActionCounts `json:"cumulative_actions"`
	// QuasiRouters is the current model topology size.
	QuasiRouters int `json:"quasi_routers"`
	// VerifyRound is set on "verify" events (1-based).
	VerifyRound int `json:"verify_round,omitempty"`
	// Converged is set on the "done" event.
	Converged bool `json:"converged,omitempty"`
	// Prefix names the subject of quarantine/retry/diverged events;
	// Messages and Budget carry the divergence context (messages consumed
	// vs. allowed), RetryBudget the escalated budget on retry events.
	Prefix      string `json:"prefix,omitempty"`
	Messages    int    `json:"messages,omitempty"`
	Budget      int    `json:"budget,omitempty"`
	RetryBudget int    `json:"retry_budget,omitempty"`
	// Checkpoint is the file path written, on "checkpoint" events.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// RefineResult reports what the refinement did.
type RefineResult struct {
	// Iterations is the number of outer iterations executed.
	Iterations int
	// Converged is true when every training requirement ended RIB-Out
	// matched.
	Converged bool
	// QuasiRoutersAdded counts duplications performed.
	QuasiRoutersAdded int
	// FiltersAdded / FiltersRemoved count export-deny installs and
	// deletions (§4.6 filter deletion, Figure 7).
	FiltersAdded   int
	FiltersRemoved int
	// MEDRules counts import-MED preferences installed.
	MEDRules int
	// LocalPrefRules counts import local-pref rules (UseLocalPref only).
	LocalPrefRules int
	// UnsatisfiedRequirements counts (AS, suffix) requirements that could
	// not be RIB-Out matched within the budget.
	UnsatisfiedRequirements int
	// SkippedPrefixes counts training prefixes outside the model universe
	// or without an origin AS in the model.
	SkippedPrefixes int
	// DivergedPrefixes counts prefixes abandoned because propagation
	// diverged (possible only with UseLocalPref).
	DivergedPrefixes int
	// MaxPathLen is the longest observed AS-path in the training set; the
	// paper expects Iterations to be a small multiple of it (§4.6).
	MaxPathLen int
	// VerifyRounds counts verify-and-reopen rounds (see Refine).
	VerifyRounds int
	// Quarantined records every prefix whose propagation ever diverged:
	// its divergence context and whether the escalated retry recovered
	// it. DivergedPrefixes counts only the unrecovered ones.
	Quarantined []QuarantineRecord
	// Checkpoints counts checkpoints written during this run and
	// LastCheckpoint is the most recent path ("" when disabled).
	Checkpoints    int
	LastCheckpoint string
	// ResumedFrom is the iteration the run was restored at by
	// ResumeRefine (0 for a fresh run).
	ResumedFrom int
}

// QuarantineRecord describes one divergence-quarantined prefix.
type QuarantineRecord struct {
	// Prefix is the prefix name.
	Prefix string `json:"prefix"`
	// Messages and Budget are the divergence context of the most recent
	// failed run (the escalated retry, if it happened).
	Messages int `json:"messages"`
	Budget   int `json:"budget"`
	// RetryBudget is the escalated budget the retry ran under (0 when
	// the iteration budget ran out before the retry phase).
	RetryBudget int `json:"retry_budget,omitempty"`
	// Recovered is true when the retry converged and the prefix rejoined
	// normal refinement.
	Recovered bool `json:"recovered"`
}

// requirement: the AS must have a quasi-router whose best route for the
// prefix carries exactly this AS-path suffix.
type requirement struct {
	as     bgp.ASN
	suffix bgp.Path
	key    bgp.PathKey
}

type prefixWork struct {
	id   bgp.PrefixID
	reqs []requirement
	// reqASes is the deduplicated, sorted set of requirement ASes — the
	// part of a speculation's read-set the heuristic inspects even when
	// propagation never touches it.
	reqASes []bgp.ASN
	done    bool // no further processing (satisfied, stuck, or diverged)
	ok      bool // fully RIB-Out matched
	gaveUp  bool // propagation diverged even after the escalated retry

	quarantined bool                 // diverged once; parked awaiting the retry phase
	retried     bool                 // the one escalated retry has been spent
	budget      int                  // per-prefix message budget override (0 = default)
	div         *sim.DivergenceError // most recent divergence context

	// Last observed requirement match counts (observer only); cumulative
	// thresholds: ribIn >= potential >= ribOut.
	ribOut    int
	potential int
	ribIn     int
}

// Refine runs the iterative refinement heuristic (§4.6) until every
// observed AS-path of the training set is RIB-Out matched, the model
// stops changing, or the iteration budget is exhausted.
//
// Policies are per-prefix and cannot interfere across prefixes, but
// quasi-router duplications change the shared topology: a new quasi-router
// advertises routes for every prefix and can invalidate previously
// satisfied ones. Refine therefore runs to a fixpoint: the inner loop
// settles every prefix, then a verification sweep re-simulates all
// settled prefixes and re-opens any the topology growth broke, until a
// sweep finds nothing broken (or the iteration budget runs out).
func (m *Model) Refine(train *dataset.Dataset, cfg RefineConfig) (*RefineResult, error) {
	return m.RefineContext(context.Background(), train, cfg)
}

// RefineContext is Refine with cancellation. Interrupts are honoured at
// iteration boundaries only — the in-flight iteration always completes —
// so the model and worklist are in a consistent, checkpointable state
// when the run stops. On cancellation a final checkpoint is written (if
// checkpointing is enabled) and a *InterruptedError is returned carrying
// the iteration reached, the settled-prefix count and the checkpoint
// path.
func (m *Model) RefineContext(ctx context.Context, train *dataset.Dataset, cfg RefineConfig) (*RefineResult, error) {
	return newRefineRun(m, train, cfg).run(ctx)
}

// refineRun is the in-flight state of one refinement: everything a
// checkpoint must capture to resume (iteration counter, cumulative
// action tally, per-prefix worklist) plus the model itself.
type refineRun struct {
	m         *Model
	cfg       RefineConfig
	res       *RefineResult
	works     []*prefixWork
	maxIter   int
	iter      int
	cum       RefineActionCounts
	observing bool
	// span is the run's "model.refine" span (nil without a recorder);
	// iteration and verify-sweep child spans hang off it. Not part of the
	// checkpointable state.
	span *obs.Span

	// Speculative-refinement state (workers > 1 only; none of it is
	// checkpointed — clones and the action log are rebuilt on resume):
	// log is the canonical model's mutation history since the run (or
	// resume) started, recording kept on so pooled clones can be synced
	// by replay; pool holds the worker clones shared by the speculative
	// iterations and the parallel verify sweep.
	recording bool
	log       []refineAction
	pool      []*specClone
}

func newRefineRun(m *Model, train *dataset.Dataset, cfg RefineConfig) *refineRun {
	res := &RefineResult{}
	works, maxLen := m.buildWork(train, res)
	res.MaxPathLen = maxLen
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 4*maxLen + 8
	}
	rr := &refineRun{m: m, cfg: cfg, res: res, works: works, maxIter: maxIter, observing: cfg.Observer != nil}
	rr.recording = rr.workerCount() > 1
	return rr
}

func (rr *refineRun) name(w *prefixWork) string { return rr.m.Universe.Name(w.id) }

func (rr *refineRun) settledCount() int {
	n := 0
	for _, w := range rr.works {
		if w.done && w.ok {
			n++
		}
	}
	return n
}

// emit fills the shared bookkeeping of a RefineEvent from the works and
// the cumulative action tally, then hands it to the observer.
func (rr *refineRun) emit(ev RefineEvent) {
	ev.Iteration = rr.res.Iterations
	ev.CumulativeActions = rr.cum
	ev.QuasiRouters = rr.m.Net.NumRouters()
	for _, w := range rr.works {
		ev.Requirements += len(w.reqs)
		ev.RIBOutMatched += w.ribOut
		ev.PotentialMatched += w.potential
		ev.RIBInMatched += w.ribIn
		switch {
		case w.gaveUp:
			ev.PrefixesDiverged++
		case w.quarantined:
			ev.PrefixesQuarantined++
		case !w.done:
			ev.PrefixesOpen++
		case w.ok:
			ev.PrefixesSettled++
		default:
			ev.PrefixesStuck++
		}
	}
	if ev.Requirements > 0 {
		n := float64(ev.Requirements)
		ev.RIBOutFrac = float64(ev.RIBOutMatched) / n
		ev.PotentialFrac = float64(ev.PotentialMatched) / n
		ev.RIBInFrac = float64(ev.RIBInMatched) / n
	}
	rr.cfg.Observer(ev)
}

// runPrefix propagates one work item, honouring its per-prefix budget
// override (escalated retries) and the forceDiverge test seam.
func (rr *refineRun) runPrefix(w *prefixWork) error {
	if rr.cfg.forceDiverge != nil {
		if n := rr.cfg.forceDiverge[w.id]; n > 0 {
			rr.cfg.forceDiverge[w.id] = n - 1
			budget := w.budget
			if budget == 0 {
				budget = 1000
			}
			return &sim.DivergenceError{Prefix: w.id, Messages: budget + 1, Budget: budget}
		}
	}
	return rr.m.runPrefixBudget(context.Background(), w.id, w.budget)
}

// quarantine handles a divergence of w: the first one parks the prefix
// for the retry phase; a divergence after the escalated retry abandons
// it for good.
func (rr *refineRun) quarantine(w *prefixWork, derr *sim.DivergenceError) {
	w.done = true
	w.ok = false
	w.div = derr
	w.ribOut, w.potential, w.ribIn = 0, 0, 0
	if !w.retried {
		w.quarantined = true
		mQuarantined.Inc()
		if rr.cfg.Logf != nil {
			rr.cfg.Logf("refine: prefix %s diverged (%d messages, budget %d); quarantined",
				rr.name(w), derr.Messages, derr.Budget)
		}
		if rr.observing {
			rr.emit(RefineEvent{Type: "quarantine", Prefix: rr.name(w), Messages: derr.Messages, Budget: derr.Budget})
		}
		return
	}
	w.quarantined = false
	w.gaveUp = true
	rr.res.DivergedPrefixes++
	if rr.cfg.Logf != nil {
		rr.cfg.Logf("refine: prefix %s diverged again under escalated budget %d; giving up",
			rr.name(w), derr.Budget)
	}
	if rr.observing {
		rr.emit(RefineEvent{Type: "diverged", Prefix: rr.name(w), Messages: derr.Messages, Budget: derr.Budget})
	}
}

// retryQuarantined re-opens every quarantined prefix once, under an
// escalated message budget, and reports how many it re-opened.
func (rr *refineRun) retryQuarantined() int {
	n := 0
	for _, w := range rr.works {
		if !w.quarantined {
			continue
		}
		w.quarantined = false
		w.retried = true
		w.done = false
		w.ok = false
		w.budget = w.div.Budget * quarantineRetryFactor
		n++
		mQRetries.Inc()
		if rr.cfg.Logf != nil {
			rr.cfg.Logf("refine: retrying quarantined prefix %s with budget %d", rr.name(w), w.budget)
		}
		if rr.observing {
			rr.emit(RefineEvent{Type: "retry", Prefix: rr.name(w), RetryBudget: w.budget})
		}
	}
	return n
}

// verifySweep re-simulates every settled prefix and re-opens the ones
// later topology growth broke, returning how many it re-opened. The
// sweep only reads the model, so with cfg.Workers it fans the prefixes
// out across per-worker model clones (the forceDiverge test seam forces
// the sequential path: it decrements shared per-prefix counters).
// Outcomes are applied in worklist order either way, so the sweep is
// deterministic for any worker count. Worker spans attach under span
// (the caller's verify span; nil is fine).
func (rr *refineRun) verifySweep(span *obs.Span) (int, error) {
	var towork []*prefixWork
	for _, w := range rr.works {
		if w.done && !w.gaveUp && w.ok {
			towork = append(towork, w)
		}
	}
	workers := rr.workerCount()
	if workers > len(towork) {
		workers = len(towork)
	}
	span.Set(obs.A("prefixes", len(towork)), obs.VolatileAttr("workers", workers))
	reopened := 0
	if workers > 1 && rr.cfg.forceDiverge == nil {
		for i, o := range rr.verifyParallel(span, towork, rr.clonePool(workers)) {
			w := towork[i]
			if o.err != nil {
				return 0, o.err
			}
			if o.diverged {
				w.ok = false
				continue
			}
			if rr.observing {
				w.ribOut, w.potential, w.ribIn = o.ribOut, o.potential, o.ribIn
			}
			if o.unsat > 0 {
				w.done = false
				w.ok = false
				reopened++
			}
		}
		return reopened, nil
	}
	for _, w := range towork {
		if err := rr.runPrefix(w); err != nil {
			if errors.Is(err, sim.ErrDiverged) {
				w.ok = false
				continue
			}
			return 0, err
		}
		if rr.observing {
			w.ribOut, w.potential, w.ribIn = rr.m.matchCounts(w)
		}
		if rr.m.countUnsatisfied(w) > 0 {
			w.done = false
			w.ok = false
			reopened++
		}
	}
	return reopened, nil
}

// maybeCheckpoint writes a checkpoint if checkpointing is enabled and
// either force is set (cancellation) or the iteration interval elapsed.
// ctx bounds the retry backoff of the write itself: periodic calls pass
// the live refine ctx (a cancel aborts the backoff and the interrupt
// path takes over), the final forced checkpoint passes a
// non-cancelable ctx so it still retries transients after cancel.
func (rr *refineRun) maybeCheckpoint(ctx context.Context, force bool) error {
	cc := rr.cfg.Checkpoint
	if cc.Path == "" {
		return nil
	}
	every := cc.Every
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	if !force && rr.iter%every != 0 {
		return nil
	}
	if err := WriteCheckpointFileCtx(ctx, cc.Path, rr.snapshot()); err != nil {
		return fmt.Errorf("model: writing checkpoint: %w", err)
	}
	rr.res.Checkpoints++
	rr.res.LastCheckpoint = cc.Path
	mCheckpoints.Inc()
	mCkptIter.Set(int64(rr.iter))
	if rr.observing {
		rr.emit(RefineEvent{Type: "checkpoint", Checkpoint: cc.Path})
	}
	return nil
}

// checkInterrupt returns a *InterruptedError (after a best-effort final
// checkpoint) when ctx has been canceled; refinement calls it at
// iteration boundaries only, so the stored state is always consistent.
func (rr *refineRun) checkInterrupt(ctx context.Context) error {
	cause := ctx.Err()
	if cause == nil {
		return nil
	}
	mInterrupts.Inc()
	if err := rr.maybeCheckpoint(context.WithoutCancel(ctx), true); err != nil {
		cause = errors.Join(cause, err)
	}
	return &InterruptedError{
		Op:         "refine",
		Iterations: rr.res.Iterations,
		Prefixes:   rr.settledCount(),
		Checkpoint: rr.res.LastCheckpoint,
		Err:        cause,
	}
}

func (rr *refineRun) run(ctx context.Context) (*RefineResult, error) {
	m, res, cfg := rr.m, rr.res, rr.cfg
	_, span := obs.StartSpan(ctx, "model.refine",
		obs.A("prefixes", len(rr.works)), obs.A("max_iterations", rr.maxIter),
		obs.VolatileAttr("workers", cfg.Workers))
	defer span.End()
	rr.span = span
	for rr.iter < rr.maxIter {
		// Inner loop: settle every open prefix.
		for rr.iter < rr.maxIter {
			if err := rr.checkInterrupt(ctx); err != nil {
				return nil, err
			}
			rr.iter++
			res.Iterations = rr.iter
			mIterations.Inc() // live, so /metrics shows mid-run progress
			iterSpan := span.StartChild("iteration", obs.A("iteration", rr.iter))
			before := actionSnapshot(res)
			reservations := 0
			changedAny := false
			pending := 0
			conflicts := 0
			usedWorkers := 1
			var open []*prefixWork
			for _, w := range rr.works {
				if !w.done {
					open = append(open, w)
				}
			}
			if rr.recording && !cfg.disableSpeculation && len(open) > 1 {
				usedWorkers = rr.workerCount()
				if usedWorkers > len(open) {
					usedWorkers = len(open)
				}
				var serr error
				changedAny, pending, reservations, conflicts, serr = rr.iterateSpeculative(open, iterSpan)
				if serr != nil {
					return nil, serr
				}
			} else {
				for _, w := range open {
					if err := rr.runPrefix(w); err != nil {
						var derr *sim.DivergenceError
						if errors.As(err, &derr) {
							rr.quarantine(w, derr)
							continue
						}
						return nil, err
					}
					if rr.observing {
						w.ribOut, w.potential, w.ribIn = m.matchCounts(w)
					}
					al := &actionLog{m: m, res: res, record: rr.recording}
					changed, satisfied, resv := m.refinePrefix(w, cfg, al)
					rr.log = append(rr.log, al.recs...)
					reservations += resv
					if changed {
						changedAny = true
						pending++
						continue
					}
					w.done = true
					w.ok = satisfied
				}
			}
			if cfg.Logf != nil {
				cfg.Logf("refine: iteration %d: %d prefixes changed, %d quasi-routers, %d filters",
					rr.iter, pending, m.Net.NumRouters(), res.FiltersAdded-res.FiltersRemoved)
			}
			actions := actionSnapshot(res).diff(before)
			actions.Reservations = reservations
			iterSpan.Set(
				obs.A("changed", pending),
				obs.A("reservations", actions.Reservations),
				obs.A("filters_added", actions.FiltersAdded),
				obs.A("filters_removed", actions.FiltersRemoved),
				obs.A("med_rules", actions.MEDRules),
				obs.A("local_pref_rules", actions.LocalPrefRules),
				obs.A("duplications", actions.Duplications),
				obs.A("quasi_routers", m.Net.NumRouters()),
				// Worker count is configuration, conflict count follows it
				// (sequential iterations have no speculations to conflict),
				// so both stay out of the redacted trace.
				obs.VolatileAttr("workers", usedWorkers),
				obs.VolatileAttr("conflicts", conflicts))
			iterSpan.End()
			if rr.observing {
				rr.cum.add(actions)
				rr.emit(RefineEvent{Type: "iteration", Actions: actions})
			}
			if err := rr.maybeCheckpoint(ctx, false); err != nil {
				// A cancel that lands mid-backoff aborts the periodic
				// write; hand over to the interrupt path, which retries
				// the final checkpoint under a non-cancelable ctx.
				if ctx.Err() != nil {
					if ierr := rr.checkInterrupt(ctx); ierr != nil {
						return nil, ierr
					}
				}
				return nil, err
			}
			if !changedAny {
				break
			}
		}
		if err := rr.checkInterrupt(ctx); err != nil {
			return nil, err
		}
		// Verification sweep: re-open settled prefixes that later
		// topology growth invalidated.
		res.VerifyRounds++
		vspan := span.StartChild("verify", obs.A("round", res.VerifyRounds))
		reopened, err := rr.verifySweep(vspan)
		if err != nil {
			vspan.End()
			return nil, err
		}
		vspan.Set(obs.A("reopened", reopened))
		vspan.End()
		if cfg.Logf != nil && reopened > 0 {
			cfg.Logf("refine: verification reopened %d prefixes", reopened)
		}
		if rr.observing {
			rr.emit(RefineEvent{Type: "verify", PrefixesReopened: reopened, VerifyRound: res.VerifyRounds})
		}
		if reopened > 0 {
			continue
		}
		// Nothing broken: give quarantined prefixes their one escalated
		// retry; if any re-opened, keep refining, else we are done.
		if rr.retryQuarantined() == 0 {
			break
		}
	}

	if err := rr.finish(); err != nil {
		return nil, err
	}

	// Publish the run's work to the obs registry in one batch
	// (iterations were already counted live above).
	mRefines.Inc()
	mFiltersAdd.Add(int64(res.FiltersAdded))
	mFiltersDel.Add(int64(res.FiltersRemoved))
	mMEDRules.Add(int64(res.MEDRules))
	mLPRules.Add(int64(res.LocalPrefRules))
	mQRsAdded.Add(int64(res.QuasiRoutersAdded))
	mVerifies.Add(int64(res.VerifyRounds))
	mDivergedPx.Add(int64(res.DivergedPrefixes))
	mIterPerRun.ObserveInt(res.Iterations)
	return res, nil
}

// finish does the final accounting: re-simulate everything not settled,
// fold still-quarantined prefixes (iteration budget ran out before their
// retry) into the diverged count, and build the quarantine report.
func (rr *refineRun) finish() error {
	m, res := rr.m, rr.res
	res.Converged = true
	for _, w := range rr.works {
		if w.quarantined {
			w.quarantined = false
			w.gaveUp = true
			res.DivergedPrefixes++
		}
		if w.done && w.ok {
			continue
		}
		if w.gaveUp {
			res.Converged = false
			res.UnsatisfiedRequirements += len(w.reqs)
			continue
		}
		if err := rr.runPrefix(w); err != nil {
			var derr *sim.DivergenceError
			if errors.As(err, &derr) {
				w.div = derr
				w.gaveUp = true
				res.DivergedPrefixes++
				res.Converged = false
				res.UnsatisfiedRequirements += len(w.reqs)
				continue
			}
			return err
		}
		if rr.observing {
			w.ribOut, w.potential, w.ribIn = m.matchCounts(w)
		}
		unsat := m.countUnsatisfied(w)
		if unsat > 0 {
			res.Converged = false
			res.UnsatisfiedRequirements += unsat
		}
	}
	for _, w := range rr.works {
		if w.div == nil {
			continue
		}
		rec := QuarantineRecord{
			Prefix:    rr.name(w),
			Messages:  w.div.Messages,
			Budget:    w.div.Budget,
			Recovered: !w.gaveUp,
		}
		if w.retried {
			rec.RetryBudget = w.budget
		}
		res.Quarantined = append(res.Quarantined, rec)
		if rec.Recovered {
			mQRecovered.Inc()
		}
	}
	if rr.observing {
		rr.emit(RefineEvent{Type: "done", Converged: res.Converged})
	}
	return nil
}

// matchCounts classifies every requirement of w against the network's
// converged state for w.id (call after RunPrefix). The counts are
// cumulative thresholds mirroring §4.2 at requirement granularity:
// ribOut <= potential (lost at worst the router-ID tie-break) <= ribIn
// (present in some RIB-In at all).
func (m *Model) matchCounts(w *prefixWork) (ribOut, potential, ribIn int) {
	for _, rq := range w.reqs {
		matched := false
		for _, q := range m.qrs[rq.as] {
			if qrSatisfies(q, rq.suffix) {
				matched = true
				break
			}
		}
		if matched {
			ribOut++
			potential++
			ribIn++
			continue
		}
		// Look for the wanted route among the candidates and keep the
		// elimination step closest to winning (as metrics.Classify does).
		bestStep := bgp.StepNone
		found := false
		for _, q := range m.qrs[rq.as] {
			cands, elim := q.DecideRIB()
			for i, cand := range cands {
				if cand.Path.Equal(rq.suffix) {
					found = true
					if elim[i] > bestStep {
						bestStep = elim[i]
					}
				}
			}
		}
		if !found {
			continue
		}
		ribIn++
		if bestStep == bgp.StepRouterID {
			potential++
		}
	}
	return ribOut, potential, ribIn
}

// buildWork derives the deduplicated (AS, suffix) requirements per prefix.
// Requirements are ordered by suffix length (origin side first), matching
// the paper's walk from the origin toward the observation points.
func (m *Model) buildWork(train *dataset.Dataset, res *RefineResult) ([]*prefixWork, int) {
	var works []*prefixWork
	maxLen := 1
	for _, name := range train.Prefixes() {
		id, ok := m.Universe.ID(name)
		if !ok || len(m.origins(id)) == 0 {
			res.SkippedPrefixes++
			continue
		}
		w := &prefixWork{id: id}
		seen := make(map[bgp.ASN]map[bgp.PathKey]struct{})
		for _, paths := range train.ObservedPaths(name) {
			for _, p := range paths {
				if len(p) > maxLen {
					maxLen = len(p)
				}
				for i := range p {
					a := p[i]
					if len(m.qrs[a]) == 0 {
						continue // AS unknown to the model topology
					}
					suffix := p[i+1:]
					k := suffix.Key()
					set := seen[a]
					if set == nil {
						set = make(map[bgp.PathKey]struct{})
						seen[a] = set
					}
					if _, dup := set[k]; dup {
						continue
					}
					set[k] = struct{}{}
					w.reqs = append(w.reqs, requirement{as: a, suffix: suffix, key: k})
				}
			}
		}
		sort.Slice(w.reqs, func(i, j int) bool {
			ri, rj := w.reqs[i], w.reqs[j]
			if len(ri.suffix) != len(rj.suffix) {
				return len(ri.suffix) < len(rj.suffix)
			}
			if ri.as != rj.as {
				return ri.as < rj.as
			}
			return ri.key < rj.key
		})
		for as := range seen {
			w.reqASes = append(w.reqASes, as)
		}
		sort.Slice(w.reqASes, func(i, j int) bool { return w.reqASes[i] < w.reqASes[j] })
		works = append(works, w)
	}
	return works, maxLen
}

// qrSatisfies reports whether the quasi-router's current best route
// realizes the requirement suffix (locally originated for the empty
// suffix).
func qrSatisfies(q *sim.Router, suffix bgp.Path) bool {
	if len(suffix) == 0 {
		return q.Local() != nil && q.Best() == q.Local()
	}
	b := q.Best()
	return b != nil && b.Path.Equal(suffix)
}

func (m *Model) countUnsatisfied(w *prefixWork) int {
	unsat := 0
	for _, rq := range w.reqs {
		found := false
		for _, q := range m.qrs[rq.as] {
			if qrSatisfies(q, rq.suffix) {
				found = true
				break
			}
		}
		if !found {
			unsat++
		}
	}
	return unsat
}

// refinePrefix performs one heuristic iteration (Figure 6) for one prefix
// against the network's converged state. It returns whether the model was
// changed, whether every requirement was already RIB-Out matched, and how
// many quasi-router reservations pass 1 made (trace bookkeeping). Every
// model mutation goes through al (al.m == m), which bumps the result
// counters and — for speculative refinement — records replayable action
// records and undo state.
func (m *Model) refinePrefix(w *prefixWork, cfg RefineConfig, al *actionLog) (changed, satisfied bool, reservations int) {
	prefix := w.id
	type reqKey struct {
		as  bgp.ASN
		key bgp.PathKey
	}
	resvByQR := make(map[bgp.RouterID]bgp.PathKey)
	resvReq := make(map[reqKey]bool)

	// Pass 1: reserve quasi-routers that already RIB-Out match a
	// requirement (lowest ID first; one quasi-router per distinct suffix).
	for _, rq := range w.reqs {
		for _, q := range m.qrs[rq.as] {
			if _, taken := resvByQR[q.ID]; taken {
				continue
			}
			if qrSatisfies(q, rq.suffix) {
				resvByQR[q.ID] = rq.key
				resvReq[reqKey{rq.as, rq.key}] = true
				reservations++
				break
			}
		}
	}

	satisfied = true
	for _, rq := range w.reqs {
		if resvReq[reqKey{rq.as, rq.key}] {
			continue
		}
		satisfied = false
		if len(rq.suffix) == 0 {
			continue // origination is structural; nothing to adjust
		}

		// RIB-In matches: quasi-routers that learned the wanted route,
		// with the session that delivered it.
		type inMatch struct {
			q    *sim.Router
			from *sim.Peer
		}
		var all []inMatch
		var free []inMatch
		for _, q := range m.qrs[rq.as] {
			routes, from := q.RIBIn()
			for i, rt := range routes {
				if rt.Path.Equal(rq.suffix) {
					im := inMatch{q, from[i]}
					all = append(all, im)
					if _, taken := resvByQR[q.ID]; !taken {
						free = append(free, im)
					}
					break
				}
			}
		}

		switch {
		case len(free) > 0:
			// RIB-In match at an unreserved quasi-router: adjust its
			// policies so the wanted route wins (§4.6).
			im := free[0]
			m.steerSelection(im.q, im.from, rq, prefix, cfg, al)
			resvByQR[im.q.ID] = rq.key
			resvReq[reqKey{rq.as, rq.key}] = true
			changed = true

		case len(all) > 0:
			// All RIB-In matches live on reserved quasi-routers:
			// duplicate one and adjust the copy.
			if cfg.DisableDuplication {
				continue
			}
			src := all[0]
			nq, err := al.duplicateQR(src.q)
			if err != nil {
				continue
			}
			// The copy's RIB-In materializes next run; use the source's
			// RIB-In as the proxy for policy synthesis.
			from := nq.PeerTo(src.from.Remote.ID)
			m.steerSelectionProxy(nq, src.q, from, rq, prefix, cfg, al)
			resvByQR[nq.ID] = rq.key
			resvReq[reqKey{rq.as, rq.key}] = true
			changed = true

		default:
			// No RIB-In anywhere: either the upstream AS is not ready yet
			// (fixed in a later iteration) or one of our own filters
			// blocks the observed path (Figure 7 — delete it).
			if m.unblockPath(rq, prefix, cfg, al, resvByQR) {
				changed = true
			}
		}
	}
	return changed, satisfied, reservations
}

// steerSelection installs policies at quasi-router q so that the route
// delivered by `from` (carrying rq.suffix) becomes q's best: export
// filters at the announcing neighbors of strictly shorter contenders,
// plus a MED preference for the desired session (§4.6). With UseLocalPref
// the mechanism is a local-pref raise instead.
func (m *Model) steerSelection(q *sim.Router, from *sim.Peer, rq requirement, prefix bgp.PrefixID, cfg RefineConfig, al *actionLog) {
	al.clearImports(q, prefix)
	if cfg.UseLocalPref {
		al.setImportLocalPref(from, prefix, 200)
		return
	}
	routes, fromPeers := q.RIBIn()
	for i, rt := range routes {
		if len(rt.Path) >= len(rq.suffix) {
			continue
		}
		// Filter at the announcing neighbor: deny its export toward q.
		ann := fromPeers[i].Remote.PeerTo(q.ID)
		if ann != nil && !ann.ExportDenied(prefix) {
			al.denyExport(ann, prefix)
		}
	}
	if !cfg.DisableMED {
		al.setImportMED(from, prefix, 0)
	}
}

// steerSelectionProxy is steerSelection for a freshly duplicated
// quasi-router nq whose RIB-In is still empty: the source's RIB-In stands
// in for the contenders nq will receive after the next run.
func (m *Model) steerSelectionProxy(nq, src *sim.Router, from *sim.Peer, rq requirement, prefix bgp.PrefixID, cfg RefineConfig, al *actionLog) {
	al.clearImports(nq, prefix)
	if cfg.UseLocalPref {
		if from != nil {
			al.setImportLocalPref(from, prefix, 200)
		}
		return
	}
	routes, fromPeers := src.RIBIn()
	for i, rt := range routes {
		if len(rt.Path) >= len(rq.suffix) {
			continue
		}
		ann := fromPeers[i].Remote.PeerTo(nq.ID)
		if ann != nil && !ann.ExportDenied(prefix) {
			al.denyExport(ann, prefix)
		}
	}
	if !cfg.DisableMED && from != nil {
		al.setImportMED(from, prefix, 0)
	}
}

// unblockPath handles the no-RIB-In case of the heuristic: when the
// announcing neighbor AS already RIB-Out matches its suffix, a previously
// installed export filter must be blocking the observed path (Figure 7).
// The filter is removed if re-admitting the route cannot evict a reserved
// route (admitted path not shorter than the receiver's desired path);
// otherwise a quasi-router of the receiving AS is duplicated so an
// unfiltered session exists next iteration.
func (m *Model) unblockPath(rq requirement, prefix bgp.PrefixID, cfg RefineConfig, al *actionLog, resvByQR map[bgp.RouterID]bgp.PathKey) bool {
	neighbor := rq.suffix[0]
	nSuffix := rq.suffix[1:]
	var nq *sim.Router
	for _, q := range m.qrs[neighbor] {
		if qrSatisfies(q, nSuffix) {
			nq = q
			break
		}
	}
	if nq == nil {
		return false // upstream not ready; a later iteration will fix it
	}
	var blocked []*sim.Peer
	for _, p := range nq.Peers() {
		if p.Remote.AS == rq.as && p.ExportDenied(prefix) {
			blocked = append(blocked, p)
		}
	}
	for _, p := range blocked {
		if key, taken := resvByQR[p.Remote.ID]; taken && len(rq.suffix) < key.Len() {
			continue // unsafe: the admitted route would evict the reserved one
		}
		al.allowExport(p, prefix)
		return true
	}
	if len(blocked) == 0 || cfg.DisableDuplication {
		return false
	}
	// Every filtered session points at a reserved quasi-router that the
	// admitted route would evict: grow the AS instead.
	nqr, err := al.duplicateQR(blocked[0].Remote)
	if err != nil {
		return false
	}
	al.clearImports(nqr, prefix)
	return true
}
