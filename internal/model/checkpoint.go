package model

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"asmodel/internal/dataset"
	"asmodel/internal/durable"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

// The refinement checkpoint is a versioned, line-oriented text format —
// same family as the model serialization it embeds — capturing
// everything refineRun needs to continue after a crash or interrupt:
// the iteration counter, verify-round count, cumulative action tallies,
// the per-prefix worklist (state, retry/budget escalation, divergence
// context) and the model itself via model.Save. The embedded model's
// "end" trailer doubles as the checkpoint trailer, so truncation
// anywhere in the file is detected on load.
const checkpointMagic = "asmodel-checkpoint-v1"

// StreamCursorMagic heads a streaming-refinement state file
// (internal/stream): a source-position cursor followed by an embedded
// asmodel-checkpoint-v1 stream, committed in one atomic write so a
// batch's model and cursor can never be observed apart. The constant
// lives here because LoadCheckpoint understands the envelope: pointing
// asmodeld (or any checkpoint consumer) at a stream state file serves
// the embedded model directly — the hot-swap handoff from `asmodel
// stream` to a running `asmodeld -watch`.
const StreamCursorMagic = "asmodel-stream-cursor-v1"

// DefaultCheckpointEvery is the checkpoint interval (in refinement
// iterations) used when CheckpointConfig.Every is zero.
const DefaultCheckpointEvery = 10

// CheckpointConfig enables crash-safe refinement checkpointing.
type CheckpointConfig struct {
	// Path is the checkpoint file; empty disables checkpointing. Writes
	// are atomic (temp file + rename), so a crash mid-write leaves the
	// previous checkpoint intact.
	Path string
	// Every writes a checkpoint after every N iterations (0 selects
	// DefaultCheckpointEvery). A final checkpoint is also written when a
	// canceled context stops the run.
	Every int
}

// Checkpoint is a restorable snapshot of an in-flight refinement.
type Checkpoint struct {
	// Iteration and VerifyRounds are the loop counters at snapshot time.
	Iteration    int
	VerifyRounds int
	// Cumulative is the trace observer's cumulative action tally.
	Cumulative RefineActionCounts
	// Result carries the partial result counters (actions performed,
	// diverged prefixes). Derived fields — SkippedPrefixes, MaxPathLen,
	// match fractions — are recomputed on resume.
	Result RefineResult
	// Works is the per-prefix worklist state.
	Works []CheckpointWork
	// Model is the model as of the snapshot.
	Model *Model
	// Source is the file the checkpoint loaded from — the primary path
	// or its ".bak" fallback. Set by LoadCheckpointFile, not serialized.
	Source string
}

// CheckpointWork is the serialized state of one prefix's refinement.
type CheckpointWork struct {
	Prefix  string
	State   string // "open", "settled", "stuck", "quarantined" or "gaveup"
	Retried bool
	Budget  int
	// DivMessages/DivBudget preserve the divergence context (zero when
	// the prefix never diverged).
	DivMessages int
	DivBudget   int
}

func workState(w *prefixWork) string {
	switch {
	case w.gaveUp:
		return "gaveup"
	case w.quarantined:
		return "quarantined"
	case !w.done:
		return "open"
	case w.ok:
		return "settled"
	default:
		return "stuck"
	}
}

// snapshot captures the run's restorable state as a Checkpoint.
func (rr *refineRun) snapshot() *Checkpoint {
	cp := &Checkpoint{
		Iteration:    rr.iter,
		VerifyRounds: rr.res.VerifyRounds,
		Cumulative:   rr.cum,
		Result:       *rr.res,
		Model:        rr.m,
	}
	for _, w := range rr.works {
		cw := CheckpointWork{
			Prefix:  rr.name(w),
			State:   workState(w),
			Retried: w.retried,
			Budget:  w.budget,
		}
		if w.div != nil {
			cw.DivMessages, cw.DivBudget = w.div.Messages, w.div.Budget
		}
		cp.Works = append(cp.Works, cw)
	}
	return cp
}

// WriteCheckpoint serializes the checkpoint to w.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	if cp.Model == nil {
		return fmt.Errorf("model: checkpoint has no model")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, checkpointMagic)
	fmt.Fprintf(bw, "iteration %d\n", cp.Iteration)
	fmt.Fprintf(bw, "verify-rounds %d\n", cp.VerifyRounds)
	c := cp.Cumulative
	fmt.Fprintf(bw, "cumulative %d %d %d %d %d %d\n",
		c.Reservations, c.FiltersAdded, c.FiltersRemoved, c.MEDRules, c.LocalPrefRules, c.Duplications)
	r := cp.Result
	fmt.Fprintf(bw, "counters %d %d %d %d %d %d\n",
		r.QuasiRoutersAdded, r.FiltersAdded, r.FiltersRemoved, r.MEDRules, r.LocalPrefRules, r.DivergedPrefixes)
	for _, cw := range cp.Works {
		retried := 0
		if cw.Retried {
			retried = 1
		}
		fmt.Fprintf(bw, "work %s %s %d %d %d %d\n",
			cw.Prefix, cw.State, retried, cw.Budget, cw.DivMessages, cw.DivBudget)
	}
	fmt.Fprintln(bw, "model")
	if err := bw.Flush(); err != nil {
		return err
	}
	// The model's own "end" trailer terminates the checkpoint.
	return cp.Model.Save(w)
}

var mCkptRetries = obs.GetCounter("checkpoint_write_retries",
	"transient checkpoint write errors retried")

// checkpointWriteWrap, when non-nil, wraps the raw checkpoint file
// writer — the seam fault-injection tests use to corrupt or fail
// checkpoint writes beneath the retry layer. It must only be set while
// no checkpoint write is in flight.
var checkpointWriteWrap func(io.Writer) io.Writer

// WriteCheckpointFile writes the checkpoint atomically and durably: the
// payload goes to path+".tmp" (fsynced) and is renamed over path, so a
// crash mid-write never clobbers the previous checkpoint; transient
// write errors are retried with bounded backoff; and the previous
// checkpoint is kept as path+".bak", which LoadCheckpointFile falls
// back to when the primary is corrupt.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	return WriteCheckpointFileCtx(context.Background(), path, cp)
}

// WriteCheckpointFileCtx is WriteCheckpointFile with cancellation:
// retry backoff between transient write failures aborts once ctx is
// done, so an interrupted refinement doesn't spend its shutdown
// deadline sleeping. The final forced checkpoint on interrupt passes a
// non-cancelable ctx (context.WithoutCancel) so it still retries.
func WriteCheckpointFileCtx(ctx context.Context, path string, cp *Checkpoint) error {
	pol := durable.Policy{
		OnRetry:    func(error) { mCkptRetries.Inc() },
		WrapWriter: checkpointWriteWrap,
	}
	return durable.WriteFileAtomicCtx(ctx, path, pol, func(w io.Writer) error {
		return WriteCheckpoint(w, cp)
	})
}

// LoadCheckpoint reads a checkpoint written by WriteCheckpoint. A
// truncated stream yields a descriptive error (the embedded model's
// "end" trailer is the integrity marker), never a short checkpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	sc := newModelScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("model: not a refinement checkpoint (missing %q header)", checkpointMagic)
	}
	lineNo := 1
	if sc.Text() == StreamCursorMagic {
		// A stream state file: skip the cursor directives (the stream
		// layer parses them; here they are opaque) down to the embedded
		// checkpoint, then read it as usual.
		for {
			if !sc.Scan() {
				if err := sc.Err(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("model: stream state truncated after line %d (missing embedded %q)", lineNo, checkpointMagic)
			}
			lineNo++
			if sc.Text() == checkpointMagic {
				break
			}
		}
	} else if sc.Text() != checkpointMagic {
		return nil, fmt.Errorf("model: not a refinement checkpoint (missing %q header)", checkpointMagic)
	}
	cp := &Checkpoint{}
	intField := func(s string) (int, bool) {
		v, err := strconv.Atoi(s)
		return v, err == nil
	}
scan:
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(why string) error {
			return fmt.Errorf("model: checkpoint line %d: %s: %q", lineNo, why, line)
		}
		switch f[0] {
		case "iteration", "verify-rounds":
			if len(f) != 2 {
				return nil, fail("needs one value")
			}
			v, ok := intField(f[1])
			if !ok {
				return nil, fail("bad count")
			}
			if f[0] == "iteration" {
				cp.Iteration = v
			} else {
				cp.VerifyRounds = v
			}
		case "cumulative", "counters":
			if len(f) != 7 {
				return nil, fail("needs 6 values")
			}
			vals := make([]int, 6)
			for i := range vals {
				v, ok := intField(f[i+1])
				if !ok {
					return nil, fail("bad count")
				}
				vals[i] = v
			}
			if f[0] == "cumulative" {
				cp.Cumulative = RefineActionCounts{
					Reservations: vals[0], FiltersAdded: vals[1], FiltersRemoved: vals[2],
					MEDRules: vals[3], LocalPrefRules: vals[4], Duplications: vals[5],
				}
			} else {
				cp.Result.QuasiRoutersAdded = vals[0]
				cp.Result.FiltersAdded = vals[1]
				cp.Result.FiltersRemoved = vals[2]
				cp.Result.MEDRules = vals[3]
				cp.Result.LocalPrefRules = vals[4]
				cp.Result.DivergedPrefixes = vals[5]
			}
		case "work":
			if len(f) != 7 {
				return nil, fail("needs prefix, state, retried, budget, div-messages, div-budget")
			}
			switch f[2] {
			case "open", "settled", "stuck", "quarantined", "gaveup":
			default:
				return nil, fail("unknown work state")
			}
			retried, ok1 := intField(f[3])
			budget, ok2 := intField(f[4])
			divMsgs, ok3 := intField(f[5])
			divBudget, ok4 := intField(f[6])
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return nil, fail("bad counts")
			}
			cp.Works = append(cp.Works, CheckpointWork{
				Prefix: f[1], State: f[2], Retried: retried != 0,
				Budget: budget, DivMessages: divMsgs, DivBudget: divBudget,
			})
		case "model":
			// The embedded model starts with its own magic line (it is a
			// verbatim model.Save stream).
			if !sc.Scan() {
				return nil, fmt.Errorf("model: truncated checkpoint after line %d (missing embedded model)", lineNo)
			}
			lineNo++
			if sc.Text() != saveMagic {
				return nil, fmt.Errorf("model: checkpoint line %d: embedded model missing %q header", lineNo, saveMagic)
			}
			m, err := loadModelBody(sc, &lineNo, false)
			if err != nil {
				return nil, err
			}
			cp.Model = m
			break scan
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cp.Model == nil {
		return nil, fmt.Errorf("model: truncated checkpoint after line %d (missing model section)", lineNo)
	}
	return cp, nil
}

// LoadCheckpointFile reads a checkpoint from disk. When the primary
// file is corrupt or truncated it falls back to the path+".bak" copy of
// the previous good checkpoint (kept by WriteCheckpointFile); the
// returned checkpoint's Source records which file actually loaded. Both
// failing yields the primary's error wrapped with the fallback's.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	cp, err := loadCheckpointPath(path)
	if err == nil {
		cp.Source = path
		return cp, nil
	}
	if os.IsNotExist(err) {
		return nil, err
	}
	bak := path + ".bak"
	bcp, berr := loadCheckpointPath(bak)
	if berr != nil {
		if os.IsNotExist(berr) {
			return nil, err
		}
		return nil, fmt.Errorf("%w (fallback %v)", err, berr)
	}
	bcp.Source = bak
	return bcp, nil
}

func loadCheckpointPath(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cp, nil
}

// restore rebuilds the run's loop counters and worklist state from a
// checkpoint. The worklist itself (requirements, ordering) is derived
// from the training set exactly as in a fresh run, so the checkpoint
// only needs each prefix's progress, not its requirements.
func (rr *refineRun) restore(cp *Checkpoint) error {
	if len(cp.Works) != len(rr.works) {
		return fmt.Errorf("model: checkpoint covers %d prefixes but the training set yields %d (dataset mismatch?)",
			len(cp.Works), len(rr.works))
	}
	byName := make(map[string]*prefixWork, len(rr.works))
	for _, w := range rr.works {
		byName[rr.name(w)] = w
	}
	for _, cw := range cp.Works {
		w := byName[cw.Prefix]
		if w == nil {
			return fmt.Errorf("model: checkpoint prefix %q not in the training set", cw.Prefix)
		}
		switch cw.State {
		case "open":
		case "settled":
			w.done, w.ok = true, true
		case "stuck":
			w.done = true
		case "quarantined":
			w.done, w.quarantined = true, true
		case "gaveup":
			w.done, w.gaveUp = true, true
		default:
			return fmt.Errorf("model: checkpoint prefix %q has unknown state %q", cw.Prefix, cw.State)
		}
		w.retried = cw.Retried
		w.budget = cw.Budget
		if cw.DivMessages > 0 || cw.DivBudget > 0 {
			w.div = &sim.DivergenceError{Prefix: w.id, Messages: cw.DivMessages, Budget: cw.DivBudget}
		}
	}
	rr.iter = cp.Iteration
	rr.cum = cp.Cumulative
	res := rr.res
	res.Iterations = cp.Iteration
	res.VerifyRounds = cp.VerifyRounds
	res.QuasiRoutersAdded = cp.Result.QuasiRoutersAdded
	res.FiltersAdded = cp.Result.FiltersAdded
	res.FiltersRemoved = cp.Result.FiltersRemoved
	res.MEDRules = cp.Result.MEDRules
	res.LocalPrefRules = cp.Result.LocalPrefRules
	res.DivergedPrefixes = cp.Result.DivergedPrefixes
	res.ResumedFrom = cp.Iteration
	return nil
}

// ResumeRefine continues a checkpointed refinement against the same
// training set: the checkpoint's model picks up at the stored iteration
// with the stored worklist state, and the run proceeds exactly as the
// uninterrupted one would have — the determinism contract extends
// across the checkpoint boundary, so the resumed run converges to the
// same final match fractions and action counts.
func ResumeRefine(ctx context.Context, cp *Checkpoint, train *dataset.Dataset, cfg RefineConfig) (*RefineResult, error) {
	if cp.Model == nil {
		return nil, fmt.Errorf("model: checkpoint has no model")
	}
	rr := newRefineRun(cp.Model, train, cfg)
	if err := rr.restore(cp); err != nil {
		return nil, err
	}
	return rr.run(ctx)
}
