package model

import (
	"bytes"
	"strings"
	"testing"

	"asmodel/internal/dataset"
	"asmodel/internal/topology"
)

// refineSample builds and refines a model with duplicates and policies.
func refineSample(t *testing.T) (*Model, *dataset.Dataset) {
	t.Helper()
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
		rec("op1", "P3", 1, 3),
		rec("op5", "P4", 5, 1, 2, 4),
	}}
	g := topology.FromDataset(ds)
	u := dataset.NewUniverse(ds)
	m, err := NewInitial(g, u)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sample refinement did not converge: %+v", res)
	}
	return m, ds
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, ds := refineSample(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Identical structure.
	s1, s2 := m.Stats(), m2.Stats()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if m2.Universe.Len() != m.Universe.Len() {
		t.Fatal("universe size differs")
	}

	// Identical predictions on every prefix and observation AS.
	for _, name := range ds.Prefixes() {
		for _, asn := range ds.ObsASes() {
			p1, err1 := m.PredictPaths(name, asn)
			p2, err2 := m2.PredictPaths(name, asn)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch for %s@%d: %v vs %v", name, asn, err1, err2)
			}
			if len(p1) != len(p2) {
				t.Fatalf("prediction count differs for %s@%d: %v vs %v", name, asn, p1, p2)
			}
			for i := range p1 {
				if !p1[i].Equal(p2[i]) {
					t.Fatalf("prediction differs for %s@%d: %v vs %v", name, asn, p1, p2)
				}
			}
		}
	}

	// Identical evaluation.
	ev1, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := m2.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Summary.String() != ev2.Summary.String() {
		t.Fatalf("evaluations differ: %v vs %v", ev1.Summary, ev2.Summary)
	}

	// Double round trip is byte-identical (canonical form).
	var buf2 bytes.Buffer
	if err := m2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("second save differs from first (non-canonical serialization)")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",                           // no header
		"garbage\n",                  // wrong header
		"asmodel-model-v1\nprefix\n", // prefix without name
		"asmodel-model-v1\nas 1\n",   // as without count
		"asmodel-model-v1\nas 1 0\n", // zero quasi-routers
		"asmodel-model-v1\nsession x y\n",
		"asmodel-model-v1\nwhat 1 2\n", // unknown directive
		"asmodel-model-v1\nas 1 1\nas 2 1\ndeny 65536 131072 0\n", // deny without session
		"asmodel-model-v1\nsession 65536 131072\n",                // session with unknown routers
		"asmodel-model-v1\nas 1 1\nas 2 1\nimport 65536 131072 0 m x 0\n",
		"asmodel-model-v1\ndeny 65536 131072\n",   // truncated deny (regression: used to panic)
		"asmodel-model-v1\nsession 65536\n",       // truncated session
		"asmodel-model-v1\nimport 65536 131072\n", // truncated import
		"asmodel-model-v2\nas 1 1\n",              // v2 without end trailer
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

// TestLoadTruncated: every proper byte-prefix of a saved model must be
// rejected with an error — never loaded short, never a panic. The v2
// "end" trailer makes line-boundary truncation detectable.
func TestLoadTruncated(t *testing.T) {
	m, _ := refineSample(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// data[:len-1] only drops the trailing newline of "end" and is still a
	// complete model; anything shorter is a truncation.
	if _, err := Load(bytes.NewReader(data[:len(data)-1])); err != nil {
		t.Fatalf("missing final newline rejected: %v", err)
	}
	for i := 0; i < len(data)-1; i++ {
		if _, err := Load(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("truncation at byte %d of %d loaded without error:\n%q", i, len(data), data[:i])
		}
	}
}

// TestLoadLegacyV1 keeps the pre-trailer format loadable: v1 files have
// no "end" line and parse to EOF.
func TestLoadLegacyV1(t *testing.T) {
	m, _ := refineSample(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := strings.Replace(buf.String(), saveMagic+"\n", saveMagicV1+"\n", 1)
	v1 = strings.TrimSuffix(v1, "end\n")
	m2, err := Load(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 legacy model rejected: %v", err)
	}
	if m.Stats() != m2.Stats() {
		t.Fatalf("v1 load differs: %+v vs %+v", m.Stats(), m2.Stats())
	}
}

func TestLoadIgnoresCommentsAndBlanks(t *testing.T) {
	m, _ := refineSample(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	padded := strings.Replace(buf.String(), "\n", "\n# comment\n\n", 1)
	if _, err := Load(strings.NewReader(padded)); err != nil {
		t.Fatalf("comments/blanks should be ignored: %v", err)
	}
}

func TestSaveLoadPreservesImportDeny(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{rec("op1", "P2", 1, 2)}}
	g := topology.FromDataset(ds)
	m, err := NewInitial(g, dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	q1 := m.QuasiRouters(1)[0]
	q2 := m.QuasiRouters(2)[0]
	q1.PeerTo(q2.ID).DenyImport(0)
	q1.PeerTo(q2.ID).SetImportLocalPref(0, 42)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := m2.Universe.ID("P2")
	if err := m2.RunPrefix(id); err != nil {
		t.Fatal(err)
	}
	if m2.QuasiRouters(1)[0].Best() != nil {
		t.Error("import deny lost in round trip")
	}
}
