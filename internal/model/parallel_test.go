package model

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"asmodel/internal/dataset"
	"asmodel/internal/topology"
)

// refinedFixture builds the initial model over the full dataset and
// refines it on an observation-point split.
func refinedFixture(t testing.TB, seed int64, cfg RefineConfig) (*Model, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	full := genDataset(t, seed)
	train, valid := full.SplitByObsPoint(0.5, seed)
	g := topology.FromDataset(full)
	u := dataset.NewUniverse(full)
	m, err := NewInitial(g, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refine(train, cfg); err != nil {
		t.Fatal(err)
	}
	return m, train, valid
}

// TestEvaluateParallelDeterminism checks the tentpole guarantee: for any
// worker count, EvaluateParallel returns exactly what the sequential
// evaluation does — same summary, coverage, skip and divergence records —
// across several generator seeds and on both split halves.
func TestEvaluateParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	counts := []int{1, 2, 4, DefaultWorkers()}
	for _, seed := range []int64{31, 32, 33} {
		m, train, valid := refinedFixture(t, seed, RefineConfig{})
		for _, ds := range []*dataset.Dataset{train, valid} {
			want, err := m.Evaluate(ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range counts {
				got, err := m.EvaluateParallel(context.Background(), ds, w)
				if err != nil {
					t.Fatalf("seed %d workers %d: %v", seed, w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d workers %d: parallel evaluation differs from sequential:\n got %+v\nwant %+v",
						seed, w, got, want)
				}
			}
		}
	}
}

// TestEvaluateParallelDivergences drops the message budget so most
// prefixes diverge, then checks the parallel path reports the exact same
// divergence records (count, order, per-prefix context) as the
// sequential one.
func TestEvaluateParallelDivergences(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	m, _, valid := refinedFixture(t, 31, RefineConfig{})
	m.Net.MaxMessages = 40
	want, err := m.Evaluate(valid)
	if err != nil {
		t.Fatal(err)
	}
	if want.Diverged == 0 {
		t.Fatal("fixture produced no divergences; budget not low enough to exercise the path")
	}
	got, err := m.EvaluateParallel(context.Background(), valid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("divergent evaluation differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestEvaluateParallelCanceled checks the cancellation contract matches
// EvaluateContext: a canceled context yields a *InterruptedError.
func TestEvaluateParallelCanceled(t *testing.T) {
	ds := genDataset(t, 31)
	g := topology.FromDataset(ds)
	m, err := NewInitial(g, dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.EvaluateParallel(ctx, ds, 4)
	var ierr *InterruptedError
	if !errors.As(err, &ierr) {
		t.Fatalf("EvaluateParallel on canceled context: got %v, want *InterruptedError", err)
	}
	if ierr.Op != "evaluate" {
		t.Errorf("interrupt op = %q, want evaluate", ierr.Op)
	}
}

// TestEvaluateParallelConcurrentReads runs an 8-worker evaluation while
// the source model is read concurrently; -race turns any sharing bug in
// Model.Clone into a failure.
func TestEvaluateParallelConcurrentReads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	m, _, valid := refinedFixture(t, 31, RefineConfig{})
	done := make(chan error, 1)
	go func() {
		_, err := m.EvaluateParallel(context.Background(), valid, 8)
		done <- err
	}()
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return
		default:
			_ = m.Stats()
			_ = m.QuasiRouterHistogram()
			_ = m.NumQuasiRouters()
		}
	}
}

// TestModelCloneIsolation grows a clone's topology and policies and
// checks the source model is untouched and still evaluates identically.
func TestModelCloneIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	m, _, valid := refinedFixture(t, 32, RefineConfig{})
	wantStats := m.Stats()
	want, err := m.Evaluate(valid)
	if err != nil {
		t.Fatal(err)
	}

	clone := m.Clone()
	if got := clone.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("clone stats differ from source: got %+v want %+v", got, wantStats)
	}
	for _, r := range clone.Net.Routers() {
		for _, p := range r.Peers() {
			p.DenyExport(0)
			p.SetImportMED(1, 7)
		}
	}
	if _, err := clone.DuplicateQR(clone.Net.Routers()[0]); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Errorf("source stats changed by clone mutation: got %+v want %+v", got, wantStats)
	}
	got, err := m.Evaluate(valid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("source evaluation changed by clone mutation")
	}
}

// TestRefineWorkersDeterminism refines two identical initial models, one
// with the sequential verify sweep and one with a 4-worker pool, and
// checks the refinements are indistinguishable: same result counters,
// same serialized model bytes, same trace event stream.
func TestRefineWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	full := genDataset(t, 33)
	train, _ := full.SplitByObsPoint(0.5, 33)
	g := topology.FromDataset(full)
	u := dataset.NewUniverse(full)

	run := func(workers int) (*RefineResult, []RefineEvent, []byte) {
		m, err := NewInitial(g, u)
		if err != nil {
			t.Fatal(err)
		}
		var events []RefineEvent
		res, err := m.Refine(train, RefineConfig{
			Workers:  workers,
			Observer: func(ev RefineEvent) { events = append(events, ev) },
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return res, events, buf.Bytes()
	}

	seqRes, seqEvents, seqBytes := run(0)
	parRes, parEvents, parBytes := run(4)
	if !reflect.DeepEqual(parRes, seqRes) {
		t.Errorf("refine results differ:\n seq %+v\n par %+v", seqRes, parRes)
	}
	if !reflect.DeepEqual(parEvents, seqEvents) {
		t.Errorf("trace streams differ: seq %d events, par %d events", len(seqEvents), len(parEvents))
	}
	if !bytes.Equal(parBytes, seqBytes) {
		t.Errorf("serialized models differ: seq %d bytes, par %d bytes", len(seqBytes), len(parBytes))
	}
}
