package model

import (
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/relation"
)

// ApplyRelationshipPolicies installs the §3.3 baseline policies on the
// model: local-pref ranking by inferred relationship plus valley-free
// export rules. Meaningful on the initial single-quasi-router model
// (Table 2, "Customer/Peering Policies" column).
func (m *Model) ApplyRelationshipPolicies(inf *relation.Inference) {
	relation.ApplyPolicies(m.Net, inf)
}

// ClearHooks removes all import/export hooks (reverting relationship
// policies), leaving per-prefix policies intact.
func (m *Model) ClearHooks() {
	for _, r := range m.Net.Routers() {
		for _, p := range r.Peers() {
			p.ImportHook = nil
			p.ExportHook = nil
		}
	}
}

// PredictPaths simulates the prefix and returns the distinct AS-paths the
// given AS selects (one per quasi-router), each prepended with the AS
// itself so they are comparable with dataset records. The result is
// sorted and de-duplicated.
func (m *Model) PredictPaths(prefixName string, obsAS bgp.ASN) ([]bgp.Path, error) {
	id, ok := m.Universe.ID(prefixName)
	if !ok {
		return nil, errUnknownPrefix(prefixName)
	}
	if err := m.RunPrefix(id); err != nil {
		return nil, err
	}
	seen := make(map[bgp.PathKey]bgp.Path)
	for _, q := range m.qrs[obsAS] {
		if b := q.Best(); b != nil {
			p := b.Path.Prepend(obsAS)
			seen[p.Key()] = p
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := make([]bgp.Path, len(keys))
	for i, k := range keys {
		out[i] = seen[bgp.PathKey(k)]
	}
	return out, nil
}

type errUnknownPrefix string

func (e errUnknownPrefix) Error() string { return "model: unknown prefix " + string(e) }
