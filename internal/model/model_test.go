package model

import (
	"strings"

	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/metrics"
	"asmodel/internal/topology"
)

func rec(obs string, prefix string, path ...bgp.ASN) dataset.Record {
	return dataset.Record{Obs: dataset.ObsPointID(obs), ObsAS: path[0], Prefix: prefix, Path: bgp.Path(path)}
}

// buildModel constructs an initial model from a dataset plus optional
// extra AS edges (edges known from data outside the observed paths).
func buildModel(t *testing.T, ds *dataset.Dataset, extraEdges ...topology.Edge) *Model {
	t.Helper()
	g := topology.FromDataset(ds)
	for _, e := range extraEdges {
		g.AddEdge(e.A, e.B)
	}
	u := dataset.NewUniverse(ds)
	m, err := NewInitial(g, u)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// evaluateAll asserts the model RIB-Out matches all (or `want` fraction
// of) unique observed paths of ds.
func evaluateAll(t *testing.T, m *Model, ds *dataset.Dataset) *Evaluation {
	t.Helper()
	ev, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestInitialModel(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("a", "P4", 1, 2, 4),
		rec("a", "P5", 1, 2, 5),
	}}
	m := buildModel(t, ds)
	if m.NumQuasiRouters() != 4 {
		t.Fatalf("quasi-routers=%d want 4 (one per AS)", m.NumQuasiRouters())
	}
	if got := len(m.QuasiRouters(2)); got != 1 {
		t.Fatalf("AS2 has %d quasi-routers", got)
	}
	hist := m.QuasiRouterHistogram()
	if hist[1] != 1 || hist[4] != 1 {
		t.Errorf("histogram=%v", hist)
	}
	st := m.Stats()
	if st.ASes != 4 || st.QuasiRouters != 4 || st.Sessions != 3 || st.MaxQRsPerAS != 1 {
		t.Errorf("stats=%+v", st)
	}
	// Unknown prefix origination.
	if err := m.RunPrefix(999); err == nil {
		t.Error("RunPrefix with bad ID should fail")
	}
}

// TestRefineTieBreak reproduces the first half of the paper's Figure 5:
// the observed path loses the simulated tie-break and a per-prefix
// ranking policy must fix it.
func TestRefineTieBreak(t *testing.T) {
	// Diamond: origin AS4; AS1 observes [1 3 4] but the simulation picks
	// [1 2 4] (AS2 has the lower router ID).
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P4", 1, 3, 4),
	}}
	m := buildModel(t, ds, topology.MakeEdge(1, 2), topology.MakeEdge(2, 4))
	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("refinement did not converge: %+v", res)
	}
	if res.QuasiRoutersAdded != 0 {
		t.Errorf("no duplication should be needed, added %d", res.QuasiRoutersAdded)
	}
	if res.MEDRules == 0 {
		t.Error("expected a MED ranking rule")
	}
	ev := evaluateAll(t, m, ds)
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("training not fully matched: %v", ev.Summary)
	}
}

// TestRefineFigure5 reproduces the full Figure 5 walkthrough: prefix p1
// needs a ranking policy at AS1; prefix p2 needs a second quasi-router
// plus a filter and a ranking policy.
func TestRefineFigure5(t *testing.T) {
	// Topology (Figure 5): AS1-AS2, AS2-AS3, AS3-AS4, AS1-AS4, AS1-AS5,
	// AS4-AS5. p1 originated at AS3, p2 at AS4.
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P3", 1, 4, 3),  // p1: observed via AS4
		rec("op1", "P4", 1, 4),     // p2: direct
		rec("op1b", "P4", 1, 5, 4), // p2: also via AS5 -> needs 2nd quasi-router
	}}
	m := buildModel(t, ds, topology.MakeEdge(1, 2), topology.MakeEdge(2, 3))
	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if got := len(m.QuasiRouters(1)); got != 2 {
		t.Errorf("AS1 quasi-routers = %d, want 2", got)
	}
	if res.FiltersAdded == 0 {
		t.Error("expected a filter (deny AS4->AS1.b for p2)")
	}
	ev := evaluateAll(t, m, ds)
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("training not fully matched: %v", ev.Summary)
	}
	// Both observed paths for P4 must be predicted simultaneously.
	paths, err := m.PredictPaths("P4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("PredictPaths(P4, AS1) = %v, want both observed paths", paths)
	}
}

// TestRefineLongerPathPreferred: the observed path is strictly longer than
// the simulated one from a different neighbor, so an export filter (not
// just MED) is required.
func TestRefineLongerPathPreferred(t *testing.T) {
	// AS1 observes [1 5 6 4]; the direct edge 1-4 (known from P1's
	// observation) would win otherwise.
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P4", 1, 5, 6, 4),
		rec("op4", "P1", 4, 1), // creates edge 1-4 in the AS graph
	}}
	m := buildModel(t, ds)
	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if res.FiltersAdded == 0 {
		t.Error("expected export filters against the shorter path")
	}
	ev := evaluateAll(t, m, ds)
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("training not fully matched: %v", ev.Summary)
	}
}

// TestRefineFilterDeletion: a stale export filter blocks the observed
// path; the heuristic must delete it (Figure 7 mechanism).
func TestRefineFilterDeletion(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P4", 1, 7, 4),
	}}
	m := buildModel(t, ds)
	u := m.Universe
	id, _ := u.ID("P4")
	// Manually install a filter blocking AS7 -> AS1 for P4.
	q7 := m.QuasiRouters(7)[0]
	q1 := m.QuasiRouters(1)[0]
	q7.PeerTo(q1.ID).DenyExport(id)

	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if res.FiltersRemoved == 0 {
		t.Error("expected the blocking filter to be removed")
	}
	ev := evaluateAll(t, m, ds)
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("training not fully matched: %v", ev.Summary)
	}
}

// TestRefineDiversityAcrossNeighbors: AS1 observes two equal-length paths
// through different neighbors; one quasi-router cannot hold both.
func TestRefineDiversityAcrossNeighbors(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
	}}
	m := buildModel(t, ds)
	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if got := len(m.QuasiRouters(1)); got != 2 {
		t.Errorf("AS1 quasi-routers = %d, want 2", got)
	}
	ev := evaluateAll(t, m, ds)
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("training not fully matched: %v", ev.Summary)
	}
}

// TestRefineDeepDiversity: diversity three hops from the origin must
// propagate through intermediate ASes (multiple quasi-routers at several
// levels).
func TestRefineDeepDiversity(t *testing.T) {
	// Origin AS9. Paths diverge at AS5 (via 6 or 7) and are both carried
	// through AS3 and AS2 to the observation point AS1.
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P9", 1, 2, 3, 5, 6, 9),
		rec("op1b", "P9", 1, 2, 3, 5, 7, 9),
	}}
	m := buildModel(t, ds)
	res, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v (unsat=%d)", res, res.UnsatisfiedRequirements)
	}
	for _, asn := range []bgp.ASN{5, 3, 2, 1} {
		if got := len(m.QuasiRouters(asn)); got != 2 {
			t.Errorf("AS%d quasi-routers = %d, want 2", asn, got)
		}
	}
	ev := evaluateAll(t, m, ds)
	if ev.Summary.RIBOut != ev.Summary.Total {
		t.Fatalf("training not fully matched: %v", ev.Summary)
	}
}

func TestRefineAblationNoDuplication(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
	}}
	m := buildModel(t, ds)
	res, err := m.Refine(ds, RefineConfig{DisableDuplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge without duplication on diverse paths")
	}
	if res.QuasiRoutersAdded != 0 {
		t.Error("duplication happened despite being disabled")
	}
	if res.UnsatisfiedRequirements == 0 {
		t.Error("expected unsatisfied requirements")
	}
}

func TestRefineAblationLocalPref(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P4", 1, 3, 4),
	}}
	m := buildModel(t, ds, topology.MakeEdge(1, 2), topology.MakeEdge(2, 4))
	res, err := m.Refine(ds, RefineConfig{UseLocalPref: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalPrefRules == 0 {
		t.Error("expected local-pref rules")
	}
	if res.MEDRules != 0 || res.FiltersAdded != 0 {
		t.Error("local-pref mode should not add MED rules or filters")
	}
	if !res.Converged {
		t.Errorf("simple case should still converge: %+v", res)
	}
}

func TestEvaluateSkipsUnknownPrefixes(t *testing.T) {
	train := &dataset.Dataset{Records: []dataset.Record{rec("a", "P4", 1, 2, 4)}}
	m := buildModel(t, train)
	other := &dataset.Dataset{Records: []dataset.Record{
		rec("a", "P4", 1, 2, 4),
		rec("a", "Punknown", 1, 2, 99),
	}}
	ev, err := m.Evaluate(other)
	if err != nil {
		t.Fatal(err)
	}
	if ev.SkippedPrefixes != 1 {
		t.Errorf("skipped=%d want 1", ev.SkippedPrefixes)
	}
	if ev.Summary.Total != 1 {
		t.Errorf("total=%d", ev.Summary.Total)
	}
}

func TestValidationClassification(t *testing.T) {
	// Train on one observation point; validate on another whose path the
	// model never saw but which shares the topology: metrics must come out
	// as RIB-Out / potential / no-RIB-In sensibly.
	train := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P4", 1, 2, 4),
	}}
	valid := &dataset.Dataset{Records: []dataset.Record{
		rec("op9", "P4", 3, 4),    // AS3 observes directly: trivially matched
		rec("op8", "P4", 1, 3, 4), // unobserved diversity at AS1
	}}
	full := &dataset.Dataset{Records: append(append([]dataset.Record{}, train.Records...), valid.Records...)}
	g := topology.FromDataset(full)
	u := dataset.NewUniverse(full)
	m, err := NewInitial(g, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refine(train, RefineConfig{}); err != nil {
		t.Fatal(err)
	}
	ev := evaluateAll(t, m, valid)
	if ev.Summary.Total != 2 {
		t.Fatalf("total=%d", ev.Summary.Total)
	}
	// [3 4] must be a RIB-Out match; [1 3 4] should at least be in the
	// RIB (potential or rib-in) because AS3 propagates its best route.
	if ev.Summary.RIBOut < 1 {
		t.Errorf("expected at least one RIB-Out: %v", ev.Summary)
	}
	if ev.Summary.NoRIBIn > 1 {
		t.Errorf("too many no-rib-in: %v", ev.Summary)
	}
}

func TestWhatIfDepeer(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P4", 1, 2, 4),
		rec("op1", "P4b", 1, 3, 4),
	}}
	m := buildModel(t, ds)
	if _, err := m.Refine(ds, RefineConfig{}); err != nil {
		t.Fatal(err)
	}
	changes, err := m.WhatIfDepeer("P4", 2, 4, []bgp.ASN{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || !changes[0].Changed() {
		t.Fatalf("expected a path change, got %+v", changes)
	}
	// After restoration the original prediction returns.
	after, err := m.PredictPaths("P4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || !after[0].Equal(bgp.Path{1, 2, 4}) {
		t.Errorf("restored prediction = %v", after)
	}
	// Errors.
	if _, err := m.RemoveASEdge(1, 99); err == nil {
		t.Error("unknown AS should fail")
	}
	if _, err := m.RemoveASEdge(1, 4); err == nil {
		t.Error("non-adjacent ASes should fail")
	}
	if _, err := m.PredictPaths("nope", 1); err == nil {
		t.Error("unknown prefix should fail")
	}
}

func TestRefineIdempotentSecondPass(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
		rec("op1", "P3", 1, 3),
	}}
	m := buildModel(t, ds)
	res1, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Converged {
		t.Fatal("first refine did not converge")
	}
	before := m.Stats()
	res2, err := m.Refine(ds, RefineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("second refine did not converge")
	}
	if res2.QuasiRoutersAdded != 0 || res2.FiltersAdded != 0 {
		t.Errorf("second refine changed the model: %+v", res2)
	}
	after := m.Stats()
	if before != after {
		t.Errorf("model changed on idempotent refine: %+v vs %+v", before, after)
	}
}

func TestCoverageCounters(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
	}}
	m := buildModel(t, ds)
	// Unrefined: one of the two paths matches (tie-break winner).
	ev := evaluateAll(t, m, ds)
	if ev.Coverage.Prefixes != 1 {
		t.Fatalf("coverage prefixes=%d", ev.Coverage.Prefixes)
	}
	if ev.Coverage.At100 != 0 || ev.Coverage.At50 != 1 {
		t.Errorf("coverage=%+v summary=%v", ev.Coverage, ev.Summary)
	}
	// The losing path must be a potential RIB-Out (lost only tie-break).
	if ev.Summary.PotentialRIBOut != 1 {
		t.Errorf("potential=%d summary=%v", ev.Summary.PotentialRIBOut, ev.Summary)
	}
}

func TestClassifierIntegration(t *testing.T) {
	// Direct use of metrics on a refined model.
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
	}}
	m := buildModel(t, ds)
	if _, err := m.Refine(ds, RefineConfig{}); err != nil {
		t.Fatal(err)
	}
	id, _ := m.Universe.ID("P4")
	if err := m.RunPrefix(id); err != nil {
		t.Fatal(err)
	}
	cls := metrics.NewClassifier(m.Net)
	for _, p := range []bgp.Path{{1, 2, 4}, {1, 3, 4}} {
		kind, _ := cls.Classify(p)
		if kind != metrics.RIBOut {
			t.Errorf("path %v: %v, want rib-out", p, kind)
		}
	}
}

func TestWhatIfPeer(t *testing.T) {
	// Line 1-2-3-4; adding edge 1-4 should shorten AS1's path to P4.
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1", "P4", 1, 2, 3, 4),
	}}
	m := buildModel(t, ds)
	if _, err := m.Refine(ds, RefineConfig{}); err != nil {
		t.Fatal(err)
	}
	changes, err := m.WhatIfPeer("P4", 1, 4, []bgp.ASN{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || !changes[0].Changed() {
		t.Fatalf("expected a change: %+v", changes)
	}
	if len(changes[0].After) != 1 || !changes[0].After[0].Equal(bgp.Path{1, 4}) {
		t.Errorf("after=%v, want direct path", changes[0].After)
	}
	// The hypothetical peering must be fully retracted.
	after, err := m.PredictPaths("P4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || !after[0].Equal(bgp.Path{1, 2, 3, 4}) {
		t.Errorf("peering not retracted: %v", after)
	}
	// Errors: existing edge, unknown AS.
	if err := m.AddASEdge(1, 2); err == nil {
		t.Error("existing edge accepted")
	}
	if err := m.AddASEdge(1, 99); err == nil {
		t.Error("unknown AS accepted")
	}
}

func TestExplainPath(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
	}}
	m := buildModel(t, ds)
	if _, err := m.Refine(ds, RefineConfig{}); err != nil {
		t.Fatal(err)
	}
	ex, err := m.ExplainPath("P4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Routers) != 2 {
		t.Fatalf("routers=%d", len(ex.Routers))
	}
	bests := map[string]bool{}
	for _, rr := range ex.Routers {
		if !rr.HasBest {
			t.Errorf("router %s has no best", rr.Router)
		}
		bests[rr.Best.String()] = true
		if len(rr.Candidates) == 0 {
			t.Errorf("router %s has no candidates", rr.Router)
		}
		// First candidate (sorted) is the winner.
		if rr.Candidates[0].Eliminated != bgp.StepNone {
			t.Errorf("first candidate not BEST: %+v", rr.Candidates[0])
		}
	}
	if !bests["2 4"] || !bests["3 4"] {
		t.Errorf("bests=%v", bests)
	}
	out := ex.String()
	for _, want := range []string{"quasi-router", "BEST", "P4"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	// Errors.
	if _, err := m.ExplainPath("nope", 1); err == nil {
		t.Error("unknown prefix accepted")
	}
	if _, err := m.ExplainPath("P4", 99); err == nil {
		t.Error("unknown AS accepted")
	}
}

// TestUnblockPathDuplicationFallback: a pre-existing filter blocks the
// shorter observed path, and removing it would evict the quasi-router's
// other (longer) reserved path — so the heuristic must grow the AS
// instead of deleting the filter.
func TestUnblockPathDuplicationFallback(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 6, 4),
		rec("op1b", "P4", 1, 7, 5, 4),
	}}
	m := buildModel(t, ds)
	id, _ := m.Universe.ID("P4")
	// Block AS6 -> AS1 up front, so AS1.0 settles on the longer path.
	q6 := m.QuasiRouters(6)[0]
	q1 := m.QuasiRouters(1)[0]
	q6.PeerTo(q1.ID).DenyExport(id)

	var logLines int
	res, err := m.Refine(ds, RefineConfig{Logf: func(string, ...interface{}) { logLines++ }})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if logLines == 0 {
		t.Error("Logf never called")
	}
	if res.QuasiRoutersAdded == 0 {
		t.Error("expected the duplication fallback to grow AS1")
	}
	paths, err := m.PredictPaths("P4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths=%v, want both observed", paths)
	}
}
