package model

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"asmodel/internal/dataset"
	"asmodel/internal/obs"
	"asmodel/internal/topology"
)

// refineTrace refines the dataset for the given seed with a TraceSink
// observer attached and returns the raw JSONL trace stream.
func refineTrace(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := randomObservations(rng)
	if ds.Len() == 0 {
		return nil
	}
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewTraceSink(&buf)
	cfg := RefineConfig{Observer: func(ev RefineEvent) {
		if err := sink.Emit(ev); err != nil {
			t.Fatalf("emit: %v", err)
		}
	}}
	if _, err := m.Refine(ds, cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRefineTraceDeterministic is the observability contract: two Refine
// runs on the same (dataset, seed) emit byte-identical trace-event
// streams. Trace events therefore must not embed wall-clock time or any
// other run-to-run varying state.
func TestRefineTraceDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a := refineTrace(t, seed)
		b := refineTrace(t, seed)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: trace streams differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, a, b)
		}
	}
}

// TestRefineTraceContents checks the shape of the emitted stream: one
// well-formed JSON event per line, per-iteration match fractions that
// respect the cumulative-threshold ordering RIBIn >= Potential >= RIBOut,
// a verify event per sweep, and a final done event that agrees with the
// RefineResult.
func TestRefineTraceContents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randomObservations(rng)
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	var events []RefineEvent
	res, err := m.Refine(ds, RefineConfig{Observer: func(ev RefineEvent) {
		events = append(events, ev)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events for a run of %d iterations", len(events), res.Iterations)
	}

	iterations, verifies := 0, 0
	var total RefineActionCounts
	for i, ev := range events {
		switch ev.Type {
		case "iteration":
			iterations++
			if ev.Iteration != iterations {
				t.Errorf("event %d: iteration %d, want %d", i, ev.Iteration, iterations)
			}
			if ev.Requirements == 0 {
				t.Errorf("event %d: no requirements", i)
			}
			if ev.RIBInMatched < ev.PotentialMatched || ev.PotentialMatched < ev.RIBOutMatched {
				t.Errorf("event %d: matches not cumulative: out=%d pot=%d in=%d",
					i, ev.RIBOutMatched, ev.PotentialMatched, ev.RIBInMatched)
			}
			if ev.RIBOutFrac < 0 || ev.RIBInFrac > 1 {
				t.Errorf("event %d: fractions out of range: %+v", i, ev)
			}
			total.add(ev.Actions)
			if total != ev.CumulativeActions {
				t.Errorf("event %d: cumulative actions %+v, sum of deltas %+v", i, ev.CumulativeActions, total)
			}
		case "verify":
			verifies++
			if ev.VerifyRound != verifies {
				t.Errorf("event %d: verify round %d, want %d", i, ev.VerifyRound, verifies)
			}
		case "done":
			if i != len(events)-1 {
				t.Errorf("done event at %d, want last (%d)", i, len(events)-1)
			}
			if ev.Converged != res.Converged {
				t.Errorf("done event converged=%v, result %v", ev.Converged, res.Converged)
			}
		default:
			t.Errorf("event %d: unknown type %q", i, ev.Type)
		}
	}
	if iterations != res.Iterations {
		t.Errorf("%d iteration events, result says %d", iterations, res.Iterations)
	}
	if verifies != res.VerifyRounds {
		t.Errorf("%d verify events, result says %d", verifies, res.VerifyRounds)
	}
	if total.FiltersAdded != res.FiltersAdded || total.MEDRules != res.MEDRules ||
		total.Duplications != res.QuasiRoutersAdded {
		t.Errorf("cumulative actions %+v disagree with result %+v", total, res)
	}
	last := events[len(events)-1]
	if last.RIBOutMatched != last.Requirements && res.Converged {
		t.Errorf("converged but final RIB-Out matched %d/%d", last.RIBOutMatched, last.Requirements)
	}

	// Each event marshals to a single JSON object whose keys include the
	// match fractions and action counts the ISSUE promises downstream
	// consumers.
	b, err := json.Marshal(events[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"type"`, `"iteration"`, `"rib_out_frac"`, `"potential_frac"`, `"rib_in_frac"`, `"actions"`, `"reservations"`, `"filters_added"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("marshaled event missing %s: %s", key, b)
		}
	}
}
