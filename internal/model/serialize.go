package model

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/sim"
	"asmodel/internal/topology"
)

// The model serialization is a line-oriented, versioned text format so a
// refined model (hours of refinement on a large dataset) can be stored
// and re-loaded for prediction and what-if studies. Captured state:
// prefix universe, quasi-router topology (including duplicates), sessions
// and all per-prefix policies. Import/export *hooks* (relationship
// baselines) are code, not data, and are not serialized.
//
// v2 terminates the stream with an "end" trailer so a truncated file
// (crashed writer, torn copy) is detected instead of silently loading as
// a smaller model. v1 files (no trailer) are still accepted.
const (
	saveMagicV1 = "asmodel-model-v1"
	saveMagic   = "asmodel-model-v2"
)

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, saveMagic)

	// Universe.
	fmt.Fprintf(bw, "prefixes %d\n", m.Universe.Len())
	for i := 0; i < m.Universe.Len(); i++ {
		id := bgp.PrefixID(i)
		fmt.Fprintf(bw, "prefix %s", m.Universe.Name(id))
		for _, o := range m.Universe.Origins(id) {
			fmt.Fprintf(bw, " %d", o)
		}
		fmt.Fprintln(bw)
	}

	// Quasi-routers per AS (counts suffice: IDs are ASN<<16|index).
	asns := make([]bgp.ASN, 0, len(m.qrs))
	for a := range m.qrs {
		asns = append(asns, a)
	}
	bgp.SortASNs(asns)
	for _, a := range asns {
		fmt.Fprintf(bw, "as %d %d\n", a, len(m.qrs[a]))
	}

	// Sessions and policies, sorted so the output is canonical regardless
	// of construction order (each session once, from the lower router ID;
	// policy lines carry their owning direction).
	var sessLines, polLines []string
	for _, r := range m.Net.Routers() {
		for _, p := range r.Peers() {
			local, remote := uint32(r.ID), uint32(p.Remote.ID)
			if r.ID < p.Remote.ID {
				sessLines = append(sessLines, fmt.Sprintf("session %d %d", local, remote))
			}
			p.VisitExportDenies(func(prefix bgp.PrefixID) {
				polLines = append(polLines, fmt.Sprintf("deny %d %d %d", local, remote, prefix))
			})
			p.VisitImportActions(func(v sim.ImportActionView) {
				flags := ""
				if v.Deny {
					flags += "d"
				}
				if v.HasMED {
					flags += "m"
				}
				if v.HasLP {
					flags += "l"
				}
				polLines = append(polLines, fmt.Sprintf("import %d %d %d %s %d %d", local, remote, v.Prefix, flags, v.MED, v.LocalPref))
			})
		}
	}
	sort.Strings(sessLines)
	sort.Strings(polLines)
	for _, l := range sessLines {
		fmt.Fprintln(bw, l)
	}
	for _, l := range polLines {
		fmt.Fprintln(bw, l)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// newModelScanner returns a line scanner sized for large saved models.
func newModelScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	return sc
}

// Load reads a model written by Save (current or v1 format).
func Load(r io.Reader) (*Model, error) {
	sc := newModelScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("model: not a saved model (missing %q header)", saveMagic)
	}
	var legacy bool
	switch sc.Text() {
	case saveMagic:
	case saveMagicV1:
		legacy = true
	default:
		return nil, fmt.Errorf("model: not a saved model (missing %q header)", saveMagic)
	}
	lineNo := 1
	return loadModelBody(sc, &lineNo, legacy)
}

// loadModelBody parses the directives following the magic line. The
// scanner is left positioned just past the model's "end" trailer, so a
// containing format (the refinement checkpoint) can embed a model and
// keep parsing afterwards. With legacy true the trailer is optional and
// parsing runs to EOF (v1 files).
func loadModelBody(sc *bufio.Scanner, lineNo *int, legacy bool) (*Model, error) {

	entries := make(map[string][]bgp.ASN)
	type qrCount struct {
		asn bgp.ASN
		n   int
	}
	var qrCounts []qrCount
	type sess struct{ a, b bgp.RouterID }
	var sessions []sess
	type denyRule struct {
		local, remote bgp.RouterID
		prefix        bgp.PrefixID
	}
	var denies []denyRule
	type importRule struct {
		local, remote bgp.RouterID
		prefix        bgp.PrefixID
		flags         string
		med, lp       uint32
	}
	var imports []importRule

	sawEnd := false
scan:
	for sc.Scan() {
		*lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(why string) error {
			return fmt.Errorf("model: line %d: %s: %q", *lineNo, why, line)
		}
		switch f[0] {
		case "end":
			sawEnd = true
			break scan
		case "prefixes":
			// informational; ignored
		case "prefix":
			if len(f) < 2 {
				return nil, fail("prefix needs a name")
			}
			var origins []bgp.ASN
			for _, s := range f[2:] {
				v, err := strconv.ParseUint(s, 10, 32)
				if err != nil {
					return nil, fail("bad origin")
				}
				origins = append(origins, bgp.ASN(v))
			}
			entries[f[1]] = origins
		case "as":
			if len(f) != 3 {
				return nil, fail("as needs ASN and count")
			}
			asn, err1 := strconv.ParseUint(f[1], 10, 32)
			n, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil || n < 1 {
				return nil, fail("bad as line")
			}
			qrCounts = append(qrCounts, qrCount{bgp.ASN(asn), n})
		case "session":
			a, b, err := parseIDPair(f, 3)
			if err != nil {
				return nil, fail(err.Error())
			}
			sessions = append(sessions, sess{a, b})
		case "deny":
			// Field count must be validated before indexing f[3]: a
			// truncated "deny a b" line is data, not a crash.
			a, b, err := parseIDPair(f, 4)
			if err != nil {
				return nil, fail(err.Error())
			}
			pfx, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fail("bad prefix id")
			}
			denies = append(denies, denyRule{a, b, bgp.PrefixID(pfx)})
		case "import":
			if len(f) != 7 {
				return nil, fail("import needs 7 fields")
			}
			a, b, err := parseIDPair(f, 7)
			if err != nil {
				return nil, fail(err.Error())
			}
			pfx, err1 := strconv.Atoi(f[3])
			med, err2 := strconv.ParseUint(f[5], 10, 32)
			lp, err3 := strconv.ParseUint(f[6], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("bad import numbers")
			}
			imports = append(imports, importRule{a, b, bgp.PrefixID(pfx), f[4], uint32(med), uint32(lp)})
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEnd && !legacy {
		return nil, fmt.Errorf("model: truncated saved model after line %d (missing %q trailer)", *lineNo, "end")
	}

	m := &Model{
		Net:      sim.NewNetwork(bgp.QuasiRouterConfig),
		Universe: dataset.NewUniverseFrom(entries),
		Graph:    topology.NewGraph(),
		qrs:      make(map[bgp.ASN][]*sim.Router),
		nextIdx:  make(map[bgp.ASN]uint16),
	}
	for _, qc := range qrCounts {
		m.Graph.AddNode(qc.asn)
		for i := 0; i < qc.n; i++ {
			if _, err := m.addQR(qc.asn); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range sessions {
		ra, rb := m.Net.Router(s.a), m.Net.Router(s.b)
		if ra == nil || rb == nil {
			return nil, fmt.Errorf("model: session references unknown router %s/%s", s.a, s.b)
		}
		if _, _, err := m.Net.Connect(ra, rb); err != nil {
			return nil, err
		}
		m.Graph.AddEdge(ra.AS, rb.AS)
	}
	peerOf := func(local, remote bgp.RouterID) (*sim.Peer, error) {
		r := m.Net.Router(local)
		if r == nil {
			return nil, fmt.Errorf("model: unknown router %s", local)
		}
		p := r.PeerTo(remote)
		if p == nil {
			return nil, fmt.Errorf("model: no session %s -> %s", local, remote)
		}
		return p, nil
	}
	for _, d := range denies {
		p, err := peerOf(d.local, d.remote)
		if err != nil {
			return nil, err
		}
		p.DenyExport(d.prefix)
	}
	for _, im := range imports {
		p, err := peerOf(im.local, im.remote)
		if err != nil {
			return nil, err
		}
		if strings.Contains(im.flags, "d") {
			p.DenyImport(im.prefix)
		}
		if strings.Contains(im.flags, "m") {
			p.SetImportMED(im.prefix, im.med)
		}
		if strings.Contains(im.flags, "l") {
			p.SetImportLocalPref(im.prefix, im.lp)
		}
	}
	return m, nil
}

func parseIDPair(f []string, want int) (bgp.RouterID, bgp.RouterID, error) {
	if len(f) != want {
		return 0, 0, fmt.Errorf("need %d fields, have %d", want, len(f))
	}
	a, err1 := strconv.ParseUint(f[1], 10, 32)
	b, err2 := strconv.ParseUint(f[2], 10, 32)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad router IDs")
	}
	return bgp.RouterID(a), bgp.RouterID(b), nil
}
