package model

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
	"asmodel/internal/topology"
)

// refineFull refines ds on a fresh initial model with full observability
// attached — a redacted span recorder plus a trace-event observer writing
// to one sink — and returns the serialized model, the combined trace
// stream (events then spans) and the result. This is the byte-identity
// probe for the speculative-refinement contract: every one of the three
// outputs must match the sequential reference at any worker count.
func refineFull(t *testing.T, ds *dataset.Dataset, cfg RefineConfig) ([]byte, []byte, *RefineResult) {
	t.Helper()
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	sink := obs.NewTraceSink(&trace)
	rec := obs.NewSpanRecorder(sink, "test refine", obs.SpanOptions{RedactTiming: true})
	cfg.Observer = func(ev RefineEvent) {
		if err := sink.Emit(ev); err != nil {
			t.Fatalf("emit: %v", err)
		}
	}
	res, err := m.RefineContext(obs.ContextWithSpan(context.Background(), rec.Root()), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var save bytes.Buffer
	if err := m.Save(&save); err != nil {
		t.Fatal(err)
	}
	return save.Bytes(), trace.Bytes(), res
}

// TestRefineSpeculativeDeterminism is the tentpole contract: for a spread
// of random datasets, refining with speculative workers produces the
// byte-identical model, the byte-identical redacted trace stream (events
// and spans) and the same RefineResult as the sequential path, for every
// tested worker count.
func TestRefineSpeculativeDeterminism(t *testing.T) {
	specsBefore := mSpecs.Value()
	tested := 0
	for seed := int64(0); seed < 30 && tested < 5; seed++ {
		ds := randomObservations(rand.New(rand.NewSource(seed)))
		if ds.Len() < 2 {
			continue
		}
		tested++
		refSave, refTrace, refRes := refineFull(t, ds, RefineConfig{})
		for _, workers := range []int{1, 2, 4, 8} {
			save, trace, res := refineFull(t, ds, RefineConfig{Workers: workers})
			if !bytes.Equal(save, refSave) {
				t.Errorf("seed %d workers %d: model bytes differ from sequential", seed, workers)
			}
			if !bytes.Equal(trace, refTrace) {
				t.Errorf("seed %d workers %d: redacted trace differs from sequential:\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
					seed, workers, refTrace, workers, trace)
			}
			if !reflect.DeepEqual(res, refRes) {
				t.Errorf("seed %d workers %d: result differs:\nseq: %+v\npar: %+v", seed, workers, refRes, res)
			}
		}
	}
	if tested < 5 {
		t.Fatalf("only %d usable datasets in 30 seeds", tested)
	}
	if mSpecs.Value() == specsBefore {
		t.Fatal("no speculation ran — the matrix never hit the parallel path")
	}
}

// TestRefineSpeculativeQuarantineDeterminism drives the forceDiverge seam
// under speculation: the seam is consumed on the canonical pass only, in
// worklist order, so quarantine/retry/diverged bookkeeping — and the
// final model — match the sequential run whether the prefix recovers
// (one forced divergence) or is abandoned (two).
func TestRefineSpeculativeQuarantineDeterminism(t *testing.T) {
	for _, forced := range []int{1, 2} {
		ds := &dataset.Dataset{Records: []dataset.Record{
			rec("op1a", "P4", 1, 2, 4),
			rec("op1b", "P4", 1, 3, 4),
			rec("op1", "P3", 1, 3),
			rec("op5", "P4", 5, 1, 2, 4),
		}}
		u := dataset.NewUniverse(ds)
		id, ok := u.ID("P4")
		if !ok {
			t.Fatal("P4 not in universe")
		}
		run := func(workers int) ([]byte, *RefineResult) {
			m, err := NewInitial(topology.FromDataset(ds), u)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Refine(ds, RefineConfig{
				Workers:      workers,
				forceDiverge: map[bgp.PrefixID]int{id: forced},
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), res
		}
		refSave, refRes := run(1)
		if len(refRes.Quarantined) == 0 {
			t.Fatalf("forced=%d: seam produced no quarantine records", forced)
		}
		for _, workers := range []int{2, 4} {
			save, res := run(workers)
			if !bytes.Equal(save, refSave) {
				t.Errorf("forced=%d workers %d: model bytes differ", forced, workers)
			}
			if !reflect.DeepEqual(res, refRes) {
				t.Errorf("forced=%d workers %d: result differs:\nseq: %+v\npar: %+v", forced, workers, refRes, res)
			}
		}
	}
}

// refineCheckpoints refines with per-iteration checkpointing and returns
// the bytes of every checkpoint file as written, in order, plus the final
// model bytes.
func refineCheckpoints(t *testing.T, ds *dataset.Dataset, workers int) ([][]byte, []byte) {
	t.Helper()
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "refine.ckpt")
	var ckpts [][]byte
	_, err = m.Refine(ds, RefineConfig{
		Workers:    workers,
		Checkpoint: CheckpointConfig{Path: path, Every: 1},
		Observer: func(ev RefineEvent) {
			if ev.Type != "checkpoint" {
				return
			}
			b, rerr := os.ReadFile(ev.Checkpoint)
			if rerr != nil {
				t.Fatalf("read checkpoint: %v", rerr)
			}
			ckpts = append(ckpts, b)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var save bytes.Buffer
	if err := m.Save(&save); err != nil {
		t.Fatal(err)
	}
	return ckpts, save.Bytes()
}

// TestRefineSpeculativeCheckpointIdentity: checkpoints are taken at
// iteration boundaries from the canonical model only, so every mid-run
// checkpoint file written at workers > 1 is byte-identical to the
// sequential one — and resuming such a checkpoint with workers > 1
// converges to the sequential final model.
func TestRefineSpeculativeCheckpointIdentity(t *testing.T) {
	var ds *dataset.Dataset
	for seed := int64(0); seed < 30; seed++ {
		cand := randomObservations(rand.New(rand.NewSource(seed)))
		if cand.Len() < 2 {
			continue
		}
		ds = cand
		refCkpts, refSave := refineCheckpoints(t, ds, 1)
		if len(refCkpts) < 2 {
			ds = nil
			continue // too short to prove mid-run identity; try another seed
		}
		for _, workers := range []int{2, 4} {
			ckpts, save := refineCheckpoints(t, ds, workers)
			if len(ckpts) != len(refCkpts) {
				t.Fatalf("workers %d: %d checkpoints, sequential wrote %d", workers, len(ckpts), len(refCkpts))
			}
			for i := range ckpts {
				if !bytes.Equal(ckpts[i], refCkpts[i]) {
					t.Fatalf("workers %d: checkpoint %d differs from sequential", workers, i)
				}
			}
			if !bytes.Equal(save, refSave) {
				t.Fatalf("workers %d: final model differs from sequential", workers)
			}
		}

		// Resume from a mid-run sequential checkpoint with workers > 1:
		// same final model as the uninterrupted sequential run.
		path := filepath.Join(t.TempDir(), "mid.ckpt")
		if err := os.WriteFile(path, refCkpts[0], 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := LoadCheckpointFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeRefine(context.Background(), cp, ds, RefineConfig{Workers: 4}); err != nil {
			t.Fatal(err)
		}
		var resumed bytes.Buffer
		if err := cp.Model.Save(&resumed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resumed.Bytes(), refSave) {
			t.Fatal("model resumed at workers=4 differs from uninterrupted sequential run")
		}
		return
	}
	t.Skip("no seed produced a multi-checkpoint refinement")
}

// TestActionLogUndoRestoresClone: applying a speculation's mutations with
// undo tracking and rolling them back leaves the model byte-identical —
// including the duplicate-of-a-duplicate case, which exercises the LIFO
// RemoveRouter contract.
func TestActionLogUndoRestoresClone(t *testing.T) {
	m, _ := refineSample(t)
	c := m.Clone()
	var before bytes.Buffer
	if err := c.Save(&before); err != nil {
		t.Fatal(err)
	}

	var src *sim.Router
	for _, rs := range c.qrs {
		if len(rs) > 0 && len(rs[0].Peers()) > 0 {
			src = rs[0]
			break
		}
	}
	if src == nil {
		t.Fatal("no connected quasi-router in sample")
	}
	const prefix = bgp.PrefixID(0)
	al := &actionLog{m: c, res: &RefineResult{}, record: true, trackUndo: true}
	al.clearImports(src, prefix)
	p := src.Peers()[0]
	al.denyExport(p, prefix)
	al.setImportMED(p, prefix, 0)
	al.setImportLocalPref(p, prefix, 200)
	al.allowExport(p, prefix)
	d1, err := al.duplicateQR(src)
	if err != nil {
		t.Fatal(err)
	}
	al.clearImports(d1, prefix)
	d2, err := al.duplicateQR(d1) // duplicate of the fresh duplicate
	if err != nil {
		t.Fatal(err)
	}
	al.denyExport(d2.Peers()[0], prefix)
	if len(al.recs) == 0 || len(al.undo) == 0 {
		t.Fatal("action log recorded nothing")
	}

	if err := al.undoAll(); err != nil {
		t.Fatalf("undoAll: %v", err)
	}
	var after bytes.Buffer
	if err := c.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("undoAll did not restore the clone to its pre-speculation bytes")
	}

	// The recorded action set replays verbatim on an untouched clone of
	// the same state and reproduces the mutations deterministically.
	c2, c3 := m.Clone(), m.Clone()
	res2, res3 := &RefineResult{}, &RefineResult{}
	for _, a := range al.recs {
		if !applyAction(c2, a, res2) || !applyAction(c3, a, res3) {
			t.Fatalf("replay failed for %+v", a)
		}
	}
	var b2, b3 bytes.Buffer
	if err := c2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if err := c3.Save(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
		t.Fatal("replaying the same action set on two clones diverged")
	}
	if !reflect.DeepEqual(res2, res3) {
		t.Fatalf("replay counters diverged: %+v vs %+v", res2, res3)
	}
}
