package model

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/topology"
)

// randomObservations generates a random AS graph together with a random
// set of loop-free observed paths over it: for a handful of prefixes,
// several random simple paths from random observation ASes to the
// prefix's origin. Every such path set is realizable routing (each AS can
// always be split into enough quasi-routers), so refinement must converge
// and match it exactly — the paper's central training-set claim.
func randomObservations(rng *rand.Rand) *dataset.Dataset {
	nAS := 6 + rng.Intn(14)
	asns := make([]bgp.ASN, nAS)
	for i := range asns {
		asns[i] = bgp.ASN(i + 1)
	}
	// Random connected graph.
	adj := make(map[bgp.ASN]map[bgp.ASN]bool)
	addEdge := func(a, b bgp.ASN) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = map[bgp.ASN]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[bgp.ASN]bool{}
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for i := 1; i < nAS; i++ {
		addEdge(asns[i], asns[rng.Intn(i)])
	}
	extra := nAS + rng.Intn(2*nAS)
	for e := 0; e < extra; e++ {
		addEdge(asns[rng.Intn(nAS)], asns[rng.Intn(nAS)])
	}

	// Random simple path from obs toward origin via random walk with
	// backtracking avoidance; returns nil when the walk strands.
	randomPath := func(obs, origin bgp.ASN) bgp.Path {
		path := bgp.Path{obs}
		seen := map[bgp.ASN]bool{obs: true}
		cur := obs
		for cur != origin && len(path) < nAS {
			var cands []bgp.ASN
			for n := range adj[cur] {
				if !seen[n] {
					cands = append(cands, n)
				}
			}
			if len(cands) == 0 {
				return nil
			}
			bgp.SortASNs(cands)
			// Prefer stepping straight to the origin when adjacent, so
			// walks terminate often.
			next := cands[rng.Intn(len(cands))]
			for _, c := range cands {
				if c == origin && rng.Intn(2) == 0 {
					next = c
				}
			}
			path = append(path, next)
			seen[next] = true
			cur = next
		}
		if cur != origin {
			return nil
		}
		return path
	}

	ds := &dataset.Dataset{}
	nPrefixes := 1 + rng.Intn(4)
	for p := 0; p < nPrefixes; p++ {
		origin := asns[rng.Intn(nAS)]
		prefix := dataset.SyntheticPrefix(origin)
		nPaths := 1 + rng.Intn(5)
		for k := 0; k < nPaths; k++ {
			obs := asns[rng.Intn(nAS)]
			if obs == origin {
				ds.Records = append(ds.Records, dataset.Record{
					Obs: dataset.ObsPointID(fmt.Sprintf("op%d-%d", obs, k)), ObsAS: obs,
					Prefix: prefix, Path: bgp.Path{origin},
				})
				continue
			}
			if path := randomPath(obs, origin); path != nil {
				ds.Records = append(ds.Records, dataset.Record{
					Obs: dataset.ObsPointID(fmt.Sprintf("op%d-%d", obs, k)), ObsAS: obs,
					Prefix: prefix, Path: path,
				})
			}
		}
	}
	return ds.Normalize()
}

// TestRefineRandomizedAlwaysMatchesTraining is the paper's central claim
// under fuzzing: for arbitrary loop-free observed path sets, refinement
// converges and the refined model RIB-Out matches every observed path.
func TestRefineRandomizedAlwaysMatchesTraining(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for seed := 0; seed < trials; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		ds := randomObservations(rng)
		if ds.Len() == 0 {
			continue
		}
		g := topology.FromDataset(ds)
		u := dataset.NewUniverse(ds)
		m, err := NewInitial(g, u)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := m.Refine(ds, RefineConfig{})
		if err != nil {
			t.Fatalf("seed %d: refine: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: refinement did not converge: %+v\ndata:\n%s", seed, res, dumpDS(ds))
		}
		ev, err := m.Evaluate(ds)
		if err != nil {
			t.Fatalf("seed %d: evaluate: %v", seed, err)
		}
		if ev.Summary.RIBOut != ev.Summary.Total {
			t.Fatalf("seed %d: training not exactly matched: %v\ndata:\n%s", seed, ev.Summary, dumpDS(ds))
		}
	}
}

// TestRefineRandomizedDeterministic: identical inputs yield identical
// refined models (byte-identical serialization).
func TestRefineRandomizedDeterministic(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		build := func() string {
			rng := rand.New(rand.NewSource(int64(seed)))
			ds := randomObservations(rng)
			if ds.Len() == 0 {
				return ""
			}
			m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Refine(ds, RefineConfig{}); err != nil {
				t.Fatal(err)
			}
			var b stringsBuilder
			if err := m.Save(&b); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}
		if build() != build() {
			t.Fatalf("seed %d: refinement not deterministic", seed)
		}
	}
}

// FuzzModelLoad hardens Load against corrupted and truncated inputs: it
// must either return an error or produce a model that re-Saves cleanly —
// and it must never panic (the deny-line truncation panic was found this
// way).
func FuzzModelLoad(f *testing.F) {
	// Seed with a real saved model, its truncations, and the known error
	// shapes so the fuzzer starts inside the grammar.
	rng := rand.New(rand.NewSource(1))
	ds := randomObservations(rng)
	m, err := NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		f.Fatal(err)
	}
	if _, err := m.Refine(ds, RefineConfig{}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 2} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	f.Add([]byte("asmodel-model-v2\nas 1 1\ndeny 65536 131072\nend\n"))
	f.Add([]byte("asmodel-model-v1\nprefix P1 1\nas 1 2\nsession 65536 65537\n"))
	f.Add([]byte("asmodel-model-v2\nprefixes 1\nprefix P1 1\nas 1 1\nend\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := m.Save(&out); err != nil {
			t.Fatalf("loaded model failed to re-save: %v", err)
		}
	})
}

func dumpDS(ds *dataset.Dataset) string {
	var b stringsBuilder
	ds.Write(&b)
	return b.String()
}

// stringsBuilder is a minimal strings.Builder clone avoiding an import
// cycle with the strings helpers in this test file.
type stringsBuilder struct{ buf []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *stringsBuilder) String() string { return string(b.buf) }
