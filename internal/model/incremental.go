package model

import (
	"context"

	"asmodel/internal/dataset"
	"asmodel/internal/obs"
)

var mIncrRefines = obs.GetCounter("refine_incremental_runs_total",
	"incremental re-refinements of an already-refined model (one per stream batch)")

// RefineIncremental re-refines an already-refined model against a delta
// dataset — the current observations of only those prefixes whose
// routes changed, as produced by mrt.Replayer.DatasetFor after an
// update batch. It is the entry point the streaming refinement loop
// patches the model through: the delta's prefixes become a small open
// worklist and run through exactly the machinery a full refinement uses
// (speculative claim → clone-pool propagation → worklist-order merge at
// Workers > 1, the sequential path otherwise), so the byte-identity
// contract — same model bytes, counts and trace events at any worker
// count — extends to every batch.
//
// Policies installed by earlier refinements for unchanged prefixes are
// left alone; delta prefixes are re-targeted at their complete current
// observed state. Prefixes outside the model's universe (announced
// after the universe was fixed) are counted in SkippedPrefixes and
// skipped — the documented growth limitation of a fixed universe.
//
// The caller owns commit points: internal checkpointing is disabled
// regardless of cfg.Checkpoint, so a crash between batches can only
// ever observe the previous committed state.
func (m *Model) RefineIncremental(ctx context.Context, delta *dataset.Dataset, cfg RefineConfig) (*RefineResult, error) {
	cfg.Checkpoint = CheckpointConfig{}
	mIncrRefines.Inc()
	return newRefineRun(m, delta, cfg).run(ctx)
}
