package model

import "fmt"

// InterruptedError reports that context cancellation (SIGINT/SIGTERM in
// the CLI, or a deadline) stopped a long-running operation cleanly. It
// carries the progress made so far and unwraps to the context error
// (context.Canceled or context.DeadlineExceeded), so callers can both
// errors.Is the cause and recover partial work.
type InterruptedError struct {
	// Op is the interrupted operation: "refine", "evaluate" or "stream".
	Op string
	// Iterations is the refinement iteration reached ("refine"), or the
	// committed batch count ("stream").
	Iterations int
	// Prefixes counts units fully processed before the interrupt:
	// settled training prefixes for "refine", evaluated prefixes for
	// "evaluate", committed source records for "stream".
	Prefixes int
	// Checkpoint is the path of the last checkpoint written before the
	// interrupt, when checkpointing was enabled ("" otherwise). Resume
	// with LoadCheckpointFile + ResumeRefine.
	Checkpoint string
	// Err is the underlying context error.
	Err error
}

func (e *InterruptedError) Error() string {
	s := fmt.Sprintf("model: %s interrupted", e.Op)
	unit := "prefixes"
	switch e.Op {
	case "refine":
		s += fmt.Sprintf(" at iteration %d", e.Iterations)
	case "stream":
		s += fmt.Sprintf(" at batch %d", e.Iterations)
		unit = "records"
	}
	s += fmt.Sprintf(" (%d %s done", e.Prefixes, unit)
	if e.Checkpoint != "" {
		s += fmt.Sprintf("; checkpoint %s", e.Checkpoint)
	}
	s += ")"
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *InterruptedError) Unwrap() error { return e.Err }

// WorkerPanicError reports a panic recovered inside a parallel worker
// goroutine. The pool converts the panic into this typed error, cancels
// the sweep, and returns it from the merge, so a bug (or an injected
// fault) in one prefix's simulation fails the call instead of killing
// the process.
type WorkerPanicError struct {
	// Op is the sweep that panicked: "evaluate", "verify", or
	// "refine" (a speculative refinement worker).
	Op string
	// Prefix names the prefix being processed when the panic fired.
	Prefix string
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack trace captured at recovery.
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("model: %s worker panicked on prefix %s: %v", e.Op, e.Prefix, e.Value)
}
