package model

import (
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/relation"
)

// TestRelationshipBaseline exercises the Table-2 policy baseline on a
// valley topology: with valley-free policies applied, a peer route must
// not transit another peer; clearing hooks restores plain shortest path.
func TestRelationshipBaseline(t *testing.T) {
	// 10 -- 20 tier-1 peers; 200 is a customer of 20; 30 peers with both
	// tier-1s (rel inferred as unknown/peer).
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op10", "P20", 10, 20),
		rec("op20", "P10", 20, 10),
		rec("op10", "P200", 10, 20, 200),
		rec("op20", "P200", 20, 200),
		rec("op30a", "P10", 30, 10),
		rec("op30b", "P20", 30, 20),
	}}
	m := buildModel(t, ds)
	inf := relation.Infer(ds, []bgp.ASN{10, 20})
	m.ApplyRelationshipPolicies(inf)

	// P10 (originated by tier-1 10): AS30 hears it directly, but AS20's
	// copy must not reach 30 through 20 (peer route to a peer).
	id, _ := m.Universe.ID("P10")
	if err := m.RunPrefix(id); err != nil {
		t.Fatal(err)
	}
	q30 := m.QuasiRouters(30)[0]
	routes, _ := q30.RIBIn()
	for _, rt := range routes {
		if rt.Path.Equal(bgp.Path{20, 10}) {
			t.Errorf("valley-free violation: AS30 received %v", rt.Path)
		}
	}
	// The customer route of AS20 must still reach the peer AS10.
	paths, err := m.PredictPaths("P200", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !paths[0].Equal(bgp.Path{10, 20, 200}) {
		t.Errorf("customer route lost: %v", paths)
	}

	// ClearHooks restores unrestricted propagation.
	m.ClearHooks()
	if err := m.RunPrefix(id); err != nil {
		t.Fatal(err)
	}
	routes, _ = q30.RIBIn()
	found := false
	for _, rt := range routes {
		if rt.Path.Equal(bgp.Path{20, 10}) {
			found = true
		}
	}
	if !found {
		t.Error("ClearHooks did not restore propagation")
	}
}

func TestErrUnknownPrefixMessage(t *testing.T) {
	err := errUnknownPrefix("Pxyz")
	if err.Error() != "model: unknown prefix Pxyz" {
		t.Errorf("message: %q", err.Error())
	}
}

func TestPathChangeChanged(t *testing.T) {
	a := bgp.Path{1, 2}
	b := bgp.Path{1, 3}
	cases := []struct {
		before, after []bgp.Path
		want          bool
	}{
		{nil, nil, false},
		{[]bgp.Path{a}, []bgp.Path{a}, false},
		{[]bgp.Path{a}, []bgp.Path{b}, true},
		{[]bgp.Path{a}, []bgp.Path{a, b}, true},
		{[]bgp.Path{a, b}, []bgp.Path{a}, true},
	}
	for i, c := range cases {
		pc := PathChange{Before: c.before, After: c.after}
		if pc.Changed() != c.want {
			t.Errorf("case %d: Changed()=%v want %v", i, pc.Changed(), c.want)
		}
	}
}

// TestRefineMaxIterationsBudget: an impossible requirement with a tiny
// budget must stop at the budget without error.
func TestRefineMaxIterationsBudget(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		rec("op1a", "P4", 1, 2, 4),
		rec("op1b", "P4", 1, 3, 4),
		rec("op1c", "P4", 1, 5, 4),
	}}
	m := buildModel(t, ds)
	res, err := m.Refine(ds, RefineConfig{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations=%d", res.Iterations)
	}
	// One iteration cannot settle three diverse paths plus verification;
	// either it converged trivially (unlikely) or reported unsatisfied.
	if !res.Converged && res.UnsatisfiedRequirements == 0 {
		t.Error("non-converged run must report unsatisfied requirements")
	}
}
