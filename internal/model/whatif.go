package model

import (
	"fmt"

	"asmodel/internal/bgp"
)

// RemoveASEdge administratively disables every BGP session between the two
// ASes (what-if de-peering, the question class the paper motivates in
// §1). It returns the number of sessions taken down. The AS-level graph
// is updated so later analyses see the edited topology.
func (m *Model) RemoveASEdge(a, b bgp.ASN) (int, error) {
	if len(m.qrs[a]) == 0 || len(m.qrs[b]) == 0 {
		return 0, fmt.Errorf("model: unknown AS in edge (%d, %d)", a, b)
	}
	n := m.setEdgeDisabled(a, b, true)
	if n == 0 {
		return 0, fmt.Errorf("model: no sessions between AS %d and AS %d", a, b)
	}
	m.Graph.RemoveEdge(a, b)
	return n, nil
}

// RestoreASEdge re-enables previously removed sessions between two ASes.
func (m *Model) RestoreASEdge(a, b bgp.ASN) int {
	n := m.setEdgeDisabled(a, b, false)
	if n > 0 {
		m.Graph.AddEdge(a, b)
	}
	return n
}

func (m *Model) setEdgeDisabled(a, b bgp.ASN, down bool) int {
	n := 0
	for _, q := range m.qrs[a] {
		for _, p := range q.Peers() {
			if p.Remote.AS != b {
				continue
			}
			p.SetDisabled(down)
			if rev := p.Remote.PeerTo(q.ID); rev != nil {
				rev.SetDisabled(down)
			}
			n++
		}
	}
	return n
}

// PathChange describes how an AS's predicted path set for a prefix changed
// between two model states.
type PathChange struct {
	Prefix string
	AS     bgp.ASN
	Before []bgp.Path
	After  []bgp.Path
}

// Changed reports whether the path sets differ.
func (c *PathChange) Changed() bool {
	if len(c.Before) != len(c.After) {
		return true
	}
	for i := range c.Before {
		if !c.Before[i].Equal(c.After[i]) {
			return true
		}
	}
	return false
}

// WhatIfDepeer predicts how the given ASes' routes toward the prefix
// change when the link (a, b) is removed, restoring the link afterwards.
func (m *Model) WhatIfDepeer(prefixName string, a, b bgp.ASN, watch []bgp.ASN) ([]PathChange, error) {
	changes := make([]PathChange, 0, len(watch))
	for _, asn := range watch {
		before, err := m.PredictPaths(prefixName, asn)
		if err != nil {
			return nil, err
		}
		changes = append(changes, PathChange{Prefix: prefixName, AS: asn, Before: before})
	}
	if _, err := m.RemoveASEdge(a, b); err != nil {
		return nil, err
	}
	defer m.RestoreASEdge(a, b)
	for i, asn := range watch {
		after, err := m.PredictPaths(prefixName, asn)
		if err != nil {
			return nil, err
		}
		changes[i].After = after
	}
	return changes, nil
}

// AddASEdge creates a new adjacency between two ASes that are not yet
// connected in the model (what-if: "what if a peering link was added?").
// A session is established between the lowest-ID quasi-router of each
// side.
func (m *Model) AddASEdge(a, b bgp.ASN) error {
	if len(m.qrs[a]) == 0 || len(m.qrs[b]) == 0 {
		return fmt.Errorf("model: unknown AS in edge (%d, %d)", a, b)
	}
	if m.Graph.HasEdge(a, b) {
		return fmt.Errorf("model: ASes %d and %d are already adjacent", a, b)
	}
	if _, _, err := m.Net.Connect(m.qrs[a][0], m.qrs[b][0]); err != nil {
		return err
	}
	m.Graph.AddEdge(a, b)
	return nil
}

// WhatIfPeer predicts how the given ASes' routes toward the prefix change
// when a new peering (a, b) is added. Unlike RemoveASEdge, an added
// session cannot be fully retracted from the engine, so WhatIfPeer
// disables the new session afterwards, which restores the previous
// routing exactly.
func (m *Model) WhatIfPeer(prefixName string, a, b bgp.ASN, watch []bgp.ASN) ([]PathChange, error) {
	changes := make([]PathChange, 0, len(watch))
	for _, asn := range watch {
		before, err := m.PredictPaths(prefixName, asn)
		if err != nil {
			return nil, err
		}
		changes = append(changes, PathChange{Prefix: prefixName, AS: asn, Before: before})
	}
	if err := m.AddASEdge(a, b); err != nil {
		return nil, err
	}
	defer func() {
		m.setEdgeDisabled(a, b, true)
		m.Graph.RemoveEdge(a, b)
	}()
	for i, asn := range watch {
		after, err := m.PredictPaths(prefixName, asn)
		if err != nil {
			return nil, err
		}
		changes[i].After = after
	}
	return changes, nil
}
