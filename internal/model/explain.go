package model

import (
	"fmt"
	"sort"
	"strings"

	"asmodel/internal/bgp"
)

// CandidateReport describes one candidate route at a quasi-router after
// convergence: its path, attributes, where it was learned, and the
// decision step that eliminated it (StepNone for the selected route).
type CandidateReport struct {
	Path       bgp.Path
	LocalPref  uint32
	MED        uint32
	From       bgp.RouterID // announcing quasi-router (0 = locally originated)
	Eliminated bgp.Step
}

// RouterReport is the post-convergence decision state of one quasi-router
// for one prefix.
type RouterReport struct {
	Router     bgp.RouterID
	Best       bgp.Path // nil when the quasi-router selected no route
	HasBest    bool
	Candidates []CandidateReport
}

// Explanation reports how an AS's quasi-routers decided on a prefix.
type Explanation struct {
	Prefix  string
	AS      bgp.ASN
	Routers []RouterReport
}

// ExplainPath simulates the prefix and reports, for every quasi-router of
// the AS, the full candidate set with the elimination step of each route
// — the paper's Figure 4 methodology turned into a queryable diagnostic.
func (m *Model) ExplainPath(prefixName string, asn bgp.ASN) (*Explanation, error) {
	id, ok := m.Universe.ID(prefixName)
	if !ok {
		return nil, errUnknownPrefix(prefixName)
	}
	if len(m.qrs[asn]) == 0 {
		return nil, fmt.Errorf("model: unknown AS %d", asn)
	}
	if err := m.RunPrefix(id); err != nil {
		return nil, err
	}
	ex := &Explanation{Prefix: prefixName, AS: asn}
	for _, q := range m.qrs[asn] {
		rr := RouterReport{Router: q.ID}
		if b := q.Best(); b != nil {
			rr.Best = b.Path
			rr.HasBest = true
		}
		cands, elim := q.DecideRIB()
		for i, c := range cands {
			rr.Candidates = append(rr.Candidates, CandidateReport{
				Path:       c.Path,
				LocalPref:  c.LocalPref,
				MED:        c.MED,
				From:       c.Peer,
				Eliminated: elim[i],
			})
		}
		sort.SliceStable(rr.Candidates, func(i, j int) bool {
			return rr.Candidates[i].Eliminated < rr.Candidates[j].Eliminated
		})
		ex.Routers = append(ex.Routers, rr)
	}
	return ex, nil
}

// String renders the explanation for terminals.
func (ex *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefix %s at AS %d (%d quasi-routers):\n", ex.Prefix, ex.AS, len(ex.Routers))
	for _, rr := range ex.Routers {
		if rr.HasBest {
			fmt.Fprintf(&b, "  quasi-router %s selects [%s]\n", rr.Router, rr.Best)
		} else {
			fmt.Fprintf(&b, "  quasi-router %s selects no route\n", rr.Router)
		}
		for _, c := range rr.Candidates {
			verdict := "BEST"
			if c.Eliminated != bgp.StepNone {
				verdict = "lost at " + c.Eliminated.String()
			}
			from := "local"
			if c.From != 0 {
				from = "from " + c.From.String()
			}
			fmt.Fprintf(&b, "    [%s] lp=%d med=%d %s — %s\n", c.Path, c.LocalPref, c.MED, from, verdict)
		}
	}
	return b.String()
}
