// Package routersim builds router-level Internets on top of the sim
// engine: ASes containing multiple physical routers joined by a full iBGP
// mesh and an IGP topology, with eBGP sessions between specific border
// routers of different ASes. It is the substrate for the synthetic
// ground-truth Internet (package gen) that substitutes for the paper's
// Routeviews/RIPE measurement data: hot-potato routing across the iBGP
// mesh and multiple inter-AS links are exactly the mechanisms the paper
// identifies as the sources of route diversity (§1, §3.2).
package routersim

import (
	"context"
	"fmt"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/igp"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

// Ground-truth simulation metrics (the per-message work is counted by
// the sim layer; these count the router-level workload on top of it).
var (
	mRuns = obs.GetCounter("routersim_runs_total", "ground-truth prefix propagations")
	mObs  = obs.GetCounter("routersim_observations_total", "vantage-point route observations recorded")
)

// AS is one autonomous system of a router-level Internet.
type AS struct {
	ASN     bgp.ASN
	Routers []*sim.Router
	// RouteReflector reports whether the AS uses a reflector cluster
	// instead of a full iBGP mesh.
	RouteReflector bool

	igpGraph *igp.Graph
	dist     [][]uint32 // all-pairs IGP distances, filled by Finalize
}

// NumRouters returns the AS's router count.
func (a *AS) NumRouters() int { return len(a.Routers) }

// Internet is a router-level topology under construction or in use.
type Internet struct {
	Net  *sim.Network
	ases map[bgp.ASN]*AS

	finalized bool
}

// New returns an empty router-level Internet using the full ground-truth
// decision process (hot potato included).
func New() *Internet {
	return &Internet{
		Net:  sim.NewNetwork(bgp.GroundTruthConfig),
		ases: make(map[bgp.ASN]*AS),
	}
}

// AddAS creates an AS with n routers (n >= 1), a full iBGP mesh among
// them, and an empty IGP graph with one node per router.
func (in *Internet) AddAS(asn bgp.ASN, n int) (*AS, error) {
	a, err := in.newAS(asn, n)
	if err != nil {
		return nil, err
	}
	// Full iBGP mesh.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if _, _, err := in.Net.Connect(a.Routers[i], a.Routers[j]); err != nil {
				return nil, err
			}
		}
	}
	in.ases[asn] = a
	return a, nil
}

// AddASRR creates an AS with n routers (n >= 2) organized as a single
// route-reflector cluster (RFC 4456): router 0 is the reflector and
// routers 1..n-1 are its clients, with iBGP sessions only between the
// reflector and each client. Compared to a full mesh, reflection hides
// path diversity (clients only learn the reflector's choices), one of the
// intra-domain effects the paper's quasi-router abstraction absorbs.
func (in *Internet) AddASRR(asn bgp.ASN, n int) (*AS, error) {
	if n < 2 {
		return nil, fmt.Errorf("routersim: route-reflector AS %d needs at least 2 routers", asn)
	}
	a, err := in.newAS(asn, n)
	if err != nil {
		return nil, err
	}
	rr := a.Routers[0]
	for i := 1; i < n; i++ {
		toClient, _, err := in.Net.Connect(rr, a.Routers[i])
		if err != nil {
			return nil, err
		}
		toClient.Client = true
	}
	a.RouteReflector = true
	in.ases[asn] = a
	return a, nil
}

func (in *Internet) newAS(asn bgp.ASN, n int) (*AS, error) {
	if in.finalized {
		return nil, fmt.Errorf("routersim: internet already finalized")
	}
	if _, dup := in.ases[asn]; dup {
		return nil, fmt.Errorf("routersim: duplicate AS %d", asn)
	}
	if n < 1 {
		return nil, fmt.Errorf("routersim: AS %d needs at least one router", asn)
	}
	a := &AS{ASN: asn, igpGraph: igp.NewGraph()}
	for i := 0; i < n; i++ {
		r, err := in.Net.AddRouter(asn, uint16(i))
		if err != nil {
			return nil, err
		}
		a.Routers = append(a.Routers, r)
		a.igpGraph.AddNode()
	}
	return a, nil
}

// AS returns the AS with the given number, or nil.
func (in *Internet) AS(asn bgp.ASN) *AS { return in.ases[asn] }

// ASNs returns all AS numbers, sorted.
func (in *Internet) ASNs() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(in.ases))
	for a := range in.ases {
		out = append(out, a)
	}
	return bgp.SortASNs(out)
}

// SetIGPLink adds an intra-AS link between routers i and j of the AS with
// the given cost.
func (in *Internet) SetIGPLink(asn bgp.ASN, i, j int, cost uint32) error {
	a := in.ases[asn]
	if a == nil {
		return fmt.Errorf("routersim: unknown AS %d", asn)
	}
	return a.igpGraph.AddLink(i, j, cost)
}

// ConnectAS creates an eBGP session between router ia of AS a and router
// ib of AS b, returning the two session directions (a-side first).
func (in *Internet) ConnectAS(a bgp.ASN, ia int, b bgp.ASN, ib int) (*sim.Peer, *sim.Peer, error) {
	if a == b {
		return nil, nil, fmt.Errorf("routersim: ConnectAS within AS %d (use SetIGPLink)", a)
	}
	asA, asB := in.ases[a], in.ases[b]
	if asA == nil || asB == nil {
		return nil, nil, fmt.Errorf("routersim: unknown AS in pair (%d, %d)", a, b)
	}
	if ia < 0 || ia >= len(asA.Routers) || ib < 0 || ib >= len(asB.Routers) {
		return nil, nil, fmt.Errorf("routersim: router index out of range for (%d.%d, %d.%d)", a, ia, b, ib)
	}
	return in.Net.Connect(asA.Routers[ia], asB.Routers[ib])
}

// Finalize computes all-pairs IGP distances for every AS and installs the
// IGP-cost callback on the network. Call after the topology is complete
// and before RunPrefix. Disconnected IGP pairs get a large finite cost so
// hot-potato comparison still works deterministically. After Finalize the
// per-AS distance matrices are immutable; Clone relies on that to share
// them across copies.
func (in *Internet) Finalize() {
	for _, a := range in.ases {
		a.dist = a.igpGraph.AllPairs()
		for i := range a.dist {
			for j := range a.dist[i] {
				if a.dist[i][j] == igp.Infinity && i != j {
					a.dist[i][j] = 1 << 24 // reachable via iBGP regardless
				}
			}
		}
	}
	in.installIGPCost()
	in.finalized = true
}

// installIGPCost binds the network's IGP-cost callback to this Internet's
// AS table (hot-potato tie-breaks read the per-AS distance matrices).
func (in *Internet) installIGPCost() {
	in.Net.IGPCost = func(from, to bgp.RouterID) uint32 {
		if from.AS() != to.AS() {
			return 0
		}
		a := in.ases[from.AS()]
		if a == nil {
			return 0
		}
		i, j := int(from.Index()), int(to.Index())
		if i >= len(a.dist) || j >= len(a.dist) {
			return 0
		}
		return a.dist[i][j]
	}
}

// RunPrefix propagates one prefix originated by every router of the origin
// AS (the usual "network statement on each border router" setup) and
// leaves the converged state in the network for inspection.
func (in *Internet) RunPrefix(prefix bgp.PrefixID, origin bgp.ASN) error {
	return in.RunPrefixContext(context.Background(), prefix, origin)
}

// RunPrefixContext is RunPrefix with cancellation: a canceled context
// aborts the propagation mid-run (see sim.Network.RunContext). The
// parallel ground-truth generator uses it so a failing worker can stop
// its siblings promptly.
func (in *Internet) RunPrefixContext(ctx context.Context, prefix bgp.PrefixID, origin bgp.ASN) error {
	if !in.finalized {
		return fmt.Errorf("routersim: Finalize must be called before RunPrefix")
	}
	a := in.ases[origin]
	if a == nil {
		return fmt.Errorf("routersim: unknown origin AS %d", origin)
	}
	ids := make([]bgp.RouterID, len(a.Routers))
	for i, r := range a.Routers {
		ids[i] = r.ID
	}
	mRuns.Inc()
	return in.Net.RunContext(ctx, prefix, ids)
}

// VantagePoint is one BGP feed: a specific router whose post-convergence
// best routes are recorded, exactly like a route monitor peering with that
// router (§3.1).
type VantagePoint struct {
	ID     dataset.ObsPointID
	Router *sim.Router
}

// Observe appends the vantage points' current best routes for the given
// prefix name to a dataset. The recorded AS-path is the router's best-path
// prepended with its own AS (what a collector would receive over the
// monitoring session). Routers without a route contribute nothing; the
// origin AS's own vantage points record the bare one-hop path.
func Observe(ds *dataset.Dataset, prefixName string, learned int64, vps []VantagePoint) {
	for _, vp := range vps {
		best := vp.Router.Best()
		if best == nil {
			continue
		}
		ds.Records = append(ds.Records, dataset.Record{
			Obs:     vp.ID,
			ObsAS:   vp.Router.AS,
			Prefix:  prefixName,
			Path:    best.Path.Prepend(vp.Router.AS),
			Learned: learned,
		})
		mObs.Inc()
	}
}

// SortVantagePoints orders vantage points by ID for deterministic output.
func SortVantagePoints(vps []VantagePoint) {
	sort.Slice(vps, func(i, j int) bool { return vps[i].ID < vps[j].ID })
}
