package routersim

import (
	"asmodel/internal/bgp"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

var mClones = obs.GetCounter("routersim_clones_total", "router-level Internet clones built (parallel ground-truth workers)")

// Clone returns a deep copy of the router-level Internet: the underlying
// sim network (routers, iBGP meshes, eBGP sessions, per-session policies
// and flags) is cloned via sim.Network.Clone, and the AS table is rebuilt
// against the cloned routers. The per-AS all-pairs IGP distance matrices
// are shared, not copied: they are immutable after Finalize and the
// hot-potato tie-break only reads them, so every clone can consult the
// same matrices concurrently. The IGP-cost callback is re-bound to the
// clone's own AS table (reading the shared matrices), so a clone is fully
// self-contained: running prefixes, disabling sessions or editing
// per-session policies on it never touches the parent.
//
// Like sim.Network.Clone, per-prefix run state is not copied — a clone
// starts quiescent — and hook functions on sessions are shared by
// reference (package gen re-binds them to per-clone policy state; see
// gen.Internet.Clone). Clone must be called on a finalized Internet that
// is not mid-RunPrefix; several goroutines may clone the same quiescent
// Internet concurrently.
func (in *Internet) Clone() *Internet {
	c := &Internet{
		Net:       in.Net.Clone(),
		ases:      make(map[bgp.ASN]*AS, len(in.ases)),
		finalized: in.finalized,
	}
	for asn, a := range in.ases {
		ca := &AS{
			ASN:            a.ASN,
			RouteReflector: a.RouteReflector,
			Routers:        make([]*sim.Router, len(a.Routers)),
			igpGraph:       a.igpGraph, // read-only after Finalize
			dist:           a.dist,     // immutable, shared across clones
		}
		for i, r := range a.Routers {
			ca.Routers[i] = c.Net.Router(r.ID)
		}
		c.ases[asn] = ca
	}
	if in.finalized {
		c.installIGPCost()
	}
	mClones.Inc()
	return c
}
