package routersim

import (
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
)

func TestBuildErrors(t *testing.T) {
	in := New()
	if _, err := in.AddAS(10, 0); err == nil {
		t.Error("zero routers should fail")
	}
	if _, err := in.AddAS(10, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := in.AddAS(10, 1); err == nil {
		t.Error("duplicate AS should fail")
	}
	if _, _, err := in.ConnectAS(10, 0, 10, 1); err == nil {
		t.Error("intra-AS ConnectAS should fail")
	}
	if _, _, err := in.ConnectAS(10, 0, 99, 0); err == nil {
		t.Error("unknown AS should fail")
	}
	if _, _, err := in.ConnectAS(10, 5, 10, 0); err == nil {
		t.Error("bad router index should fail")
	}
	if err := in.SetIGPLink(99, 0, 1, 1); err == nil {
		t.Error("IGP link on unknown AS should fail")
	}
	if err := in.RunPrefix(0, 10); err == nil {
		t.Error("RunPrefix before Finalize should fail")
	}
	in.Finalize()
	if err := in.RunPrefix(0, 99); err == nil {
		t.Error("unknown origin should fail")
	}
	if _, err := in.AddAS(11, 1); err == nil {
		t.Error("AddAS after Finalize should fail")
	}
}

// buildHotPotato constructs the paper-style diversity scenario: transit
// AS 10 with routers {0,1,2}, two eBGP links to origin AS 20 (at routers
// 0 and 1), and customer ASes 30 and 40 attached at routers 0 and 1
// respectively. Hot-potato routing makes routers 0 and 1 pick different
// exits, so AS 30 and AS 40 receive the same AS-path "10 20" but through
// different links — and a vantage point inside AS 10 sees the diversity.
func buildHotPotato(t *testing.T) *Internet {
	t.Helper()
	in := New()
	if _, err := in.AddAS(10, 3); err != nil {
		t.Fatal(err)
	}
	in.AddAS(20, 2)
	in.AddAS(30, 1)
	in.AddAS(40, 1)
	// IGP inside AS10: line 0 -1- 1, 1 -1- 2 (router 2 nearer to 1).
	in.SetIGPLink(10, 0, 1, 10)
	in.SetIGPLink(10, 1, 2, 1)
	in.SetIGPLink(10, 0, 2, 10)
	// IGP inside AS20.
	in.SetIGPLink(20, 0, 1, 1)
	// eBGP.
	if _, _, err := in.ConnectAS(10, 0, 20, 0); err != nil {
		t.Fatal(err)
	}
	in.ConnectAS(10, 1, 20, 1)
	in.ConnectAS(10, 2, 30, 0)
	in.ConnectAS(10, 0, 40, 0)
	in.Finalize()
	return in
}

func TestHotPotatoExitSelection(t *testing.T) {
	in := buildHotPotato(t)
	if err := in.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	a10 := in.AS(10)
	r0, r1, r2 := a10.Routers[0], a10.Routers[1], a10.Routers[2]
	// Routers 0 and 1 have their own eBGP sessions: they keep them.
	if !r0.Best().EBGP || !r1.Best().EBGP {
		t.Fatal("border routers should pick their own eBGP exits")
	}
	// Router 2 is IGP-close to router 1: hot potato picks exit 1.
	if r2.Best().Peer != r1.ID {
		t.Errorf("router 2 exit = %s, want %s (hot potato)", r2.Best().Peer, r1.ID)
	}
}

func TestObserve(t *testing.T) {
	in := buildHotPotato(t)
	if err := in.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	vps := []VantagePoint{
		{ID: "op10-0", Router: in.AS(10).Routers[0]},
		{ID: "op30-0", Router: in.AS(30).Routers[0]},
		{ID: "op20-0", Router: in.AS(20).Routers[0]},
	}
	SortVantagePoints(vps)
	ds := &dataset.Dataset{}
	Observe(ds, "P20", 1234, vps)
	if ds.Len() != 3 {
		t.Fatalf("records=%d", ds.Len())
	}
	for _, r := range ds.Records {
		if err := r.Valid(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
		if r.Learned != 1234 {
			t.Error("learned time not recorded")
		}
		if o, _ := r.Path.Origin(); o != 20 {
			t.Errorf("origin=%v for path %v", o, r.Path)
		}
	}
	// Origin-AS vantage point records the bare path [20].
	for _, r := range ds.Records {
		if r.Obs == "op20-0" && !r.Path.Equal(bgp.Path{20}) {
			t.Errorf("origin vantage path = %v", r.Path)
		}
		if r.Obs == "op30-0" && !r.Path.Equal(bgp.Path{30, 10, 20}) {
			t.Errorf("AS30 vantage path = %v", r.Path)
		}
	}
}

func TestObserveSkipsRouteless(t *testing.T) {
	in := New()
	in.AddAS(10, 1)
	in.AddAS(20, 1)
	// No eBGP link at all: AS10 never learns AS20's prefix.
	in.Finalize()
	if err := in.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	ds := &dataset.Dataset{}
	Observe(ds, "P20", 0, []VantagePoint{{ID: "op10-0", Router: in.AS(10).Routers[0]}})
	if ds.Len() != 0 {
		t.Fatalf("routeless vantage recorded %d records", ds.Len())
	}
}

func TestDisconnectedIGPStillConverges(t *testing.T) {
	// AS with two routers but no IGP link: iBGP still works, costs are the
	// large sentinel, and propagation converges.
	in := New()
	in.AddAS(10, 2)
	in.AddAS(20, 1)
	in.ConnectAS(10, 0, 20, 0)
	in.Finalize()
	if err := in.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	r1 := in.AS(10).Routers[1]
	if r1.Best() == nil {
		t.Fatal("router 1 should learn via iBGP despite missing IGP link")
	}
	if r1.Best().IGPCost == 0 {
		t.Error("sentinel IGP cost expected for disconnected pair")
	}
}

func TestMultiplePrefixesSequential(t *testing.T) {
	in := buildHotPotato(t)
	for i, origin := range []bgp.ASN{20, 30, 40} {
		if err := in.RunPrefix(bgp.PrefixID(i), origin); err != nil {
			t.Fatalf("prefix %d: %v", i, err)
		}
		if got := in.Net.Prefix(); got != bgp.PrefixID(i) {
			t.Errorf("network prefix = %d", got)
		}
		// Every other AS should reach the origin (no policies installed).
		for _, asn := range in.ASNs() {
			if asn == origin {
				continue
			}
			found := false
			for _, r := range in.AS(asn).Routers {
				if b := r.Best(); b != nil {
					if o, _ := b.Path.Origin(); o == origin {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("AS %d has no route to AS %d", asn, origin)
			}
		}
	}
}

func TestASNsSorted(t *testing.T) {
	in := New()
	in.AddAS(30, 1)
	in.AddAS(10, 1)
	in.AddAS(20, 1)
	got := in.ASNs()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("ASNs=%v", got)
	}
	if in.AS(10).NumRouters() != 1 {
		t.Error("NumRouters")
	}
	if in.AS(99) != nil {
		t.Error("unknown AS should be nil")
	}
}

func TestRouteReflector(t *testing.T) {
	in := New()
	if _, err := in.AddASRR(10, 1); err == nil {
		t.Error("RR AS with one router accepted")
	}
	a, err := in.AddASRR(10, 3) // router 0 = RR, 1 and 2 clients
	if err != nil {
		t.Fatal(err)
	}
	if !a.RouteReflector {
		t.Error("flag not set")
	}
	in.AddAS(20, 1)
	// eBGP feed arrives at CLIENT 1; the RR must reflect it to client 2.
	in.ConnectAS(10, 1, 20, 0)
	in.SetIGPLink(10, 0, 1, 1)
	in.SetIGPLink(10, 0, 2, 1)
	in.Finalize()
	if err := in.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	r0, r2 := a.Routers[0], a.Routers[2]
	if r0.Best() == nil {
		t.Fatal("reflector did not learn the client route")
	}
	if r2.Best() == nil {
		t.Fatal("client 2 did not receive the reflected route")
	}
	if r2.Best().EBGP {
		t.Error("client 2's route should be iBGP-learned")
	}
	if o, _ := r2.Best().Path.Origin(); o != 20 {
		t.Errorf("client 2 path=%v", r2.Best().Path)
	}
	// Clients have exactly one iBGP session (to the RR), no mesh.
	ibgp := 0
	for _, p := range r2.Peers() {
		if !p.EBGP {
			ibgp++
		}
	}
	if ibgp != 1 {
		t.Errorf("client 2 has %d iBGP sessions, want 1", ibgp)
	}
}

func TestRouteReflectorHidesDiversity(t *testing.T) {
	// Two eBGP exits at clients 1 and 2; client 3 sees only what the RR
	// reflects — ONE path, not two (the diversity-hiding effect).
	in := New()
	a, _ := in.AddASRR(10, 4)
	in.AddAS(20, 2)
	in.ConnectAS(10, 1, 20, 0)
	in.ConnectAS(10, 2, 20, 1)
	for i := 1; i < 4; i++ {
		in.SetIGPLink(10, 0, i, 1)
	}
	in.SetIGPLink(20, 0, 1, 1)
	in.Finalize()
	if err := in.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	r3 := a.Routers[3]
	routes, _ := r3.RIBIn()
	if len(routes) != 1 {
		t.Fatalf("client 3 sees %d routes, want exactly 1 (reflection hides diversity)", len(routes))
	}
}
