package routersim

import "testing"

func TestCloneStartsQuiescentAndConvergesIdentically(t *testing.T) {
	parent := buildHotPotato(t)
	if err := parent.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	clone := parent.Clone()

	// A clone starts quiescent even when the parent has run a prefix.
	for _, asn := range clone.ASNs() {
		for _, r := range clone.AS(asn).Routers {
			if r.Best() != nil {
				t.Fatalf("clone router %s has run state before any Run", r.ID)
			}
		}
	}

	// Running the same prefix on the clone converges to the same choices.
	if err := clone.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	for _, asn := range parent.ASNs() {
		pa, ca := parent.AS(asn), clone.AS(asn)
		for i := range pa.Routers {
			pb, cb := pa.Routers[i].Best(), ca.Routers[i].Best()
			if (pb == nil) != (cb == nil) {
				t.Fatalf("AS%d router %d: best nil-ness differs", asn, i)
			}
			if pb == nil {
				continue
			}
			if pb.Peer != cb.Peer || !pb.Path.Equal(cb.Path) || pb.IGPCost != cb.IGPCost {
				t.Errorf("AS%d router %d: clone best (%s via %s) != parent best (%s via %s)",
					asn, i, cb.Path, cb.Peer, pb.Path, pb.Peer)
			}
		}
	}
}

func TestCloneMutationsNeverLeakToParent(t *testing.T) {
	parent := buildHotPotato(t)
	if err := parent.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	wantR2Exit := parent.AS(10).Routers[2].Best().Peer

	clone := parent.Clone()

	// Take down both eBGP links between AS10 and AS20 on the clone and
	// install an export deny: AS10's transit of the prefix disappears there.
	for _, r := range clone.AS(10).Routers {
		for _, p := range r.Peers() {
			if p.EBGP && p.Remote.AS == 20 {
				p.SetDisabled(true)
				if rev := p.Remote.PeerTo(r.ID); rev != nil {
					rev.SetDisabled(true)
				}
			}
			if p.EBGP && p.Remote.AS == 30 {
				p.DenyExport(1)
			}
		}
	}
	if err := clone.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	if best := clone.AS(10).Routers[0].Best(); best != nil {
		t.Fatalf("clone AS10 still routes the prefix after link removal: %v", best.Path)
	}

	// The parent's sessions, policies and converged state are untouched.
	for _, r := range parent.AS(10).Routers {
		for _, p := range r.Peers() {
			if p.Disabled() {
				t.Fatalf("parent session %s->%s disabled by clone mutation", p.Local.ID, p.Remote.ID)
			}
			if p.ExportDenied(1) {
				t.Fatalf("parent session %s->%s gained an export deny", p.Local.ID, p.Remote.ID)
			}
		}
	}
	if err := parent.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	if got := parent.AS(10).Routers[2].Best().Peer; got != wantR2Exit {
		t.Errorf("parent hot-potato exit changed after clone mutation: %s != %s", got, wantR2Exit)
	}
}

func TestCloneSharesIGPMatrices(t *testing.T) {
	parent := buildHotPotato(t)
	clone := parent.Clone()
	for asn, pa := range parent.ases {
		ca := clone.ases[asn]
		if ca.RouteReflector != pa.RouteReflector || ca.ASN != pa.ASN {
			t.Fatalf("AS%d metadata not copied", asn)
		}
		if len(pa.dist) == 0 {
			continue
		}
		// Same backing arrays: the immutable distance matrices are shared,
		// not duplicated, across clones.
		if &ca.dist[0][0] != &pa.dist[0][0] {
			t.Errorf("AS%d IGP distance matrix was copied instead of shared", asn)
		}
	}
	// And the clone's IGP callback reads them: hot-potato behaves the same.
	if err := clone.RunPrefix(1, 20); err != nil {
		t.Fatal(err)
	}
	r2 := clone.AS(10).Routers[2]
	if r2.Best() == nil || r2.Best().IGPCost == 0 {
		t.Error("clone's IGP-cost callback not wired to the shared matrices")
	}
	// Each AS keeps exactly as many routers as the parent, bound to the
	// clone's own network.
	for asn, pa := range parent.ases {
		ca := clone.ases[asn]
		if ca.NumRouters() != pa.NumRouters() {
			t.Fatalf("AS%d router count %d != %d", asn, ca.NumRouters(), pa.NumRouters())
		}
		for i, r := range ca.Routers {
			if r == pa.Routers[i] {
				t.Fatalf("AS%d router %d shared with parent", asn, i)
			}
			if clone.Net.Router(r.ID) != r {
				t.Fatalf("AS%d router %d not registered in clone network", asn, i)
			}
		}
	}
}
