// Package topology derives and analyzes AS-level topologies from BGP path
// data, implementing the data-analysis pipeline of §3.1 of the paper:
// building the AS graph from adjacent ASes on observed AS-paths, inferring
// the level-1 (tier-1) clique from seed ASes, classifying ASes into
// level-1 / level-2 / other, identifying transit vs. stub ASes and single-
// vs. multi-homed stubs, and pruning single-homed stub ASes while
// transferring their path information to their provider's prefix.
package topology

import (
	"fmt"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
)

// Edge is an undirected AS adjacency, normalized so A < B.
type Edge struct {
	A, B bgp.ASN
}

// MakeEdge returns the normalized edge between two ASes.
func MakeEdge(a, b bgp.ASN) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// Graph is an undirected AS-level graph.
type Graph struct {
	adj   map[bgp.ASN]map[bgp.ASN]struct{}
	edges int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[bgp.ASN]map[bgp.ASN]struct{})}
}

// FromDataset builds the AS graph from a dataset: "if two ASes are next to
// each other on a path we assume that they have an agreement to exchange
// data and are therefore neighbors in the AS-topology graph" (§3.1).
// Looped paths are skipped entirely; prepending is collapsed first.
func FromDataset(d *dataset.Dataset) *Graph {
	g := NewGraph()
	for _, r := range d.Records {
		p := r.Path.StripPrepend()
		if p.HasLoop() {
			continue
		}
		g.AddNode(r.ObsAS)
		for i := 0; i+1 < len(p); i++ {
			g.AddEdge(p[i], p[i+1])
		}
		if len(p) > 0 {
			g.AddNode(p[len(p)-1])
		}
	}
	return g
}

// AddNode ensures the AS exists in the graph.
func (g *Graph) AddNode(a bgp.ASN) {
	if _, ok := g.adj[a]; !ok {
		g.adj[a] = make(map[bgp.ASN]struct{})
	}
}

// AddEdge inserts the undirected edge (a, b); self-loops are ignored.
// It reports whether the edge was new.
func (g *Graph) AddEdge(a, b bgp.ASN) bool {
	if a == b {
		return false
	}
	g.AddNode(a)
	g.AddNode(b)
	if _, dup := g.adj[a][b]; dup {
		return false
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.edges++
	return true
}

// RemoveEdge deletes the edge if present and reports whether it existed.
func (g *Graph) RemoveEdge(a, b bgp.ASN) bool {
	if _, ok := g.adj[a][b]; !ok {
		return false
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.edges--
	return true
}

// RemoveNode deletes the AS and all incident edges.
func (g *Graph) RemoveNode(a bgp.ASN) {
	for b := range g.adj[a] {
		delete(g.adj[b], a)
		g.edges--
	}
	delete(g.adj, a)
}

// HasNode reports whether the AS is in the graph.
func (g *Graph) HasNode(a bgp.ASN) bool {
	_, ok := g.adj[a]
	return ok
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b bgp.ASN) bool {
	_, ok := g.adj[a][b]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the (undirected) edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the number of neighbors of the AS.
func (g *Graph) Degree(a bgp.ASN) int { return len(g.adj[a]) }

// Nodes returns all ASes, sorted.
func (g *Graph) Nodes() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(g.adj))
	for a := range g.adj {
		out = append(out, a)
	}
	return bgp.SortASNs(out)
}

// Neighbors returns the sorted neighbors of the AS.
func (g *Graph) Neighbors(a bgp.ASN) []bgp.ASN {
	out := make([]bgp.ASN, 0, len(g.adj[a]))
	for b := range g.adj[a] {
		out = append(out, b)
	}
	return bgp.SortASNs(out)
}

// Edges returns all edges, sorted (A-major).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for a, nbrs := range g.adj {
		for b := range nbrs {
			if a < b {
				out = append(out, Edge{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for a, nbrs := range g.adj {
		c.AddNode(a)
		for b := range nbrs {
			c.AddEdge(a, b)
		}
	}
	return c
}

// ConnectedTo returns the set of ASes reachable from start, including
// start itself (BFS).
func (g *Graph) ConnectedTo(start bgp.ASN) map[bgp.ASN]struct{} {
	seen := map[bgp.ASN]struct{}{}
	if !g.HasNode(start) {
		return seen
	}
	seen[start] = struct{}{}
	queue := []bgp.ASN{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// Tier1Clique grows the level-1 provider set from seed ASes: an AS is
// added if the resulting subgraph among level-1 providers remains complete
// — "we derive the AS-subgraph to be the largest clique of ASes including
// our seed ASes" (§3.1). Candidates are examined in decreasing degree
// (ties: ascending ASN) so the expansion is deterministic and prefers
// well-connected ASes. It returns an error if the seeds themselves do not
// form a clique.
func (g *Graph) Tier1Clique(seeds []bgp.ASN) ([]bgp.ASN, error) {
	for _, s := range seeds {
		if !g.HasNode(s) {
			return nil, fmt.Errorf("topology: seed AS %d not in graph", s)
		}
	}
	for i := 0; i < len(seeds); i++ {
		for j := i + 1; j < len(seeds); j++ {
			if !g.HasEdge(seeds[i], seeds[j]) {
				return nil, fmt.Errorf("topology: seed ASes %d and %d are not adjacent", seeds[i], seeds[j])
			}
		}
	}
	clique := make([]bgp.ASN, len(seeds))
	copy(clique, seeds)
	inClique := make(map[bgp.ASN]bool, len(seeds))
	for _, s := range seeds {
		inClique[s] = true
	}

	cands := g.Nodes()
	sort.Slice(cands, func(i, j int) bool {
		di, dj := g.Degree(cands[i]), g.Degree(cands[j])
		if di != dj {
			return di > dj
		}
		return cands[i] < cands[j]
	})
	for _, c := range cands {
		if inClique[c] {
			continue
		}
		complete := true
		for _, m := range clique {
			if !g.HasEdge(c, m) {
				complete = false
				break
			}
		}
		if complete {
			clique = append(clique, c)
			inClique[c] = true
		}
	}
	return bgp.SortASNs(clique), nil
}

// Level classifies an AS's position in the provider hierarchy (§3.1).
type Level uint8

// Level values.
const (
	// LevelOther covers all ASes that are neither level-1 nor their direct
	// neighbors.
	LevelOther Level = iota
	// Level2 ASes are direct neighbors of a level-1 provider.
	Level2
	// Level1 ASes form the tier-1 clique.
	Level1
)

func (l Level) String() string {
	switch l {
	case Level1:
		return "level-1"
	case Level2:
		return "level-2"
	default:
		return "other"
	}
}

// Levels classifies every AS given the level-1 set: level-1 providers,
// their neighbors (level-2), and everything else ("other").
func (g *Graph) Levels(tier1 []bgp.ASN) map[bgp.ASN]Level {
	out := make(map[bgp.ASN]Level, g.NumNodes())
	for _, a := range g.Nodes() {
		out[a] = LevelOther
	}
	for _, t := range tier1 {
		for b := range g.adj[t] {
			out[b] = Level2
		}
	}
	for _, t := range tier1 {
		out[t] = Level1
	}
	return out
}
