package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
)

func rec(obs string, prefix string, path ...bgp.ASN) dataset.Record {
	return dataset.Record{Obs: dataset.ObsPointID(obs), ObsAS: path[0], Prefix: prefix, Path: bgp.Path(path)}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	if !g.AddEdge(1, 2) {
		t.Error("new edge should report true")
	}
	if g.AddEdge(2, 1) {
		t.Error("duplicate edge should report false")
	}
	if g.AddEdge(3, 3) {
		t.Error("self loop should report false")
	}
	g.AddEdge(2, 3)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge should be symmetric")
	}
	if g.Degree(2) != 2 {
		t.Errorf("Degree(2)=%d", g.Degree(2))
	}
	if nbrs := g.Neighbors(2); len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Errorf("Neighbors(2)=%v", nbrs)
	}
	if !g.RemoveEdge(1, 2) || g.RemoveEdge(1, 2) {
		t.Error("RemoveEdge semantics")
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges=%d after removal", g.NumEdges())
	}
	g.RemoveNode(2)
	if g.HasNode(2) || g.NumEdges() != 0 {
		t.Error("RemoveNode should drop incident edges")
	}
}

func TestEdgesSortedAndNormalized(t *testing.T) {
	g := NewGraph()
	g.AddEdge(5, 2)
	g.AddEdge(1, 9)
	g.AddEdge(1, 3)
	edges := g.Edges()
	want := []Edge{{1, 3}, {1, 9}, {2, 5}}
	if len(edges) != len(want) {
		t.Fatalf("edges=%v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edges[%d]=%v want %v", i, edges[i], want[i])
		}
	}
	if MakeEdge(7, 3) != (Edge{3, 7}) {
		t.Error("MakeEdge should normalize")
	}
}

func TestFromDataset(t *testing.T) {
	d := &dataset.Dataset{Records: []dataset.Record{
		rec("a", "P4", 1, 2, 4),
		rec("a", "P4", 1, 1, 2, 4), // prepending: no self loop
		rec("a", "P9", 1, 2, 1, 9), // loop: skipped entirely
		rec("b", "P7", 7),          // obs AS == origin: node only
	}}
	g := FromDataset(d)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 4) {
		t.Error("missing expected edges")
	}
	if g.HasEdge(2, 1) && g.NumEdges() != 2 {
		t.Errorf("edges=%d want 2", g.NumEdges())
	}
	if !g.HasNode(7) {
		t.Error("isolated origin/obs AS should be a node")
	}
	if g.HasNode(9) {
		t.Error("looped path should contribute nothing")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.HasEdge(2, 3) {
		t.Fatal("Clone shares adjacency")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 1 {
		t.Fatal("edge counts wrong after clone")
	}
}

func TestConnectedTo(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(10, 11)
	comp := g.ConnectedTo(1)
	if len(comp) != 3 {
		t.Errorf("component of 1 has %d nodes", len(comp))
	}
	if _, ok := comp[10]; ok {
		t.Error("10 should be in another component")
	}
	if len(g.ConnectedTo(99)) != 0 {
		t.Error("unknown start should yield empty set")
	}
}

func buildTierGraph() *Graph {
	g := NewGraph()
	// Tier-1 clique: 10, 20, 30 (fully meshed).
	g.AddEdge(10, 20)
	g.AddEdge(10, 30)
	g.AddEdge(20, 30)
	// AS 40 connects to all three: should join the clique.
	g.AddEdge(40, 10)
	g.AddEdge(40, 20)
	g.AddEdge(40, 30)
	// AS 50 connects to only two: must not join.
	g.AddEdge(50, 10)
	g.AddEdge(50, 20)
	// AS 60 hangs off 50: level other.
	g.AddEdge(60, 50)
	return g
}

func TestTier1Clique(t *testing.T) {
	g := buildTierGraph()
	clique, err := g.Tier1Clique([]bgp.ASN{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	want := []bgp.ASN{10, 20, 30, 40}
	if len(clique) != len(want) {
		t.Fatalf("clique=%v want %v", clique, want)
	}
	for i := range want {
		if clique[i] != want[i] {
			t.Fatalf("clique=%v want %v", clique, want)
		}
	}
	// Result must be an actual clique.
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			if !g.HasEdge(clique[i], clique[j]) {
				t.Errorf("clique members %d,%d not adjacent", clique[i], clique[j])
			}
		}
	}
}

func TestTier1CliqueErrors(t *testing.T) {
	g := buildTierGraph()
	if _, err := g.Tier1Clique([]bgp.ASN{10, 999}); err == nil {
		t.Error("unknown seed should fail")
	}
	if _, err := g.Tier1Clique([]bgp.ASN{10, 60}); err == nil {
		t.Error("non-adjacent seeds should fail")
	}
}

func TestTier1CliqueProperty(t *testing.T) {
	// On random graphs containing a planted clique, the result always
	// contains the seeds and is always a clique.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		planted := []bgp.ASN{1, 2, 3}
		for i := 0; i < len(planted); i++ {
			for j := i + 1; j < len(planted); j++ {
				g.AddEdge(planted[i], planted[j])
			}
		}
		for a := bgp.ASN(4); a < 30; a++ {
			for b := bgp.ASN(1); b < a; b++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(a, b)
				}
			}
		}
		clique, err := g.Tier1Clique(planted[:2])
		if err != nil {
			return false
		}
		seen := map[bgp.ASN]bool{}
		for _, c := range clique {
			seen[c] = true
		}
		if !seen[1] || !seen[2] {
			return false
		}
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				if !g.HasEdge(clique[i], clique[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLevels(t *testing.T) {
	g := buildTierGraph()
	tier1, _ := g.Tier1Clique([]bgp.ASN{10, 20, 30})
	levels := g.Levels(tier1)
	if levels[10] != Level1 || levels[40] != Level1 {
		t.Error("clique members should be level-1")
	}
	if levels[50] != Level2 {
		t.Errorf("AS50 level=%v want level-2", levels[50])
	}
	if levels[60] != LevelOther {
		t.Errorf("AS60 level=%v want other", levels[60])
	}
	for _, l := range []Level{Level1, Level2, LevelOther} {
		if l.String() == "" {
			t.Error("empty level string")
		}
	}
}

func TestTransitAndStubClassification(t *testing.T) {
	d := &dataset.Dataset{Records: []dataset.Record{
		rec("a", "P4", 1, 2, 4), // 2 provides transit
		rec("a", "P5", 1, 2, 5), // 5 is a stub
		rec("a", "P6", 1, 2, 6), // 6...
		rec("b", "P6", 7, 3, 6), // ...is multi-homed (nbrs 2 and 3)
	}}
	g := FromDataset(d)
	transit := TransitASes(d)
	if _, ok := transit[2]; !ok {
		t.Error("AS2 should be transit")
	}
	if _, ok := transit[5]; ok {
		t.Error("AS5 should not be transit")
	}
	classes := ClassifyStubs(g, transit)
	if classes[2] != NotStub {
		t.Errorf("AS2=%v", classes[2])
	}
	if classes[5] != SingleHomedStub {
		t.Errorf("AS5=%v", classes[5])
	}
	if classes[6] != MultiHomedStub {
		t.Errorf("AS6=%v", classes[6])
	}
	if classes[4] != SingleHomedStub {
		t.Errorf("AS4=%v", classes[4])
	}
	for _, c := range []StubClass{NotStub, SingleHomedStub, MultiHomedStub} {
		if c.String() == "" {
			t.Error("empty class string")
		}
	}
}

func TestPruneSingleHomedStubs(t *testing.T) {
	d := &dataset.Dataset{Records: []dataset.Record{
		rec("a", "P4", 1, 2, 4),                       // 4 single-homed stub: transferred
		rec("a", dataset.SyntheticPrefix(6), 1, 2, 6), // 6 multi-homed: kept
		rec("b", dataset.SyntheticPrefix(6), 7, 3, 6),
		rec("a", "P2own", 1, 2), // provider's own prefix: untouched
	}}
	g := FromDataset(d)
	ng, res := PruneSingleHomedStubs(g, d)
	if len(res.Removed) == 0 {
		t.Fatal("nothing pruned")
	}
	for _, a := range res.Removed {
		if ng.HasNode(a) {
			t.Errorf("pruned AS %d still in graph", a)
		}
		for _, r := range d.Records {
			if r.Path.Contains(a) {
				t.Errorf("pruned AS %d still on path %v", a, r.Path)
			}
		}
	}
	if res.Transferred != 1 {
		t.Errorf("transferred=%d want 1", res.Transferred)
	}
	// The transferred record must now target the provider's prefix.
	found := false
	for _, r := range d.Records {
		if r.Prefix == dataset.SyntheticPrefix(2) && r.Path.Equal(bgp.Path{1, 2}) {
			found = true
		}
	}
	if !found {
		t.Error("transferred record not found")
	}
	// Observation ASes are never pruned, even when single-homed stubs.
	if !ng.HasNode(1) || !ng.HasNode(7) {
		t.Error("observation ASes must survive pruning")
	}
}

func TestPruneDropsUnsalvageable(t *testing.T) {
	// A record whose path is just [obsAS] with obsAS pruned cannot occur
	// (obs ASes are kept); craft the dropped case differently: a stub
	// origin with a 1-hop path where the origin is not the obs AS is
	// impossible, so Dropped should be 0 here — exercise the accounting.
	d := &dataset.Dataset{Records: []dataset.Record{
		rec("a", "P4", 1, 2, 4),
	}}
	g := FromDataset(d)
	_, res := PruneSingleHomedStubs(g, d)
	if res.Dropped != 0 {
		t.Errorf("dropped=%d want 0", res.Dropped)
	}
}

func TestComputeStats(t *testing.T) {
	// Tier-1: 10-20 meshed; stubs below.
	d := &dataset.Dataset{Records: []dataset.Record{
		rec("a", "P20", 10, 20),
		rec("b", "P10", 20, 10),
		rec("a", "P30", 10, 20, 30),
		rec("a", "P40", 10, 30, 40), // 30 transits
		rec("b", "P40", 20, 30, 40),
	}}
	s, err := ComputeStats(d, []bgp.ASN{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.ASes != 4 {
		t.Errorf("ASes=%d", s.ASes)
	}
	if len(s.Tier1) < 2 {
		t.Errorf("Tier1=%v", s.Tier1)
	}
	if s.Transit != 2 { // 20 transits on "10 20 30", 30 on "10/20 30 40"
		t.Errorf("Transit=%d", s.Transit)
	}
	if s.SingleHomedStub+s.MultiHomedStub == 0 {
		t.Error("no stubs found")
	}
	if s.PrunedASes > s.ASes {
		t.Error("pruning grew the graph")
	}
	if _, err := ComputeStats(d, []bgp.ASN{10, 999}); err == nil {
		t.Error("bad seeds should propagate error")
	}
	// ComputeStats must not mutate the dataset.
	if d.Len() != 5 {
		t.Error("ComputeStats mutated the dataset")
	}
}
