package topology

import (
	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
)

// TransitASes returns the set of ASes that provide transit: those that
// appear at least once in the middle of an observed AS-path (§3.1).
func TransitASes(d *dataset.Dataset) map[bgp.ASN]struct{} {
	out := make(map[bgp.ASN]struct{})
	for _, r := range d.Records {
		p := r.Path.StripPrepend()
		for i := 1; i+1 < len(p); i++ {
			out[p[i]] = struct{}{}
		}
	}
	return out
}

// StubClass classifies a non-transit AS by its number of upstreams.
type StubClass uint8

// Stub classes (§3.1).
const (
	// NotStub marks ASes that provide transit.
	NotStub StubClass = iota
	// SingleHomedStub is a non-transit AS with exactly one neighbor.
	SingleHomedStub
	// MultiHomedStub is a non-transit AS with two or more neighbors.
	MultiHomedStub
)

func (s StubClass) String() string {
	switch s {
	case SingleHomedStub:
		return "single-homed stub"
	case MultiHomedStub:
		return "multi-homed stub"
	default:
		return "transit"
	}
}

// ClassifyStubs labels every AS of the graph as transit, single-homed
// stub, or multi-homed stub, using the transit set derived from the
// dataset.
func ClassifyStubs(g *Graph, transit map[bgp.ASN]struct{}) map[bgp.ASN]StubClass {
	out := make(map[bgp.ASN]StubClass, g.NumNodes())
	for _, a := range g.Nodes() {
		if _, t := transit[a]; t {
			out[a] = NotStub
		} else if g.Degree(a) <= 1 {
			out[a] = SingleHomedStub
		} else {
			out[a] = MultiHomedStub
		}
	}
	return out
}

// PruneResult reports what PruneSingleHomedStubs did.
type PruneResult struct {
	// Removed lists the pruned single-homed stub ASes, sorted.
	Removed []bgp.ASN
	// Transferred counts records whose origin prefix was re-attached to
	// the stub's provider (§3.1: "path information gathered from prefixes
	// originated at such stub-ASes is transferred to a prefix originated
	// at its AS neighbor").
	Transferred int
	// Dropped counts records that could not be kept (the path collapsed to
	// nothing, e.g. a stub observing only its own prefix).
	Dropped int
}

// PruneSingleHomedStubs removes single-homed non-transit stub ASes from
// the graph and rewrites the dataset so no pruned AS appears on any path:
// a record for a prefix originated at pruned stub S homed to provider N
// becomes a record for N's prefix with the trailing S removed. ASes that
// host observation points are never pruned (their feeds anchor the
// evaluation). The dataset is modified in place; a new graph is returned.
func PruneSingleHomedStubs(g *Graph, d *dataset.Dataset) (*Graph, PruneResult) {
	transit := TransitASes(d)
	classes := ClassifyStubs(g, transit)
	obsASes := make(map[bgp.ASN]bool)
	for _, r := range d.Records {
		obsASes[r.ObsAS] = true
	}

	var res PruneResult
	pruned := make(map[bgp.ASN]bool)
	for _, a := range g.Nodes() {
		if classes[a] == SingleHomedStub && !obsASes[a] {
			pruned[a] = true
			res.Removed = append(res.Removed, a)
		}
	}

	out := d.Records[:0]
	for _, r := range d.Records {
		o, _ := r.Path.Origin()
		if pruned[o] {
			// Transfer: drop the trailing stub and re-attach to the
			// provider's prefix.
			if len(r.Path) < 2 {
				res.Dropped++
				continue
			}
			r.Path = r.Path[:len(r.Path)-1].Clone()
			provider, _ := r.Path.Origin()
			r.Prefix = dataset.SyntheticPrefix(provider)
			res.Transferred++
		}
		// Any other appearance of a pruned AS is impossible: pruned ASes
		// are non-transit (never mid-path) and never observation ASes.
		out = append(out, r)
	}
	d.Records = out

	ng := g.Clone()
	for a := range pruned {
		ng.RemoveNode(a)
	}
	return ng, res
}

// Stats summarizes a dataset's topology the way §3.1 of the paper does.
type Stats struct {
	ASes            int
	Edges           int
	Tier1           []bgp.ASN
	Level2          int
	Other           int
	Transit         int
	SingleHomedStub int
	MultiHomedStub  int
	PrunedASes      int
	PrunedEdges     int
}

// ComputeStats derives the §3.1 summary for a dataset: graph size, levels
// (given tier-1 seeds), transit/stub breakdown, and the size of the graph
// after pruning single-homed stubs. The dataset is not modified.
func ComputeStats(d *dataset.Dataset, tier1Seeds []bgp.ASN) (Stats, error) {
	g := FromDataset(d)
	var s Stats
	s.ASes = g.NumNodes()
	s.Edges = g.NumEdges()

	tier1, err := g.Tier1Clique(tier1Seeds)
	if err != nil {
		return s, err
	}
	s.Tier1 = tier1
	levels := g.Levels(tier1)
	for _, l := range levels {
		switch l {
		case Level2:
			s.Level2++
		case LevelOther:
			s.Other++
		}
	}

	transit := TransitASes(d)
	s.Transit = len(transit)
	for _, c := range ClassifyStubs(g, transit) {
		switch c {
		case SingleHomedStub:
			s.SingleHomedStub++
		case MultiHomedStub:
			s.MultiHomedStub++
		}
	}

	work := d.Clone()
	pg, _ := PruneSingleHomedStubs(g, work)
	s.PrunedASes = pg.NumNodes()
	s.PrunedEdges = pg.NumEdges()
	return s, nil
}
