package mrt

import (
	"bytes"
	"net/netip"
	"testing"

	"asmodel/internal/bgp"
)

// fuzzBodies drains every record in buf and returns the raw bodies, for
// seeding fuzz corpora with well-formed inputs built by the writers.
func fuzzBodies(f *testing.F, buf *bytes.Buffer) [][]byte {
	f.Helper()
	var out [][]byte
	r := NewReader(buf)
	for {
		rec, err := r.Next()
		if err != nil {
			return out
		}
		out = append(out, rec.Body)
	}
}

// FuzzParsePeerIndexTable fuzzes the PEER_INDEX_TABLE body parser with a
// valid table (and truncations of it) as the seed corpus. The parser
// must never panic; on success the peer list must be self-consistent.
func FuzzParsePeerIndexTable(f *testing.F) {
	peers := []PeerEntry{
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 1}), AS: 3356},
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 2}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 2}), AS: 701},
	}
	var buf bytes.Buffer
	if _, err := NewTableDumpWriter(NewWriter(&buf), 1000, "fuzz-view", peers); err != nil {
		f.Fatal(err)
	}
	for _, body := range fuzzBodies(f, &buf) {
		f.Add(body)
		f.Add(body[:len(body)/2])
		f.Add(body[:1])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := &Record{Type: TypeTableDumpV2, Subtype: SubtypePeerIndexTable, Body: body}
		pit, err := ParsePeerIndexTable(rec)
		if err != nil {
			return
		}
		if pit == nil {
			t.Fatal("nil table without error")
		}
	})
}

// FuzzParseRIB fuzzes the RIB_IPV4/IPV6_UNICAST body parser, seeded
// with valid v4 and v6 RIB records and their truncations.
func FuzzParseRIB(f *testing.F) {
	peers := []PeerEntry{
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 1}), AS: 3356},
	}
	var buf bytes.Buffer
	tw, err := NewTableDumpWriter(NewWriter(&buf), 1000, "v", peers)
	if err != nil {
		f.Fatal(err)
	}
	attrs := &PathAttrs{
		Origin:   bgp.OriginIGP,
		Segments: SequencePath(bgp.Path{3356, 1239, 24249}),
		NextHop:  peers[0].Addr,
	}
	entries := []RIBEntry{{PeerIndex: 0, Originated: 555, Attrs: attrs}}
	if err := tw.WriteRIB(1001, netip.MustParsePrefix("192.0.2.0/24"), entries); err != nil {
		f.Fatal(err)
	}
	if err := tw.WriteRIB(1002, netip.MustParsePrefix("203.0.113.128/25"), entries); err != nil {
		f.Fatal(err)
	}
	bodies := fuzzBodies(f, &buf)
	for _, body := range bodies[1:] { // skip the PIT record
		f.Add(body, false)
		f.Add(body, true)
		f.Add(body[:len(body)/2], false)
	}
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, body []byte, v6 bool) {
		sub := SubtypeRIBIPv4Unicast
		if v6 {
			sub = SubtypeRIBIPv6Unicast
		}
		rec := &Record{Type: TypeTableDumpV2, Subtype: sub, Body: body}
		rib, err := ParseRIB(rec)
		if err != nil {
			return
		}
		if rib == nil {
			t.Fatal("nil RIB without error")
		}
		if !rib.Prefix.IsValid() {
			t.Fatalf("parsed RIB has invalid prefix %v", rib.Prefix)
		}
	})
}

// FuzzParseBGP4MP fuzzes the BGP4MP message parser against both the
// 2-byte and 4-byte AS subtypes, seeded with a valid UPDATE.
func FuzzParseBGP4MP(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	u := &Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
		Attrs: &PathAttrs{
			Origin:   bgp.OriginIGP,
			Segments: SequencePath(bgp.Path{65001, 65002}),
			NextHop:  netip.AddrFrom4([4]byte{10, 0, 0, 9}),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
	}
	if err := w.WriteBGP4MPUpdate(777, 65001, 65000,
		netip.AddrFrom4([4]byte{10, 0, 0, 1}), netip.AddrFrom4([4]byte{10, 0, 0, 2}), u); err != nil {
		f.Fatal(err)
	}
	for _, body := range fuzzBodies(f, &buf) {
		f.Add(body, true)
		f.Add(body, false)
		f.Add(body[:len(body)/2], true)
	}
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, body []byte, as4 bool) {
		sub := SubtypeBGP4MPMessage
		if as4 {
			sub = SubtypeBGP4MPMessageAS4
		}
		rec := &Record{Type: TypeBGP4MP, Subtype: sub, Body: body}
		m, err := ParseBGP4MP(rec)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil message without error")
		}
		if m.Update != nil && m.Update.Attrs != nil {
			m.Update.Attrs.Path() // must not panic on any parsed attrs
		}
	})
}
