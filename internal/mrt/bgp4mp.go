package mrt

import (
	"bytes"
	"fmt"
	"net/netip"

	"asmodel/internal/bgp"
)

// BGP message types (RFC 4271 §4.1).
const (
	bgpMsgUpdate = 2
)

// bgpMarker is the all-ones 16-byte BGP message marker.
var bgpMarker = bytes.Repeat([]byte{0xff}, 16)

// BGP4MP is a decoded BGP4MP_MESSAGE / BGP4MP_MESSAGE_AS4 record carrying
// a BGP UPDATE. Non-UPDATE messages (OPEN, KEEPALIVE, NOTIFICATION) are
// reported with Update == nil.
type BGP4MP struct {
	PeerAS    bgp.ASN
	LocalAS   bgp.ASN
	Interface uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	Update    *Update
}

// Update is a BGP UPDATE message body.
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     *PathAttrs
	NLRI      []netip.Prefix
}

// ParseBGP4MP decodes a BGP4MP or BGP4MP_ET record containing a
// BGP4MP_MESSAGE or BGP4MP_MESSAGE_AS4.
func ParseBGP4MP(rec *Record) (*BGP4MP, error) {
	if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
		return nil, fmt.Errorf("mrt: record type %d is not BGP4MP", rec.Type)
	}
	as4 := rec.Subtype == SubtypeBGP4MPMessageAS4
	if !as4 && rec.Subtype != SubtypeBGP4MPMessage {
		return nil, fmt.Errorf("mrt: unsupported BGP4MP subtype %d", rec.Subtype)
	}
	c := &cursor{b: rec.Body}
	m := &BGP4MP{}
	var err error
	if as4 {
		var v uint32
		if v, err = c.u32(); err != nil {
			return nil, err
		}
		m.PeerAS = bgp.ASN(v)
		if v, err = c.u32(); err != nil {
			return nil, err
		}
		m.LocalAS = bgp.ASN(v)
	} else {
		var v uint16
		if v, err = c.u16(); err != nil {
			return nil, err
		}
		m.PeerAS = bgp.ASN(v)
		if v, err = c.u16(); err != nil {
			return nil, err
		}
		m.LocalAS = bgp.ASN(v)
	}
	if m.Interface, err = c.u16(); err != nil {
		return nil, err
	}
	afi, err := c.u16()
	if err != nil {
		return nil, err
	}
	v6 := afi == 2
	if m.PeerAddr, err = c.addr(v6); err != nil {
		return nil, err
	}
	if m.LocalAddr, err = c.addr(v6); err != nil {
		return nil, err
	}

	// BGP message: marker(16) length(2) type(1) body.
	marker, err := c.bytes(16)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(marker, bgpMarker) {
		return nil, fmt.Errorf("mrt: bad BGP marker")
	}
	msgLen, err := c.u16()
	if err != nil {
		return nil, err
	}
	if msgLen < 19 {
		return nil, fmt.Errorf("mrt: BGP message length %d too small", msgLen)
	}
	msgType, err := c.u8()
	if err != nil {
		return nil, err
	}
	body, err := c.bytes(int(msgLen) - 19)
	if err != nil {
		return nil, err
	}
	if msgType != bgpMsgUpdate {
		return m, nil
	}
	u, err := parseUpdate(body, as4)
	if err != nil {
		return nil, err
	}
	m.Update = u
	return m, nil
}

func parseUpdate(body []byte, as4 bool) (*Update, error) {
	c := &cursor{b: body}
	u := &Update{}
	wlen, err := c.u16()
	if err != nil {
		return nil, err
	}
	wraw, err := c.bytes(int(wlen))
	if err != nil {
		return nil, err
	}
	wc := &cursor{b: wraw}
	for wc.remaining() > 0 {
		p, err := wc.nlriPrefix(false)
		if err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
	}
	alen, err := c.u16()
	if err != nil {
		return nil, err
	}
	araw, err := c.bytes(int(alen))
	if err != nil {
		return nil, err
	}
	if len(araw) > 0 {
		if u.Attrs, err = parseAttrs(araw, as4); err != nil {
			return nil, err
		}
	}
	for c.remaining() > 0 {
		p, err := c.nlriPrefix(false)
		if err != nil {
			return nil, err
		}
		u.NLRI = append(u.NLRI, p)
	}
	return u, nil
}

// WriteBGP4MPUpdate emits a BGP4MP_MESSAGE_AS4 record carrying an UPDATE
// (IPv4 peers and prefixes).
func (wr *Writer) WriteBGP4MPUpdate(timestamp uint32, peerAS, localAS bgp.ASN, peerAddr, localAddr netip.Addr, u *Update) error {
	if !peerAddr.Is4() || !localAddr.Is4() {
		return fmt.Errorf("mrt: WriteBGP4MPUpdate supports IPv4 peers only")
	}
	var msg []byte
	// UPDATE body.
	var wraw []byte
	for _, p := range u.Withdrawn {
		wraw = putNLRIPrefix(wraw, p)
	}
	var araw []byte
	if u.Attrs != nil {
		araw = encodeAttrs(u.Attrs, true)
	}
	body := []byte{byte(len(wraw) >> 8), byte(len(wraw))}
	body = append(body, wraw...)
	body = append(body, byte(len(araw)>>8), byte(len(araw)))
	body = append(body, araw...)
	for _, p := range u.NLRI {
		body = putNLRIPrefix(body, p)
	}
	msgLen := 19 + len(body)
	msg = append(msg, bgpMarker...)
	msg = append(msg, byte(msgLen>>8), byte(msgLen), bgpMsgUpdate)
	msg = append(msg, body...)

	rec := be32bytes(uint32(peerAS))
	rec = append(rec, be32bytes(uint32(localAS))...)
	rec = append(rec, 0, 0) // interface index
	rec = append(rec, 0, 1) // AFI IPv4
	pa := peerAddr.As4()
	la := localAddr.As4()
	rec = append(rec, pa[:]...)
	rec = append(rec, la[:]...)
	rec = append(rec, msg...)
	return wr.WriteRecord(timestamp, TypeBGP4MP, SubtypeBGP4MPMessageAS4, rec)
}
