package mrt

import (
	"io"
	"net/netip"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
)

// WriteUpdates emits a dataset as a BGP4MP_MESSAGE_AS4 update stream:
// one announcement per record, in dataset order, with timestamps spaced
// step seconds apart starting at startTS. Peer addresses are derived
// from the observation-point index exactly as FromDataset derives them,
// and prefix names that are not parseable CIDRs are mapped through
// SyntheticCIDR — so a replay of the stream (UpdatesToDataset, or the
// streaming refinement loop) reconstructs the dataset up to prefix
// naming. It returns the number of update records written; the inverse
// of UpdatesToDataset for synthetic inputs, and the generator behind
// the stream benchmarks and crash smokes.
func WriteUpdates(w io.Writer, ds *dataset.Dataset, startTS, step uint32) (int, error) {
	points := ds.ObsPoints()
	peerIdx := make(map[dataset.ObsPointID]uint16, len(points))
	for i, p := range points {
		peerIdx[p] = uint16(i)
	}
	mw := NewWriter(w)
	local := netip.AddrFrom4([4]byte{10, 253, 0, 1})
	n := 0
	for _, rec := range ds.Records {
		i := peerIdx[rec.Obs]
		peerAddr := netip.AddrFrom4([4]byte{10, 254, byte(i >> 8), byte(i)})
		u := &Update{
			Attrs: &PathAttrs{
				Origin:   bgp.OriginIGP,
				Segments: SequencePath(rec.Path),
				NextHop:  peerAddr,
			},
			NLRI: []netip.Prefix{SyntheticCIDR(rec.Prefix)},
		}
		ts := startTS + uint32(n)*step
		if err := mw.WriteBGP4MPUpdate(ts, rec.ObsAS, 65000, peerAddr, local, u); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
