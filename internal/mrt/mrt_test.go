package mrt

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(12345, TypeBGP4MP, SubtypeBGP4MPMessage, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(99, TypeTableDumpV2, SubtypePeerIndexTable, nil); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rec1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Timestamp != 12345 || rec1.Type != TypeBGP4MP || len(rec1.Body) != 3 {
		t.Errorf("rec1=%+v", rec1)
	}
	rec2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Timestamp != 99 || len(rec2.Body) != 0 {
		t.Errorf("rec2=%+v", rec2)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteRecord(1, TypeBGP4MP, 1, []byte{1, 2, 3, 4, 5})
	raw := buf.Bytes()
	// Cut the body short.
	r := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if _, err := r.Next(); err != ErrTruncated {
		t.Errorf("want ErrTruncated, got %v", err)
	}
	// Cut inside the header.
	r = NewReader(bytes.NewReader(raw[:6]))
	if _, err := r.Next(); err != ErrTruncated {
		t.Errorf("want ErrTruncated for short header, got %v", err)
	}
}

func TestAttrsRoundTrip(t *testing.T) {
	a := &PathAttrs{
		Origin:       bgp.OriginIGP,
		Segments:     SequencePath(bgp.Path{3356, 1239, 24249}),
		NextHop:      netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		MED:          50,
		HasMED:       true,
		LocalPref:    120,
		HasLocalPref: true,
		AtomicAgg:    true,
		Communities:  []uint32{3356<<16 | 70, 666},
	}
	raw := encodeAttrs(a, true)
	got, err := parseAttrs(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != a.Origin || got.MED != 50 || !got.HasMED || got.LocalPref != 120 || !got.HasLocalPref {
		t.Errorf("got=%+v", got)
	}
	if !got.AtomicAgg {
		t.Error("atomic aggregate lost")
	}
	if len(got.Communities) != 2 || got.Communities[0] != 3356<<16|70 {
		t.Errorf("communities=%v", got.Communities)
	}
	path, hasSet := got.Path()
	if hasSet {
		t.Error("unexpected AS_SET")
	}
	if !path.Equal(bgp.Path{3356, 1239, 24249}) {
		t.Errorf("path=%v", path)
	}
	if got.NextHop != a.NextHop {
		t.Errorf("nexthop=%v", got.NextHop)
	}
}

func TestAttrs2ByteASPath(t *testing.T) {
	a := &PathAttrs{Origin: bgp.OriginEGP, Segments: SequencePath(bgp.Path{701, 1239})}
	raw := encodeAttrs(a, false)
	got, err := parseAttrs(raw, false)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := got.Path()
	if !path.Equal(bgp.Path{701, 1239}) {
		t.Errorf("path=%v", path)
	}
}

func TestASSetDetection(t *testing.T) {
	a := &PathAttrs{Segments: []Segment{
		{Type: ASSequence, ASNs: []bgp.ASN{1, 2}},
		{Type: ASSet, ASNs: []bgp.ASN{7, 9}},
	}}
	path, hasSet := a.Path()
	if !hasSet {
		t.Error("AS_SET not detected")
	}
	if len(path) != 4 {
		t.Errorf("path=%v", path)
	}
}

func TestAS4PathReconstruction(t *testing.T) {
	// AS_PATH has 3 hops (with AS_TRANS), AS4_PATH has the true tail of 2.
	a := &PathAttrs{
		Segments:    SequencePath(bgp.Path{100, 23456, 23456}),
		AS4Segments: SequencePath(bgp.Path{655400, 655500}),
	}
	path, _ := a.Path()
	if !path.Equal(bgp.Path{100, 655400, 655500}) {
		t.Errorf("reconstructed path=%v", path)
	}
	// AS4_PATH longer than AS_PATH: AS4 wins entirely.
	b := &PathAttrs{
		Segments:    SequencePath(bgp.Path{100}),
		AS4Segments: SequencePath(bgp.Path{655400, 655500}),
	}
	path, _ = b.Path()
	if !path.Equal(bgp.Path{655400, 655500}) {
		t.Errorf("as4-dominant path=%v", path)
	}
}

func TestExtendedLengthAttr(t *testing.T) {
	// A path long enough to force the extended-length encoding (>255B).
	long := make(bgp.Path, 100)
	for i := range long {
		long[i] = bgp.ASN(i + 1)
	}
	a := &PathAttrs{Segments: SequencePath(long)}
	raw := encodeAttrs(a, true)
	got, err := parseAttrs(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := got.Path()
	if !path.Equal(long) {
		t.Error("extended-length attr round trip failed")
	}
}

func TestAttrsTruncatedErrors(t *testing.T) {
	a := &PathAttrs{Origin: bgp.OriginIGP, Segments: SequencePath(bgp.Path{1, 2, 3})}
	raw := encodeAttrs(a, true)
	for cut := 1; cut < len(raw); cut++ {
		if _, err := parseAttrs(raw[:cut], true); err == nil {
			// Some prefixes of the encoding are valid attribute blocks
			// (whole attributes); only complain when the cut lands inside
			// an attribute and parsing still succeeded with wrong data.
			got, _ := parseAttrs(raw[:cut], true)
			if got == nil {
				t.Errorf("cut=%d: nil attrs with nil error", cut)
			}
		}
	}
	// A flags byte alone must fail.
	if _, err := parseAttrs([]byte{0x40}, true); err == nil {
		t.Error("lone flags byte should fail")
	}
}

func buildPIT(t *testing.T) (*bytes.Buffer, []PeerEntry) {
	t.Helper()
	peers := []PeerEntry{
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 1}), AS: 3356},
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 2}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 2}), AS: 701},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := NewTableDumpWriter(w, 1000, "test-view", peers); err != nil {
		t.Fatal(err)
	}
	return &buf, peers
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	buf, peers := buildPIT(t)
	r := NewReader(buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	pit, err := ParsePeerIndexTable(rec)
	if err != nil {
		t.Fatal(err)
	}
	if pit.ViewName != "test-view" {
		t.Errorf("view=%q", pit.ViewName)
	}
	if len(pit.Peers) != 2 || pit.Peers[0].AS != peers[0].AS || pit.Peers[1].Addr != peers[1].Addr {
		t.Errorf("peers=%+v", pit.Peers)
	}
	if _, err := ParsePeerIndexTable(&Record{Type: TypeBGP4MP}); err == nil {
		t.Error("wrong type should fail")
	}
}

func TestRIBRoundTrip(t *testing.T) {
	peers := []PeerEntry{
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 1}), AS: 3356},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	tw, err := NewTableDumpWriter(w, 1000, "v", peers)
	if err != nil {
		t.Fatal(err)
	}
	prefix := netip.MustParsePrefix("192.0.2.0/24")
	entries := []RIBEntry{{
		PeerIndex:  0,
		Originated: 555,
		Attrs: &PathAttrs{
			Origin:   bgp.OriginIGP,
			Segments: SequencePath(bgp.Path{3356, 1239, 24249}),
			NextHop:  peers[0].Addr,
		},
	}}
	if err := tw.WriteRIB(1001, prefix, entries); err != nil {
		t.Fatal(err)
	}
	// Bad peer index must fail.
	if err := tw.WriteRIB(1001, prefix, []RIBEntry{{PeerIndex: 9, Attrs: &PathAttrs{}}}); err == nil {
		t.Error("bad peer index accepted")
	}

	r := NewReader(&buf)
	if _, err := r.Next(); err != nil { // PIT
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	rib, err := ParseRIB(rec)
	if err != nil {
		t.Fatal(err)
	}
	if rib.Prefix != prefix {
		t.Errorf("prefix=%v", rib.Prefix)
	}
	if len(rib.Entries) != 1 || rib.Entries[0].Originated != 555 {
		t.Fatalf("entries=%+v", rib.Entries)
	}
	path, _ := rib.Entries[0].Attrs.Path()
	if !path.Equal(bgp.Path{3356, 1239, 24249}) {
		t.Errorf("path=%v", path)
	}
	if _, err := ParseRIB(&Record{Type: TypeTableDumpV2, Subtype: SubtypePeerIndexTable}); err == nil {
		t.Error("wrong subtype should fail")
	}
}

func TestBGP4MPUpdateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	u := &Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
		Attrs: &PathAttrs{
			Origin:   bgp.OriginIGP,
			Segments: SequencePath(bgp.Path{65001, 65002}),
			NextHop:  netip.AddrFrom4([4]byte{10, 0, 0, 9}),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24"), netip.MustParsePrefix("203.0.113.0/25")},
	}
	err := w.WriteBGP4MPUpdate(777, 65001, 65000,
		netip.AddrFrom4([4]byte{10, 0, 0, 1}), netip.AddrFrom4([4]byte{10, 0, 0, 2}), u)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseBGP4MP(rec)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerAS != 65001 || m.LocalAS != 65000 {
		t.Errorf("ASes: %d %d", m.PeerAS, m.LocalAS)
	}
	if m.Update == nil {
		t.Fatal("no update decoded")
	}
	if len(m.Update.Withdrawn) != 1 || m.Update.Withdrawn[0].String() != "198.51.100.0/24" {
		t.Errorf("withdrawn=%v", m.Update.Withdrawn)
	}
	if len(m.Update.NLRI) != 2 || m.Update.NLRI[1].String() != "203.0.113.0/25" {
		t.Errorf("nlri=%v", m.Update.NLRI)
	}
	path, _ := m.Update.Attrs.Path()
	if !path.Equal(bgp.Path{65001, 65002}) {
		t.Errorf("path=%v", path)
	}
	if _, err := ParseBGP4MP(&Record{Type: TypeTableDumpV2}); err == nil {
		t.Error("wrong type should fail")
	}
}

func TestDatasetMRTRoundTrip(t *testing.T) {
	ds := &dataset.Dataset{Records: []dataset.Record{
		{Obs: "op1", ObsAS: 10, Prefix: "P40", Path: bgp.Path{10, 20, 40}, Learned: 100},
		{Obs: "op1", ObsAS: 10, Prefix: "192.0.2.0/24", Path: bgp.Path{10, 30}, Learned: 200},
		{Obs: "op2", ObsAS: 11, Prefix: "P40", Path: bgp.Path{11, 20, 40}, Learned: 300},
	}}
	var buf bytes.Buffer
	if err := FromDataset(&buf, ds, 1234); err != nil {
		t.Fatal(err)
	}
	got, st, err := ToDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || got.Len() != 3 {
		t.Fatalf("entries=%d records=%d stats=%+v", st.Entries, got.Len(), st)
	}
	// Paths and observation ASes survive; prefix names become CIDRs.
	wantPaths := map[string]bool{"10 20 40": true, "10 30": true, "11 20 40": true}
	for _, r := range got.Records {
		if !wantPaths[r.Path.String()] {
			t.Errorf("unexpected path %q", r.Path)
		}
		if err := r.Valid(); err != nil {
			t.Error(err)
		}
	}
	// The real-CIDR prefix must survive verbatim.
	found := false
	for _, r := range got.Records {
		if r.Prefix == "192.0.2.0/24" {
			found = true
		}
	}
	if !found {
		t.Error("CIDR prefix not preserved")
	}
}

func TestSyntheticCIDR(t *testing.T) {
	a := SyntheticCIDR("P100")
	b := SyntheticCIDR("P100")
	c := SyntheticCIDR("P101")
	if a != b {
		t.Error("not deterministic")
	}
	if a == c {
		t.Error("collision between distinct names (unlucky hash?)")
	}
	if got := SyntheticCIDR("203.0.113.0/24"); got.String() != "203.0.113.0/24" {
		t.Errorf("real CIDR mangled: %v", got)
	}
}

func TestNLRIPrefixProperty(t *testing.T) {
	f := func(a, b, cc, d byte, bitsRaw uint8) bool {
		bits := int(bitsRaw) % 33
		addr := netip.AddrFrom4([4]byte{a, b, cc, d})
		p := netip.PrefixFrom(addr, bits).Masked()
		enc := putNLRIPrefix(nil, p)
		cur := &cursor{b: enc}
		got, err := cur.nlriPrefix(false)
		if err != nil {
			return false
		}
		return got.Masked() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv6RIBParse(t *testing.T) {
	// Hand-build an IPv6 RIB record.
	prefix := netip.MustParsePrefix("2001:db8::/32")
	body := be32bytes(7)
	body = putNLRIPrefix(body, prefix)
	attrs := encodeAttrs(&PathAttrs{Origin: bgp.OriginIGP, Segments: SequencePath(bgp.Path{1, 2})}, true)
	body = append(body, 0, 1) // one entry
	body = append(body, 0, 0) // peer index 0
	body = append(body, be32bytes(42)...)
	body = append(body, byte(len(attrs)>>8), byte(len(attrs)))
	body = append(body, attrs...)
	rib, err := ParseRIB(&Record{Type: TypeTableDumpV2, Subtype: SubtypeRIBIPv6Unicast, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if rib.Prefix != prefix || rib.Sequence != 7 {
		t.Errorf("rib=%+v", rib)
	}
}

func TestExtendedTimestampSkip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	body := append(be32bytes(999999), 1, 2, 3)
	w.WriteRecord(5, TypeBGP4MPET, SubtypeBGP4MPMessageAS4, body)
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Microseconds != 999999 {
		t.Errorf("microseconds=%d", rec.Microseconds)
	}
	if len(rec.Body) != 3 {
		t.Errorf("body=%v", rec.Body)
	}
}

func TestFuzzParseRobustness(t *testing.T) {
	// Random garbage must never panic the parsers.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		body := make([]byte, rng.Intn(64))
		rng.Read(body)
		rec := &Record{Type: TypeTableDumpV2, Subtype: SubtypeRIBIPv4Unicast, Body: body}
		ParseRIB(rec)
		rec.Subtype = SubtypePeerIndexTable
		ParsePeerIndexTable(rec)
		rec4 := &Record{Type: TypeBGP4MP, Subtype: SubtypeBGP4MPMessageAS4, Body: body}
		ParseBGP4MP(rec4)
		parseAttrs(body, rng.Intn(2) == 0)
	}
}
