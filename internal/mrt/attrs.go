package mrt

import (
	"fmt"
	"net/netip"

	"asmodel/internal/bgp"
)

// BGP path attribute type codes (RFC 4271 §5, RFC 6793).
const (
	attrOrigin          = 1
	attrASPath          = 2
	attrNextHop         = 3
	attrMED             = 4
	attrLocalPref       = 5
	attrAtomicAggregate = 6
	attrAggregator      = 7
	attrCommunities     = 8
	attrAS4Path         = 17
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// SegmentType distinguishes AS_PATH segment kinds.
type SegmentType uint8

// AS_PATH segment types (RFC 4271 §4.3).
const (
	ASSet      SegmentType = 1
	ASSequence SegmentType = 2
)

// Segment is one AS_PATH segment.
type Segment struct {
	Type SegmentType
	ASNs []bgp.ASN
}

// PathAttrs holds the decoded BGP path attributes of one route.
type PathAttrs struct {
	Origin       bgp.Origin
	Segments     []Segment
	NextHop      netip.Addr
	MED          uint32
	HasMED       bool
	LocalPref    uint32
	HasLocalPref bool
	AtomicAgg    bool
	AggregatorAS bgp.ASN
	Aggregator   netip.Addr
	Communities  []uint32
	AS4Segments  []Segment
}

// Path flattens the AS_PATH into a bgp.Path. AS4_PATH, when present and
// longer, replaces the tail per RFC 6793 §4.2.3 (the common
// reconstruction). AS_SET segments contribute their members in order but
// set hasSet, letting callers drop aggregated routes the way the paper's
// data pipeline effectively does.
func (a *PathAttrs) Path() (path bgp.Path, hasSet bool) {
	segs := a.Segments
	if len(a.AS4Segments) > 0 {
		n2 := countASNs(a.Segments)
		n4 := countASNs(a.AS4Segments)
		if n4 >= n2 {
			segs = a.AS4Segments
		} else {
			// Keep the leading (n2-n4) ASNs of AS_PATH, then AS4_PATH.
			var lead bgp.Path
			need := n2 - n4
			for _, s := range a.Segments {
				for _, asn := range s.ASNs {
					if len(lead) == need {
						break
					}
					lead = append(lead, asn)
				}
				if s.Type == ASSet {
					hasSet = true
				}
			}
			path = lead
			segs = a.AS4Segments
		}
	}
	for _, s := range segs {
		if s.Type == ASSet {
			hasSet = true
		}
		path = append(path, s.ASNs...)
	}
	return path, hasSet
}

func countASNs(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += len(s.ASNs)
	}
	return n
}

// parseAttrs decodes a BGP path-attribute block. as4 selects 4-byte AS
// numbers inside AS_PATH (TABLE_DUMP_V2 RIB entries and BGP4MP_MESSAGE_AS4
// always use 4-byte; classic BGP4MP_MESSAGE uses 2-byte).
func parseAttrs(raw []byte, as4 bool) (*PathAttrs, error) {
	attrs := &PathAttrs{Origin: bgp.OriginIncomplete}
	c := &cursor{b: raw}
	for c.remaining() > 0 {
		flags, err := c.u8()
		if err != nil {
			return nil, err
		}
		typ, err := c.u8()
		if err != nil {
			return nil, err
		}
		var alen int
		if flags&flagExtLen != 0 {
			v, err := c.u16()
			if err != nil {
				return nil, err
			}
			alen = int(v)
		} else {
			v, err := c.u8()
			if err != nil {
				return nil, err
			}
			alen = int(v)
		}
		val, err := c.bytes(alen)
		if err != nil {
			return nil, err
		}
		switch typ {
		case attrOrigin:
			if alen != 1 {
				return nil, fmt.Errorf("mrt: ORIGIN length %d", alen)
			}
			attrs.Origin = bgp.Origin(val[0])
		case attrASPath:
			segs, err := parseSegments(val, as4)
			if err != nil {
				return nil, err
			}
			attrs.Segments = segs
		case attrAS4Path:
			segs, err := parseSegments(val, true)
			if err != nil {
				return nil, err
			}
			attrs.AS4Segments = segs
		case attrNextHop:
			a, ok := netip.AddrFromSlice(val)
			if !ok {
				return nil, fmt.Errorf("mrt: NEXT_HOP length %d", alen)
			}
			attrs.NextHop = a
		case attrMED:
			if alen != 4 {
				return nil, fmt.Errorf("mrt: MED length %d", alen)
			}
			attrs.MED = be32(val)
			attrs.HasMED = true
		case attrLocalPref:
			if alen != 4 {
				return nil, fmt.Errorf("mrt: LOCAL_PREF length %d", alen)
			}
			attrs.LocalPref = be32(val)
			attrs.HasLocalPref = true
		case attrAtomicAggregate:
			attrs.AtomicAgg = true
		case attrAggregator:
			switch alen {
			case 6:
				attrs.AggregatorAS = bgp.ASN(uint32(val[0])<<8 | uint32(val[1]))
				a, _ := netip.AddrFromSlice(val[2:6])
				attrs.Aggregator = a
			case 8:
				attrs.AggregatorAS = bgp.ASN(be32(val))
				a, _ := netip.AddrFromSlice(val[4:8])
				attrs.Aggregator = a
			default:
				return nil, fmt.Errorf("mrt: AGGREGATOR length %d", alen)
			}
		case attrCommunities:
			if alen%4 != 0 {
				return nil, fmt.Errorf("mrt: COMMUNITIES length %d", alen)
			}
			for i := 0; i < alen; i += 4 {
				attrs.Communities = append(attrs.Communities, be32(val[i:]))
			}
		default:
			// Unknown attributes are skipped (they were length-delimited).
		}
	}
	return attrs, nil
}

func parseSegments(raw []byte, as4 bool) ([]Segment, error) {
	var segs []Segment
	c := &cursor{b: raw}
	for c.remaining() > 0 {
		t, err := c.u8()
		if err != nil {
			return nil, err
		}
		n, err := c.u8()
		if err != nil {
			return nil, err
		}
		seg := Segment{Type: SegmentType(t), ASNs: make([]bgp.ASN, 0, n)}
		for i := 0; i < int(n); i++ {
			if as4 {
				v, err := c.u32()
				if err != nil {
					return nil, err
				}
				seg.ASNs = append(seg.ASNs, bgp.ASN(v))
			} else {
				v, err := c.u16()
				if err != nil {
					return nil, err
				}
				seg.ASNs = append(seg.ASNs, bgp.ASN(v))
			}
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// encodeAttrs serializes path attributes (always 4-byte AS numbers when
// as4 is set). It emits the attributes in canonical type order.
func encodeAttrs(a *PathAttrs, as4 bool) []byte {
	var out []byte
	add := func(flags, typ byte, val []byte) {
		if len(val) > 255 {
			out = append(out, flags|flagExtLen, typ, byte(len(val)>>8), byte(len(val)))
		} else {
			out = append(out, flags, typ, byte(len(val)))
		}
		out = append(out, val...)
	}
	add(flagTransitive, attrOrigin, []byte{byte(a.Origin)})
	add(flagTransitive, attrASPath, encodeSegments(a.Segments, as4))
	if a.NextHop.IsValid() && a.NextHop.Is4() {
		nh := a.NextHop.As4()
		add(flagTransitive, attrNextHop, nh[:])
	}
	if a.HasMED {
		add(flagOptional, attrMED, be32bytes(a.MED))
	}
	if a.HasLocalPref {
		add(flagTransitive, attrLocalPref, be32bytes(a.LocalPref))
	}
	if a.AtomicAgg {
		add(flagTransitive, attrAtomicAggregate, nil)
	}
	if len(a.Communities) > 0 {
		var val []byte
		for _, cm := range a.Communities {
			val = append(val, be32bytes(cm)...)
		}
		add(flagOptional|flagTransitive, attrCommunities, val)
	}
	return out
}

func encodeSegments(segs []Segment, as4 bool) []byte {
	var out []byte
	for _, s := range segs {
		out = append(out, byte(s.Type), byte(len(s.ASNs)))
		for _, asn := range s.ASNs {
			if as4 {
				out = append(out, be32bytes(uint32(asn))...)
			} else {
				out = append(out, byte(asn>>8), byte(asn))
			}
		}
	}
	return out
}

func be32bytes(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// SequencePath wraps a bgp.Path into a single AS_SEQUENCE segment.
func SequencePath(p bgp.Path) []Segment {
	if len(p) == 0 {
		return nil
	}
	return []Segment{{Type: ASSequence, ASNs: p.Clone()}}
}
