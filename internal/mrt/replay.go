package mrt

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
)

// ReplayStats reports what UpdatesToDataset processed.
type ReplayStats struct {
	Records     int // MRT records read
	Updates     int // BGP UPDATE messages applied
	Announces   int // prefix announcements applied
	Withdraws   int // prefix withdrawals applied
	AfterCutoff int // records ignored because they follow the cutoff
	SkippedASet int // announcements dropped for AS_SET aggregation
	Unstable    int // routes dropped by the stable-route filter
}

type peerKey struct {
	addr netip.Addr
	as   bgp.ASN
}

type replayRoute struct {
	path    bgp.Path
	learned uint32
}

// UpdatesToDataset replays a BGP4MP update stream (BGP4MP_MESSAGE and
// BGP4MP_MESSAGE_AS4, plain or extended-timestamp) and reconstructs each
// peer's routing table as of the cutoff time, applying the paper's
// stable-route criterion: only routes unchanged for at least minAge
// seconds before the cutoff are emitted (§3.1 uses one hour). A cutoff of
// zero means "end of stream" with no stability filtering unless minAge is
// positive, in which case stability is measured against the last update
// timestamp seen.
//
// This implements the extension the paper names as future work:
// "we are planning to also incorporate the AS-path information from BGP
// updates."
func UpdatesToDataset(r io.Reader, cutoff int64, minAge int64) (*dataset.Dataset, *ReplayStats, error) {
	ds, st, _, err := UpdatesToDatasetOpts(r, cutoff, minAge, ingest.Options{Strict: true})
	return ds, st, err
}

// UpdatesToDatasetOpts is UpdatesToDataset under explicit ingest
// options. In lenient mode (the default) unparsable BGP4MP messages are
// skipped and counted in the returned report up to its error budget,
// and a framing failure ends the stream with a counted skip instead of
// discarding the replay so far.
func UpdatesToDatasetOpts(r io.Reader, cutoff int64, minAge int64, opts ingest.Options) (*dataset.Dataset, *ReplayStats, *ingest.Report, error) {
	rd := NewReader(lenientReader(r, opts))
	st := &ReplayStats{}
	rep := ingest.NewReport("mrt", opts)
	tables := make(map[peerKey]map[netip.Prefix]replayRoute)
	var lastTS uint32

	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if serr := rep.Skip(st.Records+1, err); serr != nil {
				return nil, st, rep, serr
			}
			break
		}
		st.Records++
		rep.Record()
		if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
			continue
		}
		if rec.Subtype != SubtypeBGP4MPMessage && rec.Subtype != SubtypeBGP4MPMessageAS4 {
			continue
		}
		if cutoff != 0 && int64(rec.Timestamp) > cutoff {
			st.AfterCutoff++
			continue
		}
		if rec.Timestamp > lastTS {
			lastTS = rec.Timestamp
		}
		m, err := ParseBGP4MP(rec)
		if err != nil {
			if serr := rep.Skip(st.Records, err); serr != nil {
				return nil, st, rep, serr
			}
			continue
		}
		if m.Update == nil {
			continue
		}
		st.Updates++
		key := peerKey{m.PeerAddr, m.PeerAS}
		table := tables[key]
		if table == nil {
			table = make(map[netip.Prefix]replayRoute)
			tables[key] = table
		}
		for _, p := range m.Update.Withdrawn {
			if _, ok := table[p]; ok {
				delete(table, p)
				st.Withdraws++
			}
		}
		if m.Update.Attrs != nil && len(m.Update.NLRI) > 0 {
			path, hasSet := m.Update.Attrs.Path()
			if hasSet {
				st.SkippedASet += len(m.Update.NLRI)
			} else if len(path) > 0 {
				for _, p := range m.Update.NLRI {
					table[p] = replayRoute{path: path, learned: rec.Timestamp}
					st.Announces++
				}
			}
		}
	}

	ref := cutoff
	if ref == 0 {
		ref = int64(lastTS)
	}
	ds := &dataset.Dataset{}
	keys := make([]peerKey, 0, len(tables))
	for k := range tables {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].as != keys[j].as {
			return keys[i].as < keys[j].as
		}
		return keys[i].addr.Less(keys[j].addr)
	})
	for _, k := range keys {
		table := tables[k]
		prefixes := make([]netip.Prefix, 0, len(table))
		for p := range table {
			prefixes = append(prefixes, p)
		}
		sort.Slice(prefixes, func(i, j int) bool {
			if prefixes[i].Addr() != prefixes[j].Addr() {
				return prefixes[i].Addr().Less(prefixes[j].Addr())
			}
			return prefixes[i].Bits() < prefixes[j].Bits()
		})
		for _, p := range prefixes {
			rt := table[p]
			if minAge > 0 && int64(rt.learned) > ref-minAge {
				st.Unstable++
				continue
			}
			path := rt.path
			if path[0] != k.as {
				path = path.Prepend(k.as)
			}
			ds.Records = append(ds.Records, dataset.Record{
				Obs:     dataset.ObsPointID(fmt.Sprintf("%s|%s", k.addr, k.as)),
				ObsAS:   k.as,
				Prefix:  p.String(),
				Path:    path,
				Learned: int64(rt.learned),
			})
		}
	}
	return ds, st, rep, nil
}
