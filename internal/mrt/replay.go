package mrt

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
)

// ReplayStats reports what a Replayer (or UpdatesToDataset) processed.
type ReplayStats struct {
	Records     int // MRT records read
	Updates     int // BGP UPDATE messages applied
	Announces   int // prefix announcements applied
	Withdraws   int // prefix withdrawals applied
	AfterCutoff int // records ignored because they follow the cutoff
	SkippedASet int // announcements dropped for AS_SET aggregation
	Unstable    int // routes dropped by the stable-route filter
	// LastTimestamp is the timestamp of the most recent record consumed
	// before the cutoff — the reference time for the stability filter and
	// the value a stream cursor validates against on resume.
	LastTimestamp int64
}

type peerKey struct {
	addr netip.Addr
	as   bgp.ASN
}

type replayRoute struct {
	path    bgp.Path
	learned uint32
}

// Replayer incrementally reconstructs per-peer routing tables from a
// BGP4MP update stream (BGP4MP_MESSAGE and BGP4MP_MESSAGE_AS4, plain or
// extended-timestamp), one record at a time. It is the batch-cursor
// engine beneath UpdatesToDataset and the streaming refinement loop:
// records are applied with Apply, the prefixes whose observations
// changed since the last snapshot are drained with TakeChanged, and
// Dataset/DatasetFor snapshot the current tables as a dataset.
//
// A Replayer fed the same record sequence always reaches the same state,
// and snapshots emit records in a canonical sorted order, so replaying a
// stream from the start reproduces any intermediate state byte for byte
// — the property mid-stream crash recovery rests on.
type Replayer struct {
	cutoff int64
	minAge int64
	st     ReplayStats
	tables map[peerKey]map[netip.Prefix]replayRoute
	// changed accumulates prefixes whose table entries were touched
	// (announced, replaced or withdrawn) since the last TakeChanged.
	changed map[netip.Prefix]struct{}
	// unstable accumulates prefixes with at least one route dropped from
	// a snapshot by the stable-route filter, keyed to the timestamp at
	// which the youngest dropped route becomes stable (see TakeUnstable).
	unstable map[netip.Prefix]int64
}

// NewReplayer builds a Replayer applying the paper's stable-route
// criterion: when snapshotting, only routes unchanged for at least
// minAge seconds before the cutoff are emitted (§3.1 uses one hour). A
// cutoff of zero means "end of stream": stability is measured against
// the last update timestamp seen.
func NewReplayer(cutoff, minAge int64) *Replayer {
	return &Replayer{
		cutoff:   cutoff,
		minAge:   minAge,
		tables:   make(map[peerKey]map[netip.Prefix]replayRoute),
		changed:  make(map[netip.Prefix]struct{}),
		unstable: make(map[netip.Prefix]int64),
	}
}

// Stats returns the cumulative replay statistics.
func (rp *Replayer) Stats() ReplayStats { return rp.st }

// Apply consumes one MRT record. Non-BGP4MP records and records past
// the cutoff are counted and ignored. An unparsable BGP4MP message
// returns its parse error without touching the tables — the caller
// decides whether to skip it (lenient ingestion) or abort.
func (rp *Replayer) Apply(rec *Record) error {
	rp.st.Records++
	if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
		return nil
	}
	if rec.Subtype != SubtypeBGP4MPMessage && rec.Subtype != SubtypeBGP4MPMessageAS4 {
		return nil
	}
	if rp.cutoff != 0 && int64(rec.Timestamp) > rp.cutoff {
		rp.st.AfterCutoff++
		return nil
	}
	if int64(rec.Timestamp) > rp.st.LastTimestamp {
		rp.st.LastTimestamp = int64(rec.Timestamp)
	}
	m, err := ParseBGP4MP(rec)
	if err != nil {
		return err
	}
	if m.Update == nil {
		return nil
	}
	rp.st.Updates++
	key := peerKey{m.PeerAddr, m.PeerAS}
	table := rp.tables[key]
	if table == nil {
		table = make(map[netip.Prefix]replayRoute)
		rp.tables[key] = table
	}
	for _, p := range m.Update.Withdrawn {
		if _, ok := table[p]; ok {
			delete(table, p)
			rp.st.Withdraws++
			rp.changed[p] = struct{}{}
		}
	}
	if m.Update.Attrs != nil && len(m.Update.NLRI) > 0 {
		path, hasSet := m.Update.Attrs.Path()
		if hasSet {
			rp.st.SkippedASet += len(m.Update.NLRI)
		} else if len(path) > 0 {
			for _, p := range m.Update.NLRI {
				table[p] = replayRoute{path: path, learned: rec.Timestamp}
				rp.st.Announces++
				rp.changed[p] = struct{}{}
			}
		}
	}
	return nil
}

// TakeChanged drains and returns the set of prefixes whose table
// entries changed since the previous call, in canonical sorted order.
func (rp *Replayer) TakeChanged() []netip.Prefix {
	if len(rp.changed) == 0 {
		return nil
	}
	out := make([]netip.Prefix, 0, len(rp.changed))
	for p := range rp.changed {
		out = append(out, p)
	}
	rp.changed = make(map[netip.Prefix]struct{})
	sortPrefixes(out)
	return out
}

// MarkChanged re-queues prefixes into the changed set, so the next
// TakeChanged returns them again. The streaming loop uses it to carry
// a folded (uncommitted) batch's prefixes into the next batch and to
// re-snapshot prefixes whose routes have aged into stability.
func (rp *Replayer) MarkChanged(ps []netip.Prefix) {
	for _, p := range ps {
		rp.changed[p] = struct{}{}
	}
}

// TakeUnstable drains the prefixes that had at least one route dropped
// from a snapshot by the stable-route filter since the previous call,
// each keyed to the stream timestamp at which its youngest dropped
// route turns stable. Batch mode evaluates stability once at
// end-of-stream and never needs this; the streaming loop keeps these
// prefixes pending and re-marks them changed once the stream passes
// that timestamp, so a quiet prefix announced once is still refined
// after it ages in instead of being starved forever.
func (rp *Replayer) TakeUnstable() map[netip.Prefix]int64 {
	if len(rp.unstable) == 0 {
		return nil
	}
	out := rp.unstable
	rp.unstable = make(map[netip.Prefix]int64)
	return out
}

// Dataset snapshots the full current tables as a dataset (sorted by
// peer, then prefix), applying the stable-route filter.
func (rp *Replayer) Dataset() *dataset.Dataset { return rp.DatasetFor(nil) }

// DatasetFor snapshots the current routes of the given prefixes only
// (nil means all prefixes) — the delta dataset incremental refinement
// re-evaluates after a batch. The snapshot carries every peer's current
// route for each requested prefix, not just the peers whose updates
// changed it, so refinement always sees the complete observed state of
// a changed prefix. Unstable routes are filtered (and counted) against
// the cutoff, or against the last timestamp seen when the cutoff is
// zero.
func (rp *Replayer) DatasetFor(prefixes []netip.Prefix) *dataset.Dataset {
	var filter map[netip.Prefix]struct{}
	if prefixes != nil {
		filter = make(map[netip.Prefix]struct{}, len(prefixes))
		for _, p := range prefixes {
			filter[p] = struct{}{}
		}
	}
	ref := rp.cutoff
	if ref == 0 {
		ref = rp.st.LastTimestamp
	}
	ds := &dataset.Dataset{}
	keys := make([]peerKey, 0, len(rp.tables))
	for k := range rp.tables {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].as != keys[j].as {
			return keys[i].as < keys[j].as
		}
		return keys[i].addr.Less(keys[j].addr)
	})
	for _, k := range keys {
		table := rp.tables[k]
		sel := make([]netip.Prefix, 0, len(table))
		for p := range table {
			if filter != nil {
				if _, ok := filter[p]; !ok {
					continue
				}
			}
			sel = append(sel, p)
		}
		sortPrefixes(sel)
		for _, p := range sel {
			rt := table[p]
			if rp.minAge > 0 && int64(rt.learned) > ref-rp.minAge {
				rp.st.Unstable++
				if at := int64(rt.learned) + rp.minAge; at > rp.unstable[p] {
					rp.unstable[p] = at
				}
				continue
			}
			path := rt.path
			if path[0] != k.as {
				path = path.Prepend(k.as)
			}
			ds.Records = append(ds.Records, dataset.Record{
				Obs:     dataset.ObsPointID(fmt.Sprintf("%s|%s", k.addr, k.as)),
				ObsAS:   k.as,
				Prefix:  p.String(),
				Path:    path,
				Learned: int64(rt.learned),
			})
		}
	}
	return ds
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr().Less(ps[j].Addr())
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// UpdatesToDataset replays a BGP4MP update stream and reconstructs each
// peer's routing table as of the cutoff time, applying the paper's
// stable-route criterion: only routes unchanged for at least minAge
// seconds before the cutoff are emitted (§3.1 uses one hour). A cutoff of
// zero means "end of stream" with no stability filtering unless minAge is
// positive, in which case stability is measured against the last update
// timestamp seen.
//
// This implements the extension the paper names as future work:
// "we are planning to also incorporate the AS-path information from BGP
// updates."
func UpdatesToDataset(r io.Reader, cutoff int64, minAge int64) (*dataset.Dataset, *ReplayStats, error) {
	ds, st, _, err := UpdatesToDatasetOpts(r, cutoff, minAge, ingest.Options{Strict: true})
	return ds, st, err
}

// UpdatesToDatasetOpts is UpdatesToDataset under explicit ingest
// options. In lenient mode (the default) unparsable BGP4MP messages are
// skipped and counted in the returned report up to its error budget,
// and a framing failure ends the stream with a counted skip instead of
// discarding the replay so far.
func UpdatesToDatasetOpts(r io.Reader, cutoff int64, minAge int64, opts ingest.Options) (*dataset.Dataset, *ReplayStats, *ingest.Report, error) {
	rd := NewReader(lenientReader(r, opts))
	rp := NewReplayer(cutoff, minAge)
	rep := ingest.NewReport("mrt", opts)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		st := rp.Stats()
		if err != nil {
			if serr := rep.Skip(st.Records+1, err); serr != nil {
				return nil, &st, rep, serr
			}
			break
		}
		rep.Record()
		if err := rp.Apply(rec); err != nil {
			st = rp.Stats()
			if serr := rep.Skip(st.Records, err); serr != nil {
				return nil, &st, rep, serr
			}
		}
	}
	ds := rp.Dataset()
	st := rp.Stats()
	return ds, &st, rep, nil
}
