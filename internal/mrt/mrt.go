// Package mrt reads and writes MRT routing-information export files
// (RFC 6396), the format of the Routeviews and RIPE RIS archives the paper
// collects its >1,300 BGP feeds from (§3.1). Supported record types:
//
//   - TABLE_DUMP_V2: PEER_INDEX_TABLE, RIB_IPV4_UNICAST and
//     RIB_IPV6_UNICAST (reading and writing) — full-table RIB snapshots;
//   - BGP4MP / BGP4MP_ET: BGP4MP_MESSAGE and BGP4MP_MESSAGE_AS4 update
//     messages (reading and writing).
//
// The package also decodes the BGP path attributes the decision process
// and the dataset layer need: ORIGIN, AS_PATH (2- and 4-byte, sets and
// sequences), NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF, ATOMIC_AGGREGATE,
// AGGREGATOR, COMMUNITIES and AS4_PATH.
//
// Everything is implemented with the standard library only.
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
)

// Record types (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	TypeBGP4MPET    uint16 = 17
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
const (
	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
	SubtypeRIBIPv6Unicast uint16 = 4
)

// BGP4MP subtypes (RFC 6396 §4.4).
const (
	SubtypeBGP4MPMessage    uint16 = 1
	SubtypeBGP4MPMessageAS4 uint16 = 4
)

// ErrTruncated reports a record or field cut short.
var ErrTruncated = errors.New("mrt: truncated data")

// Record is one raw MRT record: the common header plus the undecoded
// body. Decode with the typed helpers (ParsePeerIndexTable, ParseRIB,
// ParseBGP4MP).
type Record struct {
	Timestamp uint32
	// Microseconds holds the extended-timestamp fraction for *_ET types.
	Microseconds uint32
	Type         uint16
	Subtype      uint16
	Body         []byte
}

// Reader reads MRT records sequentially.
type Reader struct {
	r   io.Reader
	hdr [12]byte
}

// NewReader wraps an io.Reader (use compress/gzip upstream for .gz
// archives).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record, or io.EOF at a clean end of stream.
func (rd *Reader) Next() (*Record, error) {
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	rec := &Record{
		Timestamp: binary.BigEndian.Uint32(rd.hdr[0:4]),
		Type:      binary.BigEndian.Uint16(rd.hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(rd.hdr[6:8]),
	}
	length := binary.BigEndian.Uint32(rd.hdr[8:12])
	if length > 64<<20 {
		return nil, fmt.Errorf("mrt: implausible record length %d", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return nil, ErrTruncated
	}
	// Extended-timestamp types carry 4 extra bytes of microseconds before
	// the message (RFC 6396 §3).
	if rec.Type == TypeBGP4MPET {
		if len(body) < 4 {
			return nil, ErrTruncated
		}
		rec.Microseconds = binary.BigEndian.Uint32(body[:4])
		body = body[4:]
	}
	rec.Body = body
	return rec, nil
}

// Writer writes MRT records.
type Writer struct {
	w   io.Writer
	hdr [12]byte
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteRecord emits one record with the common header.
func (wr *Writer) WriteRecord(timestamp uint32, typ, subtype uint16, body []byte) error {
	binary.BigEndian.PutUint32(wr.hdr[0:4], timestamp)
	binary.BigEndian.PutUint16(wr.hdr[4:6], typ)
	binary.BigEndian.PutUint16(wr.hdr[6:8], subtype)
	binary.BigEndian.PutUint32(wr.hdr[8:12], uint32(len(body)))
	if _, err := wr.w.Write(wr.hdr[:]); err != nil {
		return err
	}
	_, err := wr.w.Write(body)
	return err
}

// --- low-level cursor ---------------------------------------------------

// cursor is a bounds-checked big-endian reader over a byte slice.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) need(n int) error {
	if c.remaining() < n {
		return ErrTruncated
	}
	return nil
}

func (c *cursor) u8() (uint8, error) {
	if err := c.need(1); err != nil {
		return 0, err
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if err := c.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if err := c.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if err := c.need(n); err != nil {
		return nil, err
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

// addr reads an IPv4 or IPv6 address.
func (c *cursor) addr(v6 bool) (netip.Addr, error) {
	n := 4
	if v6 {
		n = 16
	}
	raw, err := c.bytes(n)
	if err != nil {
		return netip.Addr{}, err
	}
	a, ok := netip.AddrFromSlice(raw)
	if !ok {
		return netip.Addr{}, fmt.Errorf("mrt: bad address length %d", n)
	}
	return a, nil
}

// nlriPrefix reads an NLRI-encoded prefix: length (bits) + packed bytes.
func (c *cursor) nlriPrefix(v6 bool) (netip.Prefix, error) {
	bits, err := c.u8()
	if err != nil {
		return netip.Prefix{}, err
	}
	maxBits := 32
	size := 4
	if v6 {
		maxBits = 128
		size = 16
	}
	if int(bits) > maxBits {
		return netip.Prefix{}, fmt.Errorf("mrt: prefix length %d exceeds %d", bits, maxBits)
	}
	nBytes := (int(bits) + 7) / 8
	raw, err := c.bytes(nBytes)
	if err != nil {
		return netip.Prefix{}, err
	}
	buf := make([]byte, size)
	copy(buf, raw)
	addr, _ := netip.AddrFromSlice(buf)
	return netip.PrefixFrom(addr, int(bits)), nil
}

// putNLRIPrefix appends the NLRI encoding of a prefix.
func putNLRIPrefix(dst []byte, p netip.Prefix) []byte {
	bits := p.Bits()
	dst = append(dst, byte(bits))
	raw := p.Addr().AsSlice()
	return append(dst, raw[:(bits+7)/8]...)
}
