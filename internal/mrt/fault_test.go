package mrt

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/faultinject"
	"asmodel/internal/ingest"
)

// buildDump writes a valid TABLE_DUMP_V2 dump (PIT + nRIB RIB records)
// and returns the raw bytes.
func buildDump(t *testing.T, nRIB int) []byte {
	t.Helper()
	peers := []PeerEntry{
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 1}), AS: 3356},
		{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 2}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 2}), AS: 701},
	}
	var buf bytes.Buffer
	tw, err := NewTableDumpWriter(NewWriter(&buf), 1000, "fault-view", peers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRIB; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 0, byte(2 + i), 0}), 24)
		entries := []RIBEntry{{
			PeerIndex:  uint16(i % 2),
			Originated: uint32(100 + i),
			Attrs: &PathAttrs{
				Origin:   bgp.OriginIGP,
				Segments: SequencePath(bgp.Path{3356, 1239, bgp.ASN(24000 + i)}),
				NextHop:  peers[i%2].Addr,
			},
		}}
		if err := tw.WriteRIB(uint32(1000+i), prefix, entries); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFaultMatrixToDataset sweeps seeded read-fault schedules
// (truncation, bit flips, transient errors with short reads, permanent
// failures) over a valid dump. Lenient loads must degrade gracefully:
// a typed budget error or a counted skip, never a crash; strict loads
// must fail or produce the clean result.
func TestFaultMatrixToDataset(t *testing.T) {
	raw := buildDump(t, 8)
	clean, _, _, err := ToDatasetOpts(bytes.NewReader(raw), ingest.Options{})
	if err != nil {
		t.Fatalf("clean load: %v", err)
	}
	for seed := int64(0); seed < 200; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := faultinject.RandomReaderConfig(seed, int64(len(raw)))
			fr := faultinject.NewReader(bytes.NewReader(raw), cfg)
			ds, _, rep, err := ToDatasetOpts(fr, ingest.Options{})
			if err != nil {
				var be *ingest.BudgetExceededError
				if !errors.As(err, &be) && !errors.Is(err, ErrTruncated) &&
					!isInjected(err) && !isParseErr(err) {
					t.Fatalf("lenient load: untyped error %T: %v", err, err)
				}
				return
			}
			if ds == nil || rep == nil {
				t.Fatal("nil dataset/report without error")
			}
			// Transient-only schedules are fully absorbed by the retry
			// layer: the result must equal the clean load.
			if cfg.TransientEvery > 0 && cfg.TruncateAt == 0 && cfg.FailAt == 0 && len(cfg.FlipBytes) == 0 {
				if len(ds.Records) != len(clean.Records) {
					t.Fatalf("transient faults changed the result: %d records, want %d",
						len(ds.Records), len(clean.Records))
				}
				if rep.Skipped != 0 {
					t.Fatalf("transient faults counted %d skips", rep.Skipped)
				}
			}
		})
	}
}

// isInjected reports whether the chain contains a permanent injected
// fault (surfaced by a framing read in lenient mode once retries are
// exhausted or the fault is non-transient).
func isInjected(err error) bool {
	var inj *faultinject.InjectedError
	var te *faultinject.TransientError
	return errors.As(err, &inj) || errors.As(err, &te)
}

// isParseErr accepts the loaders' own typed record errors (every mrt
// parse error is prefixed "mrt:").
func isParseErr(err error) bool {
	return err != nil && len(err.Error()) >= 4 && err.Error()[:4] == "mrt:"
}

// TestFaultMatrixStrictAborts: under strict options every
// stream-damaging schedule either fails or yields the clean result
// (bit flips can land in bytes the converter never reads).
func TestFaultMatrixStrictAborts(t *testing.T) {
	raw := buildDump(t, 8)
	clean, _, err := ToDataset(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 100; seed++ {
		cfg := faultinject.RandomReaderConfig(seed, int64(len(raw)))
		if cfg.TransientEvery > 0 {
			continue // strict mode has no retry layer; transients legitimately abort
		}
		fr := faultinject.NewReader(bytes.NewReader(raw), cfg)
		ds, _, err := ToDataset(fr)
		if err == nil && ds != nil && len(ds.Records) > len(clean.Records) {
			t.Fatalf("seed %d: corrupt stream grew the dataset: %d > %d",
				seed, len(ds.Records), len(clean.Records))
		}
	}
}

// TestLenientTruncatedDump: a dump cut mid-record loads every complete
// record and counts exactly one skip for the torn frame.
func TestLenientTruncatedDump(t *testing.T) {
	raw := buildDump(t, 8)
	cut := raw[:len(raw)-7]
	ds, st, rep, err := ToDatasetOpts(bytes.NewReader(cut), ingest.Options{})
	if err != nil {
		t.Fatalf("lenient truncated load: %v", err)
	}
	if rep.Skipped != 1 {
		t.Fatalf("skipped=%d, want 1 (the torn frame)", rep.Skipped)
	}
	if st.RIBRecords != 7 {
		t.Fatalf("RIB records=%d, want 7 of 8", st.RIBRecords)
	}
	if len(ds.Records) == 0 {
		t.Fatal("no records recovered from truncated dump")
	}
	// Strict mode must abort instead.
	if _, _, err := ToDataset(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("strict truncated load: want ErrTruncated, got %v", err)
	}
}

// TestLenientCorruptBodiesBudget: corrupt record bodies are skipped and
// counted; a tight budget converts them into a typed budget error.
func TestLenientCorruptBodiesBudget(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	peers := []PeerEntry{{BGPID: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Addr: netip.AddrFrom4([4]byte{10, 1, 0, 1}), AS: 3356}}
	if _, err := NewTableDumpWriter(w, 1000, "v", peers); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		// Garbage RIB bodies: parse fails, conversion must skip them.
		if err := w.WriteRecord(uint32(2000+i), TypeTableDumpV2, SubtypeRIBIPv4Unicast, []byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()

	ds, _, rep, err := ToDatasetOpts(bytes.NewReader(raw), ingest.Options{})
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if rep.Skipped != 4 {
		t.Fatalf("skipped=%d, want 4", rep.Skipped)
	}
	if len(rep.Errors) != 4 {
		t.Fatalf("reported errors=%d, want 4", len(rep.Errors))
	}
	if ds.Len() != 0 {
		t.Fatalf("records=%d, want 0", ds.Len())
	}

	_, _, _, err = ToDatasetOpts(bytes.NewReader(raw), ingest.Options{MaxRecordErrors: 2})
	var be *ingest.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetExceededError with budget 2, got %v", err)
	}
	if be.Budget != 2 || be.Skipped != 3 {
		t.Fatalf("budget error: %+v", be)
	}

	// Strict mode aborts on the first corrupt body.
	if _, _, err := ToDataset(bytes.NewReader(raw)); err == nil {
		t.Fatal("strict load accepted corrupt bodies")
	}
}

// TestLenientReplayFaults runs the same matrix over the BGP4MP replay
// path.
func TestLenientReplayFaults(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 6; i++ {
		u := &Update{
			Attrs: &PathAttrs{
				Origin:   bgp.OriginIGP,
				Segments: SequencePath(bgp.Path{65001, bgp.ASN(64000 + i)}),
				NextHop:  netip.AddrFrom4([4]byte{10, 0, 0, 9}),
			},
			NLRI: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 0, byte(2 + i), 0}), 24)},
		}
		if err := w.WriteBGP4MPUpdate(uint32(100+i), 65001, 65000,
			netip.AddrFrom4([4]byte{10, 0, 0, 1}), netip.AddrFrom4([4]byte{10, 0, 0, 2}), u); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	clean, _, _, err := UpdatesToDatasetOpts(bytes.NewReader(raw), 0, 0, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != 6 {
		t.Fatalf("clean replay: %d records", clean.Len())
	}
	for seed := int64(0); seed < 100; seed++ {
		cfg := faultinject.RandomReaderConfig(seed, int64(len(raw)))
		fr := faultinject.NewReader(bytes.NewReader(raw), cfg)
		ds, _, rep, err := UpdatesToDatasetOpts(fr, 0, 0, ingest.Options{})
		if err != nil {
			var be *ingest.BudgetExceededError
			if !errors.As(err, &be) && !errors.Is(err, ErrTruncated) && !isInjected(err) && !isParseErr(err) {
				t.Fatalf("seed %d: untyped error %T: %v", seed, err, err)
			}
			continue
		}
		if ds == nil || rep == nil {
			t.Fatalf("seed %d: nil result without error", seed)
		}
		if cfg.TransientEvery > 0 && cfg.TruncateAt == 0 && cfg.FailAt == 0 && len(cfg.FlipBytes) == 0 {
			if ds.Len() != clean.Len() {
				t.Fatalf("seed %d: transient faults changed replay: %d records, want %d",
					seed, ds.Len(), clean.Len())
			}
		}
	}
}
