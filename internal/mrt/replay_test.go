package mrt

import (
	"bytes"
	"net/netip"
	"testing"

	"asmodel/internal/bgp"
)

func writeUpdate(t *testing.T, w *Writer, ts uint32, peerAS bgp.ASN, path bgp.Path, announce []string, withdraw []string) {
	t.Helper()
	u := &Update{}
	if len(announce) > 0 {
		u.Attrs = &PathAttrs{
			Origin:   bgp.OriginIGP,
			Segments: SequencePath(path),
			NextHop:  netip.AddrFrom4([4]byte{10, 0, 0, 9}),
		}
		for _, a := range announce {
			u.NLRI = append(u.NLRI, netip.MustParsePrefix(a))
		}
	}
	for _, wd := range withdraw {
		u.Withdrawn = append(u.Withdrawn, netip.MustParsePrefix(wd))
	}
	peerAddr := netip.AddrFrom4([4]byte{10, 0, byte(peerAS >> 8), byte(peerAS)})
	local := netip.AddrFrom4([4]byte{10, 9, 9, 9})
	if err := w.WriteBGP4MPUpdate(ts, peerAS, 65000, peerAddr, local, u); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatesReplayBasics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 200, 10, bgp.Path{10, 20, 40}, []string{"192.0.2.0/24"}, nil) // replace
	writeUpdate(t, w, 300, 11, bgp.Path{11, 40}, []string{"192.0.2.0/24", "198.51.100.0/24"}, nil)
	writeUpdate(t, w, 400, 11, bgp.Path{}, nil, []string{"198.51.100.0/24"}) // withdraw

	ds, st, err := UpdatesToDataset(bytes.NewReader(buf.Bytes()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 4 || st.Announces != 4 || st.Withdraws != 1 {
		t.Fatalf("stats=%+v", st)
	}
	if ds.Len() != 2 {
		t.Fatalf("records=%d: %+v", ds.Len(), ds.Records)
	}
	// Peer 10's final route is the replacement path.
	for _, r := range ds.Records {
		if r.ObsAS == 10 {
			if !r.Path.Equal(bgp.Path{10, 20, 40}) {
				t.Errorf("peer 10 path=%v", r.Path)
			}
			if r.Learned != 200 {
				t.Errorf("peer 10 learned=%d", r.Learned)
			}
		}
		if err := r.Valid(); err != nil {
			t.Error(err)
		}
	}
}

func TestUpdatesReplayCutoffAndStability(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 5000, 10, bgp.Path{10, 20, 40}, []string{"192.0.2.0/24"}, nil) // after cutoff
	writeUpdate(t, w, 900, 11, bgp.Path{11, 40}, []string{"203.0.113.0/24"}, nil)    // too fresh

	ds, st, err := UpdatesToDataset(bytes.NewReader(buf.Bytes()), 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.AfterCutoff != 1 {
		t.Errorf("after-cutoff=%d", st.AfterCutoff)
	}
	if st.Unstable != 1 {
		t.Errorf("unstable=%d", st.Unstable)
	}
	if ds.Len() != 1 {
		t.Fatalf("records=%d", ds.Len())
	}
	if !ds.Records[0].Path.Equal(bgp.Path{10, 40}) {
		t.Errorf("path=%v (cutoff should exclude the later replacement)", ds.Records[0].Path)
	}
}

func TestUpdatesReplayWithdrawAll(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 200, 10, bgp.Path{}, nil, []string{"192.0.2.0/24"})
	ds, _, err := UpdatesToDataset(bytes.NewReader(buf.Bytes()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 0 {
		t.Fatalf("withdrawn route survived: %+v", ds.Records)
	}
}

func TestUpdatesReplayDeterministicOrder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for as := bgp.ASN(20); as >= 10; as -= 2 {
		writeUpdate(t, w, 100, as, bgp.Path{as, 40}, []string{"192.0.2.0/24"}, nil)
	}
	raw := buf.Bytes()
	a, _, err := UpdatesToDataset(bytes.NewReader(raw), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := UpdatesToDataset(bytes.NewReader(raw), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].Obs != b.Records[i].Obs {
			t.Fatal("non-deterministic order")
		}
	}
	// Sorted by AS.
	for i := 1; i < a.Len(); i++ {
		if a.Records[i-1].ObsAS > a.Records[i].ObsAS {
			t.Fatal("records not sorted by peer AS")
		}
	}
}
