package mrt

import (
	"bytes"
	"net/netip"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/ingest"
)

func writeUpdate(t *testing.T, w *Writer, ts uint32, peerAS bgp.ASN, path bgp.Path, announce []string, withdraw []string) {
	t.Helper()
	u := &Update{}
	if len(announce) > 0 {
		u.Attrs = &PathAttrs{
			Origin:   bgp.OriginIGP,
			Segments: SequencePath(path),
			NextHop:  netip.AddrFrom4([4]byte{10, 0, 0, 9}),
		}
		for _, a := range announce {
			u.NLRI = append(u.NLRI, netip.MustParsePrefix(a))
		}
	}
	for _, wd := range withdraw {
		u.Withdrawn = append(u.Withdrawn, netip.MustParsePrefix(wd))
	}
	peerAddr := netip.AddrFrom4([4]byte{10, 0, byte(peerAS >> 8), byte(peerAS)})
	local := netip.AddrFrom4([4]byte{10, 9, 9, 9})
	if err := w.WriteBGP4MPUpdate(ts, peerAS, 65000, peerAddr, local, u); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatesReplayBasics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 200, 10, bgp.Path{10, 20, 40}, []string{"192.0.2.0/24"}, nil) // replace
	writeUpdate(t, w, 300, 11, bgp.Path{11, 40}, []string{"192.0.2.0/24", "198.51.100.0/24"}, nil)
	writeUpdate(t, w, 400, 11, bgp.Path{}, nil, []string{"198.51.100.0/24"}) // withdraw

	ds, st, err := UpdatesToDataset(bytes.NewReader(buf.Bytes()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 4 || st.Announces != 4 || st.Withdraws != 1 {
		t.Fatalf("stats=%+v", st)
	}
	if ds.Len() != 2 {
		t.Fatalf("records=%d: %+v", ds.Len(), ds.Records)
	}
	// Peer 10's final route is the replacement path.
	for _, r := range ds.Records {
		if r.ObsAS == 10 {
			if !r.Path.Equal(bgp.Path{10, 20, 40}) {
				t.Errorf("peer 10 path=%v", r.Path)
			}
			if r.Learned != 200 {
				t.Errorf("peer 10 learned=%d", r.Learned)
			}
		}
		if err := r.Valid(); err != nil {
			t.Error(err)
		}
	}
}

func TestUpdatesReplayCutoffAndStability(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 5000, 10, bgp.Path{10, 20, 40}, []string{"192.0.2.0/24"}, nil) // after cutoff
	writeUpdate(t, w, 900, 11, bgp.Path{11, 40}, []string{"203.0.113.0/24"}, nil)    // too fresh

	ds, st, err := UpdatesToDataset(bytes.NewReader(buf.Bytes()), 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.AfterCutoff != 1 {
		t.Errorf("after-cutoff=%d", st.AfterCutoff)
	}
	if st.Unstable != 1 {
		t.Errorf("unstable=%d", st.Unstable)
	}
	if ds.Len() != 1 {
		t.Fatalf("records=%d", ds.Len())
	}
	if !ds.Records[0].Path.Equal(bgp.Path{10, 40}) {
		t.Errorf("path=%v (cutoff should exclude the later replacement)", ds.Records[0].Path)
	}
}

func TestUpdatesReplayWithdrawAll(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 200, 10, bgp.Path{}, nil, []string{"192.0.2.0/24"})
	ds, _, err := UpdatesToDataset(bytes.NewReader(buf.Bytes()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 0 {
		t.Fatalf("withdrawn route survived: %+v", ds.Records)
	}
}

// TestReplayCutoffOnBoundary pins the inclusive-cutoff contract: a
// record stamped exactly at the cutoff is applied (and advances
// LastTimestamp); the first record past it is ignored and counted.
func TestReplayCutoffOnBoundary(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 1000, 10, bgp.Path{10, 20, 40}, []string{"192.0.2.0/24"}, nil) // ts == cutoff
	writeUpdate(t, w, 1001, 10, bgp.Path{10, 30, 40}, []string{"192.0.2.0/24"}, nil) // ts == cutoff+1

	ds, st, err := UpdatesToDataset(bytes.NewReader(buf.Bytes()), 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.AfterCutoff != 1 {
		t.Errorf("after-cutoff=%d, want 1 (boundary record must be included)", st.AfterCutoff)
	}
	if st.LastTimestamp != 1000 {
		t.Errorf("last-ts=%d, want 1000 (boundary record advances it, post-cutoff does not)", st.LastTimestamp)
	}
	if ds.Len() != 1 || !ds.Records[0].Path.Equal(bgp.Path{10, 20, 40}) {
		t.Fatalf("boundary record not applied: %+v", ds.Records)
	}
}

// TestReplayMinAgeAcrossBatchBoundary exercises the stability filter the
// way the streaming loop uses it: the same Replayer snapshots after
// each batch, and a route too fresh for one batch's snapshot must
// appear in a later snapshot once the stream clock has moved past its
// minAge — without being re-announced.
func TestReplayMinAgeAcrossBatchBoundary(t *testing.T) {
	rp := NewReplayer(0, 500)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 300, 11, bgp.Path{11, 40}, []string{"198.51.100.0/24"}, nil)
	// Batch 2: only an unrelated announcement, far in the future.
	writeUpdate(t, w, 900, 12, bgp.Path{12, 40}, []string{"203.0.113.0/24"}, nil)
	rd := NewReader(bytes.NewReader(buf.Bytes()))

	apply := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			rec, err := rd.Next()
			if err != nil {
				t.Fatal(err)
			}
			if err := rp.Apply(rec); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Batch 1 ends at ts=300: the ts=300 route (age 0) is unstable, the
	// ts=100 route (age 200 < 500) is too.
	apply(2)
	rp.TakeChanged()
	if ds := rp.Dataset(); ds.Len() != 0 {
		t.Fatalf("fresh routes leaked through the stability filter: %+v", ds.Records)
	}
	if got := rp.Stats().Unstable; got != 2 {
		t.Fatalf("unstable=%d, want 2", got)
	}

	// Batch 2 ends at ts=900: the ts=100 route (age 800) is now stable
	// even though batch 2 never touched it; ts=300 (age 600) likewise;
	// ts=900 (age 0) is not.
	apply(1)
	ds := rp.Dataset()
	if ds.Len() != 2 {
		t.Fatalf("records=%d, want 2 (aged-in routes): %+v", ds.Len(), ds.Records)
	}
	for _, r := range ds.Records {
		if r.ObsAS == 12 {
			t.Fatalf("fresh batch-2 route leaked: %+v", r)
		}
	}
	if st := rp.Stats(); st.LastTimestamp != 900 {
		t.Fatalf("last-ts=%d, want 900", st.LastTimestamp)
	}
}

// TestReplayLenientFramingMidBatch: garbage after a valid prefix of the
// stream desyncs the length-prefixed framing. Lenient ingestion must
// keep the replay so far, count exactly one skip at the failing record
// number, and report stats for the consumed prefix only.
func TestReplayLenientFramingMidBatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	writeUpdate(t, w, 100, 10, bgp.Path{10, 40}, []string{"192.0.2.0/24"}, nil)
	writeUpdate(t, w, 200, 11, bgp.Path{11, 40}, []string{"198.51.100.0/24"}, nil)
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff, 0x01, 0x02, 0x03})

	ds, st, rep, err := UpdatesToDatasetOpts(bytes.NewReader(buf.Bytes()), 0, 0, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("replay prefix lost: %d records", ds.Len())
	}
	if st.Records != 2 || st.Updates != 2 {
		t.Fatalf("stats=%+v", st)
	}
	if rep.Skipped != 1 {
		t.Fatalf("skipped=%d, want 1", rep.Skipped)
	}
	// Strict mode surfaces the same failure instead.
	_, _, _, err = UpdatesToDatasetOpts(bytes.NewReader(buf.Bytes()), 0, 0, ingest.Options{Strict: true})
	if err == nil {
		t.Fatal("strict mode swallowed the framing failure")
	}
}

func TestUpdatesReplayDeterministicOrder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for as := bgp.ASN(20); as >= 10; as -= 2 {
		writeUpdate(t, w, 100, as, bgp.Path{as, 40}, []string{"192.0.2.0/24"}, nil)
	}
	raw := buf.Bytes()
	a, _, err := UpdatesToDataset(bytes.NewReader(raw), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := UpdatesToDataset(bytes.NewReader(raw), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].Obs != b.Records[i].Obs {
			t.Fatal("non-deterministic order")
		}
	}
	// Sorted by AS.
	for i := 1; i < a.Len(); i++ {
		if a.Records[i-1].ObsAS > a.Records[i].ObsAS {
			t.Fatal("records not sorted by peer AS")
		}
	}
}
