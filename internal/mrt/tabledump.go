package mrt

import (
	"fmt"
	"net/netip"

	"asmodel/internal/bgp"
)

// PeerEntry describes one collector peer from a PEER_INDEX_TABLE.
type PeerEntry struct {
	BGPID netip.Addr
	Addr  netip.Addr
	AS    bgp.ASN
}

// PeerIndexTable is the decoded PEER_INDEX_TABLE record that RIB records
// reference by peer index.
type PeerIndexTable struct {
	CollectorBGPID netip.Addr
	ViewName       string
	Peers          []PeerEntry
}

// ParsePeerIndexTable decodes a TABLE_DUMP_V2 PEER_INDEX_TABLE record.
func ParsePeerIndexTable(rec *Record) (*PeerIndexTable, error) {
	if rec.Type != TypeTableDumpV2 || rec.Subtype != SubtypePeerIndexTable {
		return nil, fmt.Errorf("mrt: record is %d/%d, not a peer index table", rec.Type, rec.Subtype)
	}
	c := &cursor{b: rec.Body}
	pit := &PeerIndexTable{}
	id, err := c.addr(false)
	if err != nil {
		return nil, err
	}
	pit.CollectorBGPID = id
	nameLen, err := c.u16()
	if err != nil {
		return nil, err
	}
	name, err := c.bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	pit.ViewName = string(name)
	count, err := c.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(count); i++ {
		ptype, err := c.u8()
		if err != nil {
			return nil, err
		}
		v6 := ptype&0x01 != 0
		as4 := ptype&0x02 != 0
		var pe PeerEntry
		if pe.BGPID, err = c.addr(false); err != nil {
			return nil, err
		}
		if pe.Addr, err = c.addr(v6); err != nil {
			return nil, err
		}
		if as4 {
			v, err := c.u32()
			if err != nil {
				return nil, err
			}
			pe.AS = bgp.ASN(v)
		} else {
			v, err := c.u16()
			if err != nil {
				return nil, err
			}
			pe.AS = bgp.ASN(v)
		}
		pit.Peers = append(pit.Peers, pe)
	}
	return pit, nil
}

// RIBEntry is one route of a RIB record: the view of one collector peer.
type RIBEntry struct {
	PeerIndex  uint16
	Originated uint32
	Attrs      *PathAttrs
}

// RIB is a decoded RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record.
type RIB struct {
	Sequence uint32
	Prefix   netip.Prefix
	Entries  []RIBEntry
}

// ParseRIB decodes a TABLE_DUMP_V2 RIB record (IPv4 or IPv6 unicast).
func ParseRIB(rec *Record) (*RIB, error) {
	if rec.Type != TypeTableDumpV2 ||
		(rec.Subtype != SubtypeRIBIPv4Unicast && rec.Subtype != SubtypeRIBIPv6Unicast) {
		return nil, fmt.Errorf("mrt: record is %d/%d, not a RIB record", rec.Type, rec.Subtype)
	}
	v6 := rec.Subtype == SubtypeRIBIPv6Unicast
	c := &cursor{b: rec.Body}
	rib := &RIB{}
	var err error
	if rib.Sequence, err = c.u32(); err != nil {
		return nil, err
	}
	if rib.Prefix, err = c.nlriPrefix(v6); err != nil {
		return nil, err
	}
	count, err := c.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(count); i++ {
		var e RIBEntry
		if e.PeerIndex, err = c.u16(); err != nil {
			return nil, err
		}
		if e.Originated, err = c.u32(); err != nil {
			return nil, err
		}
		alen, err := c.u16()
		if err != nil {
			return nil, err
		}
		raw, err := c.bytes(int(alen))
		if err != nil {
			return nil, err
		}
		// TABLE_DUMP_V2 always encodes AS numbers as 4 bytes (RFC 6396
		// §4.3.4).
		if e.Attrs, err = parseAttrs(raw, true); err != nil {
			return nil, err
		}
		rib.Entries = append(rib.Entries, e)
	}
	return rib, nil
}

// TableDumpWriter emits a TABLE_DUMP_V2 snapshot: one PEER_INDEX_TABLE
// followed by RIB records.
type TableDumpWriter struct {
	w     *Writer
	peers []PeerEntry
	seq   uint32
}

// NewTableDumpWriter creates a writer and immediately emits the
// PEER_INDEX_TABLE for the given peers.
func NewTableDumpWriter(w *Writer, timestamp uint32, viewName string, peers []PeerEntry) (*TableDumpWriter, error) {
	body := make([]byte, 0, 16+16*len(peers))
	collector := netip.AddrFrom4([4]byte{192, 0, 2, 1})
	cb := collector.As4()
	body = append(body, cb[:]...)
	body = append(body, byte(len(viewName)>>8), byte(len(viewName)))
	body = append(body, viewName...)
	body = append(body, byte(len(peers)>>8), byte(len(peers)))
	for _, p := range peers {
		if !p.Addr.Is4() || !p.BGPID.Is4() {
			return nil, fmt.Errorf("mrt: TableDumpWriter supports IPv4 peers only")
		}
		body = append(body, 0x02) // IPv4 peer, AS4
		id := p.BGPID.As4()
		body = append(body, id[:]...)
		ad := p.Addr.As4()
		body = append(body, ad[:]...)
		body = append(body, be32bytes(uint32(p.AS))...)
	}
	if err := w.WriteRecord(timestamp, TypeTableDumpV2, SubtypePeerIndexTable, body); err != nil {
		return nil, err
	}
	return &TableDumpWriter{w: w, peers: peers}, nil
}

// WriteRIB emits one RIB_IPV4_UNICAST record for the prefix with the
// given per-peer entries. Sequence numbers are assigned automatically.
func (tw *TableDumpWriter) WriteRIB(timestamp uint32, prefix netip.Prefix, entries []RIBEntry) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("mrt: WriteRIB supports IPv4 prefixes only")
	}
	body := be32bytes(tw.seq)
	tw.seq++
	body = putNLRIPrefix(body, prefix)
	body = append(body, byte(len(entries)>>8), byte(len(entries)))
	for _, e := range entries {
		if int(e.PeerIndex) >= len(tw.peers) {
			return fmt.Errorf("mrt: peer index %d out of range", e.PeerIndex)
		}
		body = append(body, byte(e.PeerIndex>>8), byte(e.PeerIndex))
		body = append(body, be32bytes(e.Originated)...)
		attrs := encodeAttrs(e.Attrs, true)
		body = append(body, byte(len(attrs)>>8), byte(len(attrs)))
		body = append(body, attrs...)
	}
	return tw.w.WriteRecord(timestamp, TypeTableDumpV2, SubtypeRIBIPv4Unicast, body)
}
