package mrt

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/netip"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/durable"
	"asmodel/internal/ingest"
)

// ConvertStats reports what ToDataset encountered.
type ConvertStats struct {
	Records       int // MRT records read
	RIBRecords    int // RIB records decoded
	Entries       int // per-peer routes converted
	SkippedASSet  int // routes dropped because of AS_SET aggregation
	SkippedNoPath int // routes dropped for missing/empty AS_PATH
	SkippedPeer   int // routes dropped for invalid peer references
	IPv6Records   int // IPv6 RIB records (converted like IPv4)
}

// ToDataset converts a TABLE_DUMP_V2 RIB dump stream into a dataset: one
// record per (peer, prefix) route, with the peer acting as the
// observation point. Paths are recorded with the observation AS first
// (prepending the peer AS when the table's AS_PATH does not already start
// with it, as with route servers). Routes carrying AS_SET aggregation are
// dropped, mirroring the paper's per-path data handling.
func ToDataset(r io.Reader) (*dataset.Dataset, *ConvertStats, error) {
	ds, st, _, err := ToDatasetOpts(r, ingest.Options{Strict: true})
	return ds, st, err
}

// lenientReader wraps the input for lenient loads: transient read errors
// are retried beneath the record framing, so a flaky source never
// misframes the length-prefixed stream.
func lenientReader(r io.Reader, opts ingest.Options) io.Reader {
	if opts.Strict {
		return r
	}
	return durable.NewRetryReader(r, durable.Policy{})
}

// ToDatasetOpts is ToDataset under explicit ingest options. In lenient
// mode (the default) malformed record bodies are skipped and counted in
// the returned report up to its error budget, and a framing failure
// (truncated or corrupt record header) ends the stream with a counted
// skip instead of discarding everything read so far.
func ToDatasetOpts(r io.Reader, opts ingest.Options) (*dataset.Dataset, *ConvertStats, *ingest.Report, error) {
	rd := NewReader(lenientReader(r, opts))
	ds := &dataset.Dataset{}
	st := &ConvertStats{}
	rep := ingest.NewReport("mrt", opts)
	var pit *PeerIndexTable
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A broken frame loses sync with the length-prefixed stream:
			// count one skip and stop at the last good record.
			if serr := rep.Skip(st.Records+1, err); serr != nil {
				return nil, st, rep, serr
			}
			break
		}
		st.Records++
		rep.Record()
		if rec.Type != TypeTableDumpV2 {
			continue
		}
		switch rec.Subtype {
		case SubtypePeerIndexTable:
			p, err := ParsePeerIndexTable(rec)
			if err != nil {
				if serr := rep.Skip(st.Records, err); serr != nil {
					return nil, st, rep, serr
				}
				continue
			}
			pit = p
		case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
			if pit == nil {
				if serr := rep.Skip(st.Records, fmt.Errorf("mrt: RIB record before PEER_INDEX_TABLE")); serr != nil {
					return nil, st, rep, serr
				}
				continue
			}
			rib, err := ParseRIB(rec)
			if err != nil {
				if serr := rep.Skip(st.Records, err); serr != nil {
					return nil, st, rep, serr
				}
				continue
			}
			st.RIBRecords++
			if rec.Subtype == SubtypeRIBIPv6Unicast {
				st.IPv6Records++
			}
			convertRIB(ds, st, pit, rib)
		}
	}
	return ds, st, rep, nil
}

func convertRIB(ds *dataset.Dataset, st *ConvertStats, pit *PeerIndexTable, rib *RIB) {
	for _, e := range rib.Entries {
		if int(e.PeerIndex) >= len(pit.Peers) {
			st.SkippedPeer++
			continue
		}
		peer := pit.Peers[e.PeerIndex]
		if peer.AS == 0 {
			st.SkippedPeer++
			continue
		}
		path, hasSet := e.Attrs.Path()
		if hasSet {
			st.SkippedASSet++
			continue
		}
		if len(path) == 0 {
			st.SkippedNoPath++
			continue
		}
		if path[0] != peer.AS {
			path = path.Prepend(peer.AS)
		}
		ds.Records = append(ds.Records, dataset.Record{
			Obs:     dataset.ObsPointID(fmt.Sprintf("%s|%s", peer.Addr, peer.AS)),
			ObsAS:   peer.AS,
			Prefix:  rib.Prefix.String(),
			Path:    path,
			Learned: int64(e.Originated),
		})
		st.Entries++
	}
}

// SyntheticCIDR maps an arbitrary prefix name to a deterministic IPv4 /24
// inside 10.0.0.0/8, for emitting datasets with non-CIDR prefix names
// (such as the synthetic "P<asn>") as MRT dumps.
func SyntheticCIDR(name string) netip.Prefix {
	if p, err := netip.ParsePrefix(name); err == nil && p.Addr().Is4() {
		return p
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(v >> 16), byte(v >> 8), 0}), 24)
}

// FromDataset writes a dataset as a TABLE_DUMP_V2 MRT dump: one peer per
// observation point and one RIB record per prefix. Prefix names that are
// not parseable CIDRs are mapped through SyntheticCIDR. The inverse of
// ToDataset up to prefix naming.
func FromDataset(w io.Writer, ds *dataset.Dataset, timestamp uint32) error {
	points := ds.ObsPoints()
	peerIdx := make(map[dataset.ObsPointID]uint16, len(points))
	peers := make([]PeerEntry, len(points))
	obsAS := make(map[dataset.ObsPointID]bgp.ASN)
	for _, r := range ds.Records {
		obsAS[r.Obs] = r.ObsAS
	}
	for i, p := range points {
		peerIdx[p] = uint16(i)
		peers[i] = PeerEntry{
			BGPID: netip.AddrFrom4([4]byte{10, 255, byte(i >> 8), byte(i)}),
			Addr:  netip.AddrFrom4([4]byte{10, 254, byte(i >> 8), byte(i)}),
			AS:    obsAS[p],
		}
	}
	mw := NewWriter(w)
	tw, err := NewTableDumpWriter(mw, timestamp, "asmodel", peers)
	if err != nil {
		return err
	}
	byPrefix := ds.ByPrefix()
	for _, name := range ds.Prefixes() {
		var entries []RIBEntry
		for _, ri := range byPrefix[name] {
			rec := &ds.Records[ri]
			// The AS_PATH stored in a RIB is the path as received from
			// the peer, which starts with the peer's AS — exactly our
			// record convention.
			entries = append(entries, RIBEntry{
				PeerIndex:  peerIdx[rec.Obs],
				Originated: uint32(rec.Learned),
				Attrs: &PathAttrs{
					Origin:   bgp.OriginIGP,
					Segments: SequencePath(rec.Path),
					NextHop:  peers[peerIdx[rec.Obs]].Addr,
				},
			})
		}
		if err := tw.WriteRIB(timestamp, SyntheticCIDR(name), entries); err != nil {
			return err
		}
	}
	return nil
}
