package dataset

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"asmodel/internal/bgp"
	"asmodel/internal/ingest"
)

func rec(obs string, prefix string, path ...bgp.ASN) Record {
	return Record{Obs: ObsPointID(obs), ObsAS: path[0], Prefix: prefix, Path: bgp.Path(path)}
}

func TestRecordValid(t *testing.T) {
	good := rec("rv1", "P4", 1, 2, 4)
	if err := good.Valid(); err != nil {
		t.Errorf("good record invalid: %v", err)
	}
	bad := []Record{
		{Obs: "", ObsAS: 1, Prefix: "P4", Path: bgp.Path{1, 4}},
		{Obs: "x", ObsAS: 1, Prefix: "", Path: bgp.Path{1, 4}},
		{Obs: "x", ObsAS: 1, Prefix: "P4", Path: bgp.Path{}},
		{Obs: "x", ObsAS: 2, Prefix: "P4", Path: bgp.Path{1, 4}}, // path doesn't start at obs AS
	}
	for i, r := range bad {
		if err := r.Valid(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestNormalize(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("a", "P4", 1, 1, 2, 4), // prepending stripped -> 1 2 4
		rec("a", "P4", 1, 2, 4),    // duplicate after stripping
		rec("a", "P4", 1, 2, 1, 4), // loop: dropped
		rec("b", "P4", 1, 2, 4),    // same path, different obs point: kept
		rec("a", "P5", 1, 2, 5),    // different prefix: kept
	}}
	d.Normalize()
	if d.Len() != 3 {
		t.Fatalf("Normalize kept %d records, want 3: %+v", d.Len(), d.Records)
	}
	for _, r := range d.Records {
		if r.Path.HasLoop() {
			t.Errorf("loop survived: %v", r.Path)
		}
		if !r.Path.StripPrepend().Equal(r.Path) {
			t.Errorf("prepending survived: %v", r.Path)
		}
	}
}

func TestStableAt(t *testing.T) {
	d := &Dataset{Records: []Record{
		{Obs: "a", ObsAS: 1, Prefix: "P2", Path: bgp.Path{1, 2}, Learned: 1000},
		{Obs: "b", ObsAS: 1, Prefix: "P2", Path: bgp.Path{1, 2}, Learned: 4000},
		{Obs: "c", ObsAS: 1, Prefix: "P2", Path: bgp.Path{1, 2}, Learned: 0}, // unknown: kept
	}}
	d.StableAt(5000, 3600)
	if d.Len() != 2 {
		t.Fatalf("StableAt kept %d, want 2", d.Len())
	}
	for _, r := range d.Records {
		if r.Obs == "b" {
			t.Error("record learned too recently survived")
		}
	}
}

func TestAccessors(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("rv1", "P4", 1, 2, 4),
		rec("rv2", "P4", 3, 2, 4),
		rec("rv1", "P5", 1, 5),
	}}
	if got := d.ObsPoints(); len(got) != 2 || got[0] != "rv1" || got[1] != "rv2" {
		t.Errorf("ObsPoints = %v", got)
	}
	if got := d.ObsASes(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ObsASes = %v", got)
	}
	if got := d.Origins(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("Origins = %v", got)
	}
	if got := d.Prefixes(); len(got) != 2 {
		t.Errorf("Prefixes = %v", got)
	}
	byP := d.ByPrefix()
	if len(byP["P4"]) != 2 || len(byP["P5"]) != 1 {
		t.Errorf("ByPrefix = %v", byP)
	}
}

func TestSplitByObsPointPartitions(t *testing.T) {
	d := &Dataset{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		obs := ObsPointID("op" + string(rune('A'+i%10)))
		d.Records = append(d.Records, Record{
			Obs: obs, ObsAS: bgp.ASN(1 + i%10), Prefix: "P9",
			Path: bgp.Path{bgp.ASN(1 + i%10), bgp.ASN(100 + rng.Intn(3)), 9},
		})
	}
	train, valid := d.SplitByObsPoint(0.5, 42)
	if train.Len()+valid.Len() != d.Len() {
		t.Fatalf("split loses records: %d + %d != %d", train.Len(), valid.Len(), d.Len())
	}
	// No observation point may appear on both sides.
	tSet := map[ObsPointID]bool{}
	for _, r := range train.Records {
		tSet[r.Obs] = true
	}
	for _, r := range valid.Records {
		if tSet[r.Obs] {
			t.Fatalf("observation point %s on both sides", r.Obs)
		}
	}
	// Determinism.
	train2, _ := d.SplitByObsPoint(0.5, 42)
	if train2.Len() != train.Len() {
		t.Error("split not deterministic")
	}
	// Different seed should (almost surely) differ for 10 points.
	train3, _ := d.SplitByObsPoint(0.5, 43)
	if train3.Len() == train.Len() {
		same := true
		for i := range train3.Records {
			if i >= len(train.Records) || train3.Records[i].Obs != train.Records[i].Obs {
				same = false
				break
			}
		}
		if same && train.Len() > 0 {
			t.Log("warning: different seeds produced identical split (possible, unlikely)")
		}
	}
}

func TestSplitByOriginPartitions(t *testing.T) {
	d := &Dataset{}
	for o := 100; o < 120; o++ {
		d.Records = append(d.Records,
			rec("rv1", SyntheticPrefix(bgp.ASN(o)), 1, 2, bgp.ASN(o)),
			rec("rv2", SyntheticPrefix(bgp.ASN(o)), 3, 2, bgp.ASN(o)))
	}
	train, valid := d.SplitByOrigin(0.5, 7)
	if train.Len()+valid.Len() != d.Len() {
		t.Fatal("split loses records")
	}
	tOrig := map[bgp.ASN]bool{}
	for _, r := range train.Records {
		o, _ := r.Path.Origin()
		tOrig[o] = true
	}
	for _, r := range valid.Records {
		o, _ := r.Path.Origin()
		if tOrig[o] {
			t.Fatalf("origin %d on both sides", o)
		}
	}
}

func TestDistinctPathsPerPair(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("a", "P4", 1, 2, 4),
		rec("a", "P4b", 1, 3, 4), // same pair (1,4), different path
		rec("b", "P4", 1, 2, 4),  // same path, different obs point: not distinct
		rec("c", "P4", 7, 2, 4),  // different obs AS
	}}
	got := d.DistinctPathsPerPair()
	if got[ASPair{4, 1}] != 2 {
		t.Errorf("pair (4,1) = %d, want 2", got[ASPair{4, 1}])
	}
	if got[ASPair{4, 7}] != 1 {
		t.Errorf("pair (4,7) = %d, want 1", got[ASPair{4, 7}])
	}
}

func TestMaxReceivedDiversity(t *testing.T) {
	// AS2 receives, for prefix P4: paths "4" (from 1 2 4) and "3 4"
	// (from 1 2 3 4) -> diversity 2. For prefix P5: only "5" -> 1.
	// Max over prefixes = 2.
	d := &Dataset{Records: []Record{
		rec("a", "P4", 1, 2, 4),
		rec("b", "P4", 1, 2, 3, 4),
		rec("a", "P5", 1, 2, 5),
	}}
	got := d.MaxReceivedDiversity()
	if got[2] != 2 {
		t.Errorf("AS2 diversity = %d, want 2", got[2])
	}
	if got[1] != 2 {
		// AS1 receives "2 4" and "2 3 4" for P4.
		t.Errorf("AS1 diversity = %d, want 2", got[1])
	}
	if _, present := got[4]; present {
		t.Error("origin AS should not appear (it receives nothing)")
	}
}

func TestPrefixesPerPath(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("a", "P4", 1, 2, 4),
		rec("a", "P4b", 1, 2, 4), // same path, second prefix
		rec("b", "P4", 1, 2, 4),  // same path+prefix, different obs: no double count
		rec("a", "P9", 1, 9),
	}}
	got := d.PrefixesPerPath()
	if got[bgp.Path{1, 2, 4}.Key()] != 2 {
		t.Errorf("path 1-2-4 carries %d prefixes, want 2", got[bgp.Path{1, 2, 4}.Key()])
	}
	if got[bgp.Path{1, 9}.Key()] != 1 {
		t.Errorf("path 1-9 carries %d prefixes, want 1", got[bgp.Path{1, 9}.Key()])
	}
}

func TestObservedPaths(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("a", "P4", 1, 2, 4),
		rec("a2", "P4", 1, 3, 4),
		rec("a", "P4", 1, 2, 4), // duplicate
		rec("b", "P4", 5, 2, 4),
		rec("b", "P5", 5, 5),
	}}
	got := d.ObservedPaths("P4")
	if len(got) != 2 {
		t.Fatalf("obs ASes = %d, want 2", len(got))
	}
	if len(got[1]) != 2 {
		t.Errorf("AS1 paths = %v, want 2 distinct", got[1])
	}
	if len(got[5]) != 1 {
		t.Errorf("AS5 paths = %v", got[5])
	}
	// Deterministic order.
	again := d.ObservedPaths("P4")
	for i := range got[1] {
		if !got[1][i].Equal(again[1][i]) {
			t.Fatal("ObservedPaths order not deterministic")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := &Dataset{Records: []Record{
		{Obs: "rrc00-peer1", ObsAS: 3356, Prefix: "192.0.2.0/24", Path: bgp.Path{3356, 1239, 24249}, Learned: 1131867000},
		{Obs: "rv2", ObsAS: 701, Prefix: "P5", Path: bgp.Path{701, 5}},
	}}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip %d != %d", got.Len(), d.Len())
	}
	for i := range d.Records {
		a, b := d.Records[i], got.Records[i]
		if a.Obs != b.Obs || a.ObsAS != b.ObsAS || a.Prefix != b.Prefix || a.Learned != b.Learned || !a.Path.Equal(b.Path) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadErrorsAndComments(t *testing.T) {
	cases := []string{
		"x 1 0",              // too few fields
		"x notanas 0 P2 1 2", // bad AS
		"x 1 zzz P2 1 2",     // bad time
		"x 1 0 P2 1 bad",     // bad path
		"x 2 0 P2 1 2",       // path doesn't start at obs AS
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
	ok := "# comment\n\nx 1 0 P2 1 2\n"
	d, err := Read(strings.NewReader(ok))
	if err != nil || d.Len() != 1 {
		t.Fatalf("Read with comments: %v, %d records", err, d.Len())
	}
}

// TestReadReportLenient: malformed lines are skipped and counted while
// every well-formed line still loads; a tight error budget converts the
// skips into a typed budget error.
func TestReadReportLenient(t *testing.T) {
	in := strings.Join([]string{
		"x 1 0 P2 1 2",       // good
		"x 1 0",              // too few fields
		"x notanas 0 P2 1 2", // bad AS
		"y 3 0 P9 3 4",       // good
		"x 1 zzz P2 1 2",     // bad time
		"x 1 0 P2 1 bad",     // bad path
		"x 2 0 P2 1 2",       // path doesn't start at obs AS
	}, "\n")
	ds, rep, err := ReadReport(strings.NewReader(in), ingest.Options{})
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if ds.Len() != 2 {
		t.Fatalf("records=%d, want the 2 good lines", ds.Len())
	}
	if rep.Records != 7 || rep.Skipped != 5 {
		t.Fatalf("report %d records / %d skipped, want 7/5", rep.Records, rep.Skipped)
	}
	if len(rep.Errors) != 5 {
		t.Fatalf("retained errors=%d, want 5", len(rep.Errors))
	}
	if rep.Errors[0].Record != 2 {
		t.Fatalf("first skip attributed to line %d, want 2", rep.Errors[0].Record)
	}

	_, rep, err = ReadReport(strings.NewReader(in), ingest.Options{MaxRecordErrors: 3})
	var be *ingest.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetExceededError over budget 3, got %v", err)
	}
	if be.Budget != 3 || be.Skipped != 4 {
		t.Fatalf("budget error: %+v", be)
	}
	if rep == nil || rep.Skipped != 4 {
		t.Fatal("report not returned alongside budget error")
	}

	// Strict options reproduce the legacy first-error abort.
	if _, _, err := ReadReport(strings.NewReader(in), ingest.Options{Strict: true}); err == nil {
		t.Fatal("strict read accepted malformed input")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := &Dataset{}
		for i := 0; i < 1+rng.Intn(20); i++ {
			n := 1 + rng.Intn(5)
			p := make(bgp.Path, n)
			for j := range p {
				p[j] = bgp.ASN(1 + rng.Intn(1000))
			}
			d.Records = append(d.Records, Record{
				Obs: ObsPointID("op" + bgp.ASN(rng.Intn(50)).String()), ObsAS: p[0],
				Prefix: SyntheticPrefix(p[n-1]), Path: p, Learned: rng.Int63n(1 << 30),
			})
		}
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Len() != d.Len() {
			return false
		}
		for i := range d.Records {
			if !got.Records[i].Path.Equal(d.Records[i].Path) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUniverse(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("a", "P9", 1, 9),
		rec("a", "P5", 1, 5),
		rec("b", "P9", 2, 9),
		rec("b", "Pmoas", 2, 7),
		rec("c", "Pmoas", 3, 8), // MOAS: two origins for Pmoas
	}}
	u := NewUniverse(d)
	if u.Len() != 3 {
		t.Fatalf("universe size %d, want 3", u.Len())
	}
	id5, ok := u.ID("P5")
	if !ok {
		t.Fatal("P5 missing")
	}
	if u.Name(id5) != "P5" {
		t.Errorf("Name(%d) = %q", id5, u.Name(id5))
	}
	if o := u.Origins(id5); len(o) != 1 || o[0] != 5 {
		t.Errorf("Origins(P5) = %v", o)
	}
	idm, _ := u.ID("Pmoas")
	if o := u.Origins(idm); len(o) != 2 || o[0] != 7 || o[1] != 8 {
		t.Errorf("Origins(Pmoas) = %v", o)
	}
	if _, ok := u.ID("nope"); ok {
		t.Error("unknown prefix should be absent")
	}
	// IDs stable across constructions.
	u2 := NewUniverse(d)
	id5b, _ := u2.ID("P5")
	if id5b != id5 {
		t.Error("IDs not stable")
	}
	defer func() {
		if recover() == nil {
			t.Error("Name out of range should panic")
		}
	}()
	u.Name(99)
}

func TestCloneIndependence(t *testing.T) {
	d := &Dataset{Records: []Record{rec("a", "P2", 1, 2)}}
	c := d.Clone()
	c.Records[0].Prefix = "changed"
	if d.Records[0].Prefix != "P2" {
		t.Fatal("Clone shares record storage")
	}
}

func TestPartitionAndMerge(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("a", "P4", 1, 2, 4),
		rec("b", "P5", 3, 5),
		rec("c", "P4", 7, 4),
	}}
	yes, no := d.Partition(func(r *Record) bool { return r.Prefix == "P4" })
	if yes.Len() != 2 || no.Len() != 1 {
		t.Fatalf("partition: %d/%d", yes.Len(), no.Len())
	}
	merged := (&Dataset{}).Merge(yes, no)
	if merged.Len() != d.Len() {
		t.Fatalf("merge: %d", merged.Len())
	}
}

func TestAssignConsistency(t *testing.T) {
	d := &Dataset{Records: []Record{
		rec("a", "P4", 1, 2, 4),
		rec("b", "P5", 3, 5),
	}}
	obs := d.AssignObsPoints(0.5, 42)
	train, valid := d.SplitByObsPoint(0.5, 42)
	for _, r := range train.Records {
		if !obs[r.Obs] {
			t.Error("train record not assigned to train")
		}
	}
	for _, r := range valid.Records {
		if obs[r.Obs] {
			t.Error("valid record assigned to train")
		}
	}
	orig := d.AssignOrigins(1.0, 1)
	for _, a := range d.Origins() {
		if !orig[a] {
			t.Error("trainFrac=1 must assign everything")
		}
	}
}
