// Package dataset represents collections of BGP path observations — the
// input of the paper's methodology. A dataset is a set of records, each
// recording that a particular observation point (a BGP feed from a router
// inside an observation AS, §3.1) held a route for a prefix with a given
// AS-path at collection time.
//
// The package provides the normalization steps of §3.1 (AS-path prepending
// removal, loop removal, stable-route filtering, deduplication), the
// training/validation splits of §4.2 (by observation point and by
// originating AS), the route-diversity statistics behind Figure 2 and
// Table 1, and a line-oriented text serialization shared by the tools in
// cmd/.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"asmodel/internal/bgp"
	"asmodel/internal/ingest"
)

// ObsPointID identifies one BGP feed (one peering session with a route
// collector). Multiple observation points may live in the same AS — 30%
// of observation ASes in the paper's data have several (§3.1).
type ObsPointID string

// Record is a single observation: at collection time, the observation
// point held a route for Prefix whose AS-path was Path.
//
// By convention Path includes the observation AS as its first element
// (that is what a collector receives: the monitored AS prepends itself
// when exporting to the collector) and the originating AS as its last.
type Record struct {
	Obs    ObsPointID
	ObsAS  bgp.ASN
	Prefix string
	Path   bgp.Path
	// Learned is the Unix time the route was learned, when known (MRT RIB
	// dumps carry it as ORIGINATED_TIME); zero when unknown.
	Learned int64
}

// Valid performs basic integrity checks on a record.
func (r *Record) Valid() error {
	if r.Obs == "" {
		return fmt.Errorf("dataset: record has empty observation point")
	}
	if r.Prefix == "" {
		return fmt.Errorf("dataset: record has empty prefix")
	}
	if len(r.Path) == 0 {
		return fmt.Errorf("dataset: record has empty path")
	}
	if first, _ := r.Path.First(); first != r.ObsAS {
		return fmt.Errorf("dataset: path %v does not start with observation AS %d", r.Path, r.ObsAS)
	}
	return nil
}

// Dataset is an ordered collection of records.
type Dataset struct {
	Records []Record
}

// Clone returns a deep-enough copy (records are value types; paths are
// shared because they are immutable by convention).
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Records: make([]Record, len(d.Records))}
	copy(out.Records, d.Records)
	return out
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Normalize applies the paper's §3.1 cleanup in place and returns the
// receiver: AS-path prepending is stripped, paths with AS loops are
// dropped, and exact duplicate records are removed. Record order is
// preserved for the survivors.
func (d *Dataset) Normalize() *Dataset {
	type key struct {
		obs    ObsPointID
		prefix string
		path   bgp.PathKey
	}
	seen := make(map[key]struct{}, len(d.Records))
	out := d.Records[:0]
	for _, r := range d.Records {
		r.Path = r.Path.StripPrepend()
		if len(r.Path) == 0 || r.Path.HasLoop() {
			continue
		}
		k := key{r.Obs, r.Prefix, r.Path.Key()}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	d.Records = out
	return d
}

// StableAt keeps only records whose route was learned at or before t and
// at least minAge seconds before it — the paper's "valid table entries at
// [time] ... stable in the sense that they have not changed for at least
// one hour" (§3.1). Records without a Learned time are kept.
func (d *Dataset) StableAt(t int64, minAge int64) *Dataset {
	out := d.Records[:0]
	for _, r := range d.Records {
		if r.Learned != 0 && r.Learned > t-minAge {
			continue
		}
		d.Records = append(out, r)
		out = d.Records
	}
	d.Records = out
	return d
}

// ObsPoints returns the distinct observation points, sorted.
func (d *Dataset) ObsPoints() []ObsPointID {
	set := make(map[ObsPointID]struct{})
	for _, r := range d.Records {
		set[r.Obs] = struct{}{}
	}
	out := make([]ObsPointID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ObsASes returns the distinct observation ASes, sorted.
func (d *Dataset) ObsASes() []bgp.ASN {
	set := make(map[bgp.ASN]struct{})
	for _, r := range d.Records {
		set[r.ObsAS] = struct{}{}
	}
	out := make([]bgp.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	return bgp.SortASNs(out)
}

// Origins returns the distinct originating ASes, sorted.
func (d *Dataset) Origins() []bgp.ASN {
	set := make(map[bgp.ASN]struct{})
	for _, r := range d.Records {
		if o, ok := r.Path.Origin(); ok {
			set[o] = struct{}{}
		}
	}
	out := make([]bgp.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	return bgp.SortASNs(out)
}

// Prefixes returns the distinct prefixes, sorted.
func (d *Dataset) Prefixes() []string {
	set := make(map[string]struct{})
	for _, r := range d.Records {
		set[r.Prefix] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ByPrefix groups record indices by prefix.
func (d *Dataset) ByPrefix() map[string][]int {
	out := make(map[string][]int)
	for i, r := range d.Records {
		out[r.Prefix] = append(out[r.Prefix], i)
	}
	return out
}

// AssignObsPoints deterministically assigns every observation point to
// the training side with probability trainFrac.
func (d *Dataset) AssignObsPoints(trainFrac float64, seed int64) map[ObsPointID]bool {
	rng := rand.New(rand.NewSource(seed))
	points := d.ObsPoints()
	inTrain := make(map[ObsPointID]bool, len(points))
	for _, p := range points {
		inTrain[p] = rng.Float64() < trainFrac
	}
	return inTrain
}

// SplitByObsPoint partitions the dataset by assigning every observation
// point to the training set with probability trainFrac (deterministic for
// a given seed). All records of an observation point land on the same
// side — the paper's primary evaluation split (§4.2).
func (d *Dataset) SplitByObsPoint(trainFrac float64, seed int64) (train, valid *Dataset) {
	inTrain := d.AssignObsPoints(trainFrac, seed)
	return d.Partition(func(r *Record) bool { return inTrain[r.Obs] })
}

// AssignOrigins deterministically assigns every originating AS to the
// training side with probability trainFrac.
func (d *Dataset) AssignOrigins(trainFrac float64, seed int64) map[bgp.ASN]bool {
	rng := rand.New(rand.NewSource(seed))
	origins := d.Origins()
	inTrain := make(map[bgp.ASN]bool, len(origins))
	for _, a := range origins {
		inTrain[a] = rng.Float64() < trainFrac
	}
	return inTrain
}

// SplitByOrigin partitions the dataset by originating AS: all prefixes
// originated by an AS land on the same side — the paper's alternative
// split for judging prediction of unseen prefixes (§4.2, §4.7).
func (d *Dataset) SplitByOrigin(trainFrac float64, seed int64) (train, valid *Dataset) {
	inTrain := d.AssignOrigins(trainFrac, seed)
	return d.Partition(func(r *Record) bool {
		o, _ := r.Path.Origin()
		return inTrain[o]
	})
}

// Partition splits the records by a predicate (true goes to the first
// result). Records are shared, not copied.
func (d *Dataset) Partition(keep func(*Record) bool) (yes, no *Dataset) {
	yes, no = &Dataset{}, &Dataset{}
	for i := range d.Records {
		if keep(&d.Records[i]) {
			yes.Records = append(yes.Records, d.Records[i])
		} else {
			no.Records = append(no.Records, d.Records[i])
		}
	}
	return yes, no
}

// Merge appends all records of the given datasets to d and returns d.
func (d *Dataset) Merge(others ...*Dataset) *Dataset {
	for _, o := range others {
		d.Records = append(d.Records, o.Records...)
	}
	return d
}

// ASPair identifies an (origin AS, observation AS) pair.
type ASPair struct {
	Origin, Obs bgp.ASN
}

// DistinctPathsPerPair counts, for every (origin AS, observation AS)
// pair, the number of distinct AS-paths observed between them across all
// prefixes of the origin — the quantity histogrammed in Figure 2.
func (d *Dataset) DistinctPathsPerPair() map[ASPair]int {
	paths := make(map[ASPair]map[bgp.PathKey]struct{})
	for _, r := range d.Records {
		o, ok := r.Path.Origin()
		if !ok {
			continue
		}
		pair := ASPair{Origin: o, Obs: r.ObsAS}
		set := paths[pair]
		if set == nil {
			set = make(map[bgp.PathKey]struct{})
			paths[pair] = set
		}
		set[r.Path.Key()] = struct{}{}
	}
	out := make(map[ASPair]int, len(paths))
	for pair, set := range paths {
		out[pair] = len(set)
	}
	return out
}

// MaxReceivedDiversity computes, for every AS, the maximum over prefixes
// of the number of distinct unique AS-paths the AS is seen to receive
// toward that prefix — Table 1's distribution, "a lower bound on how many
// routers are needed inside an AS to propagate all these paths" (§3.2).
//
// An AS a "receives" a path whenever an observed AS-path contains a at a
// non-origin position: the received path is the suffix strictly after a.
func (d *Dataset) MaxReceivedDiversity() map[bgp.ASN]int {
	type asPrefix struct {
		as     bgp.ASN
		prefix string
	}
	received := make(map[asPrefix]map[bgp.PathKey]struct{})
	for _, r := range d.Records {
		for i := 0; i+1 < len(r.Path); i++ {
			k := asPrefix{r.Path[i], r.Prefix}
			set := received[k]
			if set == nil {
				set = make(map[bgp.PathKey]struct{})
				received[k] = set
			}
			set[r.Path[i+1:].Key()] = struct{}{}
		}
	}
	out := make(map[bgp.ASN]int)
	for k, set := range received {
		if len(set) > out[k.as] {
			out[k.as] = len(set)
		}
	}
	return out
}

// PrefixesPerPath counts how many distinct prefixes are propagated along
// each distinct AS-path — the §3.2 histogram that is "linear on a log-log
// plot".
func (d *Dataset) PrefixesPerPath() map[bgp.PathKey]int {
	perPath := make(map[bgp.PathKey]map[string]struct{})
	for _, r := range d.Records {
		k := r.Path.Key()
		set := perPath[k]
		if set == nil {
			set = make(map[string]struct{})
			perPath[k] = set
		}
		set[r.Prefix] = struct{}{}
	}
	out := make(map[bgp.PathKey]int, len(perPath))
	for k, set := range perPath {
		out[k] = len(set)
	}
	return out
}

// ObservedPaths returns, for the given prefix, the distinct full observed
// AS-paths grouped by observation AS, each group sorted lexically for
// determinism. This is the per-prefix view the refinement heuristic
// consumes.
func (d *Dataset) ObservedPaths(prefix string) map[bgp.ASN][]bgp.Path {
	set := make(map[bgp.ASN]map[bgp.PathKey]bgp.Path)
	for _, r := range d.Records {
		if r.Prefix != prefix {
			continue
		}
		m := set[r.ObsAS]
		if m == nil {
			m = make(map[bgp.PathKey]bgp.Path)
			set[r.ObsAS] = m
		}
		m[r.Path.Key()] = r.Path
	}
	out := make(map[bgp.ASN][]bgp.Path, len(set))
	for as, m := range set {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		paths := make([]bgp.Path, len(keys))
		for i, k := range keys {
			paths[i] = m[bgp.PathKey(k)]
		}
		out[as] = paths
	}
	return out
}

// --- Serialization ------------------------------------------------------

// Write serializes the dataset in the line format
//
//	obsID obsAS learned prefix as1 as2 ... asN
//
// one record per line, '#' comments allowed on read.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range d.Records {
		r := &d.Records[i]
		if _, err := fmt.Fprintf(bw, "%s %d %d %s %s\n", r.Obs, r.ObsAS, r.Learned, r.Prefix, r.Path); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write. Blank lines and lines starting
// with '#' are ignored. It is strict: the first malformed line aborts the
// load. Use ReadReport for lenient skip-and-count loading.
func Read(r io.Reader) (*Dataset, error) {
	d, _, err := ReadReport(r, ingest.Options{Strict: true})
	return d, err
}

// ReadReport parses the format produced by Write under the given ingest
// options. In lenient mode (the default) malformed lines are skipped and
// counted in the returned report rather than discarding the whole
// dataset, up to the report's error budget.
func ReadReport(r io.Reader, opts ingest.Options) (*Dataset, *ingest.Report, error) {
	d := &Dataset{}
	rep := ingest.NewReport("dataset", opts)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	skip := func(err error) error {
		if opts.Strict {
			return fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		return rep.Skip(lineNo, err)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Record()
		fields := strings.Fields(line)
		if len(fields) < 5 {
			if err := skip(fmt.Errorf("want at least 5 fields, got %d", len(fields))); err != nil {
				return nil, rep, err
			}
			continue
		}
		obsAS, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			if err := skip(fmt.Errorf("bad observation AS: %w", err)); err != nil {
				return nil, rep, err
			}
			continue
		}
		learned, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			if err := skip(fmt.Errorf("bad learned time: %w", err)); err != nil {
				return nil, rep, err
			}
			continue
		}
		path, err := bgp.ParsePath(strings.Join(fields[4:], " "))
		if err != nil {
			if err := skip(err); err != nil {
				return nil, rep, err
			}
			continue
		}
		rec := Record{
			Obs:     ObsPointID(fields[0]),
			ObsAS:   bgp.ASN(obsAS),
			Prefix:  fields[3],
			Path:    path,
			Learned: learned,
		}
		if err := rec.Valid(); err != nil {
			if err := skip(err); err != nil {
				return nil, rep, err
			}
			continue
		}
		d.Records = append(d.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, rep, err
	}
	return d, rep, nil
}
