package dataset

import (
	"fmt"
	"sort"

	"asmodel/internal/bgp"
)

// Universe assigns dense bgp.PrefixID values to the prefixes of a dataset
// and records each prefix's originating AS(es), providing the bridge
// between datasets (string prefixes) and simulations (dense prefix IDs).
//
// The paper originates one prefix per AS (§4.1); real data may contain
// multi-origin (MOAS) prefixes, which Universe supports by keeping origin
// sets.
type Universe struct {
	names   []string
	ids     map[string]bgp.PrefixID
	origins [][]bgp.ASN // sorted, per prefix ID
}

// NewUniverse builds a universe from one or more datasets. Prefixes are
// numbered in sorted order so that IDs are stable across runs.
func NewUniverse(dss ...*Dataset) *Universe {
	originSets := make(map[string]map[bgp.ASN]struct{})
	for _, d := range dss {
		for _, r := range d.Records {
			set := originSets[r.Prefix]
			if set == nil {
				set = make(map[bgp.ASN]struct{})
				originSets[r.Prefix] = set
			}
			if o, ok := r.Path.Origin(); ok {
				set[o] = struct{}{}
			}
		}
	}
	names := make([]string, 0, len(originSets))
	for p := range originSets {
		names = append(names, p)
	}
	sort.Strings(names)
	u := &Universe{
		names:   names,
		ids:     make(map[string]bgp.PrefixID, len(names)),
		origins: make([][]bgp.ASN, len(names)),
	}
	for i, p := range names {
		u.ids[p] = bgp.PrefixID(i)
		set := originSets[p]
		asns := make([]bgp.ASN, 0, len(set))
		for a := range set {
			asns = append(asns, a)
		}
		u.origins[i] = bgp.SortASNs(asns)
	}
	return u
}

// Len returns the number of prefixes.
func (u *Universe) Len() int { return len(u.names) }

// ID returns the dense ID for a prefix name.
func (u *Universe) ID(prefix string) (bgp.PrefixID, bool) {
	id, ok := u.ids[prefix]
	return id, ok
}

// Name returns the prefix name for an ID.
func (u *Universe) Name(id bgp.PrefixID) string {
	if int(id) < 0 || int(id) >= len(u.names) {
		panic(fmt.Sprintf("dataset: prefix ID %d out of range", id))
	}
	return u.names[id]
}

// Origins returns the sorted originating ASes of a prefix.
func (u *Universe) Origins(id bgp.PrefixID) []bgp.ASN { return u.origins[id] }

// SyntheticPrefix names the prefix originated by an AS in synthetic
// universes where each AS originates exactly one prefix (§4.1).
func SyntheticPrefix(asn bgp.ASN) string { return "P" + asn.String() }

// NewUniverseFrom creates a universe directly from prefix names and their
// origin sets (used when deserializing saved models). Origins are copied
// and sorted.
func NewUniverseFrom(entries map[string][]bgp.ASN) *Universe {
	names := make([]string, 0, len(entries))
	for p := range entries {
		names = append(names, p)
	}
	sort.Strings(names)
	u := &Universe{
		names:   names,
		ids:     make(map[string]bgp.PrefixID, len(names)),
		origins: make([][]bgp.ASN, len(names)),
	}
	for i, p := range names {
		u.ids[p] = bgp.PrefixID(i)
		o := make([]bgp.ASN, len(entries[p]))
		copy(o, entries[p])
		u.origins[i] = bgp.SortASNs(o)
	}
	return u
}
