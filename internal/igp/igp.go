// Package igp provides a small interior-gateway-protocol substrate: a
// weighted undirected graph of routers with Dijkstra shortest-path-first
// computation. The ground-truth router-level simulation uses it to obtain
// the IGP cost from each router to each BGP next hop, which drives the
// hot-potato step of the BGP decision process (paper §2).
package igp

import (
	"container/heap"
	"fmt"
	"math"
)

// Infinity is the distance reported for unreachable routers.
const Infinity = math.MaxUint32

// Graph is a weighted undirected router graph. Router handles are dense
// indices assigned by AddNode.
type Graph struct {
	adj [][]halfEdge
}

type halfEdge struct {
	to   int
	cost uint32
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode adds a router and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// NumNodes returns the router count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// AddLink adds an undirected link with the given positive cost.
func (g *Graph) AddLink(a, b int, cost uint32) error {
	if a < 0 || a >= len(g.adj) || b < 0 || b >= len(g.adj) {
		return fmt.Errorf("igp: link endpoint out of range (%d, %d)", a, b)
	}
	if a == b {
		return fmt.Errorf("igp: self link at %d", a)
	}
	if cost == 0 || cost >= Infinity {
		return fmt.Errorf("igp: invalid link cost %d", cost)
	}
	g.adj[a] = append(g.adj[a], halfEdge{b, cost})
	g.adj[b] = append(g.adj[b], halfEdge{a, cost})
	return nil
}

// SPF computes shortest-path distances from src to every router
// (Dijkstra). Unreachable routers get Infinity.
func (g *Graph) SPF(src int) []uint32 {
	n := len(g.adj)
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	pq := &spfQueue{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(spfItem)
		if it.dist > uint64(dist[it.node]) {
			continue // stale entry
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + uint64(e.cost)
			if nd < uint64(dist[e.to]) {
				dist[e.to] = uint32(nd)
				heap.Push(pq, spfItem{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

// AllPairs computes the full distance matrix; result[i][j] is the cost
// from i to j.
func (g *Graph) AllPairs() [][]uint32 {
	out := make([][]uint32, len(g.adj))
	for i := range out {
		out[i] = g.SPF(i)
	}
	return out
}

type spfItem struct {
	node int
	dist uint64
}

type spfQueue []spfItem

func (q spfQueue) Len() int            { return len(q) }
func (q spfQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q spfQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *spfQueue) Push(x interface{}) { *q = append(*q, x.(spfItem)) }
func (q *spfQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
