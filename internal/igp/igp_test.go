package igp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	g := NewGraph()
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	if g.NumNodes() != 3 {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
	if err := g.AddLink(a, b, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(b, c, 3); err != nil {
		t.Fatal(err)
	}
	dist := g.SPF(a)
	if dist[a] != 0 || dist[b] != 2 || dist[c] != 5 {
		t.Fatalf("dist=%v", dist)
	}
}

func TestShortcut(t *testing.T) {
	g := NewGraph()
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddLink(a, b, 10)
	g.AddLink(a, c, 1)
	g.AddLink(c, b, 2)
	if d := g.SPF(a); d[b] != 3 {
		t.Fatalf("dist to b = %d, want 3 via c", d[b])
	}
}

func TestUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode()
	b := g.AddNode()
	d := g.SPF(a)
	if d[b] != Infinity {
		t.Fatalf("disconnected dist = %d", d[b])
	}
	// Out-of-range source yields all-Infinity.
	d = g.SPF(99)
	if d[a] != Infinity {
		t.Fatal("bad source should yield Infinity distances")
	}
}

func TestLinkErrors(t *testing.T) {
	g := NewGraph()
	a := g.AddNode()
	b := g.AddNode()
	if err := g.AddLink(a, a, 1); err == nil {
		t.Error("self link should fail")
	}
	if err := g.AddLink(a, 5, 1); err == nil {
		t.Error("out-of-range should fail")
	}
	if err := g.AddLink(a, b, 0); err == nil {
		t.Error("zero cost should fail")
	}
	if err := g.AddLink(a, b, Infinity); err == nil {
		t.Error("infinite cost should fail")
	}
}

func TestAllPairsSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGraph()
	const n = 30
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 1; i < n; i++ {
		g.AddLink(i, rng.Intn(i), uint32(1+rng.Intn(10)))
	}
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddLink(a, b, uint32(1+rng.Intn(10)))
		}
	}
	d := g.AllPairs()
	for i := 0; i < n; i++ {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d]=%d", i, i, d[i][i])
		}
		for j := 0; j < n; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric: d[%d][%d]=%d d[%d][%d]=%d", i, j, d[i][j], j, i, d[j][i])
			}
		}
	}
}

// TestTriangleInequality: SPF distances must satisfy d(a,c) <= d(a,b)+d(b,c).
func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			g.AddNode()
		}
		for i := 1; i < n; i++ {
			g.AddLink(i, rng.Intn(i), uint32(1+rng.Intn(20)))
		}
		d := g.AllPairs()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if uint64(d[a][c]) > uint64(d[a][b])+uint64(d[b][c]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSPFMatchesBFSOnUnitCosts: with all costs 1, SPF equals BFS hops.
func TestSPFMatchesBFSOnUnitCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGraph()
	const n = 40
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	addLink := func(a, b int) {
		g.AddLink(a, b, 1)
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for i := 1; i < n; i++ {
		addLink(i, rng.Intn(i))
	}
	for e := 0; e < 20; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addLink(a, b)
		}
	}
	dist := g.SPF(0)
	bfs := make([]int, n)
	for i := range bfs {
		bfs[i] = -1
	}
	bfs[0] = 0
	q := []int{0}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range adj[u] {
			if bfs[v] == -1 {
				bfs[v] = bfs[u] + 1
				q = append(q, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		if uint32(bfs[i]) != dist[i] {
			t.Fatalf("node %d: bfs=%d spf=%d", i, bfs[i], dist[i])
		}
	}
}

func BenchmarkSPF100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGraph()
	const n = 100
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 1; i < n; i++ {
		g.AddLink(i, rng.Intn(i), uint32(1+rng.Intn(10)))
	}
	for e := 0; e < 200; e++ {
		a, bn := rng.Intn(n), rng.Intn(n)
		if a != bn {
			g.AddLink(a, bn, uint32(1+rng.Intn(10)))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SPF(i % n)
	}
}
