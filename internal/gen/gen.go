// Package gen generates synthetic router-level Internets with ground-truth
// routing — the substitution for the paper's >1,300 real BGP feeds (§3.1).
//
// The generated topology reproduces the structural features the paper's
// methodology must cope with:
//
//   - a tier-1 clique of fully meshed peers, a level of transit providers
//     beneath them, regional ISPs, and single-/multi-homed stub ASes;
//   - multiple routers per transit AS with an IGP topology and a full
//     iBGP mesh, so different routers of one AS pick different best routes
//     (hot-potato route diversity, §3.2);
//   - multiple parallel inter-AS links between router pairs of the same
//     AS pair (the second diversity source the paper names);
//   - valley-free relationship policies (local-pref ranking plus export
//     filters) with a configurable fraction of per-prefix "weird" policies
//     (local-pref inversions, selective advertisements, route leaks) that
//     do not fit the customer/peer schema — the reason the paper's model
//     stays agnostic about relationships;
//   - vantage points biased toward the top of the hierarchy, as in the
//     real collector infrastructure.
//
// Each AS originates exactly one prefix (§4.1). The generator runs the
// ground-truth simulation per prefix and records what every vantage point
// sees, yielding a dataset in the same shape as parsed MRT dumps. RunAll
// does this sequentially; RunAllParallel fans the prefixes across a pool
// of Internet clones and merges deterministically, producing the same
// dataset byte for byte at any worker count (see DESIGN.md §7).
package gen

import (
	"fmt"
	"math/rand"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/relation"
	"asmodel/internal/routersim"
	"asmodel/internal/topology"
)

// Config parameterizes the synthetic Internet.
type Config struct {
	Seed int64

	// AS population per tier.
	NumTier1 int // fully meshed top clique
	NumTier2 int // national transit providers
	NumTier3 int // regional ISPs
	NumStub  int // edge networks

	// Routers per AS (upper bounds; actual count is randomized >= 1).
	RoutersTier1 int
	RoutersTier2 int
	RoutersTier3 int

	// MultiHomeProb is the probability that a stub has more than one
	// provider.
	MultiHomeProb float64
	// Tier2PeerProb / Tier3PeerProb are the probabilities that a given
	// same-tier AS pair establishes a peering.
	Tier2PeerProb float64
	Tier3PeerProb float64
	// ParallelLinkProb is the probability that an AS pair with enough
	// routers gets a second inter-AS link (and, squared, a third).
	ParallelLinkProb float64

	// WeirdPolicyFrac is the fraction of prefixes that receive one policy
	// tweak violating the customer/peer schema.
	WeirdPolicyFrac float64

	// RouteReflectorProb is the probability that a multi-router AS uses a
	// route-reflector cluster (RFC 4456) instead of a full iBGP mesh.
	// Reflection hides intra-AS path diversity from clients, a realism
	// knob for the ground truth.
	RouteReflectorProb float64

	// PrefixesPerOrigin is the maximum number of prefixes an AS
	// originates (each AS gets 1..PrefixesPerOrigin, randomized). The
	// paper's model setup uses one prefix per AS (§4.1); its §3.2 data
	// analysis, however, relies on origins announcing many prefixes —
	// raise this to reproduce the prefixes-per-path distribution.
	PrefixesPerOrigin int

	// Vantage-point selection: how many ASes host feeds and how many
	// routers per AS feed at most. Tier-1/2 ASes are chosen first,
	// mirroring the collector bias the paper reports (§3.1).
	NumVantageASes  int
	MaxVantagePerAS int
}

// DefaultConfig returns a laptop-scale Internet (a few hundred ASes) with
// every diversity mechanism enabled.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		NumTier1:           8,
		NumTier2:           40,
		NumTier3:           120,
		NumStub:            250,
		RoutersTier1:       4,
		RoutersTier2:       3,
		RoutersTier3:       2,
		RouteReflectorProb: 0.3,
		MultiHomeProb:      0.75,
		Tier2PeerProb:      0.25,
		Tier3PeerProb:      0.06,
		ParallelLinkProb:   0.5,
		WeirdPolicyFrac:    0.12,
		NumVantageASes:     40,
		MaxVantagePerAS:    3,
	}
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.NumTier1 < 2 {
		return fmt.Errorf("gen: need at least 2 tier-1 ASes, have %d", c.NumTier1)
	}
	if c.NumTier2 < 1 || c.NumTier3 < 0 || c.NumStub < 0 {
		return fmt.Errorf("gen: invalid AS population")
	}
	if c.RoutersTier1 < 1 || c.RoutersTier2 < 1 || c.RoutersTier3 < 1 {
		return fmt.Errorf("gen: router bounds must be >= 1")
	}
	for _, p := range []float64{c.MultiHomeProb, c.Tier2PeerProb, c.Tier3PeerProb, c.ParallelLinkProb, c.WeirdPolicyFrac, c.RouteReflectorProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("gen: probability out of range: %v", p)
		}
	}
	if c.PrefixesPerOrigin < 0 {
		return fmt.Errorf("gen: PrefixesPerOrigin must be >= 0")
	}
	if c.NumVantageASes < 1 {
		return fmt.Errorf("gen: need at least one vantage AS")
	}
	if c.MaxVantagePerAS < 1 {
		return fmt.Errorf("gen: need at least one vantage point per AS")
	}
	return nil
}

// Internet is a generated ground-truth Internet.
type Internet struct {
	Cfg Config
	RS  *routersim.Internet

	Tier1 []bgp.ASN
	Tier2 []bgp.ASN
	Tier3 []bgp.ASN
	Stubs []bgp.ASN

	// Rels is the ground-truth relationship of each AS edge (from the
	// perspective of Edge.A).
	Rels map[topology.Edge]relation.Rel

	// Weird describes the per-prefix policy tweaks that were applied,
	// keyed by prefix ID.
	Weird map[bgp.PrefixID]string
	// QuirksReverted counts weird policies that had to be rolled back
	// because they made BGP diverge.
	QuirksReverted int

	vps          []routersim.VantagePoint
	prefixOrigin []bgp.ASN
	prefixName   []string
	prefixByName map[string]bgp.PrefixID
	policies     map[sessKey]*sessPolicy
	quirkUndo    map[bgp.PrefixID][]quirkUndoRec
	rng          *rand.Rand // nil on clones; only Generate draws from it
}

type sessKey struct {
	local, remote bgp.RouterID
}

// sessPolicy is the per-session policy state backing the sim hooks.
type sessPolicy struct {
	baseLP      uint32
	relToRemote relation.Rel
	lpOverride  map[bgp.PrefixID]uint32
	expDeny     map[bgp.PrefixID]bool
	leak        map[bgp.PrefixID]bool
}

// clone returns an independent copy of the policy state (the per-prefix
// override maps are what weird-policy reverts mutate mid-RunAll).
func (sp *sessPolicy) clone() *sessPolicy {
	c := &sessPolicy{
		baseLP:      sp.baseLP,
		relToRemote: sp.relToRemote,
		lpOverride:  make(map[bgp.PrefixID]uint32, len(sp.lpOverride)),
		expDeny:     make(map[bgp.PrefixID]bool, len(sp.expDeny)),
		leak:        make(map[bgp.PrefixID]bool, len(sp.leak)),
	}
	for k, v := range sp.lpOverride {
		c.lpOverride[k] = v
	}
	for k, v := range sp.expDeny {
		c.expDeny[k] = v
	}
	for k, v := range sp.leak {
		c.leak[k] = v
	}
	return c
}

// RelOf returns the ground-truth relationship of a toward b.
func (in *Internet) RelOf(a, b bgp.ASN) relation.Rel {
	e := topology.MakeEdge(a, b)
	r, ok := in.Rels[e]
	if !ok {
		return relation.Unknown
	}
	if a == e.A {
		return r
	}
	switch r {
	case relation.Customer:
		return relation.Provider
	case relation.Provider:
		return relation.Customer
	default:
		return r
	}
}

// ASNs returns all AS numbers, sorted.
func (in *Internet) ASNs() []bgp.ASN { return in.RS.ASNs() }

// NumPrefixes returns the number of prefixes (one per AS, §4.1).
func (in *Internet) NumPrefixes() int { return len(in.prefixOrigin) }

// PrefixOrigin returns the AS originating the prefix.
func (in *Internet) PrefixOrigin(id bgp.PrefixID) bgp.ASN { return in.prefixOrigin[id] }

// PrefixName returns the dataset name of the prefix.
func (in *Internet) PrefixName(id bgp.PrefixID) string { return in.prefixName[id] }

// PrefixIDByName resolves a prefix name to the generator's own prefix ID.
// Note that other components (dataset.Universe) assign their own, different
// dense IDs; names are the only shared key.
func (in *Internet) PrefixIDByName(name string) (bgp.PrefixID, bool) {
	if in.prefixByName == nil {
		in.prefixByName = make(map[string]bgp.PrefixID, len(in.prefixName))
		for i, n := range in.prefixName {
			in.prefixByName[n] = bgp.PrefixID(i)
		}
	}
	id, ok := in.prefixByName[name]
	return id, ok
}

// VantagePoints returns the generated feeds, sorted by ID.
func (in *Internet) VantagePoints() []routersim.VantagePoint { return in.vps }

// Generate builds an Internet from the configuration.
func Generate(cfg Config) (*Internet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Internet{
		Cfg:       cfg,
		RS:        routersim.New(),
		Rels:      make(map[topology.Edge]relation.Rel),
		Weird:     make(map[bgp.PrefixID]string),
		policies:  make(map[sessKey]*sessPolicy),
		quirkUndo: make(map[bgp.PrefixID][]quirkUndoRec),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	if err := in.buildTopology(); err != nil {
		return nil, err
	}
	in.RS.Finalize()
	in.installPolicies()
	in.assignPrefixes()
	in.installWeirdPolicies()
	in.pickVantagePoints()
	return in, nil
}

func (in *Internet) buildTopology() error {
	cfg, rng := &in.Cfg, in.rng

	addAS := func(asn bgp.ASN, maxRouters int) error {
		n := 1
		if maxRouters > 1 {
			n = 1 + rng.Intn(maxRouters)
		}
		useRR := n >= 2 && rng.Float64() < cfg.RouteReflectorProb
		var a *routersim.AS
		var err error
		if useRR {
			a, err = in.RS.AddASRR(asn, n)
		} else {
			a, err = in.RS.AddAS(asn, n)
		}
		if err != nil {
			return err
		}
		// IGP: ring plus random chords, random costs.
		if n > 1 {
			for i := 0; i < n; i++ {
				j := (i + 1) % n
				if i < j || n > 2 {
					if err := in.RS.SetIGPLink(asn, i, j, uint32(1+rng.Intn(10))); err != nil {
						return err
					}
				}
			}
			for k := 0; k < n/2; k++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i != j {
					in.RS.SetIGPLink(asn, i, j, uint32(1+rng.Intn(10))) // duplicate links are fine for SPF
				}
			}
		}
		_ = a
		return nil
	}

	for i := 0; i < cfg.NumTier1; i++ {
		asn := bgp.ASN(10 + i)
		in.Tier1 = append(in.Tier1, asn)
		if err := addAS(asn, cfg.RoutersTier1); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.NumTier2; i++ {
		asn := bgp.ASN(100 + i)
		in.Tier2 = append(in.Tier2, asn)
		if err := addAS(asn, cfg.RoutersTier2); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.NumTier3; i++ {
		asn := bgp.ASN(1000 + i)
		in.Tier3 = append(in.Tier3, asn)
		if err := addAS(asn, cfg.RoutersTier3); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.NumStub; i++ {
		asn := bgp.ASN(10000 + i)
		in.Stubs = append(in.Stubs, asn)
		if err := addAS(asn, 1); err != nil {
			return err
		}
	}

	// Tier-1 full mesh (peering).
	for i := 0; i < len(in.Tier1); i++ {
		for j := i + 1; j < len(in.Tier1); j++ {
			if err := in.linkASes(in.Tier1[i], in.Tier1[j], relation.Peer); err != nil {
				return err
			}
		}
	}
	// Tier-2: 1-3 tier-1 providers each, plus same-tier peerings.
	for _, t2 := range in.Tier2 {
		for _, p := range pickDistinct(rng, in.Tier1, 1+rng.Intn(3)) {
			if err := in.linkASes(t2, p, relation.Customer); err != nil {
				return err
			}
		}
	}
	for i := 0; i < len(in.Tier2); i++ {
		for j := i + 1; j < len(in.Tier2); j++ {
			if rng.Float64() < cfg.Tier2PeerProb {
				if err := in.linkASes(in.Tier2[i], in.Tier2[j], relation.Peer); err != nil {
					return err
				}
			}
		}
	}
	// Tier-3: providers from tier-2 (sometimes tier-1), rare peerings.
	for _, t3 := range in.Tier3 {
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			var provider bgp.ASN
			if rng.Float64() < 0.2 {
				provider = in.Tier1[rng.Intn(len(in.Tier1))]
			} else {
				provider = in.Tier2[rng.Intn(len(in.Tier2))]
			}
			if in.RelOf(t3, provider) == relation.Unknown {
				if err := in.linkASes(t3, provider, relation.Customer); err != nil {
					return err
				}
			}
		}
	}
	for i := 0; i < len(in.Tier3); i++ {
		for j := i + 1; j < len(in.Tier3); j++ {
			if rng.Float64() < cfg.Tier3PeerProb {
				if err := in.linkASes(in.Tier3[i], in.Tier3[j], relation.Peer); err != nil {
					return err
				}
			}
		}
	}
	// Stubs: single- or multi-homed to tier-2/3 providers.
	providersPool := append(append([]bgp.ASN{}, in.Tier2...), in.Tier3...)
	for _, s := range in.Stubs {
		n := 1
		if rng.Float64() < cfg.MultiHomeProb {
			n = 2 + rng.Intn(3)
		}
		for _, p := range pickDistinct(rng, providersPool, n) {
			if err := in.linkASes(s, p, relation.Customer); err != nil {
				return err
			}
		}
	}
	return nil
}

// linkASes records the relationship (relAtoB is a's relationship toward b)
// and creates 1..3 eBGP links between distinct router pairs.
func (in *Internet) linkASes(a, b bgp.ASN, relAToB relation.Rel) error {
	e := topology.MakeEdge(a, b)
	if _, dup := in.Rels[e]; dup {
		return nil // already linked
	}
	rel := relAToB
	if a != e.A {
		switch relAToB {
		case relation.Customer:
			rel = relation.Provider
		case relation.Provider:
			rel = relation.Customer
		}
	}
	in.Rels[e] = rel

	asA, asB := in.RS.AS(a), in.RS.AS(b)
	links := 1
	if in.rng.Float64() < in.Cfg.ParallelLinkProb {
		links = 2
		if in.rng.Float64() < in.Cfg.ParallelLinkProb {
			links = 3
		}
	}
	maxLinks := asA.NumRouters() * asB.NumRouters()
	if links > maxLinks {
		links = maxLinks
	}
	used := make(map[[2]int]bool)
	for l := 0; l < links; l++ {
		for try := 0; try < 20; try++ {
			ia, ib := in.rng.Intn(asA.NumRouters()), in.rng.Intn(asB.NumRouters())
			if used[[2]int{ia, ib}] {
				continue
			}
			used[[2]int{ia, ib}] = true
			if _, _, err := in.RS.ConnectAS(a, ia, b, ib); err != nil {
				return err
			}
			break
		}
	}
	return nil
}

// pickDistinct samples up to n distinct elements.
func pickDistinct(rng *rand.Rand, pool []bgp.ASN, n int) []bgp.ASN {
	if n >= len(pool) {
		out := make([]bgp.ASN, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]bgp.ASN, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// installPolicies builds the relationship-based per-session policy state
// for every eBGP session (with per-prefix override maps for weird
// policies) and binds the sim hooks to it.
func (in *Internet) installPolicies() {
	for _, r := range in.RS.Net.Routers() {
		for _, p := range r.Peers() {
			if !p.EBGP {
				continue
			}
			relToRemote := in.RelOf(p.Local.AS, p.Remote.AS)
			in.policies[sessKey{p.Local.ID, p.Remote.ID}] = &sessPolicy{
				baseLP:      relation.LocalPrefFor(relToRemote),
				relToRemote: relToRemote,
				lpOverride:  make(map[bgp.PrefixID]uint32),
				expDeny:     make(map[bgp.PrefixID]bool),
				leak:        make(map[bgp.PrefixID]bool),
			}
		}
	}
	in.bindPolicyHooks()
}

// bindPolicyHooks (re-)installs the import/export hooks of every eBGP
// session so they close over THIS Internet's sessPolicy objects. Clone
// depends on the re-binding: sim.Network.Clone shares hook references, so
// without it a clone's routers would keep consulting — and the quirk
// machinery mutating — the parent's per-prefix override maps.
func (in *Internet) bindPolicyHooks() {
	for _, r := range in.RS.Net.Routers() {
		for _, p := range r.Peers() {
			if !p.EBGP {
				continue
			}
			sp := in.policies[sessKey{p.Local.ID, p.Remote.ID}]
			if sp == nil {
				continue
			}
			p.ImportHook = func(rt *bgp.Route) bool {
				if lp, ok := sp.lpOverride[rt.Prefix]; ok {
					rt.LocalPref = lp
				} else {
					rt.LocalPref = sp.baseLP
				}
				return true
			}
			p.ExportHook = func(rt *bgp.Route) bool {
				if sp.expDeny[rt.Prefix] {
					return false
				}
				if sp.leak[rt.Prefix] {
					return true
				}
				return relation.ExportAllowed(rt, sp.relToRemote)
			}
		}
	}
}

func (in *Internet) assignPrefixes() {
	maxPer := in.Cfg.PrefixesPerOrigin
	if maxPer < 1 {
		maxPer = 1
	}
	for _, asn := range in.RS.ASNs() {
		k := 1
		if maxPer > 1 {
			k = 1 + in.rng.Intn(maxPer)
		}
		for j := 0; j < k; j++ {
			name := dataset.SyntheticPrefix(asn)
			if j > 0 {
				name = fmt.Sprintf("%s-%d", dataset.SyntheticPrefix(asn), j)
			}
			in.prefixOrigin = append(in.prefixOrigin, asn)
			in.prefixName = append(in.prefixName, name)
		}
	}
}
