package gen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/obs"
	"asmodel/internal/relation"
	"asmodel/internal/routersim"
	"asmodel/internal/sim"
)

// CollectionTime is the synthetic "RIB dump" timestamp stamped on
// generated records (the paper's snapshot is Sun Nov 13 2005 07:30 UTC).
const CollectionTime int64 = 1131867000

// installWeirdPolicies applies one schema-violating policy tweak to
// WeirdPolicyFrac of the prefixes. Each tweak is registered with an undo
// closure so that RunAll can revert tweaks that make BGP diverge.
func (in *Internet) installWeirdPolicies() {
	n := int(in.Cfg.WeirdPolicyFrac * float64(len(in.prefixOrigin)))
	if n == 0 {
		return
	}
	// Candidate transit ASes with providers and customers.
	transits := append(append([]bgp.ASN{}, in.Tier2...), in.Tier3...)
	perm := in.rng.Perm(len(in.prefixOrigin))
	applied := 0
	for _, pi := range perm {
		if applied >= n {
			break
		}
		prefix := bgp.PrefixID(pi)
		asn := transits[in.rng.Intn(len(transits))]
		if asn == in.prefixOrigin[pi] {
			continue
		}
		switch in.rng.Intn(3) {
		case 0:
			if in.quirkPreferProvider(prefix, asn) {
				in.Weird[prefix] = fmt.Sprintf("AS%d prefers provider routes for %s", asn, in.PrefixName(prefix))
				applied++
			}
		case 1:
			if in.quirkSelectiveExport(prefix) {
				in.Weird[prefix] = fmt.Sprintf("origin AS%d withholds %s from one provider", in.prefixOrigin[pi], in.PrefixName(prefix))
				applied++
			}
		default:
			if in.quirkLeak(prefix, asn) {
				in.Weird[prefix] = fmt.Sprintf("AS%d leaks %s upward", asn, in.PrefixName(prefix))
				applied++
			}
		}
	}
}

// sessRef pairs a session policy with its stable key. Quirk tweaks hold
// the key, not the policy pointer, so the undo records below stay valid
// across Internet.Clone (each clone resolves the key in its own table).
type sessRef struct {
	key sessKey
	sp  *sessPolicy
}

// sessionsOf returns the eBGP session policies of an AS toward neighbors
// with the given relationship, deterministically ordered.
func (in *Internet) sessionsOf(asn bgp.ASN, rel relation.Rel) []sessRef {
	a := in.RS.AS(asn)
	if a == nil {
		return nil
	}
	var out []sessRef
	for _, r := range a.Routers {
		for _, p := range r.Peers() {
			if !p.EBGP {
				continue
			}
			k := sessKey{p.Local.ID, p.Remote.ID}
			if sp := in.policies[k]; sp != nil && sp.relToRemote == rel {
				out = append(out, sessRef{k, sp})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.local != out[j].key.local {
			return out[i].key.local < out[j].key.local
		}
		return out[i].key.remote < out[j].key.remote
	})
	return out
}

// quirkUndoRec is one recorded weird-policy tweak in undoable form: which
// per-prefix override map of which session to clear. Undo state is plain
// data rather than closures so that (a) Internet.Clone can rebind the
// records to the clone's own policy table and (b) a revert decided on a
// worker's clone can be replayed verbatim on the canonical Internet — the
// determinism rule behind parallel RunAll (DESIGN.md §7).
type quirkUndoRec struct {
	kind undoKind
	key  sessKey
}

type undoKind uint8

const (
	undoLPOverride undoKind = iota // clear sessPolicy.lpOverride[prefix]
	undoExpDeny                    // clear sessPolicy.expDeny[prefix]
	undoLeak                       // clear sessPolicy.leak[prefix]
)

// revertQuirks rolls back every weird-policy tweak recorded for the
// prefix and updates the Weird/QuirksReverted bookkeeping, reporting
// whether there was anything to revert. RunAll calls it when a quirk
// makes BGP diverge; the parallel path replays it on the canonical
// Internet in prefix order so sequential and parallel runs leave
// identical state.
func (in *Internet) revertQuirks(prefix bgp.PrefixID) bool {
	recs := in.quirkUndo[prefix]
	if len(recs) == 0 {
		return false
	}
	for _, rec := range recs {
		sp := in.policies[rec.key]
		if sp == nil {
			continue
		}
		switch rec.kind {
		case undoLPOverride:
			delete(sp.lpOverride, prefix)
		case undoExpDeny:
			delete(sp.expDeny, prefix)
		case undoLeak:
			delete(sp.leak, prefix)
		}
	}
	delete(in.quirkUndo, prefix)
	delete(in.Weird, prefix)
	in.QuirksReverted++
	return true
}

// quirkPreferProvider makes asn prefer provider-learned routes for the
// prefix (local-pref inversion).
func (in *Internet) quirkPreferProvider(prefix bgp.PrefixID, asn bgp.ASN) bool {
	provSessions := in.sessionsOf(asn, relation.Customer) // I am the customer
	if len(provSessions) == 0 {
		return false
	}
	for _, s := range provSessions {
		s.sp.lpOverride[prefix] = relation.LPCustomer + 10
		in.quirkUndo[prefix] = append(in.quirkUndo[prefix], quirkUndoRec{undoLPOverride, s.key})
	}
	return true
}

// quirkSelectiveExport makes the origin AS withhold its prefix from one of
// its providers (selective advertisement). Requires >= 2 provider
// sessions so the prefix stays globally reachable.
func (in *Internet) quirkSelectiveExport(prefix bgp.PrefixID) bool {
	origin := in.prefixOrigin[prefix]
	provSessions := in.sessionsOf(origin, relation.Customer)
	if len(provSessions) < 2 {
		return false
	}
	s := provSessions[in.rng.Intn(len(provSessions))]
	s.sp.expDeny[prefix] = true
	in.quirkUndo[prefix] = append(in.quirkUndo[prefix], quirkUndoRec{undoExpDeny, s.key})
	return true
}

// quirkLeak makes asn export the prefix to providers/peers even when it
// was not learned from a customer (a controlled route leak).
func (in *Internet) quirkLeak(prefix bgp.PrefixID, asn bgp.ASN) bool {
	var sessions []sessRef
	sessions = append(sessions, in.sessionsOf(asn, relation.Customer)...) // toward providers
	sessions = append(sessions, in.sessionsOf(asn, relation.Peer)...)
	if len(sessions) == 0 {
		return false
	}
	s := sessions[in.rng.Intn(len(sessions))]
	s.sp.leak[prefix] = true
	in.quirkUndo[prefix] = append(in.quirkUndo[prefix], quirkUndoRec{undoLeak, s.key})
	return true
}

// pickVantagePoints selects observation feeds: every tier-1 AS first, then
// tier-2, tier-3 and stubs until NumVantageASes is reached, with 1..Max
// router feeds per chosen AS.
func (in *Internet) pickVantagePoints() {
	order := append([]bgp.ASN{}, in.Tier1...)
	order = append(order, shuffled(in.rng, in.Tier2)...)
	order = append(order, shuffled(in.rng, in.Tier3)...)
	order = append(order, shuffled(in.rng, in.Stubs)...)
	count := in.Cfg.NumVantageASes
	if count > len(order) {
		count = len(order)
	}
	for _, asn := range order[:count] {
		a := in.RS.AS(asn)
		nFeeds := min(in.Cfg.MaxVantagePerAS, a.NumRouters())
		for _, ri := range in.rng.Perm(a.NumRouters())[:nFeeds] {
			in.vps = append(in.vps, routersim.VantagePoint{
				ID:     dataset.ObsPointID(fmt.Sprintf("op%d-%d", asn, ri)),
				Router: a.Routers[ri],
			})
		}
	}
	routersim.SortVantagePoints(in.vps)
}

func shuffled(rng *rand.Rand, s []bgp.ASN) []bgp.ASN {
	out := make([]bgp.ASN, len(s))
	copy(out, s)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// RunAll simulates every prefix on the canonical network, one at a time,
// and returns the ground-truth dataset of vantage-point observations (one
// record per vantage point per reachable prefix, in prefix order). Weird
// policies that cause divergence are reverted and counted in
// QuirksReverted so the returned routing is always a stable one.
// RunAllParallel produces a byte-identical dataset on a worker pool.
func (in *Internet) RunAll() (*dataset.Dataset, error) {
	return in.runAll(context.Background())
}

// runAll is the sequential generation body; ctx carries cancellation and
// the current obs span (RunAllParallel's workers<=1 fallback routes here
// so spans and cancellation survive the fallback).
func (in *Internet) runAll(ctx context.Context) (*dataset.Dataset, error) {
	defer obsGenRun()()
	ctx, span := obs.StartSpan(ctx, "gen.run_all",
		obs.A("prefixes", len(in.prefixOrigin)), obs.A("workers", 1))
	defer span.End()
	ds := &dataset.Dataset{}
	for pi := range in.prefixOrigin {
		prefix := bgp.PrefixID(pi)
		var ps *obs.Span
		if span.SampledPrefix(pi) {
			ps = span.StartChild("prefix", obs.A("prefix", in.PrefixName(prefix)))
		}
		reverted, err := in.runPrefixRevertible(ctx, prefix)
		if err != nil {
			ps.End()
			return nil, err
		}
		before := len(ds.Records)
		routersim.Observe(ds, in.PrefixName(prefix), CollectionTime-7200, in.vps)
		ps.Set(obs.A("reverted", reverted), obs.A("records", len(ds.Records)-before))
		ps.End()
	}
	span.Set(obs.A("records", len(ds.Records)))
	return ds, nil
}

// runPrefixRevertible simulates one prefix, reverting its weird-policy
// tweaks and retrying once if they made BGP diverge. It reports whether a
// revert happened — the parallel path uses that to replay the revert on
// the canonical Internet.
func (in *Internet) runPrefixRevertible(ctx context.Context, prefix bgp.PrefixID) (reverted bool, err error) {
	err = in.RS.RunPrefixContext(ctx, prefix, in.prefixOrigin[prefix])
	if errors.Is(err, sim.ErrDiverged) && in.revertQuirks(prefix) {
		reverted = true
		err = in.RS.RunPrefixContext(ctx, prefix, in.prefixOrigin[prefix])
	}
	if err != nil {
		return reverted, fmt.Errorf("gen: prefix %s: %w", in.PrefixName(prefix), err)
	}
	return reverted, nil
}

// RunOne re-simulates a single prefix in the ground truth on the
// canonical network, leaving the converged state in place for inspection
// with ObservedPathSet (used by what-if comparisons after topology
// edits). Previous per-prefix run state is discarded, so RunOne behaves
// identically whether the preceding RunAll was sequential or parallel.
func (in *Internet) RunOne(prefix bgp.PrefixID) error {
	return in.RS.RunPrefix(prefix, in.prefixOrigin[prefix])
}

// DisableASLink administratively disables every eBGP session between two
// ASes in the ground-truth Internet, returning the number of sessions
// taken down. Used to validate what-if predictions: the same link can be
// removed from both the model and the ground truth, and the outcomes
// compared.
func (in *Internet) DisableASLink(a, b bgp.ASN) int {
	return in.setASLinkDisabled(a, b, true)
}

// EnableASLink re-enables previously disabled sessions between two ASes.
func (in *Internet) EnableASLink(a, b bgp.ASN) int {
	return in.setASLinkDisabled(a, b, false)
}

func (in *Internet) setASLinkDisabled(a, b bgp.ASN, down bool) int {
	asA := in.RS.AS(a)
	if asA == nil {
		return 0
	}
	n := 0
	for _, r := range asA.Routers {
		for _, p := range r.Peers() {
			if p.Remote.AS != b {
				continue
			}
			p.SetDisabled(down)
			if rev := p.Remote.PeerTo(r.ID); rev != nil {
				rev.SetDisabled(down)
			}
			n++
		}
	}
	return n
}

// ObservedPathSet returns, per vantage AS, the distinct best AS-paths
// currently selected by that AS's vantage routers for the last-run
// prefix, each prepended with the vantage AS (dataset convention).
func (in *Internet) ObservedPathSet() map[bgp.ASN]map[string]bool {
	out := make(map[bgp.ASN]map[string]bool)
	for _, vp := range in.vps {
		best := vp.Router.Best()
		if best == nil {
			continue
		}
		set := out[vp.Router.AS]
		if set == nil {
			set = make(map[string]bool)
			out[vp.Router.AS] = set
		}
		set[best.Path.Prepend(vp.Router.AS).String()] = true
	}
	return out
}
