package gen

import (
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/relation"
	"asmodel/internal/topology"
)

func smallConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		NumTier1:         4,
		NumTier2:         10,
		NumTier3:         20,
		NumStub:          30,
		RoutersTier1:     3,
		RoutersTier2:     2,
		RoutersTier3:     2,
		MultiHomeProb:    0.6,
		Tier2PeerProb:    0.2,
		Tier3PeerProb:    0.05,
		ParallelLinkProb: 0.4,
		WeirdPolicyFrac:  0.1,
		NumVantageASes:   12,
		MaxVantagePerAS:  2,
	}
}

func TestValidate(t *testing.T) {
	good := smallConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumTier1 = 1 },
		func(c *Config) { c.NumTier2 = 0 },
		func(c *Config) { c.RoutersTier1 = 0 },
		func(c *Config) { c.MultiHomeProb = 1.5 },
		func(c *Config) { c.WeirdPolicyFrac = -0.1 },
		func(c *Config) { c.NumVantageASes = 0 },
		func(c *Config) { c.MaxVantagePerAS = 0 },
	}
	for i, mutate := range cases {
		c := smallConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Generate(Config{}); err == nil {
		t.Error("Generate with zero config should fail validation")
	}
}

func TestGenerateStructure(t *testing.T) {
	in, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	wantASes := 4 + 10 + 20 + 30
	if got := len(in.ASNs()); got != wantASes {
		t.Fatalf("ASes=%d want %d", got, wantASes)
	}
	if in.NumPrefixes() != wantASes {
		t.Fatalf("prefixes=%d", in.NumPrefixes())
	}
	// Tier-1 clique is fully meshed with Peer relationships.
	for i := 0; i < len(in.Tier1); i++ {
		for j := i + 1; j < len(in.Tier1); j++ {
			if in.RelOf(in.Tier1[i], in.Tier1[j]) != relation.Peer {
				t.Errorf("tier1 %d-%d not peer", in.Tier1[i], in.Tier1[j])
			}
		}
	}
	// Every tier-2 has at least one tier-1 provider.
	for _, t2 := range in.Tier2 {
		found := false
		for _, t1 := range in.Tier1 {
			if in.RelOf(t2, t1) == relation.Customer {
				found = true
			}
		}
		if !found {
			t.Errorf("tier2 AS%d has no tier1 provider", t2)
		}
	}
	// Every stub has at least one provider and RelOf is consistent both ways.
	for _, s := range in.Stubs {
		providers := 0
		for e, r := range in.Rels {
			if e.A == s && r == relation.Customer || e.B == s && r == relation.Provider {
				providers++
			}
		}
		if providers == 0 {
			t.Errorf("stub AS%d has no provider", s)
		}
	}
	if len(in.VantagePoints()) == 0 {
		t.Fatal("no vantage points")
	}
	if in.RelOf(1, 2) != relation.Unknown {
		t.Error("unknown pair should be Unknown")
	}
}

func TestRunAllProducesValidDiverseData(t *testing.T) {
	in, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := in.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	for i := range ds.Records {
		if err := ds.Records[i].Valid(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
	}
	ds.Normalize()

	// Route diversity must exist: some (origin, obs) pair with >1 path.
	diverse := 0
	for _, n := range ds.DistinctPathsPerPair() {
		if n > 1 {
			diverse++
		}
	}
	if diverse == 0 {
		t.Error("generated Internet shows no route diversity — hot potato / multi-link machinery broken")
	}

	// Some AS must receive >= 2 distinct paths for some prefix (Table 1
	// precondition).
	maxDiv := ds.MaxReceivedDiversity()
	best := 0
	for _, v := range maxDiv {
		if v > best {
			best = v
		}
	}
	if best < 2 {
		t.Errorf("max received diversity = %d, want >= 2", best)
	}

	// The tier-1 clique must be discoverable from the data.
	g := topology.FromDataset(ds)
	clique, err := g.Tier1Clique(in.Tier1[:2])
	if err != nil {
		t.Fatalf("tier1 clique: %v", err)
	}
	if len(clique) < len(in.Tier1) {
		t.Errorf("clique=%v smaller than generated tier1 %v", clique, in.Tier1)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	dsA, err := a.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	dsB, err := b.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if dsA.Len() != dsB.Len() {
		t.Fatalf("lengths differ: %d vs %d", dsA.Len(), dsB.Len())
	}
	for i := range dsA.Records {
		ra, rb := dsA.Records[i], dsB.Records[i]
		if ra.Obs != rb.Obs || ra.Prefix != rb.Prefix || !ra.Path.Equal(rb.Path) {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestWeirdPoliciesApplied(t *testing.T) {
	cfg := smallConfig(3)
	cfg.WeirdPolicyFrac = 0.2
	in, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Weird) == 0 {
		t.Fatal("no weird policies applied despite frac 0.2")
	}
	if _, err := in.RunAll(); err != nil {
		t.Fatal(err)
	}
	if in.QuirksReverted > len(in.Weird)+in.QuirksReverted {
		t.Error("revert accounting broken")
	}
}

func TestInferenceAccuracyOnGroundTruth(t *testing.T) {
	// The Gao-style inference should classify a solid majority of
	// customer-provider edges correctly on clean synthetic data (it need
	// not be perfect — the paper's point is that this baseline is weak).
	cfg := smallConfig(4)
	cfg.WeirdPolicyFrac = 0 // clean data for this check
	cfg.NumVantageASes = 20
	in, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := in.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	inf := relation.Infer(ds, in.Tier1)

	seen, correct := 0, 0
	for e, want := range in.Rels {
		got := inf.Rel(e.A, e.B)
		if got == relation.Unknown {
			continue // edge not observed from the vantage points
		}
		if want == relation.Customer || want == relation.Provider {
			seen++
			if got == want {
				correct++
			}
		}
	}
	if seen == 0 {
		t.Fatal("no customer-provider edges observed")
	}
	frac := float64(correct) / float64(seen)
	if frac < 0.7 {
		t.Errorf("c2p inference accuracy %.2f (%d/%d), want >= 0.7", frac, correct, seen)
	}
}

func TestRunOne(t *testing.T) {
	in, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.RunOne(0); err != nil {
		t.Fatal(err)
	}
	if got := in.RS.Net.Prefix(); got != 0 {
		t.Errorf("prefix=%d", got)
	}
	if in.PrefixOrigin(0) != in.ASNs()[0] {
		t.Errorf("PrefixOrigin(0)=%d", in.PrefixOrigin(0))
	}
	if in.PrefixName(0) != dataset.SyntheticPrefix(in.ASNs()[0]) {
		t.Errorf("PrefixName(0)=%s", in.PrefixName(0))
	}
}

func TestParallelLinksExist(t *testing.T) {
	cfg := smallConfig(6)
	cfg.ParallelLinkProb = 0.9
	in, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count eBGP sessions per AS pair; with prob 0.9 and multi-router
	// tiers, some pair must have >= 2 links.
	pairLinks := map[topology.Edge]int{}
	for _, r := range in.RS.Net.Routers() {
		for _, p := range r.Peers() {
			if p.EBGP && r.ID < p.Remote.ID {
				pairLinks[topology.MakeEdge(r.AS, p.Remote.AS)]++
			}
		}
	}
	multi := 0
	for _, n := range pairLinks {
		if n >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no parallel inter-AS links generated")
	}
	_ = bgp.ASN(0)
}

func TestPrefixesPerOrigin(t *testing.T) {
	cfg := smallConfig(9)
	cfg.PrefixesPerOrigin = 3
	in, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumPrefixes() <= len(in.ASNs()) {
		t.Fatalf("prefixes=%d should exceed AS count %d", in.NumPrefixes(), len(in.ASNs()))
	}
	names := map[string]bool{}
	perOrigin := map[bgp.ASN]int{}
	for i := 0; i < in.NumPrefixes(); i++ {
		id := bgp.PrefixID(i)
		name := in.PrefixName(id)
		if names[name] {
			t.Fatalf("duplicate prefix name %q", name)
		}
		names[name] = true
		perOrigin[in.PrefixOrigin(id)]++
	}
	maxP := 0
	for _, n := range perOrigin {
		if n > maxP {
			maxP = n
		}
	}
	if maxP < 2 || maxP > 3 {
		t.Errorf("max prefixes per origin = %d, want in [2,3]", maxP)
	}
	ds, err := in.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	// With per-prefix weird policies, some AS-path should now carry more
	// than one prefix AND some origin's prefixes should take different
	// paths from the same vantage point.
	multi := 0
	for _, n := range ds.PrefixesPerPath() {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no AS-path carries multiple prefixes")
	}
	// Negative validation case.
	cfg.PrefixesPerOrigin = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative PrefixesPerOrigin accepted")
	}
}

func TestDisableASLink(t *testing.T) {
	in, err := Generate(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	// Pick a stub and its provider.
	stub := in.Stubs[0]
	var provider bgp.ASN
	for e, r := range in.Rels {
		if e.A == stub && r == relation.Customer {
			provider = e.B
		}
		if e.B == stub && r == relation.Provider {
			provider = e.A
		}
	}
	if provider == 0 {
		t.Fatal("no provider found")
	}
	n := in.DisableASLink(stub, provider)
	if n == 0 {
		t.Fatal("no sessions disabled")
	}
	if in.EnableASLink(stub, provider) != n {
		t.Fatal("enable count mismatch")
	}
	if in.DisableASLink(9999, provider) != 0 {
		t.Fatal("unknown AS disabled something")
	}
}

func TestObservedPathSet(t *testing.T) {
	in, err := Generate(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.RunOne(0); err != nil {
		t.Fatal(err)
	}
	sets := in.ObservedPathSet()
	if len(sets) == 0 {
		t.Fatal("no observed paths")
	}
	for asn, set := range sets {
		for p := range set {
			path, err := bgp.ParsePath(p)
			if err != nil {
				t.Fatal(err)
			}
			if first, _ := path.First(); first != asn {
				t.Errorf("path %q not anchored at AS %d", p, asn)
			}
		}
	}
}

func TestRouteReflectorGeneration(t *testing.T) {
	cfg := smallConfig(12)
	cfg.RouteReflectorProb = 1.0 // every multi-router AS uses RR
	in, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rrCount := 0
	for _, asn := range in.ASNs() {
		a := in.RS.AS(asn)
		if a.RouteReflector {
			rrCount++
			if a.NumRouters() < 2 {
				t.Errorf("AS%d is RR with %d routers", asn, a.NumRouters())
			}
		} else if a.NumRouters() >= 2 {
			t.Errorf("AS%d has %d routers but no RR despite prob 1.0", asn, a.NumRouters())
		}
	}
	if rrCount == 0 {
		t.Fatal("no RR ASes generated")
	}
	ds, err := in.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	// Bad probability rejected.
	cfg.RouteReflectorProb = 2
	if err := cfg.Validate(); err == nil {
		t.Error("invalid RR probability accepted")
	}
}
