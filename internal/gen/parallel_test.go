package gen

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"asmodel/internal/bgp"
)

// genPair generates two structurally identical Internets from the same
// config (generation is deterministic in the seed), so one can run
// sequentially and the other in parallel.
func genPair(t *testing.T, cfg Config) (*Internet, *Internet) {
	t.Helper()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestRunAllParallelMatchesSequential sweeps seeds — including ones whose
// weird policies diverge and get reverted — and requires the parallel
// dataset, the Weird/QuirksReverted bookkeeping, and the post-run
// canonical network state to be identical to sequential.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		seed       int64
		weirdFrac  float64
		wantRevert bool
	}{
		{seed: 1, weirdFrac: 0.1},
		{seed: 3, weirdFrac: 0.1},
		{seed: 8, weirdFrac: 0.3, wantRevert: true}, // diverging quirk: exercises the revert-replay path
		{seed: 9, weirdFrac: 0.3, wantRevert: true},
	}
	for _, tc := range cases {
		cfg := smallConfig(tc.seed)
		cfg.WeirdPolicyFrac = tc.weirdFrac
		seqIn, parIn := genPair(t, cfg)

		seqDS, err := seqIn.RunAll()
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", tc.seed, err)
		}
		if tc.wantRevert && seqIn.QuirksReverted == 0 {
			t.Fatalf("seed %d: expected a quirk revert, got none (probe the seed again)", tc.seed)
		}
		parDS, err := parIn.RunAllParallel(context.Background(), 4)
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", tc.seed, err)
		}

		var seqBuf, parBuf bytes.Buffer
		if err := seqDS.Write(&seqBuf); err != nil {
			t.Fatal(err)
		}
		if err := parDS.Write(&parBuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqBuf.Bytes(), parBuf.Bytes()) {
			t.Errorf("seed %d: parallel dataset differs from sequential (%d vs %d bytes)",
				tc.seed, parBuf.Len(), seqBuf.Len())
		}
		if seqIn.QuirksReverted != parIn.QuirksReverted {
			t.Errorf("seed %d: QuirksReverted %d != %d", tc.seed, parIn.QuirksReverted, seqIn.QuirksReverted)
		}
		if !reflect.DeepEqual(seqIn.Weird, parIn.Weird) {
			t.Errorf("seed %d: Weird maps differ after run", tc.seed)
		}
		if len(seqIn.quirkUndo) != len(parIn.quirkUndo) {
			t.Errorf("seed %d: quirkUndo sizes differ: %d != %d",
				tc.seed, len(parIn.quirkUndo), len(seqIn.quirkUndo))
		}

		// The canonical networks must be interchangeable afterwards: same
		// last-run state, and the same answers to later what-if re-runs.
		if !reflect.DeepEqual(seqIn.ObservedPathSet(), parIn.ObservedPathSet()) {
			t.Errorf("seed %d: post-RunAll ObservedPathSet differs", tc.seed)
		}
		probe := bgp.PrefixID(seqIn.NumPrefixes() / 2)
		if err := seqIn.RunOne(probe); err != nil {
			t.Fatal(err)
		}
		if err := parIn.RunOne(probe); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqIn.ObservedPathSet(), parIn.ObservedPathSet()) {
			t.Errorf("seed %d: RunOne(%d) ObservedPathSet differs", tc.seed, probe)
		}
	}
}

// TestRunAllParallelWorkerCounts checks the byte-identity holds for every
// pool size, including ones larger than the CPU count.
func TestRunAllParallelWorkerCounts(t *testing.T) {
	cfg := smallConfig(2)
	base, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := want.Write(&wantBuf); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16} {
		in, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := in.RunAllParallel(context.Background(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), wantBuf.Bytes()) {
			t.Errorf("workers=%d: dataset differs from sequential", workers)
		}
	}
}

// TestCloneIsolation proves a clone's runs, policy hooks and quirk
// reverts never touch the parent.
func TestCloneIsolation(t *testing.T) {
	cfg := smallConfig(3)
	cfg.WeirdPolicyFrac = 0.2
	in, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Weird) == 0 {
		t.Fatal("seed applied no weird policies; pick another")
	}
	var weirdPrefix bgp.PrefixID
	for p := range in.quirkUndo {
		weirdPrefix = p
		break
	}
	parentUndos := len(in.quirkUndo)
	parentWeird := len(in.Weird)

	clone := in.Clone()

	// Reverting a quirk on the clone must not leak into the parent's
	// bookkeeping or its session policies.
	if !clone.revertQuirks(weirdPrefix) {
		t.Fatal("clone revert found nothing to undo")
	}
	if len(in.quirkUndo) != parentUndos || len(in.Weird) != parentWeird || in.QuirksReverted != 0 {
		t.Fatal("clone revert mutated parent bookkeeping")
	}
	for _, rec := range in.quirkUndo[weirdPrefix] {
		sp := in.policies[rec.key]
		if sp == nil {
			t.Fatal("parent lost a session policy")
		}
		present := false
		switch rec.kind {
		case undoLPOverride:
			_, present = sp.lpOverride[weirdPrefix]
		case undoExpDeny:
			present = sp.expDeny[weirdPrefix]
		case undoLeak:
			present = sp.leak[weirdPrefix]
		}
		if !present {
			t.Fatal("clone revert cleared a parent per-prefix override (hooks not re-bound?)")
		}
	}

	// Running the clone leaves the parent's routers quiescent.
	if err := clone.RunOne(0); err != nil {
		t.Fatal(err)
	}
	for _, vp := range in.vps {
		if vp.Router.Best() != nil {
			t.Fatal("running the clone converged routes on the parent")
		}
	}

	// And the parent still produces the pristine sequential dataset.
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantDS, err := want.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	gotDS, err := in.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := wantDS.Write(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := gotDS.Write(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Error("parent dataset changed after clone activity")
	}
}

// TestRunAllParallelCancellation: a pre-canceled context aborts without
// touching the canonical bookkeeping.
func TestRunAllParallelCancellation(t *testing.T) {
	in, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := in.RunAllParallel(ctx, 4); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
	if in.QuirksReverted != 0 {
		t.Error("aborted run mutated revert bookkeeping")
	}
}
