package gen

import (
	"asmodel/internal/bgp"
	"asmodel/internal/routersim"
)

// Clone returns a deep copy of the generated Internet suitable for
// running prefixes concurrently with the original: the router-level
// network is cloned (routersim.Internet.Clone — IGP distance matrices
// shared, everything mutable copied), every per-session policy is
// duplicated, the import/export hooks are re-bound to the copied
// policies, the quirk-undo records are carried over (they are keyed by
// session, so they resolve against the clone's own policy table), and
// the vantage points are re-pointed at the clone's routers.
//
// Shared with the parent because immutable after Generate: the tier
// membership slices, the ground-truth relationship map Rels, and the
// prefix origin/name tables. The Weird map and QuirksReverted counter
// are copied — a revert on a clone never shows on the parent.
//
// A clone cannot generate (its rng is nil); it exists to Run. The parent
// must be quiescent — not mid-RunAll — while clones are taken; several
// goroutines may clone the same quiescent Internet concurrently.
func (in *Internet) Clone() *Internet {
	c := &Internet{
		Cfg:            in.Cfg,
		RS:             in.RS.Clone(),
		Tier1:          in.Tier1,
		Tier2:          in.Tier2,
		Tier3:          in.Tier3,
		Stubs:          in.Stubs,
		Rels:           in.Rels,
		Weird:          make(map[bgp.PrefixID]string, len(in.Weird)),
		QuirksReverted: in.QuirksReverted,
		prefixOrigin:   in.prefixOrigin,
		prefixName:     in.prefixName,
		prefixByName:   in.prefixByName,
		policies:       make(map[sessKey]*sessPolicy, len(in.policies)),
		quirkUndo:      make(map[bgp.PrefixID][]quirkUndoRec, len(in.quirkUndo)),
	}
	for k, v := range in.Weird {
		c.Weird[k] = v
	}
	for k, sp := range in.policies {
		c.policies[k] = sp.clone()
	}
	for p, recs := range in.quirkUndo {
		c.quirkUndo[p] = append([]quirkUndoRec(nil), recs...)
	}
	// sim.Network.Clone shared the parent's hook closures; re-bind them to
	// the clone's own policy objects so per-prefix overrides (and their
	// reverts) stay private to this copy.
	c.bindPolicyHooks()
	c.vps = make([]routersim.VantagePoint, len(in.vps))
	for i, vp := range in.vps {
		c.vps[i] = routersim.VantagePoint{ID: vp.ID, Router: c.RS.Net.Router(vp.Router.ID)}
	}
	mGenClones.Inc()
	return c
}
