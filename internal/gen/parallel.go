package gen

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/obs"
	"asmodel/internal/routersim"
)

// Ground-truth generation metrics. Per-prefix simulation work is counted
// by the sim/routersim layers (on each worker's own clone); these cover
// the generation-level workload and the pool bookkeeping.
var (
	mGenRuns    = obs.GetCounter("gen_runs_total", "full ground-truth generation runs (RunAll / RunAllParallel)")
	mGenClones  = obs.GetCounter("gen_clones_total", "ground-truth Internet clones built for RunAll worker pools")
	mGenWorkers = obs.GetGauge("gen_parallel_workers", "worker count of the most recent ground-truth generation")
	mGenRunTime = obs.GetHistogram("gen_run_seconds", "wall time of a full ground-truth generation",
		obs.ExpBuckets(1e-2, 4, 12))
	mGenPerWkr = obs.GetHistogram("gen_worker_prefixes", "prefixes simulated per worker per parallel RunAll",
		obs.ExpBuckets(1, 4, 10))
	mGenBusy = obs.GetHistogram("gen_worker_busy_seconds", "per-worker time spent simulating prefixes per parallel RunAll",
		obs.ExpBuckets(1e-3, 4, 12))
	mGenIdle = obs.GetHistogram("gen_worker_idle_seconds", "per-worker time spent waiting (clone build, cursor contention, tail straggling) per parallel RunAll",
		obs.ExpBuckets(1e-3, 4, 12))
)

// obsGenRun stamps one generation run on the metrics above; call the
// returned func when the run finishes.
func obsGenRun() func() {
	mGenRuns.Inc()
	start := time.Now()
	return func() { mGenRunTime.ObserveDuration(time.Since(start)) }
}

// DefaultWorkers is the pool size RunAllParallel uses when the caller
// passes 0: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// prefixShard is one prefix's contribution to a parallel generation,
// produced by a worker on its private clone and merged in prefix order by
// the coordinator.
type prefixShard struct {
	records  []dataset.Record
	reverted bool // the prefix's weird policy diverged and was rolled back
	err      error
}

// RunAllParallel is RunAll fanned out over a worker pool: each worker
// gets its own deep copy of the Internet (Clone), pulls prefixes from an
// atomic cursor, simulates them on its clone and records what the
// clone's vantage points see into a private shard. Shards are merged in
// prefix order, so the returned dataset is byte-identical to the
// sequential RunAll for any worker count.
//
// Divergence handling is preserved: a prefix whose weird-policy quirk
// makes BGP diverge is reverted on the worker's clone and re-run there,
// and the revert is replayed on the canonical Internet during the merge
// — in prefix order — so Weird, QuirksReverted and the session policies
// end up exactly as a sequential run leaves them. The canonical network
// finishes converged on the last prefix, again matching the sequential
// run, so later RunOne / DisableASLink what-ifs behave identically.
//
// workers <= 0 selects DefaultWorkers(); workers == 1 (or a single-prefix
// Internet) falls back to the sequential path. A canceled context aborts
// the run with an error wrapping ctx.Err(). On any failure the canonical
// Internet's bookkeeping is left untouched.
func (in *Internet) RunAllParallel(ctx context.Context, workers int) (*dataset.Dataset, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	n := len(in.prefixOrigin)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("gen: ground-truth generation not started: %w", err)
		}
		return in.runAll(ctx)
	}
	defer obsGenRun()()
	mGenWorkers.Set(int64(workers))
	ctx, span := obs.StartSpan(ctx, "gen.run_all",
		obs.A("prefixes", n), obs.A("workers", workers))
	defer span.End()

	results := make([]prefixShard, n)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Busy is time inside the per-prefix body; idle is everything
			// else (clone build, cursor contention, tail straggling). Both
			// depend on scheduling, so the span attrs are Volatile.
			wspan := span.StartChild("worker", obs.VolatileAttr("worker", wi))
			wstart := time.Now()
			var busy time.Duration
			clone := in.Clone()
			processed := 0
			defer func() {
				mGenPerWkr.ObserveInt(processed)
				total := time.Since(wstart)
				mGenBusy.ObserveDuration(busy)
				mGenIdle.ObserveDuration(total - busy)
				wspan.Set(
					obs.VolatileAttr("prefixes", processed),
					obs.VolatileAttr("busy_seconds", busy.Seconds()),
					obs.VolatileAttr("idle_seconds", (total-busy).Seconds()))
				wspan.End()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				r := &results[i]
				// One prefix per closure invocation so a recovered panic is
				// attributed to the prefix that raised it and stops only
				// this worker — wg.Wait never deadlocks.
				t0 := time.Now()
				stop := func() (stop bool) {
					defer func() {
						if p := recover(); p != nil {
							r.err = fmt.Errorf("gen: worker panic on prefix %s: %v\n%s",
								in.prefixName[i], p, debug.Stack())
							cancel()
							stop = true
						}
					}()
					// Sampled per-prefix spans attach to the stage span: the
					// prefix→worker assignment is nondeterministic, so only a
					// Volatile attr records it.
					var ps *obs.Span
					if span.SampledPrefix(i) {
						ps = span.StartChild("prefix",
							obs.A("prefix", in.prefixName[i]), obs.VolatileAttr("worker", wi))
					}
					defer ps.End()
					reverted, err := clone.runPrefixRevertible(wctx, bgp.PrefixID(i))
					if err != nil {
						if wctx.Err() != nil {
							return true // interrupted, not failed
						}
						r.err = err
						cancel() // no point finishing the sweep
						return true
					}
					var shard dataset.Dataset
					routersim.Observe(&shard, clone.PrefixName(bgp.PrefixID(i)), CollectionTime-7200, clone.vps)
					r.records = shard.Records
					r.reverted = reverted
					ps.Set(obs.A("reverted", reverted), obs.A("records", len(r.records)))
					processed++
					return false
				}()
				busy += time.Since(t0)
				if stop {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Worker errors win over the interrupt so a genuine failure is never
	// masked by the cancel() it triggered; scanning in prefix order makes
	// the reported error match the sequential run's.
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gen: ground-truth generation interrupted: %w", err)
	}

	// Merge in prefix order: replay worker-side reverts on the canonical
	// Internet (identical bookkeeping to sequential), then concatenate the
	// shards (identical record order).
	total := 0
	for i := range results {
		total += len(results[i].records)
	}
	ds := &dataset.Dataset{Records: make([]dataset.Record, 0, total)}
	for i := range results {
		if results[i].reverted {
			in.revertQuirks(bgp.PrefixID(i))
		}
		ds.Records = append(ds.Records, results[i].records...)
	}

	// Leave the canonical network converged on the last prefix, exactly
	// where a sequential RunAll stops (all reverts are applied by now, so
	// this re-run cannot diverge unless the sequential run would have).
	last := bgp.PrefixID(n - 1)
	if err := in.RS.RunPrefix(last, in.prefixOrigin[last]); err != nil {
		return nil, fmt.Errorf("gen: prefix %s: %w", in.PrefixName(last), err)
	}
	span.Set(obs.A("records", len(ds.Records)))
	return ds, nil
}
