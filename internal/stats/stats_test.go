package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.AddN(5, 4)
	if h.Total() != 7 {
		t.Errorf("total=%d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(3) != 1 || h.Count(5) != 4 || h.Count(9) != 0 {
		t.Error("counts wrong")
	}
	if got := h.Values(); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("values=%v", got)
	}
	if h.Max() != 5 {
		t.Errorf("max=%d", h.Max())
	}
}

func TestFracAbove(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 7; i++ {
		h.Add(1)
	}
	for i := 0; i < 3; i++ {
		h.Add(2)
	}
	if got := h.FracAbove(1); got != 0.3 {
		t.Errorf("FracAbove(1)=%v", got)
	}
	if got := h.FracAbove(2); got != 0 {
		t.Errorf("FracAbove(2)=%v", got)
	}
	if NewHistogram().FracAbove(0) != 0 {
		t.Error("empty FracAbove")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("median=%d", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99=%d", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0=%d", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1=%d", got)
	}
	if NewHistogram().Quantile(0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestQuantileSliceAgreesWithHistogram(t *testing.T) {
	f := func(raw []uint8, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		samples := make([]int, len(raw))
		h := NewHistogram()
		for i, v := range raw {
			samples[i] = int(v)
			h.Add(int(v))
		}
		return Quantile(samples, q) == h.Quantile(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	s := []int{5, 1, 3}
	Quantile(s, 0.5)
	if !sort.IntsAreSorted(s) && (s[0] != 5 || s[1] != 1 || s[2] != 3) {
		t.Fatal("Quantile mutated input")
	}
	if s[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty slice quantile")
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]int, 200)
	for i := range samples {
		samples[i] = rng.Intn(1000)
	}
	prev := Quantile(samples, 0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := Quantile(samples, q)
		if cur < prev {
			t.Fatalf("quantile not monotone at %v: %d < %d", q, cur, prev)
		}
		prev = cur
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 100)
	h.AddN(2, 10)
	h.AddN(10, 1)
	var b strings.Builder
	h.Render(&b, 40, true)
	out := b.String()
	if !strings.Contains(out, "100") || !strings.Contains(out, "#") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("want 3 rows, got %d", len(lines))
	}
	var e strings.Builder
	NewHistogram().Render(&e, 10, false)
	if !strings.Contains(e.String(), "empty") {
		t.Error("empty histogram render")
	}
	// Linear rendering path.
	var l strings.Builder
	h.Render(&l, 40, false)
	if !strings.Contains(l.String(), "#") {
		t.Error("linear render")
	}
}

func TestLogBins(t *testing.T) {
	values := map[int]int{1: 5, 2: 3, 3: 2, 4: 1, 9: 1, 100: 1}
	bins := LogBins(values, 2)
	// Bins: [1,1] [2,3] [4,7] [8,15] [16,31] [32,63] [64,127]
	if len(bins) != 7 {
		t.Fatalf("bins=%v", bins)
	}
	if bins[0].Count != 5 {
		t.Errorf("bin0=%+v", bins[0])
	}
	if bins[1].Count != 5 { // 2:3 + 3:2
		t.Errorf("bin1=%+v", bins[1])
	}
	if bins[6].Count != 1 {
		t.Errorf("bin6=%+v", bins[6])
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	want := 0
	for _, c := range values {
		want += c
	}
	if total != want {
		t.Errorf("bins lose counts: %d != %d", total, want)
	}
	// base < 2 coerced.
	if b := LogBins(map[int]int{1: 1}, 0); len(b) != 1 {
		t.Error("base coercion")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row
	tb.AddRow("c", "2", "extra dropped")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("table:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("rule: %q", lines[1])
	}
}

func TestPct(t *testing.T) {
	if Pct(235, 1000) != "23.5%" {
		t.Errorf("Pct=%s", Pct(235, 1000))
	}
	if Pct(1, 0) != "n/a" {
		t.Error("Pct zero denominator")
	}
}
