// Package stats provides the small statistical toolkit used by the
// experiment harness: integer histograms, quantiles, log-log binning, and
// ASCII rendering of tables and bar plots in the style of the paper's
// figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts occurrences of integer values.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add increments the count for value v.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN increments the count for value v by n.
func (h *Histogram) AddN(v, n int) {
	h.counts[v] += n
	h.total += n
}

// Count returns the count for value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of samples.
func (h *Histogram) Total() int { return h.total }

// Values returns the distinct values, sorted ascending.
func (h *Histogram) Values() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Max returns the largest value with a nonzero count (0 for empty).
func (h *Histogram) Max() int {
	m := 0
	for v := range h.counts {
		if v > m {
			m = v
		}
	}
	return m
}

// FracAbove returns the fraction of samples with value strictly greater
// than v.
func (h *Histogram) FracAbove(v int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for val, c := range h.counts {
		if val > v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample values using
// the nearest-rank method, 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	cum := 0
	for _, v := range h.Values() {
		cum += h.counts[v]
		if cum >= rank {
			return v
		}
	}
	return h.Max()
}

// Render draws the histogram as ASCII, one row per value, with bars scaled
// to width. When logY is true the bar length is proportional to
// log10(count+1), matching the paper's log-scale Figure 2.
func (h *Histogram) Render(w *strings.Builder, width int, logY bool) {
	values := h.Values()
	if len(values) == 0 {
		w.WriteString("(empty)\n")
		return
	}
	maxC := 0
	for _, v := range values {
		if h.counts[v] > maxC {
			maxC = h.counts[v]
		}
	}
	scale := func(c int) int {
		if maxC == 0 {
			return 0
		}
		if logY {
			return int(math.Round(float64(width) * math.Log10(float64(c)+1) / math.Log10(float64(maxC)+1)))
		}
		return int(math.Round(float64(width) * float64(c) / float64(maxC)))
	}
	for _, v := range values {
		c := h.counts[v]
		fmt.Fprintf(w, "%6d | %-*s %d\n", v, width, strings.Repeat("#", scale(c)), c)
	}
}

// Quantile returns the q-quantile of a sample slice using nearest rank.
// The input is not modified.
func Quantile(samples []int, q float64) int {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int, len(samples))
	copy(s, samples)
	sort.Ints(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// LogBin is one bin of a logarithmic binning.
type LogBin struct {
	Lo, Hi int // inclusive bounds
	Count  int
}

// LogBins groups values into power-of-base bins: [1,1], [2, base], ... —
// used for the log-log prefixes-per-path histogram (§3.2).
func LogBins(values map[int]int, base int) []LogBin {
	if base < 2 {
		base = 2
	}
	maxV := 0
	for v := range values {
		if v > maxV {
			maxV = v
		}
	}
	var bins []LogBin
	lo := 1
	for lo <= maxV {
		hi := lo*base - 1
		if lo == 1 {
			hi = 1
		}
		bins = append(bins, LogBin{Lo: lo, Hi: hi})
		lo = hi + 1
	}
	for v, c := range values {
		for i := range bins {
			if v >= bins[i].Lo && v <= bins[i].Hi {
				bins[i].Count += c
				break
			}
		}
	}
	return bins
}

// Table renders aligned text tables for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells rendered empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal, paper-style
// ("23.5%").
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
