// Package lg parses looking-glass / route-server BGP table dumps in the
// classic "show ip bgp" format that many of the paper's observation
// sources (route servers, looking glasses) publish:
//
//	BGP table version is 1234, local router ID is 198.32.162.100
//	Status codes: s suppressed, d damped, h history, * valid, > best, i - internal
//	Origin codes: i - IGP, e - EGP, ? - incomplete
//
//	   Network          Next Hop            Metric LocPrf Weight Path
//	*> 3.0.0.0          205.215.45.50            0             0 4006 701 80 i
//	*  4.17.225.0/24    157.130.182.254          0             0 701 6389 8063 i
//	*>                  157.130.182.254                        0 701 6389 8063 i
//
// The parser is column-based like the real format: the "Path" column
// offset is taken from the header line, which removes the ambiguity
// between the Metric/LocPrf/Weight numbers and the first AS of the path.
package lg

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
)

// Options controls parsing.
type Options struct {
	// Obs is the observation-point identifier recorded on every route.
	Obs dataset.ObsPointID
	// LocalAS is the AS hosting the looking glass; it is prepended to
	// every path (the table stores paths as received, neighbor first).
	LocalAS bgp.ASN
	// BestOnly keeps only best routes ("*>"); by default all valid
	// routes are kept, since alternates are exactly the route diversity
	// the model wants (§3.2).
	BestOnly bool
	// Learned is the timestamp stored on records (tables carry none).
	Learned int64
}

// Stats reports what Parse encountered.
type Stats struct {
	Lines     int
	Routes    int // valid route lines parsed
	Best      int // of which best (*>)
	SkippedAS int // dropped: AS_SET ("{...}") in path
	SkippedNB int // dropped: non-best with BestOnly
	Malformed int // dropped: unparsable route lines
}

// Parse reads a "show ip bgp" style table and appends records to a
// dataset. It returns parsing statistics. An error is returned only for
// I/O failures or a missing header line; malformed route lines are
// counted and skipped without limit, as real looking-glass output is
// ragged. Use ParseReport for strict mode or a bounded error budget.
func Parse(r io.Reader, opts Options, ds *dataset.Dataset) (*Stats, error) {
	st, _, err := ParseReport(r, opts, ingest.Options{MaxRecordErrors: -1}, ds)
	return st, err
}

// ParseReport is Parse under explicit ingest options: strict mode aborts
// on the first malformed route line, and lenient mode counts skips in
// the returned report up to its error budget.
func ParseReport(r io.Reader, opts Options, in ingest.Options, ds *dataset.Dataset) (*Stats, *ingest.Report, error) {
	rep := ingest.NewReport("lg", in)
	if opts.Obs == "" || opts.LocalAS == 0 {
		return nil, rep, fmt.Errorf("lg: Options.Obs and Options.LocalAS are required")
	}
	st := &Stats{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)

	pathCol := -1
	lastNetwork := ""
	for sc.Scan() {
		st.Lines++
		line := sc.Text()
		if pathCol < 0 {
			if idx := strings.Index(line, "Path"); idx >= 0 && strings.Contains(line, "Network") {
				pathCol = idx
			}
			continue
		}
		if len(strings.TrimSpace(line)) == 0 {
			continue
		}
		status := line
		if len(status) > 3 {
			status = line[:3]
		}
		if !strings.Contains(status, "*") {
			continue // suppressed/damped/history or continuation noise
		}
		best := strings.Contains(status, ">")
		rep.Record()
		if opts.BestOnly && !best {
			st.SkippedNB++
			continue
		}
		if len(line) <= pathCol {
			st.Malformed++
			if err := rep.Skip(st.Lines, fmt.Errorf("route line shorter than Path column")); err != nil {
				return st, rep, err
			}
			continue
		}

		// Network column starts right after the three status characters.
		// Additional paths for the previous network leave it blank, so a
		// space there marks a continuation line (exactly how the format
		// is emitted).
		network := lastNetwork
		if line[3] != ' ' {
			fields := strings.Fields(line[3:min(len(line), pathCol)])
			if len(fields) == 0 {
				st.Malformed++
				if err := rep.Skip(st.Lines, fmt.Errorf("no network field")); err != nil {
					return st, rep, err
				}
				continue
			}
			network = fields[0]
			lastNetwork = network
		}
		if network == "" {
			st.Malformed++
			if err := rep.Skip(st.Lines, fmt.Errorf("continuation line with no preceding network")); err != nil {
				return st, rep, err
			}
			continue
		}

		pathText := strings.TrimSpace(line[pathCol:])
		if pathText == "" {
			st.Malformed++
			if err := rep.Skip(st.Lines, fmt.Errorf("empty path column")); err != nil {
				return st, rep, err
			}
			continue
		}
		// Drop the origin code when present.
		toks := strings.Fields(pathText)
		if last := toks[len(toks)-1]; last == "i" || last == "e" || last == "?" {
			toks = toks[:len(toks)-1]
		}
		if hasASSet(toks) {
			st.SkippedAS++
			continue
		}
		path, err := bgp.ParsePath(strings.Join(toks, " "))
		if err != nil {
			st.Malformed++
			if err := rep.Skip(st.Lines, err); err != nil {
				return st, rep, err
			}
			continue
		}
		full := path.Prepend(opts.LocalAS)
		ds.Records = append(ds.Records, dataset.Record{
			Obs:     opts.Obs,
			ObsAS:   opts.LocalAS,
			Prefix:  network,
			Path:    full,
			Learned: opts.Learned,
		})
		st.Routes++
		if best {
			st.Best++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, rep, err
	}
	if pathCol < 0 {
		return nil, rep, fmt.Errorf("lg: no \"Network ... Path\" header found")
	}
	return st, rep, nil
}

func hasASSet(toks []string) bool {
	for _, t := range toks {
		if strings.ContainsAny(t, "{}") {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
