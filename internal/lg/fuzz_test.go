package lg

import (
	"strings"
	"testing"

	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
)

// FuzzLGParse fuzzes the looking-glass table parser, seeded with the
// sample "show ip bgp" fixture and mutations of it. The parser must
// never panic and every record it emits must pass Valid().
func FuzzLGParse(f *testing.F) {
	f.Add(sampleTable)
	// Truncations and ragged variants of the valid table.
	f.Add(sampleTable[:len(sampleTable)/2])
	f.Add(strings.ReplaceAll(sampleTable, "0 4006", "x y"))
	f.Add(strings.ReplaceAll(sampleTable, "Network", "NetWork"))
	f.Add("   Network Path\n*>\n* x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		ds := &dataset.Dataset{}
		st, rep, err := ParseReport(strings.NewReader(input),
			Options{Obs: "fuzz", LocalAS: 65000}, ingest.Options{MaxRecordErrors: -1}, ds)
		if err != nil {
			return // missing header or I/O error: fine, just no panic
		}
		for i := range ds.Records {
			if verr := ds.Records[i].Valid(); verr != nil {
				t.Fatalf("parser emitted invalid record %d: %v", i, verr)
			}
		}
		if st.Malformed != rep.Skipped {
			t.Fatalf("Malformed=%d but report counts %d skips", st.Malformed, rep.Skipped)
		}
	})
}
