package lg

import (
	"errors"
	"strings"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
)

const sampleTable = `BGP table version is 1234, local router ID is 198.32.162.100
Status codes: s suppressed, d damped, h history, * valid, > best, i - internal
Origin codes: i - IGP, e - EGP, ? - incomplete

   Network          Next Hop            Metric LocPrf Weight Path
*> 3.0.0.0          205.215.45.50            0             0 4006 701 80 i
*  4.17.225.0/24    157.130.182.254          0             0 701 6389 8063 19198 i
*>                  157.130.182.253                        0 7018 6389 8063 19198 i
*  5.0.0.0/8        10.0.0.1                 0             0 13237 {3320,3356} e
s  6.1.0.0/16       10.0.0.2                 0             0 701 ?
*> 198.51.100.0/24  10.0.0.3                 0             0 3356 24249 ?
`

func TestParse(t *testing.T) {
	ds := &dataset.Dataset{}
	st, err := Parse(strings.NewReader(sampleTable), Options{Obs: "lg1", LocalAS: 65000, Learned: 77}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if st.Routes != 4 {
		t.Fatalf("routes=%d stats=%+v records=%+v", st.Routes, st, ds.Records)
	}
	if st.Best != 3 {
		t.Errorf("best=%d", st.Best)
	}
	if st.SkippedAS != 1 {
		t.Errorf("skippedAS=%d", st.SkippedAS)
	}
	for _, r := range ds.Records {
		if err := r.Valid(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
		if r.ObsAS != 65000 || r.Obs != "lg1" || r.Learned != 77 {
			t.Errorf("metadata wrong: %+v", r)
		}
		if first, _ := r.Path.First(); first != 65000 {
			t.Errorf("path not prepended with local AS: %v", r.Path)
		}
	}
	// The continuation line must inherit the previous network.
	found := false
	for _, r := range ds.Records {
		if r.Prefix == "4.17.225.0/24" && r.Path.Equal(bgp.Path{65000, 7018, 6389, 8063, 19198}) {
			found = true
		}
	}
	if !found {
		t.Errorf("continuation route missing: %+v", ds.Records)
	}
	// The suppressed route (s) must be dropped.
	for _, r := range ds.Records {
		if r.Prefix == "6.1.0.0/16" {
			t.Error("suppressed route parsed")
		}
	}
}

func TestParseBestOnly(t *testing.T) {
	ds := &dataset.Dataset{}
	st, err := Parse(strings.NewReader(sampleTable), Options{Obs: "lg1", LocalAS: 65000, BestOnly: true}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if st.Routes != 3 || st.SkippedNB != 2 { // the alternate path and the AS-set line are both non-best
		t.Fatalf("stats=%+v", st)
	}
	for _, r := range ds.Records {
		if r.Prefix == "4.17.225.0/24" && r.Path.Contains(701) {
			t.Error("non-best route kept despite BestOnly")
		}
	}
}

func TestParseErrors(t *testing.T) {
	ds := &dataset.Dataset{}
	if _, err := Parse(strings.NewReader(sampleTable), Options{}, ds); err == nil {
		t.Error("missing options accepted")
	}
	if _, err := Parse(strings.NewReader("no header here\n* 1.0.0.0 x 0 1 i\n"), Options{Obs: "x", LocalAS: 1}, ds); err == nil {
		t.Error("missing header accepted")
	}
}

func TestParseRaggedLines(t *testing.T) {
	table := `   Network          Next Hop            Metric LocPrf Weight Path
*> 3.0.0.0          205.215.45.50            0             0 4006 701 i
*> short
garbage line
*> 9.9.9.0/24       10.0.0.1                 0             0 bogus path i
`
	ds := &dataset.Dataset{}
	st, err := Parse(strings.NewReader(table), Options{Obs: "lg", LocalAS: 2}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if st.Routes != 1 {
		t.Fatalf("routes=%d stats=%+v", st.Routes, st)
	}
	if st.Malformed != 2 {
		t.Errorf("malformed=%d", st.Malformed)
	}
}

func TestParseFeedsPipeline(t *testing.T) {
	// Parsed looking-glass output must work as model input.
	table := `   Network          Next Hop            Metric LocPrf Weight Path
*> 192.0.2.0/24     10.0.0.1                 0             0 20 40 i
*  192.0.2.0/24     10.0.0.2                 0             0 30 40 i
`
	ds := &dataset.Dataset{}
	if _, err := Parse(strings.NewReader(table), Options{Obs: "lg", LocalAS: 10}, ds); err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	if ds.Len() != 2 {
		t.Fatalf("records=%d", ds.Len())
	}
	paths := ds.ObservedPaths("192.0.2.0/24")
	if len(paths[10]) != 2 {
		t.Fatalf("diversity lost: %+v", paths)
	}
}

// TestParseReportStrictAndBudget: strict options abort on the first
// malformed route line; a finite budget converts excess skips into a
// typed budget error, while the default Parse stays lenient-unlimited.
func TestParseReportStrictAndBudget(t *testing.T) {
	table := `   Network          Next Hop            Metric LocPrf Weight Path
*> 3.0.0.0          205.215.45.50            0             0 4006 701 i
*> short
garbage line
*> 9.9.9.0/24       10.0.0.1                 0             0 bogus path i
*> bad2
*> bad3
`
	opts := Options{Obs: "lg", LocalAS: 2}

	ds := &dataset.Dataset{}
	_, _, err := ParseReport(strings.NewReader(table), opts, ingest.Options{Strict: true}, ds)
	if err == nil {
		t.Fatal("strict parse accepted malformed route line")
	}
	if !strings.Contains(err.Error(), "record 3") {
		t.Fatalf("strict error does not name the failing line: %v", err)
	}

	ds = &dataset.Dataset{}
	_, _, err = ParseReport(strings.NewReader(table), opts, ingest.Options{MaxRecordErrors: 2}, ds)
	var be *ingest.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetExceededError over budget 2, got %v", err)
	}

	ds = &dataset.Dataset{}
	st, rep, err := ParseReport(strings.NewReader(table), opts, ingest.Options{MaxRecordErrors: -1}, ds)
	if err != nil {
		t.Fatalf("unlimited lenient parse: %v", err)
	}
	if st.Malformed != rep.Skipped || rep.Skipped != 4 {
		t.Fatalf("malformed=%d skipped=%d, want 4/4", st.Malformed, rep.Skipped)
	}
	if st.Routes != 1 {
		t.Fatalf("routes=%d, want 1", st.Routes)
	}
}
