package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/obs"
	"asmodel/internal/sim"
)

var (
	mRequests = obs.GetCounter("serve_requests_total", "prediction requests accepted (post-shedding)")
	mReqHist  = obs.Default().Histogram("serve_request_seconds", "prediction request latency",
		obs.ExpBuckets(0.0001, 2, 16))
	mShed     = obs.GetCounter("serve_shed_total", "requests shed with 429 (in-flight bound reached)")
	mUnready  = obs.GetCounter("serve_unready_total", "requests refused with 503 (draining or no snapshot)")
	mTimeouts = obs.GetCounter("serve_timeouts_total", "requests that exceeded the per-request deadline (504)")
	mPanics   = obs.GetCounter("serve_panics_recovered_total", "request panics recovered into 500s")
	mInflight = obs.GetGauge("serve_inflight", "prediction requests currently executing")
)

// apiError is the JSON error body every non-200 carries: a human
// message plus a machine-matchable kind (bad_request, unknown_prefix,
// unknown_vantage, unready, shed, timeout, diverged, panic,
// reload_failed, internal).
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, apiError{Error: msg, Kind: kind})
}

// Handler returns the server's HTTP surface:
//
//	GET  /v1/predict?vantage=AS&prefix=P[&k=N]  prediction query
//	POST /-/reload                              validated hot-swap
//	GET  /-/snapshot                            serving-snapshot info
//	GET  /healthz, /readyz                      probes (readyz follows Ready)
//	GET  /metrics, /metrics.json, /debug/...    obs debug surface
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/predict", s.guard(s.handlePredict))
	mux.HandleFunc("POST /-/reload", s.recovered(s.handleReload))
	mux.HandleFunc("GET /-/snapshot", s.recovered(s.handleSnapshot))
	mux.Handle("/", obs.HandlerReady(obs.Default(), s.Ready))
	return mux
}

// recovered converts handler panics into typed 500s with the stack
// captured to the log — one bad request cannot take the daemon down.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				mPanics.Inc()
				s.cfg.Logf("serve: panic serving %s: %v\n%s", r.URL.Path, v, debug.Stack())
				writeErr(w, http.StatusInternalServerError, "panic", "internal panic (recovered)")
			}
		}()
		h(w, r)
	}
}

// guard is the degradation chain in front of prediction handlers:
// panic recovery, readiness (503 while draining or before the first
// snapshot), bounded in-flight with load shedding (429 + Retry-After),
// and the per-request deadline.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return s.recovered(func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			mUnready.Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "unready", "no serving snapshot or drain in progress")
			return
		}
		select {
		case s.inflight <- struct{}{}:
		default:
			mShed.Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "shed", "in-flight request bound reached, retry later")
			return
		}
		defer func() { <-s.inflight }()
		mInflight.Add(1)
		defer mInflight.Add(-1)
		mRequests.Inc()
		start := time.Now()
		defer func() { mReqHist.Observe(time.Since(start).Seconds()) }()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	prefix := q.Get("prefix")
	if prefix == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "missing prefix parameter")
		return
	}
	vantageStr := q.Get("vantage")
	if vantageStr == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "missing vantage parameter")
		return
	}
	vantage64, err := strconv.ParseUint(vantageStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "vantage must be an AS number: "+err.Error())
		return
	}
	k := s.cfg.MaxAlternates
	if ks := q.Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "k must be an integer: "+err.Error())
			return
		}
	}

	// Pin the snapshot once: a hot-swap mid-request must not mix
	// snapshots within one response.
	snap := s.snap.Load()
	pred, err := snap.Predict(r.Context(), prefix, bgp.ASN(vantage64), k)
	if err != nil {
		s.writePredictErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, pred)
}

func (s *Server) writePredictErr(w http.ResponseWriter, r *http.Request, err error) {
	var unknownPrefix *ErrUnknownPrefix
	var unknownVantage *ErrUnknownVantage
	var panicErr *PanicError
	var divergeErr *sim.DivergenceError
	switch {
	case errors.As(err, &unknownPrefix):
		writeErr(w, http.StatusNotFound, "unknown_prefix", err.Error())
	case errors.As(err, &unknownVantage):
		writeErr(w, http.StatusNotFound, "unknown_vantage", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		mTimeouts.Inc()
		writeErr(w, http.StatusGatewayTimeout, "timeout", "prediction exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		// Client went away; status is best-effort.
		writeErr(w, http.StatusServiceUnavailable, "canceled", "request canceled")
	case errors.As(err, &panicErr):
		mPanics.Inc()
		s.cfg.Logf("serve: %v\n%s", panicErr, panicErr.Stack)
		writeErr(w, http.StatusInternalServerError, "panic", panicErr.Error())
	case errors.As(err, &divergeErr):
		writeErr(w, http.StatusInternalServerError, "diverged", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// reloadResponse is the POST /-/reload success body.
type reloadResponse struct {
	Seq       int64  `json:"seq"`
	Source    string `json:"source"`
	Origin    string `json:"origin"`
	Iteration int    `json:"iteration"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Reload(r.Context())
	if err != nil {
		var rerr *ReloadError
		if errors.As(err, &rerr) && rerr.RolledBack {
			// 409: the request conflicted with the state of the source
			// file; the previous snapshot is still serving.
			writeErr(w, http.StatusConflict, "reload_failed", err.Error())
			return
		}
		writeErr(w, http.StatusInternalServerError, "reload_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{
		Seq: snap.Seq, Source: snap.Source, Origin: snap.Origin, Iteration: snap.Iteration,
	})
}

// snapshotResponse is the GET /-/snapshot body.
type snapshotResponse struct {
	Seq            int64     `json:"seq"`
	Source         string    `json:"source"`
	Origin         string    `json:"origin"`
	Iteration      int       `json:"iteration"`
	LoadedAt       time.Time `json:"loaded_at"`
	Prefixes       int       `json:"prefixes"`
	QuasiRouters   int       `json:"quasi_routers"`
	CachedPrefixes int       `json:"cached_prefixes"`
	Ready          bool      `json:"ready"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, http.StatusServiceUnavailable, "unready", "no serving snapshot")
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{
		Seq:            snap.Seq,
		Source:         snap.Source,
		Origin:         snap.Origin,
		Iteration:      snap.Iteration,
		LoadedAt:       snap.LoadedAt,
		Prefixes:       snap.base.Universe.Len(),
		QuasiRouters:   snap.base.NumQuasiRouters(),
		CachedPrefixes: snap.CachedPrefixes(),
		Ready:          s.Ready(),
	})
}
