package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/model"
	"asmodel/internal/obs"
)

var (
	mReloads     = obs.GetCounter("serve_reloads_total", "successful snapshot hot-swaps (including the boot load)")
	mReloadFails = obs.GetCounter("serve_reload_failures_total", "reload attempts that failed to load or validate")
	mRollbacks   = obs.GetCounter("serve_rollbacks_total", "failed reloads rolled back while a previous snapshot kept serving")
	mSnapSeq     = obs.GetGauge("serve_snapshot_seq", "sequence number of the serving snapshot")
	mSnapIter    = obs.GetGauge("serve_snapshot_iteration", "refinement iteration of the serving snapshot")
)

// Defaults for Config's zero values.
const (
	DefaultProbes         = 8
	DefaultMaxInflight    = 64
	DefaultRequestTimeout = 2 * time.Second
	DefaultDrainTimeout   = 10 * time.Second
	DefaultAlternates     = 3
)

// Config parameterizes a prediction server. The zero value is not
// usable: one of CheckpointPath or ModelPath must be set (or the
// snapshot installed directly via SetModel).
type Config struct {
	// CheckpointPath loads the model out of a refinement checkpoint
	// (asmodel-checkpoint-v1) or a stream state file
	// (asmodel-stream-cursor-v1, whose embedded checkpoint is read
	// through the cursor header), falling back to its ".bak" when the
	// primary is corrupt — the same recovery LoadCheckpointFile gives
	// the resume path. Pointing this at an `asmodel stream` -state file
	// hot-swaps the served model after every committed batch.
	CheckpointPath string
	// ModelPath loads a plain SaveModel stream instead; ignored when
	// CheckpointPath is set.
	ModelPath string
	// Addr is the HTTP listen address (":0" picks a free port).
	Addr string
	// Probes is how many sample predictions a candidate snapshot must
	// answer divergence-free before it may replace the serving one
	// (0 = DefaultProbes, negative = probing disabled).
	Probes int
	// MaxInflight bounds concurrently served prediction requests;
	// excess load is shed with 429 + Retry-After instead of queueing
	// toward collapse (0 = DefaultMaxInflight).
	MaxInflight int
	// RequestTimeout is the per-request deadline; a propagation that
	// overruns it turns into a typed 504 (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// DrainTimeout bounds the SIGINT/SIGTERM graceful drain; requests
	// still running after it are cut off and Run returns *DrainError
	// (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// WatchInterval polls CheckpointPath/ModelPath for changes and
	// hot-swaps automatically (0 disables the watcher; POST /-/reload
	// always works).
	WatchInterval time.Duration
	// WatchDebounce makes the watcher wait until the source file's
	// stamp has been stable for this long before reloading, so a
	// producer committing rapid successive checkpoints (asmodel stream
	// under a fast batch cadence) triggers one swap per quiet period
	// instead of one per write (0 reloads immediately on change).
	WatchDebounce time.Duration
	// MaxAlternates is the default top-k alternates per response when
	// the query does not pass ?k= (0 = DefaultAlternates, negative =
	// none).
	MaxAlternates int
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// OnReady, when set, is called once with the bound listen address
	// after the server starts accepting (useful with Addr ":0").
	OnReady func(addr string)
}

func (c Config) norm() Config {
	if c.Probes == 0 {
		c.Probes = DefaultProbes
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxAlternates == 0 {
		c.MaxAlternates = DefaultAlternates
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// sourcePath returns the file the server loads snapshots from.
func (c Config) sourcePath() string {
	if c.CheckpointPath != "" {
		return c.CheckpointPath
	}
	return c.ModelPath
}

// ValidationError reports a candidate snapshot that loaded but failed
// its pre-swap self-check; the serving snapshot is untouched.
type ValidationError struct {
	Probes int    // probes attempted
	Prefix string // prefix of the failing probe ("" when none ran)
	Err    error
}

func (e *ValidationError) Error() string {
	if e.Prefix != "" {
		return fmt.Sprintf("serve: snapshot validation failed on prefix %s (after %d probes): %v", e.Prefix, e.Probes, e.Err)
	}
	return fmt.Sprintf("serve: snapshot validation failed: %v", e.Err)
}

func (e *ValidationError) Unwrap() error { return e.Err }

// ReloadError reports a failed reload attempt. When RolledBack is true
// a previous snapshot is still serving; otherwise the server has no
// snapshot yet (boot failure).
type ReloadError struct {
	Path       string
	RolledBack bool
	Err        error
}

func (e *ReloadError) Error() string {
	verdict := "no snapshot installed"
	if e.RolledBack {
		verdict = "rolled back to serving snapshot"
	}
	return fmt.Sprintf("serve: reload of %s failed (%s): %v", e.Path, verdict, e.Err)
}

func (e *ReloadError) Unwrap() error { return e.Err }

// DrainError reports a shutdown drain that exceeded its deadline: the
// listener closed cleanly but some accepted requests were cut off.
type DrainError struct {
	Timeout time.Duration
	Err     error
}

func (e *DrainError) Error() string {
	return fmt.Sprintf("serve: drain deadline (%v) exceeded, in-flight requests aborted: %v", e.Timeout, e.Err)
}

func (e *DrainError) Unwrap() error { return e.Err }

// Server is a route-prediction daemon: an atomically swappable Snapshot
// behind an HTTP surface with load shedding, deadlines and drain.
type Server struct {
	cfg Config

	snap     atomic.Pointer[Snapshot]
	nextSeq  atomic.Int64
	inflight chan struct{}
	draining atomic.Bool

	// reloadMu serializes load-and-swap; queries never take it.
	reloadMu chMutex

	httpSrv *http.Server
	ln      net.Listener
}

// chMutex is a channel-based mutex so reloads can respect context
// cancellation while queued behind another reload.
type chMutex chan struct{}

func (m chMutex) lock(ctx context.Context) error {
	select {
	case m <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m chMutex) unlock() { <-m }

// New builds a Server. No I/O happens until Reload or Run.
func New(cfg Config) *Server {
	cfg = cfg.norm()
	return &Server{
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.MaxInflight),
		reloadMu: make(chMutex, 1),
	}
}

// Snapshot returns the serving snapshot, or nil before the first
// successful load.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Ready reports whether the server can answer predictions: a snapshot
// is installed and no drain is in progress. /readyz follows it.
func (s *Server) Ready() bool { return !s.draining.Load() && s.snap.Load() != nil }

// SetModel installs an in-memory model as the serving snapshot,
// bypassing file loading (tests and embedders). It runs the same
// validation probes as a file reload.
func (s *Server) SetModel(ctx context.Context, m *model.Model) error {
	return s.install(ctx, func() (*Snapshot, error) {
		snap := NewSnapshot(m, s.cfg.MaxInflight)
		snap.Origin = "memory"
		return snap, nil
	}, "(in-memory model)")
}

// Reload loads the configured checkpoint/model file aside, validates it
// with sample predictions, and atomically swaps it in. On any failure —
// unreadable file, truncation, corrupt content, probe divergence — the
// serving snapshot keeps serving and a *ReloadError reports the
// rollback. Concurrent reloads serialize; queries are never blocked by
// a reload.
func (s *Server) Reload(ctx context.Context) (*Snapshot, error) {
	path := s.cfg.sourcePath()
	if path == "" {
		return nil, errors.New("serve: no checkpoint or model path configured")
	}
	var snap *Snapshot
	err := s.install(ctx, func() (*Snapshot, error) { return s.loadFile(path) }, path)
	if err == nil {
		snap = s.snap.Load()
	}
	return snap, err
}

// install runs build+validate+swap under the reload lock.
func (s *Server) install(ctx context.Context, build func() (*Snapshot, error), what string) error {
	if err := s.reloadMu.lock(ctx); err != nil {
		return err
	}
	defer s.reloadMu.unlock()

	fail := func(err error) error {
		mReloadFails.Inc()
		rolledBack := s.snap.Load() != nil
		if rolledBack {
			mRollbacks.Inc()
		}
		s.cfg.Logf("serve: reload of %s failed: %v (rolled back: %v)", what, err, rolledBack)
		return &ReloadError{Path: what, RolledBack: rolledBack, Err: err}
	}

	snap, err := build()
	if err != nil {
		return fail(err)
	}
	if err := s.validate(ctx, snap); err != nil {
		return fail(err)
	}
	snap.Seq = s.nextSeq.Add(1)
	s.snap.Store(snap)
	mReloads.Inc()
	mSnapSeq.Set(snap.Seq)
	mSnapIter.Set(int64(snap.Iteration))
	s.cfg.Logf("serve: snapshot %d serving (%s, %d prefixes, %d quasi-routers)",
		snap.Seq, describeSource(snap), snap.base.Universe.Len(), snap.base.NumQuasiRouters())
	return nil
}

func describeSource(snap *Snapshot) string {
	if snap.Source == "" {
		return snap.Origin
	}
	return fmt.Sprintf("%s %s", snap.Origin, snap.Source)
}

// loadFile builds a candidate snapshot from the configured file.
func (s *Server) loadFile(path string) (*Snapshot, error) {
	if s.cfg.CheckpointPath != "" {
		cp, err := model.LoadCheckpointFile(path)
		if err != nil {
			return nil, err
		}
		snap := NewSnapshot(cp.Model, s.cfg.MaxInflight)
		snap.Origin = "checkpoint"
		snap.Source = cp.Source
		snap.Iteration = cp.Iteration
		return snap, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := model.Load(f)
	if err != nil {
		return nil, err
	}
	snap := NewSnapshot(m, s.cfg.MaxInflight)
	snap.Origin = "model"
	snap.Source = path
	return snap, nil
}

// validate runs the candidate snapshot through cfg.Probes sample
// predictions spread across the prefix universe. Every probe must
// complete without error (divergence, missing origins, panic). The
// candidate's cache keeps the probe results, so a validated snapshot
// starts warm.
func (s *Server) validate(ctx context.Context, snap *Snapshot) error {
	if s.cfg.Probes < 0 {
		return nil
	}
	u := snap.base.Universe
	n := u.Len()
	if n == 0 {
		return &ValidationError{Err: errors.New("empty prefix universe")}
	}
	probes := s.cfg.Probes
	if probes > n {
		probes = n
	}
	ran := 0
	for i := 0; i < probes; i++ {
		id := bgp.PrefixID(i * n / probes)
		if !probeable(snap.base, id) {
			continue
		}
		if _, _, err := snap.prefix(ctx, id); err != nil {
			return &ValidationError{Probes: ran + 1, Prefix: u.Name(id), Err: err}
		}
		ran++
	}
	if ran == 0 {
		return &ValidationError{Err: fmt.Errorf("no probeable prefix among %d sampled (all missing origins)", probes)}
	}
	return nil
}

// probeable reports whether the prefix has at least one origin AS with
// quasi-routers — i.e. RunPrefix can propagate it.
func probeable(m *model.Model, id bgp.PrefixID) bool {
	for _, asn := range m.Universe.Origins(id) {
		if len(m.QuasiRouters(asn)) > 0 {
			return true
		}
	}
	return false
}

// fileStamp is the change-detection fingerprint the watcher polls.
type fileStamp struct {
	mod  time.Time
	size int64
}

func stampOf(path string) fileStamp {
	fi, err := os.Stat(path)
	if err != nil {
		return fileStamp{}
	}
	return fileStamp{fi.ModTime(), fi.Size()}
}

// watch polls the source file and reloads on mtime/size changes until
// ctx is done. last is the baseline stamp, captured BEFORE the boot
// load: a file rewritten between that load and the watcher's first tick
// still differs from the baseline and is picked up, instead of being
// silently adopted as the baseline and ignored until the next change.
// With WatchDebounce set, a detected change is held until the stamp has
// stayed unchanged for the debounce window, so a burst of commits
// (a streaming producer) costs one validated hot-swap, not one per
// write. Reload failures roll back and are retried on the next change.
func (s *Server) watch(ctx context.Context, last fileStamp) {
	path := s.cfg.sourcePath()
	t := time.NewTicker(s.cfg.WatchInterval)
	defer t.Stop()
	pending := false
	var pendingStamp fileStamp
	var stableSince time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cur := stampOf(path)
		if cur == (fileStamp{}) {
			continue
		}
		if !pending {
			if cur == last {
				continue
			}
			pending = true
			pendingStamp = cur
			stableSince = time.Now()
		} else if cur != pendingStamp {
			// Still being rewritten: restart the quiet-period clock.
			pendingStamp = cur
			stableSince = time.Now()
		}
		if s.cfg.WatchDebounce > 0 && time.Since(stableSince) < s.cfg.WatchDebounce {
			continue
		}
		last = cur
		pending = false
		s.cfg.Logf("serve: %s changed, reloading", path)
		if _, err := s.Reload(ctx); err != nil {
			s.cfg.Logf("serve: watcher reload: %v", err)
		}
	}
}

// Run serves until ctx is canceled: boot load (unless a snapshot is
// already installed), listen, optional watcher, then a graceful drain
// bounded by DrainTimeout. A clean drain returns nil; an overrun drain
// returns *DrainError; listener/boot failures return the underlying
// error.
func (s *Server) Run(ctx context.Context) error {
	// The watcher's baseline is stamped before the boot load so a file
	// rewritten while we load or start up is still detected as a change.
	bootStamp := stampOf(s.cfg.sourcePath())
	if s.snap.Load() == nil {
		if _, err := s.Reload(ctx); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	if s.cfg.OnReady != nil {
		s.cfg.OnReady(ln.Addr().String())
	}
	s.cfg.Logf("serve: listening on %s", ln.Addr())
	if s.cfg.WatchInterval > 0 && s.cfg.sourcePath() != "" {
		go s.watch(ctx, bootStamp)
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: flip unready so probes unroute us, stop accepting, let
	// accepted requests finish within the deadline.
	s.draining.Store(true)
	s.cfg.Logf("serve: draining (deadline %v)", s.cfg.DrainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := s.httpSrv.Shutdown(shutdownCtx); err != nil {
		s.httpSrv.Close()
		return &DrainError{Timeout: s.cfg.DrainTimeout, Err: err}
	}
	s.cfg.Logf("serve: drained cleanly")
	return nil
}

// Addr returns the bound listen address once Run has started listening
// ("" before).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}
