package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/faultinject"
	"asmodel/internal/model"
	"asmodel/internal/topology"
)

func rec(obs string, prefix string, path ...bgp.ASN) dataset.Record {
	return dataset.Record{Obs: dataset.ObsPointID(obs), ObsAS: path[0], Prefix: prefix, Path: bgp.Path(path)}
}

// variantDataset builds a small dataset over ASes 1..5 and prefixes
// P1..P3. The two variants route P1 through different transit ASes, so
// their predictions differ — the property the hot-swap tests use to
// detect a torn read or a stale cache.
func variantDataset(variant int) *dataset.Dataset {
	recs := []dataset.Record{
		rec("o1", "P2", 1, 3),
		rec("o2", "P2", 5, 1, 3),
		rec("o3", "P3", 2, 5),
	}
	if variant == 0 {
		recs = append(recs,
			rec("o4", "P1", 1, 2, 4),
			rec("o5", "P1", 3, 1, 2, 4),
		)
	} else {
		recs = append(recs,
			rec("o4", "P1", 1, 3, 4),
			rec("o5", "P1", 2, 1, 3, 4),
		)
	}
	return &dataset.Dataset{Records: recs}
}

func testModel(t testing.TB, variant int) *model.Model {
	t.Helper()
	ds := variantDataset(variant)
	m, err := model.NewInitial(topology.FromDataset(ds), dataset.NewUniverse(ds))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// predictionTable runs every (vantage, prefix) query against a fresh
// snapshot of m and returns a reference table of the answers.
func predictionTable(t testing.TB, m *model.Model) map[string]string {
	t.Helper()
	return liveTable(t, NewSnapshot(m, 2))
}

// liveTable captures what the serving snapshot itself answers for every
// (vantage, prefix) pair.
func liveTable(t testing.TB, snap *Snapshot) map[string]string {
	t.Helper()
	table := make(map[string]string)
	u := snap.base.Universe
	for id := 0; id < u.Len(); id++ {
		// Validation only requires one probeable prefix, so a snapshot may
		// legitimately carry prefixes it cannot propagate — skip those.
		if !probeable(snap.base, bgp.PrefixID(id)) {
			continue
		}
		for asn := range snap.base.QuasiRouterHistogram() {
			p, err := snap.Predict(context.Background(), u.Name(bgp.PrefixID(id)), asn, 2)
			if err != nil {
				t.Fatalf("live predict %s from %d: %v", u.Name(bgp.PrefixID(id)), asn, err)
			}
			table[fmt.Sprintf("%d/%s", asn, u.Name(bgp.PrefixID(id)))] =
				fmt.Sprintf("%v %s | %s", p.HasRoute, p.Path, strings.Join(p.Paths, ","))
		}
	}
	return table
}

func tablesEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// writeFileAtomic installs content via tmp + rename so a concurrent
// reader (the watcher) never sees a half-written file.
func writeFileAtomic(t testing.TB, path string, data []byte) {
	t.Helper()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

func writeTestCheckpoint(t testing.TB, path string, m *model.Model, iteration int) []byte {
	t.Helper()
	cp := &model.Checkpoint{
		Iteration: iteration,
		Works:     []model.CheckpointWork{{Prefix: "P1", State: "settled"}},
		Model:     m,
	}
	var buf bytes.Buffer
	if err := model.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPredictBasics(t *testing.T) {
	m := testModel(t, 0)
	srv := New(Config{})
	ctx := context.Background()
	if srv.Ready() {
		t.Fatal("ready before any snapshot")
	}
	if err := srv.SetModel(ctx, m); err != nil {
		t.Fatal(err)
	}
	if !srv.Ready() {
		t.Fatal("not ready after SetModel")
	}
	snap := srv.Snapshot()
	if snap.Seq != 1 || snap.Origin != "memory" {
		t.Fatalf("snapshot seq=%d origin=%q, want 1/memory", snap.Seq, snap.Origin)
	}

	p, err := snap.Predict(ctx, "P1", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasRoute || p.Path == "" {
		t.Fatalf("no route predicted: %+v", p)
	}
	if p.SnapshotSeq != 1 {
		t.Fatalf("SnapshotSeq = %d, want 1", p.SnapshotSeq)
	}

	// Second query for the same prefix must come from the cache.
	p2, err := snap.Predict(ctx, "P1", 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Cached {
		t.Fatal("second same-prefix query was not cached")
	}

	if _, err := snap.Predict(ctx, "NOPE", 1, 0); err == nil {
		t.Fatal("unknown prefix accepted")
	} else {
		var up *ErrUnknownPrefix
		if !errors.As(err, &up) {
			t.Fatalf("want *ErrUnknownPrefix, got %T", err)
		}
	}
	if _, err := snap.Predict(ctx, "P1", 999, 0); err == nil {
		t.Fatal("unknown vantage accepted")
	} else {
		var uv *ErrUnknownVantage
		if !errors.As(err, &uv) {
			t.Fatalf("want *ErrUnknownVantage, got %T", err)
		}
	}

	// k caps alternates; k <= 0 returns none.
	p3, err := snap.Predict(ctx, "P1", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p3.Alternates) != 0 {
		t.Fatalf("k=0 returned %d alternates", len(p3.Alternates))
	}
}

// TestVariantsDiffer guards the premise of the swap tests: the two
// variant models must disagree on at least one prediction.
func TestVariantsDiffer(t *testing.T) {
	a := predictionTable(t, testModel(t, 0))
	b := predictionTable(t, testModel(t, 1))
	differ := false
	for k, v := range a {
		if b[k] != v {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("variant models predict identically; swap tests cannot detect torn reads")
	}
}

// TestValidationFailureRollsBack installs a snapshot whose universe has
// no probeable prefix (every origin AS is absent from the graph) and
// checks the swap is refused while the previous snapshot keeps serving.
func TestValidationFailureRollsBack(t *testing.T) {
	ctx := context.Background()
	good := testModel(t, 0)
	srv := New(Config{})
	if err := srv.SetModel(ctx, good); err != nil {
		t.Fatal(err)
	}
	before := srv.Snapshot()
	rollbacks := mRollbacks.Value()
	failures := mReloadFails.Value()

	// A universe whose prefixes originate at AS 99 — which has no
	// quasi-routers in the variant-0 graph.
	badDS := &dataset.Dataset{Records: []dataset.Record{rec("ox", "PX", 99)}}
	bad, err := model.NewInitial(topology.FromDataset(variantDataset(0)), dataset.NewUniverse(badDS))
	if err != nil {
		t.Fatal(err)
	}
	err = srv.SetModel(ctx, bad)
	if err == nil {
		t.Fatal("validation accepted a model with no probeable prefix")
	}
	var rerr *ReloadError
	if !errors.As(err, &rerr) || !rerr.RolledBack {
		t.Fatalf("want *ReloadError with RolledBack, got %T: %v", err, err)
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want wrapped *ValidationError, got: %v", err)
	}
	if srv.Snapshot() != before {
		t.Fatal("serving snapshot changed despite failed validation")
	}
	if mRollbacks.Value() != rollbacks+1 {
		t.Fatalf("rollback counter did not advance: %d -> %d", rollbacks, mRollbacks.Value())
	}
	if mReloadFails.Value() != failures+1 {
		t.Fatalf("failure counter did not advance: %d -> %d", failures, mReloadFails.Value())
	}
	// The survivor still answers.
	if _, err := srv.Snapshot().Predict(ctx, "P1", 1, 0); err != nil {
		t.Fatalf("survivor snapshot broken after rollback: %v", err)
	}
}

// applySchedule pushes the clean bytes through a seeded fault-injection
// reader, absorbing transient errors the way a retry layer would, and
// returns whatever survives: a truncated, bit-flipped, torn or (for
// transient-only schedules) identical copy.
func applySchedule(clean []byte, cfg faultinject.ReaderConfig) []byte {
	fr := faultinject.NewReader(bytes.NewReader(clean), cfg)
	var out []byte
	buf := make([]byte, 512)
	for {
		n, err := fr.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			var te *faultinject.TransientError
			if errors.As(err, &te) {
				continue
			}
			return out
		}
	}
}

// TestReloadFaultMatrix sweeps seeded corruption schedules over the
// checkpoint file and reloads after each one. The invariant under test:
// a reload NEVER interrupts serving. Failed reloads roll back (counter
// advances, snapshot pointer untouched), successful reloads swap
// atomically, and a querier hammering the serving snapshot throughout
// the sweep must see every request answered with the same predictions.
func TestReloadFaultMatrix(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.txt")
	m := testModel(t, 0)
	clean := writeTestCheckpoint(t, path, m, 5)
	want := predictionTable(t, m)

	srv := New(Config{CheckpointPath: path})
	if _, err := srv.Reload(ctx); err != nil {
		t.Fatalf("clean boot load: %v", err)
	}
	// The clean file load must predict exactly what the in-memory model
	// predicts.
	if got := liveTable(t, srv.Snapshot()); !tablesEqual(got, want) {
		t.Fatal("clean checkpoint load predicts differently from the in-memory model")
	}

	// Background querier: predictions must keep flowing — never an
	// error, never a half-loaded snapshot — across every reload attempt.
	stop := make(chan struct{})
	querierErr := make(chan error, 1)
	go func() {
		defer close(querierErr)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			snap := srv.Snapshot()
			id := bgp.PrefixID(i % snap.base.Universe.Len())
			if !probeable(snap.base, id) {
				continue
			}
			name := snap.base.Universe.Name(id)
			_, err := snap.Predict(ctx, name, 1, 1)
			var uv *ErrUnknownVantage
			if err != nil && !errors.As(err, &uv) {
				querierErr <- fmt.Errorf("query during sweep: %w", err)
				return
			}
		}
	}()

	// curTable tracks what the serving snapshot answers; a failed reload
	// must leave it bit-for-bit intact. (A successful reload of benignly
	// corrupted bytes may legitimately change predictions, so the table
	// is re-captured after every swap.)
	curTable := want
	var failed, ok int
	for seed := int64(0); seed < 120; seed++ {
		cfg := faultinject.RandomReaderConfig(seed, int64(len(clean)))
		corrupted := applySchedule(clean, cfg)
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		cur := srv.Snapshot()
		rollbacks := mRollbacks.Value()
		_, err := srv.Reload(ctx)
		if err != nil {
			failed++
			var rerr *ReloadError
			if !errors.As(err, &rerr) || !rerr.RolledBack {
				t.Fatalf("seed %d: want rolled-back *ReloadError, got %T: %v", seed, err, err)
			}
			if srv.Snapshot() != cur {
				t.Fatalf("seed %d: snapshot changed despite failed reload", seed)
			}
			if mRollbacks.Value() != rollbacks+1 {
				t.Fatalf("seed %d: rollback counter did not advance", seed)
			}
			if got := liveTable(t, srv.Snapshot()); !tablesEqual(got, curTable) {
				t.Fatalf("seed %d: failed reload disturbed serving predictions", seed)
			}
		} else {
			ok++
			if !bytes.Equal(corrupted, clean) {
				// A flip can land in bytes the loader tolerates — but the
				// swap must still be a real, validated, newer snapshot.
				t.Logf("seed %d: corrupted bytes still loaded (benign corruption)", seed)
			}
			if srv.Snapshot().Seq != cur.Seq+1 {
				t.Fatalf("seed %d: successful reload did not advance seq", seed)
			}
			curTable = liveTable(t, srv.Snapshot())
		}
	}
	close(stop)
	if err := <-querierErr; err != nil {
		t.Fatal(err)
	}
	if failed == 0 {
		t.Fatal("no schedule corrupted the checkpoint; the sweep proved nothing")
	}
	if ok == 0 {
		t.Fatal("no schedule left the checkpoint loadable; transient-only schedules should")
	}
	t.Logf("fault matrix: %d rolled back, %d reloaded", failed, ok)

	// Restore the clean file: the next reload must succeed again.
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Reload(ctx); err != nil {
		t.Fatalf("reload after restoring clean file: %v", err)
	}
}

// TestReloadBakFallback corrupts the primary checkpoint while a valid
// ".bak" sits beside it: the reload must succeed from the fallback and
// predict exactly what a clean load predicts.
func TestReloadBakFallback(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.txt")
	m := testModel(t, 1)
	clean := writeTestCheckpoint(t, path, m, 7)
	if err := os.WriteFile(path+".bak", clean, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate the primary mid-file: the load must detect it and fall
	// back rather than serve half a model.
	if err := os.WriteFile(path, clean[:len(clean)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{CheckpointPath: path})
	snap, err := srv.Reload(ctx)
	if err != nil {
		t.Fatalf("reload with valid .bak: %v", err)
	}
	if snap.Source != path+".bak" {
		t.Fatalf("Source = %q, want %q", snap.Source, path+".bak")
	}
	if snap.Iteration != 7 {
		t.Fatalf("Iteration = %d, want 7", snap.Iteration)
	}

	want := predictionTable(t, m)
	for key, w := range want {
		var asn bgp.ASN
		var name string
		if _, err := fmt.Sscanf(key, "%d/%s", &asn, &name); err != nil {
			t.Fatal(err)
		}
		p, err := snap.Predict(ctx, name, asn, 2)
		if err != nil {
			t.Fatalf("predict %s: %v", key, err)
		}
		got := fmt.Sprintf("%v %s | %s", p.HasRoute, p.Path, strings.Join(p.Paths, ","))
		if got != w {
			t.Fatalf(".bak predictions differ from clean load at %s:\n got %s\nwant %s", key, got, w)
		}
	}
}

// TestHammerHotSwap: 8+ goroutines hammer the snapshot while another
// repeatedly hot-swaps between two models with different predictions.
// Every answer carries its SnapshotSeq; the swap schedule makes the
// model deterministic per seq (odd = variant 0, even = variant 1), so
// any torn read or stale cache entry shows up as a table mismatch.
func TestHammerHotSwap(t *testing.T) {
	ctx := context.Background()
	ma, mb := testModel(t, 0), testModel(t, 1)
	tables := map[int64]map[string]string{
		1: predictionTable(t, ma), // odd seqs
		0: predictionTable(t, mb), // even seqs
	}
	srv := New(Config{})
	if err := srv.SetModel(ctx, ma); err != nil { // seq 1
		t.Fatal(err)
	}

	const (
		workers  = 8
		requests = 250
		swaps    = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers+1)

	// Swapper: alternate B, A, B, A... so seq parity identifies the model.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			m := mb
			if i%2 == 1 {
				m = ma
			}
			if err := srv.SetModel(ctx, m); err != nil {
				errc <- fmt.Errorf("swap %d: %w", i, err)
				return
			}
		}
	}()

	u := ma.Universe
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				name := u.Name(bgp.PrefixID((w + i) % u.Len()))
				vantage := bgp.ASN(1 + (w+i)%5)
				snap := srv.Snapshot()
				p, err := snap.Predict(ctx, name, vantage, 2)
				if err != nil {
					errc <- fmt.Errorf("worker %d: predict %s from %d: %w", w, name, vantage, err)
					return
				}
				if p.SnapshotSeq != snap.Seq {
					errc <- fmt.Errorf("worker %d: answer seq %d from snapshot seq %d", w, p.SnapshotSeq, snap.Seq)
					return
				}
				want := tables[p.SnapshotSeq%2][fmt.Sprintf("%d/%s", vantage, name)]
				got := fmt.Sprintf("%v %s | %s", p.HasRoute, p.Path, strings.Join(p.Paths, ","))
				if got != want {
					errc <- fmt.Errorf("worker %d: torn/stale read at seq %d %d/%s:\n got %s\nwant %s",
						w, p.SnapshotSeq, vantage, name, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := srv.Snapshot().Seq; got != int64(swaps)+1 {
		t.Fatalf("final seq = %d, want %d", got, swaps+1)
	}
}

// TestWatchReload runs the daemon with a file watcher: rewriting the
// checkpoint hot-swaps automatically, and corrupting it rolls back
// without disturbing the serving snapshot.
func TestWatchReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.txt")
	ma := testModel(t, 0)
	writeTestCheckpoint(t, path, ma, 1)

	ready := make(chan string, 1)
	cfg := Config{
		CheckpointPath: path,
		Addr:           "127.0.0.1:0",
		WatchInterval:  10 * time.Millisecond,
		OnReady:        func(addr string) { ready <- addr },
	}
	srv := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}
	if got := srv.Snapshot().Iteration; got != 1 {
		t.Fatalf("boot iteration = %d, want 1", got)
	}

	// Rewrite with a new iteration (different size via extra work rows):
	// the watcher must swap it in.
	cp := &model.Checkpoint{
		Iteration: 2,
		Works: []model.CheckpointWork{
			{Prefix: "P1", State: "settled"},
			{Prefix: "P2", State: "settled"},
		},
		Model: testModel(t, 1),
	}
	var buf bytes.Buffer
	if err := model.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	// Install atomically (tmp + rename, as real checkpoint writes do):
	// the watcher stats and reads concurrently, and a plain WriteFile
	// would let it read a half-written file whose final stamp it has
	// already recorded — parking the watcher until the next change.
	writeFileAtomic(t, path, buf.Bytes())
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Iteration != 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never swapped in the rewritten checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Corrupt the file: the watcher's reload must roll back, keeping the
	// iteration-2 snapshot serving.
	rollbacks := mRollbacks.Value()
	writeFileAtomic(t, path, buf.Bytes()[:100])
	for mRollbacks.Value() == rollbacks {
		if time.Now().After(deadline) {
			t.Fatal("watcher never attempted the corrupt reload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Snapshot().Iteration; got != 2 {
		t.Fatalf("corrupt watch reload disturbed serving: iteration %d", got)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestWatchDebounce: a burst of rapid checkpoint commits (a streaming
// producer) must coalesce into a single hot-swap of the final state,
// taken only after the file has gone quiet for the debounce window.
func TestWatchDebounce(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.txt")
	ma := testModel(t, 0)
	writeTestCheckpoint(t, path, ma, 1)

	ready := make(chan string, 1)
	cfg := Config{
		CheckpointPath: path,
		Addr:           "127.0.0.1:0",
		WatchInterval:  5 * time.Millisecond,
		WatchDebounce:  150 * time.Millisecond,
		OnReady:        func(addr string) { ready <- addr },
	}
	srv := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}
	reloadsAfterBoot := mReloads.Value()

	// Burst: five commits spaced well inside the debounce window.
	for iter := 2; iter <= 6; iter++ {
		cp := &model.Checkpoint{Iteration: iter, Model: ma}
		var buf bytes.Buffer
		if err := model.WriteCheckpoint(&buf, cp); err != nil {
			t.Fatal(err)
		}
		writeFileAtomic(t, path, buf.Bytes())
		time.Sleep(20 * time.Millisecond)
	}
	// The file went quiet just now: no swap may have happened yet.
	if got := srv.Snapshot().Iteration; got != 1 {
		t.Fatalf("swap happened mid-burst: iteration %d", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Iteration != 6 {
		if time.Now().After(deadline) {
			t.Fatalf("debounced swap never landed (iteration %d)", srv.Snapshot().Iteration)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := mReloads.Value() - reloadsAfterBoot; got != 1 {
		t.Fatalf("burst of 5 commits caused %d reloads, want 1", got)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
