// Package serve turns a refined quasi-router model into a long-lived
// route-prediction service: an immutable model snapshot answering
// (vantage, prefix) → predicted AS-path queries over HTTP/JSON, with
// validated atomic hot-swap of new checkpoints, per-prefix result
// caching invalidated on swap, single-flight coalescing of concurrent
// same-prefix propagations, bounded in-flight load shedding, and a
// drain-on-signal lifecycle. The package is engineered for failure
// first: a corrupt or torn checkpoint, a diverging propagation, a
// panicking prediction or a slow client never take down the serving
// snapshot.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/model"
	"asmodel/internal/obs"
)

var (
	mCacheHits  = obs.GetCounter("serve_cache_hits_total", "predictions answered from the per-prefix cache")
	mCacheMiss  = obs.GetCounter("serve_cache_misses_total", "predictions that required a propagation")
	mCoalesced  = obs.GetCounter("serve_coalesced_total", "requests coalesced onto an in-flight same-prefix propagation")
	mClones     = obs.GetCounter("serve_clones_total", "model clones created for concurrent propagation")
	mPropagates = obs.GetCounter("serve_propagations_total", "per-prefix propagations run by the serving layer")
)

// Alternate is one route a vantage AS considered and eliminated: the
// path, the decision step that killed it, and how deep in the decision
// process it survived (higher = closer call).
type Alternate struct {
	Path         string `json:"path"`
	EliminatedAt string `json:"eliminated_at"`
	Depth        int    `json:"depth"`
}

// Prediction is the service's answer for one (vantage, prefix) query.
type Prediction struct {
	Prefix  string  `json:"prefix"`
	Vantage bgp.ASN `json:"vantage"`
	// HasRoute reports whether any quasi-router of the vantage AS
	// selected a route; Path is empty otherwise.
	HasRoute bool   `json:"has_route"`
	Path     string `json:"path,omitempty"`
	// Paths is every distinct best path across the vantage's
	// quasi-routers (the paper's route diversity), vantage-prepended and
	// sorted; Path is the one the AS-level decision process picks.
	Paths []string `json:"paths,omitempty"`
	// TieBreakStep/TieBreakDepth report the deepest decision step that
	// eliminated a candidate at the vantage (how contested the choice
	// was); "best"/0 when there was no contest.
	TieBreakStep  string `json:"tie_break_step"`
	TieBreakDepth int    `json:"tie_break_depth"`
	// Alternates are eliminated candidates, deepest-surviving first,
	// truncated to the requested k.
	Alternates []Alternate `json:"alternates,omitempty"`
	// SnapshotSeq identifies the snapshot that answered; it changes on
	// every hot-swap.
	SnapshotSeq int64 `json:"snapshot_seq"`
	// Cached reports whether the per-prefix cache answered without a
	// propagation.
	Cached bool `json:"cached"`
}

// vantageResult is one AS's converged decision state for one prefix.
type vantageResult struct {
	hasRoute   bool
	path       string
	paths      []string
	tieStep    bgp.Step
	alternates []Alternate
}

// prefixResult is the extracted outcome of one propagation: the
// decision state of every AS in the model, so one propagation serves
// every vantage.
type prefixResult struct {
	name string
	byAS map[bgp.ASN]*vantageResult
}

// flight is an in-progress propagation other requests for the same
// prefix coalesce onto.
type flight struct {
	done chan struct{}
	res  *prefixResult
	err  error
}

// Snapshot is an immutable serving unit: a quiescent refined model plus
// the mutable serving state scoped to it (clone pool, per-prefix result
// cache, in-flight propagation table). Scoping cache and coalescing
// state to the snapshot makes hot-swap invalidation free: swapping the
// snapshot pointer abandons the old cache wholesale.
type Snapshot struct {
	// Seq is the swap sequence number (1 for the boot snapshot).
	Seq int64
	// Source is the file the model loaded from ("" when handed an
	// in-memory model); for checkpoints it is the primary path or its
	// ".bak" fallback, exactly as LoadCheckpointFile reports.
	Source string
	// Origin is "checkpoint", "model" or "memory".
	Origin string
	// Iteration is the refinement iteration of the checkpoint (0 for
	// plain models).
	Iteration int
	// LoadedAt is when the snapshot was built.
	LoadedAt time.Time

	base *model.Model
	pool chan *model.Model

	mu      sync.Mutex
	cache   map[bgp.PrefixID]*prefixResult
	flights map[bgp.PrefixID]*flight
}

// NewSnapshot wraps a quiescent model for serving. poolSize bounds the
// clone free-list (clones beyond it are dropped for GC, not leaked).
func NewSnapshot(m *model.Model, poolSize int) *Snapshot {
	if poolSize < 1 {
		poolSize = 1
	}
	return &Snapshot{
		base:     m,
		pool:     make(chan *model.Model, poolSize),
		cache:    make(map[bgp.PrefixID]*prefixResult),
		flights:  make(map[bgp.PrefixID]*flight),
		LoadedAt: time.Now(),
		Origin:   "memory",
	}
}

// Model returns the snapshot's canonical model. It must be treated as
// read-only: propagations run on clones.
func (s *Snapshot) Model() *model.Model { return s.base }

// CachedPrefixes returns how many prefixes have cached results.
func (s *Snapshot) CachedPrefixes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// acquire pops a clone from the pool or cuts a fresh one from the
// quiescent base (Model.Clone is safe concurrently on a quiescent
// model).
func (s *Snapshot) acquire() *model.Model {
	select {
	case m := <-s.pool:
		return m
	default:
		mClones.Inc()
		return s.base.Clone()
	}
}

// release returns a clone to the pool, dropping it when full. Clones
// are reusable even after an aborted propagation: RunBudget resets all
// per-prefix state on entry.
func (s *Snapshot) release(m *model.Model) {
	select {
	case s.pool <- m:
	default:
	}
}

// PanicError is a panic recovered inside a prediction propagation,
// attributed to the prefix that raised it — the serving-layer analogue
// of model.WorkerPanicError. The request that hit it gets a 500; the
// snapshot and every other request are unaffected.
type PanicError struct {
	Prefix string
	Value  any
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: panic predicting prefix %s: %v", e.Prefix, e.Value)
}

// predictFault, when non-nil, runs at the head of every leader
// propagation — the seam fault-injection tests use for slow or
// panicking predictions. It must only be set while no server is
// serving.
var predictFault func(prefix string)

// prefix returns the cached or freshly propagated result for id,
// coalescing concurrent same-prefix requests onto one propagation.
func (s *Snapshot) prefix(ctx context.Context, id bgp.PrefixID) (*prefixResult, bool, error) {
	for {
		s.mu.Lock()
		if res, ok := s.cache[id]; ok {
			s.mu.Unlock()
			mCacheHits.Inc()
			return res, true, nil
		}
		if f, ok := s.flights[id]; ok {
			s.mu.Unlock()
			mCoalesced.Inc()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, fmt.Errorf("serve: waiting for prefix %d propagation: %w", id, ctx.Err())
			}
			if f.err == nil {
				return f.res, true, nil
			}
			// The leader failed. If its failure was a cancellation (its
			// client hung up) and we are still live, loop and retry as
			// the new leader rather than inheriting its error.
			if ctx.Err() == nil && isCtxError(f.err) {
				continue
			}
			return nil, false, f.err
		}
		f := &flight{done: make(chan struct{})}
		s.flights[id] = f
		s.mu.Unlock()

		mCacheMiss.Inc()
		f.res, f.err = s.propagate(ctx, id)
		s.mu.Lock()
		if f.err == nil {
			s.cache[id] = f.res
		}
		delete(s.flights, id)
		s.mu.Unlock()
		close(f.done)
		return f.res, false, f.err
	}
}

func isCtxError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// propagate runs the prefix on a pooled clone and extracts every AS's
// decision state. Panics are recovered into *PanicError so a bad
// propagation poisons one request, not the process.
func (s *Snapshot) propagate(ctx context.Context, id bgp.PrefixID) (res *prefixResult, err error) {
	name := s.base.Universe.Name(id)
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Prefix: name, Value: v, Stack: debug.Stack()}
		}
	}()
	if predictFault != nil {
		predictFault(name)
	}
	m := s.acquire()
	if err := m.RunPrefixContext(ctx, id); err != nil {
		s.release(m)
		return nil, err
	}
	mPropagates.Inc()
	res = extract(m, name)
	s.release(m)
	return res, nil
}

// extract reads the converged decision state of every AS off a model
// that just ran one prefix. One extraction serves every vantage of that
// prefix.
func extract(m *model.Model, name string) *prefixResult {
	res := &prefixResult{name: name, byAS: make(map[bgp.ASN]*vantageResult)}
	for asn := range m.QuasiRouterHistogram() {
		res.byAS[asn] = extractAS(m, asn)
	}
	return res
}

func extractAS(m *model.Model, asn bgp.ASN) *vantageResult {
	vr := &vantageResult{}
	var bests []*bgp.Route
	bestSet := make(map[string]bool)
	type altCand struct {
		path string
		step bgp.Step
	}
	altBest := make(map[string]bgp.Step)
	for _, q := range m.QuasiRouters(asn) {
		if b := q.Best(); b != nil {
			bests = append(bests, b)
			p := b.Path.Prepend(asn).String()
			if !bestSet[p] {
				bestSet[p] = true
				vr.paths = append(vr.paths, p)
			}
		}
		cands, elim := q.DecideRIB()
		for i, c := range cands {
			if elim[i] > vr.tieStep {
				vr.tieStep = elim[i]
			}
			if elim[i] == bgp.StepNone {
				continue
			}
			p := c.Path.Prepend(asn).String()
			// Keep the deepest elimination per distinct path: it survived
			// the most decision steps somewhere in the AS.
			if prev, ok := altBest[p]; !ok || elim[i] > prev {
				altBest[p] = elim[i]
			}
		}
	}
	sort.Strings(vr.paths)
	if len(bests) > 0 {
		vr.hasRoute = true
		// The AS-level primary is what the decision process would pick
		// given the quasi-routers' bests as candidates.
		best, _ := bgp.Decide(bgp.QuasiRouterConfig, bests, nil)
		vr.path = bests[best].Path.Prepend(asn).String()
	}
	alts := make([]altCand, 0, len(altBest))
	for p, st := range altBest {
		if bestSet[p] {
			continue // selected by some quasi-router: already in paths
		}
		alts = append(alts, altCand{path: p, step: st})
	}
	sort.Slice(alts, func(i, j int) bool {
		if alts[i].step != alts[j].step {
			return alts[i].step > alts[j].step
		}
		return alts[i].path < alts[j].path
	})
	for _, a := range alts {
		vr.alternates = append(vr.alternates, Alternate{
			Path:         a.path,
			EliminatedAt: a.step.String(),
			Depth:        int(a.step),
		})
	}
	return vr
}

// ErrUnknownVantage reports a vantage AS absent from the model.
type ErrUnknownVantage struct{ AS bgp.ASN }

func (e *ErrUnknownVantage) Error() string { return fmt.Sprintf("serve: unknown vantage AS %d", e.AS) }

// ErrUnknownPrefix reports a prefix absent from the model's universe.
type ErrUnknownPrefix struct{ Prefix string }

func (e *ErrUnknownPrefix) Error() string { return "serve: unknown prefix " + e.Prefix }

// Predict answers one (vantage, prefix) query against this snapshot. k
// caps the number of alternates returned (k <= 0 means none, capped at
// what the decision records contain).
func (s *Snapshot) Predict(ctx context.Context, prefixName string, vantage bgp.ASN, k int) (*Prediction, error) {
	id, ok := s.base.Universe.ID(prefixName)
	if !ok {
		return nil, &ErrUnknownPrefix{Prefix: prefixName}
	}
	res, cached, err := s.prefix(ctx, id)
	if err != nil {
		return nil, err
	}
	vr, ok := res.byAS[vantage]
	if !ok {
		return nil, &ErrUnknownVantage{AS: vantage}
	}
	p := &Prediction{
		Prefix:        prefixName,
		Vantage:       vantage,
		HasRoute:      vr.hasRoute,
		Path:          vr.path,
		Paths:         vr.paths,
		TieBreakStep:  vr.tieStep.String(),
		TieBreakDepth: int(vr.tieStep),
		SnapshotSeq:   s.Seq,
		Cached:        cached,
	}
	if k > len(vr.alternates) {
		k = len(vr.alternates)
	}
	if k > 0 {
		p.Alternates = vr.alternates[:k]
	}
	return p, nil
}
