package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/durable"
	"asmodel/internal/model"
	"asmodel/internal/obs"
)

// LoadGenConfig parameterizes the built-in load generator: a fleet of
// HTTP clients firing seeded-random (vantage, prefix) queries at a real
// in-process daemon, measuring client-side latency.
type LoadGenConfig struct {
	// Requests is the total query count across all clients.
	Requests int
	// Clients is the concurrent client count.
	Clients int
	// Seed drives target selection (same seed → same query stream).
	Seed int64
	// Reloads, when > 0, fires that many POST /-/reload hot-swaps spread
	// through the run, so the benchmark exercises swap-under-load.
	Reloads int
	// K is the alternates parameter sent with every query.
	K int
}

// BenchReport is the schema-versioned load-generator report checked in
// as BENCH_serve.json and gated by make bench-check.
type BenchReport struct {
	Schema     string `json:"schema"`
	Seed       int64  `json:"seed"`
	Requests   int    `json:"requests"`
	Clients    int    `json:"clients"`
	Reloads    int    `json:"reloads"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Hostname   string `json:"hostname,omitempty"`
	Note       string `json:"note"`

	Prefixes     int `json:"prefixes"`
	QuasiRouters int `json:"quasi_routers"`

	// Outcome counters: every request must be accounted for, and
	// errors (non-2xx other than shed) must be zero.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`

	// Client-side latency over successful requests, nanoseconds.
	LatencyP50NS int64 `json:"latency_p50_ns"`
	LatencyP90NS int64 `json:"latency_p90_ns"`
	LatencyP99NS int64 `json:"latency_p99_ns"`
	LatencyMaxNS int64 `json:"latency_max_ns"`

	// Server-side counter deltas over the run.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Coalesced    int64 `json:"coalesced"`
	Propagations int64 `json:"propagations"`
	SwapsApplied int64 `json:"swaps_applied"`
	Rollbacks    int64 `json:"rollbacks"`

	ElapsedNS    int64   `json:"elapsed_ns"`
	RequestsPerS float64 `json:"requests_per_s"`
}

const benchSchema = "asmodel-bench-serve-v1"

// RunLoadGen stands up the server on a loopback port, runs the
// configured query load over real HTTP, and returns the report. The
// passed model becomes the serving snapshot (no file needed); when
// cfg.Reloads > 0 the server's configured source path is re-POSTed that
// many times mid-run.
func RunLoadGen(ctx context.Context, srv *Server, m *model.Model, lg LoadGenConfig) (*BenchReport, error) {
	if lg.Requests <= 0 {
		lg.Requests = 500
	}
	if lg.Clients <= 0 {
		lg.Clients = 8
	}
	if m != nil {
		if err := srv.SetModel(ctx, m); err != nil {
			return nil, err
		}
	}
	snap := srv.Snapshot()
	if snap == nil {
		if _, err := srv.Reload(ctx); err != nil {
			return nil, err
		}
		snap = srv.Snapshot()
	}

	// Run the daemon for real: loopback listener, full middleware chain.
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	ready := make(chan string, 1)
	prevOnReady := srv.cfg.OnReady
	srv.cfg.OnReady = func(addr string) {
		ready <- addr
		if prevOnReady != nil {
			prevOnReady(addr)
		}
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(runCtx) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		return nil, fmt.Errorf("serve: loadgen server exited before ready: %w", err)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	base := "http://" + addr

	// Seeded target streams: every client gets its own rng derived from
	// the seed so the query mix is reproducible at any client count.
	u := snap.base.Universe
	var vantages []bgp.ASN
	for asn := range snap.base.QuasiRouterHistogram() {
		vantages = append(vantages, asn)
	}
	sort.Slice(vantages, func(i, j int) bool { return vantages[i] < vantages[j] })
	if u.Len() == 0 || len(vantages) == 0 {
		stop()
		<-done
		return nil, fmt.Errorf("serve: loadgen needs a non-empty model")
	}

	reg := obs.Default()
	before := counterValues(reg)

	var (
		mu                           sync.Mutex
		latencies                    []time.Duration
		okCount, shedCount, errCount int
	)
	perClient := lg.Requests / lg.Clients
	extra := lg.Requests % lg.Clients
	reloadEvery := 0
	if lg.Reloads > 0 {
		reloadEvery = lg.Requests/lg.Reloads + 1
	}
	var fired int64
	var firedMu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < lg.Clients; c++ {
		n := perClient
		if c < extra {
			n++
		}
		wg.Add(1)
		go func(client, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(lg.Seed + int64(client)*7919))
			httpc := &http.Client{}
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					return
				}
				prefix := u.Name(bgp.PrefixID(rng.Intn(u.Len())))
				vantage := vantages[rng.Intn(len(vantages))]
				url := fmt.Sprintf("%s/v1/predict?vantage=%d&prefix=%s&k=%d", base, vantage, prefix, lg.K)
				t0 := time.Now()
				resp, err := httpc.Get(url)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					errCount++
				} else {
					switch resp.StatusCode {
					case http.StatusOK:
						okCount++
						latencies = append(latencies, lat)
					case http.StatusTooManyRequests:
						shedCount++
					default:
						errCount++
					}
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if reloadEvery > 0 {
					firedMu.Lock()
					fired++
					doReload := fired%int64(reloadEvery) == 0
					firedMu.Unlock()
					if doReload {
						if resp, err := httpc.Post(base+"/-/reload", "", nil); err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				}
			}
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop()
	if err := <-done; err != nil {
		return nil, fmt.Errorf("serve: loadgen server shutdown: %w", err)
	}

	after := counterValues(reg)
	delta := func(name string) int64 { return after[name] - before[name] }

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) int64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return int64(latencies[i])
	}
	var maxLat int64
	if len(latencies) > 0 {
		maxLat = int64(latencies[len(latencies)-1])
	}

	rep := &BenchReport{
		Schema: benchSchema, Seed: lg.Seed,
		Requests: lg.Requests, Clients: lg.Clients, Reloads: lg.Reloads,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Hostname: hostname(),
		Note: "client-side latency over loopback HTTP against an in-process daemon; " +
			"cache hits dominate once the prefix working set is propagated, so p99 tracks " +
			"cold propagations and swap invalidations",
		Prefixes:     snap.base.Universe.Len(),
		QuasiRouters: snap.base.NumQuasiRouters(),
		OK:           okCount,
		Shed:         shedCount,
		Errors:       errCount,
		LatencyP50NS: pct(0.50), LatencyP90NS: pct(0.90), LatencyP99NS: pct(0.99), LatencyMaxNS: maxLat,
		CacheHits:    delta("serve_cache_hits_total"),
		CacheMisses:  delta("serve_cache_misses_total"),
		Coalesced:    delta("serve_coalesced_total"),
		Propagations: delta("serve_propagations_total"),
		SwapsApplied: delta("serve_reloads_total"),
		Rollbacks:    delta("serve_rollbacks_total"),
		ElapsedNS:    int64(elapsed),
		RequestsPerS: float64(okCount+shedCount+errCount) / elapsed.Seconds(),
	}
	return rep, nil
}

// counterValues snapshots the plain counters of a registry (histograms
// excluded) for before/after deltas.
func counterValues(reg *obs.Registry) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range reg.Snapshot() {
		if n, ok := v.(int64); ok {
			out[name] = n
		}
	}
	return out
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return ""
	}
	return h
}

// WriteBenchReport writes the report to path atomically (same
// durability story as checkpoints: tmp + fsync + rename).
func WriteBenchReport(path string, rep *BenchReport) error {
	return durable.WriteFileAtomic(path, durable.Policy{}, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
}
