package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// getJSON fires a GET and decodes the JSON body into v.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func TestHTTPPredictAndErrors(t *testing.T) {
	srv := New(Config{})
	if err := srv.SetModel(context.Background(), testModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var pred Prediction
	if code := getJSON(t, ts.URL+"/v1/predict?vantage=1&prefix=P1&k=2", &pred); code != 200 {
		t.Fatalf("predict = %d, want 200", code)
	}
	if !pred.HasRoute || pred.Path == "" || pred.SnapshotSeq != 1 {
		t.Fatalf("bad prediction: %+v", pred)
	}

	cases := []struct {
		url  string
		code int
		kind string
	}{
		{"/v1/predict?vantage=1", 400, "bad_request"},
		{"/v1/predict?prefix=P1", 400, "bad_request"},
		{"/v1/predict?vantage=abc&prefix=P1", 400, "bad_request"},
		{"/v1/predict?vantage=1&prefix=P1&k=x", 400, "bad_request"},
		{"/v1/predict?vantage=1&prefix=NOPE", 404, "unknown_prefix"},
		{"/v1/predict?vantage=999&prefix=P1", 404, "unknown_vantage"},
	}
	for _, c := range cases {
		var ae apiError
		if code := getJSON(t, ts.URL+c.url, &ae); code != c.code {
			t.Errorf("%s: code %d, want %d", c.url, code, c.code)
		}
		if ae.Kind != c.kind {
			t.Errorf("%s: kind %q, want %q", c.url, ae.Kind, c.kind)
		}
	}

	var sr snapshotResponse
	if code := getJSON(t, ts.URL+"/-/snapshot", &sr); code != 200 {
		t.Fatalf("snapshot = %d, want 200", code)
	}
	if sr.Seq != 1 || sr.Prefixes != 3 || !sr.Ready {
		t.Fatalf("bad snapshot info: %+v", sr)
	}

	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("readyz = %d, want 200", code)
	}
}

func TestHTTPUnreadyBeforeSnapshot(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ae apiError
	if code := getJSON(t, ts.URL+"/v1/predict?vantage=1&prefix=P1", &ae); code != 503 {
		t.Fatalf("predict without snapshot = %d, want 503", code)
	}
	if ae.Kind != "unready" {
		t.Fatalf("kind = %q, want unready", ae.Kind)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz without snapshot = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz must stay 200 while unready, got %d", code)
	}
}

// TestHTTPTimeoutAndPanic injects a slow and a panicking propagation
// through the predictFault seam: the slow one must become a typed 504,
// the panic a typed 500, and the daemon must keep answering afterwards.
func TestHTTPTimeoutAndPanic(t *testing.T) {
	srv := New(Config{
		Probes:         -1, // keep the cache cold so the fault seam fires
		RequestTimeout: 30 * time.Millisecond,
	})
	if err := srv.SetModel(context.Background(), testModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	predictFault = func(prefix string) {
		switch prefix {
		case "P1":
			time.Sleep(120 * time.Millisecond)
		case "P2":
			panic("injected prediction panic")
		}
	}
	t.Cleanup(func() { predictFault = nil })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	timeouts := mTimeouts.Value()
	var ae apiError
	if code := getJSON(t, ts.URL+"/v1/predict?vantage=1&prefix=P1", &ae); code != 504 {
		t.Fatalf("slow predict = %d, want 504", code)
	}
	if ae.Kind != "timeout" {
		t.Fatalf("kind = %q, want timeout", ae.Kind)
	}
	if mTimeouts.Value() != timeouts+1 {
		t.Fatal("timeout counter did not advance")
	}

	panics := mPanics.Value()
	if code := getJSON(t, ts.URL+"/v1/predict?vantage=1&prefix=P2", &ae); code != 500 {
		t.Fatalf("panicking predict = %d, want 500", code)
	}
	if ae.Kind != "panic" {
		t.Fatalf("kind = %q, want panic", ae.Kind)
	}
	if mPanics.Value() != panics+1 {
		t.Fatal("panic counter did not advance")
	}

	// The daemon survived both: an unaffected prefix still answers.
	var pred Prediction
	if code := getJSON(t, ts.URL+"/v1/predict?vantage=1&prefix=P3", &pred); code != 200 {
		t.Fatalf("predict after faults = %d, want 200", code)
	}
	if !pred.HasRoute {
		t.Fatalf("bad prediction after faults: %+v", pred)
	}
}

// TestHTTPShed fills the single in-flight slot with a blocked
// propagation and checks the next request is shed with 429 +
// Retry-After instead of queueing.
func TestHTTPShed(t *testing.T) {
	srv := New(Config{Probes: -1, MaxInflight: 1})
	if err := srv.SetModel(context.Background(), testModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	predictFault = func(prefix string) {
		if prefix == "P1" {
			close(started)
			<-release
		}
	}
	t.Cleanup(func() { predictFault = nil })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/predict?vantage=1&prefix=P1")
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started

	shed := mShed.Value()
	resp, err := http.Get(ts.URL + "/v1/predict?vantage=1&prefix=P2")
	if err != nil {
		t.Fatal(err)
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if ae.Kind != "shed" {
		t.Fatalf("kind = %q, want shed", ae.Kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if mShed.Value() != shed+1 {
		t.Fatal("shed counter did not advance")
	}

	close(release)
	if code := <-firstDone; code != 200 {
		t.Fatalf("blocked request finished with %d, want 200", code)
	}
}

// TestDrainCompletesInflight: canceling the run context must let an
// accepted (and deliberately stalled) request finish with 200 before
// Run returns nil — never-drop-accepted-requests.
func TestDrainCompletesInflight(t *testing.T) {
	ready := make(chan string, 1)
	srv := New(Config{
		Addr:           "127.0.0.1:0",
		Probes:         -1,
		RequestTimeout: 5 * time.Second,
		OnReady:        func(addr string) { ready <- addr },
	})
	if err := srv.SetModel(context.Background(), testModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	predictFault = func(prefix string) {
		if prefix == "P1" {
			close(started)
			<-release
		}
	}
	t.Cleanup(func() { predictFault = nil })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/predict?vantage=1&prefix=P1", addr))
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-started

	// Drain begins with the request still stalled inside the handler.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never flipped unready during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("Run returned while a request was in flight: %v", err)
	default:
	}

	close(release)
	if code := <-reqDone; code != 200 {
		t.Fatalf("in-flight request finished with %d during drain, want 200", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("drain returned %v, want nil", err)
	}
}

// TestDrainDeadlineExceeded: a request stalled past DrainTimeout makes
// Run return a typed *DrainError (the daemon's exit-code-3 path).
func TestDrainDeadlineExceeded(t *testing.T) {
	ready := make(chan string, 1)
	srv := New(Config{
		Addr:           "127.0.0.1:0",
		Probes:         -1,
		RequestTimeout: 5 * time.Second,
		DrainTimeout:   50 * time.Millisecond,
		OnReady:        func(addr string) { ready <- addr },
	})
	if err := srv.SetModel(context.Background(), testModel(t, 0)); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	predictFault = func(prefix string) {
		if prefix == "P1" {
			close(started)
			<-release
		}
	}
	t.Cleanup(func() { predictFault = nil })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}

	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/predict?vantage=1&prefix=P1", addr))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	cancel()
	err := <-done
	var derr *DrainError
	if !errors.As(err, &derr) {
		t.Fatalf("overrun drain returned %T (%v), want *DrainError", err, err)
	}
	close(release)
	<-reqDone
}
