package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"asmodel/internal/bgp"
)

// peerView is the complete externally observable policy state of one
// session direction, in deterministic order.
type peerView struct {
	Local, Remote bgp.RouterID
	EBGP          bool
	Disabled      bool
	Client        bool
	Imports       []ImportActionView
	ExportDenies  []bgp.PrefixID
}

// snapshotPolicies captures every router's every peer view, in network
// order.
func snapshotPolicies(n *Network) []peerView {
	var out []peerView
	for _, r := range n.Routers() {
		for _, p := range r.Peers() {
			v := peerView{
				Local:    p.Local.ID,
				Remote:   p.Remote.ID,
				EBGP:     p.EBGP,
				Disabled: p.Disabled(),
				Client:   p.Client,
			}
			p.VisitImportActions(func(a ImportActionView) { v.Imports = append(v.Imports, a) })
			p.VisitExportDenies(func(id bgp.PrefixID) { v.ExportDenies = append(v.ExportDenies, id) })
			out = append(out, v)
		}
	}
	return out
}

// bestPaths returns every router's best path (or "<none>") after the last
// Run, in network order.
func bestPaths(n *Network) []string {
	out := make([]string, 0, n.NumRouters())
	for _, r := range n.Routers() {
		if b := r.Best(); b != nil {
			out = append(out, b.Path.String())
		} else {
			out = append(out, "<none>")
		}
	}
	return out
}

// cloneFixture builds a diamond-with-tail network carrying one of every
// policy kind: 1-2-4, 1-3-4 diamond plus 4-5 tail, MED steering on 1<-3,
// an export deny on 2->1, an import deny on 1<-2 for another prefix, and a
// disabled direction on 4<-5.
func cloneFixture(t testing.TB) *Network {
	t.Helper()
	net := NewNetwork(bgp.QuasiRouterConfig)
	rs := make([]*Router, 6)
	for i := 1; i <= 5; i++ {
		r, err := net.AddRouter(bgp.ASN(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		rs[i] = r
	}
	p12, p21, _ := net.Connect(rs[1], rs[2])
	p13, _, _ := net.Connect(rs[1], rs[3])
	net.Connect(rs[2], rs[4])
	net.Connect(rs[3], rs[4])
	p45, _, _ := net.Connect(rs[4], rs[5])
	p13.SetImportMED(1, 0)
	p12.SetImportMED(1, 50)
	p21.DenyExport(2)
	p12.DenyImport(3)
	p12.SetImportLocalPref(4, 200)
	p45.SetDisabled(true)
	return net
}

// TestCloneIsolation mutates every kind of policy on a clone and checks
// the original's observable state stays bit-for-bit identical, and that
// the original still computes the same routes afterwards.
func TestCloneIsolation(t *testing.T) {
	net := cloneFixture(t)
	origin := bgp.MakeRouterID(4, 0)
	mustRun(t, net, 1, origin)
	wantBests := bestPaths(net)
	wantPolicies := snapshotPolicies(net)

	clone := net.Clone()
	if got := snapshotPolicies(clone); !reflect.DeepEqual(got, wantPolicies) {
		t.Fatalf("clone policies differ from source:\n got %+v\nwant %+v", got, wantPolicies)
	}
	// The clone starts quiescent regardless of the source's run state.
	for _, r := range clone.Routers() {
		if r.Best() != nil {
			t.Fatalf("clone router %s has run state before any Run", r.ID)
		}
	}

	// Mutate every policy kind on every session of the clone.
	for _, r := range clone.Routers() {
		for _, p := range r.Peers() {
			p.DenyExport(7)
			p.AllowExport(2) // removes the one deny the fixture installed
			p.SetImportMED(1, 999)
			p.SetImportLocalPref(8, 5)
			p.DenyImport(9)
			p.ClearImport(4)
			p.SetDisabled(!p.Disabled())
		}
	}
	if err := clone.Run(1, []bgp.RouterID{origin}); err != nil {
		t.Fatalf("clone Run: %v", err)
	}

	if got := snapshotPolicies(net); !reflect.DeepEqual(got, wantPolicies) {
		t.Errorf("original policies changed by clone mutation:\n got %+v\nwant %+v", got, wantPolicies)
	}
	if got := bestPaths(net); !reflect.DeepEqual(got, wantBests) {
		t.Errorf("original run state changed by clone Run: got %v want %v", got, wantBests)
	}
	mustRun(t, net, 1, origin)
	if got := bestPaths(net); !reflect.DeepEqual(got, wantBests) {
		t.Errorf("original re-Run differs after clone mutation: got %v want %v", got, wantBests)
	}
}

// TestCloneSharedUniverseIndependence checks clones of the same source do
// not interfere with each other either.
func TestCloneIndependentOfSiblings(t *testing.T) {
	net := cloneFixture(t)
	a, b := net.Clone(), net.Clone()
	a.Routers()[0].Peers()[0].DenyExport(11)
	if got := b.Routers()[0].Peers()[0].ExportDenied(11); got {
		t.Error("mutating one clone leaked into a sibling clone")
	}
	if net.Routers()[0].Peers()[0].ExportDenied(11) {
		t.Error("mutating a clone leaked into the source")
	}
}

// TestCloneConcurrentRuns runs 8 clones concurrently — each over its own
// prefix slice — while the source network is read from the main goroutine.
// Its purpose is to fail under -race if Clone shares any mutable state.
func TestCloneConcurrentRuns(t *testing.T) {
	net := cloneFixture(t)
	origin := bgp.MakeRouterID(4, 0)
	mustRun(t, net, 1, origin)
	want := bestPaths(net)

	const workers = 8
	bests := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clone := net.Clone()
			for rep := 0; rep < 20; rep++ {
				if err := clone.Run(1, []bgp.RouterID{origin}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
			bests[w] = bestPaths(clone)
		}(w)
	}
	// Concurrent reads of the source while the clones run.
	for i := 0; i < 100; i++ {
		snapshotPolicies(net)
		_ = net.Config()
		_ = fmt.Sprintf("%v", bestPaths(net))
	}
	wg.Wait()
	for w, got := range bests {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("worker %d converged differently: got %v want %v", w, got, want)
		}
	}
}
