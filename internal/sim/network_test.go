package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"asmodel/internal/bgp"
)

// buildLine creates AS1 - AS2 - ... - ASn, one router per AS, and returns
// the routers.
func buildLine(t testing.TB, n int) (*Network, []*Router) {
	t.Helper()
	net := NewNetwork(bgp.QuasiRouterConfig)
	routers := make([]*Router, n)
	for i := 0; i < n; i++ {
		r, err := net.AddRouter(bgp.ASN(i+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		routers[i] = r
	}
	for i := 0; i+1 < n; i++ {
		if _, _, err := net.Connect(routers[i], routers[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	return net, routers
}

func mustRun(t testing.TB, n *Network, prefix bgp.PrefixID, origins ...bgp.RouterID) {
	t.Helper()
	if err := n.Run(prefix, origins); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestLinePropagation(t *testing.T) {
	net, rs := buildLine(t, 4)
	mustRun(t, net, 1, rs[0].ID)
	wantPaths := []string{"", "1", "2 1", "3 2 1"}
	for i, r := range rs {
		best := r.Best()
		if best == nil {
			t.Fatalf("router %s has no best route", r.ID)
		}
		if got := best.Path.String(); got != wantPaths[i] {
			t.Errorf("router %s best path = %q, want %q", r.ID, got, wantPaths[i])
		}
	}
	if net.MessagesDelivered() == 0 {
		t.Error("expected some messages")
	}
}

func TestConnectErrors(t *testing.T) {
	net := NewNetwork(bgp.QuasiRouterConfig)
	a, _ := net.AddRouter(1, 0)
	b, _ := net.AddRouter(2, 0)
	if _, _, err := net.Connect(a, a); err == nil {
		t.Error("self-connect should fail")
	}
	if _, _, err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Connect(b, a); err == nil {
		t.Error("duplicate session should fail")
	}
	if _, err := net.AddRouter(1, 0); err == nil {
		t.Error("duplicate router should fail")
	}
	if err := net.Run(1, []bgp.RouterID{bgp.MakeRouterID(99, 0)}); err == nil {
		t.Error("unknown origin should fail")
	}
}

// TestDiamondTieBreak: origin AS4 reachable from AS1 via AS2 and AS3 with
// equal-length paths; AS1 must pick the neighbor with the lowest router ID.
func TestDiamondTieBreak(t *testing.T) {
	net := NewNetwork(bgp.QuasiRouterConfig)
	r1, _ := net.AddRouter(1, 0)
	r2, _ := net.AddRouter(2, 0)
	r3, _ := net.AddRouter(3, 0)
	r4, _ := net.AddRouter(4, 0)
	net.Connect(r1, r2)
	net.Connect(r1, r3)
	net.Connect(r2, r4)
	net.Connect(r3, r4)
	mustRun(t, net, 1, r4.ID)
	best := r1.Best()
	if best == nil {
		t.Fatal("no best at AS1")
	}
	if best.Path.String() != "2 4" {
		t.Errorf("AS1 best = %q, want \"2 4\" (lower router ID)", best.Path)
	}
	// Both routes must be in the RIB-In and the loser eliminated at the
	// router-ID step (the paper's potential-RIB-Out situation).
	cands, elim := r1.DecideRIB()
	if len(cands) != 2 {
		t.Fatalf("AS1 RIB has %d candidates", len(cands))
	}
	for i, c := range cands {
		if c.Path.String() == "3 4" && elim[i] != bgp.StepRouterID {
			t.Errorf("path via AS3 eliminated at %v, want router-id", elim[i])
		}
	}
}

func TestImportMEDSteersSelection(t *testing.T) {
	net := NewNetwork(bgp.QuasiRouterConfig)
	r1, _ := net.AddRouter(1, 0)
	r2, _ := net.AddRouter(2, 0)
	r3, _ := net.AddRouter(3, 0)
	r4, _ := net.AddRouter(4, 0)
	p12, _, _ := net.Connect(r1, r2)
	p13, _, _ := net.Connect(r1, r3)
	net.Connect(r2, r4)
	net.Connect(r3, r4)
	// Prefer the (otherwise losing) route via AS3 by giving it a lower MED.
	p13.SetImportMED(1, 0)
	p12.SetImportMED(1, 50)
	mustRun(t, net, 1, r4.ID)
	if got := r1.Best().Path.String(); got != "3 4" {
		t.Errorf("AS1 best = %q, want \"3 4\" after MED steering", got)
	}
	// Clearing the action restores the tie-break outcome.
	p13.ClearImport(1)
	p12.ClearImport(1)
	mustRun(t, net, 1, r4.ID)
	if got := r1.Best().Path.String(); got != "2 4" {
		t.Errorf("AS1 best = %q after clearing, want \"2 4\"", got)
	}
}

func TestImportDeny(t *testing.T) {
	net, rs := buildLine(t, 3)
	rs[2].PeerTo(rs[1].ID).DenyImport(1)
	mustRun(t, net, 1, rs[0].ID)
	if rs[2].Best() != nil {
		t.Errorf("AS3 should have no route, got %v", rs[2].Best())
	}
	if rs[1].Best() == nil {
		t.Error("AS2 should still have a route")
	}
}

func TestExportDeny(t *testing.T) {
	net, rs := buildLine(t, 3)
	rs[1].PeerTo(rs[2].ID).DenyExport(1)
	mustRun(t, net, 1, rs[0].ID)
	if rs[2].Best() != nil {
		t.Errorf("AS3 should have no route (export denied), got %v", rs[2].Best())
	}
	// Filter deletion: allowing export restores reachability.
	rs[1].PeerTo(rs[2].ID).AllowExport(1)
	mustRun(t, net, 1, rs[0].ID)
	if rs[2].Best() == nil {
		t.Error("AS3 should have a route after AllowExport")
	}
	if rs[1].PeerTo(rs[2].ID).ExportDenied(1) {
		t.Error("ExportDenied should be false after AllowExport")
	}
}

func TestImportLocalPrefOverridesLength(t *testing.T) {
	// AS1 sees a 1-hop route from AS2 and a 2-hop route via AS3; raising
	// local-pref on the AS3 session must win despite the longer path.
	net := NewNetwork(bgp.QuasiRouterConfig)
	r1, _ := net.AddRouter(1, 0)
	r2, _ := net.AddRouter(2, 0)
	r3, _ := net.AddRouter(3, 0)
	net.Connect(r1, r2)
	p13, _, _ := net.Connect(r1, r3)
	net.Connect(r3, r2)
	p13.SetImportLocalPref(1, 200)
	mustRun(t, net, 1, r2.ID)
	if got := r1.Best().Path.String(); got != "3 2" {
		t.Errorf("AS1 best = %q, want \"3 2\" with raised local-pref", got)
	}
}

func TestEBGPLoopRejection(t *testing.T) {
	// Triangle 1-2-3. AS1's announcement must not be accepted back by AS1.
	net := NewNetwork(bgp.QuasiRouterConfig)
	r1, _ := net.AddRouter(1, 0)
	r2, _ := net.AddRouter(2, 0)
	r3, _ := net.AddRouter(3, 0)
	net.Connect(r1, r2)
	net.Connect(r2, r3)
	net.Connect(r3, r1)
	mustRun(t, net, 1, r1.ID)
	routes, _ := r1.RIBIn()
	for _, rt := range routes {
		if rt.Path.Contains(1) {
			t.Errorf("AS1 accepted looped path %v", rt.Path)
		}
	}
	// AS1's best remains its local route.
	if len(r1.Best().Path) != 0 {
		t.Errorf("AS1 best should be the local route, got %v", r1.Best().Path)
	}
}

func TestMultipleOrigins(t *testing.T) {
	// Anycast-style: prefix originated at both ends of a 5-AS line. The
	// middle AS picks the closer origin; with equal distance, the lower
	// neighbor router ID wins.
	net, rs := buildLine(t, 5)
	mustRun(t, net, 1, rs[0].ID, rs[4].ID)
	mid := rs[2]
	best := mid.Best()
	if best == nil || len(best.Path) != 2 {
		t.Fatalf("middle best = %v, want a 2-hop path", best)
	}
	if best.Path.String() != "2 1" {
		t.Errorf("middle best = %q, want \"2 1\" (tie-break)", best.Path)
	}
}

func TestIBGPFullMeshAndHotPotato(t *testing.T) {
	// AS10 has three routers in a full iBGP mesh. Routers A and B each have
	// an eBGP session to a router of origin AS20 (two inter-AS links).
	// Router C learns both routes via iBGP and must pick the exit with the
	// lower IGP cost (hot potato), not the lower router ID.
	net := NewNetwork(bgp.GroundTruthConfig)
	a, _ := net.AddRouter(10, 0)
	b, _ := net.AddRouter(10, 1)
	c, _ := net.AddRouter(10, 2)
	oA, _ := net.AddRouter(20, 0)
	oB, _ := net.AddRouter(20, 1)
	net.Connect(a, b)
	net.Connect(a, c)
	net.Connect(b, c)
	net.Connect(oA, oB) // iBGP inside AS20
	net.Connect(a, oA)
	net.Connect(b, oB)
	// IGP costs from c: far from a (cost 10), close to b (cost 1).
	net.IGPCost = func(from, to bgp.RouterID) uint32 {
		if from == c.ID && to == a.ID || from == a.ID && to == c.ID {
			return 10
		}
		return 1
	}
	mustRun(t, net, 1, oA.ID, oB.ID)

	if a.Best() == nil || !a.Best().EBGP {
		t.Fatalf("router a should prefer its eBGP route, got %v", a.Best())
	}
	if b.Best() == nil || !b.Best().EBGP {
		t.Fatalf("router b should prefer its eBGP route, got %v", b.Best())
	}
	cBest := c.Best()
	if cBest == nil {
		t.Fatal("router c has no route")
	}
	if cBest.EBGP {
		t.Fatal("router c has no eBGP session to AS20; its best must be iBGP-learned")
	}
	if cBest.Peer != b.ID {
		t.Errorf("router c exit = %s, want %s (hot potato)", cBest.Peer, b.ID)
	}
	// iBGP-learned routes must not have been re-advertised over iBGP:
	// c must have learned exactly two iBGP routes (from a and from b).
	routes, from := c.RIBIn()
	if len(routes) != 2 {
		t.Fatalf("router c RIB-In size = %d, want 2", len(routes))
	}
	for _, p := range from {
		if p.EBGP {
			t.Error("router c learned an eBGP route from nowhere")
		}
	}
}

func TestIBGPNoReadvertisement(t *testing.T) {
	// Chain a-b-c inside one AS (NOT a full mesh) with an eBGP feed at a:
	// b learns via iBGP from a but must not forward to c.
	net := NewNetwork(bgp.GroundTruthConfig)
	a, _ := net.AddRouter(10, 0)
	b, _ := net.AddRouter(10, 1)
	c, _ := net.AddRouter(10, 2)
	o, _ := net.AddRouter(20, 0)
	net.Connect(a, b)
	net.Connect(b, c)
	net.Connect(o, a)
	mustRun(t, net, 1, o.ID)
	if b.Best() == nil {
		t.Fatal("b should learn the route via iBGP")
	}
	if c.Best() != nil {
		t.Errorf("c must not learn an iBGP-learned route re-advertised by b, got %v", c.Best())
	}
}

func TestExportHookValleyFreeStyle(t *testing.T) {
	// AS2 refuses to export routes not learned from customers: AS1 and AS3
	// both peer with AS2; AS3's prefix must not reach AS1 through AS2.
	net := NewNetwork(bgp.QuasiRouterConfig)
	r1, _ := net.AddRouter(1, 0)
	r2, _ := net.AddRouter(2, 0)
	r3, _ := net.AddRouter(3, 0)
	net.Connect(r1, r2)
	net.Connect(r2, r3)
	// AS2 -> AS1 export: only locally originated routes.
	r2.PeerTo(r1.ID).ExportHook = func(r *bgp.Route) bool { return len(r.Path) == 0 }
	mustRun(t, net, 1, r3.ID)
	if r1.Best() != nil {
		t.Errorf("AS1 must not receive the peer route, got %v", r1.Best())
	}
	if r2.Best() == nil {
		t.Error("AS2 itself should have the route")
	}
}

func TestImportHookDeny(t *testing.T) {
	net, rs := buildLine(t, 3)
	rs[2].PeerTo(rs[1].ID).ImportHook = func(r *bgp.Route) bool { return false }
	mustRun(t, net, 1, rs[0].ID)
	if rs[2].Best() != nil {
		t.Error("import hook deny should drop the route")
	}
}

func TestDivergenceDetected(t *testing.T) {
	// The classic BAD GADGET: a 3-cycle where every AS prefers the route
	// through its clockwise neighbor (longer path) over the direct route.
	// This has no stable solution; the engine must report ErrDiverged.
	// This reproduces the paper's §4.6 observation that preferring longer
	// AS-paths via local-pref "can lead to divergence".
	net := NewNetwork(bgp.QuasiRouterConfig)
	r0, _ := net.AddRouter(10, 0)
	r1, _ := net.AddRouter(11, 0)
	r2, _ := net.AddRouter(12, 0)
	origin, _ := net.AddRouter(99, 0)
	net.Connect(r0, r1)
	net.Connect(r1, r2)
	net.Connect(r2, r0)
	net.Connect(origin, r0)
	net.Connect(origin, r1)
	net.Connect(origin, r2)
	cw := map[bgp.ASN]bgp.ASN{10: 11, 11: 12, 12: 10}
	for _, r := range []*Router{r0, r1, r2} {
		self := r.AS
		for _, p := range r.Peers() {
			p.ImportHook = func(rt *bgp.Route) bool {
				if first, ok := rt.Path.First(); ok && first == cw[self] {
					rt.LocalPref = 200 // prefer the longer, clockwise route
				}
				return true
			}
		}
	}
	net.MaxMessages = 5000
	err := net.Run(1, []bgp.RouterID{origin.ID})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("expected ErrDiverged, got %v", err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DivergenceError, got %T", err)
	}
	if de.Prefix != 1 || de.Budget != 5000 || de.Messages != 5001 {
		t.Errorf("divergence context = %+v", de)
	}
	for _, want := range []string{"prefix 1", "5001 messages", "budget 5000"} {
		if !strings.Contains(de.Error(), want) {
			t.Errorf("error text missing %q: %s", want, de.Error())
		}
	}
	st := net.LastRunStats()
	if !st.Diverged || st.BudgetUsed() <= 1.0 {
		t.Errorf("diverged run stats = %+v", st)
	}
}

// badGadget builds the 3-cycle oscillator of TestDivergenceDetected and
// returns the network plus the origin router.
func badGadget(t testing.TB) (*Network, *Router) {
	t.Helper()
	net := NewNetwork(bgp.QuasiRouterConfig)
	r0, _ := net.AddRouter(10, 0)
	r1, _ := net.AddRouter(11, 0)
	r2, _ := net.AddRouter(12, 0)
	origin, _ := net.AddRouter(99, 0)
	net.Connect(r0, r1)
	net.Connect(r1, r2)
	net.Connect(r2, r0)
	net.Connect(origin, r0)
	net.Connect(origin, r1)
	net.Connect(origin, r2)
	cw := map[bgp.ASN]bgp.ASN{10: 11, 11: 12, 12: 10}
	for _, r := range []*Router{r0, r1, r2} {
		self := r.AS
		for _, p := range r.Peers() {
			p.ImportHook = func(rt *bgp.Route) bool {
				if first, ok := rt.Path.First(); ok && first == cw[self] {
					rt.LocalPref = 200
				}
				return true
			}
		}
	}
	return net, origin
}

// TestRunBudgetOverride: the per-run budget overrides MaxMessages for
// that run only, and a zero override keeps the configured budget.
func TestRunBudgetOverride(t *testing.T) {
	net, origin := badGadget(t)
	net.MaxMessages = 5000
	err := net.RunBudget(context.Background(), 1, []bgp.RouterID{origin.ID}, 40)
	var de *DivergenceError
	if !errors.As(err, &de) || de.Budget != 40 {
		t.Fatalf("override budget not applied: %v", err)
	}
	// Zero override falls back to MaxMessages.
	err = net.RunBudget(context.Background(), 1, []bgp.RouterID{origin.ID}, 0)
	if !errors.As(err, &de) || de.Budget != 5000 {
		t.Fatalf("zero override should keep MaxMessages: %v", err)
	}
	// A convergent topology succeeds under a generous override.
	line, rs := buildLine(t, 4)
	if err := line.RunBudget(context.Background(), 1, []bgp.RouterID{rs[0].ID}, 100000); err != nil {
		t.Fatalf("RunBudget on convergent topology: %v", err)
	}
	if rs[3].Best() == nil {
		t.Error("route did not propagate under budget override")
	}
}

// TestRunContextCanceled: a canceled context aborts the run with an
// error matching context.Canceled, before any message is delivered when
// canceled up front, and mid-loop when canceled during propagation.
func TestRunContextCanceled(t *testing.T) {
	net, rs := buildLine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := net.RunContext(ctx, 1, []bgp.RouterID{rs[0].ID})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if errors.Is(err, ErrDiverged) {
		t.Error("cancellation must not be reported as divergence")
	}
	// The next Run on the same network starts clean.
	mustRun(t, net, 1, rs[0].ID)
	if rs[3].Best() == nil {
		t.Error("network unusable after canceled run")
	}

	// Mid-propagation cancellation: the oscillator would run forever under
	// this budget, so the run can only end via the in-loop context check
	// (or the up-front one if the cancel wins the race — same error).
	gadget, origin := badGadget(t)
	gadget.MaxMessages = 1 << 30
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gadget.RunContext(ctx2, 1, []bgp.RouterID{origin.ID}) }()
	cancel2()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation: want context.Canceled, got %v", err)
	}
}

func TestDeterministicReRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(bgp.QuasiRouterConfig)
	const n = 40
	rs := make([]*Router, n)
	for i := range rs {
		rs[i], _ = net.AddRouter(bgp.ASN(i+1), 0)
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		net.Connect(rs[i], rs[j])
		if k := rng.Intn(n); k != i && rs[i].PeerTo(rs[k].ID) == nil {
			net.Connect(rs[i], rs[k])
		}
	}
	snap := func() []string {
		out := make([]string, n)
		for i, r := range rs {
			if b := r.Best(); b != nil {
				out[i] = b.Path.String()
			}
		}
		return out
	}
	mustRun(t, net, 1, rs[0].ID)
	first := snap()
	for trial := 0; trial < 3; trial++ {
		mustRun(t, net, 1, rs[0].ID)
		again := snap()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("non-deterministic result at router %d: %q vs %q", i, first[i], again[i])
			}
		}
	}
}

// TestShortestPathProperty: on a random policy-free single-router-per-AS
// network, every router's best path length must equal its BFS distance to
// the origin (the decision process reduces to shortest AS-path).
func TestShortestPathProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		net := NewNetwork(bgp.QuasiRouterConfig)
		rs := make([]*Router, n)
		for i := range rs {
			rs[i], _ = net.AddRouter(bgp.ASN(i+1), 0)
		}
		adj := make([][]int, n)
		addEdge := func(i, j int) {
			if i == j || rs[i].PeerTo(rs[j].ID) != nil {
				return
			}
			net.Connect(rs[i], rs[j])
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
		for i := 1; i < n; i++ {
			addEdge(i, rng.Intn(i)) // connected
		}
		extra := rng.Intn(2 * n)
		for e := 0; e < extra; e++ {
			addEdge(rng.Intn(n), rng.Intn(n))
		}
		mustRun(t, net, 1, rs[0].ID)

		// BFS from origin.
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
		q := []int{0}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					q = append(q, v)
				}
			}
		}
		for i, r := range rs {
			best := r.Best()
			if best == nil {
				t.Fatalf("seed %d: router %d unreachable in sim but BFS dist %d", seed, i, dist[i])
			}
			if len(best.Path) != dist[i] {
				t.Fatalf("seed %d: router %d best path len %d, BFS dist %d (path %v)",
					seed, i, len(best.Path), dist[i], best.Path)
			}
		}
	}
}

func TestRIBInAccessors(t *testing.T) {
	net, rs := buildLine(t, 3)
	mustRun(t, net, 7, rs[0].ID)
	if got := net.Prefix(); got != 7 {
		t.Errorf("Prefix() = %d", got)
	}
	mid := rs[1]
	routes, from := mid.RIBIn()
	if len(routes) != 1 || from[0].Remote != rs[0] {
		t.Fatalf("mid RIB-In: %v", routes)
	}
	if mid.RIBInAt(from[0].localIdx) != routes[0] {
		t.Error("RIBInAt mismatch")
	}
	if mid.Local() != nil {
		t.Error("mid should not originate")
	}
	if rs[0].Local() == nil {
		t.Error("origin should have a local route")
	}
	if net.NumRouters() != 3 || net.NumSessions() != 2 {
		t.Errorf("counts: %d routers %d sessions", net.NumRouters(), net.NumSessions())
	}
	if net.Router(rs[1].ID) != rs[1] {
		t.Error("Router lookup failed")
	}
	if net.Router(bgp.MakeRouterID(999, 0)) != nil {
		t.Error("unknown Router lookup should be nil")
	}
	if net.Config() != bgp.QuasiRouterConfig {
		t.Error("Config mismatch")
	}
}

func TestStateResetBetweenRuns(t *testing.T) {
	net, rs := buildLine(t, 3)
	mustRun(t, net, 1, rs[0].ID)
	// Second run with the origin at the other end: no stale state allowed.
	mustRun(t, net, 2, rs[2].ID)
	if rs[0].Local() != nil {
		t.Error("stale local route at old origin")
	}
	if got := rs[0].Best().Path.String(); got != "2 3" {
		t.Errorf("rs[0] best = %q, want \"2 3\"", got)
	}
	if rs[0].Best().Prefix != 2 {
		t.Errorf("stale prefix %d", rs[0].Best().Prefix)
	}
}

func BenchmarkRunLine100(b *testing.B) {
	net, rs := buildLine(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Run(1, []bgp.RouterID{rs[0].ID}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunRandom500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(bgp.QuasiRouterConfig)
	const n = 500
	rs := make([]*Router, n)
	for i := range rs {
		rs[i], _ = net.AddRouter(bgp.ASN(i+1), 0)
	}
	for i := 1; i < n; i++ {
		net.Connect(rs[i], rs[rng.Intn(i)])
		for e := 0; e < 2; e++ {
			j := rng.Intn(n)
			if j != i && rs[i].PeerTo(rs[j].ID) == nil {
				net.Connect(rs[i], rs[j])
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Run(1, []bgp.RouterID{rs[i%n].ID}); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleNetwork_Run() {
	net := NewNetwork(bgp.QuasiRouterConfig)
	a, _ := net.AddRouter(65001, 0)
	b, _ := net.AddRouter(65002, 0)
	net.Connect(a, b)
	net.Run(0, []bgp.RouterID{a.ID})
	fmt.Println(b.Best().Path)
	// Output: 65001
}

func TestRunStats(t *testing.T) {
	net, rs := buildLine(t, 5)
	mustRun(t, net, 7, rs[0].ID)
	st := net.LastRunStats()
	if st.Prefix != 7 {
		t.Errorf("stats prefix = %d, want 7", st.Prefix)
	}
	if st.Messages != net.MessagesDelivered() || st.Messages == 0 {
		t.Errorf("stats messages = %d, MessagesDelivered = %d", st.Messages, net.MessagesDelivered())
	}
	// A line propagation installs one route per downstream session
	// direction plus the reverse announcements; at minimum every router
	// past the origin installed its upstream route.
	if st.RoutesInstalled < 4 {
		t.Errorf("routes installed = %d, want >= 4", st.RoutesInstalled)
	}
	if st.RoutesWithdrawn != 0 || st.RoutesReplaced != 0 {
		t.Errorf("line topology should not withdraw/replace: %+v", st)
	}
	if st.BestChanges < 4 {
		t.Errorf("best changes = %d, want >= 4", st.BestChanges)
	}
	if st.QueueHighWater < 1 {
		t.Errorf("queue high-water = %d", st.QueueHighWater)
	}
	if st.Budget == 0 || st.BudgetUsed() <= 0 || st.BudgetUsed() >= 1 {
		t.Errorf("budget accounting: %+v", st)
	}
	if st.Diverged {
		t.Error("converged run marked diverged")
	}
	if st.Elapsed <= 0 {
		t.Errorf("elapsed = %v", st.Elapsed)
	}

	// A rerun resets the per-run snapshot.
	mustRun(t, net, 8, rs[4].ID)
	if got := net.LastRunStats().Prefix; got != 8 {
		t.Errorf("stats not reset: prefix = %d", got)
	}
}

func TestRunStatsWithdrawals(t *testing.T) {
	net, rs := buildLine(t, 3)
	mustRun(t, net, 1, rs[0].ID)
	// Deny the origin's export and re-run: downstream routers never learn
	// the route this time, and because Run resets per-prefix state there
	// is nothing to install or withdraw — the counters must reflect that
	// rather than leak totals from the previous run.
	rs[0].PeerTo(rs[1].ID).DenyExport(1)
	mustRun(t, net, 1, rs[0].ID)
	st := net.LastRunStats()
	if st.RoutesInstalled != 0 || st.RoutesWithdrawn != 0 {
		t.Errorf("filtered rerun stats = %+v", st)
	}
}
