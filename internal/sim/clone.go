package sim

import "asmodel/internal/bgp"

// Clone returns a deep copy of the network's topology and policies:
// routers, sessions, per-prefix import actions and export denies, the
// disabled/Client session flags, and the import/export hooks. Per-prefix
// run state (Adj-RIB-In, advertisements, best routes, the delivery queue
// and RunStats) is NOT copied — a clone starts quiescent, exactly as if
// Run had never been called, and the next Run rebuilds everything from
// the origins.
//
// Clone is the isolation primitive for parallel per-prefix simulation:
// prefixes are independent (DESIGN.md §5), so a worker pool can give
// each worker its own clone and fan the prefix universe out across them
// with no shared mutable state. Cloning only reads the source network,
// so several goroutines may Clone the same quiescent network
// concurrently; the source must not be mid-Run while clones are taken.
//
// Hook functions (Peer.ImportHook/ExportHook) and the IGPCost callback
// are shared by reference, not copied. The hooks installed by this
// repository close over immutable data (relationship local-prefs,
// valley-free export rules, IGP cost matrices), so sharing them across
// concurrently running clones is safe; callers installing custom hooks
// that mutate captured state must make them concurrency-safe themselves.
func (n *Network) Clone() *Network {
	c := &Network{
		cfg:         n.cfg,
		byID:        make(map[bgp.RouterID]*Router, len(n.byID)),
		IGPCost:     n.IGPCost,
		MaxMessages: n.MaxMessages,
		sessions:    n.sessions,
	}
	c.routers = make([]*Router, len(n.routers))
	for i, r := range n.routers {
		nr := &Router{
			ID:    r.ID,
			AS:    r.AS,
			net:   c,
			bySrc: make(map[bgp.RouterID]int, len(r.bySrc)),
			ribIn: make([]*bgp.Route, len(r.ribIn)),
			adv:   make([]*bgp.Route, len(r.adv)),
		}
		for id, idx := range r.bySrc {
			nr.bySrc[id] = idx
		}
		c.routers[i] = nr
		c.byID[nr.ID] = nr
	}
	// Second pass: sessions, now that every remote router exists.
	for i, r := range n.routers {
		nr := c.routers[i]
		nr.peers = make([]*Peer, len(r.peers))
		for j, p := range r.peers {
			np := &Peer{
				Local:      nr,
				Remote:     c.byID[p.Remote.ID],
				EBGP:       p.EBGP,
				remoteIdx:  p.remoteIdx,
				localIdx:   p.localIdx,
				disabled:   p.disabled,
				ImportHook: p.ImportHook,
				ExportHook: p.ExportHook,
				Client:     p.Client,
			}
			if p.importActs != nil {
				np.importActs = make(map[bgp.PrefixID]importAction, len(p.importActs))
				for k, v := range p.importActs {
					np.importActs[k] = v
				}
			}
			if p.exportDeny != nil {
				np.exportDeny = make(map[bgp.PrefixID]struct{}, len(p.exportDeny))
				for k := range p.exportDeny {
					np.exportDeny[k] = struct{}{}
				}
			}
			nr.peers[j] = np
		}
	}
	return c
}
