package sim

import (
	"sort"

	"asmodel/internal/bgp"
)

// CopyPoliciesFrom copies src's per-prefix import actions, per-prefix
// export denies, and hooks onto p. The refinement heuristic uses it when
// duplicating a quasi-router: "the new quasi-router has the same neighbors
// and policies as the copied one" (§4.6). Policies installed on the
// *remote* side toward src (such as export filters pointing at src) are
// deliberately not copied — they are keyed by receiving router, so a
// duplicate is born unfiltered.
func (p *Peer) CopyPoliciesFrom(src *Peer) {
	if src.importActs != nil {
		p.importActs = make(map[bgp.PrefixID]importAction, len(src.importActs))
		for k, v := range src.importActs {
			p.importActs[k] = v
		}
	}
	if src.exportDeny != nil {
		p.exportDeny = make(map[bgp.PrefixID]struct{}, len(src.exportDeny))
		for k := range src.exportDeny {
			p.exportDeny[k] = struct{}{}
		}
	}
	p.ImportHook = src.ImportHook
	p.ExportHook = src.ExportHook
}

// ImportActionFor returns the per-prefix import action installed for the
// prefix on this session direction (and whether one is installed) in the
// same external form serialization uses. Together with
// RestoreImportAction it lets speculative refinement capture and roll
// back policy edits exactly.
func (p *Peer) ImportActionFor(prefix bgp.PrefixID) (ImportActionView, bool) {
	a, ok := p.importActs[prefix]
	if !ok {
		return ImportActionView{Prefix: prefix}, false
	}
	return ImportActionView{
		Prefix: prefix,
		Deny:   a.deny,
		HasMED: a.hasMED, MED: a.med,
		HasLP: a.hasLP, LocalPref: a.lp,
	}, true
}

// RestoreImportAction reinstalls (present=true) or removes
// (present=false) the per-prefix import action described by v, undoing a
// sequence of Set/Clear calls captured via ImportActionFor.
func (p *Peer) RestoreImportAction(v ImportActionView, present bool) {
	if !present {
		p.ClearImport(v.Prefix)
		return
	}
	if p.importActs == nil {
		p.importActs = make(map[bgp.PrefixID]importAction)
	}
	p.importActs[v.Prefix] = importAction{
		deny:   v.Deny,
		hasMED: v.HasMED, med: v.MED,
		hasLP: v.HasLP, lp: v.LocalPref,
	}
}

// ImportMED returns the import MED override installed for the prefix on
// this session, if any.
func (p *Peer) ImportMED(prefix bgp.PrefixID) (uint32, bool) {
	if p.importActs == nil {
		return 0, false
	}
	a, ok := p.importActs[prefix]
	if !ok || !a.hasMED {
		return 0, false
	}
	return a.med, true
}

// Disabled reports whether the session direction is administratively down.
func (p *Peer) Disabled() bool { return p.disabled }

// SetDisabled administratively disables or enables this session direction.
// A disabled direction neither accepts nor emits routes; disable both
// directions to take a session fully down (what-if link removal). Takes
// effect on the next Run.
func (p *Peer) SetDisabled(down bool) { p.disabled = down }

// ExportDenyCount returns the number of per-prefix export denies installed
// on this session direction (model-size accounting).
func (p *Peer) ExportDenyCount() int { return len(p.exportDeny) }

// ImportActionCount returns the number of per-prefix import actions
// installed on this session direction (model-size accounting).
func (p *Peer) ImportActionCount() int { return len(p.importActs) }

// ImportActionView is the externally visible form of a per-prefix import
// action, used by model serialization.
type ImportActionView struct {
	Prefix    bgp.PrefixID
	Deny      bool
	HasMED    bool
	MED       uint32
	HasLP     bool
	LocalPref uint32
}

// VisitImportActions calls fn for every per-prefix import action on this
// session direction, in ascending prefix order.
func (p *Peer) VisitImportActions(fn func(ImportActionView)) {
	ids := make([]int, 0, len(p.importActs))
	for id := range p.importActs {
		ids = append(ids, int(id))
	}
	sortInts(ids)
	for _, id := range ids {
		a := p.importActs[bgp.PrefixID(id)]
		fn(ImportActionView{
			Prefix: bgp.PrefixID(id),
			Deny:   a.deny,
			HasMED: a.hasMED, MED: a.med,
			HasLP: a.hasLP, LocalPref: a.lp,
		})
	}
}

// VisitExportDenies calls fn for every per-prefix export deny on this
// session direction, in ascending prefix order.
func (p *Peer) VisitExportDenies(fn func(bgp.PrefixID)) {
	ids := make([]int, 0, len(p.exportDeny))
	for id := range p.exportDeny {
		ids = append(ids, int(id))
	}
	sortInts(ids)
	for _, id := range ids {
		fn(bgp.PrefixID(id))
	}
}

func sortInts(s []int) {
	sort.Ints(s)
}
