// Package sim implements a static BGP route-propagation engine equivalent,
// for the purposes of this repository, to the C-BGP simulator the paper
// builds on (§4.1): it computes the steady-state route choice of every
// (quasi-)router after BGP message exchange has converged, one prefix at a
// time, over a topology in which an AS may contain any number of routers
// and BGP sessions may connect arbitrary router pairs.
//
// The engine supports the two configurations the paper needs:
//
//   - Quasi-router models (bgp.QuasiRouterConfig): no iBGP, no IGP; the
//     decision process is local-pref, AS-path length, always-compare MED,
//     and the lowest-router-ID tie-break. Policies are per-prefix import
//     actions (deny / set MED / set local-pref) and per-prefix export
//     denies — exactly the vocabulary of the refinement heuristic (§4.6).
//
//   - Ground truth (bgp.GroundTruthConfig): full decision process with
//     eBGP-over-iBGP and hot-potato IGP-cost steps, full-mesh iBGP
//     semantics (iBGP-learned routes are not re-advertised over iBGP), and
//     an IGP-cost callback, used by the router-level synthetic Internet.
//
// Propagation is event-driven and deterministic: a FIFO queue of session
// deliveries, routers seeded in sorted order, and no reliance on map
// iteration order. A message budget bounds non-convergent policy systems
// (ErrDiverged), which the paper reports local-pref-based refinement can
// produce (§4.6).
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/obs"
)

// ErrDiverged is returned by Run when message count exceeds the budget,
// indicating the policy system has no stable solution (or converges too
// slowly to distinguish from one). The error returned by Run is a
// *DivergenceError wrapping this sentinel; match with errors.Is.
var ErrDiverged = errors.New("sim: BGP propagation did not converge (message budget exhausted)")

// DivergenceError reports the context of a divergence: which prefix blew
// the budget and how much work was done. It unwraps to ErrDiverged.
type DivergenceError struct {
	// Prefix is the prefix whose propagation did not converge.
	Prefix bgp.PrefixID
	// Messages is the number of messages delivered before giving up.
	Messages int
	// Budget is the message budget that was exhausted.
	Budget int
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("sim: BGP propagation of prefix %d did not converge: %d messages delivered, budget %d exhausted",
		e.Prefix, e.Messages, e.Budget)
}

// Unwrap makes errors.Is(err, ErrDiverged) succeed.
func (e *DivergenceError) Unwrap() error { return ErrDiverged }

// Propagation metrics, registered on the obs default registry. Counters
// are batched per Run (not per message), so the hot loop stays free of
// atomic operations.
var (
	mRuns      = obs.GetCounter("sim_runs_total", "prefix propagation runs")
	mMsgs      = obs.GetCounter("sim_messages_delivered_total", "BGP messages delivered across all runs")
	mInstalled = obs.GetCounter("sim_routes_installed_total", "Adj-RIB-In entries installed (nil -> route)")
	mReplaced  = obs.GetCounter("sim_routes_replaced_total", "Adj-RIB-In entries replaced (route -> different route)")
	mWithdrawn = obs.GetCounter("sim_withdrawals_total", "Adj-RIB-In entries withdrawn (route -> nil)")
	mBestFlips = obs.GetCounter("sim_best_changes_total", "best-route changes that triggered re-export")
	mDiverged  = obs.GetCounter("sim_diverged_total", "runs that exhausted the message budget")
	mRunMsgs   = obs.GetHistogram("sim_run_messages", "messages delivered per run",
		obs.ExpBuckets(1, 4, 12))
	mQueueHW = obs.GetHistogram("sim_queue_highwater", "per-run delivery-queue high-water mark",
		obs.ExpBuckets(1, 4, 10))
	mRunTime = obs.GetHistogram("sim_run_seconds", "per-prefix convergence wall time",
		obs.ExpBuckets(1e-6, 10, 9))
	mBudgetRatio = obs.GetHistogram("sim_budget_used_ratio", "fraction of the message budget used per run (divergence-guard proximity)",
		obs.LinearBuckets(0.1, 0.1, 10))
)

// RunStats is the per-Run instrumentation snapshot: how much work the
// last propagation did and how close it came to the divergence guard.
type RunStats struct {
	// Prefix is the prefix of the run.
	Prefix bgp.PrefixID
	// Messages is the number of messages delivered.
	Messages int
	// Budget is the message budget the run operated under.
	Budget int
	// QueueHighWater is the maximum delivery-queue depth reached.
	QueueHighWater int
	// RoutesInstalled counts Adj-RIB-In transitions nil -> route.
	RoutesInstalled int
	// RoutesReplaced counts Adj-RIB-In transitions route -> route.
	RoutesReplaced int
	// RoutesWithdrawn counts Adj-RIB-In transitions route -> nil.
	RoutesWithdrawn int
	// BestChanges counts best-route changes that triggered re-export.
	BestChanges int
	// Diverged reports whether the run exhausted the budget.
	Diverged bool
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// BudgetUsed returns Messages/Budget — how close the run came to the
// divergence guard (1.0 means it tripped).
func (s RunStats) BudgetUsed() float64 {
	if s.Budget == 0 {
		return 0
	}
	return float64(s.Messages) / float64(s.Budget)
}

// Network is a topology of routers and BGP sessions over which prefixes
// are propagated one at a time. Not safe for concurrent use.
type Network struct {
	cfg     bgp.DecisionConfig
	routers []*Router
	byID    map[bgp.RouterID]*Router

	// IGPCost, if non-nil, returns the intra-domain cost from router a to
	// router b; it is consulted when a route is learned over an iBGP
	// session (the iBGP next hop is the announcing router). A nil callback
	// means cost 0 everywhere.
	IGPCost func(a, b bgp.RouterID) uint32

	// MaxMessages bounds the number of delivered messages per Run. Zero
	// selects an automatic budget proportional to the session count.
	MaxMessages int

	sessions int
	queue    []message
	qHead    int

	prefix bgp.PrefixID
	ran    bool
	stats  RunStats

	// Touched-router tracking: gen is bumped by every reset (the start of
	// every Run) and touched collects, in first-touch order, every router
	// that participated in the current run — origins at seeding time plus
	// every router that received a delivery. The generation stamp on each
	// router makes marking O(1) without a per-run map clear. Speculative
	// refinement reads the list as the run's read-set.
	gen     uint64
	touched []*Router
}

type message struct {
	to      *Router
	peerIdx int
	route   *bgp.Route // nil means withdraw
}

// Router is a (quasi-)router in the network.
type Router struct {
	// ID is the router's unique identifier; its high bits carry the ASN
	// (the paper's IP-address convention, §4.5) so that ID comparison
	// implements the final tie-break.
	ID bgp.RouterID
	// AS is the autonomous system the router belongs to.
	AS bgp.ASN

	net   *Network
	peers []*Peer
	bySrc map[bgp.RouterID]int // remote router ID -> peer index

	ribIn []*bgp.Route // per peer index; nil = no route
	local *bgp.Route   // locally originated route for the current prefix
	best  *bgp.Route
	adv   []*bgp.Route // last advertisement sent per peer (post-export-transform)

	touchGen uint64 // generation of the run that last touched this router
}

// Peer is one direction of a BGP session: the state and policies that the
// Local router applies on this session. Sessions are created in pairs by
// Network.Connect.
type Peer struct {
	Local  *Router
	Remote *Router
	// EBGP reports whether this is an inter-AS session.
	EBGP bool

	remoteIdx int // index of the reverse direction in Remote.peers
	localIdx  int // index of this direction in Local.peers

	importActs map[bgp.PrefixID]importAction
	exportDeny map[bgp.PrefixID]struct{}
	disabled   bool

	// ImportHook, if non-nil, runs after per-prefix import actions; it may
	// modify the route in place or return false to deny it. Used by the
	// relationship-based baseline to assign local-pref by business
	// relationship.
	ImportHook func(r *bgp.Route) bool
	// ExportHook, if non-nil, runs before a best route is advertised to
	// Remote; returning false suppresses the advertisement. Used to
	// implement valley-free export rules.
	ExportHook func(r *bgp.Route) bool

	// Client marks this iBGP session direction as leading to a
	// route-reflector client of Local (RFC 4456). A router with at least
	// one Client session acts as a route reflector: it re-advertises
	// iBGP-learned routes to its clients, and routes learned FROM a
	// client to every iBGP peer. Ignored on eBGP sessions.
	Client bool
}

type importAction struct {
	deny   bool
	hasMED bool
	med    uint32
	hasLP  bool
	lp     uint32
}

// NewNetwork creates an empty network using the given decision
// configuration.
func NewNetwork(cfg bgp.DecisionConfig) *Network {
	return &Network{cfg: cfg, byID: make(map[bgp.RouterID]*Router)}
}

// Config returns the decision configuration the network runs with.
func (n *Network) Config() bgp.DecisionConfig { return n.cfg }

// NumRouters returns the number of routers in the network.
func (n *Network) NumRouters() int { return len(n.routers) }

// NumSessions returns the number of (bidirectional) BGP sessions.
func (n *Network) NumSessions() int { return n.sessions }

// Routers returns all routers, ordered by creation.
func (n *Network) Routers() []*Router { return n.routers }

// Router returns the router with the given ID, or nil.
func (n *Network) Router(id bgp.RouterID) *Router { return n.byID[id] }

// AddRouter creates a router with the canonical RouterID for (asn, index).
// It returns an error if the ID is already taken.
func (n *Network) AddRouter(asn bgp.ASN, index uint16) (*Router, error) {
	id := bgp.MakeRouterID(asn, index)
	if _, dup := n.byID[id]; dup {
		return nil, fmt.Errorf("sim: duplicate router %s", id)
	}
	r := &Router{ID: id, AS: asn, net: n, bySrc: make(map[bgp.RouterID]int)}
	n.routers = append(n.routers, r)
	n.byID[id] = r
	return r, nil
}

// Connect establishes a BGP session between a and b, returning the two
// directions (a's view, b's view). The session is eBGP when the routers
// belong to different ASes and iBGP otherwise. At most one session may
// exist between a pair of routers.
func (n *Network) Connect(a, b *Router) (*Peer, *Peer, error) {
	if a == b {
		return nil, nil, fmt.Errorf("sim: cannot connect router %s to itself", a.ID)
	}
	if _, dup := a.bySrc[b.ID]; dup {
		return nil, nil, fmt.Errorf("sim: session %s<->%s already exists", a.ID, b.ID)
	}
	ebgp := a.AS != b.AS
	pa := &Peer{Local: a, Remote: b, EBGP: ebgp}
	pb := &Peer{Local: b, Remote: a, EBGP: ebgp}
	pa.localIdx = len(a.peers)
	pb.localIdx = len(b.peers)
	pa.remoteIdx = pb.localIdx
	pb.remoteIdx = pa.localIdx
	a.bySrc[b.ID] = pa.localIdx
	b.bySrc[a.ID] = pb.localIdx
	a.peers = append(a.peers, pa)
	b.peers = append(b.peers, pb)
	a.ribIn = append(a.ribIn, nil)
	b.ribIn = append(b.ribIn, nil)
	a.adv = append(a.adv, nil)
	b.adv = append(b.adv, nil)
	n.sessions++
	return pa, pb, nil
}

// RemoveRouter removes r and all of its sessions from the network. Only
// the most recently added router can be removed, and every session of r
// must be the newest session of its remote — the invariant Connect's
// tail-appends establish for a router that was added and connected last
// (quasi-router duplication). Removing in reverse creation order
// therefore exactly undoes a sequence of duplications, which is what
// speculative refinement needs to roll a clone back; any other shape is
// rejected with an error before the network is modified.
func (n *Network) RemoveRouter(r *Router) error {
	if len(n.routers) == 0 || n.routers[len(n.routers)-1] != r {
		return fmt.Errorf("sim: RemoveRouter: %s is not the most recently added router", r.ID)
	}
	for _, p := range r.peers {
		rem := p.Remote
		if last := len(rem.peers) - 1; last < 0 || rem.peers[last].Remote != r {
			return fmt.Errorf("sim: RemoveRouter: session %s<->%s is not %s's newest session", r.ID, rem.ID, rem.ID)
		}
	}
	for _, p := range r.peers {
		rem := p.Remote
		last := len(rem.peers) - 1
		rem.peers = rem.peers[:last]
		rem.ribIn = rem.ribIn[:last]
		rem.adv = rem.adv[:last]
		delete(rem.bySrc, r.ID)
		n.sessions--
	}
	delete(n.byID, r.ID)
	n.routers = n.routers[:len(n.routers)-1]
	// Keep the touched list honest if r participated in the last run.
	for i, t := range n.touched {
		if t == r {
			n.touched = append(n.touched[:i], n.touched[i+1:]...)
			break
		}
	}
	return nil
}

// Peers returns the router's session endpoints (its side).
func (r *Router) Peers() []*Peer { return r.peers }

// PeerTo returns r's session direction toward the router with the given
// ID, or nil if no session exists.
func (r *Router) PeerTo(remote bgp.RouterID) *Peer {
	if i, ok := r.bySrc[remote]; ok {
		return r.peers[i]
	}
	return nil
}

// --- Policy management -----------------------------------------------

// DenyImport drops all routes for the prefix arriving on this session.
func (p *Peer) DenyImport(prefix bgp.PrefixID) {
	a := p.importAct(prefix)
	a.deny = true
	p.importActs[prefix] = a
}

// SetImportMED makes routes for the prefix arriving on this session carry
// the given MED (the refinement heuristic's ranking mechanism, §4.6).
func (p *Peer) SetImportMED(prefix bgp.PrefixID, med uint32) {
	a := p.importAct(prefix)
	a.hasMED, a.med = true, med
	p.importActs[prefix] = a
}

// SetImportLocalPref makes routes for the prefix arriving on this session
// carry the given local-pref (used by baselines and ablations only).
func (p *Peer) SetImportLocalPref(prefix bgp.PrefixID, lp uint32) {
	a := p.importAct(prefix)
	a.hasLP, a.lp = true, lp
	p.importActs[prefix] = a
}

// ClearImport removes all per-prefix import actions for the prefix.
func (p *Peer) ClearImport(prefix bgp.PrefixID) {
	if p.importActs != nil {
		delete(p.importActs, prefix)
	}
}

func (p *Peer) importAct(prefix bgp.PrefixID) importAction {
	if p.importActs == nil {
		p.importActs = make(map[bgp.PrefixID]importAction)
	}
	return p.importActs[prefix]
}

// DenyExport suppresses advertisements of the prefix from Local to Remote.
// This is the refinement heuristic's "filter at the announcing neighbor".
func (p *Peer) DenyExport(prefix bgp.PrefixID) {
	if p.exportDeny == nil {
		p.exportDeny = make(map[bgp.PrefixID]struct{})
	}
	p.exportDeny[prefix] = struct{}{}
}

// AllowExport removes a previously installed export deny (filter deletion,
// §4.6 / Figure 7).
func (p *Peer) AllowExport(prefix bgp.PrefixID) {
	if p.exportDeny != nil {
		delete(p.exportDeny, prefix)
	}
}

// ExportDenied reports whether an export deny is installed for the prefix.
func (p *Peer) ExportDenied(prefix bgp.PrefixID) bool {
	_, ok := p.exportDeny[prefix]
	return ok
}

// --- Propagation ------------------------------------------------------

// Run propagates a single prefix originated by the given routers until
// convergence. Previous per-prefix state is discarded. Origins are
// announced in sorted router-ID order for determinism. Run returns
// ErrDiverged if the message budget is exhausted.
func (n *Network) Run(prefix bgp.PrefixID, origins []bgp.RouterID) error {
	return n.RunBudget(context.Background(), prefix, origins, 0)
}

// RunContext is Run with cancellation: the context is polled
// periodically inside the delivery loop, and a canceled or expired
// context aborts the run with an error wrapping ctx.Err() (match with
// errors.Is(err, context.Canceled) / context.DeadlineExceeded). An
// aborted run leaves the network's per-prefix state partially
// propagated; the next Run resets it.
func (n *Network) RunContext(ctx context.Context, prefix bgp.PrefixID, origins []bgp.RouterID) error {
	return n.RunBudget(ctx, prefix, origins, 0)
}

// ctxCheckInterval is how many delivered messages pass between context
// polls; a power of two so the check compiles to a mask.
const ctxCheckInterval = 512

// RunBudget is RunContext with an explicit message budget overriding
// MaxMessages for this run only (0 keeps the network's configured or
// automatic budget). The refinement heuristic uses it to retry
// quarantined prefixes under an escalated budget.
func (n *Network) RunBudget(ctx context.Context, prefix bgp.PrefixID, origins []bgp.RouterID, budget int) error {
	start := time.Now()
	n.reset()
	n.prefix = prefix
	n.ran = true
	n.stats = RunStats{Prefix: prefix}

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sim: propagation of prefix %d not started: %w", prefix, err)
	}

	sorted := make([]bgp.RouterID, len(origins))
	copy(sorted, origins)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, id := range sorted {
		r := n.byID[id]
		if r == nil {
			return fmt.Errorf("sim: unknown origin router %s", id)
		}
		n.markTouched(r)
		r.local = &bgp.Route{
			Prefix:    prefix,
			Path:      bgp.Path{},
			LocalPref: bgp.DefaultLocalPref,
			MED:       bgp.DefaultMED,
		}
		r.recomputeBest()
		r.exportAll()
	}

	if budget == 0 {
		budget = n.MaxMessages
	}
	if budget == 0 {
		budget = 1000 + 200*n.sessions
	}
	n.stats.Budget = budget
	msgs := 0
	for n.qHead < len(n.queue) {
		m := n.queue[n.qHead]
		n.queue[n.qHead] = message{}
		n.qHead++
		msgs++
		if msgs > budget {
			n.drainQueue()
			n.stats.Messages = msgs
			n.stats.Diverged = true
			n.finishRun(start)
			return &DivergenceError{Prefix: prefix, Messages: msgs, Budget: budget}
		}
		if msgs%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				n.drainQueue()
				n.stats.Messages = msgs
				n.finishRun(start)
				return fmt.Errorf("sim: propagation of prefix %d interrupted after %d messages: %w", prefix, msgs, err)
			}
		}
		m.to.deliver(m.peerIdx, m.route)
	}
	n.drainQueue()
	n.stats.Messages = msgs
	n.finishRun(start)
	return nil
}

// finishRun stamps the elapsed time and publishes the run's work to the
// obs registry in one batch.
func (n *Network) finishRun(start time.Time) {
	n.stats.Elapsed = time.Since(start)
	mRuns.Inc()
	mMsgs.Add(int64(n.stats.Messages))
	mInstalled.Add(int64(n.stats.RoutesInstalled))
	mReplaced.Add(int64(n.stats.RoutesReplaced))
	mWithdrawn.Add(int64(n.stats.RoutesWithdrawn))
	mBestFlips.Add(int64(n.stats.BestChanges))
	if n.stats.Diverged {
		mDiverged.Inc()
	}
	mRunMsgs.ObserveInt(n.stats.Messages)
	mQueueHW.ObserveInt(n.stats.QueueHighWater)
	mRunTime.ObserveDuration(n.stats.Elapsed)
	mBudgetRatio.Observe(n.stats.BudgetUsed())
}

// MessagesDelivered returns the number of messages processed by the most
// recent Run — a direct measure of convergence work.
func (n *Network) MessagesDelivered() int { return n.stats.Messages }

// LastRunStats returns the instrumentation snapshot of the most recent
// Run.
func (n *Network) LastRunStats() RunStats { return n.stats }

// Prefix returns the prefix of the most recent Run.
func (n *Network) Prefix() bgp.PrefixID { return n.prefix }

func (n *Network) drainQueue() {
	n.queue = n.queue[:0]
	n.qHead = 0
}

func (n *Network) reset() {
	for _, r := range n.routers {
		for i := range r.ribIn {
			r.ribIn[i] = nil
			r.adv[i] = nil
		}
		r.local = nil
		r.best = nil
	}
	n.drainQueue()
	n.gen++
	n.touched = n.touched[:0]
}

// markTouched records r as a participant of the current run (idempotent
// per run via the generation stamp).
func (n *Network) markTouched(r *Router) {
	if r.touchGen != n.gen {
		r.touchGen = n.gen
		n.touched = append(n.touched, r)
	}
}

// TouchedRouters returns every router that participated in the most
// recent Run, in first-touch order: the seeded origins plus every router
// that received at least one delivery (even a denied or withdrawn one).
// Routers absent from the list held no state for the run's prefix and
// sent no messages. The slice is the network's per-run scratch — valid
// until the next Run — and must not be mutated.
func (n *Network) TouchedRouters() []*Router { return n.touched }

func (n *Network) enqueue(m message) {
	// Compact the ring occasionally so memory stays bounded.
	if n.qHead > 4096 && n.qHead*2 > len(n.queue) {
		copied := copy(n.queue, n.queue[n.qHead:])
		n.queue = n.queue[:copied]
		n.qHead = 0
	}
	n.queue = append(n.queue, m)
	if depth := len(n.queue) - n.qHead; depth > n.stats.QueueHighWater {
		n.stats.QueueHighWater = depth
	}
}

// deliver processes one inbound message on peers[peerIdx].
func (r *Router) deliver(peerIdx int, in *bgp.Route) {
	r.net.markTouched(r)
	p := r.peers[peerIdx]
	rt := r.applyImport(p, in)
	old := r.ribIn[peerIdx]
	if routesEqual(old, rt) {
		return
	}
	switch {
	case old == nil:
		r.net.stats.RoutesInstalled++
	case rt == nil:
		r.net.stats.RoutesWithdrawn++
	default:
		r.net.stats.RoutesReplaced++
	}
	r.ribIn[peerIdx] = rt
	oldBest := r.best
	r.recomputeBest()
	if !routesEqual(oldBest, r.best) {
		r.net.stats.BestChanges++
		r.exportAll()
	}
}

// applyImport runs the import pipeline: eBGP loop check, per-prefix
// actions, hook, and iBGP/eBGP attribute fixups. It returns nil when the
// route is denied (treated as a withdrawal).
func (r *Router) applyImport(p *Peer, in *bgp.Route) *bgp.Route {
	if in == nil || p.disabled {
		return nil
	}
	if p.EBGP && in.Path.Contains(r.AS) {
		return nil // standard eBGP loop rejection
	}
	rt := in.Clone()
	if p.importActs != nil {
		if a, ok := p.importActs[rt.Prefix]; ok {
			if a.deny {
				return nil
			}
			if a.hasMED {
				rt.MED = a.med
			}
			if a.hasLP {
				rt.LocalPref = a.lp
			}
		}
	}
	if p.ImportHook != nil && !p.ImportHook(rt) {
		return nil
	}
	if p.EBGP {
		rt.EBGP = true
		rt.IGPCost = 0
	} else {
		rt.EBGP = false
		if r.net.IGPCost != nil {
			rt.IGPCost = r.net.IGPCost(r.ID, rt.Peer)
		}
	}
	return rt
}

// recomputeBest runs the decision process over the local route and RIB-In.
func (r *Router) recomputeBest() {
	var candsBuf [24]*bgp.Route
	cands := candsBuf[:0]
	if r.local != nil {
		cands = append(cands, r.local)
	}
	for _, rt := range r.ribIn {
		if rt != nil {
			cands = append(cands, rt)
		}
	}
	if len(cands) == 0 {
		r.best = nil
		return
	}
	best, _ := bgp.Decide(r.net.cfg, cands, nil)
	r.best = cands[best]
}

// exportAll (re-)advertises the current best route to every peer, sending
// only when the advertisement differs from the last one sent on that
// session (including withdrawals when the route becomes unexportable).
func (r *Router) exportAll() {
	for i, p := range r.peers {
		out := r.transformExport(p)
		if routesEqual(r.adv[i], out) {
			continue
		}
		r.adv[i] = out
		r.net.enqueue(message{to: p.Remote, peerIdx: p.remoteIdx, route: out})
	}
}

// transformExport computes the advertisement for peer p, or nil when the
// best route must not (or cannot) be advertised there.
func (r *Router) transformExport(p *Peer) *bgp.Route {
	best := r.best
	if best == nil || p.disabled {
		return nil
	}
	// iBGP re-advertisement rule: in a full mesh an iBGP-learned route is
	// never re-advertised over iBGP; a route reflector (RFC 4456)
	// additionally reflects iBGP routes to its clients, and routes
	// learned from a client to everyone.
	if !p.EBGP && !best.EBGP && best != r.local {
		fromClient := false
		if from := r.PeerTo(best.Peer); from != nil && from.Client {
			fromClient = true
		}
		if !p.Client && !fromClient {
			return nil
		}
		if from := r.PeerTo(best.Peer); from != nil && from.Remote == p.Remote {
			return nil // never reflect a route back to its announcer
		}
	}
	if p.exportDeny != nil {
		if _, deny := p.exportDeny[best.Prefix]; deny {
			return nil
		}
	}
	if p.ExportHook != nil && !p.ExportHook(best) {
		return nil
	}
	if p.EBGP {
		return &bgp.Route{
			Prefix:    best.Prefix,
			Path:      best.Path.Prepend(r.AS),
			LocalPref: bgp.DefaultLocalPref,
			MED:       bgp.DefaultMED,
			Origin:    best.Origin,
			Peer:      r.ID,
			EBGP:      true,
		}
	}
	// iBGP: attributes propagate unchanged; announcing router becomes the
	// next hop (next-hop-self at the ingress border router).
	return &bgp.Route{
		Prefix:    best.Prefix,
		Path:      best.Path,
		LocalPref: best.LocalPref,
		MED:       best.MED,
		Origin:    best.Origin,
		Peer:      r.ID,
		EBGP:      false,
	}
}

// routesEqual compares the wire-visible attributes of two routes (or nils).
func routesEqual(a, b *bgp.Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Prefix == b.Prefix &&
		a.LocalPref == b.LocalPref &&
		a.MED == b.MED &&
		a.Origin == b.Origin &&
		a.Peer == b.Peer &&
		a.EBGP == b.EBGP &&
		a.Path.Equal(b.Path)
}

// --- Post-convergence inspection ---------------------------------------

// Best returns the router's selected best route for the last Run prefix,
// or nil if it selected none.
func (r *Router) Best() *bgp.Route { return r.best }

// Local returns the router's locally originated route, or nil.
func (r *Router) Local() *bgp.Route { return r.local }

// RIBIn returns the non-nil entries of the router's Adj-RIB-In along with
// the peer each was learned from, in session order.
func (r *Router) RIBIn() (routes []*bgp.Route, from []*Peer) {
	for i, rt := range r.ribIn {
		if rt != nil {
			routes = append(routes, rt)
			from = append(from, r.peers[i])
		}
	}
	return routes, from
}

// RIBInAt returns the route learned on peers[i], or nil.
func (r *Router) RIBInAt(i int) *bgp.Route { return r.ribIn[i] }

// DecideRIB re-runs the decision process over the router's current
// candidates (local route + RIB-In) and returns the candidates together
// with the step at which each was eliminated. The winner has StepNone.
// It returns nil slices when the router has no candidates.
func (r *Router) DecideRIB() (cands []*bgp.Route, elim []bgp.Step) {
	if r.local != nil {
		cands = append(cands, r.local)
	}
	for _, rt := range r.ribIn {
		if rt != nil {
			cands = append(cands, rt)
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	_, elim = bgp.Decide(r.net.cfg, cands, nil)
	return cands, elim
}
