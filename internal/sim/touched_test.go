package sim

import (
	"strings"
	"testing"

	"asmodel/internal/bgp"
)

// TestTouchedRouters: after a run, the touched set is exactly the origins
// plus every router that received at least one delivery, and the next run
// starts it fresh.
func TestTouchedRouters(t *testing.T) {
	// Line 1-2-3 plus a disconnected AS4 router: AS4 can never be touched.
	net, rs := buildLine(t, 3)
	lone, err := net.AddRouter(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, net, 1, rs[0].ID)

	got := map[bgp.RouterID]bool{}
	for _, r := range net.TouchedRouters() {
		got[r.ID] = true
	}
	for _, r := range rs {
		if !got[r.ID] {
			t.Errorf("router %s (origin or receiver) missing from touched set", r.ID)
		}
	}
	if got[lone.ID] {
		t.Error("disconnected router reported touched")
	}
	if len(got) != len(rs) {
		t.Errorf("touched %d routers, want %d", len(got), len(rs))
	}

	// A run for a different origin resets the set: only the new origin is
	// guaranteed, the old endpoints must be re-derived, not carried over.
	mustRun(t, net, 2, rs[2].ID)
	got = map[bgp.RouterID]bool{}
	for _, r := range net.TouchedRouters() {
		got[r.ID] = true
	}
	if !got[rs[2].ID] {
		t.Error("origin of the second run not touched")
	}
	if got[lone.ID] {
		t.Error("stale touched entry survived the reset")
	}
}

// TestRemoveRouterLIFO: RemoveRouter undoes the newest AddRouter+Connect
// exactly — sessions disappear from every remote, counts rewind, and the
// remaining network still runs.
func TestRemoveRouterLIFO(t *testing.T) {
	net, rs := buildLine(t, 3)
	nr, err := net.AddRouter(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Router{rs[0], rs[2]} {
		if _, _, err := net.Connect(nr, r); err != nil {
			t.Fatal(err)
		}
	}
	wantRouters, wantSessions := net.NumRouters()-1, net.NumSessions()-2

	if err := net.RemoveRouter(nr); err != nil {
		t.Fatalf("RemoveRouter: %v", err)
	}
	if net.NumRouters() != wantRouters || net.NumSessions() != wantSessions {
		t.Fatalf("counts after removal: %d routers %d sessions, want %d/%d",
			net.NumRouters(), net.NumSessions(), wantRouters, wantSessions)
	}
	if net.Router(nr.ID) != nil {
		t.Fatal("removed router still resolvable by ID")
	}
	for _, r := range rs {
		for _, p := range r.Peers() {
			if p.Remote.ID == nr.ID {
				t.Fatalf("router %s still has a session toward the removed router", r.ID)
			}
		}
	}
	mustRun(t, net, 1, rs[0].ID)
}

// TestRemoveRouterValidation: removing anything but the newest router —
// or a newest router whose remotes have since gained newer sessions —
// fails without mutating the network.
func TestRemoveRouterValidation(t *testing.T) {
	net, rs := buildLine(t, 3)
	routers, sessions := net.NumRouters(), net.NumSessions()
	err := net.RemoveRouter(rs[0])
	if err == nil || !strings.Contains(err.Error(), "not the most recently added") {
		t.Fatalf("removing a non-tail router: err = %v", err)
	}
	if net.NumRouters() != routers || net.NumSessions() != sessions {
		t.Fatal("failed removal mutated the network")
	}

	// Tail router, but a remote gained a newer session since: refused.
	a, err := net.AddRouter(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Connect(a, rs[0]); err != nil {
		t.Fatal(err)
	}
	b, err := net.AddRouter(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Connect(b, rs[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveRouter(a); err == nil {
		t.Fatal("removed a router whose remote had a newer session")
	}
	// LIFO order works: b then a.
	if err := net.RemoveRouter(b); err != nil {
		t.Fatalf("removing newest: %v", err)
	}
	if err := net.RemoveRouter(a); err != nil {
		t.Fatalf("removing next-newest after LIFO pop: %v", err)
	}
}

// TestImportActionRoundTrip: ImportActionFor captures the exact installed
// action and RestoreImportAction reinstalls (or clears) it, undoing any
// interleaved edits.
func TestImportActionRoundTrip(t *testing.T) {
	net := NewNetwork(bgp.QuasiRouterConfig)
	a, _ := net.AddRouter(1, 0)
	b, _ := net.AddRouter(2, 0)
	p, _, _ := net.Connect(a, b)
	const prefix = bgp.PrefixID(7)

	if _, ok := p.ImportActionFor(prefix); ok {
		t.Fatal("fresh session reports an installed import action")
	}

	p.SetImportMED(prefix, 11)
	p.SetImportLocalPref(prefix, 300)
	v, ok := p.ImportActionFor(prefix)
	if !ok || !v.HasMED || v.MED != 11 || !v.HasLP || v.LocalPref != 300 {
		t.Fatalf("captured view %+v, ok=%v", v, ok)
	}

	p.ClearImport(prefix)
	p.DenyImport(prefix)
	p.RestoreImportAction(v, true)
	got, ok := p.ImportActionFor(prefix)
	if !ok || got != v {
		t.Fatalf("restored view %+v, want %+v", got, v)
	}

	p.RestoreImportAction(v, false) // present=false clears
	if _, ok := p.ImportActionFor(prefix); ok {
		t.Fatal("restore with present=false left an action installed")
	}
	if p.ImportActionCount() != 0 {
		t.Fatalf("%d import actions after clear-restore", p.ImportActionCount())
	}
}
