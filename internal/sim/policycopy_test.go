package sim

import (
	"testing"

	"asmodel/internal/bgp"
)

func TestCopyPoliciesFrom(t *testing.T) {
	net := NewNetwork(bgp.QuasiRouterConfig)
	a, _ := net.AddRouter(1, 0)
	b, _ := net.AddRouter(2, 0)
	c, _ := net.AddRouter(1, 1) // second quasi-router of AS1
	pab, _, _ := net.Connect(a, b)
	pcb, _, _ := net.Connect(c, b)

	pab.SetImportMED(3, 7)
	pab.SetImportLocalPref(3, 150)
	pab.DenyImport(4)
	pab.DenyExport(5)
	hookCalled := false
	pab.ImportHook = func(r *bgp.Route) bool { hookCalled = true; return true }

	pcb.CopyPoliciesFrom(pab)
	if med, ok := pcb.ImportMED(3); !ok || med != 7 {
		t.Errorf("MED not copied: %d %v", med, ok)
	}
	if !pcb.ExportDenied(5) {
		t.Error("export deny not copied")
	}
	if pcb.ImportActionCount() != 2 || pcb.ExportDenyCount() != 1 {
		t.Errorf("counts: %d %d", pcb.ImportActionCount(), pcb.ExportDenyCount())
	}
	if pcb.ImportHook == nil {
		t.Error("hook not copied")
	}
	// The copy is independent: mutating it must not touch the source.
	pcb.ClearImport(3)
	if _, ok := pab.ImportMED(3); !ok {
		t.Error("copy shares import map with source")
	}
	pcb.AllowExport(5)
	if !pab.ExportDenied(5) {
		t.Error("copy shares export map with source")
	}
	_ = hookCalled
}

func TestVisitors(t *testing.T) {
	net := NewNetwork(bgp.QuasiRouterConfig)
	a, _ := net.AddRouter(1, 0)
	b, _ := net.AddRouter(2, 0)
	p, _, _ := net.Connect(a, b)
	p.SetImportMED(5, 10)
	p.SetImportLocalPref(3, 200)
	p.DenyImport(1)
	p.DenyExport(2)
	p.DenyExport(9)

	var imports []ImportActionView
	p.VisitImportActions(func(v ImportActionView) { imports = append(imports, v) })
	if len(imports) != 3 {
		t.Fatalf("imports=%+v", imports)
	}
	// Sorted by prefix: 1 (deny), 3 (lp), 5 (med).
	if !imports[0].Deny || imports[0].Prefix != 1 {
		t.Errorf("imports[0]=%+v", imports[0])
	}
	if !imports[1].HasLP || imports[1].LocalPref != 200 {
		t.Errorf("imports[1]=%+v", imports[1])
	}
	if !imports[2].HasMED || imports[2].MED != 10 {
		t.Errorf("imports[2]=%+v", imports[2])
	}

	var denies []bgp.PrefixID
	p.VisitExportDenies(func(id bgp.PrefixID) { denies = append(denies, id) })
	if len(denies) != 2 || denies[0] != 2 || denies[1] != 9 {
		t.Errorf("denies=%v", denies)
	}

	// Empty visitors are no-ops.
	q := b.PeerTo(a.ID)
	q.VisitImportActions(func(ImportActionView) { t.Error("unexpected import") })
	q.VisitExportDenies(func(bgp.PrefixID) { t.Error("unexpected deny") })
	if _, ok := q.ImportMED(5); ok {
		t.Error("phantom MED")
	}
	if _, ok := p.ImportMED(3); ok {
		t.Error("LP-only action reported as MED")
	}
}

func TestDisabledSession(t *testing.T) {
	net, rs := buildLine(t, 3)
	p01 := rs[0].PeerTo(rs[1].ID)
	p10 := rs[1].PeerTo(rs[0].ID)
	if p01.Disabled() {
		t.Error("sessions start enabled")
	}
	p01.SetDisabled(true)
	p10.SetDisabled(true)
	mustRun(t, net, 1, rs[0].ID)
	if rs[1].Best() != nil || rs[2].Best() != nil {
		t.Error("routes crossed a disabled session")
	}
	p01.SetDisabled(false)
	p10.SetDisabled(false)
	mustRun(t, net, 1, rs[0].ID)
	if rs[2].Best() == nil {
		t.Error("re-enabled session should carry routes again")
	}
}

func TestDisabledOneDirection(t *testing.T) {
	// Disabling only the import direction at the receiver also kills the
	// flow (belt and braces: both import and export honor the flag).
	net, rs := buildLine(t, 2)
	rs[1].PeerTo(rs[0].ID).SetDisabled(true)
	mustRun(t, net, 1, rs[0].ID)
	if rs[1].Best() != nil {
		t.Error("route crossed half-disabled session")
	}
}

func TestRoutersAccessor(t *testing.T) {
	net, _ := buildLine(t, 3)
	if len(net.Routers()) != 3 {
		t.Errorf("Routers()=%d", len(net.Routers()))
	}
}
