// Package obs is the repository's instrumentation substrate: atomic
// counters, gauges, fixed- and log-bucket histograms, timers, and a
// registry with Prometheus-text and JSON exposition, plus a structured
// JSONL trace-event sink and an HTTP debug endpoint (/metrics,
// /debug/vars, net/http/pprof).
//
// It is stdlib-only, like the rest of the repository. Hot layers
// (internal/sim propagation, internal/model refinement, the ground-truth
// router simulation) register their metrics against the package default
// registry at init time; CLIs expose them with -debug-addr. Metrics are
// cumulative per process — a measurement channel, deliberately separate
// from trace events, which must stay deterministic (no wall-clock time)
// so that identical runs produce byte-identical traces.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// --- Counter ------------------------------------------------------------

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// --- Gauge --------------------------------------------------------------

// Gauge is an instantaneous int64 value, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// --- Histogram ----------------------------------------------------------

// Histogram counts observations into fixed buckets (upper bounds,
// ascending) plus an implicit +Inf bucket, and tracks sum and count.
// Safe for concurrent use.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// LinearBuckets returns n ascending upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending upper bounds start, start*factor, ...
// (log-spaced buckets for long-tailed quantities such as message counts
// or wall times).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveInt records one integer sample.
func (h *Histogram) ObserveInt(v int) { h.Observe(float64(v)) }

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]) from the bucket counts: the upper bound of the bucket in which
// the quantile falls (+Inf maps to the largest finite bound).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return math.Inf(1)
	}
	return h.bounds[len(h.bounds)-1]
}

// Timer measures a duration into a histogram (in seconds).
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins timing against the histogram.
func (h *Histogram) Start() Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time and returns it.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}

// --- Registry -----------------------------------------------------------

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type entry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics with get-or-create semantics
// and deterministic (name-sorted) exposition.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: make(map[string]*entry)} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the instrumented
// packages (sim, model, routersim) register against.
func Default() *Registry { return defaultRegistry }

func (r *Registry) get(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.entries[name] = e
	return e
}

// Counter returns the counter with the given name, creating it if needed.
// It panics if the name is already registered as a different metric kind.
func (r *Registry) Counter(name, help string) *Counter { return r.get(name, help, kindCounter).c }

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge { return r.get(name, help, kindGauge).g }

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds if needed (buckets are ignored when the
// histogram already exists).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered as histogram (was %s)", name, e.kind))
		}
		return e.h
	}
	e := &entry{name: name, help: help, kind: kindHistogram, h: newHistogram(buckets)}
	r.entries[name] = e
	return e.h
}

// GetCounter, GetGauge and GetHistogram are shorthands on the default
// registry.
func GetCounter(name, help string) *Counter { return Default().Counter(name, help) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name, help string) *Gauge { return Default().Gauge(name, help) }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(name, help string, buckets []float64) *Histogram {
	return Default().Histogram(name, help, buckets)
}

func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.sorted() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
			return err
		}
		switch e.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			h := e.h
			var cum int64
			for i := range h.counts {
				cum += h.counts[i].Load()
				bound := math.Inf(1)
				if i < len(h.bounds) {
					bound = h.bounds[i]
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, fmtFloat(bound), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", e.name, fmtFloat(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", e.name, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns a JSON-marshalable view of every metric: counters and
// gauges map to their value, histograms to {count, sum, buckets}.
func (r *Registry) Snapshot() map[string]interface{} {
	out := make(map[string]interface{})
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.c.Value()
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindHistogram:
			h := e.h
			buckets := make([]map[string]interface{}, 0, len(h.counts))
			var cum int64
			for i := range h.counts {
				cum += h.counts[i].Load()
				bound := "+Inf"
				if i < len(h.bounds) {
					bound = fmtFloat(h.bounds[i])
				}
				buckets = append(buckets, map[string]interface{}{"le": bound, "count": cum})
			}
			out[e.name] = map[string]interface{}{
				"count":   h.Count(),
				"sum":     h.Sum(),
				"buckets": buckets,
			}
		}
	}
	return out
}
