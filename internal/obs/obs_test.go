package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5) // lower: no-op
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(100)
	if got := g.Value(); got != 100 {
		t.Fatalf("SetMax = %d, want 100", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0.1, 0.1, 3)
	if len(lin) != 3 || math.Abs(lin[2]-0.3) > 1e-12 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	// Bucket placement: le=1 gets {0.5, 1}, le=10 gets {5}, le=100 gets
	// {50}, +Inf gets {500}.
	wantCounts := []int64{2, 1, 1, 1}
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %v, want 10 (upper bound of the median bucket)", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("p100 = %v, want 100 (largest finite bound)", q)
	}
	empty := newHistogram([]float64{1})
	if q := empty.Quantile(0.9); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestTimer(t *testing.T) {
	h := newHistogram(ExpBuckets(1e-9, 10, 12))
	timer := h.Start()
	time.Sleep(time.Millisecond)
	d := timer.Stop()
	if d <= 0 || h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("timer: d=%v count=%d sum=%v", d, h.Count(), h.Sum())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "help")
	if c1 != c2 {
		t.Fatal("get-or-create returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "wrong kind")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(3)
	r.Gauge("a_gauge", "a gauge").Set(-2)
	h := r.Histogram("c_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge -2\n",
		"# TYPE b_total counter\nb_total 3\n",
		"# TYPE c_seconds histogram\n",
		`c_seconds_bucket{le="0.5"} 1`,
		`c_seconds_bucket{le="1"} 1`,
		`c_seconds_bucket{le="+Inf"} 2`,
		"c_seconds_sum 2.25",
		"c_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: names are sorted.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Error("metrics not sorted by name")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ct_total", "").Add(7)
	r.Gauge("g", "").Set(9)
	r.Histogram("h", "", []float64{1, 2}).Observe(1.5)

	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["ct_total"].(float64) != 7 || back["g"].(float64) != 9 {
		t.Fatalf("round trip: %v", back)
	}
	hist := back["h"].(map[string]interface{})
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 1.5 {
		t.Fatalf("histogram round trip: %v", hist)
	}
	if n := len(hist["buckets"].([]interface{})); n != 3 {
		t.Fatalf("bucket count = %d, want 3 (2 bounds + Inf)", n)
	}
}

func TestTraceSink(t *testing.T) {
	type ev struct {
		Type string `json:"type"`
		N    int    `json:"n"`
	}
	var buf bytes.Buffer
	s := NewTraceSink(&buf)
	for i := 0; i < 3; i++ {
		if err := s.Emit(ev{Type: "tick", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 3 || s.Err() != nil {
		t.Fatalf("count=%d err=%v", s.Count(), s.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	for i, line := range lines {
		var got ev
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if got.N != i {
			t.Fatalf("line %d: %+v", i, got)
		}
	}
}

type failWriter struct{ fails bool }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.fails {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestTraceSinkError(t *testing.T) {
	fw := &failWriter{fails: true}
	s := NewTraceSink(fw)
	// The bufio layer only surfaces the error on flush (or overflow).
	_ = s.Emit(map[string]int{"a": 1})
	if err := s.Flush(); err == nil {
		t.Fatal("flush on failing writer succeeded")
	}
	if s.Err() == nil {
		t.Fatal("error not sticky")
	}
	if err := s.Emit(map[string]int{"b": 2}); err == nil {
		t.Fatal("emit after error succeeded")
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").Add(5)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	if out := get("/metrics"); !strings.Contains(out, "served_total 5") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"served_total": 5`) {
		t.Errorf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Error("/debug/pprof/ missing profile index")
	}
}
