package obs

import (
	"path/filepath"
	"testing"
	"time"
)

func TestRunReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")

	rep := NewRunReport("testcmd", []string{"-flag", "v"})
	rep.Seed = 42
	rep.AddSection("ingest", map[string]interface{}{"records": 7})

	rec := NewSpanRecorder(nil, "testcmd", SpanOptions{})
	st := rec.Root().StartChild("stage-a", A("prefixes", 3))
	time.Sleep(time.Millisecond)
	st.End()
	rec.Root().StartChild("stage-b").End()
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	reg.Counter("things_total", "").Add(5)
	rep.Finish(rec, reg)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	got, err := ReadRunReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != RunReportSchema || got.Command != "testcmd" || got.Seed != 42 {
		t.Fatalf("header round-trip: %+v", got)
	}
	if got.GoVersion == "" || got.GoMaxProcs < 1 || got.NumCPU < 1 {
		t.Fatalf("environment not captured: %+v", got)
	}
	if got.WallSeconds <= 0 {
		t.Fatalf("wall_seconds = %v", got.WallSeconds)
	}
	if len(got.Stages) != 2 || got.Stages[0].Name != "stage-a" || got.Stages[1].Name != "stage-b" {
		t.Fatalf("stages = %+v", got.Stages)
	}
	if got.Stages[0].Seconds <= 0 {
		t.Fatalf("stage-a seconds = %v", got.Stages[0].Seconds)
	}
	if got.Stages[0].Attrs["prefixes"] != float64(3) {
		t.Fatalf("stage-a attrs = %v", got.Stages[0].Attrs)
	}
	if _, ok := got.Metrics["things_total"]; !ok {
		t.Fatalf("metric snapshot missing: %v", got.Metrics)
	}
	if _, ok := got.Sections["ingest"]; !ok {
		t.Fatalf("section missing: %v", got.Sections)
	}
}

func TestReadRunReportRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	rep := NewRunReport("testcmd", nil)
	rep.Schema = "something-else-v9"
	rep.Finish(nil, nil)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestRunReportExplicitStages(t *testing.T) {
	rep := NewRunReport("testcmd", nil)
	rep.AddStage("manual", 2*time.Second, map[string]interface{}{"n": 1})
	rep.Finish(nil, nil)
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "manual" || rep.Stages[0].Seconds != 2 {
		t.Fatalf("stages = %+v", rep.Stages)
	}
}
