package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTree simulates a parallel stage: workers append sibling spans in
// scheduling order, per-prefix spans land on the stage span with a
// volatile worker attribute — the shape the model/gen pools produce.
func buildTree(rec *SpanRecorder, order []int) {
	root := rec.Root()
	stage := root.StartChild("stage", A("prefixes", 4))
	var wg sync.WaitGroup
	for _, wi := range order {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := stage.StartChild("worker", VolatileAttr("worker", wi))
			w.Set(VolatileAttr("busy_seconds", float64(wi)*0.1))
			w.End()
			if stage.SampledPrefix(wi) {
				ps := stage.StartChild("prefix", A("prefix", "p"+string(rune('0'+wi))), VolatileAttr("worker", wi))
				ps.End()
			}
		}(wi)
	}
	wg.Wait()
	stage.Set(A("records", 42))
	stage.End()
}

func redactedTrace(t *testing.T, order []int) string {
	t.Helper()
	var buf bytes.Buffer
	sink := NewTraceSink(&buf)
	rec := NewSpanRecorder(sink, "cmd", SpanOptions{RedactTiming: true, PrefixSample: 2})
	buildTree(rec, order)
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSpanRedactedDeterminism(t *testing.T) {
	// Same logical run, two different worker arrival orders: the
	// redacted traces must be byte-identical.
	a := redactedTrace(t, []int{0, 1, 2, 3})
	b := redactedTrace(t, []int{3, 1, 0, 2})
	if a != b {
		t.Fatalf("redacted traces differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if strings.Contains(a, "busy_seconds") || strings.Contains(a, "worker\":") {
		t.Fatalf("volatile attrs leaked into redacted trace:\n%s", a)
	}
	if strings.Contains(a, "start_ns") || strings.Contains(a, "dur_ns") {
		t.Fatalf("timing fields leaked into redacted trace:\n%s", a)
	}
	// Sampled prefixes (PrefixSample=2 over ids 0..3) are 0 and 2.
	if got := strings.Count(a, `"name":"prefix"`); got != 2 {
		t.Fatalf("sampled prefix spans = %d, want 2\n%s", got, a)
	}
	if got := strings.Count(a, `"name":"worker"`); got != 4 {
		t.Fatalf("worker spans = %d, want 4\n%s", got, a)
	}
}

func TestSpanUnredactedKeepsTiming(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTraceSink(&buf)
	rec := NewSpanRecorder(sink, "cmd", SpanOptions{})
	s := rec.Root().StartChild("stage")
	time.Sleep(time.Millisecond)
	s.End()
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var saw bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if ev.Name == "stage" {
			saw = true
			if ev.DurNs <= 0 {
				t.Fatalf("stage dur_ns = %d, want > 0", ev.DurNs)
			}
			if ev.Path != "cmd/stage" || ev.Depth != 1 {
				t.Fatalf("stage path=%q depth=%d", ev.Path, ev.Depth)
			}
		}
	}
	if !saw {
		t.Fatal("no stage span emitted")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	c := s.StartChild("x", A("k", 1))
	if c != nil {
		t.Fatal("nil span produced a real child")
	}
	s.Set(A("k", 2))
	s.End()
	if s.Name() != "" || s.Seconds() != 0 || s.Children() != nil || s.SampledPrefix(0) {
		t.Fatal("nil span methods not inert")
	}
	// StartSpan without a span in context is a no-op passthrough.
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "stage")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without parent span must return (ctx, nil)")
	}
}

func TestSpanContextPlumbing(t *testing.T) {
	rec := NewSpanRecorder(nil, "cmd", SpanOptions{})
	ctx := ContextWithSpan(context.Background(), rec.Root())
	ctx, s := StartSpan(ctx, "stage", A("k", "v"))
	if s == nil {
		t.Fatal("StartSpan with parent returned nil")
	}
	if got := SpanFromContext(ctx); got != s {
		t.Fatal("derived context does not carry the child span")
	}
	_, c := StartSpan(ctx, "inner")
	c.End()
	s.End()
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	kids := rec.Root().Children()
	if len(kids) != 1 || kids[0].Name() != "stage" {
		t.Fatalf("root children = %v", kids)
	}
	inner := kids[0].Children()
	if len(inner) != 1 || inner[0].Name() != "inner" {
		t.Fatalf("stage children = %v", inner)
	}
}

func TestSpanSampling(t *testing.T) {
	rec := NewSpanRecorder(nil, "cmd", SpanOptions{PrefixSample: 3})
	s := rec.Root()
	var sampled []int
	for i := 0; i < 10; i++ {
		if s.SampledPrefix(i) {
			sampled = append(sampled, i)
		}
	}
	want := []int{0, 3, 6, 9}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	// PrefixSample 0 disables sampling entirely.
	rec0 := NewSpanRecorder(nil, "cmd", SpanOptions{})
	if rec0.Root().SampledPrefix(0) {
		t.Fatal("sampling enabled with PrefixSample=0")
	}
}

func TestSpanRecorderFinishIdempotent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTraceSink(&buf)
	rec := NewSpanRecorder(sink, "cmd", SpanOptions{})
	rec.Root().StartChild("stage").End()
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	n := len(buf.String())
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(buf.String()) != n {
		t.Fatal("second Finish re-emitted the tree")
	}
}

func TestSpanAttrOverride(t *testing.T) {
	rec := NewSpanRecorder(nil, "cmd", SpanOptions{})
	s := rec.Root().StartChild("stage", A("k", 1))
	s.Set(A("k", 2))
	s.End()
	m := s.attrMap(false)
	if m["k"] != 2 {
		t.Fatalf("attr k = %v, want later value 2", m["k"])
	}
}

// TestVolatileChildDroppedUnderRedaction: a StartVolatileChild span — and
// its whole subtree — is dropped from redacted emission but kept (with
// timing) in the profiling view, so worker-span counts can follow the
// worker count without breaking cross-worker-count trace identity.
func TestVolatileChildDroppedUnderRedaction(t *testing.T) {
	emit := func(redact bool, workers int) string {
		var buf bytes.Buffer
		sink := NewTraceSink(&buf)
		rec := NewSpanRecorder(sink, "cmd", SpanOptions{RedactTiming: redact})
		stage := rec.Root().StartChild("stage", A("prefixes", 3))
		for wi := 0; wi < workers; wi++ {
			w := stage.StartVolatileChild("worker", VolatileAttr("worker", wi))
			w.StartChild("inner", A("step", 1)).End()
			w.End()
		}
		stage.End()
		if err := rec.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	red2, red8 := emit(true, 2), emit(true, 8)
	if red2 != red8 {
		t.Fatalf("redacted traces differ across worker counts:\n--- 2 ---\n%s--- 8 ---\n%s", red2, red8)
	}
	if strings.Contains(red2, `"name":"worker"`) || strings.Contains(red2, `"name":"inner"`) {
		t.Fatalf("volatile span (or its subtree) leaked into redacted trace:\n%s", red2)
	}
	if !strings.Contains(red2, `"name":"stage"`) {
		t.Fatalf("non-volatile sibling missing from redacted trace:\n%s", red2)
	}

	full := emit(false, 3)
	if got := strings.Count(full, `"name":"worker"`); got != 3 {
		t.Fatalf("profiling view has %d worker spans, want 3\n%s", got, full)
	}
	if got := strings.Count(full, `"name":"inner"`); got != 3 {
		t.Fatalf("profiling view has %d inner spans, want 3\n%s", got, full)
	}
}
