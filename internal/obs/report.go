package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"asmodel/internal/durable"
)

// RunReportSchema versions the run-report JSON; bump on incompatible
// shape changes so cmd/obsreport can refuse files it cannot interpret.
const RunReportSchema = "asmodel-run-report-v1"

// RunReport is the machine-readable record every CLI run can write with
// -report: what ran (command, args, seed), where (go version, CPU,
// git describe), how long each stage took, and what came out (metric
// snapshot plus command-specific sections such as ingest reports and
// quarantine summaries). Reports are comparable across runs — the unit
// cmd/obsreport diffs and checks against baselines.
type RunReport struct {
	Schema      string                 `json:"schema"`
	Command     string                 `json:"command"`
	Args        []string               `json:"args,omitempty"`
	Seed        int64                  `json:"seed,omitempty"`
	Start       string                 `json:"start"` // RFC3339
	WallSeconds float64                `json:"wall_seconds"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	GoMaxProcs  int                    `json:"gomaxprocs"`
	NumCPU      int                    `json:"num_cpu"`
	Hostname    string                 `json:"hostname,omitempty"`
	GitDescribe string                 `json:"git_describe,omitempty"`
	Stages      []StageReport          `json:"stages,omitempty"`
	Metrics     map[string]interface{} `json:"metrics,omitempty"`
	Sections    map[string]interface{} `json:"sections,omitempty"`

	started time.Time
}

// StageReport is one pipeline stage's accounting: wall-clock plus the
// stage span's attributes (prefix counts, records written, workers).
type StageReport struct {
	Name    string                 `json:"name"`
	Seconds float64                `json:"seconds"`
	Attrs   map[string]interface{} `json:"attrs,omitempty"`
}

// NewRunReport starts a report for one CLI invocation, capturing the
// environment (go version, GOMAXPROCS, NumCPU, hostname, best-effort
// git describe) and the start time.
func NewRunReport(command string, args []string) *RunReport {
	now := time.Now()
	r := &RunReport{
		Schema:      RunReportSchema,
		Command:     command,
		Args:        args,
		Start:       now.Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GitDescribe: gitDescribe(),
		started:     now,
	}
	if h, err := os.Hostname(); err == nil {
		r.Hostname = h
	}
	return r
}

// AddSection attaches a command-specific payload (ingest report,
// quarantine summary, evaluation headline) under the given name.
func (r *RunReport) AddSection(name string, v interface{}) {
	if r.Sections == nil {
		r.Sections = make(map[string]interface{})
	}
	r.Sections[name] = v
}

// AddStage appends an explicit stage row (for stages not covered by a
// span, e.g. in code paths without a recorder).
func (r *RunReport) AddStage(name string, d time.Duration, attrs map[string]interface{}) {
	r.Stages = append(r.Stages, StageReport{Name: name, Seconds: d.Seconds(), Attrs: attrs})
}

// Finish closes the report: total wall time, per-stage rows derived from
// the recorder's depth-1 spans (nil recorder leaves explicit stages
// untouched), and the final metric snapshot from reg (nil skips it).
// Call once, immediately before WriteFile.
func (r *RunReport) Finish(rec *SpanRecorder, reg *Registry) {
	r.WallSeconds = time.Since(r.started).Seconds()
	if rec != nil {
		for _, c := range rec.Root().Children() {
			r.Stages = append(r.Stages, StageReport{
				Name:    c.Name(),
				Seconds: c.Seconds(),
				Attrs:   c.attrMap(false),
			})
		}
	}
	if reg != nil {
		r.Metrics = reg.Snapshot()
	}
}

// WriteFile writes the report as indented JSON via
// durable.WriteFileAtomic: temp file, fsync, rename, previous file
// rotated to .bak — a crash mid-write never clobbers the last report.
func (r *RunReport) WriteFile(path string) error {
	return durable.WriteFileAtomic(path, durable.Policy{}, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	})
}

// Write renders the report as indented JSON to w.
func (r *RunReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// gitDescribe returns `git describe --tags --always --dirty` for the
// working directory, or "" when git or the repository is unavailable —
// reports must work from release tarballs too.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--tags", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// ReadRunReport loads and schema-checks a run report.
func ReadRunReport(path string) (*RunReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("obs: parsing run report %s: %w", path, err)
	}
	if r.Schema != RunReportSchema {
		return nil, fmt.Errorf("obs: %s: unsupported run-report schema %q (want %q)", path, r.Schema, RunReportSchema)
	}
	return &r, nil
}
