package obs

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestHandlerMetricsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "requests served").Add(7)
	reg.Gauge("depth", "queue depth").Set(3)
	h := reg.Histogram("latency_seconds", "request latency", LinearBuckets(0.1, 0.1, 3))
	h.Observe(0.15)
	h.Observe(0.25)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	// /metrics: Prometheus text exposition.
	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE reqs_total counter", "reqs_total 7",
		"# TYPE depth gauge", "depth 3",
		"# TYPE latency_seconds histogram", "latency_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /metrics.json round-trips through the snapshot shape.
	body, ctype = get("/metrics.json")
	if ctype != "application/json" {
		t.Fatalf("/metrics.json content-type = %q", ctype)
	}
	var snap map[string]interface{}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if snap["reqs_total"] != float64(7) {
		t.Fatalf("reqs_total = %v", snap["reqs_total"])
	}
	hist, ok := snap["latency_seconds"].(map[string]interface{})
	if !ok {
		t.Fatalf("latency_seconds = %v", snap["latency_seconds"])
	}
	if hist["count"] != float64(2) {
		t.Fatalf("latency count = %v", hist["count"])
	}
	if math.Abs(hist["sum"].(float64)-0.4) > 1e-9 {
		t.Fatalf("latency sum = %v", hist["sum"])
	}
}

func TestHandlerProbeEndpoints(t *testing.T) {
	reg := NewRegistry()
	var ready atomic.Bool
	srv := httptest.NewServer(HandlerReady(reg, ready.Load))
	defer srv.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Liveness is unconditional; readiness follows the callback.
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while unready = %d, want 503", got)
	}
	ready.Store(true)
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz while ready = %d, want 200", got)
	}

	// The nil-callback Handler always reports ready.
	srv2 := httptest.NewServer(Handler(reg))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-ready /readyz = %d, want 200", resp.StatusCode)
	}
}

func TestQuantileEdges(t *testing.T) {
	// Empty histogram: every quantile is 0.
	h := newHistogram(LinearBuckets(1, 1, 3))
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}

	// Single observation in a single-bound histogram.
	h = newHistogram([]float64{10})
	h.Observe(5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 10 {
			t.Fatalf("single-sample Quantile(%g) = %v, want bucket bound 10", q, got)
		}
	}

	// Observation above every bound falls in the +Inf bucket, which
	// reports the largest finite bound.
	h = newHistogram([]float64{1, 2})
	h.Observe(100)
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("overflow Quantile(1) = %v, want 2", got)
	}

	// No bounds at all: any sample maps to +Inf.
	h = newHistogram(nil)
	h.Observe(1)
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Fatalf("boundless Quantile(0.5) = %v, want +Inf", got)
	}

	// q=0 and q=1 bracket a multi-bucket spread.
	h = newHistogram(LinearBuckets(1, 1, 4)) // bounds 1,2,3,4
	h.Observe(0.5)                           // bucket <=1
	h.Observe(3.5)                           // bucket <=4
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", got)
	}
}

func TestTraceSinkClose(t *testing.T) {
	w := &closeRecorder{}
	s := NewTraceSink(w)
	if err := s.Emit(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if w.closes != 1 {
		t.Fatalf("underlying writer closed %d times, want 1", w.closes)
	}
	if !strings.Contains(w.buf.String(), `"a":1`) {
		t.Fatalf("buffered event not flushed on close: %q", w.buf.String())
	}
	// Emit after close fails with the sentinel.
	if err := s.Emit(map[string]int{"b": 2}); !errors.Is(err, ErrSinkClosed) {
		t.Fatalf("emit after close = %v, want ErrSinkClosed", err)
	}
	// Second close is a no-op.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if w.closes != 1 {
		t.Fatalf("second Close reached the writer (%d closes)", w.closes)
	}
}

type closeRecorder struct {
	buf    strings.Builder
	closes int
}

func (c *closeRecorder) Write(p []byte) (int, error) { return c.buf.Write(p) }
func (c *closeRecorder) Close() error                { c.closes++; return nil }
