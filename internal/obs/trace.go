package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"sync"
)

// ErrSinkClosed is returned by Emit after Close.
var ErrSinkClosed = errors.New("obs: trace sink closed")

// TraceSink writes structured trace events as JSON Lines: one
// json.Marshal-ed event per line. Emission is deterministic for a
// deterministic event stream — struct fields marshal in declaration
// order and the sink adds nothing of its own (no timestamps, no sequence
// numbers) — so two identical runs produce byte-identical trace files.
// Safe for concurrent use.
type TraceSink struct {
	mu     sync.Mutex
	out    io.Writer
	w      *bufio.Writer
	n      int
	err    error
	closed bool
}

// NewTraceSink wraps w in a buffered JSONL sink. Call Flush (or Close on
// the underlying file after Flush) when done.
func NewTraceSink(w io.Writer) *TraceSink {
	return &TraceSink{out: w, w: bufio.NewWriter(w)}
}

// Emit writes one event as a single JSON line. After the first error all
// subsequent emits are dropped; check Err.
func (s *TraceSink) Emit(event interface{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	if s.err != nil {
		return s.err
	}
	b, err := json.Marshal(event)
	if err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
		return err
	}
	s.n++
	return nil
}

// Count returns the number of events emitted successfully.
func (s *TraceSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first emission error, if any.
func (s *TraceSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush writes buffered data to the underlying writer.
func (s *TraceSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *TraceSink) flushLocked() error {
	if s.err != nil {
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Close flushes buffered events and closes the underlying writer when it
// is an io.Closer (a file, or a durable.RetryWriter forwarding to one).
// Emits after Close return ErrSinkClosed. Idempotent: the second Close is
// a no-op returning nil, so `defer sink.Close()` composes with an
// explicit error-checked Close on the success path.
func (s *TraceSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.flushLocked()
	if c, ok := s.out.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Sync flushes and, when the underlying writer supports it (an *os.File),
// fsyncs — used at durability points such as refinement checkpoints so
// the trace on disk is consistent with the checkpoint that references it.
func (s *TraceSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if f, ok := s.out.(interface{ Sync() error }); ok {
		if err := f.Sync(); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}
