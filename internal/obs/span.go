package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Spans are the pipeline's hierarchical timing layer: every stage
// (ingest, generate, refine, evaluate), every refinement iteration and
// verify sweep, every pool worker and — when sampling is enabled —
// individual per-prefix simulations open a Span, attach attributes, and
// close it. The tree is held in memory by a SpanRecorder and emitted to
// a TraceSink as one JSON line per span when the recorder finishes; the
// same tree feeds RunReport's per-stage breakdown.
//
// The determinism contract extends the trace-event rule: span *structure
// and attributes* are byte-identical across identical runs when timing
// is redacted (SpanOptions.RedactTiming, the CLI's -trace-redact-timing).
// Two mechanisms make that hold even for parallel sections:
//
//   - attributes whose values depend on scheduling (per-worker busy/idle
//     time, which worker ran a prefix, prefixes stolen per worker) are
//     declared Volatile and dropped from redacted output;
//   - sibling spans, which parallel workers append in arrival order, are
//     sorted by (name, attributes) before redacted emission, so the
//     nondeterministic arrival order never reaches the file;
//   - whole spans whose *existence* depends on scheduling — pool worker
//     spans, whose count follows the worker count — are opened with
//     StartVolatileChild and dropped (with their subtree) from redacted
//     output, so the redacted trace is identical across worker counts,
//     not just across repeated runs at one count.
//
// Without redaction, spans keep arrival order and carry start/duration
// nanoseconds — the profiling view, which makes no determinism claim.

// Attr is one span attribute. Volatile marks values that depend on
// timing or goroutine scheduling; they are omitted when the recorder
// redacts timing so the redacted stream stays deterministic.
type Attr struct {
	Key      string
	Value    interface{}
	Volatile bool
}

// A builds a deterministic attribute: its value must depend only on the
// run's inputs (dataset, seed, flags), never on wall-clock or scheduling.
func A(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// VolatileAttr builds a timing-dependent attribute (worker utilization,
// queue waits, prefix-to-worker assignment); redacted emission drops it.
func VolatileAttr(key string, value interface{}) Attr {
	return Attr{Key: key, Value: value, Volatile: true}
}

// SpanOptions configures a SpanRecorder.
type SpanOptions struct {
	// RedactTiming drops start/duration fields and Volatile attributes
	// from the emitted span events and sorts sibling spans
	// deterministically — the mode the determinism tests run under.
	RedactTiming bool
	// PrefixSample enables per-prefix spans for every Nth prefix
	// (prefix-ID modulo, so the sampled set is deterministic and
	// identical across worker counts). 0 disables per-prefix spans;
	// 1 records every prefix.
	PrefixSample int
}

// SpanRecorder owns one run's span tree. The sink may be nil: spans are
// still collected (for RunReport stage accounting) but nothing is
// emitted. Safe for concurrent StartChild/End on its spans.
type SpanRecorder struct {
	sink *TraceSink
	opts SpanOptions

	mu       sync.Mutex
	root     *Span
	finished bool
}

// NewSpanRecorder builds a recorder whose root span is named rootName
// (conventionally the command, e.g. "asmodel refine"). The root starts
// immediately; Finish ends it and emits the tree.
func NewSpanRecorder(sink *TraceSink, rootName string, opts SpanOptions, attrs ...Attr) *SpanRecorder {
	r := &SpanRecorder{sink: sink, opts: opts}
	r.root = &Span{rec: r, name: rootName, attrs: attrs, start: time.Now()}
	return r
}

// Root returns the recorder's root span; put it in a context with
// ContextWithSpan so library layers can open children under it.
func (r *SpanRecorder) Root() *Span { return r.root }

// Finish ends the root span (if still open) and emits the whole tree to
// the sink, one JSON line per span in depth-first order. Idempotent;
// returns the first sink emission error.
func (r *SpanRecorder) Finish() error {
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		return nil
	}
	r.finished = true
	r.mu.Unlock()
	r.root.End()
	if r.sink == nil {
		return nil
	}
	return r.emit(r.root, "", 0)
}

// emit writes one span and its children. Under redaction the children
// are emitted in sorted (name, attributes) order; otherwise in arrival
// order.
func (r *SpanRecorder) emit(s *Span, parentPath string, depth int) error {
	path := s.name
	if parentPath != "" {
		path = parentPath + "/" + s.name
	}
	ev := SpanEvent{Type: "span", Name: s.name, Path: path, Depth: depth, Attrs: s.attrMap(r.opts.RedactTiming)}
	if !r.opts.RedactTiming {
		ev.StartNs = s.start.Sub(r.root.start).Nanoseconds()
		ev.DurNs = s.duration().Nanoseconds()
	}
	if err := r.sink.Emit(ev); err != nil {
		return err
	}
	s.mu.Lock()
	children := make([]*Span, 0, len(s.children))
	for _, c := range s.children {
		if r.opts.RedactTiming && c.volatile {
			continue
		}
		children = append(children, c)
	}
	s.mu.Unlock()
	if r.opts.RedactTiming {
		sort.SliceStable(children, func(i, j int) bool {
			if children[i].name != children[j].name {
				return children[i].name < children[j].name
			}
			return children[i].sortKey() < children[j].sortKey()
		})
	}
	for _, c := range children {
		if err := r.emit(c, path, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// SpanEvent is the JSONL wire form of one span. Attrs marshal as a JSON
// object (Go sorts map keys), so identical attribute sets yield
// identical bytes. StartNs is the offset from the root span's start.
type SpanEvent struct {
	Type    string                 `json:"type"`
	Name    string                 `json:"name"`
	Path    string                 `json:"path"`
	Depth   int                    `json:"depth"`
	Attrs   map[string]interface{} `json:"attrs,omitempty"`
	StartNs int64                  `json:"start_ns,omitempty"`
	DurNs   int64                  `json:"dur_ns,omitempty"`
}

// Span is one timed node of the tree. The zero *Span (nil) is a valid
// no-op span: every method is nil-safe, so instrumented code needs no
// "is tracing on" branches.
type Span struct {
	rec   *SpanRecorder
	name  string
	start time.Time

	// volatile marks a span whose existence depends on goroutine
	// scheduling (e.g. one pool worker span per worker): redacted
	// emission drops it together with its subtree.
	volatile bool

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
}

// StartChild opens a child span. Safe to call from multiple goroutines
// (pool workers attach their spans to the shared stage span).
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, name: name, attrs: attrs, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// StartVolatileChild opens a child span that is the span-level analogue
// of VolatileAttr: its presence (typically its count — one per pool
// worker) depends on scheduling or configuration rather than on the
// run's inputs, so redacted emission skips it and everything beneath
// it. Use it for per-worker spans so the redacted trace stays identical
// across worker counts.
func (s *Span) StartVolatileChild(name string, attrs ...Attr) *Span {
	c := s.StartChild(name, attrs...)
	if c != nil {
		c.volatile = true
	}
	return c
}

// Set appends attributes (typically results known only at the end: row
// counts, reopened prefixes, worker utilization). A later attribute with
// an existing key overrides the earlier one at emission.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End records the span's duration; later Ends are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// duration returns the recorded duration, or the live elapsed time for a
// span that was never ended (e.g. aborted by an error return).
func (s *Span) duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SampledPrefix reports whether per-prefix spans are enabled for this
// prefix index under the recorder's PrefixSample knob. Keyed on the
// dense prefix ID, the sampled set is identical across runs and worker
// counts. Nil-safe: false without a recorder.
func (s *Span) SampledPrefix(i int) bool {
	if s == nil || s.rec == nil || s.rec.opts.PrefixSample <= 0 {
		return false
	}
	return i%s.rec.opts.PrefixSample == 0
}

// Name returns the span's name ("" for the nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Seconds returns the span's duration in seconds (0 for the nil span).
func (s *Span) Seconds() float64 {
	if s == nil {
		return 0
	}
	return s.duration().Seconds()
}

// Children returns a snapshot of the span's direct children in arrival
// order (RunReport turns the root's children into stage rows).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// attrMap folds the attribute list into a map (later keys win),
// dropping Volatile attributes when redacting.
func (s *Span) attrMap(redact bool) map[string]interface{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.attrs) == 0 {
		return nil
	}
	out := make(map[string]interface{}, len(s.attrs))
	for _, a := range s.attrs {
		if redact && a.Volatile {
			continue
		}
		out[a.Key] = a.Value
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sortKey is the deterministic sibling order under redaction: the JSON
// of the non-volatile attribute map (map marshaling sorts keys).
func (s *Span) sortKey() string {
	m := s.attrMap(true)
	if m == nil {
		return ""
	}
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Sprintf("%v", m)
	}
	return string(b)
}

// --- Context plumbing ---------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil (the no-op span) when
// the context carries none.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// derived context carrying the child. Without a current span it returns
// ctx unchanged and the nil no-op span, so instrumented library code
// costs one context lookup when tracing is off.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name, attrs...)
	return ContextWithSpan(ctx, c), c
}
