package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry and the standard
// Go debug surfaces:
//
//	/metrics      Prometheus text exposition of the registry
//	/metrics.json JSON snapshot of the registry
//	/debug/vars   expvar (memstats, cmdline)
//	/debug/pprof  net/http/pprof profiles
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts a debug HTTP server for the registry on addr (e.g. ":0",
// "localhost:6060") and returns once the listener is bound. The server
// runs until Close is called or the process exits.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: Handler(r)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
