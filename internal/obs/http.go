package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry, probe
// endpoints, and the standard Go debug surfaces:
//
//	/metrics      Prometheus text exposition of the registry
//	/metrics.json JSON snapshot of the registry
//	/healthz      liveness probe (200 while the process serves HTTP)
//	/readyz       readiness probe (see HandlerReady)
//	/debug/vars   expvar (memstats, cmdline)
//	/debug/pprof  net/http/pprof profiles
//
// Handler is HandlerReady with a nil readiness check: /readyz always
// reports ready, which is right for pure debug endpoints.
func Handler(r *Registry) http.Handler {
	return HandlerReady(r, nil)
}

// HandlerReady is Handler with a readiness callback: /readyz returns
// 200 "ok" while ready() is true and 503 "unready" otherwise (nil ready
// means always ready). /healthz is pure liveness and stays 200 either
// way — an orchestrator should restart on failed /healthz and only
// unroute on failed /readyz.
func HandlerReady(r *Registry, ready func() bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("unready\n"))
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// CloseTimeout bounds Server.Close's graceful drain before in-flight
// requests are cut off. Package-level so CLI shutdown paths share one
// knob.
var CloseTimeout = 2 * time.Second

// Server is a running debug HTTP server.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts a debug HTTP server for the registry on addr (e.g. ":0",
// "localhost:6060") and returns once the listener is bound. The server
// runs until Close is called or the process exits.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeReady(addr, r, nil)
}

// ServeReady is Serve with a readiness callback for /readyz (see
// HandlerReady).
func ServeReady(addr string, r *Registry, ready func() bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: HandlerReady(r, ready)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the server down gracefully: the listener stops accepting
// immediately, in-flight scrapes get up to CloseTimeout to finish, and
// only then are remaining connections hard-closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), CloseTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
