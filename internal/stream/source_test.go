package stream

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"asmodel/internal/dataset"
	"asmodel/internal/mrt"
)

// readAll drains a non-follow source and returns the record count.
func readAll(t *testing.T, src Source) int {
	t.Helper()
	n := 0
	for {
		_, err := src.Next(context.Background())
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		n++
	}
}

func TestFileSourceOneshot(t *testing.T) {
	dir := t.TempDir()
	path, n := writeUpdatesFile(t, dir)
	src := NewFileSource(path, false, 0)
	defer src.Close()
	if got := readAll(t, src); got != n {
		t.Fatalf("read %d records, want %d", got, n)
	}
	// Reset must replay the identical sequence.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, src); got != n {
		t.Fatalf("after Reset: read %d records, want %d", got, n)
	}
}

// TestFileSourceTruncatedTail: a final partial record surfaces as
// mrt.ErrTruncated in oneshot mode.
func TestFileSourceTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeUpdatesFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	src := NewFileSource(path, false, 0)
	defer src.Close()
	var lastErr error
	for {
		_, err := src.Next(context.Background())
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, mrt.ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", lastErr)
	}
}

// TestFileSourceFollow tails a growing file: records appended after the
// reader hits EOF — including one landing in two torn halves — must all
// arrive, in order.
func TestFileSourceFollow(t *testing.T) {
	dir := t.TempDir()
	full, total := writeUpdatesFile(t, dir)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Start the tailed file with roughly the first third of the stream,
	// cut at a record boundary (records are self-framing; find the
	// boundary by re-reading).
	boundary := recordBoundary(t, raw, total/3)
	path := filepath.Join(dir, "tail.mrt")
	if err := os.WriteFile(path, raw[:boundary], 0o644); err != nil {
		t.Fatal(err)
	}

	src := NewFileSource(path, true, 5*time.Millisecond)
	defer src.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type rec struct {
		n   int
		err error
	}
	done := make(chan rec, 1)
	go func() {
		n := 0
		for n < total {
			_, err := src.Next(ctx)
			if err != nil {
				done <- rec{n, err}
				return
			}
			n++
		}
		done <- rec{n, nil}
	}()

	// Append the rest in three writes: a torn half-record, its
	// completion, then the remainder.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	next := recordBoundary(t, raw, total/3+1)
	mid := boundary + (next-boundary)/2
	for _, chunk := range [][]byte{raw[boundary:mid], raw[mid:next], raw[next:]} {
		time.Sleep(20 * time.Millisecond)
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	r := <-done
	if r.err != nil {
		t.Fatalf("tail read failed after %d records: %v", r.n, r.err)
	}
	if r.n != total {
		t.Fatalf("tailed %d records, want %d", r.n, total)
	}
}

// recordBoundary returns the byte offset just after the nth record.
func recordBoundary(t *testing.T, raw []byte, n int) int {
	t.Helper()
	cr := &countingReader{r: &sliceReader{b: raw}}
	rd := mrt.NewReader(cr)
	for i := 0; i < n; i++ {
		if _, err := rd.Next(); err != nil {
			t.Fatalf("boundary scan at record %d: %v", i, err)
		}
	}
	return int(cr.n)
}

// sliceReader is a bytes.Reader without ReadAt/Seek, so countingReader
// sees plain sequential reads.
type sliceReader struct {
	b   []byte
	off int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.off >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.off:])
	s.off += n
	return n, nil
}

// splitUpdates splits the fixture stream across parts files in dir at
// record boundaries and returns the total record count.
func splitUpdates(t *testing.T, dir string, parts int) int {
	t.Helper()
	tmp := t.TempDir()
	full, total := writeUpdatesFile(t, tmp)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	per := total / parts
	start := 0
	for i := 0; i < parts; i++ {
		endRec := (i + 1) * per
		if i == parts-1 {
			endRec = total
		}
		end := recordBoundary(t, raw, endRec)
		name := filepath.Join(dir, "updates."+string(rune('a'+i))+".mrt")
		if err := os.WriteFile(name, raw[start:end], 0o644); err != nil {
			t.Fatal(err)
		}
		start = end
	}
	return total
}

func TestDirSourceOneshot(t *testing.T) {
	dir := t.TempDir()
	total := splitUpdates(t, dir, 3)
	src := NewDirSource(dir, "", false, 0)
	defer src.Close()
	if got := readAll(t, src); got != total {
		t.Fatalf("read %d records, want %d", got, total)
	}
	if src.Describe() != "dir:"+filepath.Join(dir, "*.mrt") {
		t.Fatalf("descriptor %q", src.Describe())
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, src); got != total {
		t.Fatalf("after Reset: read %d records, want %d", got, total)
	}
}

// TestDirSourceFollow: new files appearing after the current last file
// is drained are picked up in lexical order.
func TestDirSourceFollow(t *testing.T) {
	staging := t.TempDir()
	total := splitUpdates(t, staging, 3)
	dir := t.TempDir()
	cp := func(name string) {
		b, err := os.ReadFile(filepath.Join(staging, name))
		if err != nil {
			t.Fatal(err)
		}
		// Write-then-rename, the archive drop convention.
		tmp := filepath.Join(dir, name+".part")
		if err := os.WriteFile(tmp, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	cp("updates.a.mrt")

	src := NewDirSource(dir, "", true, 5*time.Millisecond)
	defer src.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	var got int
	go func() {
		for got < total {
			_, err := src.Next(ctx)
			if err != nil {
				done <- err
				return
			}
			got++
		}
		done <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	cp("updates.b.mrt")
	time.Sleep(20 * time.Millisecond)
	cp("updates.c.mrt")
	if err := <-done; err != nil {
		t.Fatalf("after %d records: %v", got, err)
	}
	if got != total {
		t.Fatalf("read %d records, want %d", got, total)
	}
}

// TestDirSourceMidFileTruncation: a torn non-last file is corruption
// (later files prove the writer moved on), not an append in progress.
func TestDirSourceMidFileTruncation(t *testing.T) {
	dir := t.TempDir()
	splitUpdates(t, dir, 3)
	first := filepath.Join(dir, "updates.a.mrt")
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	src := NewDirSource(dir, "", false, 0)
	defer src.Close()
	var lastErr error
	for {
		_, err := src.Next(context.Background())
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, mrt.ErrTruncated) || lastErr == mrt.ErrTruncated {
		t.Fatalf("got %v, want wrapped ErrTruncated", lastErr)
	}
}

// TestDirSourceChangedUnderCursor: removing an already-consumed file
// breaks replayability and must be reported, not ignored.
func TestDirSourceChangedUnderCursor(t *testing.T) {
	dir := t.TempDir()
	splitUpdates(t, dir, 3)
	src := NewDirSource(dir, "", false, 0)
	defer src.Close()
	// Drain past the first file.
	firstLen := func() int {
		f, err := os.Open(filepath.Join(dir, "updates.a.mrt"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rd := mrt.NewReader(f)
		n := 0
		for {
			if _, err := rd.Next(); err != nil {
				return n
			}
			n++
		}
	}()
	for i := 0; i < firstLen+1; i++ {
		if _, err := src.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, "updates.a.mrt")); err != nil {
		t.Fatal(err)
	}
	// The removal is noticed at the next directory rescan (the next
	// file-boundary crossing).
	var lastErr error
	for {
		_, err := src.Next(context.Background())
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF ||
		!strings.Contains(lastErr.Error(), "changed under the cursor") {
		t.Fatalf("got %v, want changed-under-cursor error", lastErr)
	}
}

// TestStreamFromDirSource runs the full streaming loop over a directory
// source with a crash, asserting the same recovery contract as the
// file-source matrix.
func TestStreamFromDirSource(t *testing.T) {
	mk := func(dir, stateDir string) Config {
		return Config{
			Source:       NewDirSource(dir, "", false, 0),
			StatePath:    filepath.Join(stateDir, "stream.state"),
			BatchRecords: 25,
			Workers:      2,
			Bootstrap:    testDataset(t),
			Logf:         t.Logf,
		}
	}
	cleanDir, cleanState := t.TempDir(), t.TempDir()
	splitUpdates(t, cleanDir, 3)
	cfgClean := mk(cleanDir, cleanState)
	cfgClean.Bootstrap = bootstrapDirDataset(t, cleanDir)
	resClean, err := New(cfgClean).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(cfgClean.StatePath)
	if err != nil {
		t.Fatal(err)
	}

	crashDir, crashState := t.TempDir(), t.TempDir()
	splitUpdates(t, crashDir, 3)
	cfg := mk(crashDir, crashState)
	cfg.Bootstrap = bootstrapDirDataset(t, crashDir)
	s := New(cfg)
	s.crashHook = func(point string, seq int64) {
		if point == "pre-commit" && seq == 2 {
			panic(crashSentinel{point: point, seq: seq})
		}
	}
	if _, _, crashed := runMaybeCrash(context.Background(), s); !crashed {
		t.Fatal("crash did not fire")
	}
	cfg2 := mk(crashDir, crashState)
	cfg2.Bootstrap = cfg.Bootstrap
	res, err := New(cfg2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(cfg2.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(normState(gotBytes)) != string(normState(wantBytes)) {
		t.Fatal("dir-source state differs from clean run after crash+restart")
	}
	if res.Totals != resClean.Totals {
		t.Fatalf("totals differ: %+v vs %+v", res.Totals, resClean.Totals)
	}
}

// bootstrapDirDataset replays a whole directory into a dataset.
func bootstrapDirDataset(t *testing.T, dir string) *dataset.Dataset {
	t.Helper()
	src := NewDirSource(dir, "", false, 0)
	defer src.Close()
	rp := mrt.NewReplayer(0, 0)
	for {
		rec, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := rp.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	return rp.Dataset()
}
