// Package stream turns batch refinement into a long-running service: it
// tails a BGP update source (a growing MRT file or a directory of MRT
// files), cuts deterministic record-count batches, delta-evaluates only
// the prefixes whose observations changed, patches the model through
// the speculative refinement machinery, and commits cursor + checkpoint
// atomically after every batch so a crash at any point resumes
// byte-identically to an uninterrupted run (DESIGN.md §9).
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"asmodel/internal/durable"
	"asmodel/internal/mrt"
	"asmodel/internal/obs"
)

var mSourceRetries = obs.GetCounter("stream_source_retries_total",
	"transient source read/open errors retried")

// Source is a replayable MRT record feed. Next returns records in a
// fixed order; in follow mode it blocks (polling) until a record
// arrives or ctx is done, and io.EOF is only returned once the source
// is exhausted for good (never in follow mode). Reset rewinds to the
// beginning so crash recovery can re-read the committed prefix of the
// stream; a Source must yield the same record sequence after Reset.
type Source interface {
	Next(ctx context.Context) (*mrt.Record, error)
	Reset() error
	// Describe returns a stable descriptor ("file:…", "dir:…") recorded
	// in the stream cursor and validated on resume.
	Describe() string
	Close() error
}

// DefaultPoll is the follow-mode poll interval when Config.Poll is zero.
const DefaultPoll = 500 * time.Millisecond

// FramingError marks an error from decoding the MRT record stream
// itself — a torn final record or desynced length-prefixed framing —
// as opposed to an operational source failure (open, read, directory
// scan). The stream loop handles framing errors leniently (count one
// skip, end at the last good record, like batch ingestion) while
// operational failures abort the run: a missing or unreadable source
// is an error, not an empty stream.
type FramingError struct{ Err error }

func (e *FramingError) Error() string { return e.Err.Error() }
func (e *FramingError) Unwrap() error { return e.Err }

// retryPolicy is the shared source-I/O retry policy: transient faults
// (durable.Transient) are retried with bounded backoff and counted.
func retryPolicy() durable.Policy {
	return durable.Policy{OnRetry: func(error) { mSourceRetries.Inc() }}
}

// countingReader tracks the byte offset of the last read, so a tailing
// source can reopen at the last complete record boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// fileSource reads one MRT file, optionally tailing it as it grows: a
// clean EOF or a mid-record truncation (an append in progress) parks
// the reader at the last complete record boundary and polls for growth.
type fileSource struct {
	path   string
	follow bool
	poll   time.Duration

	f    *os.File
	cr   *countingReader
	rd   *mrt.Reader
	good int64 // offset of the last complete record boundary
}

// NewFileSource tails a single MRT file. With follow false the source
// ends at the file's current end (a final partial record surfaces as
// mrt.ErrTruncated); with follow true it polls for appended records
// every poll interval (0 = DefaultPoll) and never returns io.EOF.
func NewFileSource(path string, follow bool, poll time.Duration) Source {
	if poll <= 0 {
		poll = DefaultPoll
	}
	return &fileSource{path: path, follow: follow, poll: poll}
}

func (s *fileSource) Describe() string { return "file:" + s.path }

func (s *fileSource) openAt(off int64) error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	var f *os.File
	pol := retryPolicy()
	if oerr := retryOpen(pol, s.path, &f); oerr != nil {
		return oerr
	}
	if off > 0 {
		if _, serr := f.Seek(off, io.SeekStart); serr != nil {
			f.Close()
			return serr
		}
	}
	s.f = f
	s.cr = &countingReader{r: durable.NewRetryReader(f, pol), n: off}
	s.rd = mrt.NewReader(s.cr)
	s.good = off
	return nil
}

// retryOpen opens path under the retry policy (a transient open failure
// — NFS hiccup, rotation race — degrades to a retried open).
func retryOpen(pol durable.Policy, path string, out **os.File) error {
	var lastErr error
	for attempt := 0; attempt <= 4; attempt++ {
		f, err := os.Open(path)
		if err == nil {
			*out = f
			return nil
		}
		lastErr = err
		if !durable.IsTransient(err) {
			return err
		}
		mSourceRetries.Inc()
		time.Sleep(time.Millisecond << uint(attempt))
	}
	return lastErr
}

func (s *fileSource) Next(ctx context.Context) (*mrt.Record, error) {
	if s.f == nil {
		if err := s.openAt(0); err != nil {
			return nil, err
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := s.rd.Next()
		if err == nil {
			s.good = s.cr.n
			return rec, nil
		}
		tail := err == io.EOF || errors.Is(err, mrt.ErrTruncated)
		if !tail || !s.follow {
			if err != io.EOF {
				// Everything the MRT decoder returns is a stream-framing
				// problem; I/O failures underneath surface from openAt or
				// the retry reader's typed errors and stay operational.
				err = &FramingError{Err: err}
			}
			return nil, err
		}
		// Follow mode: the writer has not finished this record yet (or
		// nothing new was appended). Park at the last complete boundary,
		// wait, and re-read from there.
		if werr := sleepCtx(ctx, s.poll); werr != nil {
			return nil, werr
		}
		if oerr := s.openAt(s.good); oerr != nil {
			return nil, oerr
		}
	}
}

func (s *fileSource) Reset() error {
	return s.openAt(0)
}

func (s *fileSource) Close() error {
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// dirSource reads a directory of MRT files in lexical filename order —
// the archive convention (updates.<timestamp>.mrt) sorts
// chronologically. A file is considered complete once a lexically later
// file exists; the last file is tailed in follow mode. In follow mode
// the directory is re-scanned for new files whenever the current last
// file stops growing.
type dirSource struct {
	dir     string
	pattern string
	follow  bool
	poll    time.Duration

	files []string
	idx   int
	cur   *fileSource
}

// NewDirSource reads every file in dir matching pattern (a filepath.Match
// pattern; "" means "*.mrt") in lexical order, optionally watching for
// new files.
func NewDirSource(dir, pattern string, follow bool, poll time.Duration) Source {
	if pattern == "" {
		pattern = "*.mrt"
	}
	if poll <= 0 {
		poll = DefaultPoll
	}
	return &dirSource{dir: dir, pattern: pattern, follow: follow, poll: poll}
}

func (s *dirSource) Describe() string { return "dir:" + filepath.Join(s.dir, s.pattern) }

func (s *dirSource) scan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ok, merr := filepath.Match(s.pattern, e.Name())
		if merr != nil {
			return fmt.Errorf("stream: bad dir pattern %q: %w", s.pattern, merr)
		}
		if ok {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	// Never drop or reorder files already consumed: new arrivals sorting
	// before the current position would silently change the replay
	// sequence, so they are rejected.
	for i := 0; i < s.idx && i < len(s.files); i++ {
		if i >= len(files) || files[i] != s.files[i] {
			return fmt.Errorf("stream: directory %s changed under the cursor (file %q removed or resequenced)", s.dir, s.files[i])
		}
	}
	s.files = files
	return nil
}

func (s *dirSource) Next(ctx context.Context) (*mrt.Record, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.cur == nil {
			if err := s.scan(); err != nil {
				return nil, err
			}
			if s.idx >= len(s.files) {
				if !s.follow {
					return nil, io.EOF
				}
				if err := sleepCtx(ctx, s.poll); err != nil {
					return nil, err
				}
				continue
			}
			// Files open in non-follow mode; only the lexically-last one
			// is tailed, and that is handled below at the boundary.
			s.cur = &fileSource{
				path:   filepath.Join(s.dir, s.files[s.idx]),
				follow: false,
				poll:   s.poll,
			}
		}
		rec, err := s.cur.Next(ctx)
		if err == nil {
			return rec, nil
		}
		if err == io.EOF || errors.Is(err, mrt.ErrTruncated) {
			truncated := errors.Is(err, mrt.ErrTruncated)
			// End of the current file. If a later file exists the file is
			// complete (a truncation there is real corruption, surfaced);
			// otherwise, in follow mode, wait for growth or a new file.
			if rerr := s.scan(); rerr != nil {
				return nil, rerr
			}
			if s.idx < len(s.files)-1 {
				if truncated {
					return nil, fmt.Errorf("stream: %s: %w (mid-file truncation with later files present)",
						s.cur.path, mrt.ErrTruncated)
				}
				s.cur.Close()
				s.cur = nil
				s.idx++
				continue
			}
			if !s.follow {
				s.cur.Close()
				s.cur = nil
				s.idx++
				if truncated {
					return nil, err
				}
				continue // re-enters the loop; idx past end → EOF
			}
			// Tail: park at the boundary and retry from there.
			if werr := sleepCtx(ctx, s.poll); werr != nil {
				return nil, werr
			}
			if oerr := s.cur.openAt(s.cur.good); oerr != nil {
				return nil, oerr
			}
			continue
		}
		return nil, err
	}
}

func (s *dirSource) Reset() error {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	s.files = nil
	s.idx = 0
	return s.scan()
}

func (s *dirSource) Close() error {
	if s.cur != nil {
		err := s.cur.Close()
		s.cur = nil
		return err
	}
	return nil
}
