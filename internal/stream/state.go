package stream

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strconv"
	"strings"

	"asmodel/internal/durable"
	"asmodel/internal/model"
	"asmodel/internal/obs"
)

// The stream state file is the single commit point of the streaming
// refinement loop: a source-position cursor (asmodel-stream-cursor-v1)
// followed by a verbatim embedded refinement checkpoint
// (asmodel-checkpoint-v1, which itself embeds the model and ends with
// the model's "end" trailer — the integrity marker for the whole file).
// Cursor and checkpoint are written in ONE durable.WriteFileAtomic
// call: either both land or neither does, which is what makes a batch
// exactly-once — there is no observable state where the model reflects
// a batch the cursor has not consumed, or vice versa.

// Totals is the cumulative, committed accounting of a stream: replay
// counts plus refinement result counts summed over every committed
// batch. It is part of the cursor, so a resumed run reports exactly
// what an uninterrupted run would.
type Totals struct {
	Updates           int `json:"updates"`
	Announces         int `json:"announces"`
	Withdraws         int `json:"withdraws"`
	SkippedRecords    int `json:"skipped_records"`
	ChangedPrefixes   int `json:"changed_prefixes"`
	UnknownPrefixes   int `json:"unknown_prefixes"`
	RefinedPrefixes   int `json:"refined_prefixes"`
	Iterations        int `json:"iterations"`
	QuasiRoutersAdded int `json:"quasi_routers_added"`
	FiltersAdded      int `json:"filters_added"`
	FiltersRemoved    int `json:"filters_removed"`
	MEDRules          int `json:"med_rules"`
	LocalPrefRules    int `json:"local_pref_rules"`
	DivergedPrefixes  int `json:"diverged_prefixes"`
	QuarantinedBatch  int `json:"quarantined_batches"`
	RetriedBatches    int `json:"retried_batches"`
}

// UnstablePrefix is one pending stable-route exclusion carried in the
// cursor: Prefix was left out of a committed batch's delta because its
// youngest route was younger than -min-age at the snapshot, and
// StableAt is the stream timestamp at which that route turns stable.
// The loop re-marks the prefix changed once the stream passes StableAt,
// so a quiet prefix announced once is eventually refined — matching
// batch mode, where stability is evaluated once at end-of-stream.
type UnstablePrefix struct {
	Prefix   netip.Prefix
	StableAt int64
}

// Cursor is the committed source position and run parameters. The
// parameters that define batch boundaries (BatchRecords) and snapshot
// contents (MinAge) are part of the cursor and validated on resume:
// changing either would silently change where batches fall, breaking
// the determinism argument, so a mismatch is an error instead.
type Cursor struct {
	// Source is the Source.Describe() descriptor the cursor was cut
	// from; a resume against a different descriptor is refused.
	Source string
	// BatchRecords and MinAge are the run parameters (see above).
	BatchRecords int
	MinAge       int64
	// Records is the count of MRT records consumed by committed batches;
	// recovery replays exactly this many records before continuing.
	Records int64
	// Batches is the committed batch sequence number.
	Batches int64
	// LastTS is the replayer's LastTimestamp at commit — validated
	// against the re-replayed source on resume, so a source file that
	// changed under the cursor is caught instead of silently diverging.
	LastTS int64
	// Totals is the cumulative accounting at commit.
	Totals Totals
	// Unstable is the pending stable-route exclusion set at commit,
	// sorted by prefix. It rides in the cursor so a resumed run
	// re-includes aged-in prefixes at exactly the batch an uninterrupted
	// run would.
	Unstable []UnstablePrefix
}

// State is one committed stream state: cursor plus the embedded model
// checkpoint (Checkpoint.Iteration carries the batch sequence number,
// so asmodeld's snapshot_iteration gauge tracks batches).
type State struct {
	Cursor     Cursor
	Checkpoint *model.Checkpoint
	// Source is the file the state actually loaded from (primary or
	// ".bak" fallback); set by LoadStateFile, not serialized.
	Source string
}

var mStateRetries = obs.GetCounter("stream_state_write_retries",
	"transient stream state write errors retried")

// stateWriteWrap, when non-nil, wraps the raw state file writer — the
// seam crash tests use to tear or fail the atomic commit beneath the
// retry layer. Only set while no commit is in flight.
var stateWriteWrap func(io.Writer) io.Writer

// WriteState serializes the state to w.
func WriteState(w io.Writer, st *State) error {
	if st.Checkpoint == nil || st.Checkpoint.Model == nil {
		return fmt.Errorf("stream: state has no model checkpoint")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, model.StreamCursorMagic)
	fmt.Fprintf(bw, "source %s\n", st.Cursor.Source)
	fmt.Fprintf(bw, "batch-records %d\n", st.Cursor.BatchRecords)
	fmt.Fprintf(bw, "min-age %d\n", st.Cursor.MinAge)
	fmt.Fprintf(bw, "records %d\n", st.Cursor.Records)
	fmt.Fprintf(bw, "batches %d\n", st.Cursor.Batches)
	fmt.Fprintf(bw, "last-ts %d\n", st.Cursor.LastTS)
	t := st.Cursor.Totals
	fmt.Fprintf(bw, "totals %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n",
		t.Updates, t.Announces, t.Withdraws, t.SkippedRecords,
		t.ChangedPrefixes, t.UnknownPrefixes, t.RefinedPrefixes, t.Iterations,
		t.QuasiRoutersAdded, t.FiltersAdded, t.FiltersRemoved, t.MEDRules,
		t.LocalPrefRules, t.DivergedPrefixes, t.QuarantinedBatch, t.RetriedBatches)
	for _, u := range st.Cursor.Unstable {
		fmt.Fprintf(bw, "unstable %s %d\n", u.Prefix, u.StableAt)
	}
	fmt.Fprintln(bw, "checkpoint")
	if err := bw.Flush(); err != nil {
		return err
	}
	// The embedded checkpoint's (= model's) "end" trailer terminates the
	// state file, so truncation anywhere is detected on load.
	return model.WriteCheckpoint(w, st.Checkpoint)
}

// LoadState reads a state written by WriteState.
func LoadState(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	if line != model.StreamCursorMagic {
		return nil, fmt.Errorf("stream: not a stream state file (missing %q header)", model.StreamCursorMagic)
	}
	st := &State{}
	lineNo := 1
	for {
		line, err = readLine(br)
		if err != nil {
			return nil, fmt.Errorf("stream: state truncated after line %d (missing checkpoint section)", lineNo)
		}
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(why string) error {
			return fmt.Errorf("stream: state line %d: %s: %q", lineNo, why, line)
		}
		switch f[0] {
		case "source":
			// The descriptor may contain spaces (paths); keep the rest of
			// the line verbatim.
			st.Cursor.Source = strings.TrimSpace(strings.TrimPrefix(line, "source "))
		case "batch-records", "min-age", "records", "batches", "last-ts":
			if len(f) != 2 {
				return nil, fail("needs one value")
			}
			v, perr := strconv.ParseInt(f[1], 10, 64)
			if perr != nil {
				return nil, fail("bad count")
			}
			switch f[0] {
			case "batch-records":
				st.Cursor.BatchRecords = int(v)
			case "min-age":
				st.Cursor.MinAge = v
			case "records":
				st.Cursor.Records = v
			case "batches":
				st.Cursor.Batches = v
			case "last-ts":
				st.Cursor.LastTS = v
			}
		case "totals":
			if len(f) != 17 {
				return nil, fail("needs 16 values")
			}
			vals := make([]int, 16)
			for i := range vals {
				v, perr := strconv.Atoi(f[i+1])
				if perr != nil {
					return nil, fail("bad count")
				}
				vals[i] = v
			}
			st.Cursor.Totals = Totals{
				Updates: vals[0], Announces: vals[1], Withdraws: vals[2], SkippedRecords: vals[3],
				ChangedPrefixes: vals[4], UnknownPrefixes: vals[5], RefinedPrefixes: vals[6], Iterations: vals[7],
				QuasiRoutersAdded: vals[8], FiltersAdded: vals[9], FiltersRemoved: vals[10], MEDRules: vals[11],
				LocalPrefRules: vals[12], DivergedPrefixes: vals[13], QuarantinedBatch: vals[14], RetriedBatches: vals[15],
			}
		case "unstable":
			if len(f) != 3 {
				return nil, fail("needs prefix and stable-at")
			}
			p, perr := netip.ParsePrefix(f[1])
			if perr != nil {
				return nil, fail("bad prefix")
			}
			at, aerr := strconv.ParseInt(f[2], 10, 64)
			if aerr != nil {
				return nil, fail("bad count")
			}
			st.Cursor.Unstable = append(st.Cursor.Unstable, UnstablePrefix{Prefix: p, StableAt: at})
		case "checkpoint":
			cp, cerr := model.LoadCheckpoint(br)
			if cerr != nil {
				return nil, cerr
			}
			st.Checkpoint = cp
			return st, nil
		default:
			return nil, fail("unknown directive")
		}
	}
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}

// WriteStateFile commits the state atomically and durably: the whole
// file (cursor + checkpoint + model) goes to path+".tmp" (fsynced) and
// is renamed over path; the previous state rotates to path+".bak". A
// crash at any byte of the write leaves the previous committed state
// untouched — the exactly-once property of stream batches.
func WriteStateFile(ctx context.Context, path string, st *State) error {
	pol := durable.Policy{
		OnRetry:    func(error) { mStateRetries.Inc() },
		WrapWriter: stateWriteWrap,
	}
	return durable.WriteFileAtomicCtx(ctx, path, pol, func(w io.Writer) error {
		return WriteState(w, st)
	})
}

// LoadStateFile reads a committed state from disk, falling back to
// path+".bak" (the previous commit) when the primary is corrupt — the
// same recovery LoadCheckpointFile gives resumed refinements. The
// returned state's Source records which file actually loaded.
func LoadStateFile(path string) (*State, error) {
	st, err := loadStatePath(path)
	if err == nil {
		st.Source = path
		return st, nil
	}
	if os.IsNotExist(err) {
		return nil, err
	}
	bak := path + ".bak"
	bst, berr := loadStatePath(bak)
	if berr != nil {
		if os.IsNotExist(berr) {
			return nil, err
		}
		return nil, fmt.Errorf("%w (fallback %v)", err, berr)
	}
	bst.Source = bak
	return bst, nil
}

func loadStatePath(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := LoadState(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}
