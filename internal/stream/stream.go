package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"asmodel/internal/dataset"
	"asmodel/internal/ingest"
	"asmodel/internal/model"
	"asmodel/internal/mrt"
	"asmodel/internal/obs"
	"asmodel/internal/topology"
)

var (
	mBatches     = obs.GetCounter("stream_batches_total", "update batches committed")
	mRecords     = obs.GetCounter("stream_records_total", "MRT records consumed into committed batches")
	mRecoveries  = obs.GetCounter("stream_recoveries_total", "runs resumed from a committed cursor after a crash or restart")
	mQuarantines = obs.GetCounter("stream_quarantined_batches_total", "poison batches quarantined after the escalated retry also failed")
	mRetries     = obs.GetCounter("stream_batch_retries_total", "batch refinements retried from the committed model under an escalated budget")
	mStalls      = obs.GetCounter("stream_stalls_total", "stall-watchdog firings (no batch progress within the stall timeout)")
	mBatchSecs   = obs.GetHistogram("stream_batch_seconds", "wall-clock seconds per committed batch (collect+refine+commit)",
		obs.ExpBuckets(0.001, 2, 16))
	mLagSecs = obs.GetHistogram("stream_batch_lag_seconds", "wall-clock lag behind the stream head at commit (now - last record timestamp)",
		obs.ExpBuckets(0.5, 2, 20))
	mChanged = obs.GetHistogram("stream_changed_prefixes", "prefixes whose observations changed per batch",
		obs.ExpBuckets(1, 2, 12))
	mCursorRecords = obs.GetGauge("stream_cursor_records", "committed cursor position (MRT records)")
	mCursorBatches = obs.GetGauge("stream_cursor_batches", "committed cursor position (batches)")
)

// DefaultBatchRecords is the batch size (in MRT records) when
// Config.BatchRecords is zero.
const DefaultBatchRecords = 256

// retryFactor scales the iteration budget for the single escalated
// retry of a poison batch, mirroring the refinement loop's per-prefix
// quarantine escalation.
const retryFactor = 4

// Config parameterizes a streaming refinement run.
type Config struct {
	// Source feeds MRT records; required. The source's Describe()
	// descriptor is recorded in the cursor and validated on resume.
	Source Source
	// StatePath is the stream state file (cursor + embedded checkpoint),
	// committed atomically after every batch; required. If it exists
	// when Run starts, the run resumes from it.
	StatePath string
	// BatchRecords cuts a batch every N MRT records (0 =
	// DefaultBatchRecords). Part of the committed cursor: a resume with
	// a different value is refused, because batch boundaries define the
	// deterministic replay.
	BatchRecords int
	// MinAge applies the paper's stable-route filter to batch snapshots
	// (seconds; 0 disables). Also cursor-validated.
	MinAge int64
	// Workers sets the speculative-refinement pool for each batch
	// (1 = sequential; byte-identical results at any count).
	Workers int
	// MaxIterations bounds each batch's refinement (0 = automatic).
	MaxIterations int
	// MaxBatches stops the run once the committed cursor reaches this
	// many batches (0 = unlimited). Benchmarks and crash smokes use it
	// to cut runs at deterministic points.
	MaxBatches int64
	// Bootstrap, when set, builds the initial model (topology, universe,
	// no refinement) from this dataset on a fresh start and commits it
	// as batch 0. When nil, the first batch's own snapshot bootstraps
	// the model — the universe is then fixed to the prefixes observed in
	// that batch.
	Bootstrap *dataset.Dataset
	// Ingest selects strict or lenient handling of malformed records.
	Ingest ingest.Options
	// StallTimeout arms a watchdog: if no record arrives and no batch
	// commits for this long, stream_stalls_total increments and a
	// warning is logged (0 disables). The watchdog only observes — a
	// stalled source is an operational signal, not an error.
	StallTimeout time.Duration
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...interface{})
	// Observer receives stream Events (see Event for the determinism
	// contract). Called from the run's goroutine only.
	Observer func(Event)
	// OnCommit, when set, is called after each batch commit (state
	// written, event emitted) with the committed state. The CLI's
	// -kill-after-batch crash smoke hangs off it.
	OnCommit func(*State)
}

func (c Config) norm() Config {
	if c.BatchRecords <= 0 {
		c.BatchRecords = DefaultBatchRecords
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// Result reports a completed (or cleanly stopped) streaming run.
type Result struct {
	// Batches and Records are the committed cursor position at exit.
	Batches int64
	Records int64
	// LastTS is the stream timestamp at the cursor.
	LastTS int64
	// Totals is the cumulative committed accounting.
	Totals Totals
	// Recovered is true when the run resumed from an existing state
	// file instead of starting fresh.
	Recovered bool
	// SkipReport is the run's lenient-ingestion report.
	SkipReport *ingest.Report
}

// Streamer runs the streaming refinement loop. Create with New, run
// with Run; a Streamer is single-use.
type Streamer struct {
	cfg Config

	rp      *mrt.Replayer
	m       *model.Model
	cur     Cursor
	rep     *ingest.Report
	ticks   atomic.Int64 // progress ticks for the stall watchdog
	stalled bool

	// base and baseSkipped snapshot the replay/ingest stats at the last
	// commit (or at start/resume); commit-time totals are deltas against
	// them, so records folded forward across an uncommitted batch still
	// land in the cursor accounting of the batch they fold into.
	base        mrt.ReplayStats
	baseSkipped int
	// pending counts records consumed but not yet committed: batches
	// folded forward because no model could be built from them yet. They
	// are added to Cursor.Records by the commit that absorbs them.
	pending int
	// pendingUnstable mirrors Cursor.Unstable as a map: prefixes whose
	// routes the stable-route filter dropped from a snapshot, keyed to
	// the time they age into stability and must be re-snapshotted.
	pendingUnstable map[netip.Prefix]int64

	// crashHook, when non-nil, is called at scheduled points of the
	// batch loop ("mid-batch", "pre-commit", "post-commit",
	// "between-batches") with the upcoming batch sequence number — the
	// seam crash-matrix tests panic through to simulate a process death
	// at that exact point.
	crashHook func(point string, seq int64)
	// forcePoison maps a batch sequence number to how many refinement
	// attempts of it should fail (test seam for the poison-batch path:
	// 1 = fail once then succeed on the escalated retry, 2 = quarantine).
	forcePoison map[int64]int
}

// New builds a Streamer.
func New(cfg Config) *Streamer {
	return &Streamer{cfg: cfg.norm()}
}

func (s *Streamer) hook(point string, seq int64) {
	if s.crashHook != nil {
		s.crashHook(point, seq)
	}
}

// interrupted wraps a context cancellation as a *model.InterruptedError
// carrying the committed cursor, so the CLI's uniform exit-code mapping
// (3 = interrupted, cleanly committed) applies to streams too.
func (s *Streamer) interrupted(cause error) error {
	return &model.InterruptedError{
		Op:         "stream",
		Iterations: int(s.cur.Batches),
		Prefixes:   int(s.cur.Records),
		Checkpoint: s.cfg.StatePath,
		Err:        cause,
	}
}

func ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if err == nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// Run executes the streaming loop until the source is exhausted (non-
// follow sources), MaxBatches is reached, or ctx is canceled. On
// cancellation the in-flight batch is discarded — the state file always
// holds the last committed batch — and a *model.InterruptedError is
// returned. Restarting the same configuration resumes from the
// committed cursor and converges to the same states an uninterrupted
// run reaches (DESIGN.md §9).
func (s *Streamer) Run(ctx context.Context) (*Result, error) {
	if s.cfg.Source == nil {
		return nil, fmt.Errorf("stream: no source configured")
	}
	if s.cfg.StatePath == "" {
		return nil, fmt.Errorf("stream: no state path configured")
	}
	_, span := obs.StartSpan(ctx, "stream.run",
		obs.A("source", s.cfg.Source.Describe()),
		obs.A("batch_records", s.cfg.BatchRecords),
		obs.VolatileAttr("workers", s.cfg.Workers))
	defer span.End()

	s.rep = ingest.NewReport("mrt", s.cfg.Ingest)
	recovered, err := s.start(ctx, span)
	if err != nil {
		return nil, err
	}
	if s.cfg.StallTimeout > 0 {
		stop := s.watchdog(ctx)
		defer stop()
	}

	res := &Result{Recovered: recovered, SkipReport: s.rep}
	for {
		if s.cfg.MaxBatches > 0 && s.cur.Batches >= s.cfg.MaxBatches {
			break
		}
		done, err := s.runBatch(ctx, span)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	res.Batches = s.cur.Batches
	res.Records = s.cur.Records
	res.LastTS = s.cur.LastTS
	res.Totals = s.cur.Totals
	return res, nil
}

// start loads or initializes the run state: resume from the state file
// when it exists, otherwise start fresh (committing a batch-0 bootstrap
// state when a Bootstrap dataset is configured).
func (s *Streamer) start(ctx context.Context, span *obs.Span) (recovered bool, err error) {
	st, lerr := LoadStateFile(s.cfg.StatePath)
	switch {
	case lerr == nil:
		if err := s.resume(ctx, span, st); err != nil {
			return false, err
		}
		return true, nil
	case os.IsNotExist(lerr):
		s.rp = mrt.NewReplayer(0, s.cfg.MinAge)
		s.pendingUnstable = make(map[netip.Prefix]int64)
		s.cur = Cursor{
			Source:       s.cfg.Source.Describe(),
			BatchRecords: s.cfg.BatchRecords,
			MinAge:       s.cfg.MinAge,
		}
		if s.cfg.Bootstrap != nil {
			m, err := model.NewInitial(topology.FromDataset(s.cfg.Bootstrap), dataset.NewUniverse(s.cfg.Bootstrap))
			if err != nil {
				return false, fmt.Errorf("stream: bootstrap model: %w", err)
			}
			s.m = m
			// Commit batch 0 so a crash during the first real batch
			// recovers into the bootstrapped model instead of
			// re-deriving it.
			if err := s.commit(ctx); err != nil {
				return false, err
			}
			s.cfg.Logf("stream: bootstrapped model from dataset (%d prefixes), state %s",
				s.cfg.Bootstrap.Len(), s.cfg.StatePath)
		}
		return false, nil
	default:
		return false, fmt.Errorf("stream: loading state %s: %w", s.cfg.StatePath, lerr)
	}
}

// resume validates the committed cursor against the configuration and
// the source, rebuilds the replayer by re-reading exactly the committed
// record prefix, and installs the committed model.
func (s *Streamer) resume(ctx context.Context, span *obs.Span, st *State) error {
	cur := st.Cursor
	if cur.Source != s.cfg.Source.Describe() {
		return fmt.Errorf("stream: state %s was cut from source %q, not %q",
			st.Source, cur.Source, s.cfg.Source.Describe())
	}
	if cur.BatchRecords != s.cfg.BatchRecords {
		return fmt.Errorf("stream: state %s used -batch %d, not %d (batch boundaries define the replay; restart with the original value or a fresh state file)",
			st.Source, cur.BatchRecords, s.cfg.BatchRecords)
	}
	if cur.MinAge != s.cfg.MinAge {
		return fmt.Errorf("stream: state %s used -min-age %d, not %d",
			st.Source, cur.MinAge, s.cfg.MinAge)
	}
	rspan := span.StartChild("stream.recover",
		obs.A("records", cur.Records), obs.A("batches", cur.Batches))
	defer rspan.End()
	if err := s.cfg.Source.Reset(); err != nil {
		return fmt.Errorf("stream: resetting source for recovery: %w", err)
	}
	rp := mrt.NewReplayer(0, s.cfg.MinAge)
	for i := int64(0); i < cur.Records; i++ {
		rec, err := s.cfg.Source.Next(ctx)
		if cerr := ctxErr(ctx, err); cerr != nil {
			return s.interrupted(cerr)
		}
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("source ended after %d of %d committed records", i, cur.Records)
			}
			return fmt.Errorf("stream: recovery replay: %w", err)
		}
		s.rep.Record()
		if aerr := rp.Apply(rec); aerr != nil {
			if serr := s.skip(aerr); serr != nil {
				return fmt.Errorf("stream: recovery replay: %w", serr)
			}
		}
		s.ticks.Add(1)
	}
	if got := rp.Stats().LastTimestamp; got != cur.LastTS {
		return fmt.Errorf("stream: source changed under the cursor: committed last-ts %d, replay reached %d (after %d records)",
			cur.LastTS, got, cur.Records)
	}
	// The committed model already reflects every replayed change.
	rp.TakeChanged()
	s.rp = rp
	s.m = st.Checkpoint.Model
	s.cur = cur
	s.base = rp.Stats()
	s.baseSkipped = s.rep.Skipped
	s.pendingUnstable = make(map[netip.Prefix]int64, len(cur.Unstable))
	for _, u := range cur.Unstable {
		s.pendingUnstable[u.Prefix] = u.StableAt
	}
	mRecoveries.Inc()
	mCursorRecords.Set(cur.Records)
	mCursorBatches.Set(cur.Batches)
	s.cfg.Logf("stream: resumed from %s: batch %d, %d records, last-ts %d",
		st.Source, cur.Batches, cur.Records, cur.LastTS)
	if s.cfg.Observer != nil {
		s.cfg.Observer(Event{
			Type:           "recovery",
			ResumedBatches: cur.Batches,
			ResumedRecords: cur.Records,
			LastTS:         cur.LastTS,
			StateSource:    st.Source,
		})
	}
	return nil
}

// skip routes a malformed-record error through the lenient-ingestion
// budget (strict mode surfaces it immediately).
func (s *Streamer) skip(err error) error {
	return s.rep.Skip(s.rep.Records, err)
}

// runBatch collects one batch of records, delta-refines the changed
// prefixes, and commits cursor + checkpoint atomically. It returns
// done=true when a non-follow source is exhausted.
func (s *Streamer) runBatch(ctx context.Context, span *obs.Span) (done bool, err error) {
	seq := s.cur.Batches + 1
	start := time.Now()
	bspan := span.StartChild("stream.batch", obs.A("seq", seq))
	defer bspan.End()

	cspan := bspan.StartChild("collect")
	n := 0
	eof := false
	for n < s.cfg.BatchRecords {
		rec, rerr := s.cfg.Source.Next(ctx)
		if cerr := ctxErr(ctx, rerr); cerr != nil {
			cspan.End()
			return false, s.interrupted(cerr)
		}
		if rerr == io.EOF {
			eof = true
			break
		}
		if rerr != nil {
			// A framing failure loses sync with the length-prefixed
			// stream: in lenient mode count one skip and end the stream
			// at the last good record, mirroring batch ingestion.
			// Operational source failures (open, read, directory scan)
			// are not skippable — they abort the run.
			var fe *FramingError
			if !errors.As(rerr, &fe) {
				cspan.End()
				return false, fmt.Errorf("stream: reading source: %w", rerr)
			}
			if serr := s.skip(rerr); serr != nil {
				cspan.End()
				return false, fmt.Errorf("stream: reading source: %w", serr)
			}
			s.cfg.Logf("stream: source framing error after record %d: %v (ending stream)", s.rep.Records, rerr)
			eof = true
			break
		}
		s.rep.Record()
		if aerr := s.rp.Apply(rec); aerr != nil {
			if serr := s.skip(aerr); serr != nil {
				cspan.End()
				return false, fmt.Errorf("stream: applying record: %w", serr)
			}
		}
		n++
		s.ticks.Add(1)
		if n == 1 {
			s.hook("mid-batch", seq)
		}
	}
	cspan.Set(obs.A("records", n))
	cspan.End()
	if n == 0 {
		return eof, nil
	}

	// Re-mark prefixes whose excluded routes have aged into stability:
	// nothing else would ever re-snapshot a quiet prefix announced once
	// (DESIGN.md §9). The aged set re-enters this batch's changed set
	// and, being stable now, its routes appear in the delta.
	if len(s.pendingUnstable) > 0 {
		ref := s.rp.Stats().LastTimestamp
		var aged []netip.Prefix
		for p, at := range s.pendingUnstable {
			if at <= ref {
				aged = append(aged, p)
			}
		}
		if len(aged) > 0 {
			s.rp.MarkChanged(aged)
			for _, p := range aged {
				delete(s.pendingUnstable, p)
			}
		}
	}
	changed := s.rp.TakeChanged()
	delta := &dataset.Dataset{}
	if len(changed) > 0 {
		delta = s.rp.DatasetFor(changed)
	}
	for p, at := range s.rp.TakeUnstable() {
		s.pendingUnstable[p] = at
	}
	bootstrap := false
	if s.m == nil {
		// First batch of a fresh run without a bootstrap dataset: the
		// batch's own snapshot defines topology and universe.
		if delta.Len() == 0 {
			// Nothing announced yet (withdrawals, non-update records,
			// still-unstable routes): fold these records — and their
			// changed prefixes — into the next batch. Nothing was
			// committed, so a restart reproduces the fold
			// deterministically, and s.pending accounts the records to
			// the batch that finally commits.
			s.rp.MarkChanged(changed)
			s.pending += n
			return eof, nil
		}
		m, merr := model.NewInitial(topology.FromDataset(delta), dataset.NewUniverse(delta))
		if merr != nil {
			return false, fmt.Errorf("stream: bootstrap from batch %d: %w", seq, merr)
		}
		s.m = m
		bootstrap = true
	}

	// The batch absorbs any records folded forward by earlier
	// uncommitted calls: they are committed — counted in the cursor,
	// totals and event — exactly once, here.
	nBatch := s.pending + n
	ev := Event{
		Type:      "batch",
		Seq:       seq,
		Records:   nBatch,
		Bootstrap: bootstrap,
		Changed:   len(changed),
	}
	if len(changed) > 0 {
		res, rerr := s.refineBatch(ctx, bspan, seq, delta, bootstrap)
		if rerr != nil {
			return false, rerr
		}
		if res.quarantined {
			s.cur.Totals.QuarantinedBatch++
			ev.Quarantined = true
			ev.Err = res.errText
		} else {
			t := &s.cur.Totals
			t.UnknownPrefixes += res.res.SkippedPrefixes
			t.RefinedPrefixes += len(delta.Prefixes()) - res.res.SkippedPrefixes
			t.Iterations += res.res.Iterations
			t.QuasiRoutersAdded += res.res.QuasiRoutersAdded
			t.FiltersAdded += res.res.FiltersAdded
			t.FiltersRemoved += res.res.FiltersRemoved
			t.MEDRules += res.res.MEDRules
			t.LocalPrefRules += res.res.LocalPrefRules
			t.DivergedPrefixes += res.res.DivergedPrefixes
			ev.Unknown = res.res.SkippedPrefixes
			ev.Refined = len(delta.Prefixes()) - res.res.SkippedPrefixes
			ev.Iterations = res.res.Iterations
			ev.Converged = res.res.Converged
			ev.QuasiRoutersAdded = res.res.QuasiRoutersAdded
			ev.FiltersAdded = res.res.FiltersAdded
			ev.FiltersRemoved = res.res.FiltersRemoved
			ev.MEDRules = res.res.MEDRules
			ev.DivergedPrefixes = res.res.DivergedPrefixes
		}
		if res.retried {
			s.cur.Totals.RetriedBatches++
			ev.Retried = true
		}
	}

	// Advance and commit: cursor and checkpoint land in one atomic
	// write, so this batch is either fully committed or never happened.
	// Deltas run against the last-commit baseline (not this call's
	// start), so folded records' updates count too.
	after := s.rp.Stats()
	t := &s.cur.Totals
	t.Updates += after.Updates - s.base.Updates
	t.Announces += after.Announces - s.base.Announces
	t.Withdraws += after.Withdraws - s.base.Withdraws
	t.SkippedRecords += s.rep.Skipped - s.baseSkipped
	t.ChangedPrefixes += len(changed)
	s.cur.Records += int64(nBatch)
	s.cur.Batches = seq
	s.cur.LastTS = after.LastTimestamp
	s.cur.Unstable = unstableList(s.pendingUnstable)
	ev.Skipped = s.rep.Skipped - s.baseSkipped
	ev.Updates = after.Updates - s.base.Updates
	ev.Announces = after.Announces - s.base.Announces
	ev.Withdraws = after.Withdraws - s.base.Withdraws
	ev.CursorRecords = s.cur.Records
	ev.LastTS = s.cur.LastTS

	s.hook("pre-commit", seq)
	wspan := bspan.StartChild("commit")
	if err := s.commit(ctx); err != nil {
		wspan.End()
		if cerr := ctxErr(ctx, err); cerr != nil {
			return false, s.interrupted(cerr)
		}
		return false, err
	}
	wspan.End()
	s.base = after
	s.baseSkipped = s.rep.Skipped
	s.pending = 0
	s.hook("post-commit", seq)

	mBatches.Inc()
	mRecords.Add(int64(nBatch))
	mChanged.ObserveInt(len(changed))
	mBatchSecs.Observe(time.Since(start).Seconds())
	if s.cur.LastTS > 0 {
		if lag := time.Now().Unix() - s.cur.LastTS; lag >= 0 {
			mLagSecs.Observe(float64(lag))
		}
	}
	mCursorRecords.Set(s.cur.Records)
	mCursorBatches.Set(s.cur.Batches)
	if ev.Quarantined {
		mQuarantines.Inc()
	}
	s.ticks.Add(1)
	s.cfg.Logf("stream: batch %d committed: %d records, %d changed prefixes, %d iterations (cursor %d records, last-ts %d)",
		seq, nBatch, len(changed), ev.Iterations, s.cur.Records, s.cur.LastTS)
	if s.cfg.Observer != nil {
		s.cfg.Observer(ev)
	}
	if s.cfg.OnCommit != nil {
		st := &State{Cursor: s.cur, Checkpoint: s.snapshot()}
		s.cfg.OnCommit(st)
	}
	s.hook("between-batches", seq)
	return eof, nil
}

// batchOutcome is one batch's refinement outcome.
type batchOutcome struct {
	res         *model.RefineResult
	retried     bool
	quarantined bool
	errText     string
}

// refineBatch runs the delta refinement with the poison-batch
// protocol: a failure rolls the model back to the committed state and
// retries once under an escalated iteration budget; a second failure
// quarantines the batch (records advance, refinement skipped) so one
// poison batch cannot wedge the stream. Failures here are
// content-deterministic, so every run schedule takes the same path.
func (s *Streamer) refineBatch(ctx context.Context, bspan *obs.Span, seq int64, delta *dataset.Dataset, bootstrap bool) (*batchOutcome, error) {
	out := &batchOutcome{}
	cfg := model.RefineConfig{
		Workers:       s.cfg.Workers,
		MaxIterations: s.cfg.MaxIterations,
		Logf:          s.cfg.Logf,
	}
	for attempt := 1; ; attempt++ {
		rspan := bspan.StartChild("refine",
			obs.A("prefixes", len(delta.Prefixes())), obs.A("attempt", attempt))
		res, err := s.refineAttempt(ctx, seq, delta, cfg)
		rspan.End()
		if err == nil {
			out.res = res
			return out, nil
		}
		if cerr := ctxErr(ctx, err); cerr != nil {
			return nil, s.interrupted(cerr)
		}
		var ierr *model.InterruptedError
		if errors.As(err, &ierr) {
			return nil, s.interrupted(err)
		}
		if rberr := s.rollback(delta, bootstrap); rberr != nil {
			return nil, fmt.Errorf("stream: batch %d refinement failed (%v) and rollback failed: %w", seq, err, rberr)
		}
		if attempt == 1 {
			out.retried = true
			mRetries.Inc()
			// Escalate the budget the way per-prefix quarantine does: a
			// marginally-too-small budget recovers, a genuine poison
			// batch wastes bounded work.
			esc := s.cfg.MaxIterations
			if esc == 0 {
				esc = maxIterationsFor(delta)
			}
			cfg.MaxIterations = esc * retryFactor
			s.cfg.Logf("stream: batch %d refinement failed (%v); retrying from committed model with budget %d",
				seq, err, cfg.MaxIterations)
			continue
		}
		out.quarantined = true
		out.errText = err.Error()
		s.cfg.Logf("stream: batch %d failed again under escalated budget; quarantined (records advance, refinement skipped)", seq)
		return out, nil
	}
}

// maxIterationsFor mirrors the refinement loop's automatic budget for
// escalation purposes (4*maxLen+8 on the delta's longest path).
func maxIterationsFor(delta *dataset.Dataset) int {
	maxLen := 1
	for _, r := range delta.Records {
		if len(r.Path) > maxLen {
			maxLen = len(r.Path)
		}
	}
	return 4*maxLen + 8
}

// refineAttempt is one refinement attempt, with the forcePoison test
// seam in front of the real call.
func (s *Streamer) refineAttempt(ctx context.Context, seq int64, delta *dataset.Dataset, cfg model.RefineConfig) (*model.RefineResult, error) {
	if s.forcePoison != nil && s.forcePoison[seq] > 0 {
		s.forcePoison[seq]--
		return nil, fmt.Errorf("stream: injected poison failure for batch %d", seq)
	}
	return s.m.RefineIncremental(ctx, delta, cfg)
}

// rollback restores the model to the last committed state: reloaded
// from the state file when one exists, re-derived from the bootstrap
// source otherwise. Either way the bytes match what recovery after a
// crash would start from.
func (s *Streamer) rollback(delta *dataset.Dataset, bootstrap bool) error {
	if bootstrap {
		// The model was built from this batch's snapshot and mutated by
		// the failed attempt; rebuild it the same way.
		m, err := model.NewInitial(topology.FromDataset(delta), dataset.NewUniverse(delta))
		if err != nil {
			return err
		}
		s.m = m
		return nil
	}
	st, err := LoadStateFile(s.cfg.StatePath)
	if err != nil {
		return err
	}
	s.m = st.Checkpoint.Model
	return nil
}

// unstableList renders the pending-unstable map in the cursor's
// canonical order (sorted by prefix), so committed state bytes are
// deterministic.
func unstableList(m map[netip.Prefix]int64) []UnstablePrefix {
	if len(m) == 0 {
		return nil
	}
	out := make([]UnstablePrefix, 0, len(m))
	for p, at := range m {
		out = append(out, UnstablePrefix{Prefix: p, StableAt: at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// snapshot builds the embedded checkpoint for the current cursor:
// Iteration carries the batch sequence so checkpoint consumers
// (asmodeld) see stream progress, and the cumulative action counters
// ride in the result block.
func (s *Streamer) snapshot() *model.Checkpoint {
	t := s.cur.Totals
	return &model.Checkpoint{
		Iteration: int(s.cur.Batches),
		Result: model.RefineResult{
			QuasiRoutersAdded: t.QuasiRoutersAdded,
			FiltersAdded:      t.FiltersAdded,
			FiltersRemoved:    t.FiltersRemoved,
			MEDRules:          t.MEDRules,
			LocalPrefRules:    t.LocalPrefRules,
			DivergedPrefixes:  t.DivergedPrefixes,
		},
		Model: s.m,
	}
}

// commit writes the state file atomically (see WriteStateFile).
func (s *Streamer) commit(ctx context.Context) error {
	st := &State{Cursor: s.cur, Checkpoint: s.snapshot()}
	if err := WriteStateFile(ctx, s.cfg.StatePath, st); err != nil {
		return fmt.Errorf("stream: committing state %s: %w", s.cfg.StatePath, err)
	}
	return nil
}

// watchdog arms the stall monitor: a goroutine that fires when no
// progress tick (record read, batch commit) lands within StallTimeout.
// It observes and reports; it never kills the run — in follow mode a
// quiet source is legitimate, and the operator decides from the metric.
func (s *Streamer) watchdog(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	interval := s.cfg.StallTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		lastTick := s.ticks.Load()
		lastChange := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-done:
				return
			case <-t.C:
			}
			cur := s.ticks.Load()
			if cur != lastTick {
				lastTick = cur
				lastChange = time.Now()
				s.stalled = false
				continue
			}
			if !s.stalled && time.Since(lastChange) >= s.cfg.StallTimeout {
				s.stalled = true
				mStalls.Inc()
				s.cfg.Logf("stream: stalled: no progress for %v (source %s)",
					s.cfg.StallTimeout, s.cfg.Source.Describe())
			}
		}
	}()
	return func() { close(done) }
}
