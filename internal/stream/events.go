package stream

// Event is one structured trace event of the streaming loop, emitted
// through Config.Observer (feed it to an obs.TraceSink for a replayable
// stream-trace.jsonl).
//
// "batch" events are emitted only AFTER their state commit succeeds and
// carry no wall-clock fields, so they are deterministic: for a given
// source and parameters, the concatenated batch-event streams of any
// crash/restart schedule are byte-identical to an uninterrupted run's.
// "recovery" and "stall" events describe the run's own lifecycle — they
// depend on when crashes and stalls happened, not on stream content —
// and are therefore excluded from redacted traces (the CLI drops them
// under -trace-redact-timing).
type Event struct {
	// Type is "batch" (one committed batch), "recovery" (resumed from a
	// committed cursor; volatile) or "stall" (watchdog fired; volatile).
	Type string `json:"type"`
	// Seq is the 1-based committed batch sequence number.
	Seq int64 `json:"seq,omitempty"`
	// Records is the MRT record count of this batch; CursorRecords the
	// cumulative committed record count after it.
	Records       int   `json:"records,omitempty"`
	CursorRecords int64 `json:"cursor_records,omitempty"`
	// LastTS is the stream timestamp at the cursor.
	LastTS int64 `json:"last_ts,omitempty"`
	// Replay accounting for this batch.
	Updates   int `json:"updates,omitempty"`
	Announces int `json:"announces,omitempty"`
	Withdraws int `json:"withdraws,omitempty"`
	Skipped   int `json:"skipped,omitempty"`
	// Changed counts prefixes whose observations changed in this batch;
	// Unknown the subset outside the model universe (skipped); Refined
	// the re-refined remainder.
	Changed int `json:"changed_prefixes,omitempty"`
	Unknown int `json:"unknown_prefixes,omitempty"`
	Refined int `json:"refined_prefixes,omitempty"`
	// Refinement outcome of the batch (zero for quarantined batches).
	Iterations        int  `json:"iterations,omitempty"`
	Converged         bool `json:"converged,omitempty"`
	QuasiRoutersAdded int  `json:"quasi_routers_added,omitempty"`
	FiltersAdded      int  `json:"filters_added,omitempty"`
	FiltersRemoved    int  `json:"filters_removed,omitempty"`
	MEDRules          int  `json:"med_rules,omitempty"`
	DivergedPrefixes  int  `json:"diverged_prefixes,omitempty"`
	// Bootstrap marks the batch that built the initial model from its
	// own snapshot (no -bootstrap dataset was given).
	Bootstrap bool `json:"bootstrap,omitempty"`
	// Retried marks a batch whose first refinement failed and was re-run
	// from the committed model under an escalated budget; Quarantined
	// marks a batch abandoned after the retry also failed (its records
	// advance the cursor, its refinement is skipped).
	Retried     bool `json:"retried,omitempty"`
	Quarantined bool `json:"quarantined,omitempty"`
	// Err carries the failure context of a quarantined batch.
	Err string `json:"err,omitempty"`
	// Recovery-event fields: the cursor the run resumed from.
	ResumedBatches int64 `json:"resumed_batches,omitempty"`
	ResumedRecords int64 `json:"resumed_records,omitempty"`
	// StateSource is the file the recovery state loaded from (primary or
	// ".bak" fallback).
	StateSource string `json:"state_source,omitempty"`
}
